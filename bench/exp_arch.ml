(* Architectural ablations (§4.1, §7).

   abl-arch:    block-transfer speed.  "The existence of a fast block
                transfer mechanism is vital to the performance of any
                program that uses data migration and replication on a
                NUMA machine!" — sweep T_b and watch gauss agree.
   abl-defrost: periodic vs adaptive defrost (§4.2's priority-queue
                alternative) on a phase-changing workload and on a
                permanently hot one. *)

open Exp_common
module Gauss = Platinum_workload.Gauss
module Backprop = Platinum_workload.Backprop
module Patterns = Platinum_workload.Patterns
module Defrost = Platinum_core.Defrost
module M = Platinum_analysis.Migration_model
module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync
module Machine = Platinum_machine.Machine
module Cache = Platinum_machine.Cache

let run_arch (scale : scale) =
  section "Ablation — block-transfer speed (the vital mechanism, §4.1/§7)";
  let nprocs = List.fold_left max 1 scale.procs in
  let n = if scale.full then 400 else 256 in
  Printf.printf "gauss %dx%d on %d processors, PLATINUM policy; times in ms\n\n" n n nprocs;
  Printf.printf "%14s %12s %26s\n" "T_b (ns/word)" "time" "analytic S_min at rho=1,g=1";
  Printf.printf "%s\n" (String.make 56 '-');
  let rows =
    par_map
      (fun t_block ->
        let base = Config.butterfly_plus ~nprocs () in
        let config = { base with Config.t_block_word = t_block } in
        let policy = policy_named "platinum" config in
        let work, _ =
          run_platinum ~config ~policy
            (Gauss.make (Gauss.params ~n ~nprocs ~verify:false ()))
        in
        (t_block, work))
      [ 400; 1_100; 2_300; 4_680; 6_000 ]
  in
  List.iter
    (fun (t_block, work) ->
      let m = { M.butterfly_plus with M.t_block = float_of_int t_block } in
      let smin =
        match M.min_page_words m ~g:1.0 ~rho:1.0 with
        | Some s -> string_of_int s ^ " words"
        | None -> "never pays"
      in
      Printf.printf "%14d %11.1f %26s\n%!" t_block (ms_of work) smin)
    rows;
  Printf.printf
    "\n(T_b = 4680 ns makes T_b = T_r - T_l: at that point moving a word costs\n\
     exactly what one remote reference saves, and migration can never pay —\n\
     the policy's replications become pure overhead, so time climbs steeply.)\n";
  (* The check points are already in the sweep; the simulation is
     deterministic, so the table values ARE the rerun values. *)
  let time_at tb = List.assoc tb rows in
  check_shape "fast block transfer beats a slow one by a wide margin"
    (float_of_int (time_at 6_000) > 1.3 *. float_of_int (time_at 1_100))

let run_defrost (scale : scale) =
  section "Ablation — defrost daemon: periodic vs adaptive (§4.2)";
  let nprocs = 8 in
  ignore scale;
  (* Workload A: a phase change — write-shared then read-only. *)
  let phase_work mode =
    let out, main = Patterns.phase_change ~nprocs ~pages:1 ~rounds:60 in
    let r = Runner.time ?defrost:mode main in
    if not out.Platinum_workload.Outcome.ok then failwith "phase_change failed";
    let c = Coherent.counters r.Runner.setup.Runner.coherent in
    (out.Platinum_workload.Outcome.work_ns, c.Counters.thaws, c.Counters.freezes)
  in
  (* Workload B: permanently hot (round-robin writers, §4.1's worst
     case): every thaw is wrong and costs a refault-and-refreeze storm. *)
  let hot_work mode =
    let config =
      Config.with_policy_params ~t2_defrost_period:50_000_000 (Config.butterfly_plus ~nprocs ())
    in
    let out, main = Patterns.ping_pong ~writers:nprocs ~rounds:40_000 in
    let r = Runner.time ~config ?defrost:mode main in
    if not out.Platinum_workload.Outcome.ok then failwith "ping_pong failed";
    let c = Coherent.counters r.Runner.setup.Runner.coherent in
    (out.Platinum_workload.Outcome.work_ns, c.Counters.thaws, c.Counters.freezes)
  in
  (* Same first thaw delay as the periodic daemon's period, so the only
     difference is the per-page back-off. *)
  let adaptive =
    Some
      (Defrost.Adaptive
         { initial_t2 = 50_000_000; max_t2 = 2_000_000_000; refreeze_window = 100_000_000 })
  in
  let pp_row name (t, thaws, freezes) =
    Printf.printf "  %-26s %9.1fms %6d thaws %6d freezes\n%!" name (ms_of t) thaws freezes
  in
  (* All four (workload, daemon) cells are independent: one fan-out. *)
  let cells =
    par_map
      (fun (wl, mode) -> match wl with `Phase -> phase_work mode | `Hot -> hot_work mode)
      [ (`Phase, None); (`Phase, adaptive); (`Hot, None); (`Hot, adaptive) ]
  in
  let p_per, p_ada, h_per, h_ada =
    match cells with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false
  in
  Printf.printf "\nphase-change workload (freeze should be undone once):\n";
  pp_row "periodic (t2 = 1s)" p_per;
  pp_row "adaptive" p_ada;
  Printf.printf "\npermanently hot page (every thaw is wrong):\n";
  pp_row "periodic (t2 = 50ms)" h_per;
  pp_row "adaptive (backs off)" h_ada;
  let time (t, _, _) = t and thaws (_, th, _) = th in
  check_shape "adaptive reacts to the phase change (thaws at least once)" (thaws p_ada >= 1);
  check_shape "adaptive not slower on the phase change"
    (float_of_int (time p_ada) <= 1.1 *. float_of_int (time p_per));
  check_shape "adaptive churns the hot page less than periodic"
    (thaws h_ada < thaws h_per);
  check_shape "adaptive not slower on the hot page"
    (float_of_int (time h_ada) <= 1.1 *. float_of_int (time h_per))


(* §7: "the PLATINUM coherent memory system is compatible with a
   generation of NUMA multiprocessors with local caches but without
   internode coherency support...  Almost all data is cachable.  Only
   modified Cpages that are mapped by remote processors cannot be
   cached."  We enable exactly such caches (coherency maintained by the
   coherent memory system in software) and measure two regimes: a
   read-mostly workload whose replicated pages are cachable, and the
   fine-grain backprop whose frozen pages are not. *)
let run_cache (scale : scale) =
  section "Ablation — section 7 local data caches (no hardware coherency)";
  let nprocs = 8 in
  ignore scale;
  let with_caches base = Config.with_local_caches ~words:2_048 ~line_words:4 base in
  (* A word-read-mostly workload over a shared, read-only table. *)
  let table_scan config =
    let work = ref 0 in
    let r =
      Runner.time ~config (fun () ->
          let words = 1_024 in
          let table = Api.alloc_pages 1 in
          Api.block_write table (Array.init words (fun i -> i * 3));
          let zone_sync = Api.new_zone "sync" ~pages:1 in
          let barrier = Sync.Barrier.make ~zone:zone_sync ~parties:nprocs () in
          let worker me =
            Sync.Barrier.wait barrier;
            if me = 0 then work := Api.now ();
            let acc = ref 0 in
            for round = 0 to 63 do
              for i = 0 to words - 1 do
                acc := !acc + Api.read (table + ((i * 17 + round) mod words))
              done
            done;
            if !acc = -1 then failwith "unreachable";
            Sync.Barrier.wait barrier;
            if me = 0 then work := Api.now () - !work
          in
          Api.spawn_join_all
            ~procs:(List.init nprocs (fun i -> i))
            (List.init nprocs (fun me _ -> worker me)))
    in
    (!work, r)
  in
  let base = Config.butterfly_plus ~nprocs () in
  let scans = par_map table_scan [ base; with_caches base ] in
  let (plain, _), (cached, rc) =
    match scans with [ a; b ] -> (a, b) | _ -> assert false
  in
  let hits, misses =
    let machine = rc.Runner.setup.Runner.machine in
    let h = ref 0 and m = ref 0 in
    for p = 0 to nprocs - 1 do
      match Machine.cache machine ~proc:p with
      | Some c ->
        h := !h + Cache.hits c;
        m := !m + Cache.misses c
      | None -> ()
    done;
    (!h, !m)
  in
  Printf.printf "read-mostly table scan (replicated pages are cachable):\n";
  Printf.printf "  without caches %9.1fms\n  with caches    %9.1fms (hit rate %.0f%%)\n"
    (ms_of plain) (ms_of cached)
    (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)));
  (* Backprop: its pages freeze (modified + remotely mapped) and are
     exactly the ones §7 says cannot be cached. *)
  let bp config =
    let out, main = Backprop.make (Backprop.params ~epochs:2 ~nprocs ~verify:false ()) in
    ignore (Runner.time ~config main);
    out.Platinum_workload.Outcome.work_ns
  in
  let bp_plain, bp_cached =
    match par_map bp [ base; with_caches base ] with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  Printf.printf "\nbackprop (its data pages freeze -> uncachable, the paper's caveat):\n";
  Printf.printf "  without caches %9.1fms\n  with caches    %9.1fms\n" (ms_of bp_plain)
    (ms_of bp_cached);
  Printf.printf "\n";
  check_shape "caches speed up the cachable read-mostly workload"
    (float_of_int cached < 0.8 *. float_of_int plain);
  check_shape "frozen pages see no benefit (section 7's caveat)"
    (abs_float (float_of_int bp_cached /. float_of_int bp_plain -. 1.0) < 0.05)
