(* Host-side throughput of the memory hot path.

   The Memtxn layer exists to cut the simulator's own cost per simulated
   word: a per-word access stream pays one effect trap, one Memsys submit,
   one translation and one interconnect charge for every word, while a
   batched stream pays them once per transaction (the translation once per
   page run).  This experiment measures wall-clock words/second on the same
   Jacobi-style stencil sweep expressed both ways — the simulated traffic
   is identical; only the trap granularity differs — and records the result
   in BENCH_hotpath.json. *)

module Api = Platinum_kernel.Api
module Config = Platinum_machine.Config
module Runner = Platinum_runner.Runner

(* One stencil sweep: every interior row r is recomputed from rows r-1,
   r, r+1 of the source buffer into the destination buffer, [iters] times,
   rows block-partitioned over [nprocs] workers (no barriers: we measure
   host throughput, not the numeric fixed point). *)
let sweep ~per_word ~n ~iters ~nprocs () =
  let words = n * n in
  let buf_a = Api.alloc ~page_aligned:true words in
  let buf_b = Api.alloc ~page_aligned:true words in
  let interior = n - 2 in
  let lo me = 1 + (me * interior / nprocs) in
  let hi me = 1 + (((me + 1) * interior / nprocs) - 1) in
  let worker me =
    let src = ref buf_a and dst = ref buf_b in
    for _iter = 1 to iters do
      for r = lo me to hi me do
        if per_word then begin
          for j = 0 to n - 1 do
            let above = Api.read (!src + ((r - 1) * n) + j) in
            let here = Api.read (!src + (r * n) + j) in
            let below = Api.read (!src + ((r + 1) * n) + j) in
            Api.write (!dst + (r * n) + j) ((above + here + below) / 3)
          done
        end
        else begin
          let tri = Api.block_read (!src + ((r - 1) * n)) (3 * n) in
          let fresh =
            Array.init n (fun j -> (tri.(j) + tri.(n + j) + tri.((2 * n) + j)) / 3)
          in
          Api.block_write (!dst + (r * n)) fresh
        end
      done;
      let tmp = !src in
      src := !dst;
      dst := tmp
    done
  in
  Api.spawn_join_all
    ~procs:(List.init nprocs (fun i -> i))
    (List.init nprocs (fun me _ -> worker me))

(* Data words the sweep moves: 3n read + n written per interior row. *)
let sweep_words ~n ~iters = iters * (n - 2) * 4 * n

(* Best of [reps] wall-clock runs (a fresh simulator instance each time). *)
let measure ~per_word ~n ~iters ~nprocs ~reps =
  let config = Config.butterfly_plus ~nprocs () in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Runner.time ~config (sweep ~per_word ~n ~iters ~nprocs));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let run (scale : Exp_common.scale) =
  Exp_common.section "throughput: wall-clock words/second of the memory hot path";
  let n = if scale.Exp_common.full then 96 else 64 in
  let iters = if scale.Exp_common.full then 8 else 4 in
  let nprocs = 4 and reps = 3 in
  let words = sweep_words ~n ~iters in
  let wall_word = measure ~per_word:true ~n ~iters ~nprocs ~reps in
  let wall_txn = measure ~per_word:false ~n ~iters ~nprocs ~reps in
  let rate w = float_of_int words /. w in
  let speedup = rate wall_txn /. rate wall_word in
  Printf.printf "  %d x %d grid, %d iterations, %d procs, %d data words\n" n n iters nprocs
    words;
  Printf.printf "  per-word stream: %.3f s wall  (%.0f words/s)\n" wall_word (rate wall_word);
  Printf.printf "  batched stream:  %.3f s wall  (%.0f words/s)\n" wall_txn (rate wall_txn);
  Printf.printf "  batched / per-word throughput: %.1fx\n" speedup;
  Exp_common.check_shape "batched stream moves >= 2x words/sec" (speedup >= 2.0);
  let oc = open_out "BENCH_hotpath.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"hotpath\",\n\
    \  \"host\": %s,\n\
    \  \"grid\": %d,\n\
    \  \"iters\": %d,\n\
    \  \"nprocs\": %d,\n\
    \  \"data_words\": %d,\n\
    \  \"per_word\": { \"wall_s\": %.6f, \"words_per_sec\": %.0f },\n\
    \  \"batched\": { \"wall_s\": %.6f, \"words_per_sec\": %.0f },\n\
    \  \"throughput_ratio\": %.2f\n\
     }\n"
    (Exp_common.host_json ()) n iters nprocs words wall_word (rate wall_word) wall_txn
    (rate wall_txn) speedup;
  close_out oc;
  Printf.printf "  wrote BENCH_hotpath.json\n%!"
