(* Host-side throughput and allocation behaviour of the memory hot path.

   The Memtxn layer exists to cut the simulator's own cost per simulated
   word: a per-word access stream pays one effect trap, one Memsys submit,
   one translation and one interconnect charge for every word, while a
   batched stream pays them once per transaction (the translation once per
   page run).  This experiment measures wall-clock words/second on the same
   Jacobi-style stencil sweep expressed both ways — the simulated traffic
   is identical; only the trap granularity differs — and records the result
   in BENCH_hotpath.json.

   Since the coalescing fast path (DESIGN.md section 4g) the per-word
   stream no longer pays a full suspend per word: while a fiber is armed,
   consecutive micro-ATC hits drain inline and are charged as one batched
   operation at the next effect boundary.  The experiment gates that
   ratchet: the per-word stream must stay within 12x of the batched
   stream (the seed measured 17.9x; the residual gap is the semantic
   floor — a coalesced word still pays the full per-word cache and
   interconnect simulation so goldens stay byte-identical, while a block
   descriptor legitimately bulk-charges).

   It also doubles as the allocation-budget gate: it measures
   [Gc.minor_words] deltas per access on three paths — the raw scratch
   driver ([Coherent.read_word_s]/[write_word_s]), the per-word Api stream,
   and the batched Api stream — and exits non-zero if the steady-state hit
   exceeds its budget (2 minor words/access; target 0) or the coalesced
   per-word stream exceeds its own (4 minor words/access). *)

module Api = Platinum_kernel.Api
module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Engine = Platinum_sim.Engine
module Runner = Platinum_runner.Runner
module Policy = Platinum_core.Policy
module Rights = Platinum_core.Rights
module Cmap = Platinum_core.Cmap
module Coherent = Platinum_core.Coherent

(* One stencil sweep: every interior row r is recomputed from rows r-1,
   r, r+1 of the source buffer into the destination buffer, [iters] times,
   rows block-partitioned over [nprocs] workers (no barriers: we measure
   host throughput, not the numeric fixed point). *)
let sweep ~per_word ~n ~iters ~nprocs () =
  let words = n * n in
  let buf_a = Api.alloc ~page_aligned:true words in
  let buf_b = Api.alloc ~page_aligned:true words in
  let interior = n - 2 in
  let lo me = 1 + (me * interior / nprocs) in
  let hi me = 1 + (((me + 1) * interior / nprocs) - 1) in
  let worker me =
    let src = ref buf_a and dst = ref buf_b in
    for _iter = 1 to iters do
      for r = lo me to hi me do
        if per_word then begin
          for j = 0 to n - 1 do
            let above = Api.read (!src + ((r - 1) * n) + j) in
            let here = Api.read (!src + (r * n) + j) in
            let below = Api.read (!src + ((r + 1) * n) + j) in
            Api.write (!dst + (r * n) + j) ((above + here + below) / 3)
          done
        end
        else begin
          let tri = Api.block_read (!src + ((r - 1) * n)) (3 * n) in
          let fresh =
            Array.init n (fun j -> (tri.(j) + tri.(n + j) + tri.((2 * n) + j)) / 3)
          in
          Api.block_write (!dst + (r * n)) fresh
        end
      done;
      let tmp = !src in
      src := !dst;
      dst := tmp
    done
  in
  Api.spawn_join_all
    ~procs:(List.init nprocs (fun i -> i))
    (List.init nprocs (fun me _ -> worker me))

(* Data words the sweep moves: 3n read + n written per interior row. *)
let sweep_words ~n ~iters = iters * (n - 2) * 4 * n

(* Best of [reps] wall-clock runs (a fresh simulator instance each time),
   plus the minor-heap words the whole stream allocates per data word
   (measured on the last rep; [Gc.minor_words] is sampled outside the run
   so the measurement itself is not in the window). *)
let measure ~per_word ~n ~iters ~nprocs ~reps =
  let config = Config.butterfly_plus ~nprocs () in
  let best = ref infinity in
  let mwords = ref 0.0 in
  let fp = Platinum_kernel.Fastpath.ctx () in
  let coalesced = ref 0 and fallbacks = ref 0 and runs = ref 0 in
  for _ = 1 to reps do
    Platinum_kernel.Fastpath.reset_stats fp;
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    ignore (Runner.time ~config (sweep ~per_word ~n ~iters ~nprocs));
    let dt = Unix.gettimeofday () -. t0 in
    mwords := Gc.minor_words () -. m0;
    let st = Platinum_kernel.Fastpath.stats fp in
    coalesced := st.Platinum_kernel.Fastpath.coalesced;
    fallbacks := st.Platinum_kernel.Fastpath.fallbacks;
    runs := st.Platinum_kernel.Fastpath.runs;
    if dt < !best then best := dt
  done;
  ( !best,
    !mwords /. float_of_int (sweep_words ~n ~iters),
    (!runs, !coalesced, !fallbacks) )

(* --- the steady-state hit, measured bare ---

   A single-page, single-processor access stream driven straight through
   the scratch entry points, with the aspace active and the translation
   warm: every access is the pure ATC-hit path the zero-alloc contract
   covers (no effect handlers, no kernel, no Memtxn splitting).  Reads and
   writes alternate; the page stays single-copy so writes never fault. *)
let measure_steady ~ops =
  let config = Config.butterfly_plus ~nprocs:4 ~page_words:1024 () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let coh =
    Coherent.create (Machine.create config) ~engine:(Engine.create ()) ~policy
      ~frames_per_module:64 ()
  in
  let cm = Coherent.new_aspace coh in
  let page = Coherent.new_cpage coh () in
  Coherent.bind coh cm ~vpage:0 page Rights.Read_write;
  ignore (Coherent.activate coh ~now:0 ~proc:0 ~aspace:(Cmap.aspace cm));
  (* Fault the translation in (write access: full rights from the start). *)
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 1);
  let sc = Coherent.make_scratch () in
  (* Warm-up: promote any lazily-built structure before the window. *)
  for i = 1 to 1_000 do
    ignore (Coherent.read_word_s coh sc ~now:(i * 1_000) ~proc:0 ~cmap:cm ~vaddr:0)
  done;
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 1 to ops do
    let now = (1_000 + i) * 1_000 in
    if i land 1 = 0 then ignore (Coherent.read_word_s coh sc ~now ~proc:0 ~cmap:cm ~vaddr:0)
    else Coherent.write_word_s coh sc ~now ~proc:0 ~cmap:cm ~vaddr:0 i
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dm = Gc.minor_words () -. m0 in
  (dt, dm /. float_of_int ops)

let run (scale : Exp_common.scale) =
  Exp_common.section "throughput: wall-clock words/second of the memory hot path";
  let n = if scale.Exp_common.full then 384 else 256 in
  let iters = if scale.Exp_common.full then 8 else 4 in
  let nprocs = 4 and reps = 3 in
  let words = sweep_words ~n ~iters in
  let wall_word, mwpa_word, (runs, coalesced, fallbacks) =
    measure ~per_word:true ~n ~iters ~nprocs ~reps
  in
  let wall_txn, mwpa_txn, _ = measure ~per_word:false ~n ~iters ~nprocs ~reps in
  let steady_ops = 1_000_000 in
  let steady_wall, mwpa_steady = measure_steady ~ops:steady_ops in
  let rate w = float_of_int words /. w in
  let speedup = rate wall_txn /. rate wall_word in
  let attempts = coalesced + fallbacks in
  let coalesce_frac = if attempts = 0 then 0.0 else float_of_int coalesced /. float_of_int attempts in
  Printf.printf "  %d x %d grid, %d iterations, %d procs, %d data words\n" n n iters nprocs
    words;
  Printf.printf "  per-word stream: %.3f s wall  (%.0f words/s)\n" wall_word (rate wall_word);
  Printf.printf "  batched stream:  %.3f s wall  (%.0f words/s)\n" wall_txn (rate wall_txn);
  Printf.printf "  batched / per-word throughput: %.1fx\n" speedup;
  Printf.printf "  coalescing: %d runs, %d words inline, %d fallbacks (%.1f%% coalesced)\n"
    runs coalesced fallbacks (100.0 *. coalesce_frac);
  Printf.printf "  minor words/access: steady hit %.3f, per-word stream %.1f, batched %.1f\n"
    mwpa_steady mwpa_word mwpa_txn;
  Printf.printf "  steady-state driver: %d accesses in %.3f s (%.0f accesses/s)\n" steady_ops
    steady_wall (float_of_int steady_ops /. steady_wall);
  Exp_common.check_shape "batched stream moves >= 2x words/sec" (speedup >= 2.0);
  (* The coalescing ratchet (DESIGN.md section 4g): the seed's per-word
     stream trailed the batched stream by 17.9x; with the effect-boundary
     coalescer the gap must stay within 12x.  (It cannot reach parity: a
     coalesced word still pays the full per-word cache + interconnect
     simulation so Counters and goldens stay byte-identical, while a
     block descriptor bulk-charges.) *)
  let ratio_limit = 12.0 in
  let ratio_ok = speedup <= ratio_limit in
  Exp_common.check_shape
    (Printf.sprintf "per-word stream within %.0fx of batched (seed: 17.9x)" ratio_limit)
    ratio_ok;
  (* The allocation budgets (DESIGN.md sections 4e, 4g): a steady-state
     hit may allocate at most 2 minor words (target 0), and the coalesced
     per-word Api stream at most 4 per access (the seed's instrumented
     stream allocated ~25). *)
  let budget = 2.0 and word_budget = 4.0 in
  let budget_ok = mwpa_steady <= budget in
  let word_budget_ok = mwpa_word <= word_budget in
  Exp_common.check_shape
    (Printf.sprintf "steady-state hit allocates <= %.0f minor words/access" budget)
    budget_ok;
  Exp_common.check_shape
    (Printf.sprintf "per-word stream allocates <= %.0f minor words/access" word_budget)
    word_budget_ok;
  let all_ok = ratio_ok && budget_ok && word_budget_ok in
  let oc = open_out "BENCH_hotpath.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"hotpath\",\n\
    \  \"host\": %s,\n\
    \  \"grid\": %d,\n\
    \  \"iters\": %d,\n\
    \  \"nprocs\": %d,\n\
    \  \"data_words\": %d,\n\
    \  \"per_word\": { \"wall_s\": %.6f, \"words_per_sec\": %.0f },\n\
    \  \"batched\": { \"wall_s\": %.6f, \"words_per_sec\": %.0f },\n\
    \  \"throughput_ratio\": %.2f,\n\
    \  \"ratio_budget\": { \"limit\": %.1f, \"seed\": 17.9, \"ok\": %b },\n\
    \  \"coalescing\": { \"runs\": %d, \"words_inline\": %d, \"fallbacks\": %d, \
     \"fraction\": %.4f },\n\
    \  \"steady_state\": { \"ops\": %d, \"wall_s\": %.6f, \"accesses_per_sec\": %.0f },\n\
    \  \"minor_words_per_access\": { \"steady_hit\": %.4f, \"per_word_stream\": %.2f, \
     \"batched_stream\": %.2f },\n\
    \  \"alloc_budget\": { \"steady_limit\": %.1f, \"per_word_limit\": %.1f, \"ok\": %b }\n\
     }\n"
    (Exp_common.host_json ()) n iters nprocs words wall_word (rate wall_word) wall_txn
    (rate wall_txn) speedup ratio_limit ratio_ok runs coalesced fallbacks coalesce_frac
    steady_ops steady_wall
    (float_of_int steady_ops /. steady_wall)
    mwpa_steady mwpa_word mwpa_txn budget word_budget
    (budget_ok && word_budget_ok);
  close_out oc;
  Printf.printf "  wrote BENCH_hotpath.json\n%!";
  if not all_ok then begin
    Printf.printf
      "  GATE FAILED: ratio=%.1fx (limit %.1f), steady=%.3f (limit %.1f), per-word=%.1f \
       (limit %.1f)\n\
       %!"
      speedup ratio_limit mwpa_steady budget mwpa_word word_budget;
    exit 1
  end
