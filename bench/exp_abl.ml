(* Ablations: the parameter studies §4.2 and §9 sketch.

   abl-t1:   sensitivity of application time to the freeze window t1
             (paper: insensitive from 10 ms up to about 100 ms).
   abl-pol:  every application under every replication policy.
   abl-page: effect of page size (§4.1's granularity analysis, live). *)

open Exp_common
module Gauss = Platinum_workload.Gauss
module Mergesort = Platinum_workload.Mergesort
module Backprop = Platinum_workload.Backprop
module Jacobi = Platinum_workload.Jacobi
module Policy = Platinum_core.Policy

let gauss_work ?(n = 256) ~config ~policy () =
  fst
    (run_platinum ~config ~policy
       (Gauss.make (Gauss.params ~n ~nprocs:config.Config.nprocs ~verify:false ())))

let run_t1 (scale : scale) =
  section "Ablation — freeze window t1 (paper: insensitive in 10..100 ms)";
  let n = if scale.full then 400 else 256 in
  let nprocs = List.fold_left max 1 scale.procs in
  Printf.printf
    "gauss %dx%d on %d processors, plus jacobi (whose boundary-page rewrite\n\
     interval sits right at the t1 boundary)\n\n%8s %12s %12s\n"
    n n nprocs "t1" "gauss" "jacobi";
  let t1s = [ 1; 3; 10; 30; 100; 300 ] in
  (* gauss and jacobi at each t1 are independent cells: one flat grid. *)
  let cells = List.concat_map (fun t1_ms -> [ (`Gauss, t1_ms); (`Jacobi, t1_ms) ]) t1s in
  let grid =
    par_map
      (fun (kind, t1_ms) ->
        let config =
          Config.with_policy_params ~t1_freeze_window:(t1_ms * 1_000_000)
            (Config.butterfly_plus ~nprocs ())
        in
        let policy = policy_named "platinum" config in
        match kind with
        | `Gauss -> (gauss_work ~n ~config ~policy (), 0)
        | `Jacobi ->
          let j, jr =
            run_platinum ~config ~policy
              (Jacobi.make
                 (Jacobi.params ~n:96 ~iters:10 ~nprocs:(min nprocs 8) ~verify:false ()))
          in
          (j, (Coherent.counters jr.Runner.setup.Runner.coherent).Counters.freezes))
      cells
  in
  let times =
    List.mapi
      (fun i t1_ms ->
        let t, _ = List.nth grid (2 * i) in
        let j, jfreezes = List.nth grid ((2 * i) + 1) in
        Printf.printf "%6dms %10.1fms %10.1fms (%d pages frozen)\n%!" t1_ms (ms_of t) (ms_of j)
          jfreezes;
        (t1_ms, (t, (j, jfreezes))))
      t1s
  in
  let at ms = fst (List.assoc ms times) in
  let jfreezes ms = snd (snd (List.assoc ms times)) in
  let ratio = float_of_int (at 100) /. float_of_int (at 10) in
  Printf.printf "\ngauss: T(t1=100ms) / T(t1=10ms) = %.3f\n" ratio;
  Printf.printf
    "(gauss reads pivots that are never rewritten, so t1 is irrelevant to it —\n\
     the paper's applications behave this way.  jacobi rewrites its boundary\n\
     pages every ~20 ms iteration, so t1 flips their regime: %d frozen pages at\n\
     t1 = 1 ms vs %d at t1 = 300 ms — and the times barely move, which is the\n\
     deeper reason the paper could leave t1 at 10 ms: near the break-even,\n\
     replicate-every-time and stay-remote cost about the same.)\n"
    (jfreezes 1) (jfreezes 300);
  check_shape "gauss insensitive from 10 ms to 100 ms (within 5%)"
    (abs_float (ratio -. 1.0) < 0.05);
  check_shape "jacobi boundaries change regime with t1" (jfreezes 1 < jfreezes 300)

let run_pol (scale : scale) =
  section "Ablation — replication policies across the application suite";
  let nprocs =
    let m = List.fold_left max 1 scale.procs in
    if m land (m - 1) = 0 then m else 8
  in
  (* Keep gauss in the density regime where movement can pay at all
     (Table 1): rows should nearly fill their pages. *)
  let napps, gauss_page_words = if scale.full then (400, 1024) else (192, 256) in
  Printf.printf "%d processors; gauss %dx%d with %d-byte pages; times in ms\n\n" nprocs napps
    napps (gauss_page_words * 4);
  Printf.printf "%-18s %12s %12s %12s\n" "policy" "gauss" "mergesort" "backprop";
  Printf.printf "%s\n" (String.make 58 '-');
  (* policy x application cells, flattened for maximum pool occupancy. *)
  let apps = [ `Gauss; `Mergesort; `Backprop ] in
  let cells =
    List.concat_map (fun name -> List.map (fun a -> (name, a)) apps) Policy.default_names
  in
  let grid =
    par_map
      (fun (name, app) ->
        match app with
        | `Gauss ->
          let gauss_config = Config.butterfly_plus ~nprocs ~page_words:gauss_page_words () in
          gauss_work ~n:napps ~config:gauss_config ~policy:(policy_named name gauss_config) ()
        | `Mergesort ->
          let config = Config.butterfly_plus ~nprocs () in
          fst
            (run_platinum ~config ~policy:(policy_named name config)
               (Mergesort.make (Mergesort.params ~n:16_384 ~nprocs ~verify:false ())))
        | `Backprop ->
          let config = Config.butterfly_plus ~nprocs () in
          fst
            (run_platinum ~config ~policy:(policy_named name config)
               (Backprop.make (Backprop.params ~epochs:2 ~nprocs ~verify:false ()))))
      cells
  in
  let results =
    List.mapi
      (fun i name ->
        let g = List.nth grid (3 * i)
        and m = List.nth grid ((3 * i) + 1)
        and b = List.nth grid ((3 * i) + 2) in
        Printf.printf "%-18s %11.1f %12.1f %12.1f\n%!" name (ms_of g) (ms_of m) (ms_of b);
        (name, (g, m, b)))
      Policy.default_names
  in
  let g n = let a, _, _ = List.assoc n results in a in
  let m n = let _, b, _ = List.assoc n results in b in
  let b n = let _, _, c = List.assoc n results in c in
  Printf.printf "\n";
  check_shape "gauss: platinum beats uniform-system" (g "platinum" < g "uniform-system");
  check_shape
    "gauss: platinum beats bolosky (read-only-after-a-phase pages still replicate, cf. section 8)"
    (g "platinum" < g "bolosky");
  check_shape "mergesort: platinum beats static placement" (m "platinum" < m "static-place");
  check_shape
    "backprop: freezing beats always-replicate (fine-grain sharing thrashes the protocol)"
    (b "platinum" < b "always-replicate");
  check_shape
    "backprop: freezing beats competitive management (section 8: careful placement \
     does not reduce contention; not moving at all does)"
    (float_of_int (b "platinum") < 0.1 *. float_of_int (b "competitive"))

let run_page (scale : scale) =
  section "Ablation — page size (granularity of data access, cf. §4.1)";
  let nprocs = List.fold_left max 1 scale.procs in
  let n = if scale.full then 400 else 256 in
  Printf.printf "gauss %dx%d and backprop on %d processors; times in ms\n\n" n n nprocs;
  Printf.printf "%10s %12s %12s\n" "page" "gauss" "backprop";
  Printf.printf "%s\n" (String.make 38 '-');
  let page_sizes = [ 64; 128; 256; 512; 1024; 2048; 4096 ] in
  let computed =
    par_map
      (fun page_words ->
        let config = Config.butterfly_plus ~nprocs ~page_words () in
        let policy = policy_named "platinum" config in
        let g = gauss_work ~n ~config ~policy () in
        let b =
          fst
            (run_platinum ~config ~policy
               (Backprop.make (Backprop.params ~epochs:2 ~nprocs ~verify:false ())))
        in
        (page_words, (g, b)))
      page_sizes
  in
  let rows =
    List.map
      (fun (page_words, (g, b)) ->
        Printf.printf "%8dB %11.1f %12.1f\n%!" (page_words * 4) (ms_of g) (ms_of b);
        (page_words, (g, b)))
      computed
  in
  Printf.printf
    "\n(§4.1: larger pages amortize the fixed fault overhead while the access\n\
     granularity stays above the page size; once pages outgrow the data's\n\
     granularity, extra copying is pure waste)\n";
  let g pw = fst (List.assoc pw rows) in
  let best = List.fold_left (fun acc (_, (t, _)) -> min acc t) max_int rows in
  check_shape "tiny pages lose (per-page fault overhead unamortized)" (g 64 > best);
  check_shape "huge pages lose (copying far beyond the rows' granularity)" (g 4096 > best);
  check_shape "the optimum is at the data's granularity (128-1024 words for 256-word rows)"
    (List.exists (fun pw -> g pw = best) [ 128; 256; 512; 1024 ])
