(* Shared plumbing for the experiment harness. *)

module Runner = Platinum_runner.Runner
module Par = Platinum_runner.Par
module Report = Platinum_stats.Report
module Config = Platinum_machine.Config
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent
module Counters = Platinum_core.Counters
module Outcome = Platinum_workload.Outcome
module Time_ns = Platinum_sim.Time_ns

type scale = {
  full : bool;  (** paper-size problems (slower) *)
  procs : int list;  (** processor counts for speedup curves *)
  kernel : bool;  (** scale experiment: run only the hosted-kernel section *)
}

let default_procs = [ 1; 2; 4; 8; 12; 16 ]

(* Fan a grid of independent simulation cells over the domain pool (width
   set by the harness's -j flag; -j 1 is strictly sequential).  Cell
   functions must not print: compute the grid first, then format rows in
   input order — that keeps the report byte-identical at any -j. *)
let par_map f cells = Par.map f cells

let policy_named name (config : Config.t) =
  match Policy.of_string ~t1:config.Config.t1_freeze_window name with
  | Ok p -> p
  | Error e -> failwith e

(* Run a workload (outcome, main) on PLATINUM; die loudly if its
   self-verification failed. *)
let run_platinum ?config ?policy (out, main) =
  let r = Runner.time ?config ?policy main in
  if not out.Outcome.ok then failwith ("workload verification failed: " ^ out.Outcome.detail);
  (out.Outcome.work_ns, r)

let run_uma ~nprocs (out, main) =
  let r = Runner.time_uma ~nprocs main in
  if not out.Outcome.ok then failwith ("workload verification failed: " ^ out.Outcome.detail);
  (out.Outcome.work_ns, r)

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let subsection title = Printf.printf "\n--- %s ---\n%!" title

(* Speedup-curve table: one row per processor count, one (name, T(p))
   series per column.  T1 of each series is its own baseline. *)
let print_speedup_table ~procs series =
  let name_w = 14 in
  Printf.printf "%6s" "procs";
  List.iter (fun (name, _) -> Printf.printf " | %*s %8s" name_w name "") series;
  Printf.printf "\n";
  List.iteri
    (fun i p ->
      Printf.printf "%6d" p;
      List.iter
        (fun (_, times) ->
          let t = List.nth times i in
          let t1 = List.hd times in
          let p1 = List.hd procs in
          let speedup = float_of_int (t1 * p1) /. float_of_int t in
          Printf.printf " | %*s %8s"
            name_w
            (Printf.sprintf "%8.2fx" speedup)
            (Time_ns.to_string t))
        series;
      Printf.printf "\n")
    procs;
  Printf.printf "%!"

let ms_of ns = float_of_int ns /. 1e6

let check_shape what ok =
  Printf.printf "  [%s] %s\n%!" (if ok then "OK" else "MISS") what

(* One "host" JSON object for every BENCH_*.json file, so trajectory
   entries are comparable across machines. *)
let host_json () =
  Printf.sprintf
    "{ \"cores\": %d, \"recommended_domains\": %d, \"ocaml_version\": %S, \
     \"word_size_bits\": %d }"
    (Domain.recommended_domain_count ())
    (Par.default_jobs ()) Sys.ocaml_version Sys.word_size
