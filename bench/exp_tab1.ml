(* Table 1: minimum page size for which migration always pays (§4.1). *)

open Exp_common
module M = Platinum_analysis.Migration_model

let paper =
  [
    (0.17, [ Some 1070; None; None ]);
    (0.24, [ Some 445; None; None ]);
    (0.35, [ Some 232; Some 973; None ]);
    (0.48, [ Some 149; Some 435; None ]);
    (0.60, [ Some 111; Some 298; Some 1784 ]);
    (0.75, [ Some 85; Some 210; Some 793 ]);
    (1.0, [ Some 61; Some 141; Some 412 ]);
    (1.5, [ Some 39; Some 84; Some 210 ]);
    (2.0, [ Some 28; Some 61; Some 141 ]);
  ]

let cell = function
  | None -> "never"
  | Some s -> string_of_int s

let run (_ : scale) =
  section "Table 1 — S_min, minimum page size (words) for which migration pays";
  Printf.printf "inequality 2 with the paper's constants: s > 107*g / (rho - 0.24*g)\n\n";
  Printf.printf "%6s | %22s | %22s\n" "rho" "ours  (g=0.5, 1, 2)" "paper (g=0.5, 1, 2)";
  Printf.printf "%s\n" (String.make 58 '-');
  let mism = ref 0 in
  (* The table's cells are independent evaluations of inequality 2: compute
     the whole rho-grid through the pool, then print rows in order. *)
  let rows =
    par_map
      (fun (rho, row) ->
        ignore row;
        (rho, List.map (fun g -> M.min_page_words_rounded ~g ~rho) M.table1_gs))
      (M.table1 ())
  in
  List.iter2
    (fun (rho, ours) (_, prow) ->
      Printf.printf "%6.2f | %6s %6s %7s | %6s %6s %7s\n" rho (cell (List.nth ours 0))
        (cell (List.nth ours 1)) (cell (List.nth ours 2)) (cell (List.nth prow 0))
        (cell (List.nth prow 1)) (cell (List.nth prow 2));
      List.iter2
        (fun a b ->
          match a, b with
          | Some x, Some y when abs (x - y) > 1 -> incr mism
          | None, Some _ | Some _, None -> incr mism
          | _ -> ())
        ours prow)
    rows paper;
  Printf.printf
    "\n%d cells differ by more than rounding.  (The paper's own table mixes rounding\n\
     directions, and its (rho=0.48, g=1) = 435 is inconsistent with its\n\
     (rho=0.24, g=0.5) = 445 — the formula makes those two cells identical.)\n"
    !mism;
  check_shape "all but the known-inconsistent cell within +/-1" (!mism <= 1);
  Printf.printf "\ng(p) for strict round-robin: g(2)=%.2f (worst), g(4)=%.2f, g(16)=%.2f -> 1\n"
    (M.g_round_robin ~p:2) (M.g_round_robin ~p:4) (M.g_round_robin ~p:16)
