(* Host-performance micro-benchmarks (Bechamel) of the simulator's hot
   paths.  These measure the OCaml implementation itself — how fast the
   event queue, processor sets, and the coherent fault path run on the
   host — which bounds how large a simulated machine/problem is practical. *)

open Bechamel
open Toolkit
module Engine = Platinum_sim.Engine
module Rng = Platinum_sim.Rng
module Procset = Platinum_machine.Procset
module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Rights = Platinum_core.Rights
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent

module Eheap = Platinum_sim.Eheap

let test_eheap =
  Test.make ~name:"eheap: 64 insert + drain"
    (Staged.stage (fun () ->
         let h = Eheap.create ~capacity:64 ~dummy:0 () in
         for i = 63 downto 0 do
           Eheap.add h ~time:i ~seq:(63 - i) i
         done;
         while not (Eheap.is_empty h) do
           ignore (Eheap.pop h)
         done))

let test_engine =
  Test.make ~name:"engine: schedule + run 64 events"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         for i = 1 to 64 do
           Engine.schedule_at e ~at:i (fun () -> ())
         done;
         Engine.run e))

let test_rng =
  let r = Rng.create 1L in
  Test.make ~name:"rng: int draw" (Staged.stage (fun () -> ignore (Rng.int r 1000)))

let test_procset =
  Test.make ~name:"procset: fold over 16"
    (Staged.stage (fun () -> ignore (Procset.fold (fun _ a -> a + 1) (Procset.full ~n:16) 0)))

let make_coherent () =
  let config = Config.butterfly_plus ~nprocs:16 ~page_words:1024 () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let coh =
    Coherent.create (Machine.create config) ~engine:(Engine.create ()) ~policy
      ~frames_per_module:64 ()
  in
  let cm = Coherent.new_aspace coh in
  let page = Coherent.new_cpage coh () in
  Coherent.bind coh cm ~vpage:0 page Rights.Read_write;
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 1);
  (coh, cm)

let test_read_hit =
  let coh, cm = make_coherent () in
  let now = ref 1_000_000 in
  Test.make ~name:"coherent: steady-state word read"
    (Staged.stage (fun () ->
         now := !now + 1_000;
         ignore (Coherent.read_word coh ~now:!now ~proc:0 ~cmap:cm ~vaddr:0)))

let run (_ : Exp_common.scale) =
  Exp_common.section "Simulator hot paths (Bechamel, host performance)";
  let tests =
    Test.make_grouped ~name:"platinum"
      [ test_eheap; test_engine; test_rng; test_procset; test_read_hit ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    results;
  Printf.printf "%!"
