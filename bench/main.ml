(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 3 and EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe                 # everything, reduced sizes
     dune exec bench/main.exe -- fig1 --full  # one experiment, paper sizes
     dune exec bench/main.exe -- --list       # experiment ids *)

open Cmdliner

let experiments : (string * string * (Exp_common.scale -> unit)) list =
  [
    ("fig1", "Gaussian elimination speedup (PLATINUM / Uniform System / SMP)", Exp_fig1.run);
    ("tab1", "Table 1: minimum page size for which migration pays", Exp_tab1.run);
    ("sec4", "cost of basic coherent-memory operations", Exp_sec4.run);
    ("fig4", "protocol state-transition diagram from the implementation", Exp_fig4.run);
    ("fig5", "merge sort speedup vs the Sequent Symmetry model", Exp_fig5.run);
    ("fig6", "recurrent backpropagation speedup", Exp_fig6.run);
    ("anec", "the co-located spin-lock anecdote and the defrost daemon", Exp_anec.run);
    ("abl-t1", "ablation: freeze-window t1 sweep", Exp_abl.run_t1);
    ("abl-pol", "ablation: all policies across the application suite", Exp_abl.run_pol);
    ("abl-page", "ablation: page-size sweep", Exp_abl.run_page);
    ("abl-arch", "ablation: block-transfer speed (the vital mechanism)", Exp_arch.run_arch);
    ("abl-defrost", "ablation: periodic vs adaptive defrost daemon", Exp_arch.run_defrost);
    ("abl-cache", "ablation: section-7 local caches without hardware coherency", Exp_arch.run_cache);
    ("hotpath", "Bechamel micro-benchmarks of the simulator itself", Exp_bechamel.run);
    ( "throughput",
      "wall-clock words/second of the memory hot path (emits BENCH_hotpath.json)",
      Exp_hotpath.run );
    ( "sweep",
      "domain-parallel sweep wall-clock and event-core events/sec (emits BENCH_sweep.json)",
      Exp_sweep.run );
    ( "scale",
      "sharded engine over hierarchical machines past the Butterfly (emits \
       BENCH_scale.json)",
      Exp_scale.run );
    ( "mc",
      "bounded model check: protocol invariants in every reachable state + mutation check",
      Exp_mc.run );
    ( "soak",
      "fault-injection soak: workloads correct + deterministic under faults (emits \
       BENCH_soak.json)",
      Exp_soak.run );
    ( "serve",
      "open-loop request serving: tail latency per transport + SLO under faults (emits \
       BENCH_serve.json)",
      Exp_serve.run );
  ]

let run_selected names full procs jobs shards kernel list_only =
  if list_only then begin
    List.iter (fun (id, doc, _) -> Printf.printf "%-10s %s\n" id doc) experiments;
    0
  end
  else begin
    Platinum_runner.Par.set_jobs jobs;
    Platinum_runner.Par.set_shards shards;
    let scale = { Exp_common.full; procs; kernel } in
    let targets =
      match names with
      | [] -> experiments
      | names ->
        List.map
          (fun n ->
            match List.find_opt (fun (id, _, _) -> id = n) experiments with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %S; try --list\n" n;
              exit 2)
          names
    in
    let t0 = Sys.time () in
    List.iter (fun (_, _, f) -> f scale) targets;
    Printf.printf "\n(harness done in %.1fs of host CPU time)\n" (Sys.time () -. t0);
    0
  end

let names_arg =
  let doc = "Experiments to run (default: all).  See --list." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let full_arg =
  let doc = "Use the paper's full problem sizes (slower)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let procs_arg =
  let doc = "Processor counts for speedup curves (comma separated)." in
  Arg.(value & opt (list int) Exp_common.default_procs & info [ "procs" ] ~doc)

let jobs_arg =
  let doc =
    "Host domains, for sweep grids (independent simulations side by side) and for \
     driving the shards of one sharded simulation (default: \
     Domain.recommended_domain_count; 1 reproduces today's sequential behavior \
     exactly).  Results are byte-identical at any -j."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Event-queue shards for intra-simulation parallelism (the scale experiment; \
     default 1 = the sequential engine, bit for bit).  Orthogonal to -j: --shards \
     splits one simulation, -j supplies the domains that drive it.  Results are \
     byte-identical at any shard count."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

let kernel_arg =
  let doc =
    "Scale experiment: run only the hosted-kernel section (per-node kernel \
     simulations under the sharded engine), skipping the message-level workloads.  \
     The CI smoke uses this for a fast determinism check."
  in
  Arg.(value & flag & info [ "kernel" ] ~doc)

let list_arg =
  let doc = "List experiment ids and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let cmd =
  let doc = "regenerate the tables and figures of the PLATINUM paper" in
  let info = Cmd.info "platinum-bench" ~doc in
  Cmd.v info
    Term.(
      const run_selected $ names_arg $ full_arg $ procs_arg $ jobs_arg $ shards_arg
      $ kernel_arg $ list_arg)

let () = exit (Cmd.eval' cmd)
