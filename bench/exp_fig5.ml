(* Figure 5: merge sort speedup, PLATINUM/Butterfly vs the Sequent
   Symmetry (model A: small write-through caches on one bus). *)

open Exp_common
module Mergesort = Platinum_workload.Mergesort
module Uma_sys = Platinum_cache.Uma_sys

let run (scale : scale) =
  section "Figure 5 — parallel merge sort speedup";
  let n = if scale.full then 65_536 else 32_768 in
  (* Tree merge sort needs power-of-two thread counts. *)
  let procs = List.filter (fun p -> p land (p - 1) = 0) scale.procs in
  let procs = if procs = [] then [ 1; 2; 4; 8; 16 ] else procs in
  Printf.printf "%d words; Sequent model: %d-byte write-through caches, shared bus\n" n
    (Uma_sys.sequent.Uma_sys.cache_words * 4);
  let plat nprocs =
    fst (run_platinum (Mergesort.make (Mergesort.params ~n ~nprocs ~verify:false ())))
  in
  let uma nprocs =
    fst (run_uma ~nprocs (Mergesort.make (Mergesort.params ~n ~nprocs ~verify:false ())))
  in
  (* Both curves' points are independent cells: one fan-out, split after. *)
  let times =
    par_map
      (fun (kind, p) -> match kind with `Plat -> plat p | `Uma -> uma p)
      (List.concat_map (fun k -> List.map (fun p -> (k, p)) procs) [ `Plat; `Uma ])
  in
  let npts = List.length procs in
  let tp = List.filteri (fun i _ -> i < npts) times
  and tu = List.filteri (fun i _ -> i >= npts) times in
  print_speedup_table ~procs
    [ ("PLATINUM/Butterfly", tp); ("Sequent Symmetry", tu) ];
  let last l = List.nth l (List.length l - 1) in
  let sp = float_of_int (List.hd tp) /. float_of_int (last tp) in
  let su = float_of_int (List.hd tu) /. float_of_int (last tu) in
  Printf.printf "\n(paper: \"better speedup running on the Butterfly Plus under PLATINUM than\n";
  Printf.printf " on the Sequent Symmetry for the same size problem\" — small write-through\n";
  Printf.printf " caches keep nothing between merge phases and put every write on the bus)\n";
  check_shape
    (Printf.sprintf "PLATINUM speedup %.2f > Sequent %.2f at %d procs" sp su (last procs))
    (sp > su)
