(* Figure 1: Gaussian elimination speedup vs processors.

   Paper (800x800, 16 processors): PLATINUM 13.5x, Uniform System 10.6x,
   SMP message passing 15.3x.  We run the PLATINUM program under the
   coherent-memory policy, the same program under the Uniform-System
   baseline (scattered placement, no movement), and the explicit
   message-passing implementation. *)

open Exp_common
module Gauss = Platinum_workload.Gauss
module Gauss_mp = Platinum_workload.Gauss_mp

let run (scale : scale) =
  section "Figure 1 — Gaussian elimination speedup (integer, no pivoting)";
  let n = if scale.full then 800 else 400 in
  (* The machine keeps all its nodes in every run; only the number of
     worker threads varies.  This matters for the Uniform System baseline,
     whose data is scattered across every memory module even when one
     processor computes. *)
  let nodes = List.fold_left max 1 scale.procs in
  Printf.printf
    "matrix %dx%d%s on a %d-node machine; speedups relative to each series' 1-worker run\n" n n
    (if scale.full then " (paper size)" else " (use --full for the paper's 800)")
    nodes;
  let shared policy_name nprocs =
    let config = Config.butterfly_plus ~nprocs:nodes () in
    let work, _ =
      run_platinum ~config
        ~policy:(policy_named policy_name config)
        (Gauss.make (Gauss.params ~n ~nprocs ~verify:false ()))
    in
    work
  in
  let mp nprocs =
    let config = Config.butterfly_plus ~nprocs:nodes () in
    let work, _ =
      run_platinum ~config (Gauss_mp.make (Gauss_mp.params ~n ~nprocs ~verify:false ()))
    in
    work
  in
  let procs = scale.procs in
  (* One flat grid of independent cells (3 series x |procs|) through the
     domain pool; results come back in input order. *)
  let series = [ `Policy "platinum"; `Policy "uniform-system"; `Mp ] in
  let cells = List.concat_map (fun s -> List.map (fun p -> (s, p)) procs) series in
  let times =
    par_map
      (fun (s, nprocs) ->
        match s with
        | `Policy name -> shared name nprocs
        | `Mp -> mp nprocs)
      cells
  in
  let npts = List.length procs in
  let platinum = List.filteri (fun i _ -> i / npts = 0) times in
  let uniform = List.filteri (fun i _ -> i / npts = 1) times in
  let smp = List.filteri (fun i _ -> i / npts = 2) times in
  print_speedup_table ~procs
    [ ("PLATINUM", platinum); ("Uniform System", uniform); ("SMP (ports)", smp) ];
  (match List.rev procs, List.rev platinum, List.rev uniform, List.rev smp with
  | pmax :: _, tp :: _, tu :: _, ts :: _ ->
    let speedup t1 t = float_of_int (t1 * List.hd procs) /. float_of_int t in
    let sp = speedup (List.hd platinum) tp
    and su = speedup (List.hd uniform) tu
    and ss = speedup (List.hd smp) ts in
    Printf.printf "\nat %d processors: PLATINUM %.1fx, Uniform System %.1fx, SMP %.1fx\n" pmax sp
      su ss;
    Printf.printf "paper (16 procs, n=800): 13.5x, 10.6x, 15.3x\n";
    Printf.printf
      "\n(Note: the Uniform System's *speedup* is optimistic here — its losses on the\n\
      \ real Butterfly came from switch blocking under scattered traffic, which this\n\
      \ model's FIFO-per-module contention underestimates; its *absolute* times show\n\
      \ what coherent memory buys.)\n";
    check_shape "message passing >= PLATINUM (paper: 15.3 vs 13.5)" (ss >= sp -. 0.5);
    check_shape
      (Printf.sprintf "PLATINUM %.1fx faster than the Uniform System in absolute time"
         (float_of_int tu /. float_of_int tp))
      (tp < tu);
    if scale.full then
      check_shape "PLATINUM within ~10%% of hand-tuned message passing (paper: 13.5/15.3)"
        (sp >= 0.85 *. ss)
    else
      Printf.printf "  (run with --full for the paper-size 800x800 comparison)\n"
  | _ -> ())
