(* Bounded model check of the coherence protocol (the PR 3 sanitizer's
   exhaustive mode; see DESIGN.md section 4c).

   Two passes, both driving the real Coherent system with the invariant
   monitor armed:

   1. The protocol as implemented: explore every read / write / freeze /
      thaw / defrost interleaving of the small configurations to the depth
      bound.  Expected result: zero violations; the reachable-state counts
      are printed (and checked non-trivial).

   2. The mutation check: the same exploration with the deliberately
      broken write-invalidate transition
      (Shootdown.test_skip_refmask_clear — the reference mask is not
      cleared when remote translations are invalidated).  Expected result:
      the checker reports violations.  A checker that stays silent on a
      known-broken protocol proves nothing; this pass fails the experiment
      (exit 1) if the seeded bug goes unnoticed.

   The default depth is 8 for the 2-processor / 1-page configuration (the
   ISSUE's acceptance floor) plus shallower sweeps of the larger configs,
   sized to stay well under the CI budget. *)

module Mc = Platinum_check.Mc

let failed = ref false

let check what ok =
  if not ok then begin
    failed := true;
    Printf.printf "MC_FAIL %s\n%!" what
  end

let run_config ~nprocs ~npages ~depth =
  let r = Mc.explore ~nprocs ~npages ~depth () in
  Format.printf "%a@.@." Mc.pp_report r;
  check
    (Printf.sprintf "%dp/%dpg depth %d: no violations (got %d)" nprocs npages depth
       r.Mc.total_violations)
    (r.Mc.total_violations = 0);
  check
    (Printf.sprintf "%dp/%dpg depth %d: exploration is non-trivial (%d states)" nprocs npages
       depth r.Mc.states)
    (r.Mc.states > 10);
  check (Printf.sprintf "%dp/%dpg depth %d: state space not truncated" nprocs npages depth)
    (not r.Mc.truncated)

let run_mutation () =
  (* Depth 4 suffices: W0; R1; W0 re-invalidates proc 1's translation with
     the broken refmask clear, and the post-fault sweep trips. *)
  let r = Mc.explore ~mutate:true ~nprocs:2 ~npages:1 ~depth:4 () in
  Format.printf "%a@.@." Mc.pp_report r;
  check
    (Printf.sprintf "mutation (skip refmask clear) is caught (%d violations)"
       r.Mc.total_violations)
    (r.Mc.total_violations > 0)

let run (scale : Exp_common.scale) =
  Exp_common.section "bounded model check: protocol invariants in every reachable state";
  Exp_common.subsection "as implemented (expect 0 violations)";
  run_config ~nprocs:2 ~npages:1 ~depth:8;
  run_config ~nprocs:2 ~npages:2 ~depth:(if scale.Exp_common.full then 6 else 5);
  run_config ~nprocs:3 ~npages:1 ~depth:(if scale.Exp_common.full then 6 else 5);
  Exp_common.subsection "mutation check (expect violations: the checker must catch a seeded bug)";
  run_mutation ();
  if !failed then exit 1;
  Printf.printf "MC_OK\n%!"
