(* Figure 6: the recurrent-backpropagation simulator — fine-grain sharing
   that the coherent memory gives up on (freezing the data pages), leaving
   linear speedup with roughly half-a-processor increments. *)

open Exp_common
module Backprop = Platinum_workload.Backprop
module Report = Platinum_stats.Report

let run (scale : scale) =
  section "Figure 6 — recurrent backpropagation simulator speedup";
  let epochs = if scale.full then 5 else 3 in
  Printf.printf "40 units, 16 input/output pairs (the encoder problem), %d epochs\n" epochs;
  let procs = scale.procs in
  let results =
    par_map
      (fun nprocs ->
        run_platinum (Backprop.make (Backprop.params ~epochs ~nprocs ~verify:false ())))
      procs
  in
  let times = List.map fst results in
  print_speedup_table ~procs [ ("PLATINUM", times) ];
  (* slope of the speedup curve over the top half of the range *)
  let t1 = List.hd times in
  let speedups = List.map (fun t -> float_of_int t1 /. float_of_int t) times in
  let last l = List.nth l (List.length l - 1) in
  let n = List.length procs in
  let mid_p = List.nth procs (n / 2) and mid_s = List.nth speedups (n / 2) in
  let slope = (last speedups -. mid_s) /. float_of_int (last procs - mid_p) in
  Printf.printf "\nincremental contribution per added processor (upper half of curve): %.2f\n" slope;
  Printf.printf "paper: linear, each increment about 1/2 of a local-memory processor\n";
  (* every application data page ends frozen *)
  let _, r = List.nth results (n - 1) in
  let data = Report.find r.Runner.report ~label_prefix:"heap" in
  let frozen = List.for_all (fun row -> row.Report.was_frozen) data in
  check_shape "speedup keeps growing (linear, not saturating)" (last speedups > mid_s +. 0.5);
  check_shape "increment per processor roughly 1/2 (0.3-0.7)" (slope > 0.3 && slope < 0.7);
  check_shape "all shared data pages end up frozen" frozen
