(* sweep: the domain-parallel harness measuring itself.

   A fixed grid of (workload, policy, nprocs) cells — the same shape as
   every figure/ablation sweep — runs once sequentially (-j 1 semantics)
   and once on 4 domains, and the harness checks the two produce
   byte-identical result tables while recording both wall-clocks.  A hold-
   model micro-benchmark of the event core (the array-backed Eheap that
   sits under Engine, plus the full Engine dispatch loop) tracks
   events/sec.  Everything lands in BENCH_sweep.json so the perf
   trajectory is comparable across machines (host metadata included; a
   [parallel_meaningful] flag marks whether the host had the domains for
   the wall-clock comparison to mean anything). *)

open Exp_common
module Gauss = Platinum_workload.Gauss
module Mergesort = Platinum_workload.Mergesort
module Backprop = Platinum_workload.Backprop
module Outcome = Platinum_workload.Outcome
module Eheap = Platinum_sim.Eheap
module Engine = Platinum_sim.Engine
module Rng = Platinum_sim.Rng

(* --- the fixed sweep grid --- *)

type cell = {
  label : string;
  nprocs : int;
  policy : string;
  make : nprocs:int -> Outcome.t * (unit -> unit);
}

let grid =
  let gauss ~nprocs = Gauss.make (Gauss.params ~n:96 ~nprocs ~verify:false ()) in
  let msort ~nprocs = Mergesort.make (Mergesort.params ~n:8_192 ~nprocs ~verify:false ()) in
  let bprop ~nprocs = Backprop.make (Backprop.params ~epochs:1 ~nprocs ~verify:false ()) in
  List.concat
    [
      List.concat_map
        (fun policy ->
          List.map
            (fun nprocs -> { label = "gauss"; nprocs; policy; make = gauss })
            [ 1; 2; 4; 8 ])
        [ "platinum"; "uniform-system" ];
      List.map (fun nprocs -> { label = "msort"; nprocs; policy = "platinum"; make = msort })
        [ 1; 4 ];
      List.map (fun nprocs -> { label = "bprop"; nprocs; policy = "platinum"; make = bprop })
        [ 1; 4 ];
    ]

(* One deterministic result line per cell: simulated times and protocol
   counters — everything the figures are built from. *)
let run_cell c =
  let config = Config.butterfly_plus ~nprocs:c.nprocs () in
  let policy = policy_named c.policy config in
  let out, main = c.make ~nprocs:c.nprocs in
  let r = Runner.time ~config ~policy main in
  if not out.Outcome.ok then failwith ("sweep cell failed: " ^ out.Outcome.detail);
  let cnt = Coherent.counters r.Runner.setup.Runner.coherent in
  Printf.sprintf "%-6s %-15s p=%-2d elapsed=%-12d work=%-12d repl=%-5d migr=%-5d freeze=%d"
    c.label c.policy c.nprocs r.Runner.elapsed out.Outcome.work_ns
    cnt.Counters.replications cnt.Counters.migrations cnt.Counters.freezes

let timed_render ~jobs =
  let t0 = Unix.gettimeofday () in
  let lines = Par.map ~jobs run_cell grid in
  (lines, Unix.gettimeofday () -. t0)

(* --- event-core micro-benchmark (hold model) --- *)

(* Classic hold: keep [fill] pending events; [ops] times pop the minimum
   and push a successor a pseudo-random delay later.  This is exactly the
   event queue's steady-state access pattern. *)
let hold_ops = 200_000
let hold_fill = 64

let hold_eheap () =
  let rng = Rng.create 7L in
  let h = Eheap.create ~capacity:hold_fill ~dummy:0 () in
  for i = 0 to hold_fill - 1 do
    Eheap.add h ~time:(Rng.int rng 1_000) ~seq:i i
  done;
  let seq = ref hold_fill in
  for _ = 1 to hold_ops do
    let t = Eheap.min_time h in
    ignore (Eheap.pop h);
    Eheap.add h ~time:(t + 1 + Rng.int rng 1_000) ~seq:!seq !seq;
    incr seq
  done

(* Whole-engine dispatch: self-rescheduling events through schedule/run. *)
let engine_churn () =
  let e = Engine.create () in
  let rng = Rng.create 7L in
  let fired = ref 0 in
  let rec event () =
    incr fired;
    if !fired + hold_fill <= hold_ops then
      Engine.schedule_after e ~delay:(1 + Rng.int rng 1_000) event
  in
  for _ = 1 to hold_fill do
    Engine.schedule_after e ~delay:(1 + Rng.int rng 1_000) event
  done;
  Engine.run e

let best_of ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let run (_ : scale) =
  section "sweep: domain-parallel harness wall-clock + event-core events/sec";
  let jobs_par = 4 in
  Printf.printf "grid: %d independent cells; host recommends %d domain(s)\n%!"
    (List.length grid) (Par.default_jobs ());
  let seq_lines, seq_wall = timed_render ~jobs:1 in
  let par_lines, par_wall = timed_render ~jobs:jobs_par in
  let identical = seq_lines = par_lines in
  List.iter print_endline seq_lines;
  let speedup = seq_wall /. par_wall in
  (* A single-core host runs the "parallel" pass on one domain: it still
     proves determinism (identical tables), but the wall-clock comparison
     is meaningless noise, so the comparison line is skipped and the JSON
     carries [parallel_meaningful: false] with a null speedup. *)
  let parallel_meaningful = Par.default_jobs () > 1 in
  Printf.printf "\n  sequential (-j 1): %.3f s wall\n" seq_wall;
  if parallel_meaningful then
    Printf.printf "  parallel   (-j %d): %.3f s wall  (%.2fx)\n" jobs_par par_wall speedup
  else
    Printf.printf "  (host has %d core(s): parallel wall-clock not meaningful, skipped)\n"
      (Par.default_jobs ());
  check_shape "-j 4 table byte-identical to -j 1" identical;
  (* ISSUE 2 targets >=3x on a 4-core host; a 1-core host can only confirm
     determinism and the absence of overhead, so gate the shape check on
     the host actually having the cores. *)
  if Par.default_jobs () >= 4 then
    check_shape "parallel sweep >= 3x on >=4-core host" (speedup >= 3.0);
  let wall_eheap = best_of ~reps:3 hold_eheap in
  let wall_engine = best_of ~reps:3 engine_churn in
  let rate w = float_of_int hold_ops /. w in
  Printf.printf "\n  event core (hold model, %d ops, %d pending):\n" hold_ops hold_fill;
  Printf.printf "    eheap         %12.0f events/s\n" (rate wall_eheap);
  Printf.printf "    engine (on eheap) %8.0f events/s\n" (rate wall_engine);
  check_shape "engine dispatch within 10x of the bare event heap"
    (rate wall_engine *. 10.0 >= rate wall_eheap);
  let oc = open_out "BENCH_sweep.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"sweep\",\n\
    \  \"parallelism\": \"grid\",\n\
    \  \"host\": %s,\n\
    \  \"grid_cells\": %d,\n\
    \  \"sequential\": { \"jobs\": 1, \"wall_s\": %.6f },\n\
    \  \"parallel\": { \"jobs\": %d, \"wall_s\": %.6f },\n\
    \  \"parallel_meaningful\": %b,\n\
    \  \"speedup\": %s,\n\
    \  \"identical_output\": %b,\n\
    \  \"event_core\": {\n\
    \    \"hold_ops\": %d,\n\
    \    \"hold_pending\": %d,\n\
    \    \"eheap_events_per_sec\": %.0f,\n\
    \    \"engine_events_per_sec\": %.0f\n\
    \  }\n\
     }\n"
    (host_json ()) (List.length grid) seq_wall jobs_par par_wall parallel_meaningful
    (if parallel_meaningful then Printf.sprintf "%.2f" speedup else "null")
    identical hold_ops hold_fill (rate wall_eheap) (rate wall_engine);
  close_out oc;
  Printf.printf "  wrote BENCH_sweep.json\n%!"
