(* serve: the request-serving workload — open-loop traffic, tail-latency
   histograms, and SLO under faults (DESIGN.md section 4i).

   Three transports carry multi-tenant request traffic, one per way
   section 4.1 of the paper brings computation and data together: a
   shared-memory ring in coherent pages (the data's home serves), the
   port-based RPC path (the computation moves), and serverless remote
   operation on frozen pages (nothing moves).  Each cell runs an open-loop
   Poisson (or bursty MMPP) arrival schedule against per-tenant state and
   reports exact-to-bin-width p50/p95/p99/p99.9 from merged HDR
   histograms (Platinum_stats.Hist).

   Four measurements land in BENCH_serve.json:

   1. Throughput vs offered load and the latency tails, per transport, on
      a flat Butterfly Plus and a two-level hierarchical machine.  Gate:
      p99 is monotone non-decreasing in offered load for every
      (topology, transport) series — same seed, so the arrival schedule
      at a higher rate is the same uniform stream compressed, and a tail
      that *improves* under more load means the measurement is broken.

   2. Burstiness: MMPP arrivals vs Poisson at the same mean rate.

   3. SLO under faults: a 2% and a storm-rate (10%) fault grid per
      transport.  Gates: every cell still completes every request; a
      rate-0 plane attached reproduces the fault-free fingerprint
      byte-for-byte; and the storm actually exercised recovery — faults
      injected on every transport, retransmissions on the RPC path —
      since a fault run that never recovered anything proves nothing.

   4. Sharded-mesh determinism: the Scale.Serve message-level variant of
      the same workload over a (shards x domains) grid, clean and
      injected — fingerprints must be byte-identical.

   The JSON contains no wall-clock times and no -j/--shards-dependent
   fields: a BENCH_serve.json is byte-identical across parallelism
   widths, which CI pins. *)

open Exp_common
module Serve = Platinum_serve.Serve
module Scale = Platinum_scale.Scale
module Arrivals = Platinum_sim.Arrivals
module Inject = Platinum_sim.Inject

let seed = 42L

let failed = ref false

let gate what ok =
  check_shape what ok;
  if not ok then failed := true

(* --- topologies --- *)

let topologies = [ ("flat16", Config.butterfly_plus ()); ("hier64", Config.hierarchical ~cluster_size:8 ~nodes:64 ()) ]

(* --- cells --- *)

type row = {
  topo : string;
  r : Serve.result;
  rate : float;  (* injection rate; 0 = no plane *)
  process : string;
}

let process_name = function
  | Arrivals.Poisson _ -> "poisson"
  | Arrivals.Mmpp _ -> "mmpp"

let cell ?inject ?(rate = 0.0) ~topo ~config ~params transport =
  let r = Serve.run ~config ?inject ~coalesce:true ~seed params transport in
  { topo; r; rate; process = process_name params.Serve.process }

let row_json { topo; r; rate; process } =
  Printf.sprintf
    "    { \"transport\": %S, \"topology\": %S, \"nodes\": %d, \"clusters\": %d,\n\
    \      \"process\": %S, \"offered_rps\": %.0f, \"achieved_rps\": %.0f,\n\
    \      \"inject_rate\": %.3f, \"submitted\": %d, \"completed\": %d,\n\
    \      \"elapsed_ns\": %d, \"mean_ns\": %.0f, \"p50_ns\": %d, \"p95_ns\": %d,\n\
    \      \"p99_ns\": %d, \"p999_ns\": %d, \"faults\": %d, \"retries\": %d,\n\
    \      \"fingerprint\": %S }"
    r.Serve.transport topo r.Serve.nodes r.Serve.clusters process r.Serve.offered_rps
    r.Serve.achieved_rps rate r.Serve.submitted r.Serve.completed r.Serve.elapsed_ns
    r.Serve.mean_ns r.Serve.p50_ns r.Serve.p95_ns r.Serve.p99_ns r.Serve.p999_ns
    r.Serve.faults r.Serve.retries r.Serve.fingerprint

let print_rows rows =
  Printf.printf "%-7s %-7s %-8s %10s %10s %5s %9s %9s %9s %9s\n" "transp" "topo"
    "process" "offer-rps" "achv-rps" "inj%" "p50" "p95" "p99" "p99.9";
  List.iter
    (fun { topo; r; rate; process } ->
      Printf.printf "%-7s %-7s %-8s %10.0f %10.0f %5.1f %9s %9s %9s %9s\n"
        r.Serve.transport topo process r.Serve.offered_rps r.Serve.achieved_rps
        (100.0 *. rate) (Time_ns.to_string r.Serve.p50_ns)
        (Time_ns.to_string r.Serve.p95_ns) (Time_ns.to_string r.Serve.p99_ns)
        (Time_ns.to_string r.Serve.p999_ns))
    rows;
  Printf.printf "%!"

(* --- the experiment --- *)

let run (scale : scale) =
  section "serve: open-loop request serving over three transports (emits BENCH_serve.json)";
  let requests = if scale.full then 40 else 20 in
  let base_rps = 1_000.0 in
  let load_factors = if scale.full then [ 0.25; 0.5; 1.0; 2.0; 4.0 ] else [ 0.25; 0.5; 1.0; 2.0 ] in
  let params_at ?process f =
    let process =
      match process with
      | Some p -> p
      | None -> Arrivals.Poisson { rate_rps = base_rps *. f }
    in
    Serve.params ~tenants:4 ~clients_per_tenant:2 ~requests_per_client:requests ~process ()
  in

  subsection "throughput vs offered load, latency tails";
  let load_cells =
    List.concat_map
      (fun (topo, config) ->
        List.concat_map
          (fun transport ->
            List.map (fun f -> (topo, config, transport, f)) load_factors)
          Serve.all_transports)
      topologies
  in
  let load_rows =
    par_map
      (fun (topo, config, transport, f) -> cell ~topo ~config ~params:(params_at f) transport)
      load_cells
  in
  print_rows load_rows;

  (* p99 monotone non-decreasing in offered load, per (topology, transport):
     the load factors reuse one seed, so a higher rate replays the same
     arrival stream compressed — the tail cannot get better. *)
  List.iter
    (fun (topo, _) ->
      List.iter
        (fun transport ->
          let name = Serve.transport_name transport in
          let series =
            List.filter (fun row -> row.topo = topo && row.r.Serve.transport = name) load_rows
          in
          let p99s = List.map (fun row -> row.r.Serve.p99_ns) series in
          let rec monotone = function
            | a :: (b :: _ as rest) -> a <= b && monotone rest
            | _ -> true
          in
          gate
            (Printf.sprintf "%-7s %-7s p99 monotone in offered load: %s" name topo
               (String.concat " <= " (List.map Time_ns.to_string p99s)))
            (monotone p99s))
        Serve.all_transports)
    topologies;

  subsection "burstiness: MMPP vs Poisson at the same mean rate";
  let flat = List.assoc "flat16" topologies in
  let mmpp =
    (* Mean of (low + high) / 2 = base_rps: same offered load, burstier. *)
    Arrivals.Mmpp { low_rps = base_rps /. 2.0; high_rps = base_rps *. 1.5; dwell_ns = 4_000_000 }
  in
  let burst_cells =
    List.concat_map
      (fun transport ->
        [
          ("poisson", transport, params_at 1.0);
          ("mmpp", transport, params_at ~process:mmpp 1.0);
        ])
      Serve.all_transports
  in
  let burst_rows =
    par_map
      (fun (_, transport, params) -> cell ~topo:"flat16" ~config:flat ~params transport)
      burst_cells
  in
  print_rows burst_rows;

  subsection "SLO under faults (rate-0 plane, 2%, storm 10%)";
  let storm_rate = 0.10 in
  let fault_rates = [ 0.02; storm_rate ] in
  let fault_cells =
    List.concat_map
      (fun transport ->
        List.map
          (fun rate ->
            (transport, rate, Some (Inject.config ~seed:7L ~rate ())))
          fault_rates)
      Serve.all_transports
  in
  let fault_rows =
    par_map
      (fun (transport, rate, inject) ->
        cell ?inject ~rate ~topo:"flat16" ~config:flat ~params:(params_at 1.0) transport)
      fault_cells
  in
  (* Rate-0 differential: a plane that injects nothing must reproduce the
     fault-free cell byte-for-byte. *)
  let base_rows =
    List.filter (fun row -> row.topo = "flat16" && row.process = "poisson") load_rows
    |> List.filter (fun row -> row.r.Serve.offered_rps = base_rps *. 8.0)
  in
  let idle_rows =
    par_map
      (fun transport ->
        cell
          ~inject:(Inject.config ~seed:7L ~rate:0.0 ())
          ~topo:"flat16" ~config:flat ~params:(params_at 1.0) transport)
      Serve.all_transports
  in
  print_rows fault_rows;
  List.iter
    (fun (idle : row) ->
      let name = idle.r.Serve.transport in
      match List.find_opt (fun row -> row.r.Serve.transport = name) base_rows with
      | None -> gate (Printf.sprintf "%-7s fault-free baseline cell found" name) false
      | Some base ->
        gate
          (Printf.sprintf "%-7s rate-0 plane reproduces the fault-free fingerprint" name)
          (idle.r.Serve.fingerprint = base.r.Serve.fingerprint))
    idle_rows;
  List.iter
    (fun (row : row) ->
      let name = row.r.Serve.transport in
      gate
        (Printf.sprintf "%-7s %4.0f%%: every submitted request completed (%d/%d)" name
           (100.0 *. row.rate) row.r.Serve.completed row.r.Serve.submitted)
        (row.r.Serve.completed = row.r.Serve.submitted && row.r.Serve.submitted > 0);
      if row.rate >= storm_rate then begin
        gate
          (Printf.sprintf "%-7s storm actually injected faults (%d)" name row.r.Serve.faults)
          (row.r.Serve.faults > 0);
        if name = "rpc" then
          gate
            (Printf.sprintf "rpc     storm exercised retransmission (%d retries)"
               row.r.Serve.retries)
            (row.r.Serve.retries > 0)
      end)
    fault_rows;

  subsection "sharded mesh: Scale.Serve over (shards x domains), clean + 2% injected";
  let mesh_config = Config.hierarchical ~cluster_size:16 ~nodes:64 () in
  let det_grid = [ (1, 1); (2, 1); (4, 2); (8, 4) ] in
  let mesh_rates = [ 0.0; 0.02 ] in
  let mesh_rps = [ 10_000.0; 200_000.0 ] in
  let mesh_rows =
    List.concat_map
      (fun inject_rate ->
        List.map
          (fun offered_rps ->
            let fps =
              List.map
                (fun (shards, domains) ->
                  (Scale.run ~shards ~domains ~inject_rate ~seed ~ops_per_node:25
                     ~offered_rps ~config:mesh_config Scale.Serve)
                    .Scale.fingerprint)
                det_grid
            in
            let identical = List.for_all (( = ) (List.hd fps)) fps in
            gate
              (Printf.sprintf
                 "mesh serve fingerprint identical over shards x domains (rate %.2f, %.0f rps)"
                 inject_rate offered_rps)
              identical;
            let r =
              Scale.run ~shards:1 ~domains:1 ~inject_rate ~seed ~ops_per_node:25
                ~offered_rps ~config:mesh_config Scale.Serve
            in
            (inject_rate, offered_rps, identical, r))
          mesh_rps)
      mesh_rates
  in
  List.iter
    (fun (rate, rps, _, (r : Scale.result)) ->
      Printf.printf
        "  mesh %4d nodes %8.0f rps/node inj %4.2f: rpcs=%d retries=%d p50=%s p99=%s p99.9=%s\n"
        r.Scale.nodes rps rate r.Scale.rpcs r.Scale.retries
        (Time_ns.to_string r.Scale.p50_ns) (Time_ns.to_string r.Scale.p99_ns)
        (Time_ns.to_string r.Scale.p999_ns))
    mesh_rows;
  (* The mesh tail must respond to offered load too. *)
  (match mesh_rows with
  | (_, _, _, lo) :: (_, _, _, hi) :: _ ->
    gate
      (Printf.sprintf "mesh p99 monotone in offered load (%s <= %s)"
         (Time_ns.to_string lo.Scale.p99_ns) (Time_ns.to_string hi.Scale.p99_ns))
      (lo.Scale.p99_ns <= hi.Scale.p99_ns)
  | _ -> ());

  let mesh_json =
    List.map
      (fun (rate, rps, identical, (r : Scale.result)) ->
        Printf.sprintf
          "    { \"nodes\": %d, \"offered_rps_per_node\": %.0f, \"inject_rate\": %.3f,\n\
          \      \"rpcs\": %d, \"retries\": %d, \"faults\": %d, \"p50_ns\": %d,\n\
          \      \"p95_ns\": %d, \"p99_ns\": %d, \"p999_ns\": %d,\n\
          \      \"grid_identical\": %b, \"fingerprint\": %S }"
          r.Scale.nodes rps rate r.Scale.rpcs r.Scale.retries r.Scale.faults
          r.Scale.p50_ns r.Scale.p95_ns r.Scale.p99_ns r.Scale.p999_ns identical
          r.Scale.fingerprint)
      mesh_rows
  in

  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"serve\",\n\
    \  \"host\": %s,\n\
    \  \"seed\": %Ld,\n\
    \  \"requests_per_client\": %d,\n\
    \  \"base_rps_per_client\": %.0f,\n\
    \  \"storm_rate\": %.2f,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"burst_rows\": [\n%s\n  ],\n\
    \  \"fault_rows\": [\n%s\n  ],\n\
    \  \"mesh_rows\": [\n%s\n  ]\n\
     }\n"
    (host_json ()) seed requests base_rps storm_rate
    (String.concat ",\n" (List.map row_json load_rows))
    (String.concat ",\n" (List.map row_json burst_rows))
    (String.concat ",\n" (List.map row_json (fault_rows @ idle_rows)))
    (String.concat ",\n" mesh_json);
  close_out oc;
  Printf.printf "  wrote BENCH_serve.json\n%!";
  if !failed then begin
    Printf.printf "SERVE_FAIL: a determinism, monotonicity or coverage gate missed\n%!";
    exit 1
  end
