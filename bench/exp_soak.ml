(* Soak/differential harness for the fault-injection plane (DESIGN.md
   section 4d).

   The plane (Platinum_sim.Inject) makes the simulated hardware
   adversarial — module stalls and outages, lost/delayed shootdown IPIs,
   lost RPC requests, aborted block transfers — and the kernel recovers
   with timeouts, bounded exponential-backoff retries, and (past the block
   transfer retry bound) freeze-in-place degradation.  This experiment is
   the proof that recovery is *correct*, not merely that it terminates:

   1. Soak grid: every workload (jacobi, gauss_mp, backprop, mergesort,
      plus an RPC echo exercising retransmission) x a seed grid, run with
      injection on and the PR 3 invariant monitor armed.  Every cell must
      finish with its self-verification intact and zero Check.Violations.

   2. Differential determinism: every cell is run twice with the same
      (seed, rate); the protocol fingerprint and the injector's own
      counters must be bit-identical — a fault schedule is a pure
      function of (seed, rate).

   3. Recovery-path coverage gates (the mutation-style check: a soak that
      never exercised a retry or the degradation path proves nothing):
      across the grid there must be >= 1 injected fault, >= 1 recovery
      retry and >= 1 freeze-in-place degradation, or the experiment exits
      1.

   Emits BENCH_soak.json: faults injected, retries by kind, and the
   recovery extra-latency distribution. *)

module Runner = Platinum_runner.Runner
module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Coherent = Platinum_core.Coherent
module Check = Platinum_core.Check
module Counters = Platinum_core.Counters
module Inject = Platinum_sim.Inject
module Outcome = Platinum_workload.Outcome
module Jacobi = Platinum_workload.Jacobi
module Gauss_mp = Platinum_workload.Gauss_mp
module Backprop = Platinum_workload.Backprop
module Mergesort = Platinum_workload.Mergesort
module Kernel = Platinum_kernel.Kernel
module Rpc = Platinum_kernel.Rpc
module Api = Platinum_kernel.Api

let failed = ref false

let check what ok =
  if not ok then begin
    failed := true;
    Printf.printf "SOAK_FAIL %s\n%!" what
  end

(* Same shape as the golden tests' fingerprint: completion time, timed
   phase, protocol counters. *)
let fingerprint ~(out : Outcome.t) (r : Runner.result) =
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  Printf.sprintf
    "elapsed=%d work=%d rf=%d wf=%d vm=%d repl=%d migr=%d rmap=%d freeze=%d thaw=%d sd=%d atc=%d"
    r.Runner.elapsed out.Outcome.work_ns c.Counters.read_faults c.Counters.write_faults
    c.Counters.vm_faults c.Counters.replications c.Counters.migrations c.Counters.remote_maps
    c.Counters.freezes c.Counters.thaws c.Counters.shootdowns c.Counters.atc_reloads

(* A small RPC ping-pong: the only path that exercises client-side
   retransmission.  Self-verifies every reply. *)
let rpc_echo ~calls () =
  let out = Outcome.create () in
  let main () =
    let server = Rpc.serve ~proc:1 (fun args -> Array.map (fun x -> (2 * x) + 1) args) in
    let t0 = Api.now () in
    for i = 1 to calls do
      let r = Rpc.call server [| i; i + 7 |] in
      Outcome.require out
        (Array.length r = 2 && r.(0) = (2 * i) + 1 && r.(1) = (2 * (i + 7)) + 1)
        "rpc echo: wrong reply for call %d" i
    done;
    out.Outcome.work_ns <- Api.now () - t0;
    Rpc.shutdown server
  in
  (out, main)

let workloads =
  [
    ("jacobi", fun () -> Jacobi.make (Jacobi.params ~n:32 ~iters:4 ~nprocs:4 ()));
    ("gauss_mp", fun () -> Gauss_mp.make (Gauss_mp.params ~n:24 ~nprocs:4 ()));
    ( "backprop",
      fun () ->
        Backprop.make
          (Backprop.params ~units:16 ~patterns:2 ~epochs:1 ~settle_steps:1 ~nprocs:4 ()) );
    ("mergesort", fun () -> Mergesort.make (Mergesort.params ~n:2048 ~nprocs:4 ()));
    ("rpc_echo", fun () -> rpc_echo ~calls:12 ());
  ]

type cell = {
  c_label : string;
  c_seed : int64;
  c_rate : float;
  c_fp : string;  (* protocol fingerprint *)
  c_inj : string;  (* injector counter fingerprint *)
  c_faults : int;
  c_retries : int;
  c_degraded : int;
  c_samples : int array;
  c_error : string option;  (* violation or failure; None = clean *)
}

(* One injected run with the invariant monitor armed.  Any Check.Violation
   (raised mid-protocol or surfacing through a thread failure) or workload
   self-verification failure is captured, not propagated: the grid always
   completes and reports. *)
let run_cell (label, wl) ~seed ~rate =
  let out, main = wl () in
  let config = Config.butterfly_plus ~nprocs:4 () in
  let setup = Runner.make ~config ~inject:(Inject.config ~seed ~rate ()) () in
  Coherent.set_monitor setup.Runner.coherent (Some (Check.create_monitor ()));
  let inj =
    match Machine.inject setup.Runner.machine with Some i -> i | None -> assert false
  in
  let finish error fp =
    {
      c_label = label;
      c_seed = seed;
      c_rate = rate;
      c_fp = fp;
      c_inj = Inject.fingerprint inj;
      c_faults = Inject.faults_injected inj;
      c_retries = Inject.retries inj;
      c_degraded = (Inject.stats inj).Inject.degraded_freezes;
      c_samples = Inject.recovery_samples inj;
      c_error = error;
    }
  in
  match Runner.run setup ~main with
  | r ->
    let error =
      if out.Outcome.ok then None
      else Some ("workload verification failed: " ^ out.Outcome.detail)
    in
    finish error (fingerprint ~out r)
  | exception Check.Violation v -> finish (Some (Check.violation_message v)) "<violation>"
  | exception Kernel.Thread_failure (Check.Violation v) ->
    finish (Some (Check.violation_message v)) "<violation>"
  | exception e -> finish (Some (Printexc.to_string e)) "<failure>"

let percentile sorted p =
  if Array.length sorted = 0 then 0
  else begin
    let n = Array.length sorted in
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))
  end

let run (scale : Exp_common.scale) =
  Exp_common.section
    "soak: every workload correct, deterministic and violation-free under fault injection";
  let seeds =
    if scale.Exp_common.full then [ 1L; 2L; 3L; 4L; 5L; 6L ] else [ 1L; 2L; 3L ]
  in
  (* Three fault regimes: the soak rate exercises stalls/outages and the
     occasional IPI/RPC fault; the storm rate makes drops and repeated
     block-transfer aborts (hence freeze-in-place degradation) likely. *)
  let soak_rate = 0.02 and storm_rate = 0.8 in
  let grid =
    List.concat_map
      (fun wl -> List.map (fun seed -> (wl, seed, soak_rate)) seeds)
      workloads
    @ (* degradation/retry storm: jacobi moves pages, rpc retransmits *)
    List.concat_map
      (fun name ->
        let wl = List.find (fun (n, _) -> n = name) workloads in
        List.map (fun seed -> (wl, seed, storm_rate)) [ 1L; 2L ])
      [ "jacobi"; "rpc_echo" ]
  in
  (* Differential: each cell twice, same (seed, rate). *)
  let results =
    Exp_common.par_map
      (fun (wl, seed, rate) -> (run_cell wl ~seed ~rate, run_cell wl ~seed ~rate))
      grid
  in
  Exp_common.subsection "grid (each cell run twice; fingerprints must agree)";
  Printf.printf "  %-10s %5s %5s  %-9s %7s %8s %9s\n" "workload" "seed" "rate" "determ."
    "faults" "retries" "degraded";
  List.iter
    (fun (a, b) ->
      let deterministic = a.c_fp = b.c_fp && a.c_inj = b.c_inj in
      Printf.printf "  %-10s %5Ld %5.2f  %-9s %7d %8d %9d\n" a.c_label a.c_seed a.c_rate
        (if deterministic then "identical" else "DIVERGED")
        a.c_faults a.c_retries a.c_degraded;
      check
        (Printf.sprintf "%s seed=%Ld rate=%.2f: deterministic replay" a.c_label a.c_seed
           a.c_rate)
        deterministic;
      match a.c_error with
      | None -> ()
      | Some e ->
        check (Printf.sprintf "%s seed=%Ld rate=%.2f: %s" a.c_label a.c_seed a.c_rate e) false)
    results;
  let firsts = List.map fst results in
  let total f = List.fold_left (fun acc c -> acc + f c) 0 firsts in
  let faults = total (fun c -> c.c_faults) in
  let retries = total (fun c -> c.c_retries) in
  let degraded = total (fun c -> c.c_degraded) in
  let samples = Array.concat (List.map (fun c -> c.c_samples) firsts) in
  Array.sort compare samples;
  Exp_common.subsection "recovery-path coverage (a soak that faulted nothing proves nothing)";
  Printf.printf "  cells=%d (x2 runs)  faults=%d  retries=%d  freeze_degradations=%d\n"
    (List.length results) faults retries degraded;
  check "injected >= 1 fault" (faults > 0);
  check "exercised >= 1 recovery retry" (retries > 0);
  check "exercised >= 1 freeze-in-place degradation" (degraded > 0);
  let n = Array.length samples in
  let p50 = percentile samples 0.50 and p95 = percentile samples 0.95 in
  if n > 0 then
    Printf.printf "  recovery extra latency (ns): n=%d min=%d p50=%d p95=%d max=%d\n" n
      samples.(0) p50 p95 samples.(n - 1);
  let oc = open_out "BENCH_soak.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"soak\",\n\
    \  \"host\": %s,\n\
    \  \"cells\": %d,\n\
    \  \"seeds\": %d,\n\
    \  \"soak_rate\": %.3f,\n\
    \  \"storm_rate\": %.3f,\n\
    \  \"faults_injected\": %d,\n\
    \  \"retries\": %d,\n\
    \  \"freeze_degradations\": %d,\n\
    \  \"recovery_ns\": { \"n\": %d, \"min\": %d, \"p50\": %d, \"p95\": %d, \"max\": %d }\n\
     }\n"
    (Exp_common.host_json ()) (List.length results) (List.length seeds) soak_rate storm_rate
    faults retries degraded n
    (if n = 0 then 0 else samples.(0))
    p50 p95
    (if n = 0 then 0 else samples.(n - 1));
  close_out oc;
  Printf.printf "  wrote BENCH_soak.json\n%!";
  if !failed then exit 1;
  Printf.printf "SOAK_OK\n%!"
