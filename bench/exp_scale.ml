(* scale: the sharded engine driving machines past the Butterfly.

   Three message-level workloads (remote word traffic, shootdown storms,
   RPC echo) run on hierarchical machines of hundreds to a thousand nodes,
   with the event queue split into shards ([--shards]) advanced by the
   domain pool ([-j]).  Two things are measured:

   - determinism: every workload's fingerprint is byte-identical across a
     (shards x domains) grid — the sharded engine's load-bearing contract,
     asserted on every host (a 1-core machine still runs the domains);
   - throughput: host events/sec and simulated-words/sec per topology at
     the configured shard/domain counts, landing in BENCH_scale.json.

   The JSON is labelled "parallelism": "shard" — intra-simulation
   parallelism, one event queue split across domains — as opposed to
   BENCH_sweep.json's "grid" (independent simulations side by side), so
   the two speedup kinds stay comparable but never conflated.  The shard
   speedup comparison itself is only asserted where the host has the
   cores (parallel_meaningful), like the sweep. *)

open Exp_common
module Scale = Platinum_scale.Scale
module Parkernel = Platinum_scale.Parkernel

let seed = 42L

(* --- determinism cells --- *)

let det_grid = [ (1, 1); (2, 1); (4, 2); (8, 4) ]

let determinism_ok ~config ~ops =
  List.for_all
    (fun w ->
      let fp (shards, domains) =
        (Scale.run ~shards ~domains ~inject_rate:0.02 ~seed ~ops_per_node:ops
           ~config w)
          .Scale.fingerprint
      in
      let fps = List.map fp det_grid in
      let ok = List.for_all (( = ) (List.hd fps)) fps in
      check_shape
        (Printf.sprintf "%-7s fingerprint identical over shards x domains %s"
           (Scale.workload_name w)
           (String.concat " "
              (List.map (fun (s, d) -> Printf.sprintf "(%d,%d)" s d) det_grid)))
        ok;
      ok)
    Scale.all_workloads

(* --- throughput rows --- *)

type row = {
  r : Scale.result;
  clusters : int;
  lookahead_ns : int;
  wall_s : float;
}

let measure ~config ~ops ~shards ~domains w =
  let t0 = Unix.gettimeofday () in
  let r = Scale.run ~shards ~domains ~seed ~ops_per_node:ops ~config w in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    r;
    clusters = Config.clusters config;
    lookahead_ns = Scale.lookahead config w;
    wall_s;
  }

let row_json { r; clusters; lookahead_ns; wall_s } =
  Printf.sprintf
    "    { \"workload\": %S, \"nodes\": %d, \"clusters\": %d, \"shards\": %d,\n\
    \      \"domains\": %d, \"lookahead_ns\": %d, \"events\": %d, \"windows\": %d,\n\
    \      \"sim_ns\": %d, \"wall_s\": %.6f, \"events_per_sec\": %.0f,\n\
    \      \"words_per_sec\": %.0f, \"fingerprint\": %S }"
    r.Scale.workload r.Scale.nodes clusters r.Scale.run_shards r.Scale.run_domains
    lookahead_ns r.Scale.events r.Scale.windows r.Scale.clock wall_s
    (float_of_int r.Scale.events /. wall_s)
    (float_of_int r.Scale.words /. wall_s)
    r.Scale.fingerprint

(* --- hosted-kernel rows: the kernel simulation itself under Shard --- *)

type krow = {
  kr : Parkernel.result;
  k_clusters : int;
  k_lookahead_ns : int;
  k_wall_s : float;
}

let kmeasure ~config ~shards ~domains ?(iters = 3) ?span_words w =
  let t0 = Unix.gettimeofday () in
  let r = Parkernel.run ~shards ~domains ~seed ~iters ~width:64 ?span_words ~config w in
  let k_wall_s = Unix.gettimeofday () -. t0 in
  {
    kr = r;
    k_clusters = Config.clusters config;
    k_lookahead_ns = Parkernel.lookahead config;
    k_wall_s;
  }

let krow_json ?(gb = false) { kr = r; k_clusters; k_lookahead_ns; k_wall_s } =
  Printf.sprintf
    "    { \"workload\": %S, \"gb_variant\": %b, \"nodes\": %d, \"clusters\": %d,\n\
    \      \"shards\": %d, \"domains\": %d, \"lookahead_ns\": %d, \"events\": %d,\n\
    \      \"windows\": %d, \"sim_ns\": %d, \"wall_s\": %.6f, \"events_per_sec\": %.0f,\n\
    \      \"words_per_sec\": %.0f, \"span_words\": %d, \"touched_pages\": %d,\n\
    \      \"setup_ms\": %.2f, \"verified\": %b, \"fingerprint\": %S }"
    r.Parkernel.workload gb r.Parkernel.nodes k_clusters r.Parkernel.run_shards
    r.Parkernel.run_domains k_lookahead_ns r.Parkernel.events r.Parkernel.windows
    r.Parkernel.clock k_wall_s
    (float_of_int r.Parkernel.events /. k_wall_s)
    (float_of_int r.Parkernel.words /. k_wall_s)
    r.Parkernel.span_words r.Parkernel.touched_pages r.Parkernel.setup_ms
    r.Parkernel.verified r.Parkernel.fingerprint

let kernel_determinism_ok ~config =
  List.for_all
    (fun w ->
      let fp (shards, domains) =
        (Parkernel.run ~shards ~domains ~inject_rate:0.02 ~seed ~iters:3 ~width:64
           ~ops_per_node:12 ~config w)
          .Parkernel.fingerprint
      in
      let fps = List.map fp det_grid in
      let ok = List.for_all (( = ) (List.hd fps)) fps in
      check_shape
        (Printf.sprintf
           "kernel %-8s fingerprint identical over shards x domains %s (2%% injection)"
           (Parkernel.workload_name w)
           (String.concat " "
              (List.map (fun (s, d) -> Printf.sprintf "(%d,%d)" s d) det_grid)))
        ok;
      ok)
    [ Parkernel.Jacobi; Parkernel.Rpc_echo ]

let run (scale : scale) =
  section "scale: sharded engine over hierarchical machines (emits BENCH_scale.json)";
  let shards = Par.get_shards () in
  let domains = Par.get_jobs () in
  let node_counts = if scale.full then [ 64; 256; 1024 ] else [ 64; 256 ] in
  let ops = if scale.full then 50 else 25 in
  Printf.printf
    "topologies: %s nodes (clusters of 16); --shards %d, -j %d domain(s)%s\n%!"
    (String.concat ", " (List.map string_of_int node_counts))
    shards domains
    (if scale.kernel then " (kernel section only)" else "");

  (* --- message-level workloads (skipped under --kernel) --- *)
  let identical, rows =
    if scale.kernel then (None, [])
    else begin
      subsection "determinism across shard and domain counts (2% injection)";
      let det_config = Config.hierarchical ~cluster_size:16 ~nodes:64 () in
      let identical = determinism_ok ~config:det_config ~ops in

      subsection "throughput vs topology";
      let rows =
        List.concat_map
          (fun nodes ->
            let config = Config.hierarchical ~cluster_size:16 ~nodes () in
            List.map (measure ~config ~ops ~shards ~domains) Scale.all_workloads)
          node_counts
      in
      Printf.printf "%-8s %6s %9s %9s %12s %14s %14s\n" "workload" "nodes" "events"
        "windows" "sim-time" "events/s" "sim-words/s";
      List.iter
        (fun { r; wall_s; _ } ->
          Printf.printf "%-8s %6d %9d %9d %12s %14.0f %14.0f\n" r.Scale.workload
            r.Scale.nodes r.Scale.events r.Scale.windows
            (Time_ns.to_string r.Scale.clock)
            (float_of_int r.Scale.events /. wall_s)
            (float_of_int r.Scale.words /. wall_s))
        rows;
      (Some identical, rows)
    end
  in

  (* Shard speedup: the same largest-topology run at 1 domain vs the pool.
     Host parallelism inside ONE simulation — meaningless on a host without
     the cores, so (like the sweep) the comparison is skipped there while
     the determinism assertions above always run. *)
  let parallel_meaningful = Par.default_jobs () > 1 in
  let shard_speedup =
    if scale.kernel then None
    else if not parallel_meaningful then begin
      Printf.printf
        "\n  (host has %d core(s): shard speedup not meaningful, skipped)\n"
        (Par.default_jobs ());
      None
    end
    else begin
      let nodes = List.fold_left max 0 node_counts in
      let config = Config.hierarchical ~cluster_size:16 ~nodes () in
      let pool = max 2 domains in
      let s1 = measure ~config ~ops ~shards:pool ~domains:1 Scale.Traffic in
      let sp = measure ~config ~ops ~shards:pool ~domains:pool Scale.Traffic in
      let speedup = s1.wall_s /. sp.wall_s in
      Printf.printf "\n  traffic/%d nodes, %d shards: 1 domain %.3f s, %d domains %.3f s (%.2fx)\n"
        nodes pool s1.wall_s pool sp.wall_s speedup;
      check_shape "sharded run byte-identical at 1 domain vs pool"
        (s1.r.Scale.fingerprint = sp.r.Scale.fingerprint);
      if Par.default_jobs () >= 4 then
        check_shape "shard pool at least breaks even on a >=4-core host"
          (speedup >= 1.0);
      Some speedup
    end
  in
  (match identical with
  | Some ok ->
    check_shape "fingerprints identical across the shards x domains grid" ok
  | None -> ());
  check_shape
    (Printf.sprintf "largest topology >= 256 nodes (%d)"
       (List.fold_left max 0 node_counts))
    (List.fold_left max 0 node_counts >= 256);

  (* --- hosted kernel: the full kernel simulation under Shard --- *)
  subsection "hosted kernel: determinism across shard and domain counts";
  let kdet_config = Config.hierarchical ~cluster_size:4 ~nodes:8 () in
  let kernel_identical = kernel_determinism_ok ~config:kdet_config in

  subsection "hosted kernel: throughput vs topology";
  let krows =
    List.concat_map
      (fun nodes ->
        let config = Config.hierarchical ~cluster_size:16 ~nodes () in
        List.map
          (fun w -> (false, kmeasure ~config ~shards ~domains w))
          [ Parkernel.Jacobi; Parkernel.Gauss ])
      node_counts
  in
  (* The GB-span variant: a >= 2^27-word address space on the largest
     topology.  The chunked page tables keep resident memory proportional
     to the touched footprint, so this costs the same events as the dense
     run — the row records span_words and touched_pages as evidence. *)
  let gb_span = 1 lsl 27 in
  let gb_row =
    let nodes = List.fold_left max 0 node_counts in
    let config = Config.hierarchical ~cluster_size:16 ~nodes () in
    ( true,
      kmeasure ~config ~shards ~domains ~span_words:gb_span Parkernel.Jacobi )
  in
  let krows = krows @ [ gb_row ] in
  Printf.printf "%-8s %6s %12s %8s %9s %12s %12s %9s\n" "workload" "nodes"
    "span-words" "pages" "events" "sim-time" "events/s" "setup-ms";
  List.iter
    (fun (_, { kr = r; k_wall_s; _ }) ->
      Printf.printf "%-8s %6d %12d %8d %9d %12s %12.0f %9.2f\n"
        r.Parkernel.workload r.Parkernel.nodes r.Parkernel.span_words
        r.Parkernel.touched_pages r.Parkernel.events
        (Time_ns.to_string r.Parkernel.clock)
        (float_of_int r.Parkernel.events /. k_wall_s)
        r.Parkernel.setup_ms)
    krows;
  List.iter
    (fun (gb, { kr = r; _ }) ->
      check_shape
        (Printf.sprintf "kernel %s/%d nodes%s oracle-verified" r.Parkernel.workload
           r.Parkernel.nodes
           (if gb then " (GB span)" else ""))
        r.Parkernel.verified)
    krows;
  (let _, { kr = gr; _ } = gb_row in
   check_shape
     (Printf.sprintf "GB variant: %d-word span, %d touched pages, setup %.2f ms"
        gr.Parkernel.span_words gr.Parkernel.touched_pages gr.Parkernel.setup_ms)
     (gr.Parkernel.span_words >= gb_span
     && gr.Parkernel.touched_pages * 64 < gr.Parkernel.span_words
     && gr.Parkernel.setup_ms < 100.0));

  (* Kernel shard speedup, same shape and gating as the message-level one. *)
  let kernel_shard_speedup =
    if not parallel_meaningful then begin
      Printf.printf
        "\n  (host has %d core(s): kernel shard speedup not meaningful, skipped)\n"
        (Par.default_jobs ());
      None
    end
    else begin
      let nodes = List.fold_left max 0 node_counts in
      let config = Config.hierarchical ~cluster_size:16 ~nodes () in
      let pool = max 2 domains in
      let k1 = kmeasure ~config ~shards:pool ~domains:1 Parkernel.Jacobi in
      let kp = kmeasure ~config ~shards:pool ~domains:pool Parkernel.Jacobi in
      let speedup = k1.k_wall_s /. kp.k_wall_s in
      Printf.printf
        "\n  jacobi/%d nodes, %d shards: 1 domain %.3f s, %d domains %.3f s (%.2fx)\n"
        nodes pool k1.k_wall_s pool kp.k_wall_s speedup;
      check_shape "hosted kernel byte-identical at 1 domain vs pool"
        (k1.kr.Parkernel.fingerprint = kp.kr.Parkernel.fingerprint);
      if Par.default_jobs () >= 4 then
        check_shape "kernel shard pool at least breaks even on a >=4-core host"
          (speedup >= 1.0);
      Some speedup
    end
  in
  check_shape "kernel fingerprints identical across the shards x domains grid"
    kernel_identical;

  let null_or_speedup = function
    | Some s -> Printf.sprintf "%.2f" s
    | None -> "null"
  in
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"scale\",\n\
    \  \"parallelism\": \"shard\",\n\
    \  \"host\": %s,\n\
    \  \"shards\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"ops_per_node\": %d,\n\
    \  \"kernel_only\": %b,\n\
    \  \"determinism\": %s,\n\
    \  \"parallel_meaningful\": %b,\n\
    \  \"shard_speedup\": %s,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"kernel_determinism\": { \"workloads\": 2, \"cells_per_workload\": %d, \"identical\": %b },\n\
    \  \"kernel_shard_speedup\": %s,\n\
    \  \"kernel_rows\": [\n%s\n  ]\n\
     }\n"
    (host_json ()) shards domains ops scale.kernel
    (match identical with
    | Some ok ->
      Printf.sprintf
        "{ \"workloads\": %d, \"cells_per_workload\": %d, \"identical\": %b }"
        (List.length Scale.all_workloads)
        (List.length det_grid) ok
    | None -> "null")
    parallel_meaningful
    (null_or_speedup shard_speedup)
    (String.concat ",\n" (List.map row_json rows))
    (List.length det_grid) kernel_identical
    (null_or_speedup kernel_shard_speedup)
    (String.concat ",\n" (List.map (fun (gb, k) -> krow_json ~gb k) krows));
  close_out oc;
  Printf.printf "  wrote BENCH_scale.json\n%!"
