(* scale: the sharded engine driving machines past the Butterfly.

   Three message-level workloads (remote word traffic, shootdown storms,
   RPC echo) run on hierarchical machines of hundreds to a thousand nodes,
   with the event queue split into shards ([--shards]) advanced by the
   domain pool ([-j]).  Two things are measured:

   - determinism: every workload's fingerprint is byte-identical across a
     (shards x domains) grid — the sharded engine's load-bearing contract,
     asserted on every host (a 1-core machine still runs the domains);
   - throughput: host events/sec and simulated-words/sec per topology at
     the configured shard/domain counts, landing in BENCH_scale.json.

   The JSON is labelled "parallelism": "shard" — intra-simulation
   parallelism, one event queue split across domains — as opposed to
   BENCH_sweep.json's "grid" (independent simulations side by side), so
   the two speedup kinds stay comparable but never conflated.  The shard
   speedup comparison itself is only asserted where the host has the
   cores (parallel_meaningful), like the sweep. *)

open Exp_common
module Scale = Platinum_scale.Scale

let seed = 42L

(* --- determinism cells --- *)

let det_grid = [ (1, 1); (2, 1); (4, 2); (8, 4) ]

let determinism_ok ~config ~ops =
  List.for_all
    (fun w ->
      let fp (shards, domains) =
        (Scale.run ~shards ~domains ~inject_rate:0.02 ~seed ~ops_per_node:ops
           ~config w)
          .Scale.fingerprint
      in
      let fps = List.map fp det_grid in
      let ok = List.for_all (( = ) (List.hd fps)) fps in
      check_shape
        (Printf.sprintf "%-7s fingerprint identical over shards x domains %s"
           (Scale.workload_name w)
           (String.concat " "
              (List.map (fun (s, d) -> Printf.sprintf "(%d,%d)" s d) det_grid)))
        ok;
      ok)
    Scale.all_workloads

(* --- throughput rows --- *)

type row = {
  r : Scale.result;
  clusters : int;
  lookahead_ns : int;
  wall_s : float;
}

let measure ~config ~ops ~shards ~domains w =
  let t0 = Unix.gettimeofday () in
  let r = Scale.run ~shards ~domains ~seed ~ops_per_node:ops ~config w in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    r;
    clusters = Config.clusters config;
    lookahead_ns = Scale.lookahead config w;
    wall_s;
  }

let row_json { r; clusters; lookahead_ns; wall_s } =
  Printf.sprintf
    "    { \"workload\": %S, \"nodes\": %d, \"clusters\": %d, \"shards\": %d,\n\
    \      \"domains\": %d, \"lookahead_ns\": %d, \"events\": %d, \"windows\": %d,\n\
    \      \"sim_ns\": %d, \"wall_s\": %.6f, \"events_per_sec\": %.0f,\n\
    \      \"words_per_sec\": %.0f, \"fingerprint\": %S }"
    r.Scale.workload r.Scale.nodes clusters r.Scale.run_shards r.Scale.run_domains
    lookahead_ns r.Scale.events r.Scale.windows r.Scale.clock wall_s
    (float_of_int r.Scale.events /. wall_s)
    (float_of_int r.Scale.words /. wall_s)
    r.Scale.fingerprint

let run (scale : scale) =
  section "scale: sharded engine over hierarchical machines (emits BENCH_scale.json)";
  let shards = Par.get_shards () in
  let domains = Par.get_jobs () in
  let node_counts = if scale.full then [ 64; 256; 1024 ] else [ 64; 256 ] in
  let ops = if scale.full then 50 else 25 in
  Printf.printf
    "topologies: %s nodes (clusters of 16); --shards %d, -j %d domain(s)\n%!"
    (String.concat ", " (List.map string_of_int node_counts))
    shards domains;

  subsection "determinism across shard and domain counts (2% injection)";
  let det_config = Config.hierarchical ~cluster_size:16 ~nodes:64 () in
  let identical = determinism_ok ~config:det_config ~ops in

  subsection "throughput vs topology";
  let rows =
    List.concat_map
      (fun nodes ->
        let config = Config.hierarchical ~cluster_size:16 ~nodes () in
        List.map (measure ~config ~ops ~shards ~domains) Scale.all_workloads)
      node_counts
  in
  Printf.printf "%-8s %6s %9s %9s %12s %14s %14s\n" "workload" "nodes" "events"
    "windows" "sim-time" "events/s" "sim-words/s";
  List.iter
    (fun { r; wall_s; _ } ->
      Printf.printf "%-8s %6d %9d %9d %12s %14.0f %14.0f\n" r.Scale.workload
        r.Scale.nodes r.Scale.events r.Scale.windows
        (Time_ns.to_string r.Scale.clock)
        (float_of_int r.Scale.events /. wall_s)
        (float_of_int r.Scale.words /. wall_s))
    rows;

  (* Shard speedup: the same largest-topology run at 1 domain vs the pool.
     Host parallelism inside ONE simulation — meaningless on a host without
     the cores, so (like the sweep) the comparison is skipped there while
     the determinism assertions above always run. *)
  let parallel_meaningful = Par.default_jobs () > 1 in
  let shard_speedup =
    if not parallel_meaningful then begin
      Printf.printf
        "\n  (host has %d core(s): shard speedup not meaningful, skipped)\n"
        (Par.default_jobs ());
      None
    end
    else begin
      let nodes = List.fold_left max 0 node_counts in
      let config = Config.hierarchical ~cluster_size:16 ~nodes () in
      let pool = max 2 domains in
      let s1 = measure ~config ~ops ~shards:pool ~domains:1 Scale.Traffic in
      let sp = measure ~config ~ops ~shards:pool ~domains:pool Scale.Traffic in
      let speedup = s1.wall_s /. sp.wall_s in
      Printf.printf "\n  traffic/%d nodes, %d shards: 1 domain %.3f s, %d domains %.3f s (%.2fx)\n"
        nodes pool s1.wall_s pool sp.wall_s speedup;
      check_shape "sharded run byte-identical at 1 domain vs pool"
        (s1.r.Scale.fingerprint = sp.r.Scale.fingerprint);
      if Par.default_jobs () >= 4 then
        check_shape "shard pool at least breaks even on a >=4-core host"
          (speedup >= 1.0);
      Some speedup
    end
  in
  check_shape "fingerprints identical across the shards x domains grid" identical;
  check_shape
    (Printf.sprintf "largest topology >= 256 nodes (%d)"
       (List.fold_left max 0 node_counts))
    (List.fold_left max 0 node_counts >= 256);

  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"scale\",\n\
    \  \"parallelism\": \"shard\",\n\
    \  \"host\": %s,\n\
    \  \"shards\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"ops_per_node\": %d,\n\
    \  \"determinism\": { \"workloads\": %d, \"cells_per_workload\": %d, \"identical\": %b },\n\
    \  \"parallel_meaningful\": %b,\n\
    \  \"shard_speedup\": %s,\n\
    \  \"rows\": [\n%s\n  ]\n\
     }\n"
    (host_json ()) shards domains ops
    (List.length Scale.all_workloads)
    (List.length det_grid) identical parallel_meaningful
    (match shard_speedup with Some s -> Printf.sprintf "%.2f" s | None -> "null")
    (String.concat ",\n" (List.map row_json rows));
  close_out oc;
  Printf.printf "  wrote BENCH_scale.json\n%!"
