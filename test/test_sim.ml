(* Tests for the discrete-event substrate: heaps, the engine, the PRNG. *)

module Heap = Platinum_heap_oracle.Heap
module Eheap = Platinum_sim.Eheap
module Engine = Platinum_sim.Engine
module Rng = Platinum_sim.Rng
module Time_ns = Platinum_sim.Time_ns

module IH = Heap.Make (Int)

let qtest = QCheck_alcotest.to_alcotest

(* --- Heap --- *)

let test_heap_empty () =
  Alcotest.(check bool) "empty is empty" true (IH.is_empty IH.empty);
  Alcotest.(check bool) "find_min empty" true (IH.find_min IH.empty = None);
  Alcotest.(check bool) "delete_min empty" true (IH.delete_min IH.empty = None)

let test_heap_basic () =
  let h = IH.of_list [ (3, "c"); (1, "a"); (2, "b") ] in
  Alcotest.(check int) "size" 3 (IH.size h);
  match IH.delete_min h with
  | Some ((1, "a"), rest) -> (
    match IH.delete_min rest with
    | Some ((2, "b"), rest2) ->
      Alcotest.(check bool) "last is c" true (IH.find_min rest2 = Some (3, "c"))
    | _ -> Alcotest.fail "expected (2, b) second")
  | _ -> Alcotest.fail "expected (1, a) first"

let test_heap_merge () =
  let a = IH.of_list [ (5, 5); (1, 1) ] in
  let b = IH.of_list [ (3, 3); (0, 0) ] in
  let m = IH.merge a b in
  Alcotest.(check int) "merged size" 4 (IH.size m);
  Alcotest.(check bool) "min of merge" true (IH.find_min m = Some (0, 0))

let test_heap_duplicate_keys () =
  let h = IH.of_list [ (1, "x"); (1, "y"); (1, "z") ] in
  let keys = List.map fst (IH.to_sorted_list h) in
  Alcotest.(check (list int)) "all three kept" [ 1; 1; 1 ] keys

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let h = IH.of_list (List.map (fun k -> (k, k)) l) in
      let drained = List.map fst (IH.to_sorted_list h) in
      drained = List.sort compare l)

let prop_heap_size =
  QCheck.Test.make ~name:"heap size = list length" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let h = IH.of_list (List.map (fun k -> (k, ())) l) in
      IH.size h = List.length l)

let prop_heap_merge_is_union =
  QCheck.Test.make ~name:"merge drains the multiset union" ~count:200
    QCheck.(pair (list small_int) (list small_int))
    (fun (a, b) ->
      let ha = IH.of_list (List.map (fun k -> (k, ())) a) in
      let hb = IH.of_list (List.map (fun k -> (k, ())) b) in
      let drained = List.map fst (IH.to_sorted_list (IH.merge ha hb)) in
      drained = List.sort compare (a @ b))

let prop_heap_size_deep_shape =
  (* Adversarial shape for the old recursive size: a long insert-only chain
     degenerates into deep child lists; size must stay constant-stack. *)
  QCheck.Test.make ~name:"heap size survives deep list-like shapes" ~count:5
    QCheck.(int_range 100_000 200_000)
    (fun n ->
      let h = ref IH.empty in
      for i = 1 to n do
        h := IH.insert i i !h
      done;
      IH.size !h = n)

(* --- Eheap --- *)

let drain_eheap h =
  let out = ref [] in
  while not (Eheap.is_empty h) do
    let t = Eheap.min_time h and s = Eheap.min_seq h in
    out := (t, s, Eheap.pop h) :: !out
  done;
  List.rev !out

let test_eheap_empty () =
  let h = Eheap.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Eheap.is_empty h);
  Alcotest.(check int) "size 0" 0 (Eheap.size h);
  Alcotest.check_raises "pop empty" (Invalid_argument "Eheap.pop: empty heap") (fun () ->
      ignore (Eheap.pop h))

let test_eheap_order () =
  let h = Eheap.create ~capacity:2 ~dummy:"" () in
  Eheap.add h ~time:30 ~seq:0 "c";
  Eheap.add h ~time:10 ~seq:1 "a";
  Eheap.add h ~time:20 ~seq:2 "b";
  Eheap.add h ~time:10 ~seq:3 "a2";
  Alcotest.(check int) "size" 4 (Eheap.size h);
  Alcotest.(check (list string)) "time order, ties by seq" [ "a"; "a2"; "b"; "c" ]
    (List.map (fun (_, _, v) -> v) (drain_eheap h))

let test_eheap_fallback () =
  (* A time beyond the packed range forces the two-array representation;
     the order must be unchanged, mid-stream. *)
  let h = Eheap.create ~dummy:0 () in
  Eheap.add h ~time:5 ~seq:0 1;
  Alcotest.(check bool) "starts packed" true (Eheap.is_packed h);
  Eheap.add h ~time:(Eheap.max_packed_time + 7) ~seq:1 2;
  Eheap.add h ~time:3 ~seq:2 3;
  Alcotest.(check bool) "spilled" false (Eheap.is_packed h);
  Alcotest.(check (list int)) "order across the migration" [ 3; 1; 2 ]
    (List.map (fun (_, _, v) -> v) (drain_eheap h))

let test_eheap_seq_fallback () =
  (* The sharded engine packs (src_node lsl 36 | src_seq) into the seq
     component, so any multi-node run blows past max_packed_seq on node 1's
     first event.  The seq threshold therefore carries real traffic now —
     pin the migration it triggers, mid-stream, with ties across the
     representation change. *)
  let h = Eheap.create ~dummy:0 () in
  Eheap.add h ~time:10 ~seq:3 1;
  Eheap.add h ~time:10 ~seq:Eheap.max_packed_seq 2;
  Alcotest.(check bool) "max packed seq still packed" true (Eheap.is_packed h);
  Eheap.add h ~time:10 ~seq:(Eheap.max_packed_seq + 1) 3;
  Alcotest.(check bool) "seq + 1 spills" false (Eheap.is_packed h);
  (* a shard-style wide key: node 5's event 0 *)
  Eheap.add h ~time:10 ~seq:(5 lsl 36) 4;
  Eheap.add h ~time:9 ~seq:((1 lsl 36) lor 7) 5;
  Alcotest.(check (list int)) "lexicographic across the migration" [ 5; 1; 2; 3; 4 ]
    (List.map (fun (_, _, v) -> v) (drain_eheap h))

let test_eheap_threshold_edges () =
  (* Exact boundary headroom on both components: the largest packed values
     stay packed; one past either spills; keys compare identically in both
     representations. *)
  Alcotest.(check int) "packed time headroom is 2^36 ns" ((1 lsl 36) - 1)
    Eheap.max_packed_time;
  Alcotest.(check int) "packed seq headroom is 2^26" ((1 lsl 26) - 1)
    Eheap.max_packed_seq;
  let boundary = Eheap.create ~dummy:0 () in
  Eheap.add boundary ~time:Eheap.max_packed_time ~seq:Eheap.max_packed_seq 1;
  Alcotest.(check bool) "both components at max stay packed" true
    (Eheap.is_packed boundary);
  let spill_time = Eheap.create ~dummy:0 () in
  Eheap.add spill_time ~time:(Eheap.max_packed_time + 1) ~seq:0 1;
  Alcotest.(check bool) "time threshold spills alone" false (Eheap.is_packed spill_time);
  (* Cross BOTH thresholds in one heap — a long sharded run: wide node
     keys from the start, then simulated time past 2^36 ns (~69 s). *)
  let h = Eheap.create ~dummy:0 () in
  Eheap.add h ~time:(Eheap.max_packed_time + 100) ~seq:((3 lsl 36) lor 1) 4;
  Eheap.add h ~time:(Eheap.max_packed_time + 100) ~seq:(2 lsl 36) 3;
  Eheap.add h ~time:Eheap.max_packed_time ~seq:((9 lsl 36) lor 123) 2;
  Eheap.add h ~time:50 ~seq:0 1;
  Alcotest.(check bool) "wide keys + wide times coexist" false (Eheap.is_packed h);
  Alcotest.(check (list int)) "order with both thresholds crossed" [ 1; 2; 3; 4 ]
    (List.map (fun (_, _, v) -> v) (drain_eheap h))

let prop_eheap_threshold_straddle =
  (* Keys drawn from both sides of both packed thresholds, in random
     insert order: pops must come back lexicographically sorted whatever
     mixture of representations the inserts marched the heap through. *)
  QCheck.Test.make ~name:"eheap total order straddling both packed thresholds"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_bound 3) (int_bound 1_000)))
    (fun picks ->
      let h = Eheap.create ~capacity:1 ~dummy:(-1) () in
      let keys =
        List.mapi
          (fun i (zone, off) ->
            let time =
              match zone with
              | 0 -> off (* small packed *)
              | 1 -> Eheap.max_packed_time - off (* near the edge, packed *)
              | 2 -> Eheap.max_packed_time + 1 + off (* past the edge *)
              | _ -> 2 * Eheap.max_packed_time (* deep fallback *)
            in
            (* unique seqs; half narrow, half shard-style wide *)
            let seq = if i mod 2 = 0 then i else (i lsl 36) lor i in
            (time, seq))
          picks
      in
      List.iteri (fun i (time, seq) -> Eheap.add h ~time ~seq i) keys;
      let popped = drain_eheap h in
      let sorted = List.sort compare (List.map (fun (t, s, _) -> (t, s)) popped) in
      List.map (fun (t, s, _) -> (t, s)) popped = sorted
      && List.length popped = List.length keys)

let prop_eheap_matches_pairing =
  (* The tentpole contract: the array heap dequeues in exactly the pairing
     heap's order on any insert / delete-min interleaving.  Ops: [Some t] =
     insert at time t (seq auto-increments), [None] = delete-min. *)
  QCheck.Test.make ~name:"eheap order == pairing heap order on random interleavings"
    ~count:500
    QCheck.(list (option (int_bound 50)))
    (fun ops ->
      let module K = struct
        type t = int * int

        let compare (t1, s1) (t2, s2) =
          let c = compare t1 t2 in
          if c <> 0 then c else compare s1 s2
      end in
      let module PH = Heap.Make (K) in
      let ph = ref PH.empty in
      let eh = Eheap.create ~capacity:1 ~dummy:(-1) () in
      let seq = ref 0 in
      let mismatch = ref false in
      List.iter
        (fun op ->
          match op with
          | Some t ->
            ph := PH.insert (t, !seq) !seq !ph;
            Eheap.add eh ~time:t ~seq:!seq !seq;
            incr seq
          | None -> (
            match PH.delete_min !ph with
            | None -> if not (Eheap.is_empty eh) then mismatch := true
            | Some (((t, s), v), rest) ->
              ph := rest;
              if
                Eheap.is_empty eh
                || Eheap.min_time eh <> t
                || Eheap.min_seq eh <> s
                || Eheap.pop eh <> v
              then mismatch := true))
        ops;
      (* Drain what's left: the tails must agree too. *)
      let rec drain () =
        match PH.delete_min !ph with
        | None -> if not (Eheap.is_empty eh) then mismatch := true
        | Some ((_, v), rest) ->
          ph := rest;
          if Eheap.is_empty eh || Eheap.pop eh <> v then mismatch := true;
          drain ()
      in
      drain ();
      not !mismatch)

(* --- Engine --- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e ~at:30 (fun () -> log := 30 :: !log);
  Engine.schedule_at e ~at:10 (fun () -> log := 10 :: !log);
  Engine.schedule_at e ~at:20 (fun () -> log := 20 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule_at e ~at:5 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "ties run in scheduling order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.schedule_at e ~at:100 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past scheduling rejected" (Invalid_argument "") (fun () ->
      try Engine.schedule_at e ~at:50 (fun () -> ())
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e ~at:10 (fun () ->
      log := "a" :: !log;
      Engine.schedule_after e ~delay:5 (fun () -> log := "b" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested event ran" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check int) "clock" 15 (Engine.now e)

let test_engine_post_default () =
  (* Without a router, post IS schedule_after — same delivery times, same
     FIFO tie order, src/dst ignored.  This is what keeps every golden
     byte-identical while the kernel's cross-processor wakes route
     through the façade. *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.post e ~src:0 ~dst:3 ~delay:20 (fun () -> log := "b" :: !log);
  Engine.post e ~src:2 ~dst:1 ~delay:10 (fun () -> log := "a" :: !log);
  Engine.schedule_after e ~delay:20 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "schedule_after semantics, ties FIFO"
    [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock" 20 (Engine.now e)

let test_engine_post_router () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.set_router e
    (Some
       {
         Engine.route =
           (fun ~src ~dst ~daemon ~deferred ~delay fn ->
             seen := (src, dst, daemon, deferred, delay) :: !seen;
             (* a router that adds a hop surcharge, then hands back *)
             Engine.schedule_after e ~daemon ~deferred ~delay:(delay + 5) fn);
       });
  let at = ref 0 in
  Engine.post e ~src:4 ~dst:9 ~delay:10 (fun () -> at := Engine.now e);
  Engine.run e;
  Alcotest.(check (list (pair (pair int int) (pair bool int))))
    "router saw src/dst/flags/delay"
    [ ((4, 9), (false, 10)) ]
    (List.map (fun (s, d, dm, df, dl) -> ((s, d), (dm || df, dl))) !seen);
  Alcotest.(check int) "routed delivery includes the surcharge" 15 !at

let test_engine_every () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.every e ~period:10 (fun () ->
      incr fired;
      !fired < 4);
  Engine.run e;
  Alcotest.(check int) "fires until told to stop" 4 !fired;
  Alcotest.(check int) "last firing time" 40 (Engine.now e)

let test_engine_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter (fun at -> Engine.schedule_at e ~at (fun () -> log := at :: !log)) [ 5; 15; 25 ];
  Engine.run_until e 15;
  Alcotest.(check (list int)) "only events <= horizon" [ 5; 15 ] (List.rev !log);
  Alcotest.(check int) "clock moved to horizon" 15 (Engine.now e);
  Engine.run e;
  Alcotest.(check (list int)) "rest runs later" [ 5; 15; 25 ] (List.rev !log)

let test_engine_daemon_events () =
  let e = Engine.create () in
  let daemon_fires = ref 0 in
  let normal_fires = ref 0 in
  Engine.every e ~daemon:true ~period:10 (fun () ->
      incr daemon_fires;
      true);
  Engine.schedule_at e ~at:35 (fun () -> incr normal_fires);
  Engine.run e;
  (* The daemon interleaves while normal work exists, then stops holding
     the run open. *)
  Alcotest.(check int) "normal event ran" 1 !normal_fires;
  Alcotest.(check int) "daemon fired thrice before the horizon" 3 !daemon_fires;
  Alcotest.(check bool) "engine reports empty" true (Engine.is_empty e)

let test_engine_daemon_only_never_runs () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule_after e ~daemon:true ~delay:5 (fun () -> fired := true);
  Engine.run e;
  Alcotest.(check bool) "daemon alone does not hold the run" false !fired;
  (* ...but run_until still executes it (for direct clock control). *)
  Engine.run_until e 10;
  Alcotest.(check bool) "run_until executes daemons" true !fired

let test_engine_limit () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule_at e ~at:i (fun () -> incr count)
  done;
  Engine.run ~limit:3 e;
  Alcotest.(check int) "limited" 3 !count;
  Alcotest.(check int) "events_processed" 3 (Engine.events_processed e);
  Alcotest.(check int) "pending is O(1) and counts the rest" 7 (Engine.pending_events e)

(* Pins the chosen ?limit semantics: the budget counts non-daemon events
   only; interleaved daemon ticks ride along free. *)
let test_engine_limit_ignores_daemons () =
  let e = Engine.create () in
  let normal = ref 0 and daemon = ref 0 in
  for i = 1 to 5 do
    Engine.schedule_at e ~daemon:true ~at:((2 * i) - 1) (fun () -> incr daemon);
    Engine.schedule_at e ~at:(2 * i) (fun () -> incr normal)
  done;
  Engine.run ~limit:3 e;
  Alcotest.(check int) "three normal events consumed the budget" 3 !normal;
  Alcotest.(check int) "interleaved daemons ran for free" 3 !daemon;
  Engine.run e;
  Alcotest.(check int) "the rest still runs" 5 !normal

(* Deferred events (retransmission timers and the like): they hold the run
   open like normal events, but are exempt from the ?limit budget like
   daemons. *)
let test_engine_deferred_keeps_run_alive () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule_after e ~deferred:true ~delay:5 (fun () -> fired := true);
  Engine.run e;
  Alcotest.(check bool) "deferred alone holds the run open" true !fired;
  Alcotest.(check bool) "engine reports empty" true (Engine.is_empty e)

let test_engine_limit_ignores_deferred () =
  let e = Engine.create () in
  let normal = ref 0 and deferred = ref 0 in
  for i = 1 to 5 do
    Engine.schedule_at e ~deferred:true ~at:((2 * i) - 1) (fun () -> incr deferred);
    Engine.schedule_at e ~at:(2 * i) (fun () -> incr normal)
  done;
  Engine.run ~limit:3 e;
  Alcotest.(check int) "three normal events consumed the budget" 3 !normal;
  Alcotest.(check int) "interleaved deferred events ran for free" 3 !deferred;
  Engine.run e;
  Alcotest.(check int) "remaining normal events run" 5 !normal;
  Alcotest.(check int) "remaining deferred events run" 5 !deferred

(* A deferred chain that re-enqueues itself past the budget boundary must
   not eat the budget (the retransmission-loop shape). *)
let test_engine_limit_deferred_chain () =
  let e = Engine.create () in
  let hops = ref 0 and normal = ref 0 in
  let rec hop () =
    incr hops;
    if !hops < 4 then Engine.schedule_after e ~deferred:true ~delay:3 hop
  in
  Engine.schedule_after e ~deferred:true ~delay:3 hop;
  for i = 1 to 3 do
    Engine.schedule_at e ~at:(100 * i) (fun () -> incr normal)
  done;
  Engine.run ~limit:2 e;
  Alcotest.(check int) "the whole deferred chain ran" 4 !hops;
  Alcotest.(check int) "budget spent on normal events only" 2 !normal

let test_engine_daemon_and_deferred_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "daemon && deferred is a caller bug"
    (Invalid_argument "Engine.schedule_at: daemon and deferred are exclusive")
    (fun () -> Engine.schedule_at e ~daemon:true ~deferred:true ~at:1 ignore)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_matters () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_copy () =
  let a = Rng.create 7L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" true (Rng.next_int64 a <> Rng.next_int64 b)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck.(pair (int_bound 1000) (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create (Int64.of_int seed) in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_int_in =
  QCheck.Test.make ~name:"Rng.int_in stays in [lo, hi]" ~count:500
    QCheck.(triple (int_bound 1000) (int_range (-50) 50) (int_bound 100))
    (fun (seed, lo, extra) ->
      let hi = lo + extra in
      let r = Rng.create (Int64.of_int seed) in
      let v = Rng.int_in r lo hi in
      v >= lo && v <= hi)

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair (int_bound 1000) (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle (Rng.create (Int64.of_int seed)) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_rng_float_bounds () =
  let r = Rng.create 5L in
  for _ = 1 to 100 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

(* --- Time --- *)

let test_time_units () =
  Alcotest.(check int) "us" 1_000 (Time_ns.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Time_ns.ms 1);
  Alcotest.(check int) "s" 1_000_000_000 (Time_ns.s 1);
  Alcotest.(check (float 1e-9)) "to ms" 1.5 (Time_ns.to_float_ms 1_500_000)

let test_time_pp () =
  Alcotest.(check string) "ns" "999ns" (Time_ns.to_string 999);
  Alcotest.(check string) "us" "1.50us" (Time_ns.to_string 1_500);
  Alcotest.(check string) "ms" "2.000ms" (Time_ns.to_string 2_000_000);
  Alcotest.(check string) "s" "3.000s" (Time_ns.to_string 3_000_000_000)

let suite =
  [
    ("heap: empty", `Quick, test_heap_empty);
    ("heap: basic order", `Quick, test_heap_basic);
    ("heap: merge", `Quick, test_heap_merge);
    ("heap: duplicate keys", `Quick, test_heap_duplicate_keys);
    qtest prop_heap_sorts;
    qtest prop_heap_size;
    qtest prop_heap_merge_is_union;
    qtest prop_heap_size_deep_shape;
    ("eheap: empty", `Quick, test_eheap_empty);
    ("eheap: order and ties", `Quick, test_eheap_order);
    ("eheap: packed-range fallback", `Quick, test_eheap_fallback);
    ("eheap: seq-threshold fallback (sharded wide keys)", `Quick, test_eheap_seq_fallback);
    ("eheap: packed-threshold edges", `Quick, test_eheap_threshold_edges);
    qtest prop_eheap_threshold_straddle;
    qtest prop_eheap_matches_pairing;
    ("engine: time order", `Quick, test_engine_order);
    ("engine: FIFO tie-break", `Quick, test_engine_fifo_ties);
    ("engine: rejects the past", `Quick, test_engine_past_rejected);
    ("engine: nested scheduling", `Quick, test_engine_nested_scheduling);
    ("engine: post defaults to schedule_after", `Quick, test_engine_post_default);
    ("engine: post routes through an installed router", `Quick, test_engine_post_router);
    ("engine: recurring events", `Quick, test_engine_every);
    ("engine: run_until horizon", `Quick, test_engine_run_until);
    ("engine: daemon events interleave", `Quick, test_engine_daemon_events);
    ("engine: daemons don't hold the run", `Quick, test_engine_daemon_only_never_runs);
    ("engine: event limit", `Quick, test_engine_limit);
    ("engine: limit counts only non-daemon events", `Quick, test_engine_limit_ignores_daemons);
    ("engine: deferred events hold the run open", `Quick, test_engine_deferred_keeps_run_alive);
    ("engine: limit exempts deferred events", `Quick, test_engine_limit_ignores_deferred);
    ("engine: deferred chains don't eat the budget", `Quick, test_engine_limit_deferred_chain);
    ("engine: daemon && deferred rejected", `Quick, test_engine_daemon_and_deferred_rejected);
    ("rng: deterministic", `Quick, test_rng_deterministic);
    ("rng: seed matters", `Quick, test_rng_seed_matters);
    ("rng: copy", `Quick, test_rng_copy);
    ("rng: split", `Quick, test_rng_split_independent);
    qtest prop_rng_int_bounds;
    qtest prop_rng_int_in;
    qtest prop_rng_shuffle_permutes;
    ("rng: float bounds", `Quick, test_rng_float_bounds);
    ("time: units", `Quick, test_time_units);
    ("time: pretty printing", `Quick, test_time_pp);
  ]
