let () =
  Alcotest.run "platinum"
    [
      ("sim", Test_sim.suite);
      ("machine", Test_machine.suite);
      ("phys", Test_phys.suite);
      ("core", Test_core.suite);
      ("flat", Test_flat.suite);
      ("check", Test_check.suite);
      ("ast_lint", Test_ast_lint.suite);
      ("vm", Test_vm.suite);
      ("kernel", Test_kernel.suite);
      ("fastpath", Test_fastpath.suite);
      ("cache", Test_cache.suite);
      ("analysis", Test_analysis.suite);
      ("micro", Test_micro.suite);
      ("stats", Test_stats.suite);
      ("workload", Test_workload.suite);
      ("integration", Test_integration.suite);
      ("golden", Test_golden.suite);
      ("soak", Test_soak.suite);
      ("par", Test_parsweep.suite);
      ("parshard", Test_parshard.suite);
      ("extensions", Test_extensions.suite);
      ("units", Test_units.suite);
      ("serve", Test_serve.suite);
    ]
