(* The seed's hash-based translation tables, kept as reference models.

   Before the flat-table rework (PR 5), [Pmap] and [Atc] indexed their
   entries with [(int, entry) Hashtbl.t].  These are those implementations,
   preserved verbatim (modulo the module paths) so the differential
   property in [Test_flat] can drive identical operation sequences through
   the old and new representations and assert they remain observably
   indistinguishable — including for spill keys outside the new dense
   range. *)

module Frame = Platinum_phys.Frame

module Pmap = struct
  type entry = {
    frame : Frame.t;
    mutable write_ok : bool;
  }

  type t = {
    pmap_proc : int;
    entries : (int, entry) Hashtbl.t;
  }

  let create ~proc = { pmap_proc = proc; entries = Hashtbl.create 64 }
  let proc t = t.pmap_proc
  let find t ~vpage = Hashtbl.find_opt t.entries vpage

  let install t ~vpage ~frame ~write_ok =
    let e = { frame; write_ok } in
    Hashtbl.replace t.entries vpage e;
    e

  let remove t ~vpage = Hashtbl.remove t.entries vpage

  let restrict t ~vpage =
    match Hashtbl.find_opt t.entries vpage with
    | None -> ()
    | Some e -> e.write_ok <- false

  let clear t = Hashtbl.reset t.entries
  let size t = Hashtbl.length t.entries
  let iter f t = Hashtbl.iter f t.entries
end

module Atc = struct
  type t = {
    atc_proc : int;
    mutable aspace : int;  (* -1 = none *)
    entries : (int, Pmap.entry) Hashtbl.t;
    mutable last_vpage : int;  (* -1 = empty *)
    mutable last_entry : Pmap.entry option;
  }

  let create ~proc =
    {
      atc_proc = proc;
      aspace = -1;
      entries = Hashtbl.create 64;
      last_vpage = -1;
      last_entry = None;
    }

  let proc t = t.atc_proc
  let active_aspace t = if t.aspace < 0 then None else Some t.aspace

  let clear_last t =
    t.last_vpage <- -1;
    t.last_entry <- None

  let flush t =
    Hashtbl.reset t.entries;
    clear_last t

  let activate t ~aspace =
    if t.aspace = aspace then false
    else begin
      flush t;
      t.aspace <- aspace;
      true
    end

  let deactivate t =
    flush t;
    t.aspace <- -1

  let find t ~aspace ~vpage =
    if t.aspace <> aspace then None
    else if vpage = t.last_vpage then t.last_entry
    else begin
      match Hashtbl.find_opt t.entries vpage with
      | Some _ as hit ->
        t.last_vpage <- vpage;
        t.last_entry <- hit;
        hit
      | None -> None
    end

  let load t ~vpage entry =
    if t.aspace < 0 then invalid_arg "Ref_tables.Atc.load: no active address space";
    Hashtbl.replace t.entries vpage entry;
    t.last_vpage <- vpage;
    t.last_entry <- Some entry

  let invalidate t ~aspace ~vpage =
    if t.aspace = aspace then begin
      Hashtbl.remove t.entries vpage;
      if vpage = t.last_vpage then clear_last t
    end

  let size t = Hashtbl.length t.entries

  let peek t ~aspace ~vpage =
    if t.aspace <> aspace then None else Hashtbl.find_opt t.entries vpage
end
