(* Tests for the kernel: threads, scheduling, migration, ports, and the
   user-level synchronization library. *)

module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync
module Kernel = Platinum_kernel.Kernel
module Runner = Platinum_runner.Runner
module Time_ns = Platinum_sim.Time_ns

(* Most tests run a tiny program on a full PLATINUM instance. *)
let run ?(nprocs = 4) main =
  let config = Platinum_machine.Config.butterfly_plus ~nprocs () in
  Runner.time ~config ~frames_per_module:64 ~default_zone_pages:32 main

let test_spawn_join () =
  let order = ref [] in
  let r =
    run (fun () ->
        let tid =
          Api.spawn ~proc:1 (fun () ->
              Api.compute 1000;
              order := "child" :: !order)
        in
        Api.join tid;
        order := "parent" :: !order)
  in
  Alcotest.(check (list string)) "join ordering" [ "child"; "parent" ] (List.rev !order);
  Alcotest.(check bool) "time advanced" true (r.Runner.elapsed > 0)

let test_join_finished_thread () =
  run (fun () ->
      let tid = Api.spawn (fun () -> ()) in
      Api.compute 10_000_000;
      (* The child is long gone; join must not hang. *)
      Api.join tid)
  |> ignore

let test_many_threads () =
  let hits = Array.make 16 0 in
  run ~nprocs:8 (fun () ->
      let tids =
        List.init 16 (fun i -> Api.spawn (fun () -> hits.(i) <- hits.(i) + 1))
      in
      List.iter Api.join tids)
  |> ignore;
  Alcotest.(check (array int)) "every thread ran once" (Array.make 16 1) hits

let test_self_and_proc () =
  run (fun () ->
      let tid = Api.spawn ~proc:2 (fun () ->
          Alcotest.(check int) "on requested processor" 2 (Api.my_proc ())) in
      Api.join tid;
      Alcotest.(check bool) "self is a valid tid" true (Api.self () >= 0))
  |> ignore

let test_compute_advances_clock () =
  let t = ref 0 in
  run (fun () ->
      let t0 = Api.now () in
      Api.compute 5_000_000;
      t := Api.now () - t0)
  |> ignore;
  Alcotest.(check int) "compute = elapsed" 5_000_000 !t

let test_migrate () =
  run (fun () ->
      let tid =
        Api.spawn ~proc:0 (fun () ->
            Alcotest.(check int) "before" 0 (Api.my_proc ());
            let t0 = Api.now () in
            Api.migrate 3;
            Alcotest.(check int) "after" 3 (Api.my_proc ());
            (* Migration pays for the kernel-stack block copy. *)
            Alcotest.(check bool) "costs time" true (Api.now () - t0 > 1_000_000))
      in
      Api.join tid)
  |> ignore

let test_threads_run_in_parallel () =
  (* Two 10 ms computations on different processors should overlap. *)
  let r =
    run (fun () ->
        let w () = Api.compute 10_000_000 in
        let t1 = Api.spawn ~proc:1 w in
        let t2 = Api.spawn ~proc:2 w in
        Api.join t1;
        Api.join t2)
  in
  Alcotest.(check bool) "parallel, not serial" true (r.Runner.elapsed < Time_ns.ms 19)

let test_timeslicing_same_proc () =
  (* Two long threads on ONE processor must interleave (quantum) and both
     finish. *)
  let done1 = ref false and done2 = ref false in
  run (fun () ->
      let w flag () =
        for _ = 1 to 10 do
          Api.compute 30_000_000
        done;
        flag := true
      in
      let t1 = Api.spawn ~proc:1 (w done1) in
      let t2 = Api.spawn ~proc:1 (w done2) in
      Api.join t1;
      Api.join t2)
  |> ignore;
  Alcotest.(check bool) "both finished" true (!done1 && !done2)

(* --- ports --- *)

let test_port_send_recv () =
  run (fun () ->
      let port = Api.new_port () in
      let t =
        Api.spawn ~proc:1 (fun () ->
            let m = Api.recv port in
            Alcotest.(check (array int)) "message intact" [| 1; 2; 3 |] m)
      in
      Api.send port [| 1; 2; 3 |];
      Api.join t)
  |> ignore

let test_port_blocking_recv () =
  (* The receiver blocks first; the sender wakes it. *)
  let got = ref [||] in
  run (fun () ->
      let port = Api.new_port () in
      let t = Api.spawn ~proc:1 (fun () -> got := Api.recv port) in
      Api.compute 5_000_000;
      Api.send port [| 42 |];
      Api.join t)
  |> ignore;
  Alcotest.(check (array int)) "woken with the message" [| 42 |] !got

let test_port_fifo () =
  let order = ref [] in
  run (fun () ->
      let port = Api.new_port () in
      for i = 1 to 5 do
        Api.send port [| i |]
      done;
      let t =
        Api.spawn ~proc:1 (fun () ->
            for _ = 1 to 5 do
              let m = Api.recv port in
              order := m.(0) :: !order
            done)
      in
      Api.join t)
  |> ignore;
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_port_copies_messages () =
  run (fun () ->
      let port = Api.new_port () in
      let msg = [| 7 |] in
      Api.send port msg;
      msg.(0) <- 8 (* mutation after send must not affect the message *);
      let t = Api.spawn ~proc:1 (fun () ->
          Alcotest.(check (array int)) "copied on send" [| 7 |] (Api.recv port)) in
      Api.join t)
  |> ignore

let test_port_many_receivers () =
  let sum = ref 0 in
  run (fun () ->
      let port = Api.new_port () in
      let receivers =
        List.init 3 (fun i ->
            Api.spawn ~proc:(i + 1) (fun () ->
                let m = Api.recv port in
                sum := !sum + m.(0)))
      in
      Api.compute 1_000_000;
      for i = 1 to 3 do
        Api.send port [| i * 10 |]
      done;
      List.iter Api.join receivers)
  |> ignore;
  Alcotest.(check int) "all three delivered once" 60 !sum

(* --- deadlock detection --- *)

let test_deadlock_detected () =
  Alcotest.(check bool) "deadlock raises" true
    (try
       ignore
         (run (fun () ->
              let port = Api.new_port () in
              ignore (Api.recv port)));
       false
     with Kernel.Deadlock _ -> true)

let test_thread_failure_propagates () =
  Alcotest.(check bool) "failure surfaces" true
    (try
       ignore (run (fun () -> failwith "boom"));
       false
     with Kernel.Thread_failure (Failure msg) -> msg = "boom")

(* --- memory API --- *)

let test_read_write_roundtrip () =
  run (fun () ->
      let a = Api.alloc 4 in
      Api.write a 11;
      Api.write (a + 1) 22;
      Alcotest.(check int) "w0" 11 (Api.read a);
      Alcotest.(check int) "w1" 22 (Api.read (a + 1)))
  |> ignore

let test_block_roundtrip () =
  run (fun () ->
      let a = Api.alloc_pages 2 in
      let data = Array.init 100 (fun i -> i * 3) in
      Api.block_write a data;
      Alcotest.(check (array int)) "block round trip" data (Api.block_read a 100))
  |> ignore

let test_rmw_returns_old () =
  run (fun () ->
      let a = Api.alloc 1 in
      Api.write a 5;
      Alcotest.(check int) "old value" 5 (Api.rmw a (fun v -> v * 2));
      Alcotest.(check int) "new value" 10 (Api.read a))
  |> ignore

let test_zones_from_api () =
  run (fun () ->
      let z = Api.new_zone "private" ~pages:2 in
      let a = Api.alloc ~zone:z 4 in
      let b = Api.alloc 4 in
      Api.write a 1;
      Api.write b 2;
      Alcotest.(check bool) "zones give distinct pages" true
        (a / Api.page_words () <> b / Api.page_words ()))
  |> ignore

let test_page_words_exposed () =
  run (fun () -> Alcotest.(check int) "page words" 1024 (Api.page_words ())) |> ignore

(* --- address spaces and segments (§1.1) --- *)

let test_aspace_private_heaps () =
  (* The same allocation sequence in two spaces yields the same numeric
     addresses holding different data: the spaces are disjoint. *)
  let seen = ref (-1, -1) in
  run (fun () ->
      let other = Api.new_aspace () in
      let a0 = Api.alloc 4 in
      Api.write a0 111;
      let t =
        Api.spawn ~proc:1 ~aspace:other (fun () ->
            let z = Api.new_zone "mine" ~pages:1 in
            let a1 = Api.alloc ~zone:z 4 in
            Api.write a1 222;
            seen := (Api.read a1, Api.my_aspace ()))
      in
      Api.join t;
      Alcotest.(check int) "root space unchanged" 111 (Api.read a0))
  |> ignore;
  Alcotest.(check int) "child read its own data" 222 (fst !seen);
  Alcotest.(check bool) "child ran in the other space" true (snd !seen > 0)

let test_aspace_isolation () =
  (* An address bound only in the root space (here: a segment mapped
     beyond the heaps) is an address error in a fresh space. *)
  Alcotest.(check bool) "unbound access fails in the other space" true
    (try
       run (fun () ->
           let seg = Api.new_segment "rootonly" ~pages:1 in
           let a = Api.map_segment seg in
           Api.write a 5;
           let other = Api.new_aspace () in
           (* The fresh space never maps the segment. *)
           let t = Api.spawn ~proc:1 ~aspace:other (fun () -> ignore (Api.read a)) in
           Api.join t)
       |> ignore;
       false
     with Kernel.Thread_failure (Platinum_vm.Addr_space.Address_error _) -> true)

let test_segment_shared_across_spaces () =
  let got = ref 0 in
  run (fun () ->
      let seg = Api.new_segment "shared" ~pages:2 in
      let base_here = Api.map_segment seg in
      Api.block_write base_here (Array.init 32 (fun i -> i * 5));
      let other = Api.new_aspace () in
      let port = Api.new_port () in
      let t =
        Api.spawn ~proc:2 ~aspace:other (fun () ->
            let base_there = Api.map_segment seg in
            (* Same object, possibly a different virtual address. *)
            let data = Api.block_read base_there 32 in
            Api.send port [| data.(7) |])
      in
      let reply = Api.recv port in
      got := reply.(0);
      Api.join t)
  |> ignore;
  Alcotest.(check int) "the other space sees the object's data" 35 !got

let test_segment_coherent_across_spaces () =
  (* Write-sharing a segment across spaces drives the same protocol:
     the writer's updates invalidate the reader's replica. *)
  let final = ref 0 in
  run (fun () ->
      let seg = Api.new_segment "wshared" ~pages:1 in
      let here = Api.map_segment seg in
      let other = Api.new_aspace () in
      let start = Api.new_port () and done_ = Api.new_port () in
      let t =
        Api.spawn ~proc:3 ~aspace:other (fun () ->
            let there = Api.map_segment seg in
            ignore (Api.read there) (* replicate *);
            ignore (Api.recv start);
            final := Api.read there)
      in
      Api.write here 0;
      Api.compute 1_000_000;
      Api.write here 42 (* must shoot down the other space's mapping *);
      Api.send start [| 0 |];
      Api.join t;
      ignore done_)
  |> ignore;
  Alcotest.(check int) "cross-space coherence" 42 !final

(* --- sync library --- *)

let test_spinlock_mutual_exclusion () =
  let violations = ref 0 in
  run (fun () ->
      let lock = Sync.Spinlock.make () in
      let counter = Api.alloc 1 in
      let inside = ref false in
      let worker () =
        for _ = 1 to 10 do
          Sync.Spinlock.with_lock lock (fun () ->
              if !inside then incr violations;
              inside := true;
              (* Hold the lock across a memory operation. *)
              let v = Api.read counter in
              Api.compute 50_000;
              Api.write counter (v + 1);
              inside := false)
        done
      in
      let tids = List.init 4 (fun i -> Api.spawn ~proc:i worker) in
      List.iter Api.join tids;
      Alcotest.(check int) "all increments counted" 40 (Api.read counter))
  |> ignore;
  Alcotest.(check int) "no overlapping critical sections" 0 !violations

let test_event_count () =
  let seen = ref (-1) in
  run (fun () ->
      let ec = Sync.Event_count.make () in
      let waiter = Api.spawn ~proc:1 (fun () ->
          Sync.Event_count.await ec 3;
          seen := Sync.Event_count.current ec) in
      Api.compute 1_000_000;
      Sync.Event_count.advance ec;
      Api.compute 1_000_000;
      Sync.Event_count.advance ec;
      Api.compute 1_000_000;
      Sync.Event_count.advance ec;
      Api.join waiter)
  |> ignore;
  Alcotest.(check bool) "woke at or after 3" true (!seen >= 3)

let test_barrier () =
  let phase_log = ref [] in
  run ~nprocs:4 (fun () ->
      let b = Sync.Barrier.make ~parties:4 () in
      let worker me () =
        Api.compute (1_000_000 * (me + 1));
        phase_log := (1, me) :: !phase_log;
        Sync.Barrier.wait b;
        phase_log := (2, me) :: !phase_log;
        Sync.Barrier.wait b;
        phase_log := (3, me) :: !phase_log
      in
      Api.spawn_join_all ~procs:[ 0; 1; 2; 3 ] (List.init 4 (fun me _ -> worker me ())))
  |> ignore;
  (* No phase-2 entry may precede any phase-1 entry, etc. *)
  let entries = List.rev !phase_log in
  let max_phase_seen = ref 0 in
  let ok = ref true in
  List.iter
    (fun (phase, _) ->
      if phase < !max_phase_seen - 1 then ok := false;
      if phase > !max_phase_seen then max_phase_seen := phase)
    entries;
  Alcotest.(check bool) "phases globally ordered" true !ok;
  Alcotest.(check int) "all 12 entries" 12 (List.length entries)

let test_barrier_reusable () =
  run ~nprocs:2 (fun () ->
      let b = Sync.Barrier.make ~parties:2 () in
      let rounds = ref 0 in
      let worker _ =
        for _ = 1 to 5 do
          Sync.Barrier.wait b
        done;
        incr rounds
      in
      Api.spawn_join_all ~procs:[ 0; 1 ] [ worker; worker ];
      Alcotest.(check int) "both completed 5 rounds" 2 !rounds)
  |> ignore

let test_with_lock_releases_on_exn () =
  let reacquired = ref false in
  run (fun () ->
      let lock = Sync.Spinlock.make () in
      (try Sync.Spinlock.with_lock lock (fun () -> raise Exit) with Exit -> ());
      (* If the exception leaked the lock, this acquire spins forever and
         the kernel reports a deadlock instead. *)
      Sync.Spinlock.with_lock lock (fun () -> reacquired := true))
  |> ignore;
  Alcotest.(check bool) "lock released by the exception" true !reacquired

(* More threads than processors: contention plus timeslicing, no compute
   inside the critical section to keep the race window tight. *)
let test_spinlock_oversubscribed () =
  run (fun () ->
      let lock = Sync.Spinlock.make () in
      let counter = Api.alloc 1 in
      let worker () =
        for _ = 1 to 5 do
          Sync.Spinlock.with_lock lock (fun () ->
              Api.write counter (Api.read counter + 1))
        done
      in
      let tids = List.init 8 (fun i -> Api.spawn ~proc:(i mod 4) worker) in
      List.iter Api.join tids;
      Alcotest.(check int) "all 40 increments counted" 40 (Api.read counter))
  |> ignore

let test_event_count_multiple_waiters () =
  let woken = ref [] in
  run (fun () ->
      let ec = Sync.Event_count.make () in
      let waiter target =
        Api.spawn ~proc:(target mod 4) (fun () ->
            Sync.Event_count.await ec target;
            woken := target :: !woken)
      in
      let tids = List.map waiter [ 1; 2; 3 ] in
      for _ = 1 to 3 do
        Api.compute 500_000;
        Sync.Event_count.advance ec
      done;
      List.iter Api.join tids)
  |> ignore;
  (* Everyone wakes; a waiter for n never wakes before one for m < n has
     become runnable (the count is monotone), but scheduling may reorder
     the list — only membership is guaranteed. *)
  Alcotest.(check (list int)) "all waiters woke" [ 1; 2; 3 ] (List.sort compare !woken)

let test_barrier_invalid_parties () =
  run (fun () ->
      Alcotest.check_raises "parties must be positive"
        (Invalid_argument "Barrier.make: parties must be positive") (fun () ->
          ignore (Sync.Barrier.make ~parties:0 ())))
  |> ignore

(* Api.sleep parks the thread on a deferred engine event: virtual time
   advances without the processor being occupied. *)
let test_sleep_advances_clock () =
  let t0 = ref 0 and t1 = ref 0 in
  let r =
    run (fun () ->
        t0 := Api.now ();
        Api.sleep 1_000_000;
        t1 := Api.now ();
        Api.sleep 0 (* no-op, must not deadlock *))
  in
  Alcotest.(check bool) "slept at least 1 ms" true (!t1 - !t0 >= 1_000_000);
  Alcotest.(check bool) "run terminated" true (r.Runner.elapsed >= 1_000_000)

(* Synchronization on an adversarial machine: module stalls/outages delay
   the atomic ops but must never corrupt them. *)
let test_spinlock_under_injection () =
  let config = Platinum_machine.Config.butterfly_plus ~nprocs:4 () in
  Runner.time ~config ~frames_per_module:64 ~default_zone_pages:32
    ~inject:(Platinum_sim.Inject.config ~seed:5L ~rate:0.3 ())
    (fun () ->
      let lock = Sync.Spinlock.make () in
      let counter = Api.alloc 1 in
      let worker () =
        for _ = 1 to 5 do
          Sync.Spinlock.with_lock lock (fun () ->
              Api.write counter (Api.read counter + 1))
        done
      in
      let tids = List.init 4 (fun i -> Api.spawn ~proc:i worker) in
      List.iter Api.join tids;
      Alcotest.(check int) "increments survive injected faults" 20 (Api.read counter))
  |> ignore

let suite =
  [
    ("threads: spawn and join", `Quick, test_spawn_join);
    ("threads: join finished thread", `Quick, test_join_finished_thread);
    ("threads: many threads", `Quick, test_many_threads);
    ("threads: self and my_proc", `Quick, test_self_and_proc);
    ("threads: compute advances the clock", `Quick, test_compute_advances_clock);
    ("threads: migration", `Quick, test_migrate);
    ("threads: true parallelism", `Quick, test_threads_run_in_parallel);
    ("threads: timeslicing on one processor", `Quick, test_timeslicing_same_proc);
    ("ports: send/recv", `Quick, test_port_send_recv);
    ("ports: blocking recv", `Quick, test_port_blocking_recv);
    ("ports: FIFO", `Quick, test_port_fifo);
    ("ports: messages are copied", `Quick, test_port_copies_messages);
    ("ports: multiple receivers", `Quick, test_port_many_receivers);
    ("kernel: deadlock detected", `Quick, test_deadlock_detected);
    ("kernel: thread failure propagates", `Quick, test_thread_failure_propagates);
    ("memory: word round trip", `Quick, test_read_write_roundtrip);
    ("memory: block round trip", `Quick, test_block_roundtrip);
    ("memory: rmw returns old", `Quick, test_rmw_returns_old);
    ("memory: zones", `Quick, test_zones_from_api);
    ("memory: page_words", `Quick, test_page_words_exposed);
    ("aspace: private heaps", `Quick, test_aspace_private_heaps);
    ("aspace: isolation", `Quick, test_aspace_isolation);
    ("aspace: segments shared across spaces", `Quick, test_segment_shared_across_spaces);
    ("aspace: cross-space coherence", `Quick, test_segment_coherent_across_spaces);
    ("sync: spinlock mutual exclusion", `Quick, test_spinlock_mutual_exclusion);
    ("sync: event count", `Quick, test_event_count);
    ("sync: barrier ordering", `Quick, test_barrier);
    ("sync: barrier reusable", `Quick, test_barrier_reusable);
    ("sync: with_lock releases on exception", `Quick, test_with_lock_releases_on_exn);
    ("sync: spinlock oversubscribed", `Quick, test_spinlock_oversubscribed);
    ("sync: event count wakes every waiter", `Quick, test_event_count_multiple_waiters);
    ("sync: barrier rejects zero parties", `Quick, test_barrier_invalid_parties);
    ("sync: sleep advances the clock", `Quick, test_sleep_advances_clock);
    ("sync: spinlock correct under fault injection", `Quick, test_spinlock_under_injection);
  ]
