(* Small, targeted unit tests for corners the larger suites pass over:
   Cmap message queues, rendering functions, workload oracles at hand-
   checkable sizes, model edge cases, kernel error paths. *)

module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Procset = Platinum_machine.Procset
module Memmodule = Platinum_machine.Memmodule
module Engine = Platinum_sim.Engine
module Rng = Platinum_sim.Rng
module Rights = Platinum_core.Rights
module Cpage = Platinum_core.Cpage
module Cmap = Platinum_core.Cmap
module Pmap = Platinum_core.Pmap
module Atc = Platinum_core.Atc
module Counters = Platinum_core.Counters
module Defrost = Platinum_core.Defrost
module Api = Platinum_kernel.Api
module Kernel = Platinum_kernel.Kernel
module Runner = Platinum_runner.Runner
module Outcome = Platinum_workload.Outcome
module Gauss = Platinum_workload.Gauss
module Jacobi = Platinum_workload.Jacobi
module M = Platinum_analysis.Migration_model
module Frame = Platinum_phys.Frame

let qtest = QCheck_alcotest.to_alcotest

(* --- Rights --- *)

let test_rights () =
  Alcotest.(check bool) "rw allows read" true (Rights.allows_read Rights.Read_write);
  Alcotest.(check bool) "ro forbids write" false (Rights.allows_write Rights.Read_only);
  Alcotest.(check bool) "none forbids read" false (Rights.allows_read Rights.No_access);
  Alcotest.(check bool) "min picks the tighter" true
    (Rights.equal (Rights.min Rights.Read_write Rights.Read_only) Rights.Read_only);
  Alcotest.(check string) "to_string" "rw" (Rights.to_string Rights.Read_write)

(* --- Cmap message queue --- *)

let test_cmap_queue () =
  let cm = Cmap.create ~aspace:0 ~nprocs:4 in
  Alcotest.(check int) "empty" 0 (List.length (Cmap.pending_messages cm));
  let msg =
    {
      Cmap.msg_vpage = 3;
      msg_directive = Cmap.Invalidate;
      msg_targets = Procset.of_list [ 1; 2 ];
      msg_done = false;
    }
  in
  Cmap.post cm msg;
  Alcotest.(check int) "posted" 1 (List.length (Cmap.pending_messages cm));
  Cmap.complete cm msg ~proc:1;
  Alcotest.(check int) "still pending for proc 2" 1 (List.length (Cmap.pending_messages cm));
  Cmap.complete cm msg ~proc:2;
  Alcotest.(check int) "drained once all targets applied" 0
    (List.length (Cmap.pending_messages cm));
  Alcotest.(check int) "posted counter survives" 1 (Cmap.messages_posted cm)

(* Retract storm: a long queue of in-flight messages retiring one by one.
   The lazy compaction must keep [pending_messages] exact at every step
   (retired messages invisible, newest-first order preserved) while the
   internal counters stay consistent — the seed rebuilt the whole queue
   per retraction; this exercises the amortized-O(1) flag-and-compact
   replacement under the worst pattern it has to survive. *)
let test_cmap_retract_storm () =
  let n = 200 in
  let cm = Cmap.create ~aspace:0 ~nprocs:4 in
  let msgs =
    Array.init n (fun i ->
        let m =
          {
            Cmap.msg_vpage = i;
            msg_directive = (if i mod 2 = 0 then Cmap.Invalidate else Cmap.Restrict_to_read);
            msg_targets = Procset.of_list [ 0; 1; 2 ];
            msg_done = false;
          }
        in
        Cmap.post cm m;
        m)
  in
  Alcotest.(check int) "all posted" n (List.length (Cmap.pending_messages cm));
  Alcotest.(check int) "posted counter" n (Cmap.messages_posted cm);
  (* Partial completion retires nothing: every message still has targets. *)
  Array.iter (fun m -> Cmap.complete cm m ~proc:0) msgs;
  Alcotest.(check int) "partial completion retires nothing" n
    (List.length (Cmap.pending_messages cm));
  (* Retire even-indexed messages fully, oldest first — the pattern that
     keeps dead messages scattered through the live queue. *)
  Array.iteri
    (fun i m ->
      if i mod 2 = 0 then begin
        Cmap.complete cm m ~proc:1;
        Cmap.complete cm m ~proc:2
      end)
    msgs;
  let live = Cmap.pending_messages cm in
  Alcotest.(check int) "half retired" (n / 2) (List.length live);
  Alcotest.(check bool) "no retired message visible" false
    (List.exists (fun m -> m.Cmap.msg_done) live);
  (* Newest-first order of the survivors is preserved across compactions. *)
  let expected_vpages =
    List.filter (fun v -> v mod 2 = 1) (List.init n (fun i -> n - 1 - i))
  in
  Alcotest.(check (list int)) "newest-first order preserved" expected_vpages
    (List.map (fun m -> m.Cmap.msg_vpage) live);
  (* Drain the rest; the queue must empty and the sanitizer stay clean. *)
  Array.iteri
    (fun i m ->
      if i mod 2 = 1 then begin
        Cmap.complete cm m ~proc:1;
        Cmap.complete cm m ~proc:2
      end)
    msgs;
  Alcotest.(check int) "queue empty" 0 (List.length (Cmap.pending_messages cm));
  Alcotest.(check int) "posted counter survives the storm" n (Cmap.messages_posted cm);
  Alcotest.(check bool) "queue accounting clean" true (Cmap.check_faults cm = None)

let test_cmap_bind_duplicate () =
  let cm = Cmap.create ~aspace:0 ~nprocs:2 in
  let page = Cpage.create ~id:0 ~home:0 () in
  ignore (Cmap.bind cm ~vpage:5 page Rights.Read_write);
  Alcotest.(check bool) "duplicate bind rejected" true
    (try
       ignore (Cmap.bind cm ~vpage:5 page Rights.Read_only);
       false
     with Invalid_argument _ -> true);
  Cmap.unbind cm ~vpage:5;
  Alcotest.(check bool) "rebindable after unbind" true
    (match Cmap.bind cm ~vpage:5 page Rights.Read_only with _ -> true)

(* --- Pmap / Atc --- *)

let test_pmap_restrict_shares_entry () =
  let pm = Pmap.create ~proc:0 in
  let f = Frame.create ~mem_module:0 ~index:0 ~words:4 in
  let e = Pmap.install pm ~vpage:1 ~frame:f ~write_ok:true in
  Pmap.restrict pm ~vpage:1;
  Alcotest.(check bool) "restriction visible through the shared record" false e.Pmap.write_ok;
  Pmap.remove pm ~vpage:1;
  Alcotest.(check bool) "removed" true (Pmap.find pm ~vpage:1 = None);
  Pmap.restrict pm ~vpage:1 (* restricting a missing entry is a no-op *)

let test_atc_aspace_tagging () =
  let atc = Atc.create ~proc:0 in
  let f = Frame.create ~mem_module:0 ~index:0 ~words:4 in
  ignore (Atc.activate atc ~aspace:7);
  let e = { Pmap.frame = f; write_ok = false } in
  Atc.load atc ~vpage:3 e;
  Alcotest.(check bool) "hit in the active space" true (Atc.find atc ~aspace:7 ~vpage:3 <> None);
  Alcotest.(check bool) "miss for another space" true (Atc.find atc ~aspace:8 ~vpage:3 = None);
  Atc.invalidate atc ~aspace:8 ~vpage:3 (* wrong space: must not touch *);
  Alcotest.(check bool) "still cached" true (Atc.find atc ~aspace:7 ~vpage:3 <> None);
  ignore (Atc.activate atc ~aspace:8);
  Alcotest.(check int) "flushed on switch" 0 (Atc.size atc)

(* --- rendering / misc --- *)

let test_counters_pp () =
  let c = Counters.create () in
  c.Counters.replications <- 3;
  let s = Format.asprintf "%a" Counters.pp c in
  Alcotest.(check bool) "mentions replications" true (String.length s > 20);
  Counters.reset c;
  Alcotest.(check int) "reset" 0 c.Counters.replications

let test_config_pp () =
  let s = Format.asprintf "%a" Config.pp (Config.butterfly_plus ()) in
  Alcotest.(check bool) "mentions 16 processors" true (String.length s > 10)

let test_procset_pp () =
  Alcotest.(check string) "render" "{1,3}" (Format.asprintf "%a" Procset.pp (Procset.of_list [ 3; 1 ]))

let test_cpage_pp () =
  let p = Cpage.create ~id:9 ~home:2 ~label:"demo" () in
  let s = Format.asprintf "%a" Cpage.pp p in
  Alcotest.(check bool) "labelled rendering" true (String.length s > 10)

let test_memmodule_reset () =
  let m = Memmodule.create 0 in
  ignore (Memmodule.acquire m ~arrival:0 ~service:100);
  Memmodule.reset_stats m;
  Alcotest.(check int) "busy cleared" 0 (Memmodule.total_busy_ns m);
  Alcotest.(check int) "requests cleared" 0 (Memmodule.requests m);
  Alcotest.(check bool) "horizon survives (it is machine state)" true
    (Memmodule.busy_until m = 100)

let test_outcome_helpers () =
  let o = Outcome.create () in
  Alcotest.(check bool) "fresh ok" true o.Outcome.ok;
  Outcome.require o true "fine %d" 1;
  Alcotest.(check bool) "require true keeps ok" true o.Outcome.ok;
  Outcome.fail o "broke: %s" "x";
  Outcome.fail o "second failure ignored";
  Alcotest.(check string) "first message kept" "broke: x" o.Outcome.detail

(* --- analysis edges --- *)

let test_model_edges () =
  Alcotest.(check bool) "rho=0 never pays" true
    (M.min_page_words M.butterfly_plus ~g:1.0 ~rho:0.0 = None);
  Alcotest.(check bool) "tiny page never pays even at rho=2" false
    (M.migration_pays M.butterfly_plus ~g:1.0 ~rho:2.0 ~page_words:4);
  Alcotest.(check bool) "g_round_robin rejects p<2" true
    (try
       ignore (M.g_round_robin ~p:1);
       false
     with Invalid_argument _ -> true)

let test_defrost_default () =
  match Defrost.default_adaptive with
  | Defrost.Adaptive { initial_t2; max_t2; refreeze_window } ->
    Alcotest.(check bool) "sane ordering" true
      (refreeze_window < initial_t2 && initial_t2 < max_t2)
  | Defrost.Periodic -> Alcotest.fail "expected adaptive"

(* --- hand-checkable gauss oracle --- *)

let test_gauss_oracle_2x2 () =
  (* For n=2 the oracle reduces to one elimination step we can do by
     hand: m' r1 = (r1 - (r1c0 / r0c0) * r0) masked. *)
  let p = Gauss.params ~n:2 ~nprocs:1 () in
  let m = Gauss.sequential p in
  let a00 = Gauss.init_elem p 0 0 land Gauss.value_mask in
  let a01 = Gauss.init_elem p 0 1 land Gauss.value_mask in
  let a10 = Gauss.init_elem p 1 0 land Gauss.value_mask in
  let a11 = Gauss.init_elem p 1 1 land Gauss.value_mask in
  let f = if a00 = 0 then 0 else a10 / a00 in
  Alcotest.(check int) "pivot row unchanged" a01 m.(0).(1);
  Alcotest.(check int) "eliminated col" ((a10 - (f * a00)) land Gauss.value_mask) m.(1).(0);
  Alcotest.(check int) "eliminated val" ((a11 - (f * a01)) land Gauss.value_mask) m.(1).(1)

let test_jacobi_oracle_smoothing () =
  (* One iteration of the all-equal grid is a fixed point. *)
  let p = Jacobi.params ~n:8 ~iters:1 ~nprocs:1 ~seed:0 () in
  let g0 = Jacobi.sequential { p with Jacobi.iters = 0 } in
  let g1 = Jacobi.sequential p in
  (* Interior cells become neighbour means; border rows never change. *)
  Alcotest.(check (array int)) "top border fixed" g0.(0) g1.(0);
  Alcotest.(check (array int)) "bottom border fixed" g0.(7) g1.(7);
  Alcotest.(check int) "one interior cell by hand"
    ((g0.(1).(3) + g0.(3).(3) + g0.(2).(2) + g0.(2).(4)) / 4 land 0xFFFFF)
    g1.(2).(3)

(* --- kernel error paths --- *)

let run ?(nprocs = 4) main =
  Runner.time ~config:(Config.butterfly_plus ~nprocs ()) ~frames_per_module:32
    ~default_zone_pages:16 main

let test_spawn_bad_proc () =
  Alcotest.(check bool) "bad processor rejected" true
    (try
       ignore (run (fun () -> ignore (Api.spawn ~proc:99 (fun () -> ()))));
       false
     with Kernel.Thread_failure (Invalid_argument _) -> true)

let test_migrate_same_proc_free () =
  run (fun () ->
      let t0 = Api.now () in
      Api.migrate (Api.my_proc ());
      Alcotest.(check int) "no-op migration costs nothing" t0 (Api.now ()))
  |> ignore

let test_unknown_port () =
  Alcotest.(check bool) "send to unknown port fails the thread" true
    (try
       ignore (run (fun () -> Api.send 99 [| 1 |]));
       false
     with Kernel.Thread_failure (Invalid_argument _) -> true)

let test_block_read_len_zero () =
  run (fun () ->
      let a = Api.alloc 4 in
      Alcotest.(check (array int)) "empty read" [||] (Api.block_read a 0))
  |> ignore

let test_empty_message () =
  run (fun () ->
      let port = Api.new_port () in
      let t = Api.spawn ~proc:1 (fun () ->
          Alcotest.(check (array int)) "zero-length message" [||] (Api.recv port)) in
      Api.send port [||];
      Api.join t)
  |> ignore

(* --- engine property: random schedules drain in order --- *)

let prop_engine_sorted =
  QCheck.Test.make ~name:"random schedules drain in time order" ~count:100
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let e = Engine.create () in
      let seen = ref [] in
      List.iter (fun at -> Engine.schedule_at e ~at (fun () -> seen := at :: !seen)) times;
      Engine.run e;
      List.rev !seen = List.sort compare times)

let suite =
  [
    ("rights: lattice", `Quick, test_rights);
    ("cmap: message queue lifecycle", `Quick, test_cmap_queue);
    ("cmap: retract storm (lazy compaction)", `Quick, test_cmap_retract_storm);
    ("cmap: duplicate binds", `Quick, test_cmap_bind_duplicate);
    ("pmap: restriction through shared entries", `Quick, test_pmap_restrict_shares_entry);
    ("atc: address-space tagging", `Quick, test_atc_aspace_tagging);
    ("render: counters", `Quick, test_counters_pp);
    ("render: config", `Quick, test_config_pp);
    ("render: procset", `Quick, test_procset_pp);
    ("render: cpage", `Quick, test_cpage_pp);
    ("memmodule: stats reset", `Quick, test_memmodule_reset);
    ("outcome: helpers", `Quick, test_outcome_helpers);
    ("analysis: edge cases", `Quick, test_model_edges);
    ("defrost: default adaptive parameters", `Quick, test_defrost_default);
    ("gauss: 2x2 oracle by hand", `Quick, test_gauss_oracle_2x2);
    ("jacobi: oracle smoothing by hand", `Quick, test_jacobi_oracle_smoothing);
    ("kernel: bad processor rejected", `Quick, test_spawn_bad_proc);
    ("kernel: same-proc migration free", `Quick, test_migrate_same_proc_free);
    ("kernel: unknown port", `Quick, test_unknown_port);
    ("kernel: zero-length block read", `Quick, test_block_read_len_zero);
    ("kernel: empty message", `Quick, test_empty_message);
    qtest prop_engine_sorted;
  ]
