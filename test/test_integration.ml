(* Cross-layer integration tests: whole-stack scenarios exercising the
   kernel, VM, coherent memory, and machine model together. *)

module Config = Platinum_machine.Config
module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync
module Runner = Platinum_runner.Runner
module Report = Platinum_stats.Report
module Trace = Platinum_stats.Trace
module Probe = Platinum_core.Probe
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent
module Counters = Platinum_core.Counters
module Outcome = Platinum_workload.Outcome
module Gauss = Platinum_workload.Gauss

(* Counters and per-page stats must agree after a nontrivial run. *)
let test_counters_agree_with_page_stats () =
  let out, main = Gauss.make (Gauss.params ~n:48 ~nprocs:4 ()) in
  let r = Runner.time main in
  Alcotest.(check bool) "ok" true out.Outcome.ok;
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  let sum f =
    List.fold_left (fun acc row -> acc + f row) 0 r.Runner.report.Report.pages
  in
  Alcotest.(check int) "read faults agree" c.Counters.read_faults
    (sum (fun row -> row.Report.read_faults));
  Alcotest.(check int) "write faults agree" c.Counters.write_faults
    (sum (fun row -> row.Report.write_faults));
  Alcotest.(check int) "replications agree" c.Counters.replications
    (sum (fun row -> row.Report.replications));
  Alcotest.(check int) "migrations agree" c.Counters.migrations
    (sum (fun row -> row.Report.migrations))

(* The trace sees exactly as many replication events as the counters. *)
let test_trace_agrees_with_counters () =
  let out, main = Gauss.make (Gauss.params ~n:48 ~nprocs:4 ~verify:false ()) in
  let setup = Runner.make () in
  let tr = Trace.create ~capacity:1_000_000 () in
  Trace.attach tr setup.Runner.coherent;
  let r = Runner.run setup ~main in
  Alcotest.(check bool) "ok" true out.Outcome.ok;
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  Alcotest.(check int) "replication events"
    c.Counters.replications
    (Trace.count tr (function Probe.Replicated _ -> true | _ -> false));
  Alcotest.(check int) "freeze events" c.Counters.freezes
    (Trace.count tr (function Probe.Frozen _ -> true | _ -> false))

(* Physical memory exhaustion mid-workload degrades to remote mappings
   without corrupting results. *)
let test_oom_under_load () =
  let config = Config.butterfly_plus ~nprocs:8 () in
  (* 8 frames per module: far too few for full replication of 12 pages by
     8 readers. *)
  let sums = Array.make 8 0 in
  let r =
    Runner.time ~config ~frames_per_module:8 ~default_zone_pages:12 (fun () ->
        let words = 12 * Api.page_words () in
        let data = Api.alloc_pages 12 in
        Api.block_write data (Array.init words (fun i -> i land 0xFF));
        let zone_sync = Api.new_zone "sync" ~pages:1 in
        let barrier = Sync.Barrier.make ~zone:zone_sync ~parties:8 () in
        let worker me =
          Sync.Barrier.wait barrier;
          let a = Api.block_read (data + (me * 16)) 1024 in
          sums.(me) <- Array.fold_left ( + ) 0 a
        in
        Api.spawn_join_all ~procs:(List.init 8 (fun i -> i))
          (List.init 8 (fun me _ -> worker me)))
  in
  (* Results correct despite the memory squeeze... *)
  for me = 0 to 7 do
    let expect = ref 0 in
    for i = 0 to 1023 do
      expect := !expect + ((me * 16) + i) land 0xFF
    done;
    Alcotest.(check int) (Printf.sprintf "worker %d sum" me) !expect sums.(me)
  done;
  (* ...and the protocol really did fall back to remote mappings. *)
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  Alcotest.(check bool) "remote fallbacks happened" true (c.Counters.remote_maps > 0)

(* Thread migration carries locality: after migrating, a thread's writes
   pull its pages to the new node. *)
let test_migration_moves_working_set () =
  let page_home = ref (-1) in
  let r =
    Runner.time (fun () ->
        let a = Api.alloc_pages 1 in
        let t =
          Api.spawn ~proc:0 (fun () ->
              Api.write a 1;
              Api.migrate 5;
              (* t1 must have expired for the write to migrate the page *)
              Api.compute 50_000_000;
              Api.write a 2)
        in
        Api.join t)
  in
  Coherent.iter_cpages
    (fun p ->
      if p.Platinum_core.Cpage.label = "heap[0]" then
        page_home :=
          (match Platinum_core.Cpage.copies p with
          | [ f ] -> Platinum_phys.Frame.mem_module f
          | _ -> -2))
    r.Runner.setup.Runner.coherent;
  Alcotest.(check int) "page followed the thread to node 5" 5 !page_home

(* Two PLATINUM instances in one process don't interfere (no hidden
   global state). *)
let test_instances_are_independent () =
  let setup1 = Runner.make ~frames_per_module:32 () in
  let setup2 = Runner.make ~frames_per_module:32 () in
  let mk_main tag final = fun () ->
    let a = Api.alloc 4 in
    Api.write a tag;
    final := Api.read a
  in
  let f1 = ref 0 and f2 = ref 0 in
  ignore (Runner.run setup1 ~main:(mk_main 111 f1));
  ignore (Runner.run setup2 ~main:(mk_main 222 f2));
  Alcotest.(check int) "instance 1" 111 !f1;
  Alcotest.(check int) "instance 2" 222 !f2

(* A pipeline: producer on node 0 sends work through ports to a chain of
   workers that each transform data held in coherent memory. *)
let test_port_pipeline () =
  let stages = 4 in
  let final = ref [||] in
  Runner.time (fun () ->
      let ports = Array.init (stages + 1) (fun _ -> Api.new_port ()) in
      let stage i =
        let v = Api.recv ports.(i) in
        let out = Array.map (fun x -> x + 1) v in
        Api.send ports.(i + 1) out
      in
      let tids = List.init stages (fun i -> Api.spawn ~proc:(i + 1) (fun () -> stage i)) in
      Api.send ports.(0) [| 10; 20; 30 |];
      List.iter Api.join tids;
      final := Api.recv ports.(stages))
  |> ignore;
  Alcotest.(check (array int)) "each stage incremented" [| 14; 24; 34 |] !final

(* Deterministic replay with a different policy still matches itself. *)
let test_policy_runs_deterministic () =
  List.iter
    (fun name ->
      let config = Config.butterfly_plus ~nprocs:4 () in
      let policy () =
        match Policy.of_string ~t1:config.Config.t1_freeze_window name with
        | Ok p -> p
        | Error e -> failwith e
      in
      let go () =
        let out, main = Gauss.make (Gauss.params ~n:32 ~nprocs:4 ~verify:false ()) in
        let r = Runner.time ~config ~policy:(policy ()) main in
        (out.Outcome.work_ns, r.Runner.elapsed)
      in
      Alcotest.(check bool) (name ^ " deterministic") true (go () = go ()))
    [ "platinum"; "always-replicate"; "uniform-system" ]

(* The kernel scheduler under oversubscription: 3x more threads than
   processors, all doing memory work, all complete correctly. *)
let test_oversubscription () =
  let nthreads = 12 in
  let results = Array.make nthreads 0 in
  Runner.time ~config:(Config.butterfly_plus ~nprocs:4 ()) (fun () ->
      let a = Api.alloc_pages 1 in
      Api.block_write a (Array.init 64 (fun i -> i));
      let worker me =
        let data = Api.block_read a 64 in
        Api.compute 5_000_000;
        results.(me) <- Array.fold_left ( + ) 0 data + me
      in
      Api.spawn_join_all (List.init nthreads (fun me _ -> worker me)))
  |> ignore;
  Array.iteri
    (fun me v -> Alcotest.(check int) (Printf.sprintf "thread %d" me) (2016 + me) v)
    results

(* Runner.speedup's convenience path. *)
let test_runner_speedup_helper () =
  let results =
    Runner.speedup ~nprocs_list:[ 1; 4 ] ~frames_per_module:64 ~default_zone_pages:32
      (fun ~nprocs () ->
        (* Fixed total work, split across the workers. *)
        let work () = Api.compute (80_000_000 / nprocs) in
        Api.spawn_join_all
          ~procs:(List.init nprocs (fun i -> i))
          (List.init nprocs (fun _ _ -> work ())))
  in
  match results with
  | [ (1, s1, _); (4, s4, _) ] ->
    Alcotest.(check (float 0.01)) "baseline 1x" 1.0 s1;
    Alcotest.(check bool) "perfectly parallel work scales" true (s4 > 3.5)
  | _ -> Alcotest.fail "expected two points"

(* The DOT rendering carries every edge. *)
let test_atlas_dot () =
  let module Atlas = Platinum_core.Atlas in
  let edges = Atlas.edges () in
  let dot = Atlas.to_dot edges in
  Alcotest.(check bool) "digraph" true (String.length dot > 0);
  List.iter
    (fun (e : Atlas.edge) ->
      let frag =
        Printf.sprintf "\"%s\" -> \"%s\""
          (Platinum_core.Cpage.state_to_string e.Atlas.from_state)
          (Platinum_core.Cpage.state_to_string e.Atlas.to_state)
      in
      let contains sub s =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("edge in dot: " ^ frag) true (contains frag dot))
    edges

(* Lock-protected counter under randomized pacing: mutual exclusion must
   hold for every schedule the jitter produces. *)
let prop_lock_counter =
  QCheck.Test.make ~name:"spinlock counter is exact under random pacing" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let total = ref 0 in
      let r =
        Runner.time ~frames_per_module:64 ~default_zone_pages:32 (fun () ->
            let rng = Platinum_sim.Rng.create (Int64.of_int seed) in
            let lock = Sync.Spinlock.make () in
            let counter = Api.alloc 1 in
            let jitters =
              Array.init 4 (fun _ -> Array.init 6 (fun _ -> Platinum_sim.Rng.int rng 300_000))
            in
            let worker me =
              Array.iter
                (fun j ->
                  Api.compute j;
                  Sync.Spinlock.with_lock lock (fun () ->
                      let v = Api.read counter in
                      Api.compute 20_000;
                      Api.write counter (v + 1)))
                jitters.(me)
            in
            Api.spawn_join_all ~procs:[ 0; 1; 2; 3 ] (List.init 4 (fun me _ -> worker me));
            total := Api.read counter)
      in
      ignore r;
      !total = 24)

let suite =
  [
    ("counters agree with per-page stats", `Quick, test_counters_agree_with_page_stats);
    ("trace agrees with counters", `Quick, test_trace_agrees_with_counters);
    ("graceful degradation under OOM", `Quick, test_oom_under_load);
    ("migration moves the working set", `Quick, test_migration_moves_working_set);
    ("instances are independent", `Quick, test_instances_are_independent);
    ("port pipeline across nodes", `Quick, test_port_pipeline);
    ("all policies deterministic", `Quick, test_policy_runs_deterministic);
    ("scheduler oversubscription", `Quick, test_oversubscription);
    ("runner: speedup helper", `Quick, test_runner_speedup_helper);
    ("atlas: DOT rendering", `Quick, test_atlas_dot);
    QCheck_alcotest.to_alcotest prop_lock_counter;
  ]
