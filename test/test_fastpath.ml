(* Tests for the coalescing effect-boundary fast path (DESIGN.md §4g).

   The contract under test: with coalescing on (the default), every
   program observes exactly what it observes with coalescing off — same
   values, same elapsed virtual time, same Counters, same injection
   schedule — because a coalesced word performs the identical cache and
   interconnect simulation, just without the per-word suspend.  The
   differential here runs random access programs both ways and compares
   full fingerprints; the unit tests pin the invalidation hooks (epoch
   bumps) and the mandatory fallbacks (frozen page, armed monitor,
   pending injected fault). *)

module Api = Platinum_kernel.Api
module Fastpath = Platinum_kernel.Fastpath
module Memsys = Platinum_kernel.Memsys
module Runner = Platinum_runner.Runner
module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Engine = Platinum_sim.Engine
module Inject = Platinum_sim.Inject
module Coherent = Platinum_core.Coherent
module Counters = Platinum_core.Counters
module Cmap = Platinum_core.Cmap
module Cpage = Platinum_core.Cpage
module Rights = Platinum_core.Rights
module Policy = Platinum_core.Policy
module Check = Platinum_core.Check

let qtest = QCheck_alcotest.to_alcotest

let fingerprint (r : Runner.result) =
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  Printf.sprintf
    "elapsed=%d rf=%d wf=%d vm=%d repl=%d migr=%d rmap=%d freeze=%d thaw=%d sd=%d msg=%d \
     int=%d def=%d zf=%d atc=%d fault_ns=%d copy_ns=%d"
    r.Runner.elapsed c.Counters.read_faults c.Counters.write_faults c.Counters.vm_faults
    c.Counters.replications c.Counters.migrations c.Counters.remote_maps c.Counters.freezes
    c.Counters.thaws c.Counters.shootdowns c.Counters.messages c.Counters.interrupts
    c.Counters.deferred_updates c.Counters.zero_fills c.Counters.atc_reloads
    c.Counters.fault_ns c.Counters.copy_ns

(* --- the differential: coalesce on ≡ coalesce off --- *)

(* A random access program over a two-page buffer: word reads, writes,
   rmws and block transfers from two threads (proc 0 and proc 1) sharing
   the buffer, so the stream crosses replications, write-fault
   retractions and freezes.  Ops are encoded as ints so the same list
   replays identically on both runs. *)
type op = Read of int | Write of int * int | Rmw of int | Block_read of int * int | Block_write of int * int

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun o -> Read o) (int_bound 255));
        (4, map2 (fun o v -> Write (o, v)) (int_bound 255) (int_bound 9999));
        (2, map (fun o -> Rmw o) (int_bound 255));
        (1, map2 (fun o l -> Block_read (o, 1 + l)) (int_bound 200) (int_bound 40));
        (1, map2 (fun o l -> Block_write (o, 1 + l)) (int_bound 200) (int_bound 40));
      ])

let show_op = function
  | Read o -> Printf.sprintf "R%d" o
  | Write (o, v) -> Printf.sprintf "W%d=%d" o v
  | Rmw o -> Printf.sprintf "M%d" o
  | Block_read (o, l) -> Printf.sprintf "BR%d+%d" o l
  | Block_write (o, l) -> Printf.sprintf "BW%d+%d" o l

let arb_prog = QCheck.make ~print:QCheck.Print.(list show_op) QCheck.Gen.(list_size (int_range 1 60) gen_op)

(* Run [prog] on proc 0 while proc 1 replays it reversed (same shared
   buffer, different order: real cross-processor protocol traffic).
   Returns (observed values, fingerprint). *)
let run_prog ~coalesce prog =
  let observed = ref [] in
  let note v = observed := v :: !observed in
  let run_ops buf ops =
    List.iter
      (fun op ->
        match op with
        | Read o -> note (Api.read (buf + o))
        | Write (o, v) -> Api.write (buf + o) v
        | Rmw o -> note (Api.rmw (buf + o) (fun v -> v + 1))
        | Block_read (o, l) -> Array.iter note (Api.block_read (buf + o) l)
        | Block_write (o, l) -> Api.block_write (buf + o) (Array.init l (fun i -> o + i)))
      ops
  in
  let config = Config.butterfly_plus ~nprocs:2 () in
  let r =
    Runner.time ~config ~frames_per_module:64 ~default_zone_pages:32 ~coalesce (fun () ->
        let buf = Api.alloc ~page_aligned:true 512 in
        run_ops buf prog;
        let t = Api.spawn ~proc:1 (fun () -> run_ops buf (List.rev prog)) in
        Api.join t;
        run_ops buf prog)
  in
  (List.rev !observed, fingerprint r)

let prop_differential =
  QCheck.Test.make ~name:"coalesce on ≡ off: values, elapsed, Counters" ~count:60 arb_prog
    (fun prog ->
      let vals_on, fp_on = run_prog ~coalesce:true prog in
      let vals_off, fp_off = run_prog ~coalesce:false prog in
      if vals_on <> vals_off then QCheck.Test.fail_report "observed values differ";
      if fp_on <> fp_off then
        QCheck.Test.fail_reportf "fingerprints differ:\n  on:  %s\n  off: %s" fp_on fp_off;
      true)

(* The coalescer must actually engage on the kind of stream it exists
   for — otherwise the differential above is vacuous. *)
let test_coalescer_engages () =
  let c = Fastpath.ctx () in
  Fastpath.reset_stats c;
  let r =
    Runner.time ~frames_per_module:64 ~default_zone_pages:32 (fun () ->
        let buf = Api.alloc ~page_aligned:true 1024 in
        for i = 0 to 1023 do
          Api.write (buf + i) i
        done;
        let sum = ref 0 in
        for i = 0 to 1023 do
          sum := !sum + Api.read (buf + i)
        done;
        Alcotest.(check int) "sum of 0..1023" (1023 * 1024 / 2) !sum)
  in
  ignore r;
  let st = Fastpath.stats c in
  Alcotest.(check bool)
    (Printf.sprintf "most words coalesced (got %d)" st.Fastpath.coalesced)
    true
    (st.Fastpath.coalesced > 1500);
  Alcotest.(check bool) "runs closed" true (st.Fastpath.runs > 0)

let test_disabled_never_engages () =
  let c = Fastpath.ctx () in
  Fastpath.reset_stats c;
  Runner.time ~frames_per_module:64 ~default_zone_pages:32 ~coalesce:false (fun () ->
      let buf = Api.alloc ~page_aligned:true 256 in
      for i = 0 to 255 do
        Api.write (buf + i) i
      done)
  |> ignore;
  let st = Fastpath.stats c in
  Alcotest.(check int) "no words coalesced with coalesce:false" 0 st.Fastpath.coalesced

(* --- invalidation hooks: the epoch bumps that flush in-flight runs --- *)

let mk_coherent () =
  let config = Config.butterfly_plus ~nprocs:4 ~page_words:16 () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  Coherent.create (Machine.create config) ~engine:(Engine.create ()) ~policy
    ~frames_per_module:64 ()

let check_bumps what before after = Alcotest.(check bool) (what ^ " bumps fp_epoch") true (after > before)

let test_epoch_bumps () =
  let coh = mk_coherent () in
  let cm = Coherent.new_aspace coh in
  let page = Coherent.new_cpage coh () in
  let e0 = Coherent.fp_epoch coh in
  Coherent.bind coh cm ~vpage:0 page Rights.Read_write;
  let e1 = Coherent.fp_epoch coh in
  check_bumps "bind" e0 e1;
  ignore (Coherent.activate coh ~now:0 ~proc:0 ~aspace:(Cmap.aspace cm));
  let e2 = Coherent.fp_epoch coh in
  check_bumps "activate" e1 e2;
  (* Fault the page in (the fault-resolution path must bump too). *)
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:3 42);
  let e3 = Coherent.fp_epoch coh in
  check_bumps "fault resolution" e2 e3;
  Coherent.freeze_page coh ~now:1000 page;
  let e4 = Coherent.fp_epoch coh in
  check_bumps "freeze_page" e3 e4;
  Coherent.thaw_page coh ~now:2000 page;
  let e5 = Coherent.fp_epoch coh in
  check_bumps "thaw_page" e4 e5;
  Coherent.set_monitor coh (Some (Check.create_monitor ()));
  let e6 = Coherent.fp_epoch coh in
  check_bumps "set_monitor" e5 e6;
  Coherent.set_monitor coh None;
  let e7 = Coherent.fp_epoch coh in
  check_bumps "monitor disarm" e6 e7;
  ignore (Coherent.unbind coh ~now:3000 cm ~vpage:0);
  let e8 = Coherent.fp_epoch coh in
  check_bumps "unbind (shootdown)" e7 e8

(* A write fault that retracts read replicas (the Cmap-retraction
   shootdown) must bump the epoch: any other thread's cached read slots
   on that page die with it. *)
let test_retraction_bumps () =
  let coh = mk_coherent () in
  let cm0 = Coherent.new_aspace coh and cm1 = Coherent.new_aspace coh in
  let page = Coherent.new_cpage coh () in
  Coherent.bind coh cm0 ~vpage:0 page Rights.Read_write;
  Coherent.bind coh cm1 ~vpage:0 page Rights.Read_write;
  ignore (Coherent.activate coh ~now:0 ~proc:0 ~aspace:(Cmap.aspace cm0));
  ignore (Coherent.activate coh ~now:0 ~proc:1 ~aspace:(Cmap.aspace cm1));
  (* Both processors read: the page replicates. *)
  ignore (Coherent.read_word coh ~now:1000 ~proc:0 ~cmap:cm0 ~vaddr:1);
  ignore (Coherent.read_word coh ~now:2000 ~proc:1 ~cmap:cm1 ~vaddr:1);
  let e0 = Coherent.fp_epoch coh in
  (* Proc 0 writes: the replicas are retracted. *)
  ignore (Coherent.write_word coh ~now:3000 ~proc:0 ~cmap:cm0 ~vaddr:1 7);
  check_bumps "write-fault retraction" e0 (Coherent.fp_epoch coh)

(* --- mandatory fallbacks mid-stream --- *)

(* Freezing a page mid-stream (Api.advise is itself an effect, so it
   settles the in-flight run) must push subsequent accesses to that page
   onto the full-suspend path — and the values must stay correct. *)
let test_freeze_forces_fallback () =
  let c = Fastpath.ctx () in
  let pw = ref 0 in
  Runner.time ~frames_per_module:64 ~default_zone_pages:32 (fun () ->
      pw := Api.page_words ();
      let buf = Api.alloc ~page_aligned:true !pw in
      for i = 0 to !pw - 1 do
        Api.write (buf + i) i
      done;
      Api.advise buf !pw Memsys.Freeze;
      Fastpath.reset_stats c;
      (* Writes to a frozen page are ineligible: every one falls back. *)
      for i = 0 to !pw - 1 do
        Api.write (buf + i) (2 * i)
      done;
      let st = Fastpath.stats c in
      Alcotest.(check int) "frozen page: zero words coalesced" 0 st.Fastpath.coalesced;
      Alcotest.(check bool) "frozen page: fallbacks taken" true (st.Fastpath.fallbacks >= !pw);
      (* Thaw: the page becomes eligible again. *)
      Api.advise buf !pw Memsys.Thaw;
      Fastpath.reset_stats c;
      let sum = ref 0 in
      for i = 0 to !pw - 1 do
        sum := !sum + Api.read (buf + i)
      done;
      Alcotest.(check int) "values written through the frozen window" (!pw * (!pw - 1)) !sum;
      let st = Fastpath.stats c in
      Alcotest.(check bool) "thawed page coalesces again" true (st.Fastpath.coalesced > 0))
  |> ignore

(* --- composition with the sanitizer and the fault plane (§4g) --- *)

(* An armed monitor makes every page ineligible: the coalescer must not
   bypass the per-transition invariant sweeps. *)
let test_monitor_disables_coalescing () =
  let c = Fastpath.ctx () in
  let setup = Runner.make ~frames_per_module:64 ~default_zone_pages:32 () in
  Coherent.set_monitor setup.Runner.coherent (Some (Check.create_monitor ()));
  Fastpath.reset_stats c;
  let sum = ref 0 in
  Runner.run setup ~main:(fun () ->
      let buf = Api.alloc ~page_aligned:true 512 in
      for i = 0 to 511 do
        Api.write (buf + i) i
      done;
      for i = 0 to 511 do
        sum := !sum + Api.read (buf + i)
      done)
  |> ignore;
  Alcotest.(check int) "values correct under the monitor" (511 * 512 / 2) !sum;
  let st = Fastpath.stats c in
  Alcotest.(check int) "monitor armed: zero words coalesced" 0 st.Fastpath.coalesced

(* Under injection the coalescer defers to the full path on every word
   whose next fault draw would inject, so the fault schedule — and with
   it every counter — lands exactly where the seed path put it. *)
let run_injected ~coalesce ~rate () =
  let config = Config.butterfly_plus ~nprocs:2 () in
  let setup =
    Runner.make ~config ~frames_per_module:64 ~default_zone_pages:32
      ~inject:(Inject.config ~seed:11L ~rate ()) ~coalesce ()
  in
  let out = ref 0 in
  let r =
    Runner.run setup ~main:(fun () ->
        let buf = Api.alloc ~page_aligned:true 1024 in
        let worker me () =
          for i = 0 to 1023 do
            if i land 1 = me then Api.write (buf + i) (i + me)
          done;
          for i = 0 to 1023 do
            out := !out + Api.read (buf + i)
          done
        in
        let t = Api.spawn ~proc:1 (worker 1) in
        worker 0 ();
        Api.join t)
  in
  let inj =
    match Machine.inject setup.Runner.machine with Some i -> i | None -> assert false
  in
  (!out, fingerprint r, Inject.fingerprint inj, Inject.faults_injected inj)

let test_injection_differential () =
  let v_on, fp_on, inj_on, faults_on = run_injected ~coalesce:true ~rate:0.02 () in
  let v_off, fp_off, inj_off, faults_off = run_injected ~coalesce:false ~rate:0.02 () in
  Alcotest.(check bool) "the schedule actually injected" true (faults_on > 0);
  Alcotest.(check int) "values identical under injection" v_off v_on;
  Alcotest.(check string) "protocol fingerprint identical" fp_off fp_on;
  Alcotest.(check string) "injector fingerprint identical" inj_off inj_on;
  Alcotest.(check int) "fault count identical" faults_off faults_on

(* --- the hardened stride API (input validation) --- *)

let test_stride_validation () =
  Runner.time ~frames_per_module:64 ~default_zone_pages:32 (fun () ->
      let buf = Api.alloc ~page_aligned:true 64 in
      Alcotest.check_raises "write_stride: ragged data"
        (Invalid_argument "write_stride: data length 7 is not a multiple of elem_words 3")
        (fun () -> Api.write_stride ~elem_words:3 buf ~stride:4 (Array.make 7 0));
      Alcotest.check_raises "write_stride: elem_words 0"
        (Invalid_argument "write_stride: elem_words 0 must be positive") (fun () ->
          Api.write_stride ~elem_words:0 buf ~stride:4 [| 1 |]);
      Alcotest.check_raises "read_stride: negative count"
        (Invalid_argument "read_stride: negative count -2") (fun () ->
          ignore (Api.read_stride buf ~count:(-2) ~stride:4));
      Alcotest.check_raises "read_stride: elem_words -1"
        (Invalid_argument "read_stride: elem_words -1 must be positive") (fun () ->
          ignore (Api.read_stride ~elem_words:(-1) buf ~count:2 ~stride:4));
      (* A well-formed call still round-trips. *)
      Api.write_stride ~elem_words:2 buf ~stride:4 [| 1; 2; 3; 4 |];
      let back = Api.read_stride ~elem_words:2 buf ~count:2 ~stride:4 in
      Alcotest.(check (array int)) "stride round-trip" [| 1; 2; 3; 4 |] back)
  |> ignore

let suite =
  [
    qtest prop_differential;
    ("coalescer engages on a word stream", `Quick, test_coalescer_engages);
    ("coalesce:false never engages", `Quick, test_disabled_never_engages);
    ("epoch bumps on every invalidation hook", `Quick, test_epoch_bumps);
    ("epoch bumps on replica retraction", `Quick, test_retraction_bumps);
    ("freeze/thaw force fallback mid-stream", `Quick, test_freeze_forces_fallback);
    ("armed monitor disables coalescing", `Quick, test_monitor_disables_coalescing);
    ("injection schedule identical on/off", `Quick, test_injection_differential);
    ("stride API rejects malformed input", `Quick, test_stride_validation);
  ]
