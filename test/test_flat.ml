(* Differential properties for the flat translation tables (PR 5).

   The seed indexed Pmap and Atc entries with hash tables; the rework
   replaced those with dense vpage-indexed arrays ([Flat]) plus a packed
   int mirror in Pmap.  These properties drive identical random operation
   sequences through the old hash-based tables ([Ref_tables], kept
   verbatim) and the new flat ones, asserting observably identical state
   after every step — including for spill keys outside the dense range —
   and that the representation-level sanitizers ([Pmap.check_faults],
   [Atc.check_faults], [Cmap.check_faults], [Cpage.check_faults]) stay
   clean throughout. *)

module Frame = Platinum_phys.Frame
module Procset = Platinum_machine.Procset
module Flat = Platinum_core.Flat
module Pmap = Platinum_core.Pmap
module Atc = Platinum_core.Atc
module Cmap = Platinum_core.Cmap
module Cpage = Platinum_core.Cpage
module Rights = Platinum_core.Rights

let qtest = QCheck_alcotest.to_alcotest

(* Key universe: dense keys (small, boundary, just-under-limit), spill
   keys (over the limit and far out).  Every property sweeps this whole
   universe after each operation, so dense/spill disagreements can't hide. *)
let vpages =
  [| 0; 1; 2; 3; 7; 63; 64; 1_000; Flat.dense_limit - 1; Flat.dense_limit + 3; 1_000_000 |]

let nframes = 6

let make_frames () =
  Array.init nframes (fun i -> Frame.create ~mem_module:(i mod 3) ~index:i ~words:4)

(* --- property 1: Pmap + ATC vs the seed's hash tables --- *)

type op =
  | Install of int * int * bool  (* vpage index, frame index, write_ok *)
  | Remove of int
  | Restrict of int
  | Clear
  | Atc_activate of int  (* aspace *)
  | Atc_load of int  (* vpage index: cache the live pmap entry, if any *)
  | Atc_invalidate of int * int  (* aspace, vpage index *)
  | Atc_flush

let op_gen =
  let open QCheck.Gen in
  let vp = int_bound (Array.length vpages - 1) in
  frequency
    [
      (6, map3 (fun v f w -> Install (v, f, w)) vp (int_bound (nframes - 1)) bool);
      (3, map (fun v -> Remove v) vp);
      (3, map (fun v -> Restrict v) vp);
      (1, return Clear);
      (2, map (fun a -> Atc_activate a) (int_bound 2));
      (4, map (fun v -> Atc_load v) vp);
      (2, map2 (fun a v -> Atc_invalidate (a, v)) (int_bound 2) vp);
      (1, return Atc_flush);
    ]

let pp_op = function
  | Install (v, f, w) -> Printf.sprintf "install v%d f%d w%b" vpages.(v) f w
  | Remove v -> Printf.sprintf "remove v%d" vpages.(v)
  | Restrict v -> Printf.sprintf "restrict v%d" vpages.(v)
  | Clear -> "clear"
  | Atc_activate a -> Printf.sprintf "activate a%d" a
  | Atc_load v -> Printf.sprintf "atc-load v%d" vpages.(v)
  | Atc_invalidate (a, v) -> Printf.sprintf "atc-inval a%d v%d" a vpages.(v)
  | Atc_flush -> "atc-flush"

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

(* Observable equality of one translation: same presence, physically the
   same frame, same write permission. *)
let same_entry ~what vpage (a : Pmap.entry option) (b : Ref_tables.Pmap.entry option) =
  match a, b with
  | None, None -> ()
  | Some e, Some r ->
    if not (e.Pmap.frame == r.Ref_tables.Pmap.frame) then
      QCheck.Test.fail_reportf "%s: vpage %d maps different frames" what vpage;
    if e.Pmap.write_ok <> r.Ref_tables.Pmap.write_ok then
      QCheck.Test.fail_reportf "%s: vpage %d write_ok disagrees" what vpage
  | Some _, None -> QCheck.Test.fail_reportf "%s: vpage %d bound only in flat" what vpage
  | None, Some _ -> QCheck.Test.fail_reportf "%s: vpage %d bound only in reference" what vpage

let check_agreement (pm, atc) (rpm, ratc) =
  (match Pmap.check_faults pm with
  | None -> ()
  | Some f -> QCheck.Test.fail_reportf "pmap sanitizer: %s" (Platinum_core.Check.render f));
  (match Atc.check_faults atc with
  | None -> ()
  | Some f -> QCheck.Test.fail_reportf "atc sanitizer: %s" (Platinum_core.Check.render f));
  if Pmap.size pm <> Ref_tables.Pmap.size rpm then
    QCheck.Test.fail_reportf "pmap size %d vs reference %d" (Pmap.size pm)
      (Ref_tables.Pmap.size rpm);
  if Atc.size atc <> Ref_tables.Atc.size ratc then
    QCheck.Test.fail_reportf "atc size %d vs reference %d" (Atc.size atc)
      (Ref_tables.Atc.size ratc);
  if Atc.active_aspace atc <> Ref_tables.Atc.active_aspace ratc then
    QCheck.Test.fail_reportf "active aspace disagrees";
  Array.iter
    (fun vpage ->
      let e = Pmap.find pm ~vpage and r = Ref_tables.Pmap.find rpm ~vpage in
      same_entry ~what:"pmap" vpage e r;
      (* The packed-mirror probes must answer exactly as the reference. *)
      if Pmap.mem pm ~vpage <> (r <> None) then
        QCheck.Test.fail_reportf "mem probe disagrees for vpage %d" vpage;
      let rw = match r with Some e -> e.Ref_tables.Pmap.write_ok | None -> false in
      if Pmap.write_ok pm ~vpage <> rw then
        QCheck.Test.fail_reportf "write_ok probe disagrees for vpage %d" vpage;
      for aspace = 0 to 2 do
        same_entry ~what:"atc"
          vpage
          (Atc.peek atc ~aspace ~vpage)
          (Ref_tables.Atc.peek ratc ~aspace ~vpage)
      done)
    vpages

let apply_op frames (pm, atc) (rpm, ratc) op =
  match op with
  | Install (v, f, w) ->
    let vpage = vpages.(v) and frame = frames.(f) in
    ignore (Pmap.install pm ~vpage ~frame ~write_ok:w);
    ignore (Ref_tables.Pmap.install rpm ~vpage ~frame ~write_ok:w)
  | Remove v ->
    Pmap.remove pm ~vpage:vpages.(v);
    Ref_tables.Pmap.remove rpm ~vpage:vpages.(v)
  | Restrict v ->
    Pmap.restrict pm ~vpage:vpages.(v);
    Ref_tables.Pmap.restrict rpm ~vpage:vpages.(v)
  | Clear ->
    Pmap.clear pm;
    Ref_tables.Pmap.clear rpm;
    (* The seed cleared ATCs alongside (shootdown does); keep the caches
       from holding entries their Pmap no longer owns. *)
    Atc.flush atc;
    Ref_tables.Atc.flush ratc
  | Atc_activate a ->
    ignore (Atc.activate atc ~aspace:a);
    ignore (Ref_tables.Atc.activate ratc ~aspace:a)
  | Atc_load v -> (
    let vpage = vpages.(v) in
    if Atc.active_aspace atc <> None then
      match Pmap.find pm ~vpage, Ref_tables.Pmap.find rpm ~vpage with
      | Some e, Some r ->
        Atc.load atc ~vpage e;
        Ref_tables.Atc.load ratc ~vpage r
      | None, None -> ()
      | _ -> QCheck.Test.fail_reportf "pmaps diverged before atc-load of vpage %d" vpage)
  | Atc_invalidate (a, v) ->
    Atc.invalidate atc ~aspace:a ~vpage:vpages.(v);
    Ref_tables.Atc.invalidate ratc ~aspace:a ~vpage:vpages.(v)
  | Atc_flush ->
    Atc.flush atc;
    Ref_tables.Atc.flush ratc

let prop_pmap_atc_differential =
  QCheck.Test.make ~name:"flat Pmap/Atc == seed hash tables (differential)" ~count:300
    ops_arb (fun ops ->
      let frames = make_frames () in
      let sys = (Pmap.create ~proc:0, Atc.create ~proc:0) in
      let ref_sys = (Ref_tables.Pmap.create ~proc:0, Ref_tables.Atc.create ~proc:0) in
      check_agreement sys ref_sys;
      List.iter
        (fun op ->
          apply_op frames sys ref_sys op;
          check_agreement sys ref_sys)
        ops;
      true)

(* --- property 2: Cmap-level differential against a model --- *)

(* Random bind/unbind/install/restrict/shootdown-mimic sequences through a
   full Cmap (flat entry table, per-proc flat Pmaps, lazy-compaction
   message queue), mirrored by a plain hash-table model.  After every
   operation the observable state must match the model and every
   representation sanitizer must be clean — [Cmap.check_faults] covers
   refmask/Pmap agreement, translation-in-directory, stale translations,
   the packed mirrors and the retired-message accounting. *)

let nprocs = 4
let cm_vpages = [| 0; 1; 5; 64; Flat.dense_limit + 3 |]

type cop =
  | Bind of int
  | Unbind of int
  | Read_install of int * int  (* proc, vpage index *)
  | Write_install of int * int
  | Restrict_page of int  (* shootdown-mimic Restrict_to_read *)
  | Invalidate_page of int  (* shootdown-mimic Invalidate *)

let cop_gen =
  let open QCheck.Gen in
  let vp = int_bound (Array.length cm_vpages - 1) in
  let proc = int_bound (nprocs - 1) in
  frequency
    [
      (4, map (fun v -> Bind v) vp);
      (2, map (fun v -> Unbind v) vp);
      (6, map2 (fun p v -> Read_install (p, v)) proc vp);
      (4, map2 (fun p v -> Write_install (p, v)) proc vp);
      (3, map (fun v -> Restrict_page v) vp);
      (3, map (fun v -> Invalidate_page v) vp);
    ]

let pp_cop = function
  | Bind v -> Printf.sprintf "bind v%d" cm_vpages.(v)
  | Unbind v -> Printf.sprintf "unbind v%d" cm_vpages.(v)
  | Read_install (p, v) -> Printf.sprintf "read p%d v%d" p cm_vpages.(v)
  | Write_install (p, v) -> Printf.sprintf "write p%d v%d" p cm_vpages.(v)
  | Restrict_page v -> Printf.sprintf "restrict v%d" cm_vpages.(v)
  | Invalidate_page v -> Printf.sprintf "invalidate v%d" cm_vpages.(v)

let cops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_cop ops))
    QCheck.Gen.(list_size (int_range 1 150) cop_gen)

type model = {
  m_bound : (int, unit) Hashtbl.t;  (* vpage -> bound *)
  m_trans : (int * int, bool) Hashtbl.t;  (* (proc, vpage) -> write_ok *)
}

let model_procs_of m vpage =
  List.filter (fun p -> Hashtbl.mem m.m_trans (p, vpage)) (List.init nprocs Fun.id)

let drain cm msg =
  Procset.iter (fun p -> Cmap.complete cm msg ~proc:p) msg.Cmap.msg_targets

let apply_cop (cm, pages, m) op =
  match op with
  | Bind v ->
    let vpage = cm_vpages.(v) in
    if not (Hashtbl.mem m.m_bound vpage) then begin
      ignore (Cmap.bind cm ~vpage pages.(v) Rights.Read_write);
      Hashtbl.replace m.m_bound vpage ()
    end
  | Unbind v ->
    let vpage = cm_vpages.(v) in
    if Hashtbl.mem m.m_bound vpage then begin
      (match Cmap.find cm ~vpage with
      | None -> QCheck.Test.fail_reportf "model bound but Cmap.find misses vpage %d" vpage
      | Some ce ->
        (* Tear down translations first, as Coherent.unbind does. *)
        List.iter
          (fun p ->
            Pmap.remove (Cmap.pmap cm ~proc:p) ~vpage;
            ce.Cmap.refmask <- Procset.remove p ce.Cmap.refmask;
            Hashtbl.remove m.m_trans (p, vpage))
          (model_procs_of m vpage);
        pages.(v).Cpage.write_mapped <- false;
        Cpage.sync_state pages.(v));
      Cmap.unbind cm ~vpage;
      Hashtbl.remove m.m_bound vpage
    end
  | Read_install (p, v) ->
    let vpage = cm_vpages.(v) in
    (match Cmap.find cm ~vpage with
    | None -> ()
    | Some ce ->
      (* A write translation must not silently lose its permission: only
         install read-only when the proc has no stronger mapping. *)
      if Hashtbl.find_opt m.m_trans (p, vpage) <> Some true then begin
        ignore
          (Pmap.install (Cmap.pmap cm ~proc:p) ~vpage
             ~frame:(Cpage.any_copy ce.Cmap.cpage) ~write_ok:false);
        ce.Cmap.refmask <- Procset.add p ce.Cmap.refmask;
        Hashtbl.replace m.m_trans (p, vpage) false
      end)
  | Write_install (p, v) ->
    let vpage = cm_vpages.(v) in
    (match Cmap.find cm ~vpage with
    | None -> ()
    | Some ce ->
      ignore
        (Pmap.install (Cmap.pmap cm ~proc:p) ~vpage
           ~frame:(Cpage.any_copy ce.Cmap.cpage) ~write_ok:true);
      ce.Cmap.refmask <- Procset.add p ce.Cmap.refmask;
      ce.Cmap.cpage.Cpage.write_mapped <- true;
      Cpage.sync_state ce.Cmap.cpage;
      Hashtbl.replace m.m_trans (p, vpage) true)
  | Restrict_page v ->
    let vpage = cm_vpages.(v) in
    (match Cmap.find cm ~vpage with
    | None -> ()
    | Some ce ->
      let targets = model_procs_of m vpage in
      if targets <> [] then begin
        let msg =
          {
            Cmap.msg_vpage = vpage;
            msg_directive = Cmap.Restrict_to_read;
            msg_targets = Procset.of_list targets;
            msg_done = false;
          }
        in
        Cmap.post cm msg;
        List.iter
          (fun p ->
            Pmap.restrict (Cmap.pmap cm ~proc:p) ~vpage;
            Hashtbl.replace m.m_trans (p, vpage) false)
          targets;
        ce.Cmap.cpage.Cpage.write_mapped <- false;
        Cpage.sync_state ce.Cmap.cpage;
        drain cm msg
      end)
  | Invalidate_page v ->
    let vpage = cm_vpages.(v) in
    (match Cmap.find cm ~vpage with
    | None -> ()
    | Some ce ->
      let targets = model_procs_of m vpage in
      if targets <> [] then begin
        let msg =
          {
            Cmap.msg_vpage = vpage;
            msg_directive = Cmap.Invalidate;
            msg_targets = Procset.of_list targets;
            msg_done = false;
          }
        in
        Cmap.post cm msg;
        List.iter
          (fun p ->
            Pmap.remove (Cmap.pmap cm ~proc:p) ~vpage;
            ce.Cmap.refmask <- Procset.remove p ce.Cmap.refmask;
            Hashtbl.remove m.m_trans (p, vpage))
          targets;
        ce.Cmap.cpage.Cpage.write_mapped <- false;
        Cpage.sync_state ce.Cmap.cpage;
        drain cm msg
      end)

let check_cmap_agreement (cm, pages, m) =
  (match Cmap.check_faults cm with
  | None -> ()
  | Some f -> QCheck.Test.fail_reportf "cmap sanitizer: %s" (Platinum_core.Check.render f));
  Array.iter
    (fun page ->
      match Cpage.check_faults page with
      | Ok () -> ()
      | Error f ->
        QCheck.Test.fail_reportf "cpage sanitizer: %s" (Platinum_core.Check.render f))
    pages;
  Array.iteri
    (fun v vpage ->
      let bound = Hashtbl.mem m.m_bound vpage in
      (match Cmap.find cm ~vpage with
      | Some ce ->
        if not bound then QCheck.Test.fail_reportf "vpage %d bound only in Cmap" vpage;
        if not (ce.Cmap.cpage == pages.(v)) then
          QCheck.Test.fail_reportf "vpage %d bound to the wrong page" vpage
      | None ->
        if bound then QCheck.Test.fail_reportf "vpage %d bound only in model" vpage);
      for p = 0 to nprocs - 1 do
        let pm = Cmap.pmap cm ~proc:p in
        match Pmap.find pm ~vpage, Hashtbl.find_opt m.m_trans (p, vpage) with
        | None, None -> ()
        | Some e, Some w ->
          if e.Pmap.write_ok <> w then
            QCheck.Test.fail_reportf "proc %d vpage %d write_ok %b, model %b" p vpage
              e.Pmap.write_ok w
        | Some _, None ->
          QCheck.Test.fail_reportf "proc %d vpage %d mapped only in Cmap" p vpage
        | None, Some _ ->
          QCheck.Test.fail_reportf "proc %d vpage %d mapped only in model" p vpage
      done)
    cm_vpages;
  (* Every mimic-shootdown drains its message before returning, so the
     queue must be quiescent between operations. *)
  if Cmap.pending_messages cm <> [] then
    QCheck.Test.fail_reportf "message queue not quiescent: %d pending"
      (List.length (Cmap.pending_messages cm))

let prop_cmap_differential =
  QCheck.Test.make ~name:"flat Cmap/queue vs hash-table model (differential)" ~count:200
    cops_arb (fun ops ->
      let cm = Cmap.create ~aspace:0 ~nprocs in
      let pages =
        Array.mapi
          (fun i _ ->
            let page = Cpage.create ~id:i ~home:0 () in
            Cpage.add_copy page (Frame.create ~mem_module:0 ~index:i ~words:4);
            Cpage.sync_state page;
            page)
          cm_vpages
      in
      let m = { m_bound = Hashtbl.create 8; m_trans = Hashtbl.create 8 } in
      let sys = (cm, pages, m) in
      check_cmap_agreement sys;
      List.iter
        (fun op ->
          apply_cop sys op;
          check_cmap_agreement sys)
        ops;
      true)

(* --- property 3: the chunked representation at its seams (PR 10) ---

   The dense prefix is now a two-level chunked table (4096-entry chunks on
   first touch).  This property drives random operation streams through a
   key universe concentrated on the seams — both sides of every chunk
   boundary, the dense/spill boundary at [dense_limit], and keys in
   chunks that are never touched at all — against a plain hash-table
   model, sweeping the whole universe after every step. *)

let seam_keys =
  let cs = Flat.chunk_size in
  [|
    0;
    1;
    cs - 1;
    cs;
    cs + 1;
    (2 * cs) - 1;
    2 * cs;
    (5 * cs) + 7;
    (29 * cs) - 1;
    29 * cs;
    Flat.dense_limit - cs;
    Flat.dense_limit - 1;
    Flat.dense_limit;
    Flat.dense_limit + 3;
    (2 * Flat.dense_limit) + 1;
  |]

type fop =
  | Fset of int * int  (* key index, value *)
  | Fremove of int
  | Fremove_untouched of int  (* remove in a chunk nothing was written to *)
  | Fclear

let fop_gen =
  let open QCheck.Gen in
  let ki = int_bound (Array.length seam_keys - 1) in
  frequency
    [
      (8, map2 (fun k v -> Fset (k, v)) ki (int_bound 10_000));
      (4, map (fun k -> Fremove k) ki);
      (2, map (fun k -> Fremove_untouched k) ki);
      (1, return Fclear);
    ]

let pp_fop = function
  | Fset (k, v) -> Printf.sprintf "set %d=%d" seam_keys.(k) v
  | Fremove k -> Printf.sprintf "remove %d" seam_keys.(k)
  | Fremove_untouched k -> Printf.sprintf "remove-untouched %d" seam_keys.(k)
  | Fclear -> "clear"

let fops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_fop ops))
    QCheck.Gen.(list_size (int_range 1 200) fop_gen)

(* An untouched-chunk key: same chunk-relative offset, in a chunk the
   seam universe never writes (chunk 97). *)
let untouched_key k = (97 * Flat.chunk_size) + (seam_keys.(k) land Flat.chunk_mask)

let check_flat_agreement (fl : int Flat.t) (model : (int, int) Hashtbl.t) =
  if Flat.length fl <> Hashtbl.length model then
    QCheck.Test.fail_reportf "length %d vs model %d" (Flat.length fl) (Hashtbl.length model);
  Array.iter
    (fun k ->
      (match Flat.find fl k, Hashtbl.find_opt model k with
      | None, None -> ()
      | Some a, Some b when a = b -> ()
      | _ -> QCheck.Test.fail_reportf "find disagrees at key %d" k);
      if Flat.mem fl k <> Hashtbl.mem model k then
        QCheck.Test.fail_reportf "mem disagrees at key %d" k;
      let u = (97 * Flat.chunk_size) + (k land Flat.chunk_mask) in
      if Flat.mem fl u && not (Hashtbl.mem model u) then
        QCheck.Test.fail_reportf "phantom binding in untouched chunk at %d" u)
    seam_keys;
  (* iter must visit exactly the model's bindings, dense keys ascending *)
  let seen = ref [] in
  Flat.iter (fun k v -> seen := (k, v) :: !seen) fl;
  let got = List.sort compare !seen in
  let want = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []) in
  if got <> want then QCheck.Test.fail_reportf "iter bindings disagree with model"

let prop_chunk_seams_differential =
  QCheck.Test.make ~name:"chunked Flat vs hash-table model at the chunk seams"
    ~count:300 fops_arb (fun ops ->
      let fl = Flat.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          (match op with
          | Fset (k, v) ->
            Flat.set fl seam_keys.(k) v;
            Hashtbl.replace model seam_keys.(k) v
          | Fremove k ->
            Flat.remove fl seam_keys.(k);
            Hashtbl.remove model seam_keys.(k)
          | Fremove_untouched k ->
            (* removing where no chunk exists must be a no-op, not an
               allocation of the chunk *)
            let before = Flat.chunk_count fl in
            Flat.remove fl (untouched_key k);
            Hashtbl.remove model (untouched_key k);
            if Flat.chunk_count fl <> before then
              QCheck.Test.fail_reportf "remove allocated directory space in an untouched chunk"
          | Fclear ->
            Flat.clear fl;
            Hashtbl.reset model);
          check_flat_agreement fl model)
        ops;
      true)

(* --- the zero-allocation gate on chunked steady-state hits ---

   A mapped probe — dense chunk hit or spill hit — must allocate nothing
   on the minor heap: the hot path returns the stored option cell.  This
   is the same contract the §4h AST lint pins structurally; here we pin it
   behaviourally, across chunk and spill keys. *)

let test_steady_hits_allocate_nothing () =
  let fl = Flat.create () in
  Array.iteri (fun i k -> Flat.set fl k (i * 3)) seam_keys;
  (* warm up: fault in any lazy structure and the loop's own closure *)
  let probe () =
    let acc = ref 0 in
    for round = 1 to 100 do
      ignore round;
      for i = 0 to Array.length seam_keys - 1 do
        let k = Array.unsafe_get seam_keys i in
        (match Flat.find fl k with Some v -> acc := !acc + v | None -> acc := !acc - 1);
        if Flat.mem fl k then incr acc
      done
    done;
    !acc
  in
  let warm = probe () in
  let before = Gc.minor_words () in
  let hot = probe () in
  let after = Gc.minor_words () in
  Alcotest.(check int) "probe result stable" warm hot;
  Alcotest.(check (float 0.0))
    "steady-state hits allocate 0 minor words" 0.0 (after -. before)

let suite =
  [
    qtest prop_pmap_atc_differential;
    qtest prop_cmap_differential;
    qtest prop_chunk_seams_differential;
    ("flat: chunked steady hits allocate nothing", `Quick, test_steady_hits_allocate_nothing);
  ]
