(* The serving subsystem (Platinum_serve): histograms against a sort-based
   oracle, ring transport edge cases, RPC edge cases, and the differential
   determinism contract of the serve workload — same seed, same bytes,
   across reruns, parallelism widths and an idle fault plane. *)

module Runner = Platinum_runner.Runner
module Par = Platinum_runner.Par
module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Coherent = Platinum_core.Coherent
module Check = Platinum_core.Check
module Inject = Platinum_sim.Inject
module Arrivals = Platinum_sim.Arrivals
module Rng = Platinum_sim.Rng
module Hist = Platinum_stats.Hist
module Api = Platinum_kernel.Api
module Memsys = Platinum_kernel.Memsys
module Rpc = Platinum_kernel.Rpc
module Fastpath = Platinum_kernel.Fastpath
module Serve = Platinum_serve.Serve
module Ring = Platinum_serve.Ring
module Scale = Platinum_scale.Scale

let qtest = QCheck_alcotest.to_alcotest

(* --- histograms vs the sort-based oracle --- *)

(* The oracle: percentile q of n samples is the ceil(q*n)-th smallest.
   The histogram returns the inclusive upper bound of that sample's bin,
   so it may only ever over-report, and by at most the bin width at that
   value ([equivalent_range]). *)
let oracle_percentile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let rank = if rank < 1 then 1 else if rank > n then n else rank in
  sorted.(rank - 1)

let arb_samples =
  QCheck.(
    pair (int_range 1 14)
      (list_of_size Gen.(int_range 1 400) (int_range 0 3_000_000)))

let prop_percentile_oracle =
  QCheck.Test.make ~name:"percentiles within one bin of the sort oracle" ~count:300
    arb_samples
    (fun (precision_bits, samples) ->
      let h = Hist.create ~precision_bits () in
      List.iter (Hist.record h) samples;
      let sorted = Array.of_list (List.sort compare samples) in
      List.for_all
        (fun q ->
          let want = oracle_percentile sorted q in
          let got = Hist.percentile h q in
          if got < want then
            QCheck.Test.fail_reportf "p%.3f under-reported: oracle %d, hist %d" q want got;
          if got - want > Hist.equivalent_range h want then
            QCheck.Test.fail_reportf
              "p%.3f off by more than a bin: oracle %d, hist %d, bin width %d" q want got
              (Hist.equivalent_range h want);
          true)
        [ 0.01; 0.5; 0.9; 0.95; 0.99; 0.999; 1.0 ])

let prop_merge_is_concat =
  QCheck.Test.make ~name:"merge(a,b) ≡ recording the concatenation" ~count:300
    QCheck.(pair (list (int_range 0 1_000_000)) (list (int_range 0 1_000_000)))
    (fun (a, b) ->
      let ha = Hist.create () and hb = Hist.create () and hc = Hist.create () in
      List.iter (Hist.record ha) a;
      List.iter (Hist.record hb) b;
      List.iter (Hist.record hc) (a @ b);
      Hist.merge ~into:ha hb;
      Hist.fingerprint ha = Hist.fingerprint hc
      && Hist.count ha = Hist.count hc
      && Hist.p50 ha = Hist.p50 hc
      && Hist.p999 ha = Hist.p999 hc)

let prop_count_total_exact =
  QCheck.Test.make ~name:"count/total/min/max are exact" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 1_000_000))
    (fun samples ->
      let h = Hist.create ~precision_bits:3 () in
      List.iter (Hist.record h) samples;
      Hist.count h = List.length samples
      && Hist.total h = List.fold_left ( + ) 0 samples
      && Hist.min_value h = List.fold_left min max_int samples
      && Hist.max_value h = List.fold_left max 0 samples)

(* Steady-state [record] must allocate nothing: the serve hot path calls
   it per completed request.  The measurement itself costs a bounded
   number of words (the two boxed floats), so calibrate that first and
   require the burst to add nothing on top. *)
let test_record_zero_alloc () =
  let h = Hist.create () in
  for i = 1 to 1_000 do
    Hist.record h (i * 17)
  done;
  let calib0 = Gc.minor_words () in
  let calib1 = Gc.minor_words () in
  let overhead = calib1 -. calib0 in
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    Hist.record h ((i * 1_103_515_245) land 0x3fffffff)
  done;
  let w1 = Gc.minor_words () in
  let spent = w1 -. w0 -. overhead in
  Alcotest.(check bool)
    (Printf.sprintf "10k records allocate 0 words beyond measurement (%.0f)" spent)
    true (spent <= 0.0)

let test_hist_edges () =
  let h = Hist.create () in
  Alcotest.(check int) "empty p99" 0 (Hist.p99 h);
  Alcotest.(check int) "empty max" 0 (Hist.max_value h);
  Alcotest.(check int) "empty min" max_int (Hist.min_value h);
  Hist.record h (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Hist.max_value h);
  Hist.record_n h 1_000 3;
  Alcotest.(check int) "record_n counts" 4 (Hist.count h);
  Alcotest.(check int) "q >= 1 is the exact max" 1_000 (Hist.percentile h 1.5);
  let c = Hist.copy h in
  Hist.clear h;
  Alcotest.(check int) "clear empties" 0 (Hist.count h);
  Alcotest.(check int) "copy survives clear" 4 (Hist.count c);
  let coarse = Hist.create ~precision_bits:2 () in
  Alcotest.check_raises "merge precision mismatch rejected"
    (Invalid_argument "Hist.merge: precision mismatch (2 vs 7)") (fun () ->
      Hist.merge ~into:coarse c)

(* --- arrivals --- *)

let prop_arrivals_deterministic =
  QCheck.Test.make ~name:"arrival schedule is a pure function of the seed" ~count:50
    QCheck.(pair (int_range 1 10_000) bool)
    (fun (seed, bursty) ->
      let process =
        if bursty then
          Arrivals.Mmpp { low_rps = 500.0; high_rps = 4_000.0; dwell_ns = 1_000_000 }
        else Arrivals.Poisson { rate_rps = 2_000.0 }
      in
      let draw () =
        let g = Arrivals.create ~rng:(Rng.create (Int64.of_int seed)) process in
        List.init 200 (fun _ -> Arrivals.next_gap_ns g)
      in
      let a = draw () and b = draw () in
      a = b && List.for_all (fun gap -> gap >= 1) a)

(* --- ring transport edge cases --- *)

(* A full ring must block the producer (backpressure), never drop: a slow
   consumer still receives every request in order, and the claimed-but-
   unconsumed count never exceeds capacity. *)
let test_ring_backpressure () =
  let got = ref [] in
  let max_pending = ref 0 in
  let producer_done = ref 0 in
  Runner.time ~frames_per_module:64 ~default_zone_pages:32 (fun () ->
      let r = Ring.create ~slots:2 ~slot_words:1 () in
      let producer =
        Api.spawn ~proc:1 (fun () ->
            for i = 1 to 8 do
              Ring.push_spsc r [| i * 11 |]
            done;
            producer_done := Api.now ())
      in
      for _ = 1 to 8 do
        Api.sleep 50_000;
        max_pending := max !max_pending (Ring.pending r);
        let msg = Ring.pop r in
        got := msg.(0) :: !got
      done;
      Api.join producer)
  |> ignore;
  Alcotest.(check (list int))
    "all 8 requests, in order, none lost"
    (List.init 8 (fun i -> (8 - i) * 11))
    !got;
  (* Claimed-but-unconsumed may exceed capacity by the one producer
     blocked in the backpressure poll — never by more. *)
  Alcotest.(check bool)
    (Printf.sprintf "pending bounded by capacity + blocked producer (max %d)" !max_pending)
    true
    (!max_pending <= 2 + 1);
  (* The producer had no sleeps of its own: finishing this late proves the
     full ring actually blocked it until the consumer drained slots. *)
  Alcotest.(check bool)
    (Printf.sprintf "producer was backpressured until the 6th pop (done at %d ns)"
       !producer_done)
    true
    (!producer_done >= 6 * 50_000)

(* Wraparound keeps FIFO: with a 4-slot ring lapped many times by racing
   producers, each producer's stream still pops in its own order, and the
   claim order is globally respected. *)
let test_ring_wraparound_fifo () =
  let per = 12 in
  let last_seen = [| 0; 0 |] in
  let total = ref 0 in
  Runner.time ~frames_per_module:64 ~default_zone_pages:32 (fun () ->
      let r = Ring.create ~slots:4 ~slot_words:2 () in
      let producer p =
        Api.spawn ~proc:(p + 1) (fun () ->
            for seq = 1 to per do
              Ring.push r [| p; seq |];
              Api.sleep 3_000
            done)
      in
      let p0 = producer 0 and p1 = producer 1 in
      for _ = 1 to 2 * per do
        let msg = Ring.pop r in
        let p = msg.(0) and seq = msg.(1) in
        Alcotest.(check bool)
          (Printf.sprintf "producer %d seq %d after %d" p seq last_seen.(p))
          true
          (seq = last_seen.(p) + 1);
        last_seen.(p) <- seq;
        incr total
      done;
      Api.join p0;
      Api.join p1)
  |> ignore;
  Alcotest.(check int) "every request consumed exactly once" (2 * per) !total

(* Freezing the ring's pages mid-stream must not corrupt traffic: the
   values flow on (through remote word ops), and the coalescing fast path
   declines the now-frozen pages. *)
let test_ring_freeze_midstream () =
  let c = Fastpath.ctx () in
  let got = ref [] in
  let frozen_stats = ref (0, 0) in
  Runner.time ~frames_per_module:64 ~default_zone_pages:32 (fun () ->
      let r = Ring.create ~slots:4 ~slot_words:1 () in
      let producer =
        Api.spawn ~proc:1 (fun () ->
            for i = 1 to 4 do
              Ring.push_spsc r [| i |]
            done;
            Api.sleep 200_000;
            for i = 5 to 8 do
              Ring.push_spsc r [| i |]
            done)
      in
      for _ = 1 to 4 do
        got := (Ring.pop r).(0) :: !got
      done;
      (* Mid-stream: freeze every ring page, then keep serving. *)
      Api.advise (Ring.base r) (Ring.words r) Memsys.Freeze;
      Fastpath.reset_stats c;
      for _ = 5 to 8 do
        got := (Ring.pop r).(0) :: !got
      done;
      let st = Fastpath.stats c in
      frozen_stats := (st.Fastpath.coalesced, st.Fastpath.fallbacks);
      Api.join producer)
  |> ignore;
  Alcotest.(check (list int)) "values intact across the freeze"
    (List.init 8 (fun i -> 8 - i))
    !got;
  let coalesced, fallbacks = !frozen_stats in
  Alcotest.(check int) "frozen ring pages: zero words coalesced" 0 coalesced;
  Alcotest.(check bool)
    (Printf.sprintf "frozen ring pages: fallbacks taken (%d)" fallbacks)
    true (fallbacks > 0)

(* Same scenario with the coherence sanitizer armed: the monitor must stay
   silent (any invariant violation raises and fails the test). *)
let test_ring_freeze_monitor_silent () =
  let setup = Runner.make ~frames_per_module:64 ~default_zone_pages:32 () in
  Coherent.set_monitor setup.Runner.coherent (Some (Check.create_monitor ()));
  let sum = ref 0 in
  Runner.run setup ~main:(fun () ->
      let r = Ring.create ~slots:4 ~slot_words:1 () in
      let producer =
        Api.spawn ~proc:1 (fun () ->
            for i = 1 to 10 do
              Ring.push_spsc r [| i |]
            done)
      in
      for k = 1 to 10 do
        sum := !sum + (Ring.pop r).(0);
        if k = 5 then Api.advise (Ring.base r) (Ring.words r) Memsys.Freeze
      done;
      Api.join producer)
  |> ignore;
  Alcotest.(check int) "all values under the monitor" 55 !sum

let test_ring_validation () =
  Runner.time ~frames_per_module:64 ~default_zone_pages:32 (fun () ->
      Alcotest.check_raises "slots must be positive"
        (Invalid_argument "Ring.create: slots must be positive") (fun () ->
          ignore (Ring.create ~slots:0 ~slot_words:1 ()));
      let r = Ring.create ~slots:2 ~slot_words:2 () in
      Alcotest.check_raises "payload arity enforced"
        (Invalid_argument "Ring.push: payload 1 words, ring slots carry 2") (fun () ->
          Ring.push r [| 1 |]))
  |> ignore

(* --- RPC edge cases --- *)

let test_rpc_zero_and_max_payload () =
  Runner.time (fun () ->
      let server =
        Rpc.serve ~proc:1 (fun args -> Array.append [| Array.length args |] args)
      in
      (* Zero-length arguments round-trip as a 1-word reply. *)
      let r = Rpc.call server [||] in
      Alcotest.(check bool) "zero-length args served" true (r = [| 0 |]);
      (* A page-sized payload (the biggest any transport ships at once)
         survives verbatim. *)
      let big = Array.init (Api.page_words ()) (fun i -> (i * 7) + 1) in
      let r = Rpc.call server big in
      Alcotest.(check int) "max payload length" (Array.length big + 1) (Array.length r);
      Alcotest.(check int) "max payload echoed count" (Array.length big) r.(0);
      Alcotest.(check bool) "max payload echoed verbatim" true
        (Array.for_all2 (fun a b -> a = b) big (Array.sub r 1 (Array.length big)));
      Rpc.shutdown server)
  |> ignore

let test_rpc_many_concurrent_callers () =
  let callers = 8 and calls = 6 in
  let oks = ref 0 in
  Runner.time (fun () ->
      let server = Rpc.serve ~proc:1 (fun args -> [| (2 * args.(0)) + args.(1) |]) in
      let tids =
        List.init callers (fun c ->
            Api.spawn ~proc:(2 + (c mod 2)) (fun () ->
                for k = 1 to calls do
                  let r = Rpc.call server [| c; k |] in
                  if r = [| (2 * c) + k |] then incr oks
                done))
      in
      List.iter Api.join tids;
      Rpc.shutdown server)
  |> ignore;
  Alcotest.(check int) "every concurrent call answered correctly" (callers * calls) !oks

(* 80% request loss: every call still completes (the plane's bounded
   adversary never drops the final attempt), and the recovery counters
   prove retransmission actually ran. *)
let test_rpc_heavy_loss () =
  let setup =
    Runner.make
      ~config:(Config.butterfly_plus ~nprocs:4 ())
      ~inject:(Inject.config ~seed:3L ~rate:0.8 ())
      ()
  in
  let oks = ref 0 in
  Runner.run setup ~main:(fun () ->
      let server = Rpc.serve ~proc:1 (fun args -> [| args.(0) + 1 |]) in
      for i = 1 to 20 do
        if Rpc.call server [| i |] = [| i + 1 |] then incr oks
      done;
      Rpc.shutdown server)
  |> ignore;
  let inj =
    match Machine.inject setup.Runner.machine with Some i -> i | None -> assert false
  in
  Alcotest.(check int) "all 20 calls completed under 80% loss" 20 !oks;
  let st = Inject.stats inj in
  Alcotest.(check bool)
    (Printf.sprintf "retransmissions exercised (%d)" st.Inject.rpc_retries)
    true
    (st.Inject.rpc_retries > 0);
  Alcotest.(check bool) "recovery latency sampled" true
    (Array.length (Inject.recovery_samples inj) > 0)

(* --- serve workload determinism --- *)

let small_params =
  Serve.params ~tenants:2 ~clients_per_tenant:2 ~requests_per_client:6
    ~process:(Arrivals.Poisson { rate_rps = 5_000.0 }) ()

let fp ?inject ?seed transport =
  (Serve.run ?inject ?seed ~check:false small_params transport).Serve.fingerprint

let test_serve_rerun_identical () =
  List.iter
    (fun tr ->
      Alcotest.(check string)
        (Serve.transport_name tr ^ ": two runs at one seed are byte-identical")
        (fp ~seed:5L tr) (fp ~seed:5L tr))
    Serve.all_transports

let test_serve_idle_plane_identical () =
  List.iter
    (fun tr ->
      Alcotest.(check string)
        (Serve.transport_name tr ^ ": rate-0 plane ≡ no plane attached")
        (fp ~seed:5L tr)
        (fp ~seed:5L ~inject:(Inject.config ~seed:9L ~rate:0.0 ()) tr))
    Serve.all_transports

let test_serve_injected_deterministic () =
  List.iter
    (fun tr ->
      let run () = fp ~seed:5L ~inject:(Inject.config ~seed:9L ~rate:0.05 ()) tr in
      Alcotest.(check string)
        (Serve.transport_name tr ^ ": injected runs are byte-identical")
        (run ()) (run ()))
    Serve.all_transports

let prop_serve_seed_differential =
  QCheck.Test.make ~name:"serve fingerprint is a pure function of the seed" ~count:6
    QCheck.(pair (int_range 1 1000) (int_range 0 2))
    (fun (seed, which) ->
      let tr = List.nth Serve.all_transports which in
      let seed = Int64.of_int seed in
      fp ~seed tr = fp ~seed tr)

let test_serve_completes_and_measures () =
  List.iter
    (fun tr ->
      let r = Serve.run ~seed:5L ~check:false small_params tr in
      let want = 2 * 2 * 6 in
      Alcotest.(check int) (r.Serve.transport ^ ": all submitted") want r.Serve.submitted;
      Alcotest.(check int) (r.Serve.transport ^ ": all completed") want r.Serve.completed;
      Alcotest.(check int) (r.Serve.transport ^ ": histogram holds every request") want
        (Hist.count r.Serve.hist);
      Alcotest.(check bool) (r.Serve.transport ^ ": tails ordered") true
        (r.Serve.p50_ns <= r.Serve.p95_ns
        && r.Serve.p95_ns <= r.Serve.p99_ns
        && r.Serve.p99_ns <= r.Serve.p999_ns
        && r.Serve.p999_ns <= Hist.max_value r.Serve.hist))
    Serve.all_transports

(* The sharded-mesh variant across -j(domains) {1,4} x shards {1,4}, clean
   and injected — the grid the issue pins, on top of test_parshard's wider
   sweep over every workload. *)
let test_mesh_grid_identical () =
  let config = Config.hierarchical ~cluster_size:8 ~nodes:32 () in
  List.iter
    (fun inject_rate ->
      let cells =
        List.concat_map (fun s -> List.map (fun d -> (s, d)) [ 1; 4 ]) [ 1; 4 ]
      in
      let fps =
        List.map
          (fun (shards, domains) ->
            (Scale.run ~check:true ~shards ~domains ~inject_rate ~seed:13L
               ~ops_per_node:20 ~config Scale.Serve)
              .Scale.fingerprint)
          cells
      in
      List.iter
        (fun f ->
          Alcotest.(check string)
            (Printf.sprintf "mesh serve identical at rate %.2f over -j/shards {1,4}"
               inject_rate)
            (List.hd fps) f)
        fps)
    [ 0.0; 0.02 ]

let suite =
  [
    Alcotest.test_case "hist: record allocates zero words" `Quick test_record_zero_alloc;
    Alcotest.test_case "hist: edges (empty, clamp, copy, clear)" `Quick test_hist_edges;
    qtest prop_percentile_oracle;
    qtest prop_merge_is_concat;
    qtest prop_count_total_exact;
    qtest prop_arrivals_deterministic;
    Alcotest.test_case "ring: backpressure blocks, never drops" `Quick test_ring_backpressure;
    Alcotest.test_case "ring: wraparound keeps FIFO per producer" `Quick
      test_ring_wraparound_fifo;
    Alcotest.test_case "ring: mid-stream freeze falls back, values intact" `Quick
      test_ring_freeze_midstream;
    Alcotest.test_case "ring: frozen mid-stream under the monitor" `Quick
      test_ring_freeze_monitor_silent;
    Alcotest.test_case "ring: input validation" `Quick test_ring_validation;
    Alcotest.test_case "rpc: zero-length and page-sized payloads" `Quick
      test_rpc_zero_and_max_payload;
    Alcotest.test_case "rpc: many concurrent callers on one port" `Quick
      test_rpc_many_concurrent_callers;
    Alcotest.test_case "rpc: calls complete under 80% request loss" `Quick
      test_rpc_heavy_loss;
    Alcotest.test_case "serve: reruns byte-identical" `Quick test_serve_rerun_identical;
    Alcotest.test_case "serve: idle plane ≡ no plane" `Quick test_serve_idle_plane_identical;
    Alcotest.test_case "serve: injected runs deterministic" `Quick
      test_serve_injected_deterministic;
    Alcotest.test_case "serve: completes and measures every request" `Quick
      test_serve_completes_and_measures;
    Alcotest.test_case "serve: mesh grid -j/shards {1,4} identical" `Quick
      test_mesh_grid_identical;
    qtest prop_serve_seed_differential;
  ]
