module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) = struct
  type 'a t =
    | Empty
    | Node of Key.t * 'a * 'a t list

  let empty = Empty

  let is_empty = function
    | Empty -> true
    | Node _ -> false

  let merge a b =
    match a, b with
    | Empty, h | h, Empty -> h
    | Node (ka, va, ca), Node (kb, vb, cb) ->
      if Key.compare ka kb <= 0 then Node (ka, va, b :: ca)
      else Node (kb, vb, a :: cb)

  let insert k v h = merge (Node (k, v, [])) h

  let find_min = function
    | Empty -> None
    | Node (k, v, _) -> Some (k, v)

  (* Two-pass pairing: merge children pairwise left to right, then fold the
     results right to left.  This is the variant with the proven amortised
     bounds. *)
  let rec merge_pairs = function
    | [] -> Empty
    | [ h ] -> h
    | h1 :: h2 :: rest -> merge (merge h1 h2) (merge_pairs rest)

  let delete_min = function
    | Empty -> None
    | Node (k, v, children) -> Some ((k, v), merge_pairs children)

  let of_list l = List.fold_left (fun h (k, v) -> insert k v h) empty l

  let to_sorted_list h =
    let rec loop acc h =
      match delete_min h with
      | None -> List.rev acc
      | Some (kv, rest) -> loop (kv :: acc) rest
    in
    loop [] h

  (* Tail-recursive with an explicit worklist: the natural recursion
     descends one frame per child and can exhaust the stack on adversarial
     (deep, list-like) shapes. *)
  let size h =
    let rec loop n = function
      | [] -> n
      | Empty :: rest -> loop n rest
      | Node (_, _, children) :: rest -> loop (n + 1) (List.rev_append children rest)
    in
    loop 0 [ h ]
end
