(** Functional pairing heaps — the simulator's original event queue,
    retired to a test-only oracle once {!Platinum_sim.Eheap} replaced it
    under the engine.  The differential property in [test_sim] drives
    identical operation sequences through both and checks agreement.

    Pairing heaps give O(1) insert and find-min and amortised O(log n)
    delete-min, which is the access pattern of a discrete-event queue. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) : sig
  type 'a t
  (** A min-heap of ['a] payloads prioritised by [Key.t]. *)

  val empty : 'a t
  val is_empty : 'a t -> bool

  val insert : Key.t -> 'a -> 'a t -> 'a t

  val find_min : 'a t -> (Key.t * 'a) option
  (** Smallest key, or [None] when empty. *)

  val delete_min : 'a t -> ((Key.t * 'a) * 'a t) option
  (** Smallest binding and the remaining heap, or [None] when empty. *)

  val merge : 'a t -> 'a t -> 'a t

  val of_list : (Key.t * 'a) list -> 'a t

  val to_sorted_list : 'a t -> (Key.t * 'a) list
  (** All bindings in nondecreasing key order.  O(n log n); intended for
      tests and debugging, not the hot path. *)

  val size : 'a t -> int
  (** O(n) but tail-recursive (constant stack on any shape); intended for
      tests.  Hot paths that need a count should maintain their own — the
      engine keeps an O(1) counter instead of walking its queue. *)
end
