(* Tests for the coherent memory system: the four-state protocol, the
   shootdown mechanism, replication policies, freeze/thaw, and the
   machine-wide invariants. *)

module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Procset = Platinum_machine.Procset
module Engine = Platinum_sim.Engine
module Rng = Platinum_sim.Rng
module Rights = Platinum_core.Rights
module Cpage = Platinum_core.Cpage
module Pmap = Platinum_core.Pmap
module Atc = Platinum_core.Atc
module Cmap = Platinum_core.Cmap
module Policy = Platinum_core.Policy
module Fault = Platinum_core.Fault
module Coherent = Platinum_core.Coherent
module Defrost = Platinum_core.Defrost
module Counters = Platinum_core.Counters

let qtest = QCheck_alcotest.to_alcotest

type env = {
  config : Config.t;
  coh : Coherent.t;
  cm : Cmap.t;
  engine : Engine.t;
}

let mk ?(nprocs = 4) ?(page_words = 8) ?(frames = 16) ?(local_caches = false) ?policy () =
  let config = Config.butterfly_plus ~nprocs ~page_words () in
  let config = if local_caches then Config.with_local_caches ~words:32 ~line_words:2 config else config in
  let policy =
    match policy with
    | Some p -> p
    | None ->
      Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let engine = Engine.create () in
  let machine = Machine.create config in
  let coh = Coherent.create machine ~engine ~policy ~frames_per_module:frames () in
  let cm = Coherent.new_aspace coh in
  { config; coh; cm; engine }

(* Bind [n] fresh pages at vpages 0..n-1 with read-write rights. *)
let bind_pages env n =
  Array.init n (fun vpage ->
      let page = Coherent.new_cpage env.coh ~label:(Printf.sprintf "page%d" vpage) () in
      Coherent.bind env.coh env.cm ~vpage page Rights.Read_write;
      page)

let read env ?(now = 0) ~proc vaddr = Coherent.read_word env.coh ~now ~proc ~cmap:env.cm ~vaddr
let write env ?(now = 0) ~proc vaddr v = Coherent.write_word env.coh ~now ~proc ~cmap:env.cm ~vaddr v

let check_inv env =
  match Coherent.check_invariants env.coh with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invariant violated: " ^ e)

let state = Alcotest.testable Cpage.pp_state ( = )

(* --- basic transitions (Figure 4) --- *)

let test_empty_read () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let v, lat = read env ~proc:0 0 in
  Alcotest.(check int) "zero filled" 0 v;
  Alcotest.check state "empty -> present1" Cpage.Present1 pages.(0).Cpage.state;
  Alcotest.(check int) "one copy" 1 (Cpage.ncopies pages.(0));
  Alcotest.(check bool) "copy is local" true (Cpage.has_copy_on pages.(0) 0);
  Alcotest.(check bool) "fault latency charged" true (lat > 100_000);
  check_inv env

let test_empty_write () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:2 3 77 in
  Alcotest.check state "empty -> modified" Cpage.Modified pages.(0).Cpage.state;
  Alcotest.(check bool) "local to writer" true (Cpage.has_copy_on pages.(0) 2);
  let v, _ = read env ~proc:2 3 in
  Alcotest.(check int) "reads back" 77 v;
  check_inv env

let test_replication () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 1 5 in
  let v, _ = read env ~proc:1 1 in
  Alcotest.(check int) "replica data" 5 v;
  Alcotest.check state "modified -> present+ via replication" Cpage.Present_plus
    pages.(0).Cpage.state;
  Alcotest.(check int) "two copies" 2 (Cpage.ncopies pages.(0));
  Alcotest.(check int) "replications counted" 1 pages.(0).Cpage.stats.Cpage.replications;
  Alcotest.(check int) "restriction counted" 1 pages.(0).Cpage.stats.Cpage.restrictions;
  check_inv env

let test_replication_not_a_protocol_invalidation () =
  (* Restricting the writer during replication must not mark the page as
     write-shared, or pivot rows would freeze (§4.2/§5.1). *)
  let env = mk () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 9 in
  let _ = read env ~proc:1 0 in
  let _ = read env ~proc:2 0 in
  Alcotest.(check bool) "not frozen" false pages.(0).Cpage.frozen;
  Alcotest.(check int) "three copies" 3 (Cpage.ncopies pages.(0));
  Alcotest.(check bool) "no protocol invalidation recorded" true
    (pages.(0).Cpage.last_protocol_inval = Cpage.never_invalidated);
  check_inv env

let test_present1_to_modified_cheap () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let _, _ = read env ~proc:0 0 in
  (* Same processor upgrades to write: no shootdown, no copy. *)
  let before = (Coherent.counters env.coh).Counters.shootdowns in
  let lat = write env ~proc:0 0 1 in
  Alcotest.check state "present1 -> modified" Cpage.Modified pages.(0).Cpage.state;
  Alcotest.(check int) "no shootdown" before (Coherent.counters env.coh).Counters.shootdowns;
  Alcotest.(check bool) "cheap (no block copy)" true (lat < 500_000);
  check_inv env

let test_write_collapses_replicas () =
  let env = mk ~nprocs:4 () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  List.iter (fun p -> ignore (read env ~proc:p 0)) [ 1; 2; 3 ];
  Alcotest.(check int) "four copies" 4 (Cpage.ncopies pages.(0));
  (* Writer writes again: all other copies invalidated and freed. *)
  let _ = write env ~proc:0 1 42 in
  Alcotest.check state "back to modified" Cpage.Modified pages.(0).Cpage.state;
  Alcotest.(check int) "single copy" 1 (Cpage.ncopies pages.(0));
  Alcotest.(check bool) "kept the writer's copy" true (Cpage.has_copy_on pages.(0) 0);
  Alcotest.(check bool) "invalidation recorded" true
    (pages.(0).Cpage.last_protocol_inval <> Cpage.never_invalidated);
  (* Readers refault and see fresh data. *)
  let v, _ = read env ~proc:2 1 in
  Alcotest.(check int) "fresh value" 42 v;
  check_inv env

let test_migration_on_write () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 2 10 in
  (* Another processor writes much later (outside t1): migration. *)
  let t = 100_000_000 in
  let _ = write env ~now:t ~proc:3 2 11 in
  Alcotest.check state "still modified" Cpage.Modified pages.(0).Cpage.state;
  Alcotest.(check bool) "moved to writer" true (Cpage.has_copy_on pages.(0) 3);
  Alcotest.(check bool) "left the old home" false (Cpage.has_copy_on pages.(0) 0);
  Alcotest.(check int) "migration counted" 1 pages.(0).Cpage.stats.Cpage.migrations;
  let v, _ = read env ~now:(t + 1) ~proc:3 2 in
  Alcotest.(check int) "value moved with the page" 11 v;
  (* The other words survived the migration copy. *)
  let v0, _ = read env ~now:(t + 2) ~proc:3 3 in
  Alcotest.(check int) "rest of page intact" 0 v0;
  check_inv env

let test_freeze_on_write_sharing () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let _ = write env ~now:0 ~proc:0 0 1 in
  let _ = read env ~now:1000 ~proc:1 0 in
  (* Writer invalidates the replica... *)
  let _ = write env ~now:2000 ~proc:0 0 2 in
  (* ...and the reader comes right back: within t1, so freeze. *)
  let v, _ = read env ~now:3000 ~proc:1 0 in
  Alcotest.(check int) "remote read sees the data" 2 v;
  Alcotest.(check bool) "frozen" true pages.(0).Cpage.frozen;
  Alcotest.(check int) "one copy" 1 (Cpage.ncopies pages.(0));
  Alcotest.(check int) "remote map counted" 1 pages.(0).Cpage.stats.Cpage.remote_maps;
  Alcotest.(check bool) "on the frozen list" true
    (List.memq pages.(0) (Coherent.frozen_pages env.coh));
  check_inv env

let freeze_a_page env page =
  ignore (write env ~now:0 ~proc:0 0 1);
  ignore (read env ~now:1000 ~proc:1 0);
  ignore (write env ~now:2000 ~proc:0 0 2);
  ignore (read env ~now:3000 ~proc:1 0);
  Alcotest.(check bool) "setup: frozen" true page.Cpage.frozen

let test_frozen_full_rights () =
  let env = mk () in
  let pages = bind_pages env 1 in
  freeze_a_page env pages.(0);
  (* The remote mapping was granted full rights: a write by the reader
     does not fault again. *)
  let faults_before = pages.(0).Cpage.stats.Cpage.write_faults in
  let _ = write env ~now:4000 ~proc:1 0 3 in
  Alcotest.(check int) "no new fault" faults_before pages.(0).Cpage.stats.Cpage.write_faults;
  let v, _ = read env ~now:5000 ~proc:0 0 in
  Alcotest.(check int) "write went to the single copy" 3 v;
  check_inv env

let test_thaw_allows_replication () =
  let env = mk () in
  let pages = bind_pages env 1 in
  freeze_a_page env pages.(0);
  let t = 200_000_000 in
  Coherent.thaw_page env.coh ~now:t pages.(0);
  Alcotest.(check bool) "unfrozen" false pages.(0).Cpage.frozen;
  Alcotest.check state "single read-only copy" Cpage.Present1 pages.(0).Cpage.state;
  (* Next reader replicates: the thaw didn't count as interference. *)
  let _ = read env ~now:(t + 1000) ~proc:1 0 in
  Alcotest.(check int) "replicated after thaw" 2 (Cpage.ncopies pages.(0));
  Alcotest.(check int) "thaw counted" 1 pages.(0).Cpage.stats.Cpage.thaws;
  check_inv env

let test_defrost_daemon () =
  let env = mk () in
  let pages = bind_pages env 1 in
  freeze_a_page env pages.(0);
  Defrost.install env.coh env.engine;
  (* Run past one defrost period (t2 = 1 s). *)
  Engine.run_until env.engine 1_100_000_000;
  Alcotest.(check bool) "daemon thawed the page" false pages.(0).Cpage.frozen;
  Alcotest.(check int) "frozen list empty" 0 (List.length (Coherent.frozen_pages env.coh));
  check_inv env

(* --- the adaptive defrost variant (per-page t2, §4.2's sketch) --- *)

let adaptive =
  Defrost.Adaptive { initial_t2 = 1_000_000; max_t2 = 8_000_000; refreeze_window = 500_000 }

(* A single-copy page the daemon can freeze directly. *)
let one_copy_page env pages =
  ignore (write env ~proc:0 0 1);
  Alcotest.(check int) "setup: one copy" 1 (Cpage.ncopies pages.(0))

let test_defrost_adaptive_arms_and_thaws () =
  let env = mk () in
  let pages = bind_pages env 1 in
  Defrost.install ~mode:adaptive env.coh env.engine;
  one_copy_page env pages;
  Coherent.freeze_page env.coh ~now:10_000 pages.(0);
  Alcotest.(check int) "first freeze arms the initial t2" 1_000_000
    pages.(0).Cpage.adaptive_t2;
  (* The per-page timer fires at freeze + t2, well before the periodic
     daemon's 1 s sweep would have. *)
  Engine.run_until env.engine 2_000_000;
  Alcotest.(check bool) "per-page timer thawed it" false pages.(0).Cpage.frozen;
  Alcotest.(check int) "frozen list empty" 0 (List.length (Coherent.frozen_pages env.coh));
  check_inv env

let test_defrost_adaptive_backoff () =
  let env = mk () in
  let pages = bind_pages env 1 in
  Defrost.install ~mode:adaptive env.coh env.engine;
  one_copy_page env pages;
  Coherent.freeze_page env.coh ~now:0 pages.(0);
  Engine.run_until env.engine 1_200_000;
  Alcotest.(check bool) "setup: first thaw happened" false pages.(0).Cpage.frozen;
  (* Refreeze inside the refreeze window: the thaw was wrong, back off. *)
  Coherent.freeze_page env.coh ~now:(pages.(0).Cpage.last_thaw_at + 100_000) pages.(0);
  Alcotest.(check int) "refreeze inside the window doubles t2" 2_000_000
    pages.(0).Cpage.adaptive_t2;
  (* Keep refreezing hot: the back-off is capped at max_t2. *)
  for _ = 1 to 5 do
    Coherent.thaw_page env.coh ~now:(Engine.now env.engine) pages.(0);
    Coherent.freeze_page env.coh ~now:(pages.(0).Cpage.last_thaw_at + 1) pages.(0)
  done;
  Alcotest.(check int) "doubling caps at max_t2" 8_000_000 pages.(0).Cpage.adaptive_t2;
  check_inv env

let test_defrost_adaptive_slow_refreeze_keeps_t2 () =
  let env = mk () in
  let pages = bind_pages env 1 in
  Defrost.install ~mode:adaptive env.coh env.engine;
  one_copy_page env pages;
  Coherent.freeze_page env.coh ~now:0 pages.(0);
  Engine.run_until env.engine 1_200_000;
  (* A refreeze long after the thaw is a new phase, not churn: no back-off. *)
  Coherent.freeze_page env.coh ~now:(pages.(0).Cpage.last_thaw_at + 600_000) pages.(0);
  Alcotest.(check int) "refreeze outside the window keeps t2" 1_000_000
    pages.(0).Cpage.adaptive_t2;
  check_inv env

let test_defrost_adaptive_stale_timer () =
  let env = mk () in
  let pages = bind_pages env 1 in
  Defrost.install ~mode:adaptive env.coh env.engine;
  one_copy_page env pages;
  (* First freeze arms a wake-up at t=1ms for frozen_at=0... *)
  Coherent.freeze_page env.coh ~now:0 pages.(0);
  (* ...but the page thaws early and refreezes (new frozen_at, its own
     later wake-up at ~2.2ms after the doubled t2). *)
  Coherent.thaw_page env.coh ~now:100_000 pages.(0);
  Coherent.freeze_page env.coh ~now:200_000 pages.(0);
  Alcotest.(check int) "quick refreeze doubled t2" 2_000_000 pages.(0).Cpage.adaptive_t2;
  (* The stale first timer fires at 1ms and must not thaw the new freeze. *)
  Engine.run_until env.engine 1_500_000;
  Alcotest.(check bool) "stale timer left the refreeze alone" true pages.(0).Cpage.frozen;
  (* The refreeze's own timer eventually does. *)
  Engine.run_until env.engine 3_000_000;
  Alcotest.(check bool) "the refreeze's own timer thawed it" false pages.(0).Cpage.frozen;
  check_inv env

let test_thaw_on_fault_policy () =
  let config = Config.butterfly_plus ~nprocs:4 ~page_words:8 () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = true })
  in
  let env = mk ~policy () in
  let pages = bind_pages env 1 in
  freeze_a_page env pages.(0);
  (* A fault long after the window thaws and replicates. *)
  let t = 50_000_000 in
  let _ = read env ~now:t ~proc:2 0 in
  Alcotest.(check bool) "thawed by the fault" false pages.(0).Cpage.frozen;
  Alcotest.(check bool) "replicated" true (Cpage.ncopies pages.(0) >= 2);
  check_inv env

(* --- replication policies --- *)

let test_policy_static_place () =
  let env = mk ~policy:(Policy.make ~t1:0 Policy.Never_move) () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 5 in
  let v, _ = read env ~proc:3 0 in
  Alcotest.(check int) "remote read works" 5 v;
  Alcotest.(check int) "never replicates" 1 (Cpage.ncopies pages.(0));
  Alcotest.(check bool) "page stayed put" true (Cpage.has_copy_on pages.(0) 0);
  let _ = write env ~proc:3 1 6 in
  Alcotest.(check bool) "writes don't move it either" true (Cpage.has_copy_on pages.(0) 0);
  check_inv env

let test_policy_migrate_only () =
  let env = mk ~policy:(Policy.make ~t1:0 Policy.Migrate_only) () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 5 in
  let _ = read env ~proc:1 0 in
  Alcotest.(check int) "reads never replicate" 1 (Cpage.ncopies pages.(0));
  let _ = write env ~proc:1 0 6 in
  Alcotest.(check bool) "writes migrate" true (Cpage.has_copy_on pages.(0) 1);
  Alcotest.(check int) "still one copy" 1 (Cpage.ncopies pages.(0));
  check_inv env

let test_policy_bolosky () =
  let env = mk ~policy:(Policy.make ~t1:0 (Policy.Bolosky { max_migrations = 2 })) () in
  let pages = bind_pages env 2 in
  let pw = Coherent.page_words env.coh in
  (* Page 0 is never written: replicates freely. *)
  let _ = read env ~proc:0 0 in
  let _ = read env ~proc:1 0 in
  Alcotest.(check int) "read-only page replicates" 2 (Cpage.ncopies pages.(0));
  (* Page 1 is written: never replicated for reads, migrates at most twice. *)
  let _ = write env ~proc:0 pw 1 in
  let _ = read env ~proc:1 pw in
  Alcotest.(check int) "written page not replicated" 1 (Cpage.ncopies pages.(1));
  let _ = write env ~proc:1 pw 2 in
  let _ = write env ~proc:2 pw 3 in
  Alcotest.(check int) "two migrations allowed" 2 pages.(1).Cpage.stats.Cpage.migrations;
  let _ = write env ~proc:3 pw 4 in
  Alcotest.(check int) "third write froze in place" 2 pages.(1).Cpage.stats.Cpage.migrations;
  Alcotest.(check bool) "page stayed on proc 2's module" true (Cpage.has_copy_on pages.(1) 2);
  check_inv env

let test_policy_competitive () =
  let env = mk ~policy:(Policy.make ~t1:0 (Policy.Competitive { threshold = 3 })) () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 5 in
  (* First two remote readers are mapped remotely; the third miss pays
     for a replica. *)
  let _ = read env ~now:1_000 ~proc:1 0 in
  Alcotest.(check int) "first miss: remote" 1 (Cpage.ncopies pages.(0));
  let _ = read env ~now:2_000 ~proc:2 0 in
  Alcotest.(check int) "second miss: still remote" 1 (Cpage.ncopies pages.(0));
  let _ = read env ~now:3_000 ~proc:3 0 in
  Alcotest.(check int) "third miss: replicated" 2 (Cpage.ncopies pages.(0));
  check_inv env

let test_policy_always_replicate () =
  let env = mk ~policy:(Policy.make ~t1:0 Policy.Always_replicate) () in
  let pages = bind_pages env 1 in
  (* Ping-pong writes migrate every time; never freezes. *)
  for round = 0 to 5 do
    ignore (write env ~now:(round * 100) ~proc:(round mod 2) 0 round)
  done;
  Alcotest.(check bool) "never frozen" false pages.(0).Cpage.stats.Cpage.was_frozen;
  Alcotest.(check bool) "migrated repeatedly" true (pages.(0).Cpage.stats.Cpage.migrations >= 4);
  check_inv env

let test_policy_of_string () =
  List.iter
    (fun name ->
      match Policy.of_string ~t1:1000 name with
      | Ok p -> Alcotest.(check string) "round-trips" name p.Policy.name
      | Error e -> Alcotest.fail e)
    Policy.default_names;
  Alcotest.(check bool) "unknown rejected" true
    (match Policy.of_string ~t1:0 "nonsense" with Error _ -> true | Ok _ -> false)

(* --- shootdown mechanics --- *)

let test_shootdown_targets_only_holders () =
  let env = mk ~nprocs:4 () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  let _ = read env ~proc:1 0 in
  (* proc 2 and 3 never touched the page: the collapse below must not
     interrupt them (refmask-driven shootdown, §3.1). *)
  let ints_before = (Coherent.counters env.coh).Counters.interrupts in
  let _ = write env ~proc:0 0 2 in
  let ints = (Coherent.counters env.coh).Counters.interrupts - ints_before in
  Alcotest.(check int) "exactly one processor interrupted" 1 ints;
  ignore pages;
  check_inv env

let test_shootdown_inactive_deferred () =
  let env = mk ~nprocs:4 () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  let _ = read env ~proc:1 0 in
  (* proc 1 deactivates the address space (switches to another). *)
  let other = Coherent.new_aspace env.coh in
  ignore (Coherent.activate env.coh ~now:0 ~proc:1 ~aspace:(Cmap.aspace other));
  let def_before = (Coherent.counters env.coh).Counters.deferred_updates in
  let ints_before = (Coherent.counters env.coh).Counters.interrupts in
  let _ = write env ~proc:0 0 2 in
  Alcotest.(check int) "no interrupt for inactive holder" ints_before
    (Coherent.counters env.coh).Counters.interrupts;
  Alcotest.(check bool) "applied as deferred update" true
    ((Coherent.counters env.coh).Counters.deferred_updates > def_before);
  ignore pages;
  check_inv env

let test_refmask_tracks_pmaps () =
  let env = mk ~nprocs:4 () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  List.iter (fun p -> ignore (read env ~proc:p 0)) [ 1; 2 ];
  let ce = Option.get (Cmap.find env.cm ~vpage:0) in
  Alcotest.(check (list int)) "refmask = touchers" [ 0; 1; 2 ] (Procset.to_list ce.Cmap.refmask);
  let _ = write env ~proc:0 0 2 in
  Alcotest.(check (list int)) "collapse clears other holders" [ 0 ]
    (Procset.to_list ce.Cmap.refmask);
  ignore pages;
  check_inv env

(* --- multiple address spaces --- *)

let test_multi_aspace_sharing () =
  let env = mk ~nprocs:4 () in
  let page = Coherent.new_cpage env.coh ~label:"shared" () in
  let cm2 = Coherent.new_aspace env.coh in
  Coherent.bind env.coh env.cm ~vpage:0 page Rights.Read_write;
  Coherent.bind env.coh cm2 ~vpage:5 page Rights.Read_only;
  let pw = Coherent.page_words env.coh in
  ignore pw;
  let _ = Coherent.write_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:2 99 in
  (* The second space reads the same coherent page at a different vaddr. *)
  let v, _ = Coherent.read_word env.coh ~now:1000 ~proc:1 ~cmap:cm2 ~vaddr:(5 * pw + 2) in
  Alcotest.(check int) "shared data visible across spaces" 99 v;
  (* A write in space 1 shoots down the mapping in space 2. *)
  let _ =
    Coherent.write_word env.coh ~now:100_000_000 ~proc:0 ~cmap:env.cm ~vaddr:2 100
  in
  let v2, _ =
    Coherent.read_word env.coh ~now:100_001_000 ~proc:1 ~cmap:cm2 ~vaddr:((5 * pw) + 2)
  in
  Alcotest.(check int) "space 2 sees the new value" 100 v2;
  check_inv env

let test_multi_aspace_protection () =
  let env = mk () in
  let page = Coherent.new_cpage env.coh () in
  let cm2 = Coherent.new_aspace env.coh in
  Coherent.bind env.coh env.cm ~vpage:0 page Rights.Read_write;
  Coherent.bind env.coh cm2 ~vpage:0 page Rights.Read_only;
  ignore (Coherent.write_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0 1);
  Alcotest.(check bool) "read-only space cannot write" true
    (try
       ignore (Coherent.write_word env.coh ~now:0 ~proc:1 ~cmap:cm2 ~vaddr:0 2);
       false
     with Fault.Protection_violation _ -> true)

let test_unmapped_raises () =
  let env = mk () in
  Alcotest.(check bool) "unmapped fault escapes to VM" true
    (try
       ignore (read env ~proc:0 0);
       false
     with Fault.Unmapped { vpage = 0; _ } -> true)

let test_unbind_shootdown () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  let _ = read env ~proc:1 0 in
  let _lat = Coherent.unbind env.coh ~now:0 env.cm ~vpage:0 in
  Alcotest.(check bool) "binding gone" true (Cmap.find env.cm ~vpage:0 = None);
  Alcotest.(check bool) "unmapped now" true
    (try
       ignore (read env ~proc:1 0);
       false
     with Fault.Unmapped _ -> true);
  ignore pages

(* --- ATC behaviour --- *)

let test_atc_hit_free () =
  let env = mk () in
  let _ = bind_pages env 1 in
  let _ = read env ~proc:0 0 in
  (* Issue the second read after the first fault's module occupancy has
     drained, so only the translation path is measured. *)
  let _, lat = read env ~now:10_000_000 ~proc:0 1 in
  Alcotest.(check int) "ATC hit costs only the access" env.config.Config.t_local_word lat

let test_atc_flush_on_switch () =
  let env = mk () in
  let _ = bind_pages env 1 in
  let _ = read env ~proc:0 0 in
  (* Activate another space on proc 0, then come back: ATC was flushed,
     so the next access reloads from the Pmap. *)
  let other = Coherent.new_aspace env.coh in
  ignore (Coherent.activate env.coh ~now:0 ~proc:0 ~aspace:(Cmap.aspace other));
  let reloads_before = (Coherent.counters env.coh).Counters.atc_reloads in
  let _, _lat = read env ~proc:0 0 in
  Alcotest.(check int) "pmap reload, not a fault" (reloads_before + 1)
    (Coherent.counters env.coh).Counters.atc_reloads

(* --- block operations --- *)

let test_block_ops_cross_pages () =
  let env = mk ~page_words:8 () in
  let pages = bind_pages env 3 in
  let data = Array.init 20 (fun i -> i * 7) in
  let _ = Coherent.block_write env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:3 data in
  let got, _ = Coherent.block_read env.coh ~now:1000 ~proc:1 ~cmap:env.cm ~vaddr:3 ~len:20 in
  Alcotest.(check (array int)) "round trip across pages" data got;
  Alcotest.(check int) "three pages touched" 3
    (Array.fold_left (fun acc p -> acc + if Cpage.ncopies p > 0 then 1 else 0) 0 pages);
  check_inv env

let test_rmw () =
  let env = mk () in
  let _ = bind_pages env 1 in
  let _ = write env ~proc:0 0 10 in
  let old, _ = Coherent.rmw_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0 (fun v -> v + 5) in
  Alcotest.(check int) "returns old" 10 old;
  let v, _ = read env ~proc:0 0 in
  Alcotest.(check int) "applied" 15 v

(* --- resource exhaustion --- *)

let test_oom_falls_back_to_remote () =
  (* 2 processors, 1 frame each.  Two pages fill the machine; a third
     page cannot replicate and the protocol must fall back to remote
     mappings rather than dying. *)
  let env = mk ~nprocs:2 ~frames:1 () in
  let pages = bind_pages env 2 in
  let pw = Coherent.page_words env.coh in
  let _ = write env ~proc:0 0 1 in
  let _ = write env ~proc:1 pw 2 in
  (* proc 1 reads page 0: no frame anywhere for a replica. *)
  let v, _ = read env ~proc:1 0 in
  Alcotest.(check int) "remote fallback works" 1 v;
  Alcotest.(check int) "no replica" 1 (Cpage.ncopies pages.(0));
  check_inv env

(* --- invariant checker sanity --- *)

let test_invariant_checker_detects_corruption () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let _ = read env ~proc:0 0 in
  pages.(0).Cpage.state <- Cpage.Modified (* lie *);
  Alcotest.(check bool) "corruption detected" true
    (match Coherent.check_invariants env.coh with Error _ -> true | Ok () -> false)

let test_cpage_invariants_unit () =
  let p = Cpage.create ~id:0 ~home:0 () in
  Alcotest.(check bool) "fresh page ok" true (Cpage.check_invariants p = Ok ());
  let f = Platinum_phys.Frame.create ~mem_module:1 ~index:0 ~words:4 in
  Cpage.add_copy p f;
  Cpage.sync_state p;
  Alcotest.(check bool) "present1 ok" true (Cpage.check_invariants p = Ok ());
  Alcotest.(check bool) "double add same module rejected" true
    (try
       Cpage.add_copy p (Platinum_phys.Frame.create ~mem_module:1 ~index:1 ~words:4);
       false
     with Invalid_argument _ -> true)

(* --- randomized protocol-vs-oracle property --- *)

(* Random word reads/writes from random processors against a flat oracle
   array; after every operation the data must agree and all machine-wide
   invariants must hold.  This is the strongest single check on the
   protocol: any stale replica, lost invalidation, or wrong-copy write
   shows up as a value mismatch. *)
let run_protocol_oracle ?(local_caches = false) ~policy_kind ~seed ~ops () =
  let npages = 4 and page_words = 8 and nprocs = 4 in
  let policy = Policy.make ~t1:5_000 policy_kind in
  let env = mk ~nprocs ~page_words ~frames:8 ~local_caches ~policy () in
  let _pages = bind_pages env npages in
  let oracle = Array.make (npages * page_words) 0 in
  let rng = Rng.create (Int64.of_int seed) in
  let now = ref 0 in
  let ok = ref true in
  for op = 1 to ops do
    now := !now + Rng.int rng 4_000;
    let proc = Rng.int rng nprocs in
    let vaddr = Rng.int rng (npages * page_words) in
    match Rng.int rng 4 with
    | 0 ->
      let v, _ = read env ~now:!now ~proc vaddr in
      if v <> oracle.(vaddr) then ok := false
    | 1 ->
      let v = op in
      ignore (write env ~now:!now ~proc vaddr v);
      oracle.(vaddr) <- v
    | 2 ->
      let old, _ =
        Coherent.rmw_word env.coh ~now:!now ~proc ~cmap:env.cm ~vaddr (fun v -> v + 1)
      in
      if old <> oracle.(vaddr) then ok := false;
      oracle.(vaddr) <- oracle.(vaddr) + 1
    | _ ->
      let len = 1 + Rng.int rng (min 12 ((npages * page_words) - vaddr)) in
      let got, _ = Coherent.block_read env.coh ~now:!now ~proc ~cmap:env.cm ~vaddr ~len in
      if got <> Array.sub oracle vaddr len then ok := false
  done;
  (* Global accounting: no physical frame may leak (every allocated frame
     is in exactly one directory), and the freeze ledger must balance. *)
  let phys = Coherent.phys env.coh in
  let allocated =
    Platinum_phys.Phys_mem.total_frames phys - Platinum_phys.Phys_mem.total_free phys
  in
  let in_directories = ref 0 in
  Coherent.iter_cpages (fun p -> in_directories := !in_directories + Cpage.ncopies p) env.coh;
  let counters = Coherent.counters env.coh in
  let frozen_now = List.length (Coherent.frozen_pages env.coh) in
  !ok
  && Coherent.check_invariants env.coh = Ok ()
  && allocated = !in_directories
  && counters.Counters.freezes - counters.Counters.thaws = frozen_now

let prop_protocol_oracle ?local_caches kind name =
  QCheck.Test.make ~name ~count:30 QCheck.(int_bound 1_000_000) (fun seed ->
      run_protocol_oracle ?local_caches ~policy_kind:kind ~seed ~ops:300 ())

(* --- §7 local caches --- *)

let test_cached_read_hit_is_fast () =
  let env = mk ~local_caches:true () in
  let _ = bind_pages env 1 in
  let _ = read env ~proc:0 0 in
  (* vaddr 4 is on a different 2-word line than vaddr 0. *)
  let _, miss = read env ~now:10_000_000 ~proc:0 4 in
  let _, hit = read env ~now:20_000_000 ~proc:0 4 in
  Alcotest.(check int) "first access misses the cache" env.config.Config.t_local_word miss;
  Alcotest.(check int) "second hits at t_cache_hit" env.config.Config.t_cache_hit hit

let test_cached_frozen_page_not_cached () =
  let env = mk ~local_caches:true () in
  let pages = bind_pages env 1 in
  freeze_a_page env pages.(0);
  (* Remote reader of the frozen page: never a cache hit. *)
  let _, l1 = read env ~now:10_000_000 ~proc:1 0 in
  let _, l2 = read env ~now:20_000_000 ~proc:1 0 in
  Alcotest.(check bool) "still paying remote latency" true
    (l1 >= env.config.Config.t_remote_read_word && l2 >= env.config.Config.t_remote_read_word)

let test_cached_no_stale_read_after_upgrade () =
  let env = mk ~local_caches:true () in
  let _ = bind_pages env 1 in
  (* proc 1 reads (fills its cache from the zero-filled page)... *)
  let _ = read env ~proc:1 0 in
  let v0, _ = read env ~now:10_000_000 ~proc:1 0 in
  Alcotest.(check int) "cached zero" 0 v0;
  (* ...proc 1's copy is the one proc 0 maps too (same single copy);
     proc 0 upgrades and writes.  proc 1 must not see its stale line. *)
  let _ = write env ~now:100_000_000 ~proc:0 0 99 in
  let v, _ = read env ~now:100_001_000 ~proc:1 0 in
  Alcotest.(check int) "fresh value after upgrade" 99 v;
  check_inv env

let test_cached_word_write_invalidates_peers () =
  let env = mk ~local_caches:true ~policy:(Policy.make ~t1:0 Policy.Never_move) () in
  let _ = bind_pages env 1 in
  (* Static placement: one copy on proc 0's module, everyone maps it. *)
  let _ = write env ~proc:0 0 1 in
  let _ = read env ~now:10_000_000 ~proc:0 0 in
  let _ = read env ~now:20_000_000 ~proc:0 0 in
  (* A write from proc 1 through its remote mapping must invalidate
     proc 0's cached line. *)
  let _ = write env ~now:30_000_000 ~proc:1 0 2 in
  let v, _ = read env ~now:40_000_000 ~proc:0 0 in
  Alcotest.(check int) "no stale cached word" 2 v;
  check_inv env

(* The transition atlas must match Figure 4 edge for edge. *)
let test_atlas_matches_figure4 () =
  let module Atlas = Platinum_core.Atlas in
  let expected =
    [
      (Cpage.Empty, Cpage.Present1, "read miss (zero fill)");
      (Cpage.Empty, Cpage.Modified, "write miss (zero fill)");
      (Cpage.Present1, Cpage.Present_plus, "read miss (replicate)");
      (Cpage.Modified, Cpage.Present_plus, "read miss (replicate, restrict writer)");
      (Cpage.Present1, Cpage.Modified, "write hit upgrade (no invalidation)");
      (Cpage.Modified, Cpage.Modified, "write miss (migrate)");
      (Cpage.Present_plus, Cpage.Modified, "write miss (invalidate replicas)");
      (Cpage.Modified, Cpage.Modified, "read miss on frozen page (remote map)");
      (Cpage.Modified, Cpage.Present1, "defrost daemon thaw");
      (Cpage.Present_plus, Cpage.Present_plus, "further replication (present+)");
    ]
  in
  let got =
    List.map
      (fun e -> (e.Atlas.from_state, e.Atlas.to_state, e.Atlas.trigger))
      (Atlas.edges ())
  in
  List.iter
    (fun edge ->
      Alcotest.(check bool)
        (let _, _, t = edge in
         "edge present: " ^ t)
        true (List.mem edge got))
    expected;
  Alcotest.(check int) "no extra edges" (List.length expected) (List.length got)

let suite =
  [
    ("protocol: empty -> present1 on read", `Quick, test_empty_read);
    ("protocol: atlas matches Figure 4", `Quick, test_atlas_matches_figure4);
    ("protocol: empty -> modified on write", `Quick, test_empty_write);
    ("protocol: replication on read miss", `Quick, test_replication);
    ("protocol: replication isn't interference", `Quick, test_replication_not_a_protocol_invalidation);
    ("protocol: present1 -> modified is cheap", `Quick, test_present1_to_modified_cheap);
    ("protocol: write collapses replicas", `Quick, test_write_collapses_replicas);
    ("protocol: write miss migrates", `Quick, test_migration_on_write);
    ("policy: fine-grain sharing freezes", `Quick, test_freeze_on_write_sharing);
    ("policy: frozen pages map with full rights", `Quick, test_frozen_full_rights);
    ("policy: thaw allows replication", `Quick, test_thaw_allows_replication);
    ("policy: defrost daemon thaws", `Quick, test_defrost_daemon);
    ("policy: adaptive defrost arms and thaws", `Quick, test_defrost_adaptive_arms_and_thaws);
    ("policy: adaptive defrost backs off on churn", `Quick, test_defrost_adaptive_backoff);
    ( "policy: adaptive defrost keeps t2 across phases",
      `Quick,
      test_defrost_adaptive_slow_refreeze_keeps_t2 );
    ("policy: adaptive defrost ignores stale timers", `Quick, test_defrost_adaptive_stale_timer);
    ("policy: thaw-on-fault variant", `Quick, test_thaw_on_fault_policy);
    ("policy: static placement", `Quick, test_policy_static_place);
    ("policy: migrate-only", `Quick, test_policy_migrate_only);
    ("policy: bolosky", `Quick, test_policy_bolosky);
    ("policy: competitive (fault-sampled)", `Quick, test_policy_competitive);
    ("policy: always-replicate", `Quick, test_policy_always_replicate);
    ("policy: of_string", `Quick, test_policy_of_string);
    ("shootdown: only holders targeted", `Quick, test_shootdown_targets_only_holders);
    ("shootdown: inactive holders deferred", `Quick, test_shootdown_inactive_deferred);
    ("shootdown: refmask tracks pmaps", `Quick, test_refmask_tracks_pmaps);
    ("aspace: sharing across spaces", `Quick, test_multi_aspace_sharing);
    ("aspace: per-space protection", `Quick, test_multi_aspace_protection);
    ("aspace: unmapped raises", `Quick, test_unmapped_raises);
    ("aspace: unbind shoots down", `Quick, test_unbind_shootdown);
    ("atc: hits are free", `Quick, test_atc_hit_free);
    ("atc: flushed on space switch", `Quick, test_atc_flush_on_switch);
    ("access: block ops cross pages", `Quick, test_block_ops_cross_pages);
    ("access: rmw", `Quick, test_rmw);
    ("robustness: OOM falls back to remote maps", `Quick, test_oom_falls_back_to_remote);
    ("invariants: checker detects corruption", `Quick, test_invariant_checker_detects_corruption);
    ("invariants: cpage unit checks", `Quick, test_cpage_invariants_unit);
    ("caches: hits are fast", `Quick, test_cached_read_hit_is_fast);
    ("caches: frozen pages bypass the cache", `Quick, test_cached_frozen_page_not_cached);
    ("caches: no stale read after upgrade", `Quick, test_cached_no_stale_read_after_upgrade);
    ("caches: writes invalidate peers", `Quick, test_cached_word_write_invalidates_peers);
    qtest (prop_protocol_oracle (Policy.Platinum { thaw_on_fault = false }) "oracle: platinum policy");
    qtest
      (prop_protocol_oracle ~local_caches:true
         (Policy.Platinum { thaw_on_fault = false })
         "oracle: platinum policy + section-7 local caches");
    qtest
      (prop_protocol_oracle ~local_caches:true Policy.Never_move
         "oracle: static placement + section-7 local caches");
    qtest
      (prop_protocol_oracle ~local_caches:true Policy.Always_replicate
         "oracle: always-replicate + section-7 local caches");
    qtest (prop_protocol_oracle (Policy.Platinum { thaw_on_fault = true }) "oracle: platinum-thaw policy");
    qtest (prop_protocol_oracle Policy.Always_replicate "oracle: always-replicate policy");
    qtest (prop_protocol_oracle Policy.Never_move "oracle: static placement policy");
    qtest (prop_protocol_oracle Policy.Migrate_only "oracle: migrate-only policy");
    qtest (prop_protocol_oracle (Policy.Bolosky { max_migrations = 3 }) "oracle: bolosky policy");
    qtest (prop_protocol_oracle (Policy.Competitive { threshold = 3 }) "oracle: competitive policy");
  ]
