(* Golden determinism tests for the batched-transaction refactor.

   The expectations below were recorded from the pre-Memtxn seed tree.  The
   refactor moved every access path (word, block, strided) onto one batched
   transaction layer; its contract is that simulated cost never changes —
   only host wall-clock cost does.  These tests pin that contract: the same
   access stream must produce bit-identical simulated completion times and
   protocol counters through the new plumbing.

   Two groups:
   - "seed" rows replay the workloads with their original per-word /
     per-block access streams (the [`Word] access mode) and must match the
     values recorded before the refactor, forever.
   - "bulk" rows pin the converted ([`Txn]) workloads so later PRs can't
     silently change their simulated behaviour either.  Their expectations
     were recorded when the conversion landed.

   Plus qcheck properties that simultaneous Engine events fire in FIFO
   (sequence) order, which is what makes any of this reproducible. *)

module Runner = Platinum_runner.Runner
module Config = Platinum_machine.Config
module Counters = Platinum_core.Counters
module Coherent = Platinum_core.Coherent
module Engine = Platinum_sim.Engine
module Outcome = Platinum_workload.Outcome
module Gauss = Platinum_workload.Gauss
module Jacobi = Platinum_workload.Jacobi
module Backprop = Platinum_workload.Backprop

let qtest = QCheck_alcotest.to_alcotest

(* One line captures everything we pin: completion time, the workload's own
   measure of its timed section, and the protocol counters. *)
let fingerprint ~(out : Outcome.t) (r : Runner.result) =
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  Printf.sprintf
    "elapsed=%d work=%d rf=%d wf=%d vm=%d repl=%d migr=%d rmap=%d freeze=%d thaw=%d sd=%d atc=%d"
    r.Runner.elapsed out.Outcome.work_ns c.Counters.read_faults c.Counters.write_faults
    c.Counters.vm_faults c.Counters.replications c.Counters.migrations c.Counters.remote_maps
    c.Counters.freezes c.Counters.thaws c.Counters.shootdowns c.Counters.atc_reloads

let check_run ~what ~expected ~nprocs (out, main) =
  let config = Config.butterfly_plus ~nprocs () in
  let r = Runner.time ~config main in
  if not out.Outcome.ok then Alcotest.fail (what ^ ": " ^ out.Outcome.detail);
  Alcotest.(check string) what expected (fingerprint ~out r)

(* --- seed-identical runs (recorded before the refactor) --- *)

let test_gauss_seed () =
  check_run ~what:"gauss 12 procs" ~nprocs:12
    ~expected:
      "elapsed=637842400 work=623841880 rf=653 wf=69 vm=65 repl=645 migr=0 rmap=11 freeze=1 \
       thaw=0 sd=65 atc=0"
    (Gauss.make (Gauss.params ~n:64 ~nprocs:12 ()))

let test_jacobi_seed () =
  check_run ~what:"jacobi 4 procs" ~nprocs:4
    ~expected:
      "elapsed=34505880 work=23386600 rf=5 wf=13 vm=3 repl=2 migr=2 rmap=9 freeze=3 thaw=0 \
       sd=4 atc=0"
    (Jacobi.make (Jacobi.params ~n:32 ~iters:4 ~nprocs:4 ~bulk:false ()))

let test_backprop_seed () =
  check_run ~what:"backprop 4 procs" ~nprocs:4
    ~expected:
      "elapsed=10147840 work=4067320 rf=5 wf=7 vm=2 repl=1 migr=1 rmap=6 freeze=2 thaw=0 \
       sd=3 atc=0"
    (Backprop.make
       (Backprop.params ~units:16 ~patterns:2 ~epochs:1 ~settle_steps:1 ~nprocs:4 ~bulk:false ()))

(* --- bulk-mode runs (recorded when the conversion landed) ---

   Batching changes when each processor claims a memory module (one event
   per transaction instead of interleaved per-word events), so contended
   runs legitimately time differently from the seed stream; these rows pin
   the converted workloads' own determinism. *)

let test_jacobi_bulk () =
  check_run ~what:"jacobi 4 procs (bulk)" ~nprocs:4
    ~expected:
      "elapsed=34069320 work=22948840 rf=5 wf=13 vm=3 repl=2 migr=2 rmap=9 freeze=3 thaw=0 \
       sd=4 atc=0"
    (Jacobi.make (Jacobi.params ~n:32 ~iters:4 ~nprocs:4 ()))

let test_backprop_bulk () =
  check_run ~what:"backprop 4 procs (bulk)" ~nprocs:4
    ~expected:
      "elapsed=10109400 work=4087000 rf=5 wf=7 vm=2 repl=1 migr=1 rmap=6 freeze=2 thaw=0 \
       sd=3 atc=0"
    (Backprop.make
       (Backprop.params ~units:16 ~patterns:2 ~epochs:1 ~settle_steps:1 ~nprocs:4 ()))

(* --- engine FIFO properties --- *)

(* Events scheduled for the same instant fire in scheduling order. *)
let prop_engine_fifo_same_time =
  QCheck.Test.make ~name:"simultaneous events fire in seq order" ~count:200
    QCheck.(int_bound 200)
    (fun n ->
      let e = Engine.create () in
      let fired = ref [] in
      for i = 0 to n do
        Engine.schedule_at e ~at:42 (fun () -> fired := i :: !fired)
      done;
      Engine.run e;
      List.rev !fired = List.init (n + 1) Fun.id)

(* Mixed times: stable sort by time; ties keep scheduling order. *)
let prop_engine_fifo_mixed =
  QCheck.Test.make ~name:"equal-time events keep FIFO order under interleaving" ~count:200
    QCheck.(list (int_bound 20))
    (fun times ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iteri (fun i t -> Engine.schedule_at e ~at:t (fun () -> fired := (t, i) :: !fired)) times;
      Engine.run e;
      let got = List.rev !fired in
      let expect = List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) (List.mapi (fun i t -> (t, i)) times) in
      got = expect)

(* Events scheduled from inside a handler for the current instant still run
   after everything already queued for that instant. *)
let prop_engine_fifo_nested =
  QCheck.Test.make ~name:"events scheduled mid-instant run after earlier peers" ~count:100
    QCheck.(int_range 1 50)
    (fun n ->
      let e = Engine.create () in
      let fired = ref [] in
      Engine.schedule_at e ~at:7 (fun () ->
          fired := "first" :: !fired;
          for _ = 1 to n do
            Engine.schedule_after e ~delay:0 (fun () -> fired := "nested" :: !fired)
          done);
      Engine.schedule_at e ~at:7 (fun () -> fired := "second" :: !fired);
      Engine.run e;
      match List.rev !fired with
      | "first" :: "second" :: rest -> List.length rest = n && List.for_all (( = ) "nested") rest
      | _ -> false)

let suite =
  [
    ("golden: gauss (12 procs) matches the seed", `Quick, test_gauss_seed);
    ("golden: jacobi matches the seed", `Quick, test_jacobi_seed);
    ("golden: backprop matches the seed", `Quick, test_backprop_seed);
    ("golden: jacobi bulk stream is pinned", `Quick, test_jacobi_bulk);
    ("golden: backprop bulk stream is pinned", `Quick, test_backprop_bulk);
    qtest prop_engine_fifo_same_time;
    qtest prop_engine_fifo_mixed;
    qtest prop_engine_fifo_nested;
  ]
