(* The coherence sanitizer (PR 3): the invariant catalogue, the runtime
   monitor, the bounded model checker and the domain-safety lint. *)

module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Procset = Platinum_machine.Procset
module Frame = Platinum_phys.Frame
module Engine = Platinum_sim.Engine
module Ring = Platinum_sim.Ring
module Rights = Platinum_core.Rights
module Check = Platinum_core.Check
module Cpage = Platinum_core.Cpage
module Pmap = Platinum_core.Pmap
module Atc = Platinum_core.Atc
module Cmap = Platinum_core.Cmap
module Policy = Platinum_core.Policy
module Shootdown = Platinum_core.Shootdown
module Coherent = Platinum_core.Coherent
module Mc = Platinum_check.Mc
module Lint = Platinum_check.Lint

let qtest = QCheck_alcotest.to_alcotest

(* --- helpers --- *)

type env = {
  coh : Coherent.t;
  cm : Cmap.t;
}

let mk ?(nprocs = 4) ?(page_words = 8) ?(frames = 16) ?(monitored = false) () =
  let config = Config.butterfly_plus ~nprocs ~page_words () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let engine = Engine.create () in
  let machine = Machine.create config in
  let coh = Coherent.create machine ~engine ~policy ~frames_per_module:frames () in
  if monitored then Coherent.set_monitor coh (Some (Check.create_monitor ()));
  let cm = Coherent.new_aspace coh in
  { coh; cm }

let bind_pages env n =
  Array.init n (fun vpage ->
      let page = Coherent.new_cpage env.coh ~label:(Printf.sprintf "page%d" vpage) () in
      Coherent.bind env.coh env.cm ~vpage page Rights.Read_write;
      page)

let read env ?(now = 0) ~proc vaddr = Coherent.read_word env.coh ~now ~proc ~cmap:env.cm ~vaddr
let write env ?(now = 0) ~proc vaddr v = Coherent.write_word env.coh ~now ~proc ~cmap:env.cm ~vaddr v

let frame ?(mem_module = 0) ?(index = 0) ?(words = 4) () = Frame.create ~mem_module ~index ~words

(* A consistent single-copy view to corrupt per test. *)
let base_view ?(state = Check.Present1) ?copies ?copy_mask ?(write_mapped = false)
    ?(frozen = false) () =
  let copies = match copies with Some c -> c | None -> [ frame () ] in
  let copy_mask =
    match copy_mask with
    | Some m -> m
    | None -> Procset.of_list (List.map Frame.mem_module copies)
  in
  { Check.pv_id = 7; pv_state = state; pv_copies = copies; pv_copy_mask = copy_mask;
    pv_write_mapped = write_mapped; pv_frozen = frozen }

let expect_inv name view =
  match Check.check_page view with
  | Ok () -> Alcotest.failf "expected %s violation, page checked clean" name
  | Error f ->
    Alcotest.(check string) "invariant name" name f.Check.inv;
    Alcotest.(check bool) "message mentions the page" true
      (f.Check.cpage = Some view.Check.pv_id);
    (* the rendered message carries name and citation *)
    let msg = Check.render f in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "render has invariant name" true (contains msg name);
    Alcotest.(check bool) "render has citation" true (contains msg f.Check.cite)

(* --- the page-level invariant catalogue: each failure mode, by message --- *)

let test_clean_views () =
  List.iter
    (fun v ->
      match Check.check_page v with
      | Ok () -> ()
      | Error f -> Alcotest.failf "clean view rejected: %s" (Check.render f))
    [
      base_view ~state:Check.Empty ~copies:[] ();
      base_view ();
      base_view ~state:Check.Modified ~write_mapped:true ();
      base_view ~state:Check.Present_plus
        ~copies:[ frame ~mem_module:0 (); frame ~mem_module:1 () ]
        ();
      base_view ~frozen:true ();
    ]

let test_mask_list_agreement () =
  expect_inv "mask-list-agreement" (base_view ~copy_mask:(Procset.of_list [ 1 ]) ());
  expect_inv "mask-list-agreement" (base_view ~copy_mask:(Procset.of_list [ 0; 1 ]) ())

let test_one_copy_per_module () =
  expect_inv "one-copy-per-module"
    (base_view ~state:Check.Present_plus
       ~copies:[ frame ~mem_module:2 ~index:0 (); frame ~mem_module:2 ~index:1 () ]
       ~copy_mask:(Procset.of_list [ 2 ]) ())

let test_state_agreement () =
  expect_inv "state-agreement"
    (base_view ~state:Check.Present_plus ());
  expect_inv "state-agreement" (base_view ~state:Check.Modified ());
  expect_inv "state-agreement" (base_view ~state:Check.Empty ())

let test_single_writer () =
  expect_inv "single-writer"
    (base_view ~state:Check.Present_plus
       ~copies:[ frame ~mem_module:0 (); frame ~mem_module:1 () ]
       ~write_mapped:true ())

let test_frozen_single_copy () =
  expect_inv "frozen-single-copy"
    (base_view ~state:Check.Present_plus
       ~copies:[ frame ~mem_module:0 (); frame ~mem_module:1 () ]
       ~frozen:true ())

let test_replica_coherence () =
  let f0 = frame ~mem_module:0 () and f1 = frame ~mem_module:1 () in
  Frame.set f1 2 42;
  expect_inv "replica-coherence"
    (base_view ~state:Check.Present_plus ~copies:[ f0; f1 ] ())

let test_catalogue_documented () =
  List.iter
    (fun pi ->
      Alcotest.(check bool)
        (pi.Check.pi_name ^ " documented") true
        (String.length pi.Check.pi_doc > 0 && String.length pi.Check.pi_cite > 0))
    Check.page_invariants

(* --- delegation: Cpage's checker IS the catalogue --- *)

let test_cpage_delegates () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  let _ = read env ~proc:1 0 in
  (* healthy page: both agree it is fine *)
  Alcotest.(check bool) "cpage ok" true (Cpage.check_invariants pages.(0) = Ok ());
  (* corrupt the stored state: both notice, with the same structured fault *)
  pages.(0).Cpage.state <- Cpage.Modified;
  (match Cpage.check_faults pages.(0) with
  | Ok () -> Alcotest.fail "corruption missed"
  | Error f ->
    Alcotest.(check string) "via the catalogue" "state-agreement" f.Check.inv;
    (match Check.check_page (Cpage.to_view pages.(0)) with
    | Ok () -> Alcotest.fail "view checker disagrees"
    | Error f' -> Alcotest.(check string) "same fault" (Check.render f) (Check.render f')));
  Cpage.sync_state pages.(0)

(* --- machine-wide structured faults --- *)

let test_cmap_refmask_pmap () =
  let env = mk () in
  let _ = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  (* claim proc 2 holds a translation it does not have *)
  (match Cmap.find env.cm ~vpage:0 with
  | None -> Alcotest.fail "unbound"
  | Some ce -> ce.Cmap.refmask <- Procset.add 2 ce.Cmap.refmask);
  match Coherent.check_faults env.coh with
  | None -> Alcotest.fail "corruption missed"
  | Some f -> Alcotest.(check string) "inv" "refmask-pmap-agreement" f.Check.inv

let test_cmap_stale_pmap_entry () =
  let env = mk () in
  let _ = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  (* a Pmap entry for a processor the refmask does not know about *)
  let e = Pmap.find (Cmap.pmap env.cm ~proc:0) ~vpage:0 in
  let frame = (Option.get e).Pmap.frame in
  ignore (Pmap.install (Cmap.pmap env.cm ~proc:3) ~vpage:0 ~frame ~write_ok:false);
  match Coherent.check_faults env.coh with
  | None -> Alcotest.fail "corruption missed"
  | Some f -> Alcotest.(check string) "inv" "refmask-pmap-agreement" f.Check.inv

let test_replicas_read_only () =
  let env = mk () in
  let _ = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  let _ = read env ~now:10_000_000 ~proc:1 0 in
  (* two copies now; grant an illegal write translation *)
  (match Pmap.find (Cmap.pmap env.cm ~proc:0) ~vpage:0 with
  | None -> Alcotest.fail "no translation"
  | Some e -> e.Pmap.write_ok <- true);
  match Coherent.check_faults env.coh with
  | None -> Alcotest.fail "corruption missed"
  | Some f ->
    Alcotest.(check bool) "replicas imply read-only mappings" true
      (f.Check.inv = "replicas-read-only" || f.Check.inv = "write-flag-agreement")

let test_stale_atc () =
  let env = mk () in
  let _ = bind_pages env 1 in
  let _ = read env ~proc:0 0 in
  (* drop the Pmap entry behind the ATC's back: the cached translation is
     now stale — exactly what a missed shootdown would leave behind *)
  Pmap.remove (Cmap.pmap env.cm ~proc:0) ~vpage:0;
  (match Cmap.find env.cm ~vpage:0 with
  | None -> ()
  | Some ce -> ce.Cmap.refmask <- Procset.remove 0 ce.Cmap.refmask);
  match Coherent.check_faults env.coh with
  | None -> Alcotest.fail "stale ATC entry missed"
  | Some f -> Alcotest.(check string) "inv" "stale-translation" f.Check.inv

let test_frozen_list_agreement () =
  let env = mk () in
  let pages = bind_pages env 1 in
  let _ = write env ~proc:0 0 1 in
  pages.(0).Cpage.frozen <- true (* frozen flag without list membership *);
  (match Coherent.check_faults env.coh with
  | None -> Alcotest.fail "corruption missed"
  | Some f -> Alcotest.(check string) "inv" "frozen-list-agreement" f.Check.inv);
  pages.(0).Cpage.frozen <- false

(* --- the runtime monitor --- *)

let test_monitor_silent_on_healthy_run () =
  let env = mk ~monitored:true () in
  let _ = bind_pages env 2 in
  (* reads, writes, migration, replication, freeze, thaw, daemon *)
  let _ = write env ~proc:0 0 1 in
  let _ = read env ~now:1_000_000 ~proc:1 0 in
  let _ = write env ~now:2_000_000 ~proc:1 0 2 in
  let _ = write env ~now:3_000_000 ~proc:2 8 3 in
  let _ = read env ~now:4_000_000 ~proc:3 8 in
  ignore (Coherent.advise env.coh ~now:5_000_000 ~proc:0 ~cmap:env.cm ~vpage:0 Coherent.Advise_freeze);
  ignore (Coherent.advise env.coh ~now:6_000_000 ~proc:0 ~cmap:env.cm ~vpage:0 Coherent.Advise_thaw);
  Coherent.thaw_all env.coh ~now:7_000_000;
  ignore (Coherent.unbind env.coh ~now:8_000_000 env.cm ~vpage:1);
  (* the trace recorded the activity *)
  match Coherent.monitor env.coh with
  | None -> Alcotest.fail "monitor not installed"
  | Some m -> Alcotest.(check bool) "trace non-empty" true (Check.trace m <> [])

let test_monitor_catches_seeded_mutation () =
  (* The satellite regression: with the deliberately broken transition
     (write-invalidate forgets to clear the reference mask), the monitor
     must raise on the very next sweep — and the violation must carry a
     replayable event prefix. *)
  let env = mk ~monitored:true () in
  let _ = bind_pages env 1 in
  Fun.protect
    ~finally:(fun () -> Shootdown.test_skip_refmask_clear := false)
    (fun () ->
      Shootdown.test_skip_refmask_clear := true;
      let _ = write env ~proc:0 0 1 in
      let _ = read env ~now:1_000_000 ~proc:1 0 in
      match write env ~now:2_000_000 ~proc:0 0 2 with
      | _ -> Alcotest.fail "seeded mutation not caught"
      | exception Check.Violation v ->
        Alcotest.(check string) "inv" "refmask-pmap-agreement" v.Check.v_fault.Check.inv;
        Alcotest.(check bool) "replayable prefix present" true (v.Check.v_trace <> []);
        let msg = Check.violation_message v in
        Alcotest.(check bool) "message cites the paper" true
          (String.length msg > 0 && v.Check.v_fault.Check.cite = "§3.1"))

let test_monitor_trace_is_bounded () =
  let m = Check.create_monitor ~capacity:4 () in
  for i = 1 to 10 do
    Check.note m ~now:i (Check.Request { proc = 0; aspace = 0; vpage = i; write = false })
  done;
  let tr = Check.trace m in
  Alcotest.(check int) "bounded" 4 (List.length tr);
  (* oldest first, and the oldest retained entry is #7 of 10 *)
  Alcotest.(check (list int)) "kept the newest, in order" [ 7; 8; 9; 10 ]
    (List.map fst tr)

let test_ring () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Ring.length r);
  List.iter (fun i -> Ring.push r i) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "capped" 3 (Ring.length r);
  Alcotest.(check int) "total pushes counted" 5 (Ring.pushed r);
  Alcotest.(check (list int)) "oldest first" [ 3; 4; 5 ] (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (Ring.to_list r)

let test_env_enabled () =
  (* documented parsing: unset / "" / "0" are off, anything else is on —
     we can only exercise the current process state here *)
  let expected =
    match Sys.getenv_opt "PLATINUM_CHECK" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  Alcotest.(check bool) "env parsing" expected (Check.env_enabled ())

(* --- the model checker --- *)

let test_mc_replay_deterministic () =
  let ops = [ Mc.Write { proc = 0; page = 0 }; Mc.Read { proc = 1; page = 0 };
              Mc.Freeze { page = 0 }; Mc.Daemon_thaw; Mc.Write { proc = 1; page = 0 } ]
  in
  match Mc.replay ~nprocs:2 ~npages:1 ops, Mc.replay ~nprocs:2 ~npages:1 ops with
  | Ok a, Ok b -> Alcotest.(check string) "same fingerprint" a b
  | Error e, _ | _, Error e -> Alcotest.failf "replay failed: %s" e

let test_mc_explores_clean () =
  let r = Mc.explore ~nprocs:2 ~npages:1 ~depth:4 () in
  Alcotest.(check int) "no violations" 0 r.Mc.total_violations;
  Alcotest.(check bool) "non-trivial state count" true (r.Mc.states > 10);
  Alcotest.(check bool) "not truncated" true (not r.Mc.truncated);
  (* depth-0 state is counted *)
  Alcotest.(check int) "root state" 1 r.Mc.states_at_depth.(0)

let test_mc_catches_mutation () =
  let r = Mc.explore ~mutate:true ~nprocs:2 ~npages:1 ~depth:4 () in
  Alcotest.(check bool) "seeded bug found" true (r.Mc.total_violations > 0);
  Alcotest.(check bool) "counterexamples reported" true (r.Mc.violations <> []);
  (* and the knob was restored *)
  Alcotest.(check bool) "knob restored" false !Shootdown.test_skip_refmask_clear;
  (* every counterexample replays to the same violation *)
  List.iter
    (fun cx ->
      Fun.protect
        ~finally:(fun () -> Shootdown.test_skip_refmask_clear := false)
        (fun () ->
          Shootdown.test_skip_refmask_clear := true;
          match Mc.replay ~nprocs:2 ~npages:1 cx.Mc.cx_ops with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "counterexample [%s] no longer fails"
                      (Mc.ops_to_string cx.Mc.cx_ops)))
    r.Mc.violations

(* QCheck: on random request sequences the monitor stays silent and reads
   are sequentially consistent (Mc.replay checks both; 2 procs, 1 page). *)
let prop_random_sequences_clean =
  let op_gen =
    let cat = Array.of_list (Mc.catalogue ~nprocs:2 ~npages:1) in
    QCheck.Gen.(map (fun i -> cat.(i)) (int_bound (Array.length cat - 1)))
  in
  let ops_arb =
    QCheck.make
      ~print:(fun ops -> Mc.ops_to_string ops)
      QCheck.Gen.(list_size (int_bound 12) op_gen)
  in
  QCheck.Test.make ~name:"monitor silent + reads SC on random sequences" ~count:100 ops_arb
    (fun ops ->
      match Mc.replay ~nprocs:2 ~npages:1 ops with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_reportf "violation on [%s]: %s" (Mc.ops_to_string ops) e)

(* --- the domain-safety lint --- *)

let lint_src = Lint.scan_source ~file:"test.ml"

let test_lint_flags_toplevel_refs () =
  let findings =
    lint_src
      "let counter = ref 0\n\
       let table = Hashtbl.create 16\n\
       let buf = Buffer.create 80\n\
       let scratch = Array.make 4 0\n"
  in
  Alcotest.(check (list string)) "all flagged"
    [ "counter:ref"; "table:Hashtbl.create"; "buf:Buffer.create"; "scratch:Array.make" ]
    (List.map (fun f -> f.Lint.name ^ ":" ^ f.Lint.construct) findings);
  Alcotest.(check bool) "all violations" true
    (List.for_all (fun f -> f.Lint.allowed = None) findings)

let test_lint_allows_functions_and_values () =
  let findings =
    lint_src
      "let make () = ref 0\n\
       let find tbl k = Hashtbl.create k\n\
       let f = fun x -> ref x\n\
       let g = function None -> ref 0 | Some r -> r\n\
       let answer = 42\n\
       let pair = (1, 2)\n\
       let indented_is_local =\n\
      \  let r = ref 0 in\n\
      \  !r\n"
  in
  (* [indented_is_local] binds a ref inside its body — still a fresh one
     per evaluation of the toplevel binding; it IS retained state.  The
     lint flags it: the rhs is a value and mentions [ref]. *)
  Alcotest.(check (list string)) "only the retained ref" [ "indented_is_local:ref" ]
    (List.map (fun f -> f.Lint.name ^ ":" ^ f.Lint.construct) findings)

let test_lint_flags_dls_key () =
  (* Domain.DLS keys are per-domain containers — sanctioned only with an
     explicit marker (the coalescing fast path's context is the one
     legitimate use, lib/kernel/fastpath.ml). *)
  let findings = lint_src "let key = Domain.DLS.new_key (fun () -> make_ctx ())\n" in
  Alcotest.(check (list string)) "DLS key flagged as violation"
    [ "key:Domain.DLS.new_key:VIOLATION" ]
    (List.map
       (fun f ->
         f.Lint.name ^ ":" ^ f.Lint.construct ^ ":"
         ^ Option.value ~default:"VIOLATION" f.Lint.allowed)
       findings)

let test_lint_flags_new_constructs () =
  (* PR 8 gap-fill: containers the original catalogue missed *)
  let findings =
    lint_src
      "let samples = Float.Array.create 64\n\
       let lut = Hashtbl.of_list [ (1, \"a\") ]\n\
       let joined = Array.append [| 1 |] [| 2 |]\n"
  in
  Alcotest.(check (list string)) "all flagged"
    [ "samples:Float.Array.create"; "lut:Hashtbl.of_list"; "joined:Array.append" ]
    (List.map (fun f -> f.Lint.name ^ ":" ^ f.Lint.construct) findings);
  Alcotest.(check bool) "all violations" true
    (List.for_all (fun f -> f.Lint.allowed = None) findings)

let test_lint_allows_atomic_and_marker () =
  let findings =
    lint_src
      "let next_id = Atomic.make 0\n\
       \n\
       (* lint: allow toplevel-state -- single-domain test knob *)\n\
       let knob = ref false\n"
  in
  Alcotest.(check (list string)) "both allowed"
    [ "next_id:Atomic"; "knob:marker" ]
    (List.map
       (fun f -> f.Lint.name ^ ":" ^ Option.value ~default:"VIOLATION" f.Lint.allowed)
       findings)

let test_lint_ignores_comments_and_strings () =
  let findings =
    lint_src
      "(* let bad = ref 0 *)\n\
       let s = \"Hashtbl.create 16\"\n\
       let doc = \"a ref in a string\"\n\
       (* nested (* ref *) comment *)\n\
       let ok = 1\n"
  in
  Alcotest.(check int) "nothing flagged" 0 (List.length findings)

let test_lint_strip_preserves_lines () =
  let src = "let a = 1 (* a\n   multiline\n   comment *)\nlet b = \"x\\ny\"\n" in
  let stripped = Lint.strip src in
  Alcotest.(check int) "same line count"
    (List.length (String.split_on_char '\n' src))
    (List.length (String.split_on_char '\n' stripped));
  Alcotest.(check bool) "comment text gone" false
    (let has sub s =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "multiline" stripped)

let test_lint_repo_is_clean () =
  (* the satellite gate, as a test: the library tree has no unmarked
     toplevel mutable state *)
  let files = Lint.files_under "../lib" in
  Alcotest.(check bool) "found the library sources" true (List.length files > 30);
  let bad = List.filter (fun f -> f.Lint.allowed = None) (Lint.scan_files files) in
  List.iter (fun f -> Format.eprintf "%a@." Lint.pp_finding f) bad;
  Alcotest.(check int) "no violations in lib/" 0 (List.length bad)

let suite =
  [
    ("catalogue: clean views pass", `Quick, test_clean_views);
    ("catalogue: mask-list-agreement", `Quick, test_mask_list_agreement);
    ("catalogue: one-copy-per-module", `Quick, test_one_copy_per_module);
    ("catalogue: state-agreement", `Quick, test_state_agreement);
    ("catalogue: single-writer", `Quick, test_single_writer);
    ("catalogue: frozen-single-copy", `Quick, test_frozen_single_copy);
    ("catalogue: replica-coherence", `Quick, test_replica_coherence);
    ("catalogue: every invariant documented", `Quick, test_catalogue_documented);
    ("delegation: Cpage checks via the catalogue", `Quick, test_cpage_delegates);
    ("machine: refmask without Pmap entry", `Quick, test_cmap_refmask_pmap);
    ("machine: Pmap entry outside refmask", `Quick, test_cmap_stale_pmap_entry);
    ("machine: replicas imply read-only mappings", `Quick, test_replicas_read_only);
    ("machine: stale ATC translation", `Quick, test_stale_atc);
    ("machine: frozen-list agreement", `Quick, test_frozen_list_agreement);
    ("monitor: silent on a healthy run", `Quick, test_monitor_silent_on_healthy_run);
    ("monitor: catches the seeded mutation", `Quick, test_monitor_catches_seeded_mutation);
    ("monitor: trace is bounded", `Quick, test_monitor_trace_is_bounded);
    ("monitor: ring buffer", `Quick, test_ring);
    ("monitor: PLATINUM_CHECK parsing", `Quick, test_env_enabled);
    ("mc: replay is deterministic", `Quick, test_mc_replay_deterministic);
    ("mc: clean exploration", `Quick, test_mc_explores_clean);
    ("mc: mutation is caught", `Quick, test_mc_catches_mutation);
    qtest prop_random_sequences_clean;
    ("lint: flags toplevel mutable state", `Quick, test_lint_flags_toplevel_refs);
    ("lint: functions and plain values pass", `Quick, test_lint_allows_functions_and_values);
    ("lint: gap-fill constructs flagged", `Quick, test_lint_flags_new_constructs);
    ("lint: Atomic and marker allowed", `Quick, test_lint_allows_atomic_and_marker);
    ("lint: Domain.DLS keys flagged", `Quick, test_lint_flags_dls_key);
    ("lint: comments and strings ignored", `Quick, test_lint_ignores_comments_and_strings);
    ("lint: strip preserves line structure", `Quick, test_lint_strip_preserves_lines);
    ("lint: the library tree is clean", `Quick, test_lint_repo_is_clean);
  ]
