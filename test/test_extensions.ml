(* Tests for the paper's sketched extensions: placement advice (§9),
   adaptive defrost (§4.2's priority-queue alternative), RPC (§4.1's
   third option), and the Jacobi grid workload. *)

module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Engine = Platinum_sim.Engine
module Rights = Platinum_core.Rights
module Cpage = Platinum_core.Cpage
module Cmap = Platinum_core.Cmap
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent
module Counters = Platinum_core.Counters
module Defrost = Platinum_core.Defrost
module Fault = Platinum_core.Fault
module Api = Platinum_kernel.Api
module Memsys = Platinum_kernel.Memsys
module Rpc = Platinum_kernel.Rpc
module Runner = Platinum_runner.Runner
module Report = Platinum_stats.Report
module Outcome = Platinum_workload.Outcome
module Jacobi = Platinum_workload.Jacobi

let mk ?(nprocs = 4) () =
  let config = Config.butterfly_plus ~nprocs ~page_words:8 () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let engine = Engine.create () in
  let coh =
    Coherent.create (Machine.create config) ~engine ~policy ~frames_per_module:16 ()
  in
  let cm = Coherent.new_aspace coh in
  let page = Coherent.new_cpage coh () in
  Coherent.bind coh cm ~vpage:0 page Rights.Read_write;
  (coh, cm, page, engine)

(* --- advice (core level) --- *)

let test_advise_freeze () =
  let coh, cm, page, _ = mk () in
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 7);
  let lat = Coherent.advise coh ~now:1_000 ~proc:0 ~cmap:cm ~vpage:0 Coherent.Advise_freeze in
  Alcotest.(check bool) "frozen" true page.Cpage.frozen;
  Alcotest.(check bool) "cost charged" true (lat > 0);
  (* Still readable and writable, remotely. *)
  let v, _ = Coherent.read_word coh ~now:10_000 ~proc:2 ~cmap:cm ~vaddr:0 in
  Alcotest.(check int) "data intact" 7 v;
  Alcotest.(check int) "single copy" 1 (Cpage.ncopies page);
  Alcotest.(check bool) "invariants" true (Coherent.check_invariants coh = Ok ())

let test_advise_freeze_collapses_replicas () =
  let coh, cm, page, _ = mk () in
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 7);
  ignore (Coherent.read_word coh ~now:100_000_000 ~proc:1 ~cmap:cm ~vaddr:0);
  ignore (Coherent.read_word coh ~now:200_000_000 ~proc:2 ~cmap:cm ~vaddr:0);
  Alcotest.(check int) "3 copies before" 3 (Cpage.ncopies page);
  ignore (Coherent.advise coh ~now:300_000_000 ~proc:0 ~cmap:cm ~vpage:0 Coherent.Advise_freeze);
  Alcotest.(check int) "one copy after" 1 (Cpage.ncopies page);
  Alcotest.(check bool) "frozen" true page.Cpage.frozen;
  let v, _ = Coherent.read_word coh ~now:400_000_000 ~proc:3 ~cmap:cm ~vaddr:0 in
  Alcotest.(check int) "data survived the collapse" 7 v;
  Alcotest.(check bool) "invariants" true (Coherent.check_invariants coh = Ok ())

let test_advise_thaw () =
  let coh, cm, page, _ = mk () in
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 7);
  ignore (Coherent.advise coh ~now:1_000 ~proc:0 ~cmap:cm ~vpage:0 Coherent.Advise_freeze);
  ignore (Coherent.advise coh ~now:2_000 ~proc:0 ~cmap:cm ~vpage:0 Coherent.Advise_thaw);
  Alcotest.(check bool) "thawed" false page.Cpage.frozen;
  (* A later read replicates again (advice thaw, like the daemon's, is
     not a protocol invalidation). *)
  ignore (Coherent.read_word coh ~now:100_000_000 ~proc:1 ~cmap:cm ~vaddr:0);
  Alcotest.(check int) "replicable after thaw" 2 (Cpage.ncopies page)

let test_advise_home () =
  let coh, cm, page, _ = mk () in
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 7);
  ignore (Coherent.read_word coh ~now:100_000_000 ~proc:1 ~cmap:cm ~vaddr:0);
  ignore (Coherent.advise coh ~now:200_000_000 ~proc:0 ~cmap:cm ~vpage:0 (Coherent.Advise_home 3));
  Alcotest.(check int) "one copy" 1 (Cpage.ncopies page);
  Alcotest.(check bool) "on module 3" true (Cpage.has_copy_on page 3);
  let v, _ = Coherent.read_word coh ~now:300_000_000 ~proc:3 ~cmap:cm ~vaddr:0 in
  Alcotest.(check int) "data moved intact" 7 v;
  Alcotest.(check bool) "invariants" true (Coherent.check_invariants coh = Ok ())

let test_advise_home_empty_page () =
  let coh, cm, page, _ = mk () in
  ignore (Coherent.advise coh ~now:0 ~proc:0 ~cmap:cm ~vpage:0 (Coherent.Advise_home 2));
  Alcotest.(check bool) "materialized on module 2" true (Cpage.has_copy_on page 2);
  let v, _ = Coherent.read_word coh ~now:1_000_000 ~proc:0 ~cmap:cm ~vaddr:0 in
  Alcotest.(check int) "zero filled" 0 v

let test_advise_unmapped_raises () =
  let coh, cm, _, _ = mk () in
  Alcotest.(check bool) "unmapped advice raises" true
    (try
       ignore (Coherent.advise coh ~now:0 ~proc:0 ~cmap:cm ~vpage:9 Coherent.Advise_thaw);
       false
     with Fault.Unmapped _ -> true)

(* --- advice through the kernel API --- *)

let test_api_advise_roundtrip () =
  let invals = ref (-1) in
  let r =
    Runner.time (fun () ->
        let a = Api.alloc_pages 1 in
        Api.write a 1;
        Api.advise a 1 Memsys.Freeze;
        (* Writes from everywhere now go to one pinned copy: no protocol
           invalidations at all. *)
        let worker me = Api.write (a + me) me in
        Api.spawn_join_all ~procs:[ 0; 1; 2; 3 ] (List.init 4 (fun me _ -> worker me)))
  in
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  invals := c.Platinum_core.Counters.shootdowns;
  (* the only shootdown is the advise itself *)
  Alcotest.(check bool) "no invalidation traffic after the hint" true (!invals <= 1);
  let frozen = List.filter (fun row -> row.Report.frozen_now) r.Runner.report.Report.pages in
  Alcotest.(check bool) "the page is frozen" true
    (List.exists (fun row -> row.Report.label = "heap[0]") frozen)

let test_api_advise_home_places_data () =
  let home = ref (-1) in
  let r =
    Runner.time (fun () ->
        let a = Api.alloc_pages 1 in
        Api.write a 5;
        Api.advise a 1 (Memsys.Home 7))
  in
  Coherent.iter_cpages
    (fun p ->
      if p.Cpage.label = "heap[0]" then
        home := (match Cpage.copies p with [ f ] -> Platinum_phys.Frame.mem_module f | _ -> -2))
    r.Runner.setup.Runner.coherent;
  Alcotest.(check int) "placed on node 7" 7 !home

(* --- adaptive defrost --- *)

let freeze_via_protocol coh cm page =
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 1);
  ignore (Coherent.read_word coh ~now:1_000 ~proc:1 ~cmap:cm ~vaddr:0);
  ignore (Coherent.write_word coh ~now:2_000 ~proc:0 ~cmap:cm ~vaddr:0 2);
  ignore (Coherent.read_word coh ~now:3_000 ~proc:1 ~cmap:cm ~vaddr:0);
  Alcotest.(check bool) "setup: frozen" true page.Cpage.frozen

let test_adaptive_thaws_at_deadline () =
  let coh, cm, page, engine = mk () in
  Defrost.install ~mode:Defrost.default_adaptive coh engine;
  freeze_via_protocol coh cm page;
  (* initial_t2 = 100 ms: not thawed before, thawed after. *)
  Engine.run_until engine 50_000_000;
  Alcotest.(check bool) "still frozen at 50ms" true page.Cpage.frozen;
  Engine.run_until engine 150_000_000;
  Alcotest.(check bool) "thawed by its own deadline" false page.Cpage.frozen

let test_adaptive_backs_off_on_refreeze () =
  let coh, cm, page, engine = mk () in
  Defrost.install ~mode:Defrost.default_adaptive coh engine;
  freeze_via_protocol coh cm page;
  Alcotest.(check int) "initial per-page t2" 100_000_000 page.Cpage.adaptive_t2;
  Engine.run_until engine 110_000_000;
  Alcotest.(check bool) "thawed once" false page.Cpage.frozen;
  (* Immediately refreeze (the thaw was wrong: still write-shared):
     replicate, invalidate, and come back inside t1. *)
  let t = 110_500_000 in
  ignore (Coherent.read_word coh ~now:t ~proc:1 ~cmap:cm ~vaddr:0);
  ignore (Coherent.write_word coh ~now:(t + 1_000) ~proc:0 ~cmap:cm ~vaddr:0 3);
  ignore (Coherent.read_word coh ~now:(t + 2_000) ~proc:1 ~cmap:cm ~vaddr:0);
  Alcotest.(check bool) "refrozen" true page.Cpage.frozen;
  Alcotest.(check int) "per-page t2 doubled" 200_000_000 page.Cpage.adaptive_t2

let test_adaptive_ignores_stale_wakeups () =
  let coh, cm, page, engine = mk () in
  Defrost.install ~mode:Defrost.default_adaptive coh engine;
  freeze_via_protocol coh cm page;
  (* Thaw manually before the daemon's deadline; then refreeze.  The
     stale wake-up must not thaw the new freeze early. *)
  Coherent.thaw_page coh ~now:10_000_000 page;
  let t = 20_000_000 in
  ignore (Coherent.read_word coh ~now:t ~proc:1 ~cmap:cm ~vaddr:0);
  ignore (Coherent.write_word coh ~now:(t + 1_000) ~proc:0 ~cmap:cm ~vaddr:0 3);
  ignore (Coherent.read_word coh ~now:(t + 2_000) ~proc:1 ~cmap:cm ~vaddr:0);
  Alcotest.(check bool) "refrozen" true page.Cpage.frozen;
  (* The first freeze's wake-up fires around t=103ms; the refreeze came
     within the 50ms window, so its own deadline is ~20ms + 200ms. *)
  Engine.run_until engine 150_000_000;
  Alcotest.(check bool) "stale wakeup ignored" true page.Cpage.frozen;
  Engine.run_until engine 250_000_000;
  Alcotest.(check bool) "thawed at its own deadline" false page.Cpage.frozen

let test_adaptive_in_full_run () =
  (* The phase-change pattern under adaptive defrost: frozen in phase 1,
     thawed in time for phase 2 without any periodic sweep. *)
  let out, main = Platinum_workload.Patterns.phase_change ~nprocs:4 ~pages:1 ~rounds:50 in
  let r =
    Runner.time
      ~defrost:
        (Defrost.Adaptive
           { initial_t2 = 100_000_000; max_t2 = 1_000_000_000; refreeze_window = 50_000_000 })
      main
  in
  Alcotest.(check bool) "pattern ok" true out.Outcome.ok;
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  Alcotest.(check bool) "froze" true (c.Counters.freezes >= 1);
  Alcotest.(check bool) "adaptively thawed" true (c.Counters.thaws >= 1)

(* --- RPC --- *)

let test_rpc_basic () =
  Runner.time (fun () ->
      let server = Rpc.serve ~proc:2 (fun args -> Array.map (fun x -> x * 2) args) in
      let reply = Rpc.call server [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "doubled" [| 2; 4; 6 |] reply;
      Rpc.shutdown server)
  |> ignore

let test_rpc_serializes_handler () =
  (* Concurrent calls from many clients are executed one at a time by the
     server thread: a shared counter needs no lock. *)
  let final = ref 0 in
  Runner.time (fun () ->
      let counter = Api.alloc 1 in
      let server =
        Rpc.serve ~proc:0 (fun _ ->
            let v = Api.read counter in
            Api.compute 100_000 (* a window for races, were there any *);
            Api.write counter (v + 1);
            [| v + 1 |])
      in
      let client me =
        for _ = 1 to 5 do
          ignore (Rpc.call server [| me |])
        done
      in
      Api.spawn_join_all ~procs:[ 1; 2; 3 ] (List.init 3 (fun me _ -> client me));
      Rpc.shutdown server;
      final := Api.read counter)
  |> ignore;
  Alcotest.(check int) "no lost updates" 15 !final

let test_rpc_async_overlap () =
  Runner.time (fun () ->
      let server = Rpc.serve ~proc:3 (fun a -> Api.compute 5_000_000; a) in
      let t0 = Api.now () in
      let pending = List.init 4 (fun i -> Rpc.call_async server [| i |]) in
      (* All four requests are in flight; total should be ~4 service
         times, not 4 * (round trip + service). *)
      let replies = List.map (fun f -> f ()) pending in
      let elapsed = Api.now () - t0 in
      List.iteri
        (fun i r -> Alcotest.(check (array int)) "reply in order" [| i |] r)
        replies;
      Alcotest.(check bool) "pipelined" true (elapsed < 40_000_000);
      Rpc.shutdown server)
  |> ignore

(* --- Jacobi --- *)

let test_jacobi_correct () =
  List.iter
    (fun (n, nprocs, iters) ->
      let out, main = Jacobi.make (Jacobi.params ~n ~iters ~nprocs ()) in
      ignore (Runner.time main);
      if not out.Outcome.ok then Alcotest.fail out.Outcome.detail)
    [ (32, 1, 5); (32, 4, 5); (64, 8, 4); (33, 3, 3) ]

let test_jacobi_boundary_sharing () =
  let out, main = Jacobi.make (Jacobi.params ~n:64 ~iters:6 ~nprocs:4 ()) in
  let r = Runner.time main in
  Alcotest.(check bool) "ok" true out.Outcome.ok;
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  (* Boundary rows are re-replicated and re-invalidated across
     iterations. *)
  Alcotest.(check bool) "boundary replication happened" true (c.Counters.replications > 10);
  Alcotest.(check bool) "and invalidation when owners rewrite" true
    (c.Counters.shootdowns > 5)

let suite =
  [
    ("advise: freeze", `Quick, test_advise_freeze);
    ("advise: freeze collapses replicas", `Quick, test_advise_freeze_collapses_replicas);
    ("advise: thaw", `Quick, test_advise_thaw);
    ("advise: home", `Quick, test_advise_home);
    ("advise: home on an empty page", `Quick, test_advise_home_empty_page);
    ("advise: unmapped raises", `Quick, test_advise_unmapped_raises);
    ("advise: freeze hint kills invalidation traffic", `Quick, test_api_advise_roundtrip);
    ("advise: home hint places data", `Quick, test_api_advise_home_places_data);
    ("adaptive defrost: thaws at the deadline", `Quick, test_adaptive_thaws_at_deadline);
    ("adaptive defrost: backs off on refreeze", `Quick, test_adaptive_backs_off_on_refreeze);
    ("adaptive defrost: ignores stale wakeups", `Quick, test_adaptive_ignores_stale_wakeups);
    ("adaptive defrost: full run", `Quick, test_adaptive_in_full_run);
    ("rpc: basic round trip", `Quick, test_rpc_basic);
    ("rpc: serializes the handler", `Quick, test_rpc_serializes_handler);
    ("rpc: async calls pipeline", `Quick, test_rpc_async_overlap);
    ("jacobi: correct", `Quick, test_jacobi_correct);
    ("jacobi: boundary sharing", `Quick, test_jacobi_boundary_sharing);
  ]
