(* Differential tests for the fault-injection plane (DESIGN.md §4d).

   Three contracts pinned here:

   1. Determinism: a fault schedule is a pure function of (seed, rate).
      Two runs of the same workload with the same injector config must
      produce bit-identical protocol fingerprints AND bit-identical
      injector counters — no host-dependent state leaks into the plane.

   2. Idle plane ≡ no plane: with rate 0.0 the injector is attached but
      must never consume its RNG stream, so the run reproduces the
      pinned goldens from test_golden.ml exactly, byte for byte, and
      reports zero injected faults.

   3. No partial completion: under heavy injection (dropped IPIs,
      aborted transfers, module outages) every recovery path must leave
      the protocol in a state indistinguishable from a fault-free one —
      random operation sequences against the sequential-consistency
      oracle, with the PR 3 invariant monitor armed.  The monitor's
      per-target shootdown completion and stale-translation checks are
      the oracle for "retried fully or not at all". *)

module Runner = Platinum_runner.Runner
module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Engine = Platinum_sim.Engine
module Inject = Platinum_sim.Inject
module Check = Platinum_core.Check
module Coherent = Platinum_core.Coherent
module Counters = Platinum_core.Counters
module Policy = Platinum_core.Policy
module Rights = Platinum_core.Rights
module Outcome = Platinum_workload.Outcome
module Jacobi = Platinum_workload.Jacobi
module Backprop = Platinum_workload.Backprop

let qtest = QCheck_alcotest.to_alcotest

(* Same shape as test_golden.ml: completion time, timed phase, protocol
   counters. *)
let fingerprint ~(out : Outcome.t) (r : Runner.result) =
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  Printf.sprintf
    "elapsed=%d work=%d rf=%d wf=%d vm=%d repl=%d migr=%d rmap=%d freeze=%d thaw=%d sd=%d atc=%d"
    r.Runner.elapsed out.Outcome.work_ns c.Counters.read_faults c.Counters.write_faults
    c.Counters.vm_faults c.Counters.replications c.Counters.migrations c.Counters.remote_maps
    c.Counters.freezes c.Counters.thaws c.Counters.shootdowns c.Counters.atc_reloads

(* One injected run with the monitor armed; returns the protocol
   fingerprint, the injector's counter fingerprint, and the fault count. *)
let run_injected ~seed ~rate (out, main) =
  let config = Config.butterfly_plus ~nprocs:4 () in
  let setup = Runner.make ~config ~inject:(Inject.config ~seed ~rate ()) () in
  Coherent.set_monitor setup.Runner.coherent (Some (Check.create_monitor ()));
  let r = Runner.run setup ~main in
  if not out.Outcome.ok then Alcotest.fail ("workload self-check: " ^ out.Outcome.detail);
  let inj =
    match Machine.inject setup.Runner.machine with Some i -> i | None -> assert false
  in
  (fingerprint ~out r, Inject.fingerprint inj, Inject.faults_injected inj)

(* --- 1. differential determinism --- *)

let test_deterministic_replay () =
  let jacobi () = Jacobi.make (Jacobi.params ~n:32 ~iters:4 ~nprocs:4 ()) in
  let fp1, inj1, faults1 = run_injected ~seed:7L ~rate:0.05 (jacobi ()) in
  let fp2, inj2, faults2 = run_injected ~seed:7L ~rate:0.05 (jacobi ()) in
  Alcotest.(check bool) "the schedule actually injected faults" true (faults1 > 0);
  Alcotest.(check string) "protocol fingerprint replays" fp1 fp2;
  Alcotest.(check string) "injector counters replay" inj1 inj2;
  Alcotest.(check int) "fault count replays" faults1 faults2

let test_different_seed_diverges () =
  (* Not a strict requirement of the plane, but if two seeds gave the
     same schedule the differential suite would be vacuous. *)
  let jacobi () = Jacobi.make (Jacobi.params ~n:32 ~iters:4 ~nprocs:4 ()) in
  let _, inj1, _ = run_injected ~seed:7L ~rate:0.05 (jacobi ()) in
  let _, inj2, _ = run_injected ~seed:8L ~rate:0.05 (jacobi ()) in
  Alcotest.(check bool) "seeds 7 and 8 draw different schedules" true (inj1 <> inj2)

(* --- 2. rate 0.0 reproduces the goldens exactly --- *)

let check_idle_plane ~what ~expected (out, main) =
  let fp, _, faults = run_injected ~seed:99L ~rate:0.0 (out, main) in
  Alcotest.(check int) (what ^ ": idle plane injects nothing") 0 faults;
  Alcotest.(check string) (what ^ ": matches the fault-free golden") expected fp

let test_rate0_jacobi_golden () =
  check_idle_plane ~what:"jacobi 4 procs (bulk)"
    ~expected:
      "elapsed=34069320 work=22948840 rf=5 wf=13 vm=3 repl=2 migr=2 rmap=9 freeze=3 thaw=0 \
       sd=4 atc=0"
    (Jacobi.make (Jacobi.params ~n:32 ~iters:4 ~nprocs:4 ()))

let test_rate0_backprop_golden () =
  check_idle_plane ~what:"backprop 4 procs (bulk)"
    ~expected:
      "elapsed=10109400 work=4087000 rf=5 wf=7 vm=2 repl=1 migr=1 rmap=6 freeze=2 thaw=0 \
       sd=3 atc=0"
    (Backprop.make
       (Backprop.params ~units:16 ~patterns:2 ~epochs:1 ~settle_steps:1 ~nprocs:4 ()))

(* --- 3. random ops under heavy injection: SC + invariants survive --- *)

(* A small direct-Coherent system in the style of Check.Mc, with an
   injection plane attached to the machine and the monitor armed. *)
type sys = {
  coh : Coherent.t;
  cm : Platinum_core.Cmap.t;
  expected : int array;  (* sequential-consistency oracle, per page *)
}

let nprocs = 4
let npages = 3
let page_words = 4

let mk_sys ~seed ~rate =
  let config = Config.butterfly_plus ~nprocs ~page_words () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let machine = Machine.create config in
  Machine.set_inject machine (Some (Inject.create (Inject.config ~seed ~rate ())));
  let engine = Engine.create () in
  let coh = Coherent.create machine ~engine ~policy ~frames_per_module:8 () in
  Coherent.set_monitor coh (Some (Check.create_monitor ()));
  let cm = Coherent.new_aspace coh in
  for vpage = 0 to npages - 1 do
    let page = Coherent.new_cpage coh ~label:(Printf.sprintf "soak%d" vpage) () in
    Coherent.bind coh cm ~vpage page Rights.Read_write
  done;
  { coh; cm; expected = Array.make npages 0 }

(* Ops are generated as (kind, proc, page) triples so QCheck can shrink
   them. *)
let apply sys (kind, proc, page) =
  let vaddr = page * page_words in
  match kind with
  | 0 ->
    let v, _ = Coherent.read_word sys.coh ~now:0 ~proc ~cmap:sys.cm ~vaddr in
    if v <> sys.expected.(page) then
      QCheck.Test.fail_reportf "SC violation: R%d(p%d) = %d, last write was %d" proc page v
        sys.expected.(page)
  | 1 ->
    ignore (Coherent.write_word sys.coh ~now:0 ~proc ~cmap:sys.cm ~vaddr (proc + 1));
    sys.expected.(page) <- proc + 1
  | 2 -> ignore (Coherent.advise sys.coh ~now:0 ~proc:0 ~cmap:sys.cm ~vpage:page Coherent.Advise_freeze)
  | 3 -> ignore (Coherent.advise sys.coh ~now:0 ~proc:0 ~cmap:sys.cm ~vpage:page Coherent.Advise_thaw)
  | _ -> Coherent.thaw_all sys.coh ~now:0

let op_gen =
  QCheck.(triple (int_bound 4) (int_bound (nprocs - 1)) (int_bound (npages - 1)))

(* Any fault schedule, any op sequence: every shootdown either completes
   (all target refmask bits and ATC entries cleared — the armed monitor
   checks each one) or is fully retried; reads always see the last write;
   the final state passes the machine-wide invariant sweep.  A partial
   shootdown surfaces as a Check.Violation or an SC failure here. *)
let prop_injected_ops_sound =
  QCheck.Test.make ~name:"soak: random ops under heavy injection keep SC + invariants"
    ~count:60
    QCheck.(pair small_int (list_of_size Gen.(1 -- 25) op_gen))
    (fun (seed, ops) ->
      let sys = mk_sys ~seed:(Int64.of_int (seed + 1)) ~rate:0.9 in
      (try List.iter (apply sys) ops
       with Check.Violation v ->
         QCheck.Test.fail_reportf "monitor violation: %s" (Check.violation_message v));
      match Coherent.check_invariants sys.coh with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "post-run invariants: %s" e)

(* The same property with the plane idle must also hold (guards against
   the test passing only because injection perturbs nothing). *)
let prop_idle_ops_sound =
  QCheck.Test.make ~name:"soak: random ops with idle plane keep SC + invariants" ~count:30
    QCheck.(list_of_size Gen.(1 -- 25) op_gen)
    (fun ops ->
      let sys = mk_sys ~seed:1L ~rate:0.0 in
      List.iter (apply sys) ops;
      match Coherent.check_invariants sys.coh with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "post-run invariants: %s" e)

let suite =
  [
    ("soak: same (seed,rate) replays bit-identically", `Quick, test_deterministic_replay);
    ("soak: different seeds draw different schedules", `Quick, test_different_seed_diverges);
    ("soak: rate 0.0 reproduces jacobi golden", `Quick, test_rate0_jacobi_golden);
    ("soak: rate 0.0 reproduces backprop golden", `Quick, test_rate0_backprop_golden);
    qtest prop_injected_ops_sound;
    qtest prop_idle_ops_sound;
  ]
