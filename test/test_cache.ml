(* Tests for the UMA comparison substrate: caches, bus, memsys. *)

module Cache = Platinum_machine.Cache
module Uma_sys = Platinum_cache.Uma_sys
module Machine = Platinum_machine.Machine
module Config = Platinum_machine.Config
module Memsys = Platinum_kernel.Memsys
module Api = Platinum_kernel.Api
module Runner = Platinum_runner.Runner

(* --- Cache --- *)

let test_cache_miss_then_hit () =
  let c = Cache.create ~words:64 ~line_words:4 in
  Alcotest.(check bool) "cold miss" false (Cache.lookup c ~addr:10);
  Cache.fill c ~addr:10;
  Alcotest.(check bool) "hit after fill" true (Cache.lookup c ~addr:10);
  Alcotest.(check bool) "same line hits" true (Cache.lookup c ~addr:8);
  Alcotest.(check bool) "next line misses" false (Cache.lookup c ~addr:12)

let test_cache_direct_mapped_eviction () =
  let c = Cache.create ~words:16 ~line_words:4 in
  Cache.fill c ~addr:0;
  (* addr 16 maps to the same set (16-word cache, 4 lines). *)
  Cache.fill c ~addr:16;
  Alcotest.(check bool) "conflict evicted" false (Cache.lookup c ~addr:0);
  Alcotest.(check bool) "new line resident" true (Cache.lookup c ~addr:16)

let test_cache_invalidate () =
  let c = Cache.create ~words:64 ~line_words:4 in
  Cache.fill c ~addr:20;
  Cache.invalidate_line c ~addr:22;
  Alcotest.(check bool) "snooped out" false (Cache.lookup c ~addr:20);
  Cache.fill c ~addr:20;
  Cache.invalidate_line c ~addr:48 (* different line: no effect *);
  Alcotest.(check bool) "other line untouched" true (Cache.lookup c ~addr:20)

let test_cache_flush_and_counters () =
  let c = Cache.create ~words:16 ~line_words:4 in
  ignore (Cache.lookup c ~addr:0);
  Cache.fill c ~addr:0;
  ignore (Cache.lookup c ~addr:0);
  Cache.flush c;
  ignore (Cache.lookup c ~addr:0);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_cache_bad_sizes () =
  Alcotest.(check bool) "non-power-of-two rejected" true
    (try
       ignore (Cache.create ~words:48 ~line_words:4);
       false
     with Invalid_argument _ -> true)

(* --- Uma_sys --- *)

let mk_uma ?(nprocs = 4) () =
  let config = Config.butterfly_plus ~nprocs ~page_words:64 () in
  let machine = Machine.create config in
  let uma = Uma_sys.create ~machine ~params:Uma_sys.sequent ~page_words:64 in
  (uma, Uma_sys.memsys uma)

let test_uma_read_write () =
  let _uma, ms = mk_uma () in
  let a = ms.Memsys.alloc ~zone:0 ~words:4 ~page_aligned:false in
  let l1 = Memsys.write ms ~aspace:0 ~now:0 ~proc:0 ~vaddr:a 42 in
  let v, _l2 = Memsys.read ms ~aspace:0 ~now:1_000_000 ~proc:0 ~vaddr:a in
  Alcotest.(check int) "round trip" 42 v;
  Alcotest.(check bool) "write cost > 0" true (l1 > 0)

let test_uma_hit_faster_than_miss () =
  let _uma, ms = mk_uma () in
  let a = ms.Memsys.alloc ~zone:0 ~words:4 ~page_aligned:false in
  let _, miss = Memsys.read ms ~aspace:0 ~now:0 ~proc:1 ~vaddr:a in
  let _, hit = Memsys.read ms ~aspace:0 ~now:1_000_000 ~proc:1 ~vaddr:a in
  Alcotest.(check bool) "miss slower than hit" true (miss > hit);
  Alcotest.(check int) "hit = t_hit" Uma_sys.sequent.Uma_sys.t_hit hit

let test_uma_coherence_via_snooping () =
  let _uma, ms = mk_uma () in
  let a = ms.Memsys.alloc ~zone:0 ~words:4 ~page_aligned:false in
  ignore (Memsys.write ms ~aspace:0 ~now:0 ~proc:0 ~vaddr:a 1);
  let v1, _ = Memsys.read ms ~aspace:0 ~now:10_000 ~proc:1 ~vaddr:a in
  Alcotest.(check int) "first read" 1 v1;
  (* proc 0 writes again; proc 1's cached line must be invalidated. *)
  ignore (Memsys.write ms ~aspace:0 ~now:20_000 ~proc:0 ~vaddr:a 2);
  let v2, lat = Memsys.read ms ~aspace:0 ~now:30_000 ~proc:1 ~vaddr:a in
  Alcotest.(check int) "stale line invalidated" 2 v2;
  Alcotest.(check bool) "and it was a miss" true (lat > Uma_sys.sequent.Uma_sys.t_hit)

let test_uma_bus_contention () =
  let _uma, ms = mk_uma () in
  (* Two simultaneous misses: the second queues on the bus. *)
  let a = ms.Memsys.alloc ~zone:0 ~words:64 ~page_aligned:true in
  let _, l1 = Memsys.read ms ~aspace:0 ~now:0 ~proc:0 ~vaddr:a in
  let _, l2 = Memsys.read ms ~aspace:0 ~now:0 ~proc:1 ~vaddr:(a + 32) in
  Alcotest.(check bool) "second waits for the bus" true (l2 > l1)

let test_uma_block_ops () =
  let _uma, ms = mk_uma () in
  let a = ms.Memsys.alloc ~zone:0 ~words:100 ~page_aligned:true in
  let data = Array.init 100 (fun i -> i * 2) in
  ignore (Memsys.block_write ms ~aspace:0 ~now:0 ~proc:0 ~vaddr:a data);
  let got, _ = Memsys.block_read ms ~aspace:0 ~now:1_000_000 ~proc:2 ~vaddr:a ~len:100 in
  Alcotest.(check (array int)) "block round trip" data got

let test_uma_rmw () =
  let _uma, ms = mk_uma () in
  let a = ms.Memsys.alloc ~zone:0 ~words:1 ~page_aligned:false in
  ignore (Memsys.write ms ~aspace:0 ~now:0 ~proc:0 ~vaddr:a 5);
  let old, _ = Memsys.rmw ms ~aspace:0 ~now:10_000 ~proc:1 ~vaddr:a (fun v -> v + 1) in
  Alcotest.(check int) "old" 5 old;
  let v, _ = Memsys.read ms ~aspace:0 ~now:20_000 ~proc:2 ~vaddr:a in
  Alcotest.(check int) "incremented" 6 v

(* Segments on the flat UMA machine: every "space" maps them at the same
   base (one physical space). *)
let test_uma_segments_flat () =
  let bases = ref (0, 1) in
  Runner.time_uma ~nprocs:2 (fun () ->
      let seg = Api.new_segment "s" ~pages:1 in
      let b1 = Api.map_segment seg in
      Api.write b1 9;
      let other = Api.new_aspace () in
      let b2 = ref 0 and v2 = ref 0 in
      let t = Api.spawn ~proc:1 ~aspace:other (fun () ->
          b2 := Api.map_segment seg;
          v2 := Api.read !b2) in
      Api.join t;
      bases := (b1, !b2);
      Alcotest.(check int) "shared value visible" 9 !v2)
  |> ignore;
  let b1, b2 = !bases in
  Alcotest.(check int) "same base in both (flat memory)" b1 b2

(* A whole program through the kernel on the UMA machine. *)
let test_uma_kernel_program () =
  let sum = ref 0 in
  let r =
    Runner.time_uma ~nprocs:4 (fun () ->
        let a = Api.alloc_pages 1 in
        Api.block_write a (Array.init 100 (fun i -> i));
        let part = Api.alloc 4 in
        let worker me =
          let chunk = Api.block_read (a + (me * 25)) 25 in
          Api.write (part + me) (Array.fold_left ( + ) 0 chunk)
        in
        Api.spawn_join_all ~procs:[ 0; 1; 2; 3 ] (List.init 4 (fun me _ -> worker me));
        sum := List.fold_left (fun acc i -> acc + Api.read (part + i)) 0 [ 0; 1; 2; 3 ])
  in
  Alcotest.(check int) "parallel sum on UMA" 4950 !sum;
  Alcotest.(check bool) "time advanced" true (r.Runner.uma_elapsed > 0)

let suite =
  [
    ("cache: miss then hit", `Quick, test_cache_miss_then_hit);
    ("cache: direct-mapped eviction", `Quick, test_cache_direct_mapped_eviction);
    ("cache: snoop invalidation", `Quick, test_cache_invalidate);
    ("cache: flush and counters", `Quick, test_cache_flush_and_counters);
    ("cache: size validation", `Quick, test_cache_bad_sizes);
    ("uma: read/write", `Quick, test_uma_read_write);
    ("uma: hits faster than misses", `Quick, test_uma_hit_faster_than_miss);
    ("uma: coherence via snooping", `Quick, test_uma_coherence_via_snooping);
    ("uma: bus contention", `Quick, test_uma_bus_contention);
    ("uma: block operations", `Quick, test_uma_block_ops);
    ("uma: rmw", `Quick, test_uma_rmw);
    ("uma: segments are flat", `Quick, test_uma_segments_flat);
    ("uma: kernel program end-to-end", `Quick, test_uma_kernel_program);
  ]
