(* The typed-AST analysis framework (PR 8): per-rule fixtures, the
   marker mechanism, the seeded-mutation must-catch gate, and the
   lib-clean acceptance gate. *)

module Ast_lint = Platinum_check.Ast_lint
module Registry = Platinum_check.Registry
module Rule_epoch = Platinum_check.Rule_epoch
module Rule_settle = Platinum_check.Rule_settle
module Rule_alloc = Platinum_check.Rule_alloc
module Rule_domain = Platinum_check.Rule_domain
module Lint = Platinum_check.Lint

let unit_ ~file src = Ast_lint.unit_of_source ~file src

(* findings rendered as "name:construct" / "name:allowed" strings, the
   same convention the textual-lint tests use *)
let tags fs =
  List.map (fun (f : Ast_lint.finding) -> f.name ^ ":" ^ f.construct) (List.sort Ast_lint.compare_findings fs)

let verdicts fs =
  List.map
    (fun (f : Ast_lint.finding) -> f.name ^ ":" ^ Option.value ~default:"VIOLATION" f.allowed)
    (List.sort Ast_lint.compare_findings fs)

(* --- framework --- *)

let test_parse_error () =
  match unit_ ~file:"broken.ml" "let x = (\n" with
  | exception Ast_lint.Parse_error msg ->
    Alcotest.(check bool) "message names the file" true
      (String.length msg >= 9 && String.sub msg 0 9 = "broken.ml")
  | _ -> Alcotest.fail "expected Parse_error"

let test_marker_scope () =
  let u =
    unit_ ~file:"m.ml"
      "(* lint: allow some-rule -- close enough *)\n\
       let near = 1\n\
       \n\n\n\n\n\n\n\n\
       let far = 2\n"
  in
  Alcotest.(check bool) "marker covers the adjacent binding" true
    (Ast_lint.marker_allows u ~rule:"some-rule" ~line:2);
  Alcotest.(check bool) "other rules unaffected" false
    (Ast_lint.marker_allows u ~rule:"other-rule" ~line:2);
  Alcotest.(check bool) "marker does not reach a distant binding" false
    (Ast_lint.marker_allows u ~rule:"some-rule" ~line:11)

let test_surgery () =
  let src = "aaa needle bbb needle ccc" in
  (match Ast_lint.excise ~anchor:"bbb" ~needle:"needle" src with
  | Ok s -> Alcotest.(check string) "second occurrence excised" "aaa needle bbb  ccc" s
  | Error e -> Alcotest.fail e);
  (match Ast_lint.replace ~anchor:"aaa" ~needle:"needle" ~repl:"patch" src with
  | Ok s -> Alcotest.(check string) "first occurrence replaced" "aaa patch bbb needle ccc" s
  | Error e -> Alcotest.fail e);
  (match Ast_lint.excise ~anchor:"zzz" ~needle:"needle" src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing anchor must be loud");
  match Ast_lint.excise ~anchor:"ccc" ~needle:"needle" src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "needle after anchor only"

(* --- epoch-soundness --- *)

let epoch src = Rule_epoch.rule.Ast_lint.run [ unit_ ~file:"coherent.ml" src ]

let test_epoch_direct_and_uncovered () =
  let fs =
    epoch
      "let fp_bump t = t.fp_epoch <- t.fp_epoch + 1\n\
       let good t = fp_bump t; t.frozen <- true\n\
       let bad t = t.frozen <- false\n"
  in
  Alcotest.(check (list string)) "only the bump-less mutator"
    [ "Coherent.bad:field frozen <-" ] (tags fs)

let test_epoch_caller_coverage () =
  (* [helper] never bumps, but its only callers do: every entry path is
     bracketed.  [orphan] has no in-library callers at all. *)
  let fs =
    epoch
      "let fp_bump t = t.fp_epoch <- t.fp_epoch + 1\n\
       let helper t = t.frozen <- true\n\
       let caller1 t = fp_bump t; helper t\n\
       let caller2 t = fp_bump t; helper t\n\
       let orphan t = t.frozen <- false\n"
  in
  Alcotest.(check (list string)) "helper covered, orphan not"
    [ "Coherent.orphan:field frozen <-" ] (tags fs)

let test_epoch_uncovered_caller_breaks_coverage () =
  (* one bump-less public caller poisons the callee's coverage *)
  let fs =
    epoch
      "let fp_bump t = t.fp_epoch <- t.fp_epoch + 1\n\
       let helper t = t.frozen <- true\n\
       let covered t = fp_bump t; helper t\n\
       let public t = helper t\n"
  in
  Alcotest.(check (list string)) "helper uncovered via public"
    [ "Coherent.helper:field frozen <-" ] (tags fs)

let test_epoch_marker_allows_and_propagates () =
  let fs =
    epoch
      "let helper t = t.frozen <- true\n\
       (* lint: allow epoch-soundness -- teardown only *)\n\
       let teardown t = helper t; t.frozen <- false\n"
  in
  (* the marked teardown is reported-as-allowed; the helper it solely
     calls is covered by the marked caller and not reported at all *)
  Alcotest.(check (list string)) "marked mutator visible, helper silent"
    [ "Coherent.teardown:marker" ] (verdicts fs)

let test_epoch_excluded_fields_and_flat () =
  let fs =
    epoch
      "let stats t = t.s_latency <- 0; t.queue_len <- t.queue_len + 1\n\
       let table t v = Flat.set t.entries 3 v\n"
  in
  Alcotest.(check (list string)) "scratch excluded, Flat.set caught"
    [ "Coherent.table:Flat.set" ] (tags fs)

let test_epoch_array_on_state_field () =
  let fs = epoch "let touch t p = t.active_aspace.(p) <- 7\n" in
  Alcotest.(check (list string)) "array store on a state field"
    [ "Coherent.touch:Array.set on field active_aspace" ] (tags fs)

(* --- settle-coverage --- *)

let eff_fixture =
  "type _ Effect.t += A : unit Effect.t | B : int -> unit Effect.t\n"

let settle kernel_src =
  Rule_settle.rule.Ast_lint.run
    [ unit_ ~file:"eff.ml" eff_fixture; unit_ ~file:"kernel.ml" kernel_src ]

let kernel_fixture ?b_arm ~a_arm () =
  let b_arm =
    match b_arm with
    | Some b -> b
    | None -> "Some (fun k -> settle t th (fun () -> resume k n))"
  in
  String.concat "\n"
    [
      "let handle t th body =";
      "  Effect.Deep.match_with body ()";
      "    {";
      "      retc = (fun v -> settle t th (fun () -> v));";
      "      exnc = (fun e -> settle t th (fun () -> raise e));";
      "      effc =";
      "        (fun (type a) (eff : a Effect.t) ->";
      "          match eff with";
      "          | A -> " ^ a_arm;
      "          | B n -> " ^ b_arm;
      "          | _ -> None);";
      "    }";
      "";
    ]

let test_settle_clean () =
  let fs = settle (kernel_fixture ~a_arm:"Some (fun k -> settle t th (fun () -> k ()))" ()) in
  Alcotest.(check (list string)) "clean handler" [] (tags fs)

let test_settle_unwrapped_arm () =
  let fs = settle (kernel_fixture ~a_arm:"Some (fun k -> k ())" ()) in
  Alcotest.(check (list string)) "direct resume flagged" [ "A:unsettled resume" ] (tags fs)

let test_settle_missing_constructor () =
  let fs =
    settle
      (String.concat "\n"
         [
           "let handle t th body =";
           "  Effect.Deep.match_with body ()";
           "    {";
           "      retc = (fun v -> settle t th (fun () -> v));";
           "      exnc = (fun e -> settle t th (fun () -> raise e));";
           "      effc =";
           "        (fun (type a) (eff : a Effect.t) ->";
           "          match eff with";
           "          | A -> Some (fun k -> settle t th (fun () -> k ()))";
           "          | _ -> None);";
           "    }";
           "";
         ])
  in
  Alcotest.(check (list string)) "B has no arm" [ "B:unhandled constructor" ] (tags fs)

let test_settle_unsettled_retc () =
  let src =
    String.concat "\n"
      [
        "let handle t th body =";
        "  Effect.Deep.match_with body ()";
        "    {";
        "      retc = (fun v -> v);";
        "      exnc = (fun e -> settle t th (fun () -> raise e));";
        "      effc =";
        "        (fun (type a) (eff : a Effect.t) ->";
        "          match eff with";
        "          | A -> Some (fun k -> settle t th (fun () -> k ()))";
        "          | B n -> Some (fun k -> settle t th (fun () -> resume k n))";
        "          | _ -> None);";
        "    }";
        "";
      ]
  in
  Alcotest.(check (list string)) "bare retc flagged" [ "retc:unsettled resume" ]
    (tags (settle src))

let test_settle_no_handler () =
  let fs = settle "let unrelated x = x + 1\n" in
  Alcotest.(check (list string)) "a kernel without a handler is loud"
    [ "kernel.ml:no handler" ] (tags fs)

(* --- zero-alloc --- *)

let alloc ?(file = "flat.ml") src = Rule_alloc.rule.Ast_lint.run [ unit_ ~file src ]

let test_alloc_clean () =
  let fs =
    alloc
      "let find t k =\n\
      \  if k >= 0 && k < Array.length t.cells then Array.unsafe_get t.cells k\n\
      \  else (try Hashtbl.find t.spill k with Not_found -> None)\n"
  in
  Alcotest.(check (list string)) "stored-cell hit path is clean" [] (tags fs)

let test_alloc_flags_constructs () =
  let fs =
    alloc
      (String.concat "\n"
         [
           "let find t k = Some k";
           "let mem t k =";
           "  let f = fun x -> x + k in";
           "  f (k, k)";
           "";
         ])
  in
  Alcotest.(check (list string)) "boxing and closures flagged"
    [ "Flat.find:constructor application"; "Flat.mem:closure"; "Flat.mem:tuple" ]
    (tags fs)

let test_alloc_ref_and_partial () =
  let fs =
    alloc
      (String.concat "\n"
         [
           "let helper a b = a + b";
           "let find t k =";
           "  let i = ref k in";
           "  helper !i";
           "";
         ])
  in
  Alcotest.(check (list string)) "ref cell and partial application"
    [ "Flat.find:ref"; "Flat.find:partial application of helper" ]
    (tags fs)

let test_alloc_raise_paths_exempt () =
  let fs =
    alloc
      "let find t k =\n\
      \  if k < 0 then invalid_arg (msg (k, t));\n\
      \  assert (check (k, t));\n\
      \  t\n"
  in
  Alcotest.(check (list string)) "failure paths may build messages" [] (tags fs)

let test_alloc_uncatalogued_ignored () =
  let fs = alloc "let create () = { cells = [||]; spill = Hashtbl.create 8 }\n" in
  Alcotest.(check (list string)) "constructors are not hot" [] (tags fs)

let test_alloc_marker () =
  let fs =
    alloc
      "(* lint: allow zero-alloc -- cold refresh *)\n\
       let find t k = Some k\n"
  in
  Alcotest.(check (list string)) "marker downgrades to allowed"
    [ "Flat.find:marker" ] (verdicts fs)

let test_alloc_trailing_function_is_a_parameter () =
  let fs =
    alloc ~file:"coherent.ml"
      "let rec only_holder_maps holder = function\n\
      \  | [] -> true\n\
      \  | x :: rest -> x = holder && only_holder_maps holder rest\n"
  in
  Alcotest.(check (list string)) "the function keyword is not a closure" [] (tags fs)

(* --- toplevel-state on the typed AST --- *)

let domain ?(file = "m.ml") src = Rule_domain.rule.Ast_lint.run [ unit_ ~file src ]

let test_domain_flags_and_allows () =
  let fs =
    domain
      "let counter = ref 0\n\
       let table = Hashtbl.create 16\n\
       let next = Atomic.make 0\n\
       (* lint: allow toplevel-state -- test knob *)\n\
       let knob = ref false\n\
       let make () = ref 0\n"
  in
  Alcotest.(check (list string)) "verdicts"
    [ "counter:VIOLATION"; "table:VIOLATION"; "next:Atomic"; "knob:marker" ]
    (verdicts fs)

let test_domain_sees_nested_modules () =
  (* the column-0 textual heuristic cannot see this one *)
  let fs = domain "module Inner = struct\n  let hidden = ref 0\nend\n" in
  Alcotest.(check (list string)) "nested toplevel state" [ "hidden:ref" ] (tags fs);
  Alcotest.(check (list string)) "textual pass misses it" []
    (List.map (fun (f : Lint.finding) -> f.name)
       (Lint.scan_source ~file:"m.ml" "module Inner = struct\n  let hidden = ref 0\nend\n"))

let test_domain_functor_bodies_skipped () =
  let fs = domain "module Make (X : S) = struct\n  let per_instance = ref 0\nend\n" in
  Alcotest.(check (list string)) "per-application state is fine" [] (tags fs)

(* --- whole-tree gates --- *)

let lib_units = lazy (Ast_lint.load_dirs [ "../lib" ])

let test_lib_clean () =
  let units = Lazy.force lib_units in
  Alcotest.(check bool) "found the library sources" true (List.length units > 30);
  let bad = Registry.violations (Registry.run_rules units) in
  List.iter (fun f -> Format.eprintf "%a@." Ast_lint.pp_finding f) bad;
  Alcotest.(check int) "no unexempted findings in lib/" 0 (List.length bad)

let test_superset_of_textual () =
  (* the typed rule must find (at least) everything the textual fallback
     oracle finds, so retiring the heuristic loses nothing *)
  let units = Lazy.force lib_units in
  let ast = Rule_domain.rule.Ast_lint.run units in
  let textual = Lint.scan_files (Lint.files_under "../lib") in
  List.iter
    (fun (t : Lint.finding) ->
      let covered =
        List.exists
          (fun (a : Ast_lint.finding) ->
            a.file = t.file && a.name = t.name && a.construct = t.construct)
          ast
      in
      if not covered then
        Alcotest.failf "textual finding not reproduced by the AST rule: %s [%s] %s" t.file
          t.name t.construct)
    textual

let test_eff_constructors_all_handled () =
  (* live exhaustiveness: every Eff.t constructor has an arm today *)
  let units = Lazy.force lib_units in
  let ctors = Rule_settle.eff_constructors units in
  Alcotest.(check bool) "inventory is non-trivial" true (List.length ctors >= 20);
  let unhandled =
    List.filter
      (fun (f : Ast_lint.finding) -> f.construct = "unhandled constructor")
      (Rule_settle.rule.Ast_lint.run units)
  in
  Alcotest.(check (list string)) "none unhandled" [] (tags unhandled)

let test_mutation_gate () =
  let units = Lazy.force lib_units in
  List.iter
    (fun (g : Registry.gate) ->
      match g.g_result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" g.g_name e)
    (Registry.mutation_gate units)

let suite =
  [
    ("framework: parse errors are located", `Quick, test_parse_error);
    ("framework: marker scope", `Quick, test_marker_scope);
    ("framework: mutation surgery is anchored and loud", `Quick, test_surgery);
    ("epoch: direct bump vs bump-less mutator", `Quick, test_epoch_direct_and_uncovered);
    ("epoch: caller coverage", `Quick, test_epoch_caller_coverage);
    ("epoch: one uncovered caller poisons", `Quick, test_epoch_uncovered_caller_breaks_coverage);
    ("epoch: markers allow and propagate", `Quick, test_epoch_marker_allows_and_propagates);
    ("epoch: excluded fields and Flat setters", `Quick, test_epoch_excluded_fields_and_flat);
    ("epoch: array stores on state fields", `Quick, test_epoch_array_on_state_field);
    ("settle: clean handler passes", `Quick, test_settle_clean);
    ("settle: unwrapped arm flagged", `Quick, test_settle_unwrapped_arm);
    ("settle: missing constructor flagged", `Quick, test_settle_missing_constructor);
    ("settle: bare retc flagged", `Quick, test_settle_unsettled_retc);
    ("settle: absent handler is loud", `Quick, test_settle_no_handler);
    ("alloc: stored-cell hit path clean", `Quick, test_alloc_clean);
    ("alloc: boxing constructs flagged", `Quick, test_alloc_flags_constructs);
    ("alloc: ref and partial application", `Quick, test_alloc_ref_and_partial);
    ("alloc: failure paths exempt", `Quick, test_alloc_raise_paths_exempt);
    ("alloc: uncatalogued functions ignored", `Quick, test_alloc_uncatalogued_ignored);
    ("alloc: marker downgrades", `Quick, test_alloc_marker);
    ("alloc: trailing function is a parameter", `Quick, test_alloc_trailing_function_is_a_parameter);
    ("domain: flags, Atomic, marker", `Quick, test_domain_flags_and_allows);
    ("domain: nested modules visible", `Quick, test_domain_sees_nested_modules);
    ("domain: functor bodies skipped", `Quick, test_domain_functor_bodies_skipped);
    ("gate: lib/ has no unexempted findings", `Quick, test_lib_clean);
    ("gate: AST domain rule supersedes textual", `Quick, test_superset_of_textual);
    ("gate: every Eff.t constructor handled", `Quick, test_eff_constructors_all_handled);
    ("gate: seeded mutations are caught", `Quick, test_mutation_gate);
  ]
