(* The domain-parallel sweep harness (Runner.Par).

   Two contracts: (1) Par.map is List.map — same results, same order —
   whatever the pool width; (2) a sweep of full simulations rendered
   through the pool is byte-identical at -j 4 and -j 1, which is what lets
   every figure/ablation grid fan out without perturbing the report. *)

module Par = Platinum_runner.Par
module Runner = Platinum_runner.Runner
module Config = Platinum_machine.Config
module Counters = Platinum_core.Counters
module Coherent = Platinum_core.Coherent
module Outcome = Platinum_workload.Outcome
module Gauss = Platinum_workload.Gauss
module Jacobi = Platinum_workload.Jacobi

let qtest = QCheck_alcotest.to_alcotest

let test_default_jobs () =
  Alcotest.(check bool) "recommended >= 1" true (Par.default_jobs () >= 1);
  Par.set_jobs 3;
  Alcotest.(check int) "set_jobs sticks" 3 (Par.get_jobs ());
  Par.set_jobs 0;
  Alcotest.(check int) "0 resets to the default" (Par.default_jobs ()) (Par.get_jobs ());
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Par.set_jobs: negative job count") (fun () -> Par.set_jobs (-1))

let prop_par_map_is_list_map =
  QCheck.Test.make ~name:"Par.map == List.map in results and order" ~count:50
    QCheck.(pair (int_range 1 6) (list small_int))
    (fun (jobs, xs) ->
      let f x = (x * x) - (3 * x) in
      Par.map ~jobs f xs = List.map f xs)

let test_par_map_exception () =
  (* The earliest failing cell's exception wins, after all cells settle. *)
  let boom i = if i mod 2 = 1 then failwith ("cell " ^ string_of_int i) else i in
  Alcotest.check_raises "first failure (input order) is re-raised" (Failure "cell 1")
    (fun () -> ignore (Par.map ~jobs:4 boom [ 0; 1; 2; 3; 4; 5 ]))

(* --- byte-identical sweeps --- *)

(* A miniature figure-style grid: full simulator instances per cell,
   rendered to the same fingerprint lines the bench tables are built
   from. *)
let render_sweep ~jobs =
  let cells =
    [ (`Gauss, 1); (`Gauss, 2); (`Gauss, 4); (`Jacobi, 2); (`Jacobi, 4) ]
  in
  Par.map ~jobs
    (fun (kind, nprocs) ->
      let config = Config.butterfly_plus ~nprocs () in
      let out, main =
        match kind with
        | `Gauss -> Gauss.make (Gauss.params ~n:48 ~nprocs ~verify:false ())
        | `Jacobi -> Jacobi.make (Jacobi.params ~n:32 ~iters:3 ~nprocs ~verify:false ())
      in
      let r = Runner.time ~config main in
      if not out.Outcome.ok then Alcotest.fail ("sweep cell failed: " ^ out.Outcome.detail);
      let c = Coherent.counters r.Runner.setup.Runner.coherent in
      Printf.sprintf "p=%d elapsed=%d work=%d rf=%d wf=%d repl=%d migr=%d freeze=%d" nprocs
        r.Runner.elapsed out.Outcome.work_ns c.Counters.read_faults c.Counters.write_faults
        c.Counters.replications c.Counters.migrations c.Counters.freezes)
    cells

let test_sweep_j4_equals_j1 () =
  let seq = render_sweep ~jobs:1 in
  let par = render_sweep ~jobs:4 in
  Alcotest.(check (list string)) "-j 4 sweep is byte-identical to -j 1" seq par

let test_speedup_j4_equals_j1 () =
  let curve jobs =
    Runner.speedup ~jobs ~nprocs_list:[ 1; 2; 4 ]
      (fun ~nprocs () ->
        snd (Gauss.make (Gauss.params ~n:48 ~nprocs ~verify:false ())) ())
    |> List.map (fun (p, s, r) -> (p, s, r.Runner.elapsed))
  in
  let show (p, s, e) = Printf.sprintf "p=%d s=%.4f elapsed=%d" p s e in
  Alcotest.(check (list string)) "speedup curve identical at any pool width"
    (List.map show (curve 1)) (List.map show (curve 4))

let suite =
  [
    ("par: jobs setting", `Quick, test_default_jobs);
    qtest prop_par_map_is_list_map;
    ("par: exception propagation", `Quick, test_par_map_exception);
    ("golden: -j 4 sweep == -j 1 sweep", `Quick, test_sweep_j4_equals_j1);
    ("golden: speedup curve == at -j 4 and -j 1", `Quick, test_speedup_j4_equals_j1);
  ]
