(* The sharded event engine (Sim.Shard) and the message-level scale
   workloads built on it (Platinum_scale.Scale).

   The load-bearing contract: a sharded run is a pure function of the
   workload parameters — the shard count and domain count never change a
   single byte of the result.  We pin that by fingerprint across a
   shards x domains grid, for all three workloads, with the window
   self-checks armed, and again with the fault plane injecting at 2%
   (so the IPI-retry and RPC-retransmission recovery paths are inside the
   determinism envelope, not outside it). *)

module Shard = Platinum_sim.Shard
module Config = Platinum_machine.Config
module Scale = Platinum_scale.Scale

(* Grids kept modest: the full matrix runs under alcotest Quick. *)
let shard_counts = [ 1; 2; 8 ]
let domain_counts = [ 1; 2; 4 ]

let small = Config.hierarchical ~cluster_size:4 ~nodes:24 ()

(* --- Shard mechanics --- *)

let test_shard_basics () =
  let sh = Shard.create ~check:true ~nodes:8 ~shards:4 ~lookahead:1_000 () in
  Alcotest.(check int) "nodes" 8 (Shard.nodes sh);
  Alcotest.(check int) "shards" 4 (Shard.shards sh);
  Alcotest.(check int) "lookahead" 1_000 (Shard.lookahead sh);
  Alcotest.(check int) "node 0 on shard 0" 0 (Shard.shard_of_node sh 0);
  Alcotest.(check int) "node 7 on shard 3" 3 (Shard.shard_of_node sh 7);
  let log = ref [] in
  Shard.schedule sh ~node:0 ~delay:10 (fun t -> log := (`A, t) :: !log);
  Shard.schedule sh ~node:7 ~delay:5 (fun t -> log := (`B, t) :: !log);
  Shard.post sh ~src:0 ~dst:7 ~delay:1_000 (fun t -> log := (`C, t) :: !log);
  Shard.run sh;
  Alcotest.(check int) "three events" 3 (Shard.events_processed sh);
  Alcotest.(check (list (pair bool int)))
    "delivery times in order"
    [ (true, 5); (true, 10); (false, 1_000) ]
    (List.rev_map (fun (k, t) -> (k <> `C, t)) !log
    |> List.sort (fun (_, a) (_, b) -> compare a b))

let test_shard_clamps_to_nodes () =
  let sh = Shard.create ~nodes:3 ~shards:16 ~lookahead:100 () in
  Alcotest.(check int) "shards clamped to node count" 3 (Shard.shards sh)

let test_post_under_lookahead_rejected () =
  let sh = Shard.create ~nodes:4 ~shards:2 ~lookahead:5_000 () in
  (* Enforced even for a same-shard pair (nodes 0 and 1 both live on
     shard 0), so legality never depends on the shard count. *)
  Alcotest.check_raises "cross-node post under the lookahead"
    (Invalid_argument "Shard.post: cross-node delay 4999 below lookahead 5000")
    (fun () ->
      Shard.post sh ~src:0 ~dst:1 ~delay:4_999 (fun _ -> ()));
  (* src = dst is node-local scheduling: no lookahead constraint. *)
  Shard.post sh ~src:0 ~dst:0 ~delay:1 (fun _ -> ());
  Shard.run sh;
  Alcotest.(check int) "local post delivered" 1 (Shard.events_processed sh)

(* A cross-shard ping-pong whose event count and final clock are exact:
   hand-checkable conservative-window behaviour. *)
let test_shard_ping_pong () =
  let run ~shards ~domains =
    let sh = Shard.create ~check:true ~nodes:4 ~shards ~lookahead:100 () in
    let hops = ref 0 in
    let rec ping src dst _t =
      if !hops < 50 then begin
        incr hops;
        Shard.post sh ~src ~dst ~delay:100 (ping dst src)
      end
    in
    Shard.schedule sh ~node:0 ~delay:0 (ping 0 3);
    Shard.run ~domains sh;
    (!hops, Shard.events_processed sh, Shard.clock sh, Shard.windows sh)
  in
  let h, e, c, _ = run ~shards:1 ~domains:1 in
  Alcotest.(check int) "50 hops" 50 h;
  Alcotest.(check int) "51 events" 51 e;
  (* Last delivery at 50 x 100 ns; the final window's idle catch-up then
     advances the clocks to its end, one lookahead past it. *)
  Alcotest.(check int) "clock = last delivery + final window" 5_100 c;
  let h4, e4, c4, _ = run ~shards:4 ~domains:2 in
  Alcotest.(check (list int))
    "identical at 4 shards / 2 domains" [ h; e; c ] [ h4; e4; c4 ]

(* --- byte-identical fingerprints across the grid --- *)

let fingerprint_grid ?(inject_rate = 0.0) ~check workload =
  List.concat_map
    (fun shards ->
      List.map
        (fun domains ->
          let r =
            Scale.run ~check ~shards ~domains ~inject_rate ~seed:7L
              ~ops_per_node:30 ~config:small workload
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s s=%d d=%d made progress" r.Scale.workload shards
               domains)
            true
            (r.Scale.events > 0 && r.Scale.clock > 0);
          Printf.sprintf "%s events=%d windows=%d clock=%d fp=%s" r.Scale.workload
            r.Scale.events r.Scale.windows r.Scale.clock r.Scale.fingerprint)
        domain_counts)
    shard_counts

let check_grid_identical name lines =
  match lines with
  | [] -> Alcotest.fail "empty grid"
  | baseline :: _ ->
    Alcotest.(check (list string))
      name
      (List.map (fun _ -> baseline) lines)
      lines

let test_workload_deterministic workload () =
  (* check:true = the PLATINUM_CHECK window monitors are armed in every
     cell; a violation raises and fails the test. *)
  fingerprint_grid ~check:true workload
  |> check_grid_identical "fingerprint identical across shards x domains"

let test_workload_deterministic_injected workload () =
  fingerprint_grid ~check:true ~inject_rate:0.02 workload
  |> check_grid_identical "fingerprint identical under 2% fault injection"

let test_injection_exercises_recovery () =
  (* At 2% over enough ops the adversary must actually fire — otherwise
     the injected grid above degenerates to the clean one. *)
  let storm =
    Scale.run ~inject_rate:0.02 ~seed:7L ~ops_per_node:60 ~config:small
      Scale.Storm
  in
  Alcotest.(check bool) "storm faults injected" true (storm.Scale.faults > 0);
  Alcotest.(check bool) "shootdown retries taken" true (storm.Scale.retries > 0);
  let echo =
    Scale.run ~inject_rate:0.02 ~seed:7L ~ops_per_node:60 ~config:small
      Scale.Echo
  in
  Alcotest.(check bool) "rpc retransmissions taken" true (echo.Scale.retries > 0)

let test_clean_vs_injected_differ () =
  let fp rate =
    (Scale.run ~inject_rate:rate ~seed:7L ~ops_per_node:30 ~config:small
       Scale.Storm)
      .Scale.fingerprint
  in
  Alcotest.(check bool) "2% injection perturbs the run" true (fp 0.0 <> fp 0.02)

let test_hierarchical_topology_visible () =
  (* On a clustered machine some traffic must cross the fabric, and the
     cross surcharge must show up against a flat machine of equal size. *)
  let r = Scale.run ~seed:7L ~ops_per_node:30 ~config:small Scale.Traffic in
  Alcotest.(check bool) "cross-fabric accesses occurred" true (r.Scale.cross > 0);
  Alcotest.(check bool) "remote accesses occurred" true
    (r.Scale.remote > r.Scale.cross);
  let flat = Config.hierarchical ~cluster_size:24 ~nodes:24 () in
  let rf = Scale.run ~seed:7L ~ops_per_node:30 ~config:flat Scale.Traffic in
  Alcotest.(check int) "flat machine sees no cross traffic" 0 rf.Scale.cross;
  Alcotest.(check bool) "cross surcharge raises mean latency" true
    (r.Scale.avg_latency_ns > rf.Scale.avg_latency_ns)

(* --- the hosted kernel: full per-node kernel simulations under Shard ---

   Same contract, harder cargo: Parkernel runs one complete Kernel.t per
   node with the coherence protocol decomposed into mailbox messages
   (DESIGN.md §4j).  The fingerprint covers every node's counters, engine
   history, module statistics, fault plane and home-page contents — pinned
   across the same shards x domains grid, clean and at 2% injection, with
   the window monitors armed (shard-local sweeps: each node's state is
   touched only by its own engine's events). *)

module Parkernel = Platinum_scale.Parkernel

let kernel_config = Config.hierarchical ~cluster_size:4 ~nodes:8 ()

let kernel_grid ?(inject_rate = 0.0) workload =
  List.concat_map
    (fun shards ->
      List.map
        (fun domains ->
          let r =
            Parkernel.run ~check:true ~shards ~domains ~inject_rate ~seed:7L
              ~iters:4 ~ops_per_node:12 ~width:64 ~config:kernel_config workload
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s s=%d d=%d verified against the oracle"
               r.Parkernel.workload shards domains)
            true r.Parkernel.verified;
          Printf.sprintf "%s events=%d windows=%d clock=%d fp=%s"
            r.Parkernel.workload r.Parkernel.events r.Parkernel.windows
            r.Parkernel.clock r.Parkernel.fingerprint)
        domain_counts)
    shard_counts

let test_kernel_deterministic workload () =
  kernel_grid workload
  |> check_grid_identical "kernel fingerprint identical across shards x domains"

let test_kernel_deterministic_injected workload () =
  kernel_grid ~inject_rate:0.02 workload
  |> check_grid_identical "kernel fingerprint identical under 2% fault injection"

let test_kernel_injection_bites () =
  (* the injected grid must not degenerate to the clean one *)
  let r =
    Parkernel.run ~check:true ~inject_rate:0.02 ~seed:7L ~iters:4 ~ops_per_node:12
      ~width:64 ~config:kernel_config Parkernel.Jacobi
  in
  Alcotest.(check bool) "faults injected" true (r.Parkernel.faults > 0);
  let clean =
    Parkernel.run ~check:true ~seed:7L ~iters:4 ~ops_per_node:12 ~width:64
      ~config:kernel_config Parkernel.Jacobi
  in
  Alcotest.(check bool) "injection perturbs the kernel run" true
    (r.Parkernel.fingerprint <> clean.Parkernel.fingerprint)

let test_kernel_protocol_exercised () =
  let j =
    Parkernel.run ~check:true ~seed:7L ~iters:4 ~width:64 ~config:kernel_config
      Parkernel.Jacobi
  in
  Alcotest.(check bool) "jacobi replicates pages" true (j.Parkernel.replications > 0);
  Alcotest.(check bool) "jacobi shoots down replicas" true (j.Parkernel.shootdowns > 0);
  Alcotest.(check bool) "shootdowns send IPIs" true
    (j.Parkernel.ipis >= j.Parkernel.shootdowns);
  let e =
    Parkernel.run ~check:true ~seed:7L ~ops_per_node:12 ~config:kernel_config
      Parkernel.Rpc_echo
  in
  Alcotest.(check int) "echo completes every round trip" (4 * 12) e.Parkernel.rpcs

let test_kernel_gb_span_sparse () =
  (* a 2^27-word address span must cost only the touched footprint and
     set up fast — the chunked-table contract *)
  let t0 = Sys.time () in
  let r =
    Parkernel.run ~check:true ~shards:4 ~domains:2 ~iters:2 ~width:64
      ~span_words:(1 lsl 27) ~config:kernel_config Parkernel.Jacobi
  in
  let setup_ms = (Sys.time () -. t0) *. 1000. in
  Alcotest.(check bool) "span covers 2^27 words" true (r.Parkernel.span_words >= 1 lsl 27);
  Alcotest.(check bool) "verified at GB span" true r.Parkernel.verified;
  Alcotest.(check bool)
    (Printf.sprintf "touched pages stay proportional to rows (%d)" r.Parkernel.touched_pages)
    true
    (r.Parkernel.touched_pages <= 8 + 4);
  Alcotest.(check bool) (Printf.sprintf "setup under 100ms (%.1f)" setup_ms) true (setup_ms < 100.)

let suite =
  let det w =
    ( Printf.sprintf "golden: %s fingerprint across shards x domains"
        (Scale.workload_name w),
      `Quick,
      test_workload_deterministic w )
  in
  let det_inj w =
    ( Printf.sprintf "golden: %s fingerprint under 2%% injection"
        (Scale.workload_name w),
      `Quick,
      test_workload_deterministic_injected w )
  in
  [
    ("shard: basics", `Quick, test_shard_basics);
    ("shard: shard count clamps to nodes", `Quick, test_shard_clamps_to_nodes);
    ("shard: lookahead enforcement", `Quick, test_post_under_lookahead_rejected);
    ("shard: cross-shard ping-pong", `Quick, test_shard_ping_pong);
  ]
  @ List.map det Scale.all_workloads
  @ List.map det_inj Scale.all_workloads
  @ [
      ("scale: injection exercises recovery", `Quick, test_injection_exercises_recovery);
      ("scale: injection perturbs the run", `Quick, test_clean_vs_injected_differ);
      ("scale: topology visible in traffic", `Quick, test_hierarchical_topology_visible);
    ]
  @ List.map
      (fun w ->
        ( Printf.sprintf "golden: kernel %s fingerprint across shards x domains"
            (Parkernel.workload_name w),
          `Quick,
          test_kernel_deterministic w ))
      Parkernel.all_workloads
  @ List.map
      (fun w ->
        ( Printf.sprintf "golden: kernel %s fingerprint under 2%% injection"
            (Parkernel.workload_name w),
          `Quick,
          test_kernel_deterministic_injected w ))
      [ Parkernel.Jacobi; Parkernel.Rpc_echo ]
  @ [
      ("kernel: injection perturbs the hosted run", `Quick, test_kernel_injection_bites);
      ("kernel: coherence protocol exercised", `Quick, test_kernel_protocol_exercised);
      ("kernel: GB-span address space stays sparse", `Quick, test_kernel_gb_span_sparse);
    ]
