(* The paper's flagship application: Gaussian elimination (Figure 1).

   Run with:  dune exec examples/gauss_demo.exe [-- N [PROCS]]

   Runs the shared-memory elimination under PLATINUM, verifies the result
   against a sequential oracle, and prints the kernel's post-mortem view:
   pivot-row pages replicated to every processor, the event-count page
   frozen — exactly §5.1's account. *)

module Runner = Platinum_runner.Runner
module Report = Platinum_stats.Report
module Gauss = Platinum_workload.Gauss
module Outcome = Platinum_workload.Outcome
module Time_ns = Platinum_sim.Time_ns

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 192 in
  let nprocs = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 16 in
  Printf.printf "eliminating a %dx%d integer matrix on %d processors...\n%!" n n nprocs;
  let params = Gauss.params ~n ~nprocs () in
  let out, main = Gauss.make params in
  let result = Runner.time main in
  if not out.Outcome.ok then failwith out.Outcome.detail;
  Format.printf "elimination phase: %a (verified against the sequential oracle)@.@."
    Time_ns.pp out.Outcome.work_ns;
  Format.printf "%a@." (Report.pp ~top:10) result.Runner.report;
  let frozen =
    List.filter (fun r -> r.Report.was_frozen) result.Runner.report.Report.pages
  in
  Printf.printf "\nfrozen pages: %s\n"
    (String.concat ", " (List.map (fun r -> r.Report.label) frozen));
  print_endline "(as in the paper: \"only the Cpage containing an array of event counts";
  print_endline " used for synchronization was frozen\")"
