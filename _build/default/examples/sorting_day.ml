(* One program, two machines (Figure 5).

   Run with:  dune exec examples/sorting_day.exe

   The same parallel merge sort runs, unchanged, on the NUMA Butterfly
   under PLATINUM and on a bus-based UMA machine with small write-through
   caches (the Sequent Symmetry model) — the kernel abstracts the memory
   system, so application code is portable across them.  PLATINUM keeps
   each merger's left input local and replicates the right; the Sequent's
   8 KB caches retain nothing between phases and every write rides the
   bus. *)

module Runner = Platinum_runner.Runner
module Mergesort = Platinum_workload.Mergesort
module Outcome = Platinum_workload.Outcome
module Uma_sys = Platinum_cache.Uma_sys
module Cache = Platinum_machine.Cache
module Time_ns = Platinum_sim.Time_ns

let () =
  let n = 16_384 and nprocs = 8 in
  Printf.printf "sorting %d words with a tree of merges on %d processors\n\n%!" n nprocs;
  (* PLATINUM / Butterfly *)
  let out_p, main_p = Mergesort.make (Mergesort.params ~n ~nprocs ()) in
  let rp = Runner.time main_p in
  assert out_p.Outcome.ok;
  Format.printf "PLATINUM/Butterfly: %a (sorted; %d coherent faults)@." Time_ns.pp
    out_p.Outcome.work_ns
    (let c = Platinum_core.Coherent.counters rp.Runner.setup.Runner.coherent in
     c.Platinum_core.Counters.read_faults + c.Platinum_core.Counters.write_faults);
  (* Sequent-like UMA *)
  let out_u, main_u = Mergesort.make (Mergesort.params ~n ~nprocs ()) in
  let ru = Runner.time_uma ~nprocs main_u in
  assert out_u.Outcome.ok;
  let hits, misses =
    let h = ref 0 and m = ref 0 in
    for p = 0 to nprocs - 1 do
      h := !h + Cache.hits (Uma_sys.cache ru.Runner.uma p);
      m := !m + Cache.misses (Uma_sys.cache ru.Runner.uma p)
    done;
    (!h, !m)
  in
  Format.printf "Sequent Symmetry:   %a (sorted; cache hit rate %.0f%%, bus %.0f%% busy)@."
    Time_ns.pp out_u.Outcome.work_ns
    (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)))
    (100. *. Uma_sys.bus_utilization ru.Runner.uma ~horizon:ru.Runner.uma_elapsed);
  Printf.printf "\nsame code, same results, different memory systems.\n"
