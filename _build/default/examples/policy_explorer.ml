(* Policy explorer: one access pattern, every replication policy.

   Run with:  dune exec examples/policy_explorer.exe [-- PATTERN]
   where PATTERN is one of: private, read-shared, ping-pong, phase.

   Shows how each policy treats the pattern — and how the PLATINUM policy
   (replicate unless recently invalidated, freeze on interference, thaw on
   phase change) gets all four of them right while each simpler policy
   fumbles at least one. *)

module Config = Platinum_machine.Config
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent
module Counters = Platinum_core.Counters
module Runner = Platinum_runner.Runner
module Patterns = Platinum_workload.Patterns
module Outcome = Platinum_workload.Outcome

let patterns =
  [
    ("private", fun () -> Patterns.private_chunks ~nprocs:8 ~pages_each:2 ~rounds:4);
    ("read-shared", fun () -> Patterns.read_shared ~nprocs:8 ~pages:2 ~rounds:6);
    ("ping-pong", fun () -> Patterns.ping_pong ~writers:8 ~rounds:64);
    ("phase", fun () -> Patterns.phase_change ~nprocs:8 ~pages:1 ~rounds:64);
  ]

let run_one name pattern =
  let config =
    (* A short defrost period so the phase-change pattern fits the demo. *)
    Config.with_policy_params ~t2_defrost_period:500_000_000
      (Config.butterfly_plus ~nprocs:8 ())
  in
  let policy =
    match Policy.of_string ~t1:config.Config.t1_freeze_window name with
    | Ok p -> p
    | Error e -> failwith e
  in
  let out, main = pattern () in
  let r = Runner.time ~config ~policy main in
  assert out.Outcome.ok;
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  (out.Outcome.work_ns, c)

let () =
  let chosen =
    if Array.length Sys.argv > 1 then
      [ (Sys.argv.(1), List.assoc Sys.argv.(1) patterns) ]
    else patterns
  in
  List.iter
    (fun (pname, pattern) ->
      Printf.printf "\n=== pattern: %s ===\n" pname;
      Printf.printf "%-18s %10s %7s %7s %7s %7s %7s\n" "policy" "time(ms)" "repl" "migr"
        "rmap" "freeze" "thaw";
      List.iter
        (fun policy_name ->
          let work, c = run_one policy_name pattern in
          Printf.printf "%-18s %10.2f %7d %7d %7d %7d %7d\n%!" policy_name
            (float_of_int work /. 1e6)
            c.Counters.replications c.Counters.migrations c.Counters.remote_maps
            c.Counters.freezes c.Counters.thaws)
        Policy.default_names)
    chosen;
  print_endline "";
  print_endline "Reading guide: 'private' wants migration then silence; 'read-shared'";
  print_endline "wants replicas; 'ping-pong' wants freezing (watch always-replicate";
  print_endline "churn); 'phase' wants a freeze and then a thaw when the writes stop."
