(* Address spaces, memory objects, and ports — the §1.1 model, complete.

   Run with:  dune exec examples/processes.exe

   "A more restricted form of sharing is realized by mapping a memory
   object into multiple address spaces.  The shared object can be
   accessed by all of the threads in those spaces, but the non-shared
   objects in each address space are protected from threads in other
   spaces."  Two "processes" (address spaces) below share one segment and
   coordinate through a port; their private heaps use overlapping virtual
   addresses without interfering — and the coherent memory migrates the
   shared pages back and forth between them as ownership of the work
   alternates. *)

module Api = Platinum_kernel.Api
module Runner = Platinum_runner.Runner
module Report = Platinum_stats.Report

let () =
  let rounds = 6 and words = 256 in
  let result =
    Runner.time (fun () ->
        let seg = Api.new_segment "mailbox-data" ~pages:1 in
        let to_b = Api.new_port () and to_a = Api.new_port () in
        (* Process A: the root address space. *)
        let base_a = Api.map_segment seg in
        let private_a = Api.alloc 4 in
        Api.write private_a 0xAAAA;
        (* Process B: its own space, own heap, sharing only the segment. *)
        let space_b = Api.new_aspace () in
        let b_private = ref 0 in
        let b_thread =
          Api.spawn ~proc:8 ~aspace:space_b (fun () ->
              let base_b = Api.map_segment seg in
              let z = Api.new_zone "b-heap" ~pages:1 in
              let private_b = Api.alloc ~zone:z 4 in
              Api.write private_b 0xBBBB;
              for _round = 1 to rounds do
                ignore (Api.recv to_b);
                (* Think a while (keeps each round's transfer outside the
                   freeze window — this is coarse-grain sharing). *)
                Api.compute 12_000_000;
                (* B squares what A left in the shared object. *)
                let data = Api.block_read base_b words in
                Api.block_write base_b (Array.map (fun x -> x * x land 0xFFFFF) data);
                Api.send to_a [| 0 |]
              done;
              b_private := Api.read private_b)
        in
        for round = 1 to rounds do
          Api.block_write base_a (Array.init words (fun i -> i + round));
          Api.send to_b [| round |];
          ignore (Api.recv to_a);
          (* Think before looking at the reply: the hand-offs stay coarser
             than the freeze window t1. *)
          Api.compute 12_000_000;
          let back = Api.block_read base_a words in
          assert (back.(3) = (3 + round) * (3 + round) land 0xFFFFF)
        done;
        Api.join b_thread;
        assert (Api.read private_a = 0xAAAA);
        assert (!b_private = 0xBBBB))
  in
  print_endline "Two address spaces, one shared memory object, ports for control.";
  Printf.printf "All %d rounds verified; each side's private heap untouched by the other.\n\n"
    rounds;
  let shared = Report.find result.Runner.report ~label_prefix:"mailbox-data" in
  List.iter
    (fun row ->
      Printf.printf
        "shared page %-18s %d read + %d write faults, %d replications, %d invalidations%s\n"
        row.Report.label row.Report.read_faults row.Report.write_faults row.Report.replications
        row.Report.invalidations
        (if row.Report.was_frozen then " (was frozen)" else ""))
    shared;
  print_endline "";
  print_endline "Each hand-off replicated the object's page to the consumer's node and";
  print_endline "invalidated the replica at the next write — the data crossed the machine";
  print_endline "every round with no copies and no placement code in either program:";
  print_endline "\"memory objects are the natural unit of data- or code-sharing";
  print_endline " between address spaces.\" (section 1.1)"
