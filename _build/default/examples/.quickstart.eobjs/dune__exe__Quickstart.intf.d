examples/quickstart.mli:
