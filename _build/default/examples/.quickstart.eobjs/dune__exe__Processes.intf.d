examples/processes.mli:
