examples/three_ways.mli:
