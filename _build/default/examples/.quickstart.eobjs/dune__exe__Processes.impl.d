examples/processes.ml: Array List Platinum_kernel Platinum_runner Platinum_stats Printf
