examples/policy_explorer.ml: Array List Platinum_core Platinum_machine Platinum_runner Platinum_workload Printf Sys
