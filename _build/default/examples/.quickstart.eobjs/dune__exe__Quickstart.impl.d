examples/quickstart.ml: Array Format List Platinum_kernel Platinum_runner Platinum_sim Platinum_stats
