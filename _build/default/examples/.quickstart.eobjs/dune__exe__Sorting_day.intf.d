examples/sorting_day.mli:
