examples/gauss_demo.ml: Array Format List Platinum_runner Platinum_sim Platinum_stats Platinum_workload Printf String Sys
