(* Quickstart: the PLATINUM programming model in one page.

   Run with:  dune exec examples/quickstart.exe

   Shared memory with no placement annotations: threads allocate, read and
   write; the coherent memory system replicates read-shared pages,
   migrates written pages, and freezes write-shared ones underneath.  The
   post-mortem report at the end shows what it did. *)

module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync
module Runner = Platinum_runner.Runner
module Report = Platinum_stats.Report
module Time_ns = Platinum_sim.Time_ns

let () =
  let workers = 8 in
  let result =
    Runner.time (fun () ->
        (* A shared table of squares, built by worker 0...
           Api.alloc_pages gives page-aligned memory in the default zone. *)
        let table_words = 4096 in
        let table = Api.alloc_pages (table_words / Api.page_words ()) in
        (* Synchronization lives in its own zone so its page (which will
           be frozen once contended) never cohabits with data. *)
        let zone_sync = Api.new_zone "sync" ~pages:1 in
        let barrier = Sync.Barrier.make ~zone:zone_sync ~parties:workers () in
        let totals = Api.alloc ~zone:zone_sync workers in
        let worker me =
          if me = 0 then
            (* First touch places the table in worker 0's memory... *)
            Api.block_write table (Array.init table_words (fun i -> i * i));
          Sync.Barrier.wait barrier;
          (* ...and these reads replicate it to everyone else's. *)
          let mine = Api.block_read table table_words in
          let sum = Array.fold_left ( + ) 0 mine in
          Api.write (totals + me) sum;
          Sync.Barrier.wait barrier
        in
        Api.spawn_join_all
          ~procs:(List.init workers (fun i -> i))
          (List.init workers (fun me _ -> worker me));
        (* Everyone computed the same sum from their replica. *)
        let expect = Api.read totals in
        for me = 1 to workers - 1 do
          assert (Api.read (totals + me) = expect)
        done)
  in
  Format.printf "ran %d workers in %a of simulated time@.@." workers Time_ns.pp
    result.Runner.elapsed;
  Format.printf "%a@." (Report.pp ~top:6) result.Runner.report;
  print_endline "";
  print_endline "Things to notice in the report:";
  print_endline "  - the table pages were replicated ~7 times each (one per reader);";
  print_endline "  - the sync page is FROZEN: the barrier's words are write-shared at";
  print_endline "    fine grain, so caching it would cost more than remote access."
