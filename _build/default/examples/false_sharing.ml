(* The §4.2 war story, live: a spin lock co-located with a read-mostly
   variable freezes the page and turns an inner-loop read into a remote
   reference on every processor but one.

   Run with:  dune exec examples/false_sharing.exe

   Three runs: the buggy layout with the defrost daemon disabled, the
   buggy layout rescued by the daemon, and the fixed program.  This is
   the experiment the kernel's per-page report was built to debug. *)

module Config = Platinum_machine.Config
module Runner = Platinum_runner.Runner
module Report = Platinum_stats.Report
module Anecdote = Platinum_workload.Anecdote
module Outcome = Platinum_workload.Outcome

let run ~old_version ~defrost =
  let nprocs = 16 in
  let t2 = if defrost then 5_000_000 else 1_000_000_000_000 in
  let config =
    Config.with_policy_params ~t2_defrost_period:t2 (Config.butterfly_plus ~nprocs ())
  in
  let out, main = Anecdote.make (Anecdote.params ~iters:12_000 ~old_version ~nprocs ()) in
  let r = Runner.time ~config main in
  assert out.Outcome.ok;
  (out.Outcome.work_ns, r)

let () =
  print_endline "A spin lock used as a start barrier shares a page with the";
  print_endline "matrix-size variable that every inner loop reads...";
  print_endline "";
  let buggy, r_buggy = run ~old_version:true ~defrost:false in
  let rescued, _ = run ~old_version:true ~defrost:true in
  let fixed, _ = run ~old_version:false ~defrost:true in
  Printf.printf "  buggy layout, no defrost daemon:   %7.1f ms\n" (float_of_int buggy /. 1e6);
  Printf.printf "  buggy layout, defrost daemon on:   %7.1f ms\n" (float_of_int rescued /. 1e6);
  Printf.printf "  fixed layout (private copies):     %7.1f ms\n" (float_of_int fixed /. 1e6);
  print_endline "";
  print_endline "How the kernel report gave the bug away (buggy run, daemon off):";
  List.iter
    (fun row ->
      if row.Report.was_frozen then
        Printf.printf "  page %-12s FROZEN  %d read faults, %d remote maps\n" row.Report.label
          row.Report.read_faults row.Report.remote_maps)
    r_buggy.Runner.report.Report.pages;
  print_endline "";
  print_endline "\"Given this instrumentation it was a simple matter to diagnose the";
  print_endline " problem and program around it by giving each thread a private";
  print_endline " matrix-size variable.\"  (section 4.2)"
