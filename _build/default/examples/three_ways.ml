(* The three ways to operate on a shared structure (§4.1).

   Run with:  dune exec examples/three_ways.exe

   "Suppose a data structure X is shared and written by p processors...
   obtain the lock for X, perform a computation f entailing r memory
   references on it, and release the lock."  The operation can be
   performed (1) in place, with remote references; (2) by moving the
   data to the operator (migration — what the coherent memory does on a
   write miss); (3) by moving the computation to the data (a remote
   procedure call — what Emerald-style languages would do on PLATINUM).

   We run the same round-robin update workload all three ways and report
   the times, plus what inequality (2) predicts for this density. *)

module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync
module Rpc = Platinum_kernel.Rpc
module Runner = Platinum_runner.Runner
module Policy = Platinum_core.Policy
module Config = Platinum_machine.Config
module M = Platinum_analysis.Migration_model

let procs = 8
let rounds_per_proc = 24
let struct_words = 512 (* X: half a page *)
let touches = 256 (* r: references per operation; rho = 256/1024 = 0.25 *)

(* One operation on X: read/update [touches] words under the lock. *)
let operate ~base ~lock_addr =
  let lock = Sync.Spinlock.of_addr lock_addr in
  Sync.Spinlock.with_lock lock (fun () ->
      let data = Api.block_read base touches in
      for i = 0 to touches - 1 do
        data.(i) <- (data.(i) + 1) land 0xFFFF
      done;
      Api.compute (touches * 500);
      Api.block_write base data)

let run_with ~policy_name ~use_rpc =
  let config = Config.butterfly_plus ~nprocs:procs () in
  let policy =
    match Policy.of_string ~t1:config.Config.t1_freeze_window policy_name with
    | Ok p -> p
    | Error e -> failwith e
  in
  let work = ref 0 in
  let r =
    Runner.time ~config ~policy (fun () ->
        let base = Api.alloc_pages 1 in
        (* The lock gets its own zone (§6's discipline), and — since we
           know it is a fine-grain synchronization word — an explicit
           freeze hint (§9), so the comparison isolates X's economics. *)
        let zone_sync = Api.new_zone "sync" ~pages:1 in
        let lock_addr = Api.alloc ~zone:zone_sync 1 in
        Api.write lock_addr 0;
        Api.advise lock_addr 1 Platinum_kernel.Memsys.Freeze;
        Api.block_write base (Array.make struct_words 0);
        let t0 = Api.now () in
        if use_rpc then begin
          (* (3): ship the operation to X's node. *)
          let server = Rpc.serve ~proc:0 (fun _ -> operate ~base ~lock_addr; [||]) in
          let worker _ =
            for _ = 1 to rounds_per_proc do
              ignore (Rpc.call server [||])
            done
          in
          Api.spawn_join_all ~procs:(List.init procs (fun i -> i))
            (List.init procs (fun _ _ -> worker ()));
          Rpc.shutdown server
        end
        else begin
          let worker _ =
            for _ = 1 to rounds_per_proc do
              operate ~base ~lock_addr
            done
          in
          Api.spawn_join_all ~procs:(List.init procs (fun i -> i))
            (List.init procs (fun _ _ -> worker ()))
        end;
        work := Api.now () - t0;
        (* X must have seen every update exactly once. *)
        let final = Api.block_read base touches in
        assert (final.(0) = (procs * rounds_per_proc) land 0xFFFF))
  in
  ignore r;
  !work

let () =
  (* r counts reads and writes: each operation reads and writes [touches]
     words, so rho = 2*touches / page_words. *)
  let rho = 2.0 *. float_of_int touches /. 1024. in
  Printf.printf "X: %d words; each operation makes %d references (rho = %.2f); %d processors\n\n"
    struct_words (2 * touches) rho procs;
  let in_place = run_with ~policy_name:"static-place" ~use_rpc:false in
  let migrate = run_with ~policy_name:"always-replicate" ~use_rpc:false in
  let platinum = run_with ~policy_name:"platinum" ~use_rpc:false in
  let rpc = run_with ~policy_name:"platinum" ~use_rpc:true in
  Printf.printf "  (1) operate in place (remote references):     %7.1f ms\n"
    (float_of_int in_place /. 1e6);
  Printf.printf "  (2) move the data (migrate on every write):   %7.1f ms\n"
    (float_of_int migrate /. 1e6);
  Printf.printf "  (3) move the computation (RPC server):        %7.1f ms\n"
    (float_of_int rpc /. 1e6);
  Printf.printf "  ... and the PLATINUM policy's own choice:     %7.1f ms\n"
    (float_of_int platinum /. 1e6);
  let g = M.g_round_robin ~p:procs in
  (match M.min_page_words M.butterfly_plus ~g ~rho with
  | Some s ->
    Printf.printf
      "\nInequality (2) with g(%d) = %.2f says migration pays above %d words — but it\n\
       charges ONE data movement per operation, while the mechanism pays TWO (the\n\
       read miss replicates, then the write miss migrates), so the real break-even\n\
       is about %d words: our 1024-word page sits at the boundary, and measurement\n\
       agrees — naive migration loses here.\n"
      procs g s (2 * s)
  | None ->
    Printf.printf
      "\ninequality (2) with g(%d) = %.2f: at this density migration never pays.\n" procs g);
  print_endline
    "The PLATINUM policy freezes the page (recent invalidations look like\n\
     interference) and lands on the better of (1)/(2) without being told.\n\
     RPC wins outright when the lock serializes anyway and shipping the\n\
     computation saves every data motion — \"implementations of languages\n\
     such as Emerald on top of PLATINUM would utilize the third option.\""
