(* platinum-report: run a workload on a configurable machine/policy and
   print the kernel's post-mortem memory-management report.

   Examples:
     dune exec bin/platinum_report.exe -- gauss --n 128 --procs 8
     dune exec bin/platinum_report.exe -- backprop --policy always-replicate
     dune exec bin/platinum_report.exe -- mergesort --page-bytes 1024 --counters *)

open Cmdliner
module Config = Platinum_machine.Config
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent
module Counters = Platinum_core.Counters
module Runner = Platinum_runner.Runner
module Report = Platinum_stats.Report
module Trace = Platinum_stats.Trace
module Outcome = Platinum_workload.Outcome
module Time_ns = Platinum_sim.Time_ns

let workloads = [ "gauss"; "gauss-mp"; "mergesort"; "backprop"; "jacobi"; "anecdote" ]

let build_workload name ~n ~nprocs =
  let module W = Platinum_workload in
  match name with
  | "gauss" -> W.Gauss.make (W.Gauss.params ~n ~nprocs ())
  | "gauss-mp" -> W.Gauss_mp.make (W.Gauss_mp.params ~n ~nprocs ())
  | "mergesort" ->
    let nprocs =
      (* round workers down to a power of two *)
      let rec p2 v = if v * 2 > nprocs then v else p2 (v * 2) in
      p2 1
    in
    W.Mergesort.make (W.Mergesort.params ~n:(n * 64) ~nprocs ())
  | "backprop" -> W.Backprop.make (W.Backprop.params ~nprocs ())
  | "jacobi" -> W.Jacobi.make (W.Jacobi.params ~n:(max 8 n) ~nprocs:(min nprocs (max 1 (n - 2))) ())
  | "anecdote" -> W.Anecdote.make (W.Anecdote.params ~old_version:true ~nprocs ())
  | other ->
    Printf.eprintf "unknown workload %S (expected one of: %s)\n" other
      (String.concat ", " workloads);
    exit 2

let run workload n procs page_bytes policy_name t1_ms t2_ms top counters trace =
  if page_bytes mod 4 <> 0 || page_bytes < 64 then begin
    Printf.eprintf "--page-bytes must be a multiple of 4, at least 64\n";
    exit 2
  end;
  let config =
    Config.with_policy_params
      ~t1_freeze_window:(t1_ms * 1_000_000)
      ~t2_defrost_period:(t2_ms * 1_000_000)
      (Config.butterfly_plus ~nprocs:procs ~page_words:(page_bytes / 4) ())
  in
  let policy =
    match Policy.of_string ~t1:config.Config.t1_freeze_window policy_name with
    | Ok p -> p
    | Error e ->
      Printf.eprintf "%s\n" e;
      exit 2
  in
  let out, main = build_workload workload ~n ~nprocs:procs in
  Format.printf "running %s on %a, policy %s@." workload Config.pp config policy.Policy.name;
  let setup = Runner.make ~config ~policy () in
  let recorder =
    if trace > 0 then begin
      let tr = Trace.create () in
      Trace.attach tr setup.Runner.coherent;
      Some tr
    end
    else None
  in
  let result = Runner.run setup ~main in
  if not out.Outcome.ok then begin
    Printf.eprintf "VERIFICATION FAILED: %s\n" out.Outcome.detail;
    exit 1
  end;
  Format.printf "@.result verified; timed phase %a, whole run %a@.@." Time_ns.pp
    out.Outcome.work_ns Time_ns.pp result.Runner.elapsed;
  Format.printf "%a@." (Report.pp ~top) result.Runner.report;
  if counters then
    Format.printf "@.%a@." Counters.pp (Coherent.counters result.Runner.setup.Runner.coherent);
  (match recorder with
  | Some tr -> Format.printf "@.%a@." (Trace.pp_timeline ~limit:trace) tr
  | None -> ());
  0

let workload_arg =
  Arg.(value & pos 0 string "gauss" & info [] ~docv:"WORKLOAD"
         ~doc:(Printf.sprintf "One of: %s." (String.concat ", " workloads)))

let n_arg =
  Arg.(value & opt int 128 & info [ "size"; "n" ] ~doc:"Problem size (matrix dimension, etc.).")

let procs_arg = Arg.(value & opt int 16 & info [ "procs" ] ~doc:"Processors.")

let page_arg =
  Arg.(value & opt int 4096 & info [ "page-bytes" ] ~doc:"Page size in bytes.")

let policy_arg =
  Arg.(value & opt string "platinum"
       & info [ "policy" ]
           ~doc:(Printf.sprintf "Replication policy: %s." (String.concat ", " Policy.default_names)))

let t1_arg = Arg.(value & opt int 10 & info [ "t1-ms" ] ~doc:"Freeze window t1 (ms).")
let t2_arg = Arg.(value & opt int 1000 & info [ "t2-ms" ] ~doc:"Defrost period t2 (ms).")
let top_arg = Arg.(value & opt int 20 & info [ "top" ] ~doc:"Report rows to print.")

let counters_arg =
  Arg.(value & flag & info [ "counters" ] ~doc:"Also print global protocol counters.")

let trace_arg =
  Arg.(value & opt int 0
       & info [ "trace" ] ~doc:"Print the first N protocol events as a timeline (0 = off).")

let cmd =
  let doc = "run a PLATINUM workload and print the kernel post-mortem report" in
  Cmd.v
    (Cmd.info "platinum-report" ~doc)
    Term.(
      const run $ workload_arg $ n_arg $ procs_arg $ page_arg $ policy_arg $ t1_arg $ t2_arg
      $ top_arg $ counters_arg $ trace_arg)

let () = exit (Cmd.eval' cmd)
