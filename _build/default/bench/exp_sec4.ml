(* §4 micro-measurements: the cost of the basic coherent-memory
   operations, measured on the simulated Butterfly Plus and compared to
   the ranges the paper reports. *)

open Exp_common
module Machine = Platinum_machine.Machine
module Engine = Platinum_sim.Engine
module Rights = Platinum_core.Rights
module Cmap = Platinum_core.Cmap

type env = { coh : Coherent.t; cm : Cmap.t }

let mk () =
  let config = Config.butterfly_plus ~nprocs:16 () in
  let policy = policy_named "platinum" config in
  let coh =
    Coherent.create (Machine.create config) ~engine:(Engine.create ()) ~policy
      ~frames_per_module:64 ()
  in
  let cm = Coherent.new_aspace coh in
  { coh; cm }

let bind ?home env vpage =
  let page = Coherent.new_cpage env.coh ?home () in
  Coherent.bind env.coh env.cm ~vpage page Rights.Read_write;
  page

let warm env procs =
  ignore (bind env 99);
  List.iter
    (fun proc -> ignore (Coherent.read_word env.coh ~now:0 ~proc ~cmap:env.cm ~vaddr:(99 * 1024)))
    procs

let read env ~now ~proc = snd (Coherent.read_word env.coh ~now ~proc ~cmap:env.cm ~vaddr:0)
let write env ~now ~proc v = Coherent.write_word env.coh ~now ~proc ~cmap:env.cm ~vaddr:0 v

let row what ours paper =
  Printf.printf "%-52s %10s %14s\n" what ours paper

let run (_ : scale) =
  section "Section 4 — cost of basic coherent-memory operations";
  row "operation" "measured" "paper";
  Printf.printf "%s\n" (String.make 78 '-');
  (* page copy *)
  let config = Config.butterfly_plus () in
  let copy = config.Config.page_words * config.Config.t_block_word in
  row "block transfer, one 4 KB page" (Printf.sprintf "%.2f ms" (ms_of copy)) "1.11 ms";
  (* read miss, non-modified, local vs remote metadata *)
  let env = mk () in
  let _ = bind ~home:1 env 0 in
  warm env [ 0; 1 ];
  ignore (read env ~now:0 ~proc:0);
  let fast = read env ~now:10_000_000 ~proc:1 in
  let env = mk () in
  let _ = bind ~home:7 env 0 in
  warm env [ 0; 1 ];
  ignore (read env ~now:0 ~proc:0);
  let slow = read env ~now:10_000_000 ~proc:1 in
  row "read miss, replicate non-modified page"
    (Printf.sprintf "%.2f-%.2f ms" (ms_of fast) (ms_of slow))
    "1.34-1.38 ms";
  (* read miss on a modified page, 1 restrict *)
  let env = mk () in
  let _ = bind ~home:1 env 0 in
  warm env [ 0; 1 ];
  ignore (write env ~now:0 ~proc:0 5);
  let idle = read env ~now:10_000_000 ~proc:1 in
  let env = mk () in
  let _ = bind ~home:1 env 0 in
  warm env [ 0; 1 ];
  ignore (write env ~now:0 ~proc:0 5);
  Machine.set_proc_busy_until (Coherent.machine env.coh) ~proc:0 10_400_000;
  let busy = read env ~now:10_000_000 ~proc:1 in
  row "read miss, replicate modified page (1 restrict)"
    (Printf.sprintf "%.2f-%.2f ms" (ms_of idle) (ms_of busy))
    "1.38-1.59 ms";
  (* write miss on present+ *)
  let env = mk () in
  let _ = bind ~home:1 env 0 in
  warm env [ 0; 1 ];
  ignore (write env ~now:0 ~proc:0 1);
  ignore (read env ~now:10_000_000 ~proc:1);
  let wm = write env ~now:20_000_000 ~proc:1 2 in
  row "write miss, present+ (1 invalidate, 1 page freed)"
    (Printf.sprintf "%.2f ms" (ms_of wm))
    "0.25-0.45 ms";
  (* incremental shootdown cost per extra processor *)
  let measure readers =
    let env = mk () in
    let _ = bind ~home:1 env 0 in
    ignore (write env ~now:0 ~proc:0 1);
    for r = 1 to readers do
      ignore (read env ~now:(r * 10_000_000) ~proc:r)
    done;
    write env ~now:1_000_000_000 ~proc:0 2
  in
  let deltas =
    List.map (fun r -> measure (r + 1) - measure r) [ 1; 3; 7; 11; 14 ]
  in
  let dmin = List.fold_left min max_int deltas and dmax = List.fold_left max 0 deltas in
  row "incremental cost per extra interrupted processor"
    (Printf.sprintf "%.0f-%.0f us" (float_of_int dmin /. 1e3) (float_of_int dmax /. 1e3))
    "<= 17 us";
  row "  of which: free one physical page"
    (Printf.sprintf "%.0f us" (float_of_int config.Config.page_free_ns /. 1e3))
    "~10 us";
  row "  of which: interrupt a processor"
    (Printf.sprintf "%.0f us" (float_of_int config.Config.ipi_send_ns /. 1e3))
    "~7 us (Mach on a Multimax: 55 us)";
  Printf.printf "\n";
  check_shape "non-modified replicate in [1.30, 1.42] ms" (fast >= 1_300_000 && slow <= 1_420_000);
  check_shape "modified replicate in [1.35, 1.62] ms" (idle >= 1_350_000 && busy <= 1_620_000);
  check_shape "present+ write miss in [0.24, 0.46] ms" (wm >= 240_000 && wm <= 460_000);
  check_shape "incremental cost <= 17 us" (dmax <= 17_000)
