(* The §4.2 anecdote: a spin lock co-located with a read-mostly variable
   freezes the page; the defrost daemon salvages the program. *)

open Exp_common
module Anecdote = Platinum_workload.Anecdote
module Report = Platinum_stats.Report

let run (scale : scale) =
  section "Section 4.2 anecdote — spin lock co-located with the matrix-size variable";
  let nprocs = List.fold_left max 1 scale.procs in
  let iters = if scale.full then 40_000 else 12_000 in
  (* The defrost period is scaled with the (short) simulated run the same
     way the paper's 1 s related to its multi-minute runs. *)
  let t2 = 5_000_000 in
  let work ~old_version ~defrost =
    let t2 = if defrost then t2 else 1_000_000_000_000 in
    let config =
      Config.with_policy_params ~t2_defrost_period:t2 (Config.butterfly_plus ~nprocs ())
    in
    run_platinum ~config
      (Anecdote.make (Anecdote.params ~iters ~old_version ~nprocs ()))
  in
  let new_ns, _ = work ~old_version:false ~defrost:true in
  let old_frozen, r_frozen = work ~old_version:true ~defrost:false in
  let old_thawed, r_thawed = work ~old_version:true ~defrost:true in
  Printf.printf "%d workers, %d inner-loop iterations, t2 = %s\n\n" nprocs iters
    (Platinum_sim.Time_ns.to_string t2);
  Printf.printf "%-54s %10s\n" "version" "time";
  Printf.printf "%s\n" (String.make 66 '-');
  Printf.printf "%-54s %9.1fms\n" "fixed program (private matrix-size copies)" (ms_of new_ns);
  Printf.printf "%-54s %9.1fms\n" "old program, defrost daemon disabled (stays frozen)"
    (ms_of old_frozen);
  Printf.printf "%-54s %9.1fms\n" "old program, defrost daemon enabled (thawed)"
    (ms_of old_thawed);
  let frozen_now r =
    List.exists (fun row -> row.Report.frozen_now)
      (Report.find r.Runner.report ~label_prefix:"heap")
  in
  Printf.printf
    "\npaper: the frozen page made the shared variable a remote reference in every\n\
     inner loop — \"a bottleneck with five or more processors\"; with thawing the\n\
     old program ran less than two seconds slower than the fixed one.\n\n";
  check_shape "old version without thawing is dramatically slower"
    (float_of_int old_frozen > 1.8 *. float_of_int new_ns);
  check_shape "its parameter page is still frozen at exit" (frozen_now r_frozen);
  check_shape "the defrost daemon recovers most of the loss"
    (float_of_int old_thawed < 1.3 *. float_of_int new_ns);
  check_shape "and the page ends thawed"
    (List.exists
       (fun row -> row.Report.was_frozen && not row.Report.frozen_now)
       (Report.find r_thawed.Runner.report ~label_prefix:"heap"))
