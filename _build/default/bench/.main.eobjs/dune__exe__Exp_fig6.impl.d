bench/exp_fig6.ml: Exp_common List Platinum_stats Platinum_workload Printf Runner
