bench/exp_bechamel.ml: Analyze Bechamel Benchmark Exp_common Hashtbl Instance Int Measure Platinum_core Platinum_machine Platinum_sim Printf Staged Test Time Toolkit
