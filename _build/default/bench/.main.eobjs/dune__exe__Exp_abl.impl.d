bench/exp_abl.ml: Coherent Config Counters Exp_common List Platinum_core Platinum_workload Printf Runner String
