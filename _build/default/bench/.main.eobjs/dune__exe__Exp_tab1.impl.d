bench/exp_tab1.ml: Exp_common List Platinum_analysis Printf String
