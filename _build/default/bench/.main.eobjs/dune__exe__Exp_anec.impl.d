bench/exp_anec.ml: Config Exp_common List Platinum_sim Platinum_stats Platinum_workload Printf Runner String
