bench/exp_arch.ml: Array Coherent Config Counters Exp_common List Platinum_analysis Platinum_core Platinum_kernel Platinum_machine Platinum_workload Printf Runner String
