bench/exp_fig1.ml: Config Exp_common List Platinum_workload Printf
