bench/exp_fig5.ml: Exp_common List Platinum_cache Platinum_workload Printf
