bench/exp_fig4.ml: Exp_common Format List Platinum_core Printf
