bench/exp_sec4.ml: Coherent Config Exp_common List Platinum_core Platinum_machine Platinum_sim Printf String
