bench/main.mli:
