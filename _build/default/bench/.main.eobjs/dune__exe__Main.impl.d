bench/main.ml: Arg Cmd Cmdliner Exp_abl Exp_anec Exp_arch Exp_bechamel Exp_common Exp_fig1 Exp_fig4 Exp_fig5 Exp_fig6 Exp_sec4 Exp_tab1 List Printf Sys Term
