(* Workload tests: application self-verification under every policy, plus
   the memory-behaviour claims the paper makes about each program. *)

module Runner = Platinum_runner.Runner
module Report = Platinum_stats.Report
module Config = Platinum_machine.Config
module Policy = Platinum_core.Policy
module Outcome = Platinum_workload.Outcome
module Gauss = Platinum_workload.Gauss
module Gauss_mp = Platinum_workload.Gauss_mp
module Mergesort = Platinum_workload.Mergesort
module Backprop = Platinum_workload.Backprop
module Patterns = Platinum_workload.Patterns
module Anecdote = Platinum_workload.Anecdote
module Counters = Platinum_core.Counters
module Coherent = Platinum_core.Coherent

let policy name config =
  match Policy.of_string ~t1:config.Config.t1_freeze_window name with
  | Ok p -> p
  | Error e -> failwith e

let run_outcome ?config ?policy (out, main) =
  let r = Runner.time ?config ?policy main in
  if not out.Outcome.ok then Alcotest.fail out.Outcome.detail;
  (out, r)

(* --- Gaussian elimination --- *)

let test_gauss_correct_small () =
  List.iter
    (fun nprocs ->
      let p = Gauss.params ~n:48 ~nprocs () in
      ignore (run_outcome (Gauss.make p)))
    [ 1; 3; 4; 16 ]

let test_gauss_correct_all_policies () =
  let config = Config.butterfly_plus ~nprocs:8 () in
  List.iter
    (fun name ->
      let p = Gauss.params ~n:32 ~nprocs:8 () in
      ignore (run_outcome ~config ~policy:(policy name config) (Gauss.make p)))
    Policy.default_names

let test_gauss_memory_behaviour () =
  let p = Gauss.params ~n:64 ~nprocs:8 () in
  let out, r = run_outcome (Gauss.make p) in
  ignore out;
  (* The paper: only the event-count page is frozen; pivot rows replicate. *)
  let sync_rows = Report.find r.Runner.report ~label_prefix:"gauss-sync" in
  Alcotest.(check bool) "the sync page froze" true
    (List.exists (fun row -> row.Report.was_frozen) sync_rows);
  let heap_rows = Report.find r.Runner.report ~label_prefix:"heap" in
  Alcotest.(check bool) "no matrix page froze" true
    (List.for_all (fun row -> not row.Report.was_frozen) heap_rows);
  let replicated = List.filter (fun row -> row.Report.replications >= 7) heap_rows in
  Alcotest.(check bool) "pivot rows replicated to every processor" true
    (List.length replicated >= 32)

let test_gauss_speedup_order () =
  (* Shape, not absolute numbers: more processors must help.  n = 96 rows
     in 1 KB pages keeps the reference density in the regime where
     replication pays (Table 1); the paper's full-size regime (n = 800,
     4 KB pages) is the fig1 benchmark. *)
  let work n nprocs =
    let config = Config.butterfly_plus ~nprocs ~page_words:256 () in
    let out, _ =
      run_outcome ~config (Gauss.make (Gauss.params ~n ~nprocs ~verify:false ()))
    in
    out.Outcome.work_ns
  in
  let t1 = work 96 1 and t4 = work 96 4 and t8 = work 96 8 in
  Alcotest.(check bool) "4 procs beat 1" true (t4 < t1);
  Alcotest.(check bool) "8 procs beat 4" true (t8 < t4)

let test_gauss_platinum_beats_uniform_system () =
  (* 1 KB pages keep n = 96 in the density regime where replication pays
     (Table 1: rho = 96/256 = 0.375 > the never-pay threshold). *)
  let config = Config.butterfly_plus ~nprocs:8 ~page_words:256 () in
  let work name =
    let out, _ =
      run_outcome ~config ~policy:(policy name config)
        (Gauss.make (Gauss.params ~n:96 ~nprocs:8 ~verify:false ()))
    in
    out.Outcome.work_ns
  in
  Alcotest.(check bool) "coherent memory beats the Uniform-System baseline" true
    (work "platinum" < work "uniform-system")

(* --- message-passing variant --- *)

let test_gauss_mp_correct () =
  List.iter
    (fun nprocs ->
      let p = Gauss_mp.params ~n:48 ~nprocs () in
      ignore (run_outcome (Gauss_mp.make p)))
    [ 1; 2; 5; 8 ]

let test_gauss_mp_no_data_sharing () =
  (* verify:false — the checking pass block-reads every row from the main
     thread and would itself replicate them. *)
  let p = Gauss_mp.params ~n:48 ~nprocs:8 ~verify:false () in
  let _, r = run_outcome (Gauss_mp.make p) in
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  (* Rows are private: the protocol never moves or invalidates them. *)
  Alcotest.(check int) "no migrations" 0 c.Counters.migrations;
  let row_repl =
    List.fold_left
      (fun acc row -> acc + row.Report.replications)
      0
      (Report.find r.Runner.report ~label_prefix:"heap")
  in
  Alcotest.(check int) "no data-page replication" 0 row_repl

(* --- merge sort --- *)

let test_mergesort_correct () =
  List.iter
    (fun (n, nprocs) ->
      let p = Mergesort.params ~n ~nprocs () in
      ignore (run_outcome (Mergesort.make p)))
    [ (1024, 1); (1024, 2); (4096, 8); (1000, 4) (* rounds up *) ]

let test_mergesort_rejects_bad_procs () =
  Alcotest.(check bool) "non-power-of-two rejected" true
    (try
       ignore (Mergesort.params ~nprocs:3 ());
       false
     with Invalid_argument _ -> true)

let test_mergesort_all_policies () =
  let config = Config.butterfly_plus ~nprocs:4 () in
  List.iter
    (fun name ->
      let p = Mergesort.params ~n:2048 ~nprocs:4 () in
      ignore (run_outcome ~config ~policy:(policy name config) (Mergesort.make p)))
    Policy.default_names

let test_mergesort_on_uma () =
  (* The same program runs unchanged on the Sequent-like machine. *)
  let p = Mergesort.params ~n:4096 ~nprocs:4 () in
  let out, main = Mergesort.make p in
  let r = Runner.time_uma ~nprocs:4 main in
  if not out.Outcome.ok then Alcotest.fail out.Outcome.detail;
  Alcotest.(check bool) "ran" true (r.Runner.uma_elapsed > 0)

let test_mergesort_platinum_beats_small_cache_uma () =
  (* Figure 5 compares SPEEDUP curves: the Butterfly under PLATINUM scales
     better than the Sequent, whose small write-through caches put every
     write (and almost every read of the large problem) on one bus. *)
  let n = 32_768 in
  let plat nprocs =
    let out, main = Mergesort.make (Mergesort.params ~n ~nprocs ~verify:false ()) in
    ignore (Runner.time main);
    out.Outcome.work_ns
  in
  let uma nprocs =
    let out, main = Mergesort.make (Mergesort.params ~n ~nprocs ~verify:false ()) in
    ignore (Runner.time_uma ~nprocs main);
    out.Outcome.work_ns
  in
  let speedup_p = float_of_int (plat 1) /. float_of_int (plat 8) in
  let speedup_u = float_of_int (uma 1) /. float_of_int (uma 8) in
  Alcotest.(check bool)
    (Printf.sprintf "PLATINUM speedup %.2f > Sequent speedup %.2f" speedup_p speedup_u)
    true (speedup_p > speedup_u)

(* --- backprop --- *)

let test_backprop_runs_and_bounded () =
  List.iter
    (fun nprocs ->
      let p = Backprop.params ~epochs:2 ~patterns:4 ~nprocs () in
      ignore (run_outcome (Backprop.make p)))
    [ 1; 2; 8 ]

let test_backprop_pages_freeze () =
  let p = Backprop.params ~epochs:2 ~patterns:4 ~nprocs:8 () in
  let _, r = run_outcome (Backprop.make p) in
  (* "The coherent memory system quickly gives up and the data pages of
     the application are frozen in place." *)
  let data_rows = Report.find r.Runner.report ~label_prefix:"heap" in
  Alcotest.(check bool) "all shared data pages froze" true
    (data_rows <> [] && List.for_all (fun row -> row.Report.was_frozen) data_rows)

(* --- synthetic patterns --- *)

let test_private_chunks_stay_local () =
  let out, main = Patterns.private_chunks ~nprocs:4 ~pages_each:2 ~rounds:3 in
  let r = Runner.time main in
  if not out.Outcome.ok then Alcotest.fail out.Outcome.detail;
  (* Only data pages matter: the shared barrier freezes by design. *)
  let heap = Report.find r.Runner.report ~label_prefix:"heap" in
  Alcotest.(check bool) "private data never frozen" true
    (List.for_all (fun row -> not row.Report.was_frozen) heap);
  Alcotest.(check bool) "private data never invalidated" true
    (List.for_all (fun row -> row.Report.invalidations = 0) heap)

let test_read_shared_replicates () =
  let out, main = Patterns.read_shared ~nprocs:4 ~pages:2 ~rounds:3 in
  let r = Runner.time main in
  if not out.Outcome.ok then Alcotest.fail out.Outcome.detail;
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  (* Each of 2 data pages replicated to the 3 non-writer processors. *)
  Alcotest.(check bool) "one replica per (page, proc)" true (c.Counters.replications >= 6);
  Alcotest.(check int) "no data-page freezes" 0
    (List.length
       (List.filter
          (fun row -> row.Report.was_frozen)
          (Report.find r.Runner.report ~label_prefix:"heap")))

let test_ping_pong_freezes () =
  let out, main = Patterns.ping_pong ~writers:4 ~rounds:40 in
  let r = Runner.time main in
  if not out.Outcome.ok then Alcotest.fail out.Outcome.detail;
  let rows = Report.find r.Runner.report ~label_prefix:"heap" in
  Alcotest.(check bool) "the ping-pong page froze" true
    (List.exists (fun row -> row.Report.was_frozen) rows)

let test_phase_change_thaws () =
  (* Shrink t2 so the daemon fires inside the quiet period. *)
  let config =
    Config.with_policy_params ~t2_defrost_period:500_000_000 (Config.butterfly_plus ~nprocs:4 ())
  in
  let out, main = Patterns.phase_change ~nprocs:4 ~pages:1 ~rounds:50 in
  let r = Runner.time ~config main in
  if not out.Outcome.ok then Alcotest.fail out.Outcome.detail;
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  Alcotest.(check bool) "froze during phase 1" true (c.Counters.freezes >= 1);
  Alcotest.(check bool) "daemon thawed it" true (c.Counters.thaws >= 1);
  let rows = Report.find r.Runner.report ~label_prefix:"heap" in
  Alcotest.(check bool) "replicated after the thaw" true
    (List.exists (fun row -> row.Report.replications > 0 && row.Report.was_frozen) rows)

(* --- the §4.2 anecdote --- *)

let anecdote_work ~old_version ~t2 =
  let config =
    Config.with_policy_params ~t2_defrost_period:t2 (Config.butterfly_plus ~nprocs:8 ())
  in
  let out, main = Anecdote.make (Anecdote.params ~iters:12_000 ~old_version ~nprocs:8 ()) in
  let r = Runner.time ~config main in
  if not out.Outcome.ok then Alcotest.fail out.Outcome.detail;
  (out.Outcome.work_ns, r)

let test_anecdote_old_slower () =
  let huge_t2 = 1_000_000_000_000 (* effectively no defrost *) in
  let old_ns, r = anecdote_work ~old_version:true ~t2:huge_t2 in
  let new_ns, _ = anecdote_work ~old_version:false ~t2:huge_t2 in
  Alcotest.(check bool) "co-located lock is dramatically slower" true
    (float_of_int old_ns > 1.5 *. float_of_int new_ns);
  (* And the parameter page is indeed frozen. *)
  let rows = Report.find r.Runner.report ~label_prefix:"heap" in
  Alcotest.(check bool) "parameter page frozen" true
    (List.exists (fun row -> row.Report.frozen_now) rows)

let test_anecdote_defrost_rescues () =
  let old_frozen, _ = anecdote_work ~old_version:true ~t2:1_000_000_000_000 in
  let old_thawed, r = anecdote_work ~old_version:true ~t2:5_000_000 in
  let new_ns, _ = anecdote_work ~old_version:false ~t2:5_000_000 in
  Alcotest.(check bool) "thawing recovers most of the loss" true
    (float_of_int old_thawed < 0.65 *. float_of_int old_frozen);
  Alcotest.(check bool) "thawed old version close to the fixed one" true
    (float_of_int old_thawed < 1.3 *. float_of_int new_ns);
  let c = Coherent.counters r.Runner.setup.Runner.coherent in
  Alcotest.(check bool) "the daemon actually thawed" true (c.Counters.thaws >= 1)

(* --- jacobi --- *)

let test_jacobi_all_policies () =
  let config = Config.butterfly_plus ~nprocs:4 () in
  List.iter
    (fun name ->
      let module J = Platinum_workload.Jacobi in
      let out, main = J.make (J.params ~n:24 ~iters:3 ~nprocs:4 ()) in
      ignore (Runner.time ~config ~policy:(policy name config) main);
      if not out.Outcome.ok then
        Alcotest.fail (Printf.sprintf "jacobi under %s: %s" name out.Outcome.detail))
    Policy.default_names

(* --- parameter validation --- *)

let test_param_validation () =
  let rejects f = Alcotest.(check bool) "rejected" true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  rejects (fun () -> Gauss.params ~n:1 ~nprocs:4 ());
  rejects (fun () -> Gauss.params ~n:16 ~nprocs:0 ());
  rejects (fun () -> Mergesort.params ~nprocs:6 ());
  rejects (fun () -> Mergesort.params ~chunk:0 ~nprocs:4 ());
  rejects (fun () -> Backprop.params ~units:1 ~nprocs:2 ());
  rejects (fun () -> Platinum_workload.Jacobi.params ~n:3 ~nprocs:1 ());
  rejects (fun () -> Platinum_workload.Jacobi.params ~n:16 ~nprocs:15 ())

(* --- determinism --- *)

let test_runs_are_deterministic () =
  let go () =
    let out, main = Gauss.make (Gauss.params ~n:48 ~nprocs:4 ~verify:false ()) in
    let r = Runner.time main in
    (out.Outcome.work_ns, r.Runner.elapsed)
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "bit-identical timing across runs" true (a = b)

let suite =
  [
    ("gauss: correct at several widths", `Quick, test_gauss_correct_small);
    ("gauss: correct under every policy", `Quick, test_gauss_correct_all_policies);
    ("gauss: only the sync page freezes", `Quick, test_gauss_memory_behaviour);
    ("gauss: speedup shape", `Slow, test_gauss_speedup_order);
    ("gauss: beats the Uniform System", `Slow, test_gauss_platinum_beats_uniform_system);
    ("gauss-mp: correct", `Quick, test_gauss_mp_correct);
    ("gauss-mp: no coherence traffic on data", `Quick, test_gauss_mp_no_data_sharing);
    ("mergesort: correct", `Quick, test_mergesort_correct);
    ("mergesort: rejects bad proc counts", `Quick, test_mergesort_rejects_bad_procs);
    ("mergesort: correct under every policy", `Quick, test_mergesort_all_policies);
    ("mergesort: runs on the UMA machine", `Quick, test_mergesort_on_uma);
    ("mergesort: beats the small-cache UMA", `Slow, test_mergesort_platinum_beats_small_cache_uma);
    ("backprop: runs, bounded", `Quick, test_backprop_runs_and_bounded);
    ("backprop: data pages freeze", `Quick, test_backprop_pages_freeze);
    ("patterns: private data stays local", `Quick, test_private_chunks_stay_local);
    ("patterns: read-shared data replicates", `Quick, test_read_shared_replicates);
    ("patterns: ping-pong freezes", `Quick, test_ping_pong_freezes);
    ("patterns: phase change thaws", `Quick, test_phase_change_thaws);
    ("anecdote: co-located lock is a disaster", `Quick, test_anecdote_old_slower);
    ("anecdote: the defrost daemon rescues it", `Quick, test_anecdote_defrost_rescues);
    ("jacobi: correct under every policy", `Quick, test_jacobi_all_policies);
    ("workloads: parameter validation", `Quick, test_param_validation);
    ("determinism: identical runs", `Quick, test_runs_are_deterministic);
  ]
