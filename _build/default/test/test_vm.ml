(* Tests for the machine-independent VM layer: memory objects, address
   spaces, zones. *)

module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Engine = Platinum_sim.Engine
module Rights = Platinum_core.Rights
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent
module Cpage = Platinum_core.Cpage
module Memobj = Platinum_vm.Memobj
module Addr_space = Platinum_vm.Addr_space
module Zone = Platinum_vm.Zone

let mk_coh ?(nprocs = 4) ?(page_words = 8) () =
  let config = Config.butterfly_plus ~nprocs ~page_words () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  Coherent.create (Machine.create config) ~engine:(Engine.create ()) ~policy
    ~frames_per_module:16 ()

(* --- Memobj --- *)

let test_memobj_lazy_pages () =
  let coh = mk_coh () in
  let obj = Memobj.create coh ~name:"data" ~npages:4 in
  Alcotest.(check int) "npages" 4 (Memobj.npages obj);
  Alcotest.(check bool) "no pages yet" true (Memobj.page_if_exists obj ~index:2 = None);
  let p = Memobj.page obj ~index:2 in
  Alcotest.(check bool) "created on demand" true (Memobj.page_if_exists obj ~index:2 = Some p);
  Alcotest.(check bool) "same page on re-request" true (Memobj.page obj ~index:2 == p);
  Alcotest.(check string) "labelled" "data[2]" p.Cpage.label

let test_memobj_bounds () =
  let coh = mk_coh () in
  let obj = Memobj.create coh ~name:"x" ~npages:2 in
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Memobj.page obj ~index:2);
       false
     with Invalid_argument _ -> true)

let test_memobj_iter () =
  let coh = mk_coh () in
  let obj = Memobj.create coh ~name:"x" ~npages:5 in
  ignore (Memobj.page obj ~index:1);
  ignore (Memobj.page obj ~index:3);
  let seen = ref [] in
  Memobj.iter_pages (fun i _ -> seen := i :: !seen) obj;
  Alcotest.(check (list int)) "only existing pages" [ 1; 3 ] (List.sort compare !seen)

(* --- Addr_space --- *)

let test_aspace_map_fault () =
  let coh = mk_coh () in
  let asp = Addr_space.create coh in
  let obj = Memobj.create coh ~name:"seg" ~npages:3 in
  Addr_space.map asp ~at_page:10 ~obj ~rights:Rights.Read_write ();
  (let resolved = Addr_space.resolve asp ~vpage:11 in
   Alcotest.(check bool) "resolve inside" true
     (match resolved with
     | Some (o, 1) -> Memobj.id o = Memobj.id obj
     | Some _ | None -> false));
  Alcotest.(check bool) "resolve outside" true (Addr_space.resolve asp ~vpage:13 = None);
  let lat = Addr_space.fault asp ~now:0 ~vpage:11 in
  Alcotest.(check bool) "fault charged" true (lat > 0);
  (* The binding is now live: a read through coherent memory works. *)
  let pw = Addr_space.page_words asp in
  let v, _ =
    Coherent.read_word coh ~now:0 ~proc:0 ~cmap:(Addr_space.cmap asp) ~vaddr:(11 * pw)
  in
  Alcotest.(check int) "zero-fill read" 0 v

let test_aspace_fault_unbound () =
  let coh = mk_coh () in
  let asp = Addr_space.create coh in
  Alcotest.(check bool) "address error" true
    (try
       ignore (Addr_space.fault asp ~now:0 ~vpage:999);
       false
     with Addr_space.Address_error { vpage = 999; _ } -> true)

let test_aspace_overlap_rejected () =
  let coh = mk_coh () in
  let asp = Addr_space.create coh in
  let a = Memobj.create coh ~name:"a" ~npages:4 in
  let b = Memobj.create coh ~name:"b" ~npages:4 in
  Addr_space.map asp ~at_page:0 ~obj:a ~rights:Rights.Read_write ();
  Alcotest.(check bool) "overlap rejected" true
    (try
       Addr_space.map asp ~at_page:3 ~obj:b ~rights:Rights.Read_write ();
       false
     with Invalid_argument _ -> true)

let test_aspace_partial_object_binding () =
  let coh = mk_coh () in
  let asp = Addr_space.create coh in
  let obj = Memobj.create coh ~name:"big" ~npages:10 in
  Addr_space.map asp ~at_page:0 ~obj ~obj_offset:4 ~npages:2 ~rights:Rights.Read_only ();
  Alcotest.(check bool) "offset respected" true
    (match Addr_space.resolve asp ~vpage:1 with
    | Some (o, 5) -> Memobj.id o = Memobj.id obj
    | Some _ | None -> false)

let test_aspace_unmap () =
  let coh = mk_coh () in
  let asp = Addr_space.create coh in
  let obj = Memobj.create coh ~name:"seg" ~npages:2 in
  Addr_space.map asp ~at_page:0 ~obj ~rights:Rights.Read_write ();
  ignore (Addr_space.fault asp ~now:0 ~vpage:0);
  let _ = Coherent.write_word coh ~now:0 ~proc:0 ~cmap:(Addr_space.cmap asp) ~vaddr:0 7 in
  ignore (Addr_space.unmap asp ~now:0 ~at_page:0 ~npages:2);
  Alcotest.(check bool) "unbound after unmap" true (Addr_space.resolve asp ~vpage:0 = None);
  (* Remapping the same object sees the same data: the object owns it. *)
  Addr_space.map asp ~at_page:5 ~obj ~rights:Rights.Read_write ();
  let pw = Addr_space.page_words asp in
  ignore (Addr_space.fault asp ~now:0 ~vpage:5);
  let v, _ = Coherent.read_word coh ~now:0 ~proc:0 ~cmap:(Addr_space.cmap asp) ~vaddr:(5 * pw) in
  Alcotest.(check int) "object data survives unmap" 7 v

let test_aspace_two_spaces_one_object () =
  let coh = mk_coh () in
  let asp1 = Addr_space.create coh in
  let asp2 = Addr_space.create coh in
  let obj = Memobj.create coh ~name:"shared" ~npages:1 in
  Addr_space.map asp1 ~at_page:0 ~obj ~rights:Rights.Read_write ();
  Addr_space.map asp2 ~at_page:7 ~obj ~rights:Rights.Read_only ();
  ignore (Addr_space.fault asp1 ~now:0 ~vpage:0);
  ignore (Addr_space.fault asp2 ~now:0 ~vpage:7);
  let _ = Coherent.write_word coh ~now:0 ~proc:0 ~cmap:(Addr_space.cmap asp1) ~vaddr:3 55 in
  let pw = Addr_space.page_words asp1 in
  let v, _ =
    Coherent.read_word coh ~now:1000 ~proc:1 ~cmap:(Addr_space.cmap asp2) ~vaddr:((7 * pw) + 3)
  in
  Alcotest.(check int) "same object through both spaces" 55 v

let test_map_new_object_no_overlap () =
  let coh = mk_coh () in
  let asp = Addr_space.create coh in
  let _, base1 = Addr_space.map_new_object asp ~name:"a" ~npages:3 ~rights:Rights.Read_write in
  let _, base2 = Addr_space.map_new_object asp ~name:"b" ~npages:3 ~rights:Rights.Read_write in
  Alcotest.(check bool) "disjoint ranges" true (abs (base2 - base1) >= 3)

(* --- Zone --- *)

let test_zone_alloc () =
  let coh = mk_coh () in
  let asp = Addr_space.create coh in
  let z = Zone.create asp ~name:"z" ~pages:2 () in
  let a = Zone.alloc z ~words:3 () in
  let b = Zone.alloc z ~words:3 () in
  Alcotest.(check int) "bump allocation" (a + 3) b;
  Alcotest.(check int) "used" 6 (Zone.used_words z)

let test_zone_page_aligned () =
  let coh = mk_coh ~page_words:8 () in
  let asp = Addr_space.create coh in
  let z = Zone.create asp ~name:"z" ~pages:4 () in
  ignore (Zone.alloc z ~words:3 ());
  let b = Zone.alloc z ~words:8 ~page_aligned:true () in
  Alcotest.(check int) "aligned" 0 (b mod 8);
  let c = Zone.alloc_pages z ~pages:1 in
  Alcotest.(check int) "alloc_pages aligned" 0 (c mod 8)

let test_zone_exhaustion () =
  let coh = mk_coh ~page_words:8 () in
  let asp = Addr_space.create coh in
  let z = Zone.create asp ~name:"z" ~pages:1 () in
  ignore (Zone.alloc z ~words:8 ());
  Alcotest.(check bool) "exhausted" true
    (try
       ignore (Zone.alloc z ~words:1 ());
       false
     with Failure _ -> true)

let test_zones_disjoint () =
  let coh = mk_coh ~page_words:8 () in
  let asp = Addr_space.create coh in
  let z1 = Zone.create asp ~name:"data" ~pages:2 () in
  let z2 = Zone.create asp ~name:"sync" ~pages:2 () in
  let a = Zone.alloc z1 ~words:8 () in
  let b = Zone.alloc z2 ~words:8 () in
  Alcotest.(check bool) "different pages" true (a / 8 <> b / 8)

let suite =
  [
    ("memobj: lazy page creation", `Quick, test_memobj_lazy_pages);
    ("memobj: bounds", `Quick, test_memobj_bounds);
    ("memobj: iter existing", `Quick, test_memobj_iter);
    ("aspace: map and fault", `Quick, test_aspace_map_fault);
    ("aspace: fault on unbound address", `Quick, test_aspace_fault_unbound);
    ("aspace: overlapping bindings rejected", `Quick, test_aspace_overlap_rejected);
    ("aspace: partial object binding", `Quick, test_aspace_partial_object_binding);
    ("aspace: unmap and remap", `Quick, test_aspace_unmap);
    ("aspace: one object, two spaces", `Quick, test_aspace_two_spaces_one_object);
    ("aspace: fresh objects don't overlap", `Quick, test_map_new_object_no_overlap);
    ("zone: bump allocation", `Quick, test_zone_alloc);
    ("zone: page alignment", `Quick, test_zone_page_aligned);
    ("zone: exhaustion", `Quick, test_zone_exhaustion);
    ("zone: zones are disjoint", `Quick, test_zones_disjoint);
  ]
