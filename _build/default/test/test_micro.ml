(* The §4 micro-measurements as assertions: the composed fault-path
   latencies of our implementation must land in the ranges the paper
   reports for the Butterfly Plus.  (The constants are calibrated, so
   these tests validate the protocol path *structure* — which costs are
   paid on which transition — not silicon.) *)

module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Engine = Platinum_sim.Engine
module Rights = Platinum_core.Rights
module Cpage = Platinum_core.Cpage
module Cmap = Platinum_core.Cmap
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent

type env = { coh : Coherent.t; cm : Cmap.t }

(* Full-size pages: the absolute numbers of §4 are for 4 KB. *)
let mk ?(nprocs = 16) () =
  let config = Config.butterfly_plus ~nprocs () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let coh =
    Coherent.create (Machine.create config) ~engine:(Engine.create ()) ~policy
      ~frames_per_module:64 ()
  in
  let cm = Coherent.new_aspace coh in
  { coh; cm }

let bind_page ?home env vpage =
  let page = Coherent.new_cpage env.coh ?home () in
  Coherent.bind env.coh env.cm ~vpage page Rights.Read_write;
  page

(* Touch a scratch page so the processor has the address space active and
   its activation cost is not charged to the measured fault (the paper
   measures steady-state fault costs). *)
let warm_up env procs =
  let _ = bind_page env 99 in
  List.iter
    (fun proc -> ignore (Coherent.read_word env.coh ~now:0 ~proc ~cmap:env.cm ~vaddr:(99 * 1024)))
    procs

let ms x = int_of_float (x *. 1e6)

let in_range what lo hi v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.3f ms in [%.2f, %.2f]" what (float_of_int v /. 1e6) lo hi)
    true
    (v >= ms lo && v <= ms hi)

(* "The copying of data in a PLATINUM page migration operation ... takes
   1.11 ms for the default page size of 4K bytes." *)
let test_page_copy_time () =
  let env = mk () in
  let _ = bind_page env 0 in
  warm_up env [ 0; 1 ];
  (* Fill on proc 0, then measure only the copy component of proc 1's
     replication by subtracting the non-copy fault costs. *)
  ignore (Coherent.read_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0);
  let _, lat = Coherent.read_word env.coh ~now:10_000_000 ~proc:1 ~cmap:env.cm ~vaddr:0 in
  let config = Coherent.config env.coh in
  let copy = config.Config.page_words * config.Config.t_block_word in
  in_range "4KB block transfer" 1.09 1.13 copy;
  Alcotest.(check bool) "replication dominated by the copy" true (lat > copy)

(* "The total time for a read miss that replicates a non-modified page
   ranges from 1.34 ms to 1.38 ms", depending on kernel data locality. *)
let test_read_miss_nonmodified () =
  (* Local Cpage metadata. *)
  let env = mk () in
  let _ = bind_page ~home:1 env 0 in
  warm_up env [ 0; 1 ];
  ignore (Coherent.read_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0);
  let _, fast = Coherent.read_word env.coh ~now:10_000_000 ~proc:1 ~cmap:env.cm ~vaddr:0 in
  in_range "read miss, local metadata" 1.32 1.36 fast;
  (* Remote metadata. *)
  let env = mk () in
  let _ = bind_page ~home:7 env 0 in
  warm_up env [ 0; 1 ];
  ignore (Coherent.read_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0);
  let _, slow = Coherent.read_word env.coh ~now:10_000_000 ~proc:1 ~cmap:env.cm ~vaddr:0 in
  in_range "read miss, remote metadata" 1.36 1.40 slow;
  Alcotest.(check bool) "remote metadata costs more" true (slow > fast)

(* "A read miss that replicates a modified page takes from 1.38 ms to
   1.59 ms if only one processor has to be interrupted to restrict its
   mapping to read-only access." *)
let test_read_miss_modified () =
  let env = mk () in
  let _ = bind_page ~home:1 env 0 in
  warm_up env [ 0; 1 ];
  ignore (Coherent.write_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0 5);
  let _, lat = Coherent.read_word env.coh ~now:10_000_000 ~proc:1 ~cmap:env.cm ~vaddr:0 in
  in_range "read miss on modified, idle writer" 1.35 1.60 lat;
  (* A busy writer stretches the shootdown wait (the paper's upper end). *)
  let env = mk () in
  let _ = bind_page ~home:1 env 0 in
  warm_up env [ 0; 1 ];
  ignore (Coherent.write_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0 5);
  Machine.set_proc_busy_until (Coherent.machine env.coh) ~proc:0 10_400_000;
  let _, busy = Coherent.read_word env.coh ~now:10_000_000 ~proc:1 ~cmap:env.cm ~vaddr:0 in
  Alcotest.(check bool) "busy target is slower" true (busy > lat);
  in_range "read miss on modified, busy writer" 1.38 1.62 busy

(* "A write miss on a present+ page takes from 0.25 ms to 0.45 ms when
   only one processor has to be interrupted ... and one physical page is
   freed." *)
let test_write_miss_present_plus () =
  let env = mk () in
  let _ = bind_page ~home:1 env 0 in
  warm_up env [ 0; 1 ];
  ignore (Coherent.write_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0 1);
  ignore (Coherent.read_word env.coh ~now:10_000_000 ~proc:1 ~cmap:env.cm ~vaddr:0);
  (* proc 1 now upgrades its local copy: invalidate proc 0's translation
     and free proc 0's physical page. *)
  let lat = Coherent.write_word env.coh ~now:20_000_000 ~proc:1 ~cmap:env.cm ~vaddr:0 2 in
  in_range "write miss on present+" 0.25 0.45 lat

(* "For up to 16 processors, the incremental delay to the initiating
   processor of interrupting each additional processor ... is no more
   than 17 µs." *)
let test_incremental_shootdown_cost () =
  let measure readers =
    let env = mk () in
    let _ = bind_page ~home:1 env 0 in
    ignore (Coherent.write_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0 1);
    for r = 1 to readers do
      ignore (Coherent.read_word env.coh ~now:(r * 10_000_000) ~proc:r ~cmap:env.cm ~vaddr:0)
    done;
    (* Writer collapses all replicas: one interrupt + one page free per
       reader. *)
    Coherent.write_word env.coh ~now:1_000_000_000 ~proc:0 ~cmap:env.cm ~vaddr:0 2
  in
  let prev = ref (measure 1) in
  for readers = 2 to 15 do
    let lat = measure readers in
    let delta = lat - !prev in
    Alcotest.(check bool)
      (Printf.sprintf "incremental cost for reader %d = %.1f us <= 17 us" readers
         (float_of_int delta /. 1e3))
      true (delta <= 17_000);
    Alcotest.(check bool) "and it is not free" true (delta > 0);
    prev := lat
  done

(* Freeing a physical page uses one remote read and one write ≈ 10 µs;
   the IPI itself ≈ 7 µs.  Our configuration encodes both. *)
let test_cost_model_constants () =
  let config = Config.butterfly_plus () in
  Alcotest.(check int) "page free = 10 us" 10_000 config.Config.page_free_ns;
  Alcotest.(check int) "ipi = 7 us" 7_000 config.Config.ipi_send_ns;
  Alcotest.(check bool) "7 us beats Mach's 55 us on the Multimax" true
    (config.Config.ipi_send_ns < 55_000)

(* The frozen path avoids all of this: a fault on a frozen page is just a
   mapping operation, two orders of magnitude cheaper than replication. *)
let test_frozen_fault_is_cheap () =
  let env = mk () in
  let _ = bind_page ~home:1 env 0 in
  ignore (Coherent.write_word env.coh ~now:0 ~proc:0 ~cmap:env.cm ~vaddr:0 1);
  ignore (Coherent.read_word env.coh ~now:1_000 ~proc:1 ~cmap:env.cm ~vaddr:0);
  ignore (Coherent.write_word env.coh ~now:1_000_000 ~proc:0 ~cmap:env.cm ~vaddr:0 2);
  (* Within t1: this fault freezes the page and remote-maps. *)
  let _, freeze_fault = Coherent.read_word env.coh ~now:2_000_000 ~proc:1 ~cmap:env.cm ~vaddr:0 in
  Alcotest.(check bool) "freeze+remote-map ≤ 0.3 ms" true (freeze_fault <= 300_000);
  (* And a third processor touching the frozen page pays even less. *)
  let _, lat = Coherent.read_word env.coh ~now:3_000_000 ~proc:2 ~cmap:env.cm ~vaddr:0 in
  Alcotest.(check bool) "frozen fault ≤ 0.25 ms" true (lat <= 250_000)

let suite =
  [
    ("sec4: 4KB page copy ~ 1.11 ms", `Quick, test_page_copy_time);
    ("sec4: read miss, non-modified: 1.34-1.38 ms", `Quick, test_read_miss_nonmodified);
    ("sec4: read miss, modified: 1.38-1.59 ms", `Quick, test_read_miss_modified);
    ("sec4: write miss, present+: 0.25-0.45 ms", `Quick, test_write_miss_present_plus);
    ("sec4: incremental shootdown <= 17 us/proc", `Quick, test_incremental_shootdown_cost);
    ("sec4: cost-model constants", `Quick, test_cost_model_constants);
    ("sec4: frozen faults are cheap", `Quick, test_frozen_fault_is_cheap);
  ]
