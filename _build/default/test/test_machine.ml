(* Tests for the Butterfly machine model: processor sets, memory modules,
   interconnect cost functions, configuration presets. *)

module Config = Platinum_machine.Config
module Procset = Platinum_machine.Procset
module Memmodule = Platinum_machine.Memmodule
module Xbar = Platinum_machine.Xbar
module Machine = Platinum_machine.Machine

let qtest = QCheck_alcotest.to_alcotest

(* --- Procset --- *)

let test_procset_basic () =
  let s = Procset.of_list [ 3; 1; 5 ] in
  Alcotest.(check int) "cardinal" 3 (Procset.cardinal s);
  Alcotest.(check bool) "mem 3" true (Procset.mem 3 s);
  Alcotest.(check bool) "mem 2" false (Procset.mem 2 s);
  Alcotest.(check (list int)) "to_list sorted" [ 1; 3; 5 ] (Procset.to_list s);
  Alcotest.(check bool) "choose = min" true (Procset.choose s = Some 1)

let test_procset_full () =
  let s = Procset.full ~n:16 in
  Alcotest.(check int) "full 16" 16 (Procset.cardinal s);
  Alcotest.(check bool) "mem 15" true (Procset.mem 15 s);
  Alcotest.(check bool) "not mem 16" false (Procset.mem 16 s);
  Alcotest.(check int) "full 62 works" 62 (Procset.cardinal (Procset.full ~n:62))

let test_procset_bounds () =
  Alcotest.check_raises "negative id" (Invalid_argument "Procset: processor id out of [0, 61]")
    (fun () -> ignore (Procset.singleton (-1)));
  Alcotest.check_raises "id 62" (Invalid_argument "Procset: processor id out of [0, 61]")
    (fun () -> ignore (Procset.singleton 62))

let pset_gen = QCheck.Gen.(map Procset.of_list (list_size (int_bound 10) (int_bound 61)))
let pset_arb = QCheck.make ~print:(fun s -> Format.asprintf "%a" Procset.pp s) pset_gen

module IS = Set.Make (Int)

let to_set s = IS.of_list (Procset.to_list s)

let prop_procset_union =
  QCheck.Test.make ~name:"procset union = set union" ~count:300 (QCheck.pair pset_arb pset_arb)
    (fun (a, b) -> IS.equal (to_set (Procset.union a b)) (IS.union (to_set a) (to_set b)))

let prop_procset_inter =
  QCheck.Test.make ~name:"procset inter = set inter" ~count:300 (QCheck.pair pset_arb pset_arb)
    (fun (a, b) -> IS.equal (to_set (Procset.inter a b)) (IS.inter (to_set a) (to_set b)))

let prop_procset_diff =
  QCheck.Test.make ~name:"procset diff = set diff" ~count:300 (QCheck.pair pset_arb pset_arb)
    (fun (a, b) -> IS.equal (to_set (Procset.diff a b)) (IS.diff (to_set a) (to_set b)))

let prop_procset_add_remove =
  QCheck.Test.make ~name:"remove after add restores membership" ~count:300
    (QCheck.pair pset_arb (QCheck.int_bound 61))
    (fun (s, i) ->
      let added = Procset.add i s in
      Procset.mem i added && Procset.cardinal (Procset.remove i added) = Procset.cardinal added - 1)

let prop_procset_subset =
  QCheck.Test.make ~name:"inter is a subset of both" ~count:300 (QCheck.pair pset_arb pset_arb)
    (fun (a, b) ->
      let i = Procset.inter a b in
      Procset.subset i a && Procset.subset i b)

let prop_procset_fold =
  QCheck.Test.make ~name:"fold counts cardinal" ~count:300 pset_arb (fun s ->
      Procset.fold (fun _ acc -> acc + 1) s 0 = Procset.cardinal s)

(* --- Memmodule --- *)

let test_module_uncontended () =
  let m = Memmodule.create 0 in
  let start = Memmodule.acquire m ~arrival:100 ~service:50 in
  Alcotest.(check int) "starts at arrival" 100 start;
  Alcotest.(check int) "busy until" 150 (Memmodule.busy_until m)

let test_module_queueing () =
  let m = Memmodule.create 0 in
  ignore (Memmodule.acquire m ~arrival:0 ~service:100);
  let s2 = Memmodule.acquire m ~arrival:30 ~service:10 in
  Alcotest.(check int) "queued behind first" 100 s2;
  Alcotest.(check int) "wait recorded" 70 (Memmodule.total_wait_ns m);
  Alcotest.(check int) "busy total" 110 (Memmodule.total_busy_ns m);
  Alcotest.(check int) "requests" 2 (Memmodule.requests m)

let test_module_idle_gap () =
  let m = Memmodule.create 0 in
  ignore (Memmodule.acquire m ~arrival:0 ~service:10);
  let s = Memmodule.acquire m ~arrival:100 ~service:10 in
  Alcotest.(check int) "no wait after idle gap" 100 s;
  Alcotest.(check int) "no wait recorded" 0 (Memmodule.total_wait_ns m)

let test_module_reserve () =
  let m = Memmodule.create 0 in
  Memmodule.reserve_until m 500;
  let s = Memmodule.acquire m ~arrival:0 ~service:10 in
  Alcotest.(check int) "reservation blocks" 500 s;
  Alcotest.(check int) "reserved time counted busy" 510 (Memmodule.total_busy_ns m)

let test_module_utilization () =
  let m = Memmodule.create 0 in
  ignore (Memmodule.acquire m ~arrival:0 ~service:250);
  Alcotest.(check (float 1e-9)) "25% of 1000" 0.25 (Memmodule.utilization m ~horizon:1000)

(* --- Xbar --- *)

let config = Config.butterfly_plus ()

let fresh_modules () = Array.init config.Config.nprocs Memmodule.create

let test_xbar_local_read () =
  let mods = fresh_modules () in
  let lat = Xbar.word_access config mods ~now:0 ~proc:3 ~mem_module:3 Xbar.Read in
  Alcotest.(check int) "local read = T_l" config.Config.t_local_word lat

let test_xbar_remote_read () =
  let mods = fresh_modules () in
  let lat = Xbar.word_access config mods ~now:0 ~proc:0 ~mem_module:5 Xbar.Read in
  Alcotest.(check int) "remote read = T_r" config.Config.t_remote_read_word lat

let test_xbar_remote_write_faster () =
  let mods = fresh_modules () in
  let r = Xbar.word_access config mods ~now:0 ~proc:0 ~mem_module:5 Xbar.Read in
  let mods = fresh_modules () in
  let w = Xbar.word_access config mods ~now:0 ~proc:0 ~mem_module:5 Xbar.Write in
  Alcotest.(check bool) "writes faster than reads" true (w < r)

let test_xbar_contention () =
  let mods = fresh_modules () in
  (* Two processors hit module 7 at the same instant: the second queues. *)
  let l1 = Xbar.word_access config mods ~now:0 ~proc:0 ~mem_module:7 Xbar.Read in
  let l2 = Xbar.word_access config mods ~now:0 ~proc:1 ~mem_module:7 Xbar.Read in
  Alcotest.(check int) "first uncontended" config.Config.t_remote_read_word l1;
  Alcotest.(check int) "second queues one service slot"
    (config.Config.t_remote_read_word + config.Config.t_module_service)
    l2

let test_xbar_block_words () =
  let mods = fresh_modules () in
  let lat = Xbar.block_words config mods ~now:0 ~proc:2 ~mem_module:2 Xbar.Read ~words:100 in
  Alcotest.(check int) "100 local words" (100 * config.Config.t_local_word) lat;
  Alcotest.(check int) "zero words free"
    0
    (Xbar.block_words config mods ~now:0 ~proc:2 ~mem_module:2 Xbar.Read ~words:0)

let test_xbar_block_copy () =
  let mods = fresh_modules () in
  let words = config.Config.page_words in
  let lat = Xbar.block_copy config mods ~now:0 ~src:0 ~dst:1 ~words in
  Alcotest.(check int) "page copy = s * T_b" (words * config.Config.t_block_word) lat;
  (* The paper: 1.11 ms for a 4 KB page. *)
  Alcotest.(check bool) "~1.11 ms" true (lat > 1_050_000 && lat < 1_180_000)

let test_xbar_block_copy_occupies_both () =
  let mods = fresh_modules () in
  ignore (Xbar.block_copy config mods ~now:0 ~src:0 ~dst:1 ~words:1000);
  (* Both modules are busy for the transfer: a local access on either
     side queues behind it. *)
  let l_src = Xbar.word_access config mods ~now:0 ~proc:0 ~mem_module:0 Xbar.Read in
  let l_dst = Xbar.word_access config mods ~now:0 ~proc:1 ~mem_module:1 Xbar.Read in
  Alcotest.(check bool) "src module blocked" true (l_src > 1_000_000);
  Alcotest.(check bool) "dst module blocked" true (l_dst > 1_000_000)

let test_xbar_copy_serializes_at_source () =
  (* Two simultaneous replications from module 0: the second waits — the
     pivot-row serialization of §5.1. *)
  let mods = fresh_modules () in
  let l1 = Xbar.block_copy config mods ~now:0 ~src:0 ~dst:1 ~words:1000 in
  let l2 = Xbar.block_copy config mods ~now:0 ~src:0 ~dst:2 ~words:1000 in
  Alcotest.(check bool) "second copy waits for the first" true (l2 >= 2 * l1)

let test_xbar_zero_fill () =
  let mods = fresh_modules () in
  let lat = Xbar.zero_fill config mods ~now:0 ~dst:4 ~words:1024 in
  Alcotest.(check int) "zero fill cost" (1024 * config.Config.zero_fill_word_ns) lat

(* --- Config / Machine --- *)

let test_config_preset () =
  Alcotest.(check int) "16 processors" 16 config.Config.nprocs;
  Alcotest.(check int) "4KB pages" 4096 (Config.page_bytes config);
  Alcotest.(check int) "T_l" 320 config.Config.t_local_word;
  Alcotest.(check int) "T_r" 5000 config.Config.t_remote_read_word;
  Alcotest.(check int) "t1 = 10ms" 10_000_000 config.Config.t1_freeze_window;
  Alcotest.(check int) "t2 = 1s" 1_000_000_000 config.Config.t2_defrost_period

let test_config_override () =
  let c = Config.with_policy_params ~t1_freeze_window:42 ~t2_defrost_period:43 config in
  Alcotest.(check int) "t1 overridden" 42 c.Config.t1_freeze_window;
  Alcotest.(check int) "t2 overridden" 43 c.Config.t2_defrost_period;
  Alcotest.(check int) "others kept" 16 c.Config.nprocs

let test_config_bad_nprocs () =
  Alcotest.check_raises "nprocs 0" (Invalid_argument "Config.butterfly_plus: nprocs must be in [1, 62]")
    (fun () -> ignore (Config.butterfly_plus ~nprocs:0 ()))

let test_machine_penalties () =
  let m = Machine.create config in
  Machine.add_penalty m ~proc:3 100;
  Machine.add_penalty m ~proc:3 50;
  Alcotest.(check int) "accumulates" 150 (Machine.take_penalty m ~proc:3);
  Alcotest.(check int) "cleared after take" 0 (Machine.take_penalty m ~proc:3)

let test_machine_busy_horizon () =
  let m = Machine.create config in
  Machine.set_proc_busy_until m ~proc:2 500;
  Machine.set_proc_busy_until m ~proc:2 300;
  Alcotest.(check int) "monotone" 500 (Machine.proc_busy_until m ~proc:2)

let suite =
  [
    ("procset: basics", `Quick, test_procset_basic);
    ("procset: full", `Quick, test_procset_full);
    ("procset: bounds", `Quick, test_procset_bounds);
    qtest prop_procset_union;
    qtest prop_procset_inter;
    qtest prop_procset_diff;
    qtest prop_procset_add_remove;
    qtest prop_procset_subset;
    qtest prop_procset_fold;
    ("memmodule: uncontended", `Quick, test_module_uncontended);
    ("memmodule: queueing", `Quick, test_module_queueing);
    ("memmodule: idle gap", `Quick, test_module_idle_gap);
    ("memmodule: reservation", `Quick, test_module_reserve);
    ("memmodule: utilization", `Quick, test_module_utilization);
    ("xbar: local read", `Quick, test_xbar_local_read);
    ("xbar: remote read", `Quick, test_xbar_remote_read);
    ("xbar: remote write faster", `Quick, test_xbar_remote_write_faster);
    ("xbar: module contention", `Quick, test_xbar_contention);
    ("xbar: block words", `Quick, test_xbar_block_words);
    ("xbar: page copy timing", `Quick, test_xbar_block_copy);
    ("xbar: copy occupies both modules", `Quick, test_xbar_block_copy_occupies_both);
    ("xbar: copies serialize at source", `Quick, test_xbar_copy_serializes_at_source);
    ("xbar: zero fill", `Quick, test_xbar_zero_fill);
    ("config: butterfly preset", `Quick, test_config_preset);
    ("config: policy overrides", `Quick, test_config_override);
    ("config: bad nprocs", `Quick, test_config_bad_nprocs);
    ("machine: penalties", `Quick, test_machine_penalties);
    ("machine: busy horizon", `Quick, test_machine_busy_horizon);
  ]
