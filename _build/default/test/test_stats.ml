(* Tests for the instrumentation layer: probes, traces, and the
   post-mortem report. *)

module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Engine = Platinum_sim.Engine
module Rights = Platinum_core.Rights
module Cmap = Platinum_core.Cmap
module Policy = Platinum_core.Policy
module Probe = Platinum_core.Probe
module Coherent = Platinum_core.Coherent
module Report = Platinum_stats.Report
module Trace = Platinum_stats.Trace
module Runner = Platinum_runner.Runner
module Patterns = Platinum_workload.Patterns
module Outcome = Platinum_workload.Outcome

let mk () =
  let config = Config.butterfly_plus ~nprocs:4 ~page_words:8 () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let coh =
    Coherent.create (Machine.create config) ~engine:(Engine.create ()) ~policy
      ~frames_per_module:16 ()
  in
  let cm = Coherent.new_aspace coh in
  let page = Coherent.new_cpage coh ~label:"data" () in
  Coherent.bind coh cm ~vpage:0 page Rights.Read_write;
  (coh, cm, page)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Probe --- *)

let is_fault = function Probe.Read_fault _ | Probe.Write_fault _ -> true | _ -> false

let test_probe_event_sequence () =
  let coh, cm, page = mk () in
  let log = ref [] in
  Coherent.set_probe coh (Some (fun ~now:_ ev -> log := ev :: !log));
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 1);
  ignore (Coherent.read_word coh ~now:1_000_000 ~proc:1 ~cmap:cm ~vaddr:0);
  let events = List.rev !log in
  let has pred = List.exists pred events in
  Alcotest.(check bool) "write fault seen" true
    (has (function Probe.Write_fault { proc = 0; _ } -> true | _ -> false));
  Alcotest.(check bool) "restriction seen" true
    (has (function Probe.Restricted _ -> true | _ -> false));
  Alcotest.(check bool) "replication seen" true
    (has (function Probe.Replicated { copies = 2; _ } -> true | _ -> false));
  ignore page

let test_probe_freeze_thaw_events () =
  let coh, cm, page = mk () in
  let log = ref [] in
  Coherent.set_probe coh (Some (fun ~now:_ ev -> log := ev :: !log));
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 1);
  ignore (Coherent.read_word coh ~now:1_000 ~proc:1 ~cmap:cm ~vaddr:0);
  ignore (Coherent.write_word coh ~now:2_000 ~proc:0 ~cmap:cm ~vaddr:0 2);
  ignore (Coherent.read_word coh ~now:3_000 ~proc:1 ~cmap:cm ~vaddr:0);
  Alcotest.(check bool) "frozen event" true
    (List.exists (function Probe.Frozen _ -> true | _ -> false) !log);
  Coherent.thaw_all coh ~now:2_000_000_000;
  Alcotest.(check bool) "thaw event marked as daemon" true
    (List.exists (function Probe.Thawed { by_daemon = true; _ } -> true | _ -> false) !log);
  ignore page

let test_probe_detach () =
  let coh, cm, _ = mk () in
  let n = ref 0 in
  Coherent.set_probe coh (Some (fun ~now:_ _ -> incr n));
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 1);
  let seen = !n in
  Alcotest.(check bool) "probe fired" true (seen > 0);
  Coherent.set_probe coh None;
  ignore (Coherent.read_word coh ~now:1_000_000 ~proc:1 ~cmap:cm ~vaddr:0);
  Alcotest.(check int) "detached probe silent" seen !n

let test_probe_pp () =
  (* Every constructor renders. *)
  let events =
    [
      Probe.Read_fault { cpage = 1; proc = 2 };
      Probe.Write_fault { cpage = 1; proc = 2 };
      Probe.Replicated { cpage = 1; to_module = 3; copies = 2 };
      Probe.Migrated { cpage = 1; to_module = 3 };
      Probe.Remote_mapped { cpage = 1; proc = 2; frozen = true };
      Probe.Invalidated { cpage = 1; interrupted = 4 };
      Probe.Restricted { cpage = 1; interrupted = 0 };
      Probe.Frozen { cpage = 1 };
      Probe.Thawed { cpage = 1; by_daemon = false };
    ]
  in
  List.iter
    (fun ev ->
      Alcotest.(check bool) "non-empty rendering" true
        (String.length (Format.asprintf "%a" Probe.pp_event ev) > 0))
    events

(* --- Trace --- *)

let test_trace_records () =
  let coh, cm, _ = mk () in
  let tr = Trace.create () in
  Trace.attach tr coh;
  ignore (Coherent.write_word coh ~now:5_000 ~proc:0 ~cmap:cm ~vaddr:0 1);
  ignore (Coherent.read_word coh ~now:1_000_000 ~proc:1 ~cmap:cm ~vaddr:0);
  Alcotest.(check bool) "events recorded" true (Trace.length tr > 0);
  let faults = Trace.count tr is_fault in
  Alcotest.(check int) "two faults" 2 faults;
  (* Timestamps are fault-handling times: the issue time plus the
     address-space activation that precedes the first fault. *)
  let first = List.hd (Trace.entries tr) in
  Alcotest.(check bool) "first event shortly after t=5us" true
    (first.Trace.at >= 5_000 && first.Trace.at < 100_000)

let test_trace_bounded () =
  let tr = Trace.create ~capacity:4 () in
  let coh, cm, _ = mk () in
  Trace.attach tr coh;
  for i = 0 to 9 do
    (* alternate writers to generate a steady stream of protocol events *)
    ignore
      (Coherent.write_word coh ~now:(100_000_000 * (i + 1)) ~proc:(i mod 2) ~cmap:cm ~vaddr:0 i)
  done;
  Alcotest.(check int) "capacity respected" 4 (Trace.length tr);
  Alcotest.(check bool) "drops counted" true (Trace.dropped tr > 0);
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr)

let test_trace_timeline_renders () =
  let coh, cm, _ = mk () in
  let tr = Trace.create () in
  Trace.attach tr coh;
  ignore (Coherent.write_word coh ~now:0 ~proc:0 ~cmap:cm ~vaddr:0 1);
  let s = Format.asprintf "%a" (Trace.pp_timeline ~limit:10) tr in
  Alcotest.(check bool) "timeline mentions the fault" true
    (String.length s > 0 && contains ~sub:"write fault" s)

(* --- Report --- *)

let run_pattern () =
  let out, main = Patterns.read_shared ~nprocs:4 ~pages:1 ~rounds:2 in
  let r = Runner.time main in
  Alcotest.(check bool) "pattern ok" true out.Outcome.ok;
  r

let test_report_rows () =
  let r = run_pattern () in
  let rep = r.Runner.report in
  Alcotest.(check bool) "has rows" true (List.length rep.Report.pages > 0);
  let heap = Report.find rep ~label_prefix:"heap" in
  Alcotest.(check bool) "heap page row exists" true (heap <> []);
  let row = List.hd heap in
  Alcotest.(check bool) "read faults counted" true (row.Report.read_faults >= 3);
  Alcotest.(check bool) "replications counted" true (row.Report.replications >= 3)

let test_report_sorted_by_faults () =
  let r = run_pattern () in
  let faults row = row.Report.read_faults + row.Report.write_faults in
  let rec nonincreasing = function
    | a :: (b :: _ as rest) -> faults a >= faults b && nonincreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "rows sorted" true (nonincreasing r.Runner.report.Report.pages)

let test_report_renders () =
  let r = run_pattern () in
  let s = Format.asprintf "%a" (Report.pp ~top:5) r.Runner.report in
  Alcotest.(check bool) "mentions the header" true (contains ~sub:"post-mortem" s)

let test_report_module_stats () =
  let r = run_pattern () in
  let rep = r.Runner.report in
  Alcotest.(check int) "one utilization entry per module" 16
    (Array.length rep.Report.module_utilization);
  Array.iter
    (fun u -> Alcotest.(check bool) "utilization in [0,1]" true (u >= 0.0 && u <= 1.0))
    rep.Report.module_utilization

let suite =
  [
    ("probe: protocol event sequence", `Quick, test_probe_event_sequence);
    ("probe: freeze/thaw events", `Quick, test_probe_freeze_thaw_events);
    ("probe: detach", `Quick, test_probe_detach);
    ("probe: rendering", `Quick, test_probe_pp);
    ("trace: records with timestamps", `Quick, test_trace_records);
    ("trace: bounded buffer", `Quick, test_trace_bounded);
    ("trace: timeline rendering", `Quick, test_trace_timeline_renders);
    ("report: per-page rows", `Quick, test_report_rows);
    ("report: sorted by faults", `Quick, test_report_sorted_by_faults);
    ("report: renders", `Quick, test_report_renders);
    ("report: module statistics", `Quick, test_report_module_stats);
  ]
