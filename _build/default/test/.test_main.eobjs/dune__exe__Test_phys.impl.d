test/test_phys.ml: Alcotest Hashtbl List Option Platinum_phys QCheck QCheck_alcotest
