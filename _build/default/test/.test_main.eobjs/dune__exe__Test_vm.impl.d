test/test_vm.ml: Alcotest List Platinum_core Platinum_machine Platinum_sim Platinum_vm
