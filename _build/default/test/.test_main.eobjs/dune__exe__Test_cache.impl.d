test/test_cache.ml: Alcotest Array List Platinum_cache Platinum_kernel Platinum_machine Platinum_runner
