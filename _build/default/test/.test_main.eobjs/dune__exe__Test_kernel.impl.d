test/test_kernel.ml: Alcotest Array List Platinum_kernel Platinum_machine Platinum_runner Platinum_sim Platinum_vm
