test/test_stats.ml: Alcotest Array Format List Platinum_core Platinum_machine Platinum_runner Platinum_sim Platinum_stats Platinum_workload String
