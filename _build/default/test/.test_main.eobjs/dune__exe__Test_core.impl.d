test/test_core.ml: Alcotest Array Int64 List Option Platinum_core Platinum_machine Platinum_phys Platinum_sim Printf QCheck QCheck_alcotest
