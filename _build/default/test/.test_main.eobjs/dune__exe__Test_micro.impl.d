test/test_micro.ml: Alcotest List Platinum_core Platinum_machine Platinum_sim Printf
