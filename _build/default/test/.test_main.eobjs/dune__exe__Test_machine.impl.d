test/test_machine.ml: Alcotest Array Format Int Platinum_machine QCheck QCheck_alcotest Set
