test/test_analysis.ml: Alcotest List Option Platinum_analysis Printf
