test/test_sim.ml: Alcotest Array Int Int64 List Platinum_sim QCheck QCheck_alcotest
