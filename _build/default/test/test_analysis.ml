(* Tests for the §4.1 migration-economics model against Table 1. *)

module M = Platinum_analysis.Migration_model

(* Table 1 as printed in the paper.  Two caveats, documented in
   EXPERIMENTS.md: the paper's own table mixes rounding directions (some
   cells are floor, some ceiling of the same formula), and the (ρ=0.48,
   g=1) cell is internally inconsistent with (ρ=0.24, g=0.5) — which the
   formula makes identical — so we accept a wider margin there. *)
let paper_table =
  [
    (0.17, [ Some 1070; None; None ]);
    (0.24, [ Some 445; None; None ]);
    (0.35, [ Some 232; Some 973; None ]);
    (0.48, [ Some 149; Some 435; None ]);
    (0.60, [ Some 111; Some 298; Some 1784 ]);
    (0.75, [ Some 85; Some 210; Some 793 ]);
    (1.0, [ Some 61; Some 141; Some 412 ]);
    (1.5, [ Some 39; Some 84; Some 210 ]);
    (2.0, [ Some 28; Some 61; Some 141 ]);
  ]

let test_table1_matches_paper () =
  let ours = M.table1 () in
  List.iter2
    (fun (rho_p, row_p) (rho_o, row_o) ->
      Alcotest.(check (float 1e-9)) "rho axis" rho_p rho_o;
      List.iteri
        (fun gi (expect, got) ->
          let g = List.nth M.table1_gs gi in
          match expect, got with
          | None, None -> ()
          | Some e, Some v ->
            (* The inconsistent cell (0.48, 1) aside, everything is
               within one unit of the printed value. *)
            let slack = if rho_p = 0.48 && g = 1.0 then 11 else 1 in
            Alcotest.(check bool)
              (Printf.sprintf "rho=%.2f g=%.1f: %d vs paper %d" rho_p g v e)
              true
              (abs (v - e) <= slack)
          | _ ->
            Alcotest.fail
              (Printf.sprintf "rho=%.2f g=%.1f: never/finite disagreement" rho_p g))
        (List.combine row_p row_o))
    paper_table ours

let test_never_cells () =
  (* Migration can never pay when ρ ≤ 0.24·g: remote access wins at any
     page size. *)
  Alcotest.(check bool) "rho=0.24 g=1 never" true (M.min_page_words_rounded ~g:1.0 ~rho:0.24 = None);
  Alcotest.(check bool) "rho=0.48 g=2 never" true (M.min_page_words_rounded ~g:2.0 ~rho:0.48 = None);
  Alcotest.(check bool) "rho just above threshold finite" true
    (M.min_page_words_rounded ~g:1.0 ~rho:0.25 <> None)

let test_g_round_robin () =
  Alcotest.(check (float 1e-9)) "g(2) = 2 (worst case)" 2.0 (M.g_round_robin ~p:2);
  Alcotest.(check (float 1e-9)) "g(3)" 1.5 (M.g_round_robin ~p:3);
  Alcotest.(check (float 1e-9)) "g(16)" (16. /. 15.) (M.g_round_robin ~p:16);
  Alcotest.(check bool) "g decreases toward 1" true
    (M.g_round_robin ~p:100 < M.g_round_robin ~p:3)

let test_threshold_consistency () =
  (* min_page_words is the boundary of migration_pays: paying just above,
     not paying just below. *)
  let m = M.butterfly_plus in
  List.iter
    (fun (g, rho) ->
      match M.min_page_words m ~g ~rho with
      | None ->
        Alcotest.(check bool) "never pays even for huge pages" false
          (M.migration_pays m ~g ~rho ~page_words:1_000_000)
      | Some s ->
        Alcotest.(check bool)
          (Printf.sprintf "pays at s=%d+1 (g=%.1f rho=%.2f)" s g rho)
          true
          (M.migration_pays m ~g ~rho ~page_words:(s + 1));
        if s > 2 then
          Alcotest.(check bool)
            (Printf.sprintf "does not pay at s/2 (g=%.1f rho=%.2f)" g rho)
            false
            (M.migration_pays m ~g ~rho ~page_words:(s / 2)))
    [ (0.5, 0.17); (1.0, 0.35); (1.0, 1.0); (2.0, 0.75); (1.0, 0.2); (2.0, 0.4) ]

let test_block_transfer_matters () =
  (* §4.1's headline: T_b/(T_r − T_l) bounds the minimum usable density.
     A machine with a slow block transfer (T_b = T_r) can never win at
     density 0.9·g. *)
  let slow = { M.butterfly_plus with M.t_block = M.butterfly_plus.M.t_remote } in
  Alcotest.(check bool) "slow block transfer kills migration" true
    (M.min_page_words slow ~g:1.0 ~rho:0.9 = None);
  Alcotest.(check bool) "fast block transfer enables it" true
    (M.min_page_words M.butterfly_plus ~g:1.0 ~rho:0.9 <> None)

let test_overhead_scaling () =
  (* Halving the fixed overhead halves the minimum page size (§4.1). *)
  let m = M.butterfly_plus in
  let half = { m with M.fixed_overhead = m.M.fixed_overhead /. 2. } in
  match M.min_page_words m ~g:1.0 ~rho:1.0, M.min_page_words half ~g:1.0 ~rho:1.0 with
  | Some s, Some s2 -> Alcotest.(check bool) "roughly halved" true (abs (s - (2 * s2)) <= 2)
  | _ -> Alcotest.fail "expected finite thresholds"

let test_larger_p_more_attractive () =
  (* With round-robin access, more sharers make migration more attractive
     (g decreases toward 1). *)
  let m = M.butterfly_plus in
  let s2 = Option.get (M.min_page_words m ~g:(M.g_round_robin ~p:2) ~rho:1.0) in
  let s16 = Option.get (M.min_page_words m ~g:(M.g_round_robin ~p:16) ~rho:1.0) in
  Alcotest.(check bool) "s_min(16) < s_min(2)" true (s16 < s2)

let suite =
  [
    ("table 1 reproduced", `Quick, test_table1_matches_paper);
    ("never cells", `Quick, test_never_cells);
    ("g(p) for round-robin", `Quick, test_g_round_robin);
    ("threshold consistent with inequality 1", `Quick, test_threshold_consistency);
    ("block-transfer speed is decisive", `Quick, test_block_transfer_matters);
    ("overhead scales the threshold", `Quick, test_overhead_scaling);
    ("more sharers help migration", `Quick, test_larger_p_more_attractive);
  ]
