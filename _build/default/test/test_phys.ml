(* Tests for physical memory: frames, inverted page tables, allocation. *)

module Frame = Platinum_phys.Frame
module IT = Platinum_phys.Inverted_table
module Phys_mem = Platinum_phys.Phys_mem

let qtest = QCheck_alcotest.to_alcotest

(* --- Frame --- *)

let test_frame_data () =
  let f = Frame.create ~mem_module:2 ~index:7 ~words:16 in
  Alcotest.(check int) "module" 2 (Frame.mem_module f);
  Alcotest.(check int) "index" 7 (Frame.index f);
  Alcotest.(check int) "words" 16 (Frame.words f);
  Frame.set f 3 99;
  Alcotest.(check int) "set/get" 99 (Frame.get f 3);
  Alcotest.(check int) "others zero" 0 (Frame.get f 4)

let test_frame_blit () =
  let a = Frame.create ~mem_module:0 ~index:0 ~words:8 in
  let b = Frame.create ~mem_module:1 ~index:0 ~words:8 in
  for i = 0 to 7 do
    Frame.set a i (i * i)
  done;
  Frame.blit_from ~src:a ~dst:b;
  Alcotest.(check bool) "equal after blit" true (Frame.equal_data a b);
  Frame.set b 0 42;
  Alcotest.(check bool) "diverges after write" false (Frame.equal_data a b)

let test_frame_blit_size_mismatch () =
  let a = Frame.create ~mem_module:0 ~index:0 ~words:8 in
  let b = Frame.create ~mem_module:0 ~index:1 ~words:16 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Frame.blit_from: size mismatch") (fun () ->
      Frame.blit_from ~src:a ~dst:b)

let test_frame_owner () =
  let f = Frame.create ~mem_module:0 ~index:0 ~words:4 in
  Alcotest.(check bool) "free initially" true (Frame.owner f = None);
  Frame.set_owner f (Some 12);
  Alcotest.(check bool) "owned" true (Frame.owner f = Some 12);
  Frame.set_owner f None;
  Alcotest.(check bool) "freed" true (Frame.owner f = None)

let test_frame_zero_fill () =
  let f = Frame.create ~mem_module:0 ~index:0 ~words:4 in
  Frame.set f 2 7;
  Frame.fill_zero f;
  Alcotest.(check int) "zeroed" 0 (Frame.get f 2)

(* --- Inverted_table --- *)

let test_it_alloc_lookup () =
  let t = IT.create ~mem_module:1 ~frames:8 ~page_words:4 in
  Alcotest.(check int) "capacity" 8 (IT.capacity t);
  Alcotest.(check int) "all free" 8 (IT.free_count t);
  let f = Option.get (IT.alloc t ~cpage:42) in
  Alcotest.(check bool) "lookup finds it" true (IT.lookup t ~cpage:42 = Some f);
  Alcotest.(check bool) "lookup miss" true (IT.lookup t ~cpage:43 = None);
  Alcotest.(check int) "free count" 7 (IT.free_count t);
  Alcotest.(check int) "used count" 1 (IT.used_count t)

let test_it_double_alloc_rejected () =
  let t = IT.create ~mem_module:0 ~frames:4 ~page_words:4 in
  ignore (IT.alloc t ~cpage:1);
  Alcotest.(check bool) "second alloc for same cpage raises" true
    (try
       ignore (IT.alloc t ~cpage:1);
       false
     with Invalid_argument _ -> true)

let test_it_exhaustion () =
  let t = IT.create ~mem_module:0 ~frames:3 ~page_words:4 in
  for c = 0 to 2 do
    Alcotest.(check bool) "alloc ok" true (IT.alloc t ~cpage:c <> None)
  done;
  Alcotest.(check bool) "exhausted" true (IT.alloc t ~cpage:99 = None)

let test_it_free_reuse () =
  let t = IT.create ~mem_module:0 ~frames:2 ~page_words:4 in
  let f1 = Option.get (IT.alloc t ~cpage:1) in
  ignore (IT.alloc t ~cpage:2);
  IT.free t f1;
  Alcotest.(check bool) "lookup gone" true (IT.lookup t ~cpage:1 = None);
  Alcotest.(check bool) "can alloc again" true (IT.alloc t ~cpage:3 <> None);
  Alcotest.(check bool) "full again" true (IT.alloc t ~cpage:4 = None)

let test_it_free_wrong_module () =
  let t = IT.create ~mem_module:0 ~frames:2 ~page_words:4 in
  let foreign = Frame.create ~mem_module:5 ~index:0 ~words:4 in
  Alcotest.check_raises "wrong module"
    (Invalid_argument "Inverted_table.free: frame belongs to another module") (fun () ->
      IT.free t foreign)

let test_it_double_free () =
  let t = IT.create ~mem_module:0 ~frames:2 ~page_words:4 in
  let f = Option.get (IT.alloc t ~cpage:1) in
  IT.free t f;
  Alcotest.check_raises "double free" (Invalid_argument "Inverted_table.free: frame is already free")
    (fun () -> IT.free t f)

(* Random alloc/free sequences keep the table consistent with a model. *)
let prop_it_model =
  QCheck.Test.make ~name:"inverted table agrees with a model" ~count:100
    QCheck.(list (pair bool (int_bound 20)))
    (fun ops ->
      let t = IT.create ~mem_module:0 ~frames:8 ~page_words:2 in
      let model = Hashtbl.create 8 in
      List.for_all
        (fun (is_alloc, cpage) ->
          if is_alloc && not (Hashtbl.mem model cpage) then (
            match IT.alloc t ~cpage with
            | Some f ->
              Hashtbl.replace model cpage f;
              IT.lookup t ~cpage = Some f
            | None -> Hashtbl.length model = 8)
          else if (not is_alloc) && Hashtbl.mem model cpage then (
            let f = Hashtbl.find model cpage in
            IT.free t f;
            Hashtbl.remove model cpage;
            IT.lookup t ~cpage = None)
          else true)
        ops
      && IT.used_count t = Hashtbl.length model)

(* --- Phys_mem --- *)

let test_pm_local_alloc () =
  let pm = Phys_mem.create ~modules:4 ~frames_per_module:2 ~page_words:4 in
  let f = Option.get (Phys_mem.alloc_local pm ~mem_module:2 ~cpage:7) in
  Alcotest.(check int) "in requested module" 2 (Frame.mem_module f);
  Alcotest.(check bool) "lookup" true (Phys_mem.lookup pm ~mem_module:2 ~cpage:7 = Some f);
  Alcotest.(check int) "total free" 7 (Phys_mem.total_free pm)

let test_pm_prefer_fallback () =
  let pm = Phys_mem.create ~modules:3 ~frames_per_module:1 ~page_words:4 in
  ignore (Phys_mem.alloc_local pm ~mem_module:0 ~cpage:100);
  (* Module 0 is full: preference falls back elsewhere. *)
  let f = Option.get (Phys_mem.alloc_preferring pm ~prefer:0 ~cpage:7) in
  Alcotest.(check bool) "fell back" true (Frame.mem_module f <> 0)

let test_pm_fallback_avoids_duplicates () =
  let pm = Phys_mem.create ~modules:2 ~frames_per_module:2 ~page_words:4 in
  (* cpage 7 already has a copy on module 1; module 0 is full. *)
  ignore (Phys_mem.alloc_local pm ~mem_module:0 ~cpage:1);
  ignore (Phys_mem.alloc_local pm ~mem_module:0 ~cpage:2);
  ignore (Phys_mem.alloc_local pm ~mem_module:1 ~cpage:7);
  Alcotest.(check bool) "refuses second copy in same module" true
    (Phys_mem.alloc_preferring pm ~prefer:0 ~cpage:7 = None)

let test_pm_oom () =
  let pm = Phys_mem.create ~modules:2 ~frames_per_module:1 ~page_words:4 in
  ignore (Phys_mem.alloc_preferring pm ~prefer:0 ~cpage:1);
  ignore (Phys_mem.alloc_preferring pm ~prefer:0 ~cpage:2);
  Alcotest.(check bool) "exhausted" true (Phys_mem.alloc_preferring pm ~prefer:0 ~cpage:3 = None);
  Alcotest.(check int) "none free" 0 (Phys_mem.total_free pm)

let test_pm_free () =
  let pm = Phys_mem.create ~modules:2 ~frames_per_module:1 ~page_words:4 in
  let f = Option.get (Phys_mem.alloc_local pm ~mem_module:1 ~cpage:5) in
  Phys_mem.free pm f;
  Alcotest.(check bool) "gone" true (Phys_mem.lookup pm ~mem_module:1 ~cpage:5 = None);
  Alcotest.(check int) "free again" 2 (Phys_mem.total_free pm)

let suite =
  [
    ("frame: data plane", `Quick, test_frame_data);
    ("frame: blit", `Quick, test_frame_blit);
    ("frame: blit size mismatch", `Quick, test_frame_blit_size_mismatch);
    ("frame: ownership", `Quick, test_frame_owner);
    ("frame: zero fill", `Quick, test_frame_zero_fill);
    ("inverted table: alloc/lookup", `Quick, test_it_alloc_lookup);
    ("inverted table: double alloc rejected", `Quick, test_it_double_alloc_rejected);
    ("inverted table: exhaustion", `Quick, test_it_exhaustion);
    ("inverted table: free and reuse", `Quick, test_it_free_reuse);
    ("inverted table: wrong-module free", `Quick, test_it_free_wrong_module);
    ("inverted table: double free", `Quick, test_it_double_free);
    qtest prop_it_model;
    ("phys: local alloc", `Quick, test_pm_local_alloc);
    ("phys: fallback on full module", `Quick, test_pm_prefer_fallback);
    ("phys: fallback avoids duplicate copies", `Quick, test_pm_fallback_avoids_duplicates);
    ("phys: out of memory", `Quick, test_pm_oom);
    ("phys: free", `Quick, test_pm_free);
  ]
