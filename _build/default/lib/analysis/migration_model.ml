type machine = {
  t_local : float;
  t_remote : float;
  t_block : float;
  fixed_overhead : float;
}

let butterfly_plus =
  { t_local = 320.; t_remote = 5_000.; t_block = 1_100.; fixed_overhead = 500_760. }

let g_round_robin ~p =
  if p < 2 then invalid_arg "g_round_robin: needs at least 2 processors";
  float_of_int p /. float_of_int (p - 1)

let migration_pays m ~g ~rho ~page_words =
  let s = float_of_int page_words in
  let c_local = rho *. s *. m.t_local in
  let c_remote = rho *. s *. m.t_remote in
  let c_migrate = (s *. m.t_block) +. m.fixed_overhead in
  c_remote > (g *. c_migrate) +. c_local

let min_page_from ~numerator ~coeff ~g ~rho =
  let denom = rho -. (coeff *. g) in
  if denom <= 0. then None else Some (int_of_float (ceil (numerator *. g /. denom)))

let min_page_words m ~g ~rho =
  let delta = m.t_remote -. m.t_local in
  min_page_from ~numerator:(m.fixed_overhead /. delta) ~coeff:(m.t_block /. delta) ~g ~rho

let min_page_words_rounded ~g ~rho = min_page_from ~numerator:107. ~coeff:0.24 ~g ~rho

let table1_rhos = [ 0.17; 0.24; 0.35; 0.48; 0.60; 0.75; 1.0; 1.5; 2.0 ]
let table1_gs = [ 0.5; 1.0; 2.0 ]

let table1 () =
  List.map
    (fun rho -> (rho, List.map (fun g -> min_page_words_rounded ~g ~rho) table1_gs))
    table1_rhos
