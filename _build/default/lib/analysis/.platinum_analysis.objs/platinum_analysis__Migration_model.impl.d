lib/analysis/migration_model.ml: List
