lib/analysis/migration_model.mli:
