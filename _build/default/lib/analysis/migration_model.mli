(** The §4.1 analytic model: when does it pay to migrate a page?

    A structure X shared by p processors, sole occupant of a coherent page
    of s words, is operated on with reference density ρ = r/s.  Moving the
    data wins over remote access when (inequality 1)

      C_remote > g(p) * C_migrate + C_local

    with C_local = ρ·s·T_l, C_remote = ρ·s·T_r, C_migrate = s·T_b + F, and
    g(p) the data movements needed per saved remote operation (p/(p−1) for
    strict round-robin).  Rearranged (inequality 2, with the paper's
    rounded Butterfly constants 107 = F/(T_r−T_l) and 0.24 = T_b/(T_r−T_l)):

      s > 107·g / (ρ − 0.24·g).

    Table 1 tabulates the resulting minimum page size. *)

type machine = {
  t_local : float;  (** ns per local word reference (T_l) *)
  t_remote : float;  (** ns per remote word reference (T_r) *)
  t_block : float;  (** ns per block-transferred word (T_b) *)
  fixed_overhead : float;  (** ns of fixed migration overhead (F) *)
}

val butterfly_plus : machine
(** T_l = 320, T_r = 5000, T_b = 1100, F ≈ 0.5 ms — the constants behind
    the paper's 107 and 0.24. *)

val g_round_robin : p:int -> float
(** g(p) = p/(p−1) for strict round-robin access; the worst case is
    g(2) = 2; g(p) → 1 as p grows. *)

val migration_pays :
  machine -> g:float -> rho:float -> page_words:int -> bool
(** Inequality 1, evaluated directly from the machine constants. *)

val min_page_words : machine -> g:float -> rho:float -> int option
(** Smallest page size for which migration always pays; [None] = never
    (the density is too low for any page size). *)

val min_page_words_rounded : g:float -> rho:float -> int option
(** The paper's inequality 2 with its rounded constants (107, 0.24) —
    reproduces Table 1's integers. *)

val table1_rhos : float list
val table1_gs : float list
(** The axes of Table 1: ρ ∈ {0.17 … 2.0}, g ∈ {0.5, 1, 2}. *)

val table1 : unit -> (float * int option list) list
(** The full Table 1: for each ρ, the S_min per g. *)
