(** Per-module inverted page table.

    The paper keeps one inverted page table per memory module, describing
    every physical page in that module; the fault handler hashes the Cpage
    index into it to find a local copy using strictly local memory accesses
    (§3.3).  This module preserves the semantics (cpage → local frame
    lookup, free-frame allocation) with a hash table plus free list. *)

type t

val create : mem_module:int -> frames:int -> page_words:int -> t

val mem_module : t -> int
val capacity : t -> int
val free_count : t -> int
val used_count : t -> int

val alloc : t -> cpage:int -> Frame.t option
(** Allocate a free frame to back the given coherent page; [None] when the
    module is full.  The frame is registered so [lookup] finds it.  At most
    one frame per (module, cpage) may exist — the directory invariant that
    copies live in *different* memory modules. *)

val lookup : t -> cpage:int -> Frame.t option
(** The local physical copy of a coherent page, if any. *)

val free : t -> Frame.t -> unit
(** Return a frame to the free list and unregister its cpage binding. *)

val frame : t -> int -> Frame.t
(** Frame by index (for tests and dumps). *)

val iter_used : (Frame.t -> unit) -> t -> unit
