(** Physical memory of the whole machine: one inverted page table per
    memory module, plus allocation across modules. *)

type t

val create : modules:int -> frames_per_module:int -> page_words:int -> t

val modules : t -> int
val page_words : t -> int
val table : t -> int -> Inverted_table.t

val alloc_local : t -> mem_module:int -> cpage:int -> Frame.t option
(** Allocate in the given module only. *)

val alloc_preferring : t -> prefer:int -> cpage:int -> Frame.t option
(** Allocate in [prefer] if possible, otherwise in the module with the most
    free frames that does not already back [cpage]; [None] when physical
    memory is exhausted. *)

val lookup : t -> mem_module:int -> cpage:int -> Frame.t option

val free : t -> Frame.t -> unit

val total_free : t -> int
val total_frames : t -> int
