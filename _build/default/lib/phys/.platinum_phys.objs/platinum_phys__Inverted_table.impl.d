lib/phys/inverted_table.ml: Array Frame Hashtbl List Printf
