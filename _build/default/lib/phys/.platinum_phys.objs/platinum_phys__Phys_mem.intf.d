lib/phys/phys_mem.mli: Frame Inverted_table
