lib/phys/phys_mem.ml: Array Frame Inverted_table
