lib/phys/frame.mli: Format
