lib/phys/inverted_table.mli: Frame
