lib/phys/frame.ml: Array Format Printf
