type t = {
  tables : Inverted_table.t array;
  words_per_page : int;
}

let create ~modules ~frames_per_module ~page_words =
  if modules <= 0 then invalid_arg "Phys_mem.create: modules must be positive";
  {
    tables =
      Array.init modules (fun m ->
          Inverted_table.create ~mem_module:m ~frames:frames_per_module ~page_words);
    words_per_page = page_words;
  }

let modules t = Array.length t.tables
let page_words t = t.words_per_page
let table t m = t.tables.(m)

let alloc_local t ~mem_module ~cpage = Inverted_table.alloc t.tables.(mem_module) ~cpage

let alloc_preferring t ~prefer ~cpage =
  match alloc_local t ~mem_module:prefer ~cpage with
  | Some _ as r -> r
  | None ->
    (* Fall back to the emptiest module that doesn't already hold a copy. *)
    let best = ref (-1) in
    let best_free = ref 0 in
    Array.iteri
      (fun m tbl ->
        if
          m <> prefer
          && Inverted_table.lookup tbl ~cpage = None
          && Inverted_table.free_count tbl > !best_free
        then begin
          best := m;
          best_free := Inverted_table.free_count tbl
        end)
      t.tables;
    if !best < 0 then None else alloc_local t ~mem_module:!best ~cpage

let lookup t ~mem_module ~cpage = Inverted_table.lookup t.tables.(mem_module) ~cpage

let free t frame = Inverted_table.free t.tables.(Frame.mem_module frame) frame

let total_free t = Array.fold_left (fun acc tbl -> acc + Inverted_table.free_count tbl) 0 t.tables

let total_frames t = Array.fold_left (fun acc tbl -> acc + Inverted_table.capacity tbl) 0 t.tables
