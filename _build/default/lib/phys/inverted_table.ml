type t = {
  table_module : int;
  frames : Frame.t array;
  by_cpage : (int, int) Hashtbl.t;  (* cpage id -> frame index *)
  mutable free_list : int list;
  mutable nfree : int;
}

let create ~mem_module ~frames ~page_words =
  if frames <= 0 then invalid_arg "Inverted_table.create: frames must be positive";
  let arr = Array.init frames (fun i -> Frame.create ~mem_module ~index:i ~words:page_words) in
  let free_list = List.init frames (fun i -> i) in
  {
    table_module = mem_module;
    frames = arr;
    by_cpage = Hashtbl.create (frames * 2);
    free_list;
    nfree = frames;
  }

let mem_module t = t.table_module
let capacity t = Array.length t.frames
let free_count t = t.nfree
let used_count t = capacity t - t.nfree

let alloc t ~cpage =
  if Hashtbl.mem t.by_cpage cpage then
    invalid_arg
      (Printf.sprintf "Inverted_table.alloc: module %d already backs cpage %d"
         t.table_module cpage);
  match t.free_list with
  | [] -> None
  | i :: rest ->
    t.free_list <- rest;
    t.nfree <- t.nfree - 1;
    let f = t.frames.(i) in
    Frame.set_owner f (Some cpage);
    Hashtbl.replace t.by_cpage cpage i;
    Some f

let lookup t ~cpage =
  match Hashtbl.find_opt t.by_cpage cpage with
  | None -> None
  | Some i -> Some t.frames.(i)

let free t frame =
  if Frame.mem_module frame <> t.table_module then
    invalid_arg "Inverted_table.free: frame belongs to another module";
  begin
    match Frame.owner frame with
    | None -> invalid_arg "Inverted_table.free: frame is already free"
    | Some cpage -> Hashtbl.remove t.by_cpage cpage
  end;
  Frame.set_owner frame None;
  t.free_list <- Frame.index frame :: t.free_list;
  t.nfree <- t.nfree + 1

let frame t i = t.frames.(i)

let iter_used f t =
  Array.iter (fun fr -> if Frame.owner fr <> None then f fr) t.frames
