type server = {
  request_port : Eff.port_id;
  server_tid : Eff.thread_id;
}

(* Wire format: requests are [| kind; reply_port; args... |] with kind 0 =
   call, 1 = shutdown; replies are the handler's result verbatim. *)
let kind_call = 0
let kind_shutdown = 1

let serve ?proc handler =
  let request_port = Api.new_port () in
  let rec loop () =
    let msg = Api.recv request_port in
    if msg.(0) = kind_shutdown then ()
    else begin
      let reply_port = msg.(1) in
      let args = Array.sub msg 2 (Array.length msg - 2) in
      Api.send reply_port (handler args);
      loop ()
    end
  in
  let server_tid = Api.spawn ?proc loop in
  { request_port; server_tid }

let port_of t = t.request_port

let call_async t args =
  let reply_port = Api.new_port () in
  let msg = Array.make (Array.length args + 2) 0 in
  msg.(0) <- kind_call;
  msg.(1) <- reply_port;
  Array.blit args 0 msg 2 (Array.length args);
  Api.send t.request_port msg;
  fun () -> Api.recv reply_port

let call t args = call_async t args ()

let shutdown t =
  Api.send t.request_port [| kind_shutdown; 0 |];
  Api.join t.server_tid
