lib/kernel/kernel.ml: Array Eff Effect Hashtbl Lazy List Memsys Option Platinum_machine Platinum_sim Printf Queue String
