lib/kernel/kernel.mli: Eff Memsys Platinum_machine Platinum_sim
