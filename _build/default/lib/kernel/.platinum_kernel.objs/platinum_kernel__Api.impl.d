lib/kernel/api.ml: Eff Effect List
