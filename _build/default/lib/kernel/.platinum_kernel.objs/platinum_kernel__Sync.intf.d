lib/kernel/sync.mli: Eff
