lib/kernel/memsys.mli:
