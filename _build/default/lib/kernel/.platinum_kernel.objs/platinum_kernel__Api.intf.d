lib/kernel/api.mli: Eff Memsys
