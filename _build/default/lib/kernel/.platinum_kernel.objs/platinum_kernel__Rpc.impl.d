lib/kernel/rpc.ml: Api Array Eff
