lib/kernel/platsys.mli: Memsys Platinum_core Platinum_vm
