lib/kernel/rpc.mli: Eff
