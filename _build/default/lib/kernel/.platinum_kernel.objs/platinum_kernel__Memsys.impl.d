lib/kernel/memsys.ml:
