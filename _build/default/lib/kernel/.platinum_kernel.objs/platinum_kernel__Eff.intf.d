lib/kernel/eff.mli: Effect Memsys
