lib/kernel/sync.ml: Api
