lib/kernel/eff.ml: Effect Memsys
