lib/kernel/platsys.ml: Array Memsys Platinum_core Platinum_machine Platinum_vm Printf
