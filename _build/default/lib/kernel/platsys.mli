(** The PLATINUM coherent memory system packaged as a kernel {!Memsys}
    backend.

    Glue layer: unmapped pages fall through to the VM fault handler of
    the accessing thread's address space; allocation goes to
    {!Platinum_vm.Zone} zones (zone 0 is the root space's default heap);
    translation and data movement are {!Platinum_core.Coherent}.

    Supports the full §1.1 model: multiple address spaces (each with its
    own private heap), globally named memory segments mappable into any
    space (at per-space addresses), and threads bound to one space. *)

type t

val create :
  Platinum_core.Coherent.t ->
  Platinum_vm.Addr_space.t ->
  ?default_zone_pages:int ->
  unit ->
  t
(** [create coh root_aspace ()] — [root_aspace] becomes address space 0.
    [default_zone_pages] sizes each space's heap (default 4096 pages). *)

val memsys : t -> Memsys.t
val coherent : t -> Platinum_core.Coherent.t

val aspace : t -> Platinum_vm.Addr_space.t
(** The root (id 0) address space. *)

val zone : t -> int -> Platinum_vm.Zone.t

val heap_zone_of_aspace : t -> int -> int
(** The private heap zone handle of an address space (0 for space 0);
    -1 if unknown. *)
