(** User-level synchronization, built from atomic memory operations.

    Exactly what Butterfly programs did: spin locks and event counts are
    ordinary words in coherent memory, manipulated with atomic
    read-modify-write network operations.  Their pages therefore interact
    with the replication policy — actively contended synchronization words
    get their pages frozen, which is the §4.2 anecdote — so allocate them
    in their own zone, away from data. *)

val spin_until : ?initial_backoff:int -> ?max_backoff:int -> (unit -> bool) -> unit
(** Poll [pred] with exponential backoff (defaults 1 µs → 100 µs).  Each
    poll really reads simulated memory if [pred] does. *)

module Spinlock : sig
  type t

  val make : ?zone:Eff.zone_id -> unit -> t
  (** Allocate the lock word (in the default zone unless told otherwise). *)

  val of_addr : int -> t
  val addr : t -> int
  val acquire : t -> unit
  (** Test-and-set with read-spin and backoff while held. *)

  val release : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Event_count : sig
  type t
  (** A monotonically increasing counter (the Butterfly's event counts). *)

  val make : ?zone:Eff.zone_id -> unit -> t
  val of_addr : int -> t
  val addr : t -> int
  val advance : t -> unit
  val current : t -> int
  val await : t -> int -> unit
  (** Spin (with backoff) until the count reaches the target. *)
end

module Barrier : sig
  type t
  (** A central sense-reversing barrier for a fixed number of parties. *)

  val make : ?zone:Eff.zone_id -> parties:int -> unit -> t
  val wait : t -> unit
end
