let read vaddr = Effect.perform (Eff.Read vaddr)
let write vaddr v = Effect.perform (Eff.Write (vaddr, v))
let rmw vaddr f = Effect.perform (Eff.Rmw (vaddr, f))
let block_read vaddr len = Effect.perform (Eff.Block_read (vaddr, len))
let block_write vaddr data = Effect.perform (Eff.Block_write (vaddr, data))
let read_array = block_read
let write_array = block_write
let compute ns = if ns > 0 then Effect.perform (Eff.Compute ns)
let now () = Effect.perform Eff.Now
let spawn ?proc ?aspace body = Effect.perform (Eff.Spawn (body, proc, aspace))
let join tid = Effect.perform (Eff.Join tid)

let spawn_join_all ?procs bodies =
  let place i =
    match procs with
    | None -> None
    | Some [] -> None
    | Some ps -> Some (List.nth ps (i mod List.length ps))
  in
  let tids = List.mapi (fun i body -> spawn ?proc:(place i) (fun () -> body i)) bodies in
  List.iter join tids

let yield () = Effect.perform Eff.Yield
let migrate proc = Effect.perform (Eff.Migrate proc)
let self () = Effect.perform Eff.Self
let my_proc () = Effect.perform Eff.My_proc
let new_port () = Effect.perform Eff.New_port
let send port msg = Effect.perform (Eff.Port_send (port, msg))
let recv port = Effect.perform (Eff.Port_recv port)
let new_zone name ~pages = Effect.perform (Eff.New_zone (name, pages))
let alloc ?(zone = 0) ?(page_aligned = false) words =
  Effect.perform (Eff.Alloc (zone, words, page_aligned))

let alloc_pages ?(zone = 0) pages = Effect.perform (Eff.Alloc_pages (zone, pages))
let page_words () = Effect.perform Eff.Page_words
let advise vaddr len advice = Effect.perform (Eff.Advise (vaddr, len, advice))
let my_aspace () = Effect.perform Eff.My_aspace
let new_aspace () = Effect.perform Eff.New_aspace
let new_segment name ~pages = Effect.perform (Eff.New_segment (name, pages))
let map_segment segment = Effect.perform (Eff.Map_segment segment)
