type advice =
  | Freeze
  | Thaw
  | Home of int

type t = {
  page_words : int;
  read : now:int -> proc:int -> aspace:int -> vaddr:int -> int * int;
  write : now:int -> proc:int -> aspace:int -> vaddr:int -> int -> int;
  rmw : now:int -> proc:int -> aspace:int -> vaddr:int -> (int -> int) -> int * int;
  block_read : now:int -> proc:int -> aspace:int -> vaddr:int -> len:int -> int array * int;
  block_write : now:int -> proc:int -> aspace:int -> vaddr:int -> int array -> int;
  new_aspace : unit -> int;
  new_zone : aspace:int -> name:string -> pages:int -> int;
  alloc : zone:int -> words:int -> page_aligned:bool -> int;
  alloc_pages : zone:int -> pages:int -> int;
  new_segment : name:string -> pages:int -> int;
  map_segment : aspace:int -> segment:int -> int;
  advise : now:int -> proc:int -> aspace:int -> vaddr:int -> len:int -> advice -> int;
  migrate_cost : now:int -> from_proc:int -> to_proc:int -> int;
  describe : unit -> string;
}
