let spin_until ?(initial_backoff = 1_000) ?(max_backoff = 100_000) pred =
  let rec loop backoff =
    if not (pred ()) then begin
      Api.compute backoff;
      loop (min (backoff * 2) max_backoff)
    end
  in
  loop initial_backoff

module Spinlock = struct
  type t = { lock_addr : int }

  let make ?zone () = { lock_addr = Api.alloc ?zone 1 }
  let of_addr lock_addr = { lock_addr }
  let addr t = t.lock_addr

  let try_acquire t = Api.rmw t.lock_addr (fun v -> if v = 0 then 1 else v) = 0

  let acquire t =
    while not (try_acquire t) do
      (* Read-spin while held; only retry the atomic op when free. *)
      spin_until (fun () -> Api.read t.lock_addr = 0)
    done

  let release t = Api.write t.lock_addr 0

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
      release t;
      v
    | exception e ->
      release t;
      raise e
end

module Event_count = struct
  type t = { ec_addr : int }

  let make ?zone () = { ec_addr = Api.alloc ?zone 1 }
  let of_addr ec_addr = { ec_addr }
  let addr t = t.ec_addr
  let advance t = ignore (Api.rmw t.ec_addr (fun v -> v + 1))
  let current t = Api.read t.ec_addr
  let await t target = spin_until (fun () -> Api.read t.ec_addr >= target)
end

module Barrier = struct
  type t = {
    parties : int;
    count_addr : int;
    gen_addr : int;
  }

  let make ?zone ~parties () =
    if parties <= 0 then invalid_arg "Barrier.make: parties must be positive";
    let count_addr = Api.alloc ?zone 1 in
    let gen_addr = Api.alloc ?zone 1 in
    { parties; count_addr; gen_addr }

  let wait t =
    let gen = Api.read t.gen_addr in
    let arrived = Api.rmw t.count_addr (fun v -> v + 1) + 1 in
    if arrived = t.parties then begin
      Api.write t.count_addr 0;
      Api.write t.gen_addr (gen + 1)
    end
    else spin_until (fun () -> Api.read t.gen_addr <> gen)
end
