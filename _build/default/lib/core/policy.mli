(** Replication policies (§4.2, §8).

    On every miss with no local copy the Cpage system can either *replicate*
    (or migrate, on a write) the page to the faulting processor's memory, or
    create a *remote mapping* to an existing physical page — in effect
    selectively disabling caching for that page.  A policy makes that
    choice; PLATINUM's interim policy freezes pages that were invalidated by
    the protocol within the last [t1]. *)

type decision =
  | Replicate
      (** Make a local copy (read miss) / migrate the page (write miss). *)
  | Remote_map  (** Map an existing physical page across the switch. *)

type fault_kind =
  | Read_fault
  | Write_fault

(** Callbacks into the Cpage system so policies can freeze and thaw. *)
type hooks = {
  freeze : now:Platinum_sim.Time_ns.t -> Cpage.t -> unit;
  thaw : now:Platinum_sim.Time_ns.t -> Cpage.t -> unit;
}

type kind =
  | Platinum of { thaw_on_fault : bool }
      (** The paper's policy.  Freeze on a fault within [t1] of the last
          protocol invalidation.  With [thaw_on_fault = false] (the paper's
          default) a frozen page stays frozen until the defrost daemon thaws
          it; with [true] a fault after the [t1] window thaws it (the
          alternative policy of §4.2). *)
  | Always_replicate  (** Never freeze: replicate/migrate on every miss. *)
  | Never_move
      (** Static placement: pages stay wherever first touch put them; every
          other processor uses remote mappings (the Uniform-System-like
          baseline). *)
  | Migrate_only
      (** Migrate on write misses, but never replicate for reads
          (Scheurich/DuBois-style migration without replication). *)
  | Bolosky of { max_migrations : int }
      (** Bolosky et al.'s simple NUMA-Mach scheme: replicate only
          never-written pages; let a written page migrate at most
          [max_migrations] times, then freeze it permanently. *)
  | Uniform_system
      (** The Figure 1 baseline: data pages are scattered round-robin
          across memory modules (the Uniform System's placement) and are
          never moved — every non-resident access is remote. *)
  | Competitive of { threshold : int }
      (** Black, Gupta and Weber's competitive management (§8): move a
          page only once enough remote use has accrued to pay for the
          move.  The real scheme counts references with hardware
          counters; lacking those (the paper's very objection), this is
          the software approximation: a page is remote-mapped until
          [threshold] misses have accumulated since it last moved, then
          replicated/migrated. *)

type t = {
  name : string;
  kind : kind;
  uses_defrost : bool;  (** should the defrost daemon run? *)
  scatter_placement : bool;
      (** place first-touch pages round-robin by page id instead of on
          the faulting processor's module *)
  decide : hooks -> now:Platinum_sim.Time_ns.t -> fault_kind -> Cpage.t -> decision;
}

val make : t1:Platinum_sim.Time_ns.t -> kind -> t
(** [t1] is the freeze window used by [Platinum] (and ignored by others). *)

val default_names : string list
val of_string : t1:Platinum_sim.Time_ns.t -> string -> (t, string) result
(** Parse a policy name for CLIs: ["platinum"], ["platinum-thaw"],
    ["always-replicate"], ["static-place"], ["uniform-system"],
    ["migrate-only"], ["bolosky"]. *)
