module Engine = Platinum_sim.Engine

type mode =
  | Periodic
  | Adaptive of {
      initial_t2 : Platinum_sim.Time_ns.t;
      max_t2 : Platinum_sim.Time_ns.t;
      refreeze_window : Platinum_sim.Time_ns.t;
    }

let default_adaptive =
  Adaptive { initial_t2 = 100_000_000; max_t2 = 5_000_000_000; refreeze_window = 50_000_000 }

let install_periodic coh engine =
  let period = (Coherent.config coh).Platinum_machine.Config.t2_defrost_period in
  Engine.every engine ~daemon:true ~period (fun () ->
      Coherent.thaw_all coh ~now:(Engine.now engine);
      true)

let install_adaptive coh engine ~initial_t2 ~max_t2 ~refreeze_window =
  let on_freeze ~now (page : Cpage.t) =
    (* Back off when the previous thaw didn't stick. *)
    if page.Cpage.adaptive_t2 = 0 then page.Cpage.adaptive_t2 <- initial_t2
    else if now - page.Cpage.last_thaw_at <= refreeze_window then
      page.Cpage.adaptive_t2 <- min (2 * page.Cpage.adaptive_t2) max_t2;
    let frozen_at = now in
    Engine.schedule_after engine ~daemon:true ~delay:page.Cpage.adaptive_t2 (fun () ->
        (* Only thaw the freeze we were armed for: the page may have
           thawed and refrozen since, with its own later wake-up. *)
        if page.Cpage.frozen && page.Cpage.frozen_at = frozen_at then
          Coherent.daemon_thaw coh ~now:(Engine.now engine) page)
  in
  Coherent.set_freeze_hook coh (Some on_freeze)

let install ?(mode = Periodic) coh engine =
  if (Coherent.policy coh).Policy.uses_defrost then
    match mode with
    | Periodic -> install_periodic coh engine
    | Adaptive { initial_t2; max_t2; refreeze_window } ->
      install_adaptive coh engine ~initial_t2 ~max_t2 ~refreeze_window
