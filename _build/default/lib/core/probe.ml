type event =
  | Read_fault of { cpage : int; proc : int }
  | Write_fault of { cpage : int; proc : int }
  | Replicated of { cpage : int; to_module : int; copies : int }
  | Migrated of { cpage : int; to_module : int }
  | Remote_mapped of { cpage : int; proc : int; frozen : bool }
  | Invalidated of { cpage : int; interrupted : int }
  | Restricted of { cpage : int; interrupted : int }
  | Frozen of { cpage : int }
  | Thawed of { cpage : int; by_daemon : bool }

type t = now:Platinum_sim.Time_ns.t -> event -> unit

let pp_event fmt = function
  | Read_fault { cpage; proc } -> Format.fprintf fmt "read fault: cpage %d by proc %d" cpage proc
  | Write_fault { cpage; proc } ->
    Format.fprintf fmt "write fault: cpage %d by proc %d" cpage proc
  | Replicated { cpage; to_module; copies } ->
    Format.fprintf fmt "replicated: cpage %d to module %d (%d copies)" cpage to_module copies
  | Migrated { cpage; to_module } ->
    Format.fprintf fmt "migrated: cpage %d to module %d" cpage to_module
  | Remote_mapped { cpage; proc; frozen } ->
    Format.fprintf fmt "remote map: cpage %d for proc %d%s" cpage proc
      (if frozen then " (frozen)" else "")
  | Invalidated { cpage; interrupted } ->
    Format.fprintf fmt "invalidated: cpage %d (%d processors interrupted)" cpage interrupted
  | Restricted { cpage; interrupted } ->
    Format.fprintf fmt "restricted: cpage %d (%d processors interrupted)" cpage interrupted
  | Frozen { cpage } -> Format.fprintf fmt "FROZE cpage %d" cpage
  | Thawed { cpage; by_daemon } ->
    Format.fprintf fmt "thawed cpage %d%s" cpage (if by_daemon then " (defrost daemon)" else "")
