(** The protocol state-transition atlas (Figure 4).

    Rather than hard-coding the paper's diagram, this module {e drives} a
    live coherent-memory instance through every scenario the protocol can
    encounter and records which state transition each one produced.  The
    fig4 benchmark prints the resulting edges (and DOT); a test pins them
    to the expected diagram, so any change to the fault handler that
    alters the protocol shape is caught. *)

type edge = {
  from_state : Cpage.state;
  to_state : Cpage.state;
  trigger : string;  (** e.g. ["read miss (replicate)"] *)
}

val edges : unit -> edge list
(** Execute every scenario on a fresh instance and collect the observed
    transitions, deduplicated, in a stable order. *)

val to_dot : edge list -> string
(** Graphviz rendering of the diagram. *)

val pp_edge : Format.formatter -> edge -> unit
