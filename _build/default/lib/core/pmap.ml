type entry = {
  frame : Platinum_phys.Frame.t;
  mutable write_ok : bool;
}

type t = {
  pmap_proc : int;
  entries : (int, entry) Hashtbl.t;
}

let create ~proc = { pmap_proc = proc; entries = Hashtbl.create 64 }
let proc t = t.pmap_proc
let find t ~vpage = Hashtbl.find_opt t.entries vpage

let install t ~vpage ~frame ~write_ok =
  let e = { frame; write_ok } in
  Hashtbl.replace t.entries vpage e;
  e

let remove t ~vpage = Hashtbl.remove t.entries vpage

let restrict t ~vpage =
  match Hashtbl.find_opt t.entries vpage with
  | None -> ()
  | Some e -> e.write_ok <- false

let clear t = Hashtbl.reset t.entries
let size t = Hashtbl.length t.entries
let iter f t = Hashtbl.iter f t.entries
