type t = {
  atc_proc : int;
  mutable aspace : int;  (* -1 = none *)
  entries : (int, Pmap.entry) Hashtbl.t;
}

let create ~proc = { atc_proc = proc; aspace = -1; entries = Hashtbl.create 64 }
let proc t = t.atc_proc
let active_aspace t = if t.aspace < 0 then None else Some t.aspace

let flush t = Hashtbl.reset t.entries

let activate t ~aspace =
  if t.aspace = aspace then false
  else begin
    flush t;
    t.aspace <- aspace;
    true
  end

let deactivate t =
  flush t;
  t.aspace <- -1

let find t ~aspace ~vpage =
  if t.aspace <> aspace then None else Hashtbl.find_opt t.entries vpage

let load t ~vpage entry =
  if t.aspace < 0 then invalid_arg "Atc.load: no active address space";
  Hashtbl.replace t.entries vpage entry

let invalidate t ~aspace ~vpage = if t.aspace = aspace then Hashtbl.remove t.entries vpage

let size t = Hashtbl.length t.entries
