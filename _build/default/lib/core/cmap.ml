module Procset = Platinum_machine.Procset

type centry = {
  cpage : Cpage.t;
  mutable vrights : Rights.t;
  mutable refmask : Procset.t;
}

type directive =
  | Restrict_to_read
  | Invalidate

type message = {
  msg_vpage : int;
  msg_directive : directive;
  mutable msg_targets : Procset.t;
}

type t = {
  aspace_id : int;
  entries : (int, centry) Hashtbl.t;
  mutable queue : message list;  (* newest first; order is irrelevant to targets *)
  mutable active_set : Procset.t;
  pmaps : Pmap.t array;
  mutable posted : int;
}

let create ~aspace ~nprocs =
  {
    aspace_id = aspace;
    entries = Hashtbl.create 256;
    queue = [];
    active_set = Procset.empty;
    pmaps = Array.init nprocs (fun proc -> Pmap.create ~proc);
    posted = 0;
  }

let aspace t = t.aspace_id
let pmap t ~proc = t.pmaps.(proc)
let active t = t.active_set

let set_active t ~proc flag =
  t.active_set <-
    (if flag then Procset.add proc t.active_set else Procset.remove proc t.active_set)

let find t ~vpage = Hashtbl.find_opt t.entries vpage

let bind t ~vpage cpage vrights =
  if Hashtbl.mem t.entries vpage then
    invalid_arg (Printf.sprintf "Cmap.bind: vpage %d already bound in aspace %d" vpage t.aspace_id);
  let e = { cpage; vrights; refmask = Procset.empty } in
  Hashtbl.replace t.entries vpage e;
  e

let unbind t ~vpage = Hashtbl.remove t.entries vpage
let iter f t = Hashtbl.iter f t.entries
let nbindings t = Hashtbl.length t.entries

let post t msg =
  t.queue <- msg :: t.queue;
  t.posted <- t.posted + 1

let complete t msg ~proc =
  msg.msg_targets <- Procset.remove proc msg.msg_targets;
  if Procset.is_empty msg.msg_targets then t.queue <- List.filter (fun m -> m != msg) t.queue

let pending_messages t = t.queue
let messages_posted t = t.posted
