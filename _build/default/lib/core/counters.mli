(** Global coherent-memory counters (whole-kernel instrumentation). *)

type t = {
  mutable read_faults : int;
  mutable write_faults : int;
  mutable vm_faults : int;  (** faults that fell through to the VM layer *)
  mutable replications : int;
  mutable migrations : int;
  mutable remote_maps : int;
  mutable freezes : int;
  mutable thaws : int;
  mutable shootdowns : int;
  mutable messages : int;  (** Cmap messages posted *)
  mutable interrupts : int;  (** processors interrupted by shootdowns *)
  mutable deferred_updates : int;
      (** Pmap updates applied without an interrupt (inactive targets) *)
  mutable pages_freed : int;
  mutable zero_fills : int;
  mutable atc_reloads : int;
  mutable fault_ns : int;  (** total time in the Cpage fault handler *)
  mutable copy_ns : int;  (** total block-transfer time *)
}

val create : unit -> t
val reset : t -> unit
val pp : Format.formatter -> t -> unit
