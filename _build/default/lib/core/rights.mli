(** Access rights on virtual pages.

    The virtual memory system grants [vrights] per binding; the coherent
    memory system installs virtual-to-physical mappings whose rights are
    *potentially more restrictive* in order to force the traps that drive
    the protocol (§2.1). *)

type t =
  | No_access
  | Read_only
  | Read_write

val allows_read : t -> bool
val allows_write : t -> bool

val min : t -> t -> t
(** The more restrictive of the two. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
