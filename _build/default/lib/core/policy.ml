type decision =
  | Replicate
  | Remote_map

type fault_kind =
  | Read_fault
  | Write_fault

type hooks = {
  freeze : now:Platinum_sim.Time_ns.t -> Cpage.t -> unit;
  thaw : now:Platinum_sim.Time_ns.t -> Cpage.t -> unit;
}

type kind =
  | Platinum of { thaw_on_fault : bool }
  | Always_replicate
  | Never_move
  | Migrate_only
  | Bolosky of { max_migrations : int }
  | Uniform_system
  | Competitive of { threshold : int }

type t = {
  name : string;
  kind : kind;
  uses_defrost : bool;
  scatter_placement : bool;
  decide : hooks -> now:Platinum_sim.Time_ns.t -> fault_kind -> Cpage.t -> decision;
}

let platinum_decide ~t1 ~thaw_on_fault hooks ~now _kind (page : Cpage.t) =
  if page.Cpage.frozen then
    if thaw_on_fault && now - page.Cpage.last_protocol_inval >= t1 then begin
      hooks.thaw ~now page;
      Replicate
    end
    else Remote_map
  else if now - page.Cpage.last_protocol_inval < t1 then begin
    (* Recent protocol invalidation: the page is being actively
       write-shared; caching it would cost more than remote access. *)
    hooks.freeze ~now page;
    Remote_map
  end
  else Replicate

let bolosky_decide ~max_migrations _hooks ~now:_ kind (page : Cpage.t) =
  match kind with
  | Read_fault -> if page.Cpage.stats.Cpage.ever_written then Remote_map else Replicate
  | Write_fault ->
    if page.Cpage.stats.Cpage.migrations < max_migrations then Replicate else Remote_map

let competitive_decide ~threshold interest _hooks ~now:_ _kind (page : Cpage.t) =
  let id = page.Cpage.id in
  let n = 1 + (try Hashtbl.find interest id with Not_found -> 0) in
  if n >= threshold then begin
    Hashtbl.replace interest id 0;
    Replicate
  end
  else begin
    Hashtbl.replace interest id n;
    Remote_map
  end

let make ~t1 kind =
  match kind with
  | Platinum { thaw_on_fault } ->
    {
      name = (if thaw_on_fault then "platinum-thaw" else "platinum");
      kind;
      uses_defrost = true;
      scatter_placement = false;
      decide = (fun hooks ~now k page -> platinum_decide ~t1 ~thaw_on_fault hooks ~now k page);
    }
  | Always_replicate ->
    {
      name = "always-replicate";
      kind;
      uses_defrost = false;
      scatter_placement = false;
      decide = (fun _ ~now:_ _ _ -> Replicate);
    }
  | Never_move ->
    {
      name = "static-place";
      kind;
      uses_defrost = false;
      scatter_placement = false;
      decide = (fun _ ~now:_ _ _ -> Remote_map);
    }
  | Uniform_system ->
    {
      name = "uniform-system";
      kind;
      uses_defrost = false;
      scatter_placement = true;
      decide = (fun _ ~now:_ _ _ -> Remote_map);
    }
  | Migrate_only ->
    {
      name = "migrate-only";
      kind;
      uses_defrost = false;
      scatter_placement = false;
      decide =
        (fun _ ~now:_ k _ ->
          match k with
          | Read_fault -> Remote_map
          | Write_fault -> Replicate);
    }
  | Bolosky { max_migrations } ->
    {
      name = "bolosky";
      kind;
      uses_defrost = false;
      scatter_placement = false;
      decide = (fun hooks ~now k page -> bolosky_decide ~max_migrations hooks ~now k page);
    }
  | Competitive { threshold } ->
    let interest : (int, int) Hashtbl.t = Hashtbl.create 256 in
    {
      name = "competitive";
      kind;
      uses_defrost = false;
      scatter_placement = false;
      decide = (fun hooks ~now k page -> competitive_decide ~threshold interest hooks ~now k page);
    }

let default_names =
  [
    "platinum";
    "platinum-thaw";
    "always-replicate";
    "static-place";
    "uniform-system";
    "migrate-only";
    "bolosky";
    "competitive";
  ]

let of_string ~t1 = function
  | "platinum" -> Ok (make ~t1 (Platinum { thaw_on_fault = false }))
  | "platinum-thaw" -> Ok (make ~t1 (Platinum { thaw_on_fault = true }))
  | "always-replicate" -> Ok (make ~t1 Always_replicate)
  | "static-place" -> Ok (make ~t1 Never_move)
  | "uniform-system" -> Ok (make ~t1 Uniform_system)
  | "migrate-only" -> Ok (make ~t1 Migrate_only)
  | "bolosky" -> Ok (make ~t1 (Bolosky { max_migrations = 4 }))
  | "competitive" -> Ok (make ~t1 (Competitive { threshold = 3 }))
  | s -> Error (Printf.sprintf "unknown policy %S (expected one of: %s)" s (String.concat ", " default_names))
