type t =
  | No_access
  | Read_only
  | Read_write

let allows_read = function
  | No_access -> false
  | Read_only | Read_write -> true

let allows_write = function
  | No_access | Read_only -> false
  | Read_write -> true

let rank = function
  | No_access -> 0
  | Read_only -> 1
  | Read_write -> 2

let min a b = if rank a <= rank b then a else b
let equal a b = rank a = rank b

let to_string = function
  | No_access -> "none"
  | Read_only -> "ro"
  | Read_write -> "rw"

let pp fmt t = Format.pp_print_string fmt (to_string t)
