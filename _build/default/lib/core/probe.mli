(** Protocol event probes — the kernel instrumentation interface (§9).

    The paper: "We are also adding an instrumentation interface to the
    kernel to help interpret its behavior... useful to application
    programmers, compiler writers, and system implementors."  A probe is a
    callback invoked synchronously at each protocol event; {!Platinum_stats.Trace}
    builds timelines on top of it, and tests use it to assert exact event
    sequences. *)

type event =
  | Read_fault of { cpage : int; proc : int }
  | Write_fault of { cpage : int; proc : int }
  | Replicated of { cpage : int; to_module : int; copies : int }
  | Migrated of { cpage : int; to_module : int }
  | Remote_mapped of { cpage : int; proc : int; frozen : bool }
  | Invalidated of { cpage : int; interrupted : int }
      (** a protocol invalidation (write-sharing) *)
  | Restricted of { cpage : int; interrupted : int }
      (** write mappings demoted to read-only for a replication *)
  | Frozen of { cpage : int }
  | Thawed of { cpage : int; by_daemon : bool }

type t = now:Platinum_sim.Time_ns.t -> event -> unit

val pp_event : Format.formatter -> event -> unit
