lib/core/shootdown.ml: Array Atc Cmap Counters List Platinum_machine Pmap
