lib/core/cpage.ml: Format List Platinum_machine Platinum_phys Platinum_sim Printf
