lib/core/defrost.mli: Coherent Platinum_sim
