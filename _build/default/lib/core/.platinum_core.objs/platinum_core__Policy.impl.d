lib/core/policy.ml: Cpage Hashtbl Platinum_sim Printf String
