lib/core/coherent.ml: Array Atc Cmap Counters Cpage Fault Hashtbl List Platinum_machine Platinum_phys Platinum_sim Pmap Policy Printf Probe Shootdown
