lib/core/fault.ml: Array Atc Cmap Counters Cpage List Platinum_machine Platinum_phys Pmap Policy Probe Rights Shootdown
