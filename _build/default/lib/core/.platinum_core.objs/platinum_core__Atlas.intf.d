lib/core/atlas.mli: Cpage Format
