lib/core/atlas.ml: Buffer Cmap Coherent Cpage Format List Platinum_machine Platinum_sim Policy Printf Rights
