lib/core/atc.mli: Pmap
