lib/core/pmap.ml: Hashtbl Platinum_phys
