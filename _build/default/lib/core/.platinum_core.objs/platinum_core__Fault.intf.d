lib/core/fault.mli: Atc Cmap Counters Cpage Platinum_machine Platinum_phys Platinum_sim Pmap Policy Probe
