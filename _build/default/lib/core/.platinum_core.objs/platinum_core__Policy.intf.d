lib/core/policy.mli: Cpage Platinum_sim
