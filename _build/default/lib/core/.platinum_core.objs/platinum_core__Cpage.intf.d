lib/core/cpage.mli: Format Platinum_machine Platinum_phys Platinum_sim
