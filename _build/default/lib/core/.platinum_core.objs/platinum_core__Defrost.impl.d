lib/core/defrost.ml: Coherent Cpage Platinum_machine Platinum_sim Policy
