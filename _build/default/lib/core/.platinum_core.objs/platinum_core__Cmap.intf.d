lib/core/cmap.mli: Cpage Platinum_machine Pmap Rights
