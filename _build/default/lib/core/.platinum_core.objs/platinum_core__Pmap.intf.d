lib/core/pmap.mli: Platinum_phys
