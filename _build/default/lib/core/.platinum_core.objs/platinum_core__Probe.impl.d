lib/core/probe.ml: Format Platinum_sim
