lib/core/probe.mli: Format Platinum_sim
