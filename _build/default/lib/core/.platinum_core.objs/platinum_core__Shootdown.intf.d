lib/core/shootdown.mli: Atc Cmap Counters Platinum_machine Platinum_sim
