lib/core/cmap.ml: Array Cpage Hashtbl List Platinum_machine Pmap Printf Rights
