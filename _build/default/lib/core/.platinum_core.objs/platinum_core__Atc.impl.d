lib/core/atc.ml: Hashtbl Pmap
