lib/core/counters.ml: Format Platinum_sim
