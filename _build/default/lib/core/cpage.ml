module Frame = Platinum_phys.Frame
module Procset = Platinum_machine.Procset

type state =
  | Empty
  | Present1
  | Present_plus
  | Modified

type stats = {
  mutable read_faults : int;
  mutable write_faults : int;
  mutable replications : int;
  mutable migrations : int;
  mutable invalidations : int;
  mutable restrictions : int;
  mutable freezes : int;
  mutable thaws : int;
  mutable remote_maps : int;
  mutable fault_wait_ns : int;
  mutable ever_written : bool;
  mutable was_frozen : bool;
}

type t = {
  id : int;
  home : int;
  mutable state : state;
  mutable copies : Frame.t list;
  mutable copy_mask : Procset.t;
  mutable write_mapped : bool;
  mutable last_protocol_inval : Platinum_sim.Time_ns.t;
  mutable frozen : bool;
  mutable frozen_at : Platinum_sim.Time_ns.t;
  mutable last_thaw_at : Platinum_sim.Time_ns.t;
  mutable adaptive_t2 : Platinum_sim.Time_ns.t;
  stats : stats;
  mutable label : string;
}

let never_invalidated = min_int / 4

let fresh_stats () =
  {
    read_faults = 0;
    write_faults = 0;
    replications = 0;
    migrations = 0;
    invalidations = 0;
    restrictions = 0;
    freezes = 0;
    thaws = 0;
    remote_maps = 0;
    fault_wait_ns = 0;
    ever_written = false;
    was_frozen = false;
  }

let create ~id ~home ?(label = "") () =
  {
    id;
    home;
    state = Empty;
    copies = [];
    copy_mask = Procset.empty;
    write_mapped = false;
    last_protocol_inval = never_invalidated;
    frozen = false;
    frozen_at = 0;
    last_thaw_at = never_invalidated;
    adaptive_t2 = 0;
    stats = fresh_stats ();
    label;
  }

let ncopies t = List.length t.copies
let has_copy_on t m = Procset.mem m t.copy_mask

let local_copy t m =
  if not (has_copy_on t m) then None
  else List.find_opt (fun f -> Frame.mem_module f = m) t.copies

let any_copy t =
  match t.copies with
  | [] -> invalid_arg "Cpage.any_copy: empty page"
  | f :: _ -> f

let add_copy t frame =
  let m = Frame.mem_module frame in
  if has_copy_on t m then
    invalid_arg (Printf.sprintf "Cpage.add_copy: module %d already backs cpage %d" m t.id);
  t.copies <- frame :: t.copies;
  t.copy_mask <- Procset.add m t.copy_mask

let remove_copy t frame =
  let m = Frame.mem_module frame in
  if not (List.memq frame t.copies) then
    invalid_arg (Printf.sprintf "Cpage.remove_copy: frame not in directory of cpage %d" t.id);
  t.copies <- List.filter (fun f -> f != frame) t.copies;
  t.copy_mask <- Procset.remove m t.copy_mask

let derived_state t =
  match t.copies, t.write_mapped with
  | [], false -> Empty
  | [], true -> Empty (* unreachable if invariants hold *)
  | [ _ ], true -> Modified
  | [ _ ], false -> Present1
  | _ :: _ :: _, _ -> Present_plus

let sync_state t = t.state <- derived_state t

let state_to_string = function
  | Empty -> "empty"
  | Present1 -> "present1"
  | Present_plus -> "present+"
  | Modified -> "modified"

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

let check_invariants t =
  let err fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "cpage %d: %s" t.id s)) fmt in
  let mask_of_list =
    List.fold_left (fun acc f -> Procset.add (Frame.mem_module f) acc) Procset.empty t.copies
  in
  if not (Procset.equal mask_of_list t.copy_mask) then err "copy mask disagrees with copy list"
  else if List.length t.copies <> Procset.cardinal t.copy_mask then
    err "two copies share a memory module"
  else if t.state <> derived_state t then
    err "state %s but directory implies %s" (state_to_string t.state)
      (state_to_string (derived_state t))
  else if t.write_mapped && List.length t.copies > 1 then
    err "write mapping coexists with %d copies" (List.length t.copies)
  else if t.frozen && List.length t.copies > 1 then err "frozen page has multiple copies"
  else begin
    (* All read-only replicas must agree word-for-word. *)
    match t.copies with
    | [] | [ _ ] -> Ok ()
    | first :: rest ->
      if List.for_all (fun f -> Frame.equal_data first f) rest then Ok ()
      else err "replica data differs between modules"
  end

let pp fmt t =
  Format.fprintf fmt "cpage %d%s: %a, copies=%a%s%s" t.id
    (if t.label = "" then "" else Printf.sprintf " (%s)" t.label)
    pp_state t.state Procset.pp t.copy_mask
    (if t.write_mapped then ", write-mapped" else "")
    (if t.frozen then ", FROZEN" else "")
