type t = {
  mutable read_faults : int;
  mutable write_faults : int;
  mutable vm_faults : int;
  mutable replications : int;
  mutable migrations : int;
  mutable remote_maps : int;
  mutable freezes : int;
  mutable thaws : int;
  mutable shootdowns : int;
  mutable messages : int;
  mutable interrupts : int;
  mutable deferred_updates : int;
  mutable pages_freed : int;
  mutable zero_fills : int;
  mutable atc_reloads : int;
  mutable fault_ns : int;
  mutable copy_ns : int;
}

let create () =
  {
    read_faults = 0;
    write_faults = 0;
    vm_faults = 0;
    replications = 0;
    migrations = 0;
    remote_maps = 0;
    freezes = 0;
    thaws = 0;
    shootdowns = 0;
    messages = 0;
    interrupts = 0;
    deferred_updates = 0;
    pages_freed = 0;
    zero_fills = 0;
    atc_reloads = 0;
    fault_ns = 0;
    copy_ns = 0;
  }

let reset t =
  t.read_faults <- 0;
  t.write_faults <- 0;
  t.vm_faults <- 0;
  t.replications <- 0;
  t.migrations <- 0;
  t.remote_maps <- 0;
  t.freezes <- 0;
  t.thaws <- 0;
  t.shootdowns <- 0;
  t.messages <- 0;
  t.interrupts <- 0;
  t.deferred_updates <- 0;
  t.pages_freed <- 0;
  t.zero_fills <- 0;
  t.atc_reloads <- 0;
  t.fault_ns <- 0;
  t.copy_ns <- 0

let pp fmt t =
  Format.fprintf fmt
    "@[<v>faults: %d read, %d write, %d vm@,\
     actions: %d replications, %d migrations, %d remote maps@,\
     policy: %d freezes, %d thaws@,\
     shootdowns: %d (%d messages, %d interrupts, %d deferred), %d pages freed@,\
     time: %a in fault handler, %a copying@]"
    t.read_faults t.write_faults t.vm_faults t.replications t.migrations t.remote_maps t.freezes
    t.thaws t.shootdowns t.messages t.interrupts t.deferred_updates t.pages_freed
    Platinum_sim.Time_ns.pp t.fault_ns Platinum_sim.Time_ns.pp t.copy_ns
