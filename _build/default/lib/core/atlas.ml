module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Engine = Platinum_sim.Engine

type edge = {
  from_state : Cpage.state;
  to_state : Cpage.state;
  trigger : string;
}

(* A tiny machine is enough; every scenario uses a fresh instance so
   scenarios cannot interfere. *)
let mk () =
  let config = Config.butterfly_plus ~nprocs:4 ~page_words:8 () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let coh =
    Coherent.create (Machine.create config) ~engine:(Engine.create ()) ~policy
      ~frames_per_module:8 ()
  in
  let cm = Coherent.new_aspace coh in
  let page = Coherent.new_cpage coh () in
  Coherent.bind coh cm ~vpage:0 page Rights.Read_write;
  (coh, cm, page)

let far = 1_000_000_000 (* well outside t1 *)

(* Each scenario: a setup bringing the page to [from_state], then the
   triggering access; we record the state before and after the trigger. *)
let scenarios :
    (string * ((Coherent.t * Cmap.t * Cpage.t) -> unit) * ((Coherent.t * Cmap.t * Cpage.t) -> unit))
    list =
  let read ?(now = 0) proc (coh, cm, _) = ignore (Coherent.read_word coh ~now ~proc ~cmap:cm ~vaddr:0) in
  let write ?(now = 0) proc v (coh, cm, _) =
    ignore (Coherent.write_word coh ~now ~proc ~cmap:cm ~vaddr:0 v)
  in
  let nothing _ = () in
  [
    ("read miss (zero fill)", nothing, read 0);
    ("write miss (zero fill)", nothing, write 0 1);
    ("read miss (replicate)", read 0, read ~now:far 1);
    ( "read miss (replicate, restrict writer)",
      write 0 1,
      read ~now:far 1 );
    ("write hit upgrade (no invalidation)", read 0, write ~now:far 0 1);
    ("write miss (migrate)", write 0 1, write ~now:far 1 2);
    ( "write miss (invalidate replicas)",
      (fun env ->
        write 0 1 env;
        read ~now:far 1 env;
        read ~now:(far + far) 2 env),
      write ~now:(3 * far) 0 2 );
    ( "read miss on frozen page (remote map)",
      (fun env ->
        (* freeze: write, replicate, invalidate, refault within t1 *)
        write 0 1 env;
        read ~now:far 1 env;
        write ~now:(2 * far) 0 2 env;
        read ~now:((2 * far) + 1_000) 1 env),
      read ~now:((2 * far) + 2_000) 2 );
    ( "defrost daemon thaw",
      (fun ((coh, _, page) as env) ->
        write 0 1 env;
        read ~now:far 1 env;
        write ~now:(2 * far) 0 2 env;
        read ~now:((2 * far) + 1_000) 1 env;
        assert page.Cpage.frozen;
        ignore coh),
      fun (coh, _, _) -> Coherent.thaw_all coh ~now:(3 * far) );
    ( "further replication (present+)",
      (fun env ->
        read 0 env;
        read ~now:far 1 env),
      read ~now:(2 * far) 2 );
  ]

let edges () =
  List.filter_map
    (fun (trigger, setup, action) ->
      let ((_, _, page) as env) = mk () in
      setup env;
      let from_state = page.Cpage.state in
      action env;
      let to_state = page.Cpage.state in
      Some { from_state; to_state; trigger })
    scenarios

let pp_edge fmt e =
  Format.fprintf fmt "%-9s --[%s]--> %s"
    (Cpage.state_to_string e.from_state)
    e.trigger
    (Cpage.state_to_string e.to_state)

let to_dot edges =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph platinum_protocol {\n  rankdir=LR;\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"];\n"
           (Cpage.state_to_string e.from_state)
           (Cpage.state_to_string e.to_state)
           e.trigger))
    edges;
  Buffer.add_string b "}\n";
  Buffer.contents b
