(** The defrost daemon (§4.2).

    Periodic mode: a clock interrupt every [t2] activates the daemon,
    which invalidates all mappings to the frozen coherent pages;
    subsequent accesses fault and may replicate or migrate a recently
    thawed page.  This is how the memory system reacts to phase changes
    and rescues accidentally frozen pages (the Gaussian-elimination
    anecdote).

    Adaptive mode: the alternative the paper sketches — "maintain the
    list of frozen pages as a priority queue ordered by thaw time.  This
    allows the daemon to run more often than every t2 seconds.  It also
    allows t2 to be set adaptively on a per-page basis."  Each freeze
    schedules that page's own thaw at [freeze time + its t2]; a page that
    refreezes soon after a thaw (the thaw was wrong — it really is
    write-shared) has its per-page t2 doubled up to [max_t2], so hot
    synchronization pages stop being churned while phase-change pages
    thaw quickly.  (The simulator's event queue is the priority queue.) *)

type mode =
  | Periodic  (** thaw everything every t2 (the paper's default) *)
  | Adaptive of {
      initial_t2 : Platinum_sim.Time_ns.t;  (** first per-page thaw delay *)
      max_t2 : Platinum_sim.Time_ns.t;  (** back-off cap *)
      refreeze_window : Platinum_sim.Time_ns.t;
          (** a refreeze within this of the last thaw doubles the page's t2 *)
    }

val default_adaptive : mode
(** 100 ms initial, 5 s cap, 50 ms refreeze window. *)

val install : ?mode:mode -> Coherent.t -> Platinum_sim.Engine.t -> unit
(** Arm the daemon (when the active policy uses one).  All daemon events
    are engine {e daemon events}: they never keep a finished simulation
    alive. *)
