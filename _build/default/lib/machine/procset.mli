(** Sets of processor (or memory-module) identifiers as bit masks.

    These are the "bit mask denoting processors" / "reference mask" / "copy
    mask" fields of the paper's Cmap and Cpage structures.  Processor ids
    must be in [0, 61]. *)

type t = private int

val empty : t
val is_empty : t -> bool
val full : n:int -> t
(** The set [{0, ..., n-1}]. *)

val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int list -> t
val choose : t -> int option
(** Smallest member. *)

val equal : t -> t -> bool
val subset : t -> t -> bool
val pp : Format.formatter -> t -> unit
