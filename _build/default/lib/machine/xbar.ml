type kind =
  | Read
  | Write
  | Rmw

let uncontended_word_ns (c : Config.t) kind ~local =
  if local then
    match kind with
    | Read | Write -> c.t_local_word
    | Rmw -> 2 * c.t_local_word
  else
    match kind with
    | Read -> c.t_remote_read_word
    | Write -> c.t_remote_write_word
    | Rmw -> c.t_remote_read_word + c.t_module_service

(* A single word access: the request traverses the switch (folded into the
   uncontended constant), queues at the module, is served, and returns.
   Latency = queueing delay + uncontended time. *)
let word_access (c : Config.t) modules ~now ~proc ~mem_module kind =
  let local = proc = mem_module in
  let m = modules.(mem_module) in
  let service = if local then c.t_local_word else c.t_module_service in
  let base = uncontended_word_ns c kind ~local in
  let start = Memmodule.acquire m ~arrival:now ~service in
  (start - now) + base

let block_words (c : Config.t) modules ~now ~proc ~mem_module kind ~words =
  if words < 0 then invalid_arg "Xbar.block_words";
  if words = 0 then 0
  else begin
    let local = proc = mem_module in
    let m = modules.(mem_module) in
    let per_word_service = if local then c.t_local_word else c.t_module_service in
    let base = words * uncontended_word_ns c kind ~local in
    let start = Memmodule.acquire m ~arrival:now ~service:(words * per_word_service) in
    (start - now) + base
  end

let block_copy (c : Config.t) modules ~now ~src ~dst ~words =
  if words < 0 then invalid_arg "Xbar.block_copy";
  if words = 0 then 0
  else begin
    let duration = words * c.t_block_word in
    let msrc = modules.(src) in
    let mdst = modules.(dst) in
    if src = dst then begin
      let start = Memmodule.acquire msrc ~arrival:now ~service:duration in
      (start - now) + duration
    end
    else begin
      (* The transfer starts once both modules are free and holds both. *)
      let arrival = max now (max (Memmodule.busy_until msrc) (Memmodule.busy_until mdst)) in
      let start = Memmodule.acquire msrc ~arrival ~service:duration in
      Memmodule.reserve_until mdst (start + duration);
      (start - now) + duration
    end
  end

let zero_fill (c : Config.t) modules ~now ~dst ~words =
  if words < 0 then invalid_arg "Xbar.zero_fill";
  if words = 0 then 0
  else begin
    let duration = words * c.zero_fill_word_ns in
    let m = modules.(dst) in
    let start = Memmodule.acquire m ~arrival:now ~service:duration in
    (start - now) + duration
  end
