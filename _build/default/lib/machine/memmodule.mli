(** A memory module with FIFO contention.

    Each processor node of the Butterfly contributes one memory module.  A
    module serves one request at a time; concurrent requests queue.  The
    model tracks a [busy_until] horizon: a request arriving at time [t]
    starts at [max t busy_until] and occupies the module for its service
    time.  Queueing delay is the dominant contention effect the paper
    discusses (§1, §7). *)

type t

val create : int -> t
(** [create id] is an idle module. *)

val id : t -> int

val acquire : t -> arrival:Platinum_sim.Time_ns.t -> service:int -> Platinum_sim.Time_ns.t
(** [acquire m ~arrival ~service] reserves the module for [service] ns
    starting at [max arrival busy_until]; returns the start time.  The
    caller's latency contribution is [(start - arrival) + service]. *)

val busy_until : t -> Platinum_sim.Time_ns.t

val reserve_until : t -> Platinum_sim.Time_ns.t -> unit
(** Extend the busy horizon to at least the given time (used by block
    transfers, which occupy both modules involved). *)

(* --- statistics --- *)

val total_busy_ns : t -> int
(** Cumulative occupancy. *)

val total_wait_ns : t -> int
(** Cumulative queueing delay experienced by requests at this module. *)

val requests : t -> int

val reset_stats : t -> unit

val utilization : t -> horizon:Platinum_sim.Time_ns.t -> float
(** Occupancy as a fraction of [horizon]. *)
