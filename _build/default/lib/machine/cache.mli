(** A direct-mapped, write-through processor cache (timing/tag model).

    Used two ways: as the Sequent Symmetry's per-CPU cache in the Figure 5
    comparison machine (§5.2), and as the §7 "local data caches without
    internode coherency support" extension of the NUMA machine, where the
    coherent memory system maintains coherency in software.  Data lives in
    the backing store; the cache tracks line validity only. *)

type t

val create : words:int -> line_words:int -> t
(** [words] and [line_words] must be powers of two. *)

val words : t -> int
val line_words : t -> int

val lookup : t -> addr:int -> bool
(** Is the word's line resident? *)

val fill : t -> addr:int -> unit
(** Load the word's line (evicting the direct-mapped victim). *)

val invalidate_line : t -> addr:int -> unit
(** Snoop invalidation: drop the line holding [addr] if resident. *)

val invalidate_range : t -> addr:int -> words:int -> unit
(** Drop every line intersecting [addr, addr+words). *)

val flush : t -> unit

val hits : t -> int
val misses : t -> int
(** [lookup] updates these counters. *)
