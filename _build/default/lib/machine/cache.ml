type t = {
  cache_words : int;
  line : int;
  nlines : int;
  tags : int array;  (* -1 = invalid; else the line-aligned address *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let create ~words ~line_words =
  if not (is_pow2 words && is_pow2 line_words && line_words <= words) then
    invalid_arg "Cache.create: sizes must be powers of two, line <= cache";
  {
    cache_words = words;
    line = line_words;
    nlines = words / line_words;
    tags = Array.make (words / line_words) (-1);
    hit_count = 0;
    miss_count = 0;
  }

let words t = t.cache_words
let line_words t = t.line
let line_addr t addr = addr land lnot (t.line - 1)
let index t addr = addr / t.line land (t.nlines - 1)

let lookup t ~addr =
  let hit = t.tags.(index t addr) = line_addr t addr in
  if hit then t.hit_count <- t.hit_count + 1 else t.miss_count <- t.miss_count + 1;
  hit

let fill t ~addr = t.tags.(index t addr) <- line_addr t addr

let invalidate_line t ~addr =
  let i = index t addr in
  if t.tags.(i) = line_addr t addr then t.tags.(i) <- -1

let invalidate_range t ~addr ~words =
  if words > 0 then begin
    let first = line_addr t addr in
    let last = line_addr t (addr + words - 1) in
    let a = ref first in
    while !a <= last do
      invalidate_line t ~addr:!a;
      a := !a + t.line
    done
  end

let flush t = Array.fill t.tags 0 t.nlines (-1)
let hits t = t.hit_count
let misses t = t.miss_count
