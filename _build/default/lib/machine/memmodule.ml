type t = {
  module_id : int;
  mutable busy_horizon : int;
  mutable busy_ns : int;
  mutable wait_ns : int;
  mutable nrequests : int;
}

let create module_id = { module_id; busy_horizon = 0; busy_ns = 0; wait_ns = 0; nrequests = 0 }
let id t = t.module_id

let acquire t ~arrival ~service =
  if service < 0 then invalid_arg "Memmodule.acquire: negative service";
  let start = max arrival t.busy_horizon in
  t.busy_horizon <- start + service;
  t.busy_ns <- t.busy_ns + service;
  t.wait_ns <- t.wait_ns + (start - arrival);
  t.nrequests <- t.nrequests + 1;
  start

let busy_until t = t.busy_horizon

let reserve_until t horizon =
  if horizon > t.busy_horizon then begin
    t.busy_ns <- t.busy_ns + (horizon - t.busy_horizon);
    t.busy_horizon <- horizon
  end

let total_busy_ns t = t.busy_ns
let total_wait_ns t = t.wait_ns
let requests t = t.nrequests

let reset_stats t =
  t.busy_ns <- 0;
  t.wait_ns <- 0;
  t.nrequests <- 0

let utilization t ~horizon =
  if horizon <= 0 then 0.0 else float_of_int t.busy_ns /. float_of_int horizon
