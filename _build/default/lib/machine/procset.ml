type t = int

let empty = 0
let is_empty t = t = 0

let check i =
  if i < 0 || i > 61 then invalid_arg "Procset: processor id out of [0, 61]"

let full ~n =
  if n < 0 || n > 62 then invalid_arg "Procset.full";
  if n = 62 then (1 lsl 62) - 1 else (1 lsl n) - 1

let singleton i =
  check i;
  1 lsl i

let mem i t =
  check i;
  t land (1 lsl i) <> 0

let add i t = t lor singleton i
let remove i t = t land lnot (singleton i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal t =
  let rec loop acc t = if t = 0 then acc else loop (acc + (t land 1)) (t lsr 1) in
  loop 0 t

let iter f t =
  let rec loop i t =
    if t <> 0 then begin
      if t land 1 <> 0 then f i;
      loop (i + 1) (t lsr 1)
    end
  in
  loop 0 t

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i l -> i :: l) t [])
let of_list l = List.fold_left (fun t i -> add i t) empty l

let choose t =
  if t = 0 then None
  else
    let rec loop i t = if t land 1 <> 0 then Some i else loop (i + 1) (t lsr 1) in
    loop 0 t

let equal = Int.equal
let subset a b = a land lnot b = 0

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (to_list t)))
