lib/machine/memmodule.mli: Platinum_sim
