lib/machine/config.ml: Format Option Platinum_sim
