lib/machine/machine.mli: Cache Config Memmodule Platinum_sim
