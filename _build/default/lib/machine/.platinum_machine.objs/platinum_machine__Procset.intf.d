lib/machine/procset.mli: Format
