lib/machine/memmodule.ml:
