lib/machine/cache.mli:
