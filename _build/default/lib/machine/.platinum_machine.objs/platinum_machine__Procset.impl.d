lib/machine/procset.ml: Format Int List String
