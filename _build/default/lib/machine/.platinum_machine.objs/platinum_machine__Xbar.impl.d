lib/machine/xbar.ml: Array Config Memmodule
