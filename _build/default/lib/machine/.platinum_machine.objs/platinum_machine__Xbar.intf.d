lib/machine/xbar.mli: Config Memmodule Platinum_sim
