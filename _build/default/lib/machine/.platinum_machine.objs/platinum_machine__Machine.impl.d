lib/machine/machine.ml: Array Cache Config Memmodule
