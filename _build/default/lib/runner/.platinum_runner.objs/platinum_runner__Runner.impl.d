lib/runner/runner.ml: List Option Platinum_cache Platinum_core Platinum_kernel Platinum_machine Platinum_sim Platinum_stats Platinum_vm
