(** Deterministic pseudo-random numbers (splitmix64).

    The simulator must be reproducible bit-for-bit, so all randomness flows
    through explicitly-seeded generators rather than [Stdlib.Random]. *)

type t

val create : int64 -> t
(** A fresh generator seeded with the given value.  Equal seeds produce
    equal streams. *)

val copy : t -> t

val split : t -> t
(** A new generator whose stream is independent of (and deterministically
    derived from) the parent's current state.  Advances the parent. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** Fisher-Yates shuffle in place. *)
