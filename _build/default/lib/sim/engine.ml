module Key = struct
  (* (time, sequence): the sequence number makes simultaneous events run in
     scheduling order, which keeps runs deterministic. *)
  type t = int * int

  let compare (t1, s1) (t2, s2) =
    let c = compare t1 t2 in
    if c <> 0 then c else compare s1 s2
end

module H = Heap.Make (Key)

type event = {
  ev_daemon : bool;
  ev_fn : unit -> unit;
}

type t = {
  mutable clock : Time_ns.t;
  mutable seq : int;
  mutable queue : event H.t;
  mutable processed : int;
  mutable normal_pending : int;  (* non-daemon events in the queue *)
}

let create () = { clock = 0; seq = 0; queue = H.empty; processed = 0; normal_pending = 0 }
let now t = t.clock

let schedule_at t ?(daemon = false) ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now=%d)" at t.clock);
  t.queue <- H.insert (at, t.seq) { ev_daemon = daemon; ev_fn = f } t.queue;
  if not daemon then t.normal_pending <- t.normal_pending + 1;
  t.seq <- t.seq + 1

let schedule_after t ?daemon ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ?daemon ~at:(t.clock + delay) f

let every t ?daemon ~period ?start f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let first = match start with Some s -> s | None -> t.clock + period in
  let rec fire () = if f () then schedule_after t ?daemon ~delay:period fire in
  schedule_at t ?daemon ~at:first fire

let step t =
  match H.delete_min t.queue with
  | None -> false
  | Some (((at, _), ev), rest) ->
    t.queue <- rest;
    t.clock <- at;
    t.processed <- t.processed + 1;
    if not ev.ev_daemon then t.normal_pending <- t.normal_pending - 1;
    ev.ev_fn ();
    true

let run ?limit t =
  match limit with
  | None -> while t.normal_pending > 0 && step t do () done
  | Some n ->
    let budget = ref n in
    while !budget > 0 && t.normal_pending > 0 && step t do
      decr budget
    done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match H.find_min t.queue with
    | Some ((at, _), _) when at <= horizon -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if horizon > t.clock then t.clock <- horizon

let events_processed t = t.processed
let is_empty t = t.normal_pending = 0
