type t = int

let zero = 0
let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let s x = x * 1_000_000_000
let to_float_us t = float_of_int t /. 1e3
let to_float_ms t = float_of_int t /. 1e6
let to_float_s t = float_of_int t /. 1e9

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fus" (to_float_us t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.3fms" (to_float_ms t)
  else Format.fprintf fmt "%.3fs" (to_float_s t)

let to_string t = Format.asprintf "%a" pp t
