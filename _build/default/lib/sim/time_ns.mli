(** Simulated time, in integer nanoseconds.

    All simulation timestamps and durations are plain [int] nanoseconds
    (63-bit, enough for ~292 simulated years), so arithmetic is ordinary
    integer arithmetic.  This module only provides named constructors and
    pretty-printing. *)

type t = int

val zero : t

val ns : int -> t
(** [ns x] is [x] nanoseconds. *)

val us : int -> t
(** [us x] is [x] microseconds. *)

val ms : int -> t
(** [ms x] is [x] milliseconds. *)

val s : int -> t
(** [s x] is [x] seconds. *)

val to_float_us : t -> float
(** Duration in microseconds, for reporting. *)

val to_float_ms : t -> float
(** Duration in milliseconds, for reporting. *)

val to_float_s : t -> float
(** Duration in seconds, for reporting. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)

val to_string : t -> string
