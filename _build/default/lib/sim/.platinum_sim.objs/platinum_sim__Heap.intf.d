lib/sim/heap.mli:
