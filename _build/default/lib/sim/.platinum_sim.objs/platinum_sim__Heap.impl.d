lib/sim/heap.ml: List
