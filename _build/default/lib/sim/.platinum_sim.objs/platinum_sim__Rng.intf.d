lib/sim/rng.mli:
