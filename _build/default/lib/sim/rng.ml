type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014): a full-period 64-bit generator whose
   state update is a simple additive counter, making [split] trivially
   sound. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int in
  bits mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 significant bits, as in the stdlib. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (float_of_int bits /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
