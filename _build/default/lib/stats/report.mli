(** The kernel's post-mortem memory-management report (§4.2, §5.1).

    "In addition to timing data, the kernel produces a detailed report on
    the behavior of memory management.  For each Cpage this includes the
    number of coherent memory faults, a measure of contention in the Cpage
    fault handler for that page, and whether the Cpage was frozen by the
    replication policy."  This is the tool that diagnosed the frozen
    spin-lock page of the Gaussian-elimination anecdote. *)

type page_row = {
  label : string;
  cpage_id : int;
  state : Platinum_core.Cpage.state;
  read_faults : int;
  write_faults : int;
  replications : int;
  migrations : int;
  invalidations : int;
  remote_maps : int;
  fault_wait_ms : float;  (** contention in the Cpage fault handler *)
  frozen_now : bool;
  was_frozen : bool;
}

type t = {
  elapsed : Platinum_sim.Time_ns.t;
  pages : page_row list;  (** sorted by total faults, descending *)
  frozen_pages : int;
  ever_frozen_pages : int;
  module_utilization : float array;
  module_wait_ms : float array;
  ipis : int;
}

val of_run :
  Platinum_core.Coherent.t -> elapsed:Platinum_sim.Time_ns.t -> t

val pp : ?top:int -> Format.formatter -> t -> unit
(** Render the report; [top] limits the per-page table (default 20 rows,
    plus every frozen page). *)

val find : t -> label_prefix:string -> page_row list
(** Rows whose label starts with the prefix (e.g. ["matrix["]). *)
