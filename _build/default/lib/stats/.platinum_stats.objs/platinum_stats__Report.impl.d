lib/stats/report.ml: Array Format List Platinum_core Platinum_machine Platinum_sim Printf String
