lib/stats/report.mli: Format Platinum_core Platinum_sim
