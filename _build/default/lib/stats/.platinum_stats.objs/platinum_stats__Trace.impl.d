lib/stats/trace.ml: Format List Platinum_core Platinum_sim Printf Queue
