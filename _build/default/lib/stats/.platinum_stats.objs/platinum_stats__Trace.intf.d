lib/stats/trace.mli: Format Platinum_core Platinum_sim
