module Coherent = Platinum_core.Coherent
module Cpage = Platinum_core.Cpage
module Machine = Platinum_machine.Machine
module Memmodule = Platinum_machine.Memmodule
module Time_ns = Platinum_sim.Time_ns

type page_row = {
  label : string;
  cpage_id : int;
  state : Cpage.state;
  read_faults : int;
  write_faults : int;
  replications : int;
  migrations : int;
  invalidations : int;
  remote_maps : int;
  fault_wait_ms : float;
  frozen_now : bool;
  was_frozen : bool;
}

type t = {
  elapsed : Time_ns.t;
  pages : page_row list;
  frozen_pages : int;
  ever_frozen_pages : int;
  module_utilization : float array;
  module_wait_ms : float array;
  ipis : int;
}

let row_of_page (p : Cpage.t) =
  let s = p.Cpage.stats in
  {
    label = (if p.Cpage.label = "" then Printf.sprintf "cpage-%d" p.Cpage.id else p.Cpage.label);
    cpage_id = p.Cpage.id;
    state = p.Cpage.state;
    read_faults = s.Cpage.read_faults;
    write_faults = s.Cpage.write_faults;
    replications = s.Cpage.replications;
    migrations = s.Cpage.migrations;
    invalidations = s.Cpage.invalidations;
    remote_maps = s.Cpage.remote_maps;
    fault_wait_ms = Time_ns.to_float_ms s.Cpage.fault_wait_ns;
    frozen_now = p.Cpage.frozen;
    was_frozen = s.Cpage.was_frozen;
  }

let faults r = r.read_faults + r.write_faults

let of_run coh ~elapsed =
  let machine = Coherent.machine coh in
  let rows = ref [] in
  Coherent.iter_cpages (fun p -> rows := row_of_page p :: !rows) coh;
  let pages = List.sort (fun a b -> compare (faults b) (faults a)) !rows in
  let modules = Machine.modules machine in
  {
    elapsed;
    pages;
    frozen_pages = List.length (List.filter (fun r -> r.frozen_now) pages);
    ever_frozen_pages = List.length (List.filter (fun r -> r.was_frozen) pages);
    module_utilization =
      Array.map (fun m -> Memmodule.utilization m ~horizon:elapsed) modules;
    module_wait_ms =
      Array.map (fun m -> Time_ns.to_float_ms (Memmodule.total_wait_ns m)) modules;
    ipis = Machine.ipis_sent machine;
  }

let find t ~label_prefix =
  List.filter
    (fun r ->
      String.length r.label >= String.length label_prefix
      && String.sub r.label 0 (String.length label_prefix) = label_prefix)
    t.pages

let pp ?(top = 20) fmt t =
  Format.fprintf fmt "@[<v>=== PLATINUM post-mortem memory report ===@,";
  Format.fprintf fmt "elapsed: %a; %d coherent pages; %d frozen (%d ever); %d IPIs@,"
    Time_ns.pp t.elapsed (List.length t.pages) t.frozen_pages t.ever_frozen_pages t.ipis;
  let util = Array.to_list t.module_utilization in
  let avg = List.fold_left ( +. ) 0.0 util /. float_of_int (max 1 (List.length util)) in
  let peak = List.fold_left max 0.0 util in
  Format.fprintf fmt "memory modules: %.1f%% mean utilization, %.1f%% peak@," (100. *. avg)
    (100. *. peak);
  Format.fprintf fmt "%-26s %9s %9s %6s %6s %6s %6s %9s %s@," "page" "rd-fault" "wr-fault" "repl"
    "migr" "inval" "rmap" "wait(ms)" "frozen";
  let interesting r = faults r > 0 || r.was_frozen in
  let shown = ref 0 in
  List.iter
    (fun r ->
      if interesting r && (!shown < top || r.was_frozen) then begin
        incr shown;
        Format.fprintf fmt "%-26s %9d %9d %6d %6d %6d %6d %9.2f %s@," r.label r.read_faults
          r.write_faults r.replications r.migrations r.invalidations r.remote_maps
          r.fault_wait_ms
          (if r.frozen_now then "FROZEN" else if r.was_frozen then "thawed" else "-")
      end)
    t.pages;
  let hidden = List.length (List.filter interesting t.pages) - !shown in
  if hidden > 0 then Format.fprintf fmt "(%d more pages with faults not shown)@," hidden;
  Format.fprintf fmt "@]"
