lib/cache/uma_sys.ml: Array Hashtbl Platinum_kernel Platinum_machine Printf
