lib/cache/uma_sys.mli: Platinum_kernel Platinum_machine
