(** A bus-based UMA multiprocessor with small write-through caches — the
    Sequent Symmetry (model A) stand-in for the Figure 5 comparison.

    One shared memory behind one shared bus.  Reads that hit in the
    per-processor cache cost [t_hit]; misses queue for the bus and fill a
    line; every write goes onto the bus (write-through) and snoop-
    invalidates the line in other caches, which keeps the caches coherent
    the way the Symmetry's hardware did. *)

type params = {
  cache_words : int;  (** per-processor cache size (Sequent: 2048 = 8 KB) *)
  line_words : int;
  t_hit : int;  (** ns, cache hit *)
  t_mem : int;  (** ns of memory latency beyond bus occupancy *)
  bus_read_service : int;  (** ns of bus occupancy per line fill *)
  bus_write_service : int;  (** ns of bus occupancy per write-through *)
}

val sequent : params
(** 8 KB direct-mapped write-through caches; bus timed so an uncontended
    miss costs ≈ 1.5 µs and a hit 150 ns. *)

type t

val create :
  machine:Platinum_machine.Machine.t -> params:params -> page_words:int -> t

val memsys : t -> Platinum_kernel.Memsys.t

val cache : t -> int -> Platinum_machine.Cache.t
val bus_busy_ns : t -> int
val bus_utilization : t -> horizon:int -> float
