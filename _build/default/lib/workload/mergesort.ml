module Api = Platinum_kernel.Api

type params = {
  n : int;
  nprocs : int;
  compute_ns_per_element : int;
  chunk : int;
  seed : int;
  verify : bool;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let params ?(n = 65_536) ?(compute_ns_per_element = 1_500) ?(chunk = 256) ?(seed = 7)
    ?(verify = true) ~nprocs () =
  if not (is_pow2 nprocs) then invalid_arg "Mergesort.params: nprocs must be a power of two";
  if chunk <= 0 then invalid_arg "Mergesort.params: chunk must be positive";
  let n = (n + nprocs - 1) / nprocs * nprocs in
  { n; nprocs; compute_ns_per_element; chunk; seed; verify }

let input_value p i =
  let h = ((p.seed * 0x9E3779B9) + (i * 0x85EBCA6B)) land max_int in
  let h = h lxor (h lsr 17) in
  let h = h * 0xC2B2AE35 land max_int in
  (h lxor (h lsr 13)) land 0xFFFFFF

(* Merge [len_a]+[len_b] words from two simulated arrays into [dst],
   streaming through bounded buffers so one merge is O(chunk) live data,
   not O(n). *)
let stream_merge p ~src_a ~len_a ~src_b ~len_b ~dst =
  let out = Array.make p.chunk 0 in
  let buf_a = ref [||] and buf_b = ref [||] in
  let pos_a = ref 0 and pos_b = ref 0 in  (* consumed from current buffers *)
  let read_a = ref 0 and read_b = ref 0 in  (* consumed from inputs *)
  let written = ref 0 in
  let out_fill = ref 0 in
  let refill_a () =
    if !pos_a >= Array.length !buf_a && !read_a < len_a then begin
      let n = min p.chunk (len_a - !read_a) in
      buf_a := Api.block_read (src_a + !read_a) n;
      read_a := !read_a + n;
      pos_a := 0
    end
  in
  let refill_b () =
    if !pos_b >= Array.length !buf_b && !read_b < len_b then begin
      let n = min p.chunk (len_b - !read_b) in
      buf_b := Api.block_read (src_b + !read_b) n;
      read_b := !read_b + n;
      pos_b := 0
    end
  in
  let flush () =
    if !out_fill > 0 then begin
      Api.block_write (dst + !written) (Array.sub out 0 !out_fill);
      Api.compute (!out_fill * p.compute_ns_per_element);
      written := !written + !out_fill;
      out_fill := 0
    end
  in
  let emit v =
    out.(!out_fill) <- v;
    incr out_fill;
    if !out_fill = p.chunk then flush ()
  in
  let a_live () =
    refill_a ();
    !pos_a < Array.length !buf_a
  in
  let b_live () =
    refill_b ();
    !pos_b < Array.length !buf_b
  in
  let rec loop () =
    match a_live (), b_live () with
    | false, false -> flush ()
    | true, false ->
      emit !buf_a.(!pos_a);
      incr pos_a;
      loop ()
    | false, true ->
      emit !buf_b.(!pos_b);
      incr pos_b;
      loop ()
    | true, true ->
      let va = !buf_a.(!pos_a) and vb = !buf_b.(!pos_b) in
      if va <= vb then begin
        emit va;
        incr pos_a
      end
      else begin
        emit vb;
        incr pos_b
      end;
      loop ()
  in
  loop ()

let ceil_log2 x =
  let rec go acc v = if v >= x then acc else go (acc + 1) (v * 2) in
  go 0 1

let make p =
  let out = Outcome.create () in
  let start_ns = ref 0 in
  let main () =
    let n = p.n and nprocs = p.nprocs in
    let seg = n / nprocs in
    let src = Api.alloc ~page_aligned:true n in
    let buf_a = Api.alloc ~page_aligned:true n in
    let buf_b = Api.alloc ~page_aligned:true n in
    (* The unsorted input "arrives" on processor 0's node, as in a program
       that just read it from a device. *)
    let stride = 4096 in
    let i = ref 0 in
    while !i < n do
      let len = min stride (n - !i) in
      Api.block_write (src + !i) (Array.init len (fun j -> input_value p (!i + j)));
      i := !i + len
    done;
    start_ns := Api.now ();
    (* Phase 0: each leaf sorts its segment with bottom-up merge passes
       streamed through (simulated) memory — the real access pattern of
       Anderson's program, and the traffic that swamps a small
       write-through cache.  Runs alternate between the segment's region
       of buf_a and buf_b; a final copy lands the result in buf_a. *)
    let leaf me =
      let base_src = src + (me * seg) in
      let a = buf_a + (me * seg) and b = buf_b + (me * seg) in
      (* First pass: merge width-1 runs from the input into buf_a. *)
      let width = ref 1 in
      let from_b = ref b and to_b = ref a in
      let first = ref true in
      while !width < seg do
        let src_base = if !first then base_src else !from_b in
        let off = ref 0 in
        while !off < seg do
          let len_a = min !width (seg - !off) in
          let len_b = min !width (seg - !off - len_a) in
          stream_merge p ~src_a:(src_base + !off) ~len_a ~src_b:(src_base + !off + len_a)
            ~len_b ~dst:(!to_b + !off);
          off := !off + len_a + len_b
        done;
        first := false;
        width := !width * 2;
        let tmp = !from_b in
        from_b := !to_b;
        to_b := tmp
      done;
      (* [from_b] holds the sorted run (it was the last destination). *)
      if seg = 1 then begin
        let d = Api.block_read base_src 1 in
        Api.block_write a d
      end
      else if !from_b <> a then begin
        let d = Api.block_read !from_b seg in
        Api.block_write a d
      end
    in
    Api.spawn_join_all
      ~procs:(List.init nprocs (fun i -> i))
      (List.init nprocs (fun me _ -> leaf me));
    (* Tree phases: at level l, threads merge 2^l-segment runs pairwise,
       alternating buffers.  The merger runs on the left run's processor. *)
    let levels = ceil_log2 nprocs in
    let from_buf = ref buf_a and to_buf = ref buf_b in
    for level = 0 to levels - 1 do
      let run = seg lsl level in
      let mergers = nprocs lsr (level + 1) in
      let merge_one idx =
        let base = idx * 2 * run in
        stream_merge p ~src_a:(!from_buf + base) ~len_a:run ~src_b:(!from_buf + base + run)
          ~len_b:run ~dst:(!to_buf + base)
      in
      Api.spawn_join_all
        ~procs:(List.init mergers (fun idx -> idx * 2 * (1 lsl level)))
        (List.init mergers (fun idx _ -> merge_one idx));
      let tmp = !from_buf in
      from_buf := !to_buf;
      to_buf := tmp
    done;
    out.Outcome.work_ns <- Api.now () - !start_ns;
    if p.verify then begin
      let result = !from_buf in
      let reference = Array.init n (fun i -> input_value p i) in
      Array.sort compare reference;
      let i = ref 0 in
      while !i < n && out.Outcome.ok do
        let len = min 4096 (n - !i) in
        let got = Api.block_read (result + !i) len in
        for j = 0 to len - 1 do
          if got.(j) <> reference.(!i + j) then
            Outcome.fail out "mergesort: element %d is %d, expected %d" (!i + j) got.(j)
              reference.(!i + j)
        done;
        i := !i + len
      done
    end
  in
  (out, main)
