(** Gaussian elimination without pivoting (§1, §5.1; Figure 1).

    The paper's flagship workload: the coarse-grain shared-memory program
    LeBlanc found most efficient on the Uniform System, re-expressed in the
    PLATINUM model.  One thread per processor; rows are distributed
    cyclically; in round [k] every thread reads the pivot row (which the
    coherent memory replicates) and eliminates its own rows (which live in
    its local memory after first touch).  An array of event counts
    sequences the rounds — in the paper's runs, the only page the policy
    froze.

    It "simulates" elimination in the paper's sense: integer arithmetic
    (masked to 28 bits) replaces floating point, emphasizing memory
    behaviour over FPU speed.  Self-verifies against a sequential oracle
    computed outside the simulation. *)

type params = {
  n : int;  (** matrix dimension (paper: 800) *)
  nprocs : int;
  compute_ns_per_word : int;  (** inner-loop arithmetic cost per element *)
  seed : int;
  verify : bool;
}

val params :
  ?n:int ->
  ?compute_ns_per_word:int ->
  ?seed:int ->
  ?verify:bool ->
  nprocs:int ->
  unit ->
  params
(** Defaults: n = 400 (use 800 to match the paper exactly),
    3 µs of arithmetic per inner-loop element, seed 42, verify on. *)

val make : params -> Outcome.t * (unit -> unit)
(** The outcome cell and the [main] to hand to a runner.  [work_ns] covers
    the elimination phase only (between the start barrier and the last
    thread's finish), as in LeBlanc's measurements. *)

val sequential : params -> int array array
(** The oracle: the same integer elimination, computed outside the
    simulator. *)

(**/**)

(* Shared with the message-passing variant so both compute the same
   matrix. *)

val value_mask : int
val init_elem : params -> int -> int -> int
val eliminate : row:int array -> piv:int array -> unit
