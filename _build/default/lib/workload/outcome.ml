type t = {
  mutable work_ns : int;
  mutable ok : bool;
  mutable detail : string;
}

let create () = { work_ns = 0; ok = true; detail = "" }

let fail t fmt =
  Printf.ksprintf
    (fun s ->
      if t.ok then begin
        t.ok <- false;
        t.detail <- s
      end)
    fmt

let require t cond fmt =
  Printf.ksprintf
    (fun s ->
      if (not cond) && t.ok then begin
        t.ok <- false;
        t.detail <- s
      end)
    fmt
