(** The §4.2 anecdote: a spin lock co-located with a read-mostly variable.

    The first version of the Gaussian-elimination program wrote the matrix
    size to a shared variable at startup; slave threads read it in their
    inner-loop termination test.  A spin-lock variable later added to the
    same page — used as a barrier at the start of the elimination phase —
    froze the page, so every inner-loop read of the matrix size became a
    remote reference: "this dramatically increased the execution time and
    became a bottleneck with five or more processors."  Thawing (the
    defrost daemon) salvaged the old program to within ~2 seconds of the
    fixed one.

    [old_version = true] co-locates the spin lock and the shared variable;
    [false] gives each thread a private copy of the variable (the fix). *)

type params = {
  nprocs : int;
  iters : int;  (** inner-loop iterations reading the variable *)
  reads_per_iter : int;
  compute_ns_per_iter : int;
  old_version : bool;
}

val params :
  ?iters:int ->
  ?reads_per_iter:int ->
  ?compute_ns_per_iter:int ->
  old_version:bool ->
  nprocs:int ->
  unit ->
  params

val make : params -> Outcome.t * (unit -> unit)
