module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync

type params = {
  n : int;
  nprocs : int;
  compute_ns_per_word : int;
  seed : int;
  verify : bool;
}

let params ?(n = 400) ?(compute_ns_per_word = 3_000) ?(seed = 42) ?(verify = true) ~nprocs () =
  if n < 2 then invalid_arg "Gauss.params: n must be at least 2";
  if nprocs < 1 then invalid_arg "Gauss.params: nprocs must be positive";
  { n; nprocs; compute_ns_per_word; seed; verify }

(* 28-bit values keep factor * pivot inside 62-bit native ints. *)
let value_mask = 0xFFFFFFF

let mix h =
  let h = h * 0x9E3779B9 land max_int in
  let h = h lxor (h lsr 16) in
  let h = h * 0x85EBCA6B land max_int in
  h lxor (h lsr 13)

let init_elem p i j =
  let h = mix ((p.seed * 1_000_003) + (i * p.n) + j) in
  if i = j then 0x100000 + (h land 0xFFFF) else (h land 0x3FF) - 512

let quot a b = if b = 0 then 0 else a / b

(* One elimination step of row [row] (slice starting at column k) against
   pivot slice [piv]; both slices have the same length and start at column
   k, so index 0 is the pivot column. *)
let eliminate ~row ~piv =
  let factor = quot row.(0) piv.(0) in
  for j = 0 to Array.length row - 1 do
    row.(j) <- (row.(j) - (factor * piv.(j))) land value_mask
  done

let sequential p =
  let n = p.n in
  let m = Array.init n (fun i -> Array.init n (fun j -> init_elem p i j land value_mask)) in
  for k = 0 to n - 2 do
    let piv = Array.sub m.(k) k (n - k) in
    for r = k + 1 to n - 1 do
      let row = Array.sub m.(r) k (n - k) in
      eliminate ~row ~piv;
      Array.blit row 0 m.(r) k (n - k)
    done
  done;
  m

let make p =
  let out = Outcome.create () in
  let start_ns = ref 0 in
  let main () =
    let n = p.n and nprocs = p.nprocs in
    let owner r = r mod nprocs in
    (* One page-aligned row per allocation: rows with different owners
       never share a page (§6's allocation discipline). *)
    let rows = Array.init n (fun _ -> Api.alloc ~page_aligned:true n) in
    (* The synchronization zone: barrier plus the array of event counts —
       deliberately co-located on the same page(s), as in the paper's
       program (this is the page that gets frozen). *)
    let szone = Api.new_zone "gauss-sync" ~pages:(1 + (n / Api.page_words ())) in
    let barrier = Sync.Barrier.make ~zone:szone ~parties:nprocs () in
    let ec_base = Api.alloc ~zone:szone n in
    let row_ready k = Sync.Event_count.of_addr (ec_base + k) in
    let worker me =
      (* First touch places each row in its owner's memory. *)
      let r = ref me in
      while !r < n do
        Api.block_write rows.(!r) (Array.init n (fun j -> init_elem p !r j land value_mask));
        r := !r + nprocs
      done;
      Sync.Barrier.wait barrier;
      if me = 0 then start_ns := Api.now ();
      if owner 0 = me then Sync.Event_count.advance (row_ready 0);
      for k = 0 to n - 2 do
        Sync.Event_count.await (row_ready k) 1;
        (* Eliminate my rows below the pivot; the smallest such row is the
           next round's pivot, handled first so its event count advances as
           early as possible.  The pivot slice is read from shared memory
           for every row update — the natural 1989 program; the coherent
           memory turns these re-reads into local references by
           replication, which is where it earns its keep. *)
        let first = k + 1 + ((me - owner (k + 1) + nprocs) mod nprocs) in
        let r = ref first in
        while !r < n do
          let piv = Api.block_read (rows.(k) + k) (n - k) in
          let row = Api.block_read (rows.(!r) + k) (n - k) in
          eliminate ~row ~piv;
          Api.compute ((n - k) * p.compute_ns_per_word);
          Api.block_write (rows.(!r) + k) row;
          if !r = k + 1 then Sync.Event_count.advance (row_ready (k + 1));
          r := !r + nprocs
        done
      done;
      Sync.Barrier.wait barrier;
      if me = 0 then out.Outcome.work_ns <- Api.now () - !start_ns
    in
    Api.spawn_join_all
      ~procs:(List.init nprocs (fun i -> i))
      (List.init nprocs (fun me _ -> worker me));
    if p.verify then begin
      let reference = sequential p in
      let r = ref 0 in
      while !r < n && out.Outcome.ok do
        let got = Api.block_read rows.(!r) n in
        if got <> reference.(!r) then
          Outcome.fail out "gauss: row %d differs from the sequential oracle" !r;
        incr r
      done
    end
  in
  (out, main)
