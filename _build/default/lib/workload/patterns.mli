(** Synthetic access-pattern microworkloads.

    Each isolates one regime of the replication policy, for tests and
    ablations: data that should migrate, data that should replicate, and
    write-shared data that should freeze.  All return an {!Outcome} whose
    [work_ns] covers the access phase. *)

type spec = Outcome.t * (unit -> unit)

val private_chunks : nprocs:int -> pages_each:int -> rounds:int -> spec
(** Every thread repeatedly reads and writes its own pages.  Expected:
    one migration per page, then all-local access; no freezes. *)

val read_shared : nprocs:int -> pages:int -> rounds:int -> spec
(** One writer initializes; everyone then re-reads many times.
    Expected: one replica per (page, processor); no invalidation. *)

val ping_pong : writers:int -> rounds:int -> spec
(** [writers] threads take turns writing one word of a single page (the
    worst case g(p) = p/(p-1) of §4.1).  Expected: a handful of
    migrations, then the page freezes and writes go remote. *)

val phase_change : nprocs:int -> pages:int -> rounds:int -> spec
(** A write-shared phase (freezing the pages) followed, after more than
    t2, by a read-only phase.  Expected: the defrost daemon thaws the
    pages and the read phase replicates them. *)
