module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync

type params = {
  nprocs : int;
  iters : int;
  reads_per_iter : int;
  compute_ns_per_iter : int;
  old_version : bool;
}

let params ?(iters = 4_000) ?(reads_per_iter = 4) ?(compute_ns_per_iter = 10_000) ~old_version
    ~nprocs () =
  { nprocs; iters; reads_per_iter; compute_ns_per_iter; old_version }

let make p =
  let out = Outcome.create () in
  let start_ns = ref 0 in
  let main () =
    let nprocs = p.nprocs in
    (* One page holds the startup parameters... and someone later added a
       spin lock to it. *)
    let param_page = Api.alloc_pages 1 in
    let msize_addr = param_page in
    let start_lock = param_page + 8 in
    let matrix_size = 800 in
    Api.write msize_addr matrix_size;
    Api.write start_lock 1 (* held: slaves spin until the master releases *);
    let worker me =
      (* The measurement "barrier": spin on the lock word.  The spinning
         (reads) and the master's release (a write) make the page look
         actively write-shared — it freezes. *)
      Sync.spin_until (fun () -> Api.read start_lock = 0);
      (* The fixed version makes a private, thread-local copy first. *)
      let private_msize = if p.old_version then -1 else Api.read msize_addr in
      for _i = 1 to p.iters do
        (* Inner loop: termination test reads the size variable. *)
        for _r = 1 to p.reads_per_iter do
          let size = if p.old_version then Api.read msize_addr else private_msize in
          if size <> matrix_size then
            Outcome.fail out "anecdote: worker %d read size %d" me size
        done;
        Api.compute p.compute_ns_per_iter
      done
    in
    let tids =
      List.init nprocs (fun me -> Api.spawn ~proc:me (fun () -> worker me))
    in
    (* Give the slaves a moment to reach the lock, then open it: the write
       that invalidates all their replicas. *)
    Api.compute 3_000_000;
    start_ns := Api.now ();
    Api.write start_lock 0;
    List.iter Api.join tids;
    out.Outcome.work_ns <- Api.now () - !start_ns
  in
  (out, main)
