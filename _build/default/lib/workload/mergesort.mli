(** Parallel merge sort with a tree of merge threads (§5.2; Figure 5).

    Anderson's study ran this on a Sequent Symmetry; the paper reruns it on
    PLATINUM and observes better speedup because, during each merge phase,
    half of a merging thread's input is already local and the linear access
    pattern means every word a coherent-page fault prefetches gets used —
    while the Sequent's small write-through caches retain nothing between
    phases.

    [nprocs] must be a power of two.  Leaf threads sort contiguous chunks
    (first touch pulls the data local), then pairs merge level by level;
    the merger sits on the left child's processor, so its left input is
    local.  Self-verifies (sorted + permutation of the input). *)

type params = {
  n : int;  (** element count; rounded up to a multiple of [nprocs] *)
  nprocs : int;
  compute_ns_per_element : int;  (** comparison/move cost in merge loops *)
  chunk : int;  (** streaming-merge buffer, in words *)
  seed : int;
  verify : bool;
}

val params :
  ?n:int ->
  ?compute_ns_per_element:int ->
  ?chunk:int ->
  ?seed:int ->
  ?verify:bool ->
  nprocs:int ->
  unit ->
  params
(** Defaults: n = 65536, 1.5 µs per element, 256-word chunks. *)

val make : params -> Outcome.t * (unit -> unit)
