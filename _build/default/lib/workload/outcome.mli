(** Results reported back from inside a simulated workload.

    Workload [main] functions are closures run inside the simulator; they
    record their measured phase time and self-verification verdict into
    one of these host-side cells, so harnesses can separate the timed
    computation from setup and checking. *)

type t = {
  mutable work_ns : int;  (** duration of the timed phase *)
  mutable ok : bool;  (** did self-verification pass? *)
  mutable detail : string;
}

val create : unit -> t

val fail : t -> ('a, unit, string, unit) format4 -> 'a
(** Record a verification failure (keeps the first message). *)

val require : t -> bool -> ('a, unit, string, unit) format4 -> 'a
(** [require o cond fmt] records a failure when [cond] is false. *)
