module Api = Platinum_kernel.Api
module Sync = Platinum_kernel.Sync

type spec = Outcome.t * (unit -> unit)

let timed out f =
  let t0 = Api.now () in
  f ();
  out.Outcome.work_ns <- Api.now () - t0

let private_chunks ~nprocs ~pages_each ~rounds =
  let out = Outcome.create () in
  let main () =
    let pw = Api.page_words () in
    let bases = Array.init nprocs (fun _ -> Api.alloc_pages pages_each) in
    let szone = Api.new_zone "sync" ~pages:1 in
    let barrier = Sync.Barrier.make ~zone:szone ~parties:nprocs () in
    let worker me =
      let mine = bases.(me) in
      let words = pages_each * pw in
      Api.block_write mine (Array.init words (fun i -> i + me));
      Sync.Barrier.wait barrier;
      for round = 1 to rounds do
        let data = Api.block_read mine words in
        for i = 0 to words - 1 do
          data.(i) <- data.(i) + 1
        done;
        Api.block_write mine data;
        ignore round
      done;
      Sync.Barrier.wait barrier;
      (* Everything I own should be local by now: verify by value. *)
      let data = Api.block_read mine words in
      Outcome.require out
        (data.(0) = me + rounds)
        "private_chunks: worker %d sees %d, expected %d" me data.(0) (me + rounds)
    in
    timed out (fun () ->
        Api.spawn_join_all
          ~procs:(List.init nprocs (fun i -> i))
          (List.init nprocs (fun me _ -> worker me)))
  in
  (out, main)

let read_shared ~nprocs ~pages ~rounds =
  let out = Outcome.create () in
  let main () =
    let pw = Api.page_words () in
    let base = Api.alloc_pages pages in
    let words = pages * pw in
    let szone = Api.new_zone "sync" ~pages:1 in
    let barrier = Sync.Barrier.make ~zone:szone ~parties:nprocs () in
    Api.block_write base (Array.init words (fun i -> i * 3));
    let worker me =
      Sync.Barrier.wait barrier;
      for _round = 1 to rounds do
        let data = Api.block_read base words in
        Outcome.require out
          (data.(words - 1) = (words - 1) * 3)
          "read_shared: worker %d read a corrupt value" me
      done;
      Sync.Barrier.wait barrier
    in
    timed out (fun () ->
        Api.spawn_join_all
          ~procs:(List.init nprocs (fun i -> i))
          (List.init nprocs (fun me _ -> worker me)))
  in
  (out, main)

let ping_pong ~writers ~rounds =
  let out = Outcome.create () in
  let main () =
    let cell = Api.alloc_pages 1 in
    let szone = Api.new_zone "sync" ~pages:1 in
    let barrier = Sync.Barrier.make ~zone:szone ~parties:writers () in
    let turn = Sync.Event_count.make ~zone:szone () in
    let worker me =
      Sync.Barrier.wait barrier;
      (* Strict round-robin writes: writer w takes turns w, w+writers, ... *)
      for round = 0 to rounds - 1 do
        if round mod writers = me then begin
          Api.write (cell + (round mod 64)) round;
          Sync.Event_count.advance turn
        end
        else Sync.Event_count.await turn (round + 1)
      done;
      Sync.Barrier.wait barrier
    in
    timed out (fun () ->
        Api.spawn_join_all
          ~procs:(List.init writers (fun i -> i))
          (List.init writers (fun me _ -> worker me)));
    let final = Api.read (cell + ((rounds - 1) mod 64)) in
    Outcome.require out (final = rounds - 1) "ping_pong: final cell is %d, expected %d" final
      (rounds - 1)
  in
  (out, main)

let phase_change ~nprocs ~pages ~rounds =
  let out = Outcome.create () in
  let main () =
    let pw = Api.page_words () in
    let base = Api.alloc_pages pages in
    let words = pages * pw in
    let szone = Api.new_zone "sync" ~pages:1 in
    let barrier = Sync.Barrier.make ~zone:szone ~parties:nprocs () in
    let worker me =
      Sync.Barrier.wait barrier;
      (* Phase 1: interleaved fine-grain writes — freezes the pages. *)
      for round = 0 to rounds - 1 do
        Api.write (base + (((me * rounds) + round) mod words)) round
      done;
      Sync.Barrier.wait barrier;
      (* Quiet period longer than t2 so the defrost daemon runs. *)
      if me = 0 then Api.compute 2_500_000_000;
      Sync.Barrier.wait barrier;
      (* Phase 2: read-only — thawed pages should replicate again. *)
      for _round = 1 to rounds do
        let v = Api.read (base + me) in
        ignore v
      done;
      Sync.Barrier.wait barrier
    in
    timed out (fun () ->
        Api.spawn_join_all
          ~procs:(List.init nprocs (fun i -> i))
          (List.init nprocs (fun me _ -> worker me)))
  in
  (out, main)
