lib/workload/gauss_mp.ml: Array Gauss Hashtbl List Outcome Platinum_kernel
