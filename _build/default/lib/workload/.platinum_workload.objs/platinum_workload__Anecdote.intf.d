lib/workload/anecdote.mli: Outcome
