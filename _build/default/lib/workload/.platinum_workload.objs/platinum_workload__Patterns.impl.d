lib/workload/patterns.ml: Array List Outcome Platinum_kernel
