lib/workload/patterns.mli: Outcome
