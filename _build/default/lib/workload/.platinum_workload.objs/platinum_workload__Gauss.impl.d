lib/workload/gauss.ml: Array List Outcome Platinum_kernel
