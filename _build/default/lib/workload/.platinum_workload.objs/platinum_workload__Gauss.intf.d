lib/workload/gauss.mli: Outcome
