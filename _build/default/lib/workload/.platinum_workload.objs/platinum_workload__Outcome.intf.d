lib/workload/outcome.mli:
