lib/workload/backprop.mli: Outcome
