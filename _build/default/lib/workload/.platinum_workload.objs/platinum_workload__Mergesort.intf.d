lib/workload/mergesort.mli: Outcome
