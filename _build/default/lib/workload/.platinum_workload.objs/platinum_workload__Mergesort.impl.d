lib/workload/mergesort.ml: Array List Outcome Platinum_kernel
