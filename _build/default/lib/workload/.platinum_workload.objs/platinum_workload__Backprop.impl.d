lib/workload/backprop.ml: Array List Outcome Platinum_kernel
