lib/workload/outcome.ml: Printf
