lib/workload/jacobi.mli: Outcome
