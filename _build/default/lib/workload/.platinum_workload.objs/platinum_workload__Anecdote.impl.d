lib/workload/anecdote.ml: List Outcome Platinum_kernel
