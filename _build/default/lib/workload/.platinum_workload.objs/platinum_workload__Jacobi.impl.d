lib/workload/jacobi.ml: Array List Outcome Platinum_kernel
