lib/workload/gauss_mp.mli: Outcome
