(** Address spaces: lists of bindings of memory objects (with access
    rights) to virtual address ranges (§1.1).

    The VM fault handler lives here: when the coherent memory system finds
    no Cmap entry for a faulting page, the fault falls through to this
    layer, which locates the binding, creates the coherent page if
    necessary, and installs the virtual-to-coherent mapping. *)

exception Address_error of { aspace : int; vpage : int }
(** Access to an unbound virtual page. *)

type t

val create : Platinum_core.Coherent.t -> t

val id : t -> int
val cmap : t -> Platinum_core.Cmap.t
val coherent : t -> Platinum_core.Coherent.t
val page_words : t -> int

val map :
  t ->
  at_page:int ->
  obj:Memobj.t ->
  ?obj_offset:int ->
  ?npages:int ->
  rights:Platinum_core.Rights.t ->
  unit ->
  unit
(** Bind [npages] pages of [obj] starting at [obj_offset] (default 0, whole
    object) to the virtual range starting at page [at_page].  Overlapping
    an existing binding raises [Invalid_argument]. *)

val unmap : t -> now:Platinum_sim.Time_ns.t -> at_page:int -> npages:int -> int
(** Remove bindings covering the given virtual range; shoots down any
    installed translations.  Returns latency. *)

val map_new_object :
  t -> name:string -> npages:int -> rights:Platinum_core.Rights.t -> Memobj.t * int
(** Convenience: create an object and bind it at the next free virtual
    range.  Returns the object and the base virtual page. *)

val fault : t -> now:Platinum_sim.Time_ns.t -> vpage:int -> int
(** The machine-independent VM fault handler: bind the coherent page
    backing [vpage].  Returns latency.  Raises {!Address_error} when no
    binding covers the page. *)

val resolve : t -> vpage:int -> (Memobj.t * int) option
(** Which (object, page index) backs a virtual page, if any. *)
