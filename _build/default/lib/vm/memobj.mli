(** Memory objects (§1.1).

    A memory object is an abstraction of an ordered list of memory pages.
    It has a global name, and a range of its pages may be bound to any
    page-aligned virtual range of any address space — it is the unit of
    data and code sharing between address spaces.  Coherent pages are
    created lazily, on the first VM fault that touches them. *)

type t

val create : Platinum_core.Coherent.t -> name:string -> npages:int -> t

val id : t -> int
val name : t -> string
val npages : t -> int

val page : t -> index:int -> Platinum_core.Cpage.t
(** The coherent page at [index], created (empty, zero-fill-on-touch) if
    needed.  Raises [Invalid_argument] when out of range. *)

val page_if_exists : t -> index:int -> Platinum_core.Cpage.t option

val iter_pages : (int -> Platinum_core.Cpage.t -> unit) -> t -> unit
(** Iterate over the pages that exist. *)
