type t = {
  zone_name : string;
  base : int;  (* virtual word address of the zone start *)
  words : int;
  page_words : int;
  mutable next : int;  (* offset of the next free word *)
}

let create aspace ~name ?(rights = Platinum_core.Rights.Read_write) ~pages () =
  if pages <= 0 then invalid_arg "Zone.create: pages must be positive";
  let _obj, base_page = Addr_space.map_new_object aspace ~name ~npages:pages ~rights in
  let pw = Addr_space.page_words aspace in
  { zone_name = name; base = base_page * pw; words = pages * pw; page_words = pw; next = 0 }

let name t = t.zone_name
let base_vaddr t = t.base

let align_up x a = (x + a - 1) / a * a

let alloc t ~words ?(page_aligned = false) () =
  if words <= 0 then invalid_arg "Zone.alloc: words must be positive";
  let start = if page_aligned then align_up t.next t.page_words else t.next in
  if start + words > t.words then
    failwith (Printf.sprintf "Zone.alloc: zone %s exhausted (%d + %d > %d words)" t.zone_name start words t.words);
  t.next <- start + words;
  t.base + start

let alloc_pages t ~pages = alloc t ~words:(pages * t.page_words) ~page_aligned:true ()

let used_words t = t.next
let capacity_words t = t.words
