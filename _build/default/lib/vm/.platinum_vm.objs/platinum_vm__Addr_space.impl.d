lib/vm/addr_space.ml: List Memobj Platinum_core Platinum_machine Printf
