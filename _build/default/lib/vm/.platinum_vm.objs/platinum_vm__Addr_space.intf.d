lib/vm/addr_space.mli: Memobj Platinum_core Platinum_sim
