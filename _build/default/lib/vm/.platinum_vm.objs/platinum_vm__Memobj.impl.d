lib/vm/memobj.ml: Array Platinum_core Printf
