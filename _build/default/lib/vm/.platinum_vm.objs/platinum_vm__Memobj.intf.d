lib/vm/memobj.mli: Platinum_core
