lib/vm/zone.ml: Addr_space Platinum_core Printf
