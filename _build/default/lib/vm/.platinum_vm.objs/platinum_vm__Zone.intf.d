lib/vm/zone.mli: Addr_space Platinum_core
