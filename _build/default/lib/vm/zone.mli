(** Disjoint memory-allocation zones (§6).

    "A run-time library for defining disjoint memory allocation zones and
    for specifying page-aligned allocation helps PLATINUM programmers"
    separate data with different access patterns: private per-thread data,
    read-mostly shared data, and fine-grain synchronization variables each
    go to their own zone, so they never share a page.  Internal
    fragmentation is the accepted price (§6). *)

type t

val create :
  Addr_space.t ->
  name:string ->
  ?rights:Platinum_core.Rights.t ->
  pages:int ->
  unit ->
  t
(** Create a zone backed by a fresh memory object bound into the address
    space.  [rights] defaults to read-write. *)

val name : t -> string
val base_vaddr : t -> int

val alloc : t -> words:int -> ?page_aligned:bool -> unit -> int
(** Bump-allocate [words] words; returns the virtual word address.
    [page_aligned] (default false) rounds the start up to a page boundary.
    Raises [Failure] when the zone is exhausted. *)

val alloc_pages : t -> pages:int -> int
(** Allocate whole pages (always page-aligned). *)

val used_words : t -> int
val capacity_words : t -> int
