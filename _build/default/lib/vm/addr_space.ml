module Coherent = Platinum_core.Coherent
module Cmap = Platinum_core.Cmap
module Rights = Platinum_core.Rights

exception Address_error of { aspace : int; vpage : int }

type binding = {
  vbase : int;  (* first virtual page *)
  bnpages : int;
  obj : Memobj.t;
  obj_offset : int;
  rights : Rights.t;
}

type t = {
  coh : Coherent.t;
  cm : Cmap.t;
  mutable bindings : binding list;
  mutable next_free_page : int;
}

let create coh = { coh; cm = Coherent.new_aspace coh; bindings = []; next_free_page = 16 }

let id t = Cmap.aspace t.cm
let cmap t = t.cm
let coherent t = t.coh
let page_words t = Coherent.page_words t.coh

let overlaps b ~at_page ~npages =
  at_page < b.vbase + b.bnpages && b.vbase < at_page + npages

let map t ~at_page ~obj ?(obj_offset = 0) ?npages ~rights () =
  let npages = match npages with Some n -> n | None -> Memobj.npages obj - obj_offset in
  if npages <= 0 then invalid_arg "Addr_space.map: empty range";
  if obj_offset < 0 || obj_offset + npages > Memobj.npages obj then
    invalid_arg "Addr_space.map: range outside object";
  if List.exists (fun b -> overlaps b ~at_page ~npages) t.bindings then
    invalid_arg (Printf.sprintf "Addr_space.map: virtual range [%d,%d) already bound" at_page (at_page + npages));
  t.bindings <- { vbase = at_page; bnpages = npages; obj; obj_offset; rights } :: t.bindings;
  if at_page + npages > t.next_free_page then t.next_free_page <- at_page + npages

let unmap t ~now ~at_page ~npages =
  let lat = ref 0 in
  for vpage = at_page to at_page + npages - 1 do
    lat := !lat + Coherent.unbind t.coh ~now:(now + !lat) t.cm ~vpage
  done;
  t.bindings <- List.filter (fun b -> not (overlaps b ~at_page ~npages)) t.bindings;
  !lat

let map_new_object t ~name ~npages ~rights =
  let obj = Memobj.create t.coh ~name ~npages in
  let base = t.next_free_page in
  map t ~at_page:base ~obj ~rights ();
  (obj, base)

let find_binding t ~vpage =
  List.find_opt (fun b -> vpage >= b.vbase && vpage < b.vbase + b.bnpages) t.bindings

let resolve t ~vpage =
  match find_binding t ~vpage with
  | None -> None
  | Some b -> Some (b.obj, b.obj_offset + (vpage - b.vbase))

let fault t ~now:_ ~vpage =
  match find_binding t ~vpage with
  | None -> raise (Address_error { aspace = id t; vpage })
  | Some b ->
    let index = b.obj_offset + (vpage - b.vbase) in
    let page = Memobj.page b.obj ~index in
    Coherent.bind t.coh t.cm ~vpage page b.rights;
    let counters = Coherent.counters t.coh in
    counters.Platinum_core.Counters.vm_faults <-
      counters.Platinum_core.Counters.vm_faults + 1;
    (Coherent.config t.coh).Platinum_machine.Config.vm_fault_ns
