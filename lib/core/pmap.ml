module Frame = Platinum_phys.Frame

type entry = {
  frame : Platinum_phys.Frame.t;
  mutable write_ok : bool;
}

(* Entries are shared by physical identity with the ATC (a [restrict]
   applied here is visible through the ATC too), so the record itself
   cannot be flattened away.  What can be flattened is the *index*: a
   chunked vpage-indexed table of entry cells (see {!Flat}), plus a packed
   mirror that folds presence, the write bit and the frame coordinates
   into one immediate int per chunked vpage:

     bit 0      present
     bit 1      write_ok
     bits 2-7   memory module (Procset caps the machine at 62)
     bits 8..   frame index within its module

   The mirror chunks in lockstep with the entry table — a packed chunk is
   allocated exactly when [install] first touches the matching entry
   chunk, so a GB-scale sparse address space pays for touched chunks only.
   The mirror answers presence and write-permission probes without
   touching the boxed record, and the sanitizer verifies it never drifts
   from the entry table ([check_faults]).  Spill entries (vpage outside
   the chunked range) are not mirrored; probes fall back to the table. *)
type t = {
  pmap_proc : int;
  entries : entry Flat.t;
  mutable packed : int array array;  (* grown in lockstep with the entry chunks *)
}

let pack e =
  1
  lor (if e.write_ok then 2 else 0)
  lor (Frame.mem_module e.frame lsl 2)
  lor (Frame.index e.frame lsl 8)

let create ~proc = { pmap_proc = proc; entries = Flat.create (); packed = [||] }
let proc t = t.pmap_proc
let find t ~vpage = Flat.find t.entries vpage

let sync_packed t =
  let n = Flat.chunk_count t.entries in
  if Array.length t.packed < n then begin
    let p = Array.make n [||] in
    Array.blit t.packed 0 p 0 (Array.length t.packed);
    t.packed <- p
  end

(* The packed chunk for [vpage], allocated on first touch — callers have
   already grown the entry table, so [sync_packed] makes the directory
   long enough and the chunk itself mirrors the entry chunk's granule. *)
let mirror_chunk t vpage =
  sync_packed t;
  let c = vpage lsr Flat.chunk_bits in
  let ch = t.packed.(c) in
  if Array.length ch <> 0 then ch
  else begin
    let ch = Array.make Flat.chunk_size 0 in
    t.packed.(c) <- ch;
    ch
  end

let mirrored vpage = vpage >= 0 && vpage < Flat.dense_limit

let install t ~vpage ~frame ~write_ok =
  let e = { frame; write_ok } in
  Flat.set t.entries vpage e;
  if mirrored vpage then (mirror_chunk t vpage).(vpage land Flat.chunk_mask) <- pack e;
  e

(* Update an existing mirror slot; chunk presence follows [install]. *)
let mirror_set t vpage v =
  let c = vpage lsr Flat.chunk_bits in
  if c < Array.length t.packed then begin
    let ch = t.packed.(c) in
    if Array.length ch <> 0 then ch.(vpage land Flat.chunk_mask) <- v
  end

let remove t ~vpage =
  Flat.remove t.entries vpage;
  if mirrored vpage then mirror_set t vpage 0

let restrict t ~vpage =
  match Flat.find t.entries vpage with
  | None -> ()
  | Some e ->
    e.write_ok <- false;
    if mirrored vpage then
      mirror_set t vpage (pack e)

(* lint: allow epoch-soundness — teardown entry point with no in-library
   callers (tests reset a processor's map wholesale); dropping
   translations can only turn fast-path hits into faults on the full
   path, never admit a stale hit, so no epoch bump is needed. *)
let clear t =
  Flat.clear t.entries;
  t.packed <- [||]

let size t = Flat.length t.entries
let iter f t = Flat.iter f t.entries

let mem t ~vpage =
  if mirrored vpage then begin
    let c = vpage lsr Flat.chunk_bits in
    if c < Array.length t.packed then begin
      let p = Array.unsafe_get t.packed c in
      Array.length p <> 0
      && Array.unsafe_get p (vpage land Flat.chunk_mask) land 1 <> 0
    end
    else false
  end
  else Flat.mem t.entries vpage

let write_ok t ~vpage =
  if mirrored vpage then begin
    let c = vpage lsr Flat.chunk_bits in
    if c < Array.length t.packed then begin
      let p = Array.unsafe_get t.packed c in
      Array.length p <> 0
      && Array.unsafe_get p (vpage land Flat.chunk_mask) land 2 <> 0
    end
    else false
  end
  else match Flat.find t.entries vpage with Some e -> e.write_ok | None -> false

let check_faults t =
  let fault = ref None in
  let fail fmt =
    Printf.ksprintf
      (fun detail ->
        if !fault = None then
          fault := Some (Check.fault ~inv:"packed-mirror" ~cite:"PR 5" "%s" detail))
      fmt
  in
  for c = 0 to Flat.chunk_count t.entries - 1 do
    if Flat.chunk_touched t.entries c then begin
      (* An entry chunk the mirror cannot see means that lockstep broke. *)
      if c >= Array.length t.packed || Array.length t.packed.(c) = 0 then begin
        let populated = ref false in
        for i = 0 to Flat.chunk_size - 1 do
          if Flat.mem t.entries ((c lsl Flat.chunk_bits) lor i) then populated := true
        done;
        if !populated then
          fail "Pmap of proc %d: entry chunk %d outgrew the packed mirror" t.pmap_proc c
      end
      else
        for i = 0 to Flat.chunk_size - 1 do
          let vpage = (c lsl Flat.chunk_bits) lor i in
          let expected =
            match Flat.find t.entries vpage with None -> 0 | Some e -> pack e
          in
          if t.packed.(c).(i) <> expected then
            fail "Pmap of proc %d: packed mirror %#x for vpage %d, entry table says %#x"
              t.pmap_proc t.packed.(c).(i) vpage expected
        done
    end
  done;
  (* Packed chunks with bits set but no entry chunk behind them would
     answer probes for unmapped pages. *)
  for c = 0 to Array.length t.packed - 1 do
    if Array.length t.packed.(c) <> 0 && not (Flat.chunk_touched t.entries c) then
      for i = 0 to Flat.chunk_size - 1 do
        if t.packed.(c).(i) <> 0 then
          fail "Pmap of proc %d: packed mirror %#x for vpage %d with no entry chunk"
            t.pmap_proc t.packed.(c).(i) ((c lsl Flat.chunk_bits) lor i)
      done
  done;
  !fault
