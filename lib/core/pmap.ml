module Frame = Platinum_phys.Frame

type entry = {
  frame : Platinum_phys.Frame.t;
  mutable write_ok : bool;
}

(* Entries are shared by physical identity with the ATC (a [restrict]
   applied here is visible through the ATC too), so the record itself
   cannot be flattened away.  What can be flattened is the *index*: a
   dense vpage-indexed table of entry cells (see {!Flat}), plus a packed
   mirror that folds presence, the write bit and the frame coordinates
   into one immediate int per dense vpage:

     bit 0      present
     bit 1      write_ok
     bits 2-7   memory module (Procset caps the machine at 62)
     bits 8..   frame index within its module

   The mirror answers presence and write-permission probes without
   touching the boxed record, and the sanitizer verifies it never drifts
   from the entry table ([check_faults]).  Spill entries (vpage outside
   the dense range) are not mirrored; probes fall back to the table. *)
type t = {
  pmap_proc : int;
  entries : entry Flat.t;
  mutable packed : int array;  (* grown in lockstep with the dense prefix *)
}

let pack e =
  1
  lor (if e.write_ok then 2 else 0)
  lor (Frame.mem_module e.frame lsl 2)
  lor (Frame.index e.frame lsl 8)

let create ~proc = { pmap_proc = proc; entries = Flat.create (); packed = [||] }
let proc t = t.pmap_proc
let find t ~vpage = Flat.find t.entries vpage

let sync_packed t =
  let n = Flat.dense_capacity t.entries in
  if Array.length t.packed < n then begin
    let p = Array.make n 0 in
    Array.blit t.packed 0 p 0 (Array.length t.packed);
    t.packed <- p
  end

let install t ~vpage ~frame ~write_ok =
  let e = { frame; write_ok } in
  Flat.set t.entries vpage e;
  sync_packed t;
  if vpage >= 0 && vpage < Array.length t.packed then t.packed.(vpage) <- pack e;
  e

let remove t ~vpage =
  Flat.remove t.entries vpage;
  if vpage >= 0 && vpage < Array.length t.packed then t.packed.(vpage) <- 0

let restrict t ~vpage =
  match Flat.find t.entries vpage with
  | None -> ()
  | Some e ->
    e.write_ok <- false;
    if vpage >= 0 && vpage < Array.length t.packed then
      t.packed.(vpage) <- t.packed.(vpage) land lnot 2

(* lint: allow epoch-soundness — teardown entry point with no in-library
   callers (tests reset a processor's map wholesale); dropping
   translations can only turn fast-path hits into faults on the full
   path, never admit a stale hit, so no epoch bump is needed. *)
let clear t =
  Flat.clear t.entries;
  Array.fill t.packed 0 (Array.length t.packed) 0

let size t = Flat.length t.entries
let iter f t = Flat.iter f t.entries

let mem t ~vpage =
  if vpage >= 0 && vpage < Array.length t.packed then
    t.packed.(vpage) land 1 <> 0
  else Flat.mem t.entries vpage

let write_ok t ~vpage =
  if vpage >= 0 && vpage < Array.length t.packed then
    t.packed.(vpage) land 2 <> 0
  else match Flat.find t.entries vpage with Some e -> e.write_ok | None -> false

let check_faults t =
  let fault = ref None in
  let fail fmt =
    Printf.ksprintf
      (fun detail ->
        if !fault = None then
          fault := Some (Check.fault ~inv:"packed-mirror" ~cite:"PR 5" "%s" detail))
      fmt
  in
  for vpage = 0 to Array.length t.packed - 1 do
    let expected =
      match Flat.find t.entries vpage with None -> 0 | Some e -> pack e
    in
    if t.packed.(vpage) <> expected then
      fail "Pmap of proc %d: packed mirror %#x for vpage %d, entry table says %#x"
        t.pmap_proc t.packed.(vpage) vpage expected
  done;
  (* The dense prefix and the mirror grow in lockstep; an entry the mirror
     cannot see means that lockstep broke. *)
  if Flat.dense_capacity t.entries > Array.length t.packed then
    fail "Pmap of proc %d: dense prefix (%d cells) outgrew the packed mirror (%d)"
      t.pmap_proc (Flat.dense_capacity t.entries) (Array.length t.packed);
  !fault
