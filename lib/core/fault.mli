(** The coherent-memory page-fault handler (§3.2–§3.3).

    Every transition of the paper's Figure 4 state diagram is taken here,
    driven by read/write misses (the defrost daemon drives the remaining
    thaw transitions).  On a miss with no local physical copy, the
    {!Policy} chooses between replication/migration and a remote mapping;
    a frozen page is always remote-mapped with the full rights the VM
    system permits, so it faults no further.

    The handler returns the installed Pmap entry and the fault latency,
    which composes: trap entry + (allocate/map or map-existing) +
    shootdown (restrict or invalidate) + page frees + block transfer,
    all charged against the contended memory modules. *)

exception Unmapped of { aspace : int; vpage : int }
(** No Cmap entry: the fault belongs to the VM layer. *)

exception Protection_violation of { aspace : int; vpage : int; write : bool }

exception Out_of_physical_memory

type ctx = {
  machine : Platinum_machine.Machine.t;
  phys : Platinum_phys.Phys_mem.t;
  counters : Counters.t;
  atcs : Atc.t array;
  policy : Policy.t;
  hooks : Policy.hooks;
  mappings_of : Cpage.t -> (Cmap.t * int) list;
      (** every (cmap, vpage) at which a coherent page is currently bound *)
  probe : unit -> Probe.t option;
      (** the instrumentation callback, consulted at call time so it can
          be installed after the system is built *)
  monitor : unit -> Check.monitor option;
      (** the coherence sanitizer's monitor, likewise consulted at call
          time; shootdowns report into it when armed *)
}

val handle :
  ctx ->
  now:Platinum_sim.Time_ns.t ->
  proc:int ->
  cmap:Cmap.t ->
  vpage:int ->
  write:bool ->
  Pmap.entry * int
(** Resolve a fault by processor [proc] at [vpage] of [cmap]'s address
    space.  Returns the new translation and the latency in ns. *)
