(* Dense vpage-indexed tables: the flat storage behind Pmap, Atc and Cmap.

   The PLATINUM argument (§3-4) is that the common case — a mapped,
   coherent access — must cost almost nothing.  Hashing on every simulated
   word made the simulator's common case pay bucket chases and [Some]
   allocations; a dense array indexed by vpage makes a hit one bounds check
   and one load, and returning the *stored* option cell keeps the hit path
   free of minor-heap allocation.

   Virtual pages are small integers for every workload the simulator runs
   (zones allocate from low addresses), so keys below [dense_limit] live in
   a geometrically-grown array; anything else — negative or genuinely
   sparse — spills to a hash table that stores pre-wrapped options so even
   spill hits allocate nothing. *)

type 'a t = {
  mutable cells : 'a option array;  (* dense prefix, index = key *)
  spill : (int, 'a option) Hashtbl.t;  (* keys outside [0, dense_limit) *)
  mutable population : int;
}

let dense_limit = 1 lsl 16

let create () = { cells = [||]; spill = Hashtbl.create 8; population = 0 }

let find t k =
  if k >= 0 && k < Array.length t.cells then Array.unsafe_get t.cells k
  else if k >= 0 && k < dense_limit then None
  else (try Hashtbl.find t.spill k with Not_found -> None)

let mem t k =
  if k >= 0 && k < Array.length t.cells then Array.unsafe_get t.cells k <> None
  else if k >= 0 && k < dense_limit then false
  else Hashtbl.mem t.spill k

let ensure t k =
  let n = Array.length t.cells in
  if k >= n then begin
    let n' = min dense_limit (max 64 (max (k + 1) (2 * n))) in
    let cells = Array.make n' None in
    Array.blit t.cells 0 cells 0 n;
    t.cells <- cells
  end

let set t k v =
  if k >= 0 && k < dense_limit then begin
    ensure t k;
    (match Array.unsafe_get t.cells k with
    | None -> t.population <- t.population + 1
    | Some _ -> ());
    Array.unsafe_set t.cells k (Some v)
  end
  else begin
    if not (Hashtbl.mem t.spill k) then t.population <- t.population + 1;
    Hashtbl.replace t.spill k (Some v)
  end

let remove t k =
  if k >= 0 && k < dense_limit then begin
    if k < Array.length t.cells then
      match Array.unsafe_get t.cells k with
      | None -> ()
      | Some _ ->
        Array.unsafe_set t.cells k None;
        t.population <- t.population - 1
  end
  else if Hashtbl.mem t.spill k then begin
    Hashtbl.remove t.spill k;
    t.population <- t.population - 1
  end

let clear t =
  if t.population > 0 then begin
    Array.fill t.cells 0 (Array.length t.cells) None;
    Hashtbl.reset t.spill;
    t.population <- 0
  end

let length t = t.population

let iter f t =
  for k = 0 to Array.length t.cells - 1 do
    match Array.unsafe_get t.cells k with
    | Some v -> f k v
    | None -> ()
  done;
  Hashtbl.iter (fun k v -> match v with Some v -> f k v | None -> ()) t.spill

let dense_capacity t = Array.length t.cells
