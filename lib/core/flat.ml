(* Chunked vpage-indexed tables: the flat storage behind Pmap, Atc and Cmap.

   The PLATINUM argument (§3-4) is that the common case — a mapped,
   coherent access — must cost almost nothing.  Hashing on every simulated
   word made the simulator's common case pay bucket chases and [Some]
   allocations; an array indexed by vpage makes a hit bounds checks
   and loads, and returning the *stored* option cell keeps the hit path
   free of minor-heap allocation.

   PR 5's representation was a single dense prefix capped at 2^16 keys,
   which priced a GB-scale address space at its *span*: one sparse touch
   near the top of a 2^27-word space would have either allocated the whole
   prefix or pushed every access onto the spill path.  The table is now
   chunked: keys in [0, dense_limit) resolve through a two-level array —
   an outer chunk directory grown geometrically, and 2^12-entry chunks
   allocated on first touch — so resident memory is proportional to the
   *touched* footprint (one chunk per touched 4096-page window) while a
   steady-state hit is still two bounds checks and two loads with zero
   allocation.  Negative keys and keys at or above [dense_limit] spill to
   a hash table that stores pre-wrapped options, so even spill hits
   allocate nothing. *)

type 'a t = {
  mutable chunks : 'a option array array;
      (* outer directory, index = key lsr chunk_bits; [||] = never touched *)
  spill : (int, 'a option) Hashtbl.t;  (* keys outside [0, dense_limit) *)
  mutable population : int;
}

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let chunk_mask = chunk_size - 1

(* The chunk-addressable span: 2^22 pages = 2^32 words of address space at
   the default kilo-word page.  The outer directory tops out at
   [dense_limit / chunk_size] = 1024 pointers, so even a touch at the very
   top of the span costs kilobytes of directory, not gigabytes of cells. *)
let dense_limit = 1 lsl 22

let max_chunks = dense_limit lsr chunk_bits

let create () = { chunks = [||]; spill = Hashtbl.create 8; population = 0 }

let find t k =
  if k >= 0 && k < dense_limit then begin
    let c = k lsr chunk_bits in
    if c < Array.length t.chunks then begin
      let ch = Array.unsafe_get t.chunks c in
      if Array.length ch = 0 then None else Array.unsafe_get ch (k land chunk_mask)
    end
    else None
  end
  else try Hashtbl.find t.spill k with Not_found -> None

let mem t k =
  if k >= 0 && k < dense_limit then begin
    let c = k lsr chunk_bits in
    if c < Array.length t.chunks then begin
      let ch = Array.unsafe_get t.chunks c in
      Array.length ch <> 0 && Array.unsafe_get ch (k land chunk_mask) <> None
    end
    else false
  end
  else Hashtbl.mem t.spill k

(* Grow the directory to reach chunk [c], allocate the chunk on first
   touch, and return it.  Only [set] pays this; probes never allocate. *)
let ensure_chunk t k =
  let c = k lsr chunk_bits in
  let n = Array.length t.chunks in
  if c >= n then begin
    let n' = min max_chunks (max 8 (max (c + 1) (2 * n))) in
    let chunks = Array.make n' [||] in
    Array.blit t.chunks 0 chunks 0 n;
    t.chunks <- chunks
  end;
  let ch = t.chunks.(c) in
  if Array.length ch <> 0 then ch
  else begin
    let ch = Array.make chunk_size None in
    t.chunks.(c) <- ch;
    ch
  end

let set t k v =
  if k >= 0 && k < dense_limit then begin
    let ch = ensure_chunk t k in
    let i = k land chunk_mask in
    (match Array.unsafe_get ch i with
    | None -> t.population <- t.population + 1
    | Some _ -> ());
    Array.unsafe_set ch i (Some v)
  end
  else begin
    if not (Hashtbl.mem t.spill k) then t.population <- t.population + 1;
    Hashtbl.replace t.spill k (Some v)
  end

let remove t k =
  if k >= 0 && k < dense_limit then begin
    let c = k lsr chunk_bits in
    if c < Array.length t.chunks then begin
      let ch = Array.unsafe_get t.chunks c in
      if Array.length ch <> 0 then begin
        let i = k land chunk_mask in
        match Array.unsafe_get ch i with
        | None -> ()
        | Some _ ->
          Array.unsafe_set ch i None;
          t.population <- t.population - 1
      end
    end
  end
  else if Hashtbl.mem t.spill k then begin
    Hashtbl.remove t.spill k;
    t.population <- t.population - 1
  end

let clear t =
  if t.population > 0 || Array.length t.chunks > 0 then begin
    t.chunks <- [||];
    Hashtbl.reset t.spill;
    t.population <- 0
  end

let length t = t.population

let iter f t =
  for c = 0 to Array.length t.chunks - 1 do
    let ch = Array.unsafe_get t.chunks c in
    if Array.length ch <> 0 then
      for i = 0 to chunk_size - 1 do
        match Array.unsafe_get ch i with
        | Some v -> f ((c lsl chunk_bits) lor i) v
        | None -> ()
      done
  done;
  Hashtbl.iter (fun k v -> match v with Some v -> f k v | None -> ()) t.spill

let chunk_count t = Array.length t.chunks

let chunk_touched t c =
  c >= 0 && c < Array.length t.chunks && Array.length t.chunks.(c) <> 0

let touched_chunks t =
  let n = ref 0 in
  for c = 0 to Array.length t.chunks - 1 do
    if Array.length t.chunks.(c) <> 0 then incr n
  done;
  !n
