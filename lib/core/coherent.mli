(** The coherent memory system: Cpage table, Cmaps, fault handling,
    replication policy, and the freeze/thaw machinery, assembled.

    This is the machine-dependent layer that replaces the Mach pmap module
    (§1.1): above it sits the VM system (memory objects, address spaces);
    below it sit physical memory and the machine model.

    All operations take [now] and return a latency in nanoseconds; the
    kernel charges that latency to the issuing processor. *)

type t

val create :
  Platinum_machine.Machine.t ->
  engine:Platinum_sim.Engine.t ->
  policy:Policy.t ->
  ?frames_per_module:int ->
  unit ->
  t
(** [frames_per_module] defaults to 1024 (4 MB of 4 KB pages per node, as
    on the Butterfly Plus). *)

val machine : t -> Platinum_machine.Machine.t
val config : t -> Platinum_machine.Config.t
val phys : t -> Platinum_phys.Phys_mem.t
val counters : t -> Counters.t
val policy : t -> Policy.t
val page_words : t -> int

(* --- address spaces and pages --- *)

val new_aspace : t -> Cmap.t
val cmap : t -> aspace:int -> Cmap.t
val new_cpage : t -> ?home:int -> ?label:string -> unit -> Cpage.t

val bind : t -> Cmap.t -> vpage:int -> Cpage.t -> Rights.t -> unit
(** Install a virtual-to-coherent mapping in an address space. *)

val unbind : t -> now:Platinum_sim.Time_ns.t -> Cmap.t -> vpage:int -> int
(** Remove a mapping, shooting down any translations.  Returns latency. *)

val mappings_of : t -> Cpage.t -> (Cmap.t * int) list

val activate : t -> now:Platinum_sim.Time_ns.t -> proc:int -> aspace:int -> int
(** Make [aspace] current on [proc] (ATC flush + Cmap bookkeeping).
    Returns latency (0 if already active). *)

(* --- the access paths --- *)

(** Reusable result slot for the allocation-free word paths: the [_s]
    variants below write their latency into the scratch and return the
    bare value, so a steady-state hit (active aspace, ATC hit, sufficient
    rights) allocates zero minor-heap words.  Not reentrant — use one
    scratch per access stream; the tupled conveniences ({!read_word} and
    friends) use an internal one. *)
type scratch

val make_scratch : unit -> scratch

val scratch_latency : scratch -> int
(** Latency of the most recent [_s] access through this scratch. *)

val read_word_s :
  t -> scratch -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vaddr:int -> int
(** The word value; latency via {!scratch_latency}.  Semantically identical
    to {!read_word} (same faults, same cache and interconnect charging). *)

val write_word_s :
  t -> scratch -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vaddr:int ->
  int -> unit

val rmw_word_s :
  t -> scratch -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vaddr:int ->
  (int -> int) -> int
(** The old value; latency via {!scratch_latency}. *)

(* --- the coalescing fast-path cores (DESIGN.md §4g) ---

   Hit-only word accesses for the kernel's effect-boundary coalescer:
   they complete the access iff it is a clean steady-state hit (active
   aspace, ATC entry, sufficient rights), returning its latency, and
   return [-1] otherwise — never translating, never faulting, never
   touching policy state.  A successful call charges exactly what the
   [_s] path's hit arm charges at the same [now]; read the result via
   {!fp_value}.  Not reentrant (they share the internal scratch). *)

val fp_epoch : t -> int
(** The invalidation epoch: bumped on every remap, freeze, thaw,
    shootdown-bearing transition, fault resolution, aspace switch and
    monitor change.  Cached {!fp_page_ok} verdicts are valid only while
    the epoch is unchanged. *)

val fp_page_ok : t -> proc:int -> cmap:Cmap.t -> vpage:int -> write:bool -> bool
(** Page-level coalescing eligibility: monitor disarmed, the cmap's
    aspace active on [proc], translation present in the ATC with
    sufficient rights, and the page not frozen. *)

val fp_read :
  t -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vpage:int -> vaddr:int -> int
val fp_write :
  t -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vpage:int -> vaddr:int ->
  int -> int
val fp_rmw :
  t -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vpage:int -> vaddr:int ->
  (int -> int) -> int

val fp_value_cell : t -> int ref
(** The shared result cell the last successful {!fp_read}/{!fp_rmw} wrote. *)

val translate :
  t ->
  now:Platinum_sim.Time_ns.t ->
  proc:int ->
  cmap:Cmap.t ->
  vpage:int ->
  write:bool ->
  Pmap.entry * int
(** ATC hit: latency 0.  ATC miss, Pmap hit: ATC reload.  Otherwise the
    {!Fault} handler runs.  Raises {!Fault.Unmapped} when the VM layer must
    intervene. *)

val submit :
  t ->
  now:Platinum_sim.Time_ns.t ->
  proc:int ->
  cmap:Cmap.t ->
  Memtxn.t ->
  Memtxn.result * int
(** Run one memory transaction against the coherent memory: the single
    access path every word, block and strided operation flows through.
    {!Memtxn.run} splits the transaction into per-page chunks; each chunk
    translates (faulting if needed) at the simulated time it begins and is
    charged on the interconnect, so batching never changes simulated cost.
    Word reads use the per-processor caches; block and strided transfers
    bypass them (§7). *)

val read_word :
  t -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vaddr:int -> int * int
(** [(value, latency)].  Equivalent to {!submit} of a one-word [Read]. *)

val write_word :
  t -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vaddr:int -> int -> int

val rmw_word :
  t ->
  now:Platinum_sim.Time_ns.t ->
  proc:int ->
  cmap:Cmap.t ->
  vaddr:int ->
  (int -> int) ->
  int * int
(** Atomic read-modify-write of one word; returns [(old value, latency)]. *)

val block_read :
  t -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vaddr:int -> len:int -> int array * int

val block_write :
  t -> now:Platinum_sim.Time_ns.t -> proc:int -> cmap:Cmap.t -> vaddr:int -> int array -> int

(* --- placement advice (the §9 hint interface) --- *)

(** The paper (§9): "it is not hard to construct scenarios in which
    better performance could be obtained if the interface between the
    application and the memory management system were not so
    transparent.  The kernel interface will be extended to support
    these... utilized primarily by programming languages and their
    run-time support."  Advice never changes semantics — only placement:

    - [Advise_freeze]: the caller knows the page is fine-grain
      write-shared; freeze it immediately instead of discovering that
      through a round of invalidation thrash.
    - [Advise_thaw]: the caller knows a phase change happened; thaw now
      rather than waiting for the defrost daemon.
    - [Advise_home m]: collapse the page to a single copy on module [m]
      (a placement directive for frozen or never-replicated data). *)
type advice =
  | Advise_freeze
  | Advise_thaw
  | Advise_home of int

val advise :
  t ->
  now:Platinum_sim.Time_ns.t ->
  proc:int ->
  cmap:Cmap.t ->
  vpage:int ->
  advice ->
  int
(** Apply advice to one page; returns the latency of the kernel work it
    triggered.  Raises {!Fault.Unmapped} if the page is not bound. *)

(* --- freeze / thaw --- *)

val freeze_page : t -> now:Platinum_sim.Time_ns.t -> Cpage.t -> unit
val thaw_page : t -> now:Platinum_sim.Time_ns.t -> Cpage.t -> unit
(** Thaw one page: invalidate all its translations (charged to the page's
    home processor as daemon work) so the next access may replicate it. *)

val thaw_all : t -> now:Platinum_sim.Time_ns.t -> unit
(** What the defrost daemon does every t2. *)

val frozen_pages : t -> Cpage.t list

val set_probe : t -> Probe.t option -> unit
(** Install (or remove) the instrumentation callback; see {!Probe}. *)

val set_freeze_hook : t -> (now:Platinum_sim.Time_ns.t -> Cpage.t -> unit) option -> unit
(** Internal notification used by the adaptive defrost daemon: called
    whenever the policy freezes a page. *)

val daemon_thaw : t -> now:Platinum_sim.Time_ns.t -> Cpage.t -> unit
(** {!thaw_page}, attributed to the defrost daemon in probe events. *)

(* --- introspection --- *)

val iter_cpages : (Cpage.t -> unit) -> t -> unit
val n_cpages : t -> int

val check_faults : t -> Check.fault option
(** Machine-wide consistency, structured: every {!Cpage} invariant
    (via {!Check.check_page}), directory frame ownership, frozen-list
    agreement in both directions, every {!Cmap.check_faults} (refmask ↔
    Pmap ↔ directory agreement, replicas read-only, no stale Pmap entry),
    and ATC hygiene (the micro-ATC mirror, and that every cached
    translation is physically the live Pmap entry — the stale-translation
    property, §3.1).  Returns the first fault found. *)

val check_invariants : t -> (unit, string) result
(** [check_faults] rendered to a message, for callers that just assert. *)

(* --- the coherence sanitizer (PLATINUM_CHECK=1) --- *)

val monitor : t -> Check.monitor option

val set_monitor : t -> Check.monitor option -> unit
(** Arm (or disarm) the runtime invariant monitor.  [create] arms one
    automatically when the [PLATINUM_CHECK] environment variable is set.
    While armed: every protocol event and faulting request is recorded in
    the monitor's bounded trace, the machine-wide sweep re-runs after
    every completed protocol transition (fault resolution, freeze, thaw,
    unbind, advice), shootdown completion is verified target-by-target,
    and any violation raises {!Check.Violation} carrying the replayable
    event prefix.  When [None] (the default) the only cost is a [None]
    test at each transition — nothing on the ATC-hit hot path. *)

val atc : t -> proc:int -> Atc.t
(** Processor [proc]'s address-translation cache (read-only uses). *)
