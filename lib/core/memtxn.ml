type t =
  | Read of { vaddr : int }
  | Write of { vaddr : int; value : int }
  | Rmw of { vaddr : int; f : int -> int }
  | Block_read of { vaddr : int; len : int }
  | Block_write of { vaddr : int; data : int array }
  | Stride_read of { vaddr : int; count : int; elem_words : int; stride : int }
  | Stride_write of { vaddr : int; data : int array; count : int; elem_words : int; stride : int }

type result =
  | Unit
  | Word of int
  | Words of int array

type kind =
  | Load
  | Store
  | Update

let kind = function
  | Read _ | Block_read _ | Stride_read _ -> Load
  | Write _ | Block_write _ | Stride_write _ -> Store
  | Rmw _ -> Update

let is_write txn = kind txn <> Load

let data_words = function
  | Read _ | Write _ | Rmw _ -> 1
  | Block_read { len; _ } -> max len 0
  | Block_write { data; _ } -> Array.length data
  | Stride_read { count; elem_words; _ } -> max (count * elem_words) 0
  | Stride_write { data; _ } -> Array.length data

let validate_stride ~what ~count ~elem_words ~stride =
  if count < 0 then invalid_arg (what ^ ": negative element count");
  if elem_words < 1 then invalid_arg (what ^ ": elements must be at least one word");
  if stride < elem_words then invalid_arg (what ^ ": stride overlaps elements")

let validate = function
  | Read _ | Write _ | Rmw _ -> ()
  | Block_read { len; _ } -> if len < 0 then invalid_arg "Memtxn: negative length"
  | Block_write _ -> ()
  | Stride_read { count; elem_words; stride; _ } ->
    validate_stride ~what:"Memtxn.Stride_read" ~count ~elem_words ~stride
  | Stride_write { data; count; elem_words; stride; _ } ->
    validate_stride ~what:"Memtxn.Stride_write" ~count ~elem_words ~stride;
    if Array.length data <> count * elem_words then
      invalid_arg "Memtxn.Stride_write: data length is not count * elem_words"

type chunk = {
  mutable c_vaddr : int;
  mutable c_index : int;
  mutable c_words : int;
}

type scratch = {
  s_chunk : chunk;  (* the one chunk record iter_chunks refills *)
  s_word : int array;  (* one-word data buffer for word transactions *)
}

let make_scratch () = { s_chunk = { c_vaddr = 0; c_index = 0; c_words = 0 }; s_word = [| 0 |] }

(* Split the contiguous run [vaddr, vaddr + words) at page boundaries,
   refilling the caller's one chunk record per run. *)
let iter_run ~page_words ~vaddr ~index ~words ch f =
  let pos = ref 0 in
  while !pos < words do
    let va = vaddr + !pos in
    let off = va mod page_words in
    let len = min (page_words - off) (words - !pos) in
    ch.c_vaddr <- va;
    ch.c_index <- index + !pos;
    ch.c_words <- len;
    f ch;
    pos := !pos + len
  done

let iter_chunks ?scratch ~page_words txn f =
  let ch =
    match scratch with
    | Some s -> s.s_chunk
    | None -> { c_vaddr = 0; c_index = 0; c_words = 0 }
  in
  match txn with
  | Read { vaddr } | Write { vaddr; _ } | Rmw { vaddr; _ } ->
    ch.c_vaddr <- vaddr;
    ch.c_index <- 0;
    ch.c_words <- 1;
    f ch
  | Block_read { vaddr; len } -> iter_run ~page_words ~vaddr ~index:0 ~words:(max len 0) ch f
  | Block_write { vaddr; data } ->
    iter_run ~page_words ~vaddr ~index:0 ~words:(Array.length data) ch f
  | Stride_read { vaddr; count; elem_words; stride }
  | Stride_write { vaddr; count; elem_words; stride; _ } ->
    for k = 0 to count - 1 do
      iter_run ~page_words ~vaddr:(vaddr + (k * stride)) ~index:(k * elem_words)
        ~words:elem_words ch f
    done

let iter_pages ~page_words txn f =
  let last = ref min_int in
  iter_chunks ~page_words txn (fun c ->
      let vpage = c.c_vaddr / page_words in
      if vpage <> !last then begin
        last := vpage;
        f vpage
      end)

let run ~page_words ~now ?scratch txn ~chunk_cost =
  validate txn;
  let data =
    match txn with
    | Read _ | Rmw _ -> (
      match scratch with
      | Some s ->
        s.s_word.(0) <- 0;
        s.s_word
      | None -> [| 0 |])
    | Write { value; _ } -> (
      match scratch with
      | Some s ->
        s.s_word.(0) <- value;
        s.s_word
      | None -> [| value |])
    | Block_read _ | Stride_read _ -> Array.make (data_words txn) 0
    | Block_write { data; _ } | Stride_write { data; _ } -> data
  in
  let lat = ref 0 in
  iter_chunks ?scratch ~page_words txn (fun chunk ->
      lat := !lat + chunk_cost ~now:(now + !lat) ~data chunk);
  let result =
    match txn with
    | Write _ | Block_write _ | Stride_write _ -> Unit
    | Read _ | Rmw _ -> Word data.(0)
    | Block_read _ | Stride_read _ -> Words data
  in
  (result, !lat)

let pp fmt = function
  | Read { vaddr } -> Format.fprintf fmt "read @%d" vaddr
  | Write { vaddr; value } -> Format.fprintf fmt "write @%d <- %d" vaddr value
  | Rmw { vaddr; _ } -> Format.fprintf fmt "rmw @%d" vaddr
  | Block_read { vaddr; len } -> Format.fprintf fmt "block-read @%d x%d" vaddr len
  | Block_write { vaddr; data } ->
    Format.fprintf fmt "block-write @%d x%d" vaddr (Array.length data)
  | Stride_read { vaddr; count; elem_words; stride } ->
    Format.fprintf fmt "stride-read @%d %dx%d step %d" vaddr count elem_words stride
  | Stride_write { vaddr; count; elem_words; stride; _ } ->
    Format.fprintf fmt "stride-write @%d %dx%d step %d" vaddr count elem_words stride
