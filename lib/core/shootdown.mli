(** The NUMA shootdown mechanism (§3.1).

    When a coherency action must restrict or remove virtual-to-physical
    translations held by other processors, the initiator posts a Cmap
    message per affected address space and interrupts exactly the
    processors that (a) appear in the reference mask of a Cmap entry for
    the page — i.e. actually hold a translation — and (b) currently have
    that address space active.  Inactive holders apply the change when they
    next activate the space, at no interrupt cost.

    Timing: the initiator pays [shootdown_post_ns] per message and
    [ipi_send_ns] per interrupted target (sends are serialized at the
    initiator — the paper's ≈7 µs incremental cost), then waits for every
    target's acknowledgement; a target acknowledges [sync_handler_ns] after
    it can take the interrupt (it may be mid-way through a long memory
    operation — this is what stretches the paper's 0.04–0.21 ms shootdown
    component).  Target-side handler time is charged to the target as a
    deferred penalty.

    State: changes are applied eagerly (atomically within the fault event),
    which is observably equivalent to the paper's lazy queue-draining
    because a processor always drains its queue before touching the
    space. *)

type outcome = {
  latency : int;  (** time added to the initiating fault *)
  interrupted : int;  (** processors that took an IPI *)
  deferred : int;  (** Pmap updates applied without an interrupt *)
}

val run :
  ?monitor:Check.monitor ->
  machine:Platinum_machine.Machine.t ->
  counters:Counters.t ->
  atcs:Atc.t array ->
  now:Platinum_sim.Time_ns.t ->
  initiator:int ->
  mappings:(Cmap.t * int) list ->
  directive:Cmap.directive ->
  spare:(Cmap.t * int) option ->
  unit ->
  outcome
(** [run ~mappings ~directive ~spare ()] executes one shootdown over every
    (cmap, vpage) at which the page is mapped.  [spare], when given,
    identifies the one translation that must survive an [Invalidate] — the
    initiator's own mapping in the faulting address space.

    With [monitor], the sanitizer's stale-translation check runs on
    completion: no targeted processor may retain a Pmap or ATC translation
    after an [Invalidate], nor write permission after a
    [Restrict_to_read] (§3.1; the NUMA analogue of numaPTE's
    TLB-consistency property).  Violations raise {!Check.Violation}. *)

val test_skip_refmask_clear : bool ref
(** Fault injection for the sanitizer's own tests and the model checker's
    mutation mode: when set, an [Invalidate] "forgets" to clear the
    processed targets from the reference mask — the deliberately broken
    transition that the invariant monitor must catch (it trips
    refmask-pmap-agreement on the next sweep).  Always [false] outside
    tests. *)
