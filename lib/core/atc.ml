type t = {
  atc_proc : int;
  mutable aspace : int;  (* -1 = none *)
  entries : Pmap.entry Flat.t;
  (* Micro-ATC: the last translation this processor used (numaPTE's
     locality argument applied to the simulator's own hot path).  Accesses
     that stay on one page skip even the dense-table load; it mirrors an
     [entries] cell exactly, so every path that drops an entry must also
     drop the mirror.  Purely a host-speed device: a hit here costs the
     same simulated 0 ns as any ATC hit. *)
  mutable last_vpage : int;  (* -1 = empty *)
  mutable last_entry : Pmap.entry option;
}

let create ~proc =
  { atc_proc = proc; aspace = -1; entries = Flat.create (); last_vpage = -1; last_entry = None }

let proc t = t.atc_proc
let active_aspace t = if t.aspace < 0 then None else Some t.aspace

let clear_last t =
  t.last_vpage <- -1;
  t.last_entry <- None

let flush t =
  Flat.clear t.entries;
  clear_last t

let activate t ~aspace =
  if t.aspace = aspace then false
  else begin
    flush t;
    t.aspace <- aspace;
    true
  end

(* lint: allow epoch-soundness — teardown entry point with no in-library
   callers (tests and future kernels drop an ATC wholesale); emptying the
   ATC can only turn fast-path hits into declines, never admit a stale
   hit, so no epoch bump is needed for soundness. *)
let deactivate t =
  flush t;
  t.aspace <- -1

(* Both arms return the stored option cell — a hit never allocates. *)
let find t ~aspace ~vpage =
  if t.aspace <> aspace then None
  else if vpage = t.last_vpage then t.last_entry
  else begin
    match Flat.find t.entries vpage with
    | Some _ as hit ->
      t.last_vpage <- vpage;
      t.last_entry <- hit;
      hit
    | None -> None
  end

let load t ~vpage entry =
  if t.aspace < 0 then invalid_arg "Atc.load: no active address space";
  Flat.set t.entries vpage entry;
  t.last_vpage <- vpage;
  t.last_entry <- Some entry

let invalidate t ~aspace ~vpage =
  if t.aspace = aspace then begin
    Flat.remove t.entries vpage;
    if vpage = t.last_vpage then clear_last t
  end

let size t = Flat.length t.entries

(* Sanitizer hooks.  [peek] is [find] without the micro-ATC mirror update:
   the monitor must be able to ask "does this ATC still hold a translation?"
   without perturbing the state it is checking. *)
let peek t ~aspace ~vpage =
  if t.aspace <> aspace then None else Flat.find t.entries vpage

let iter f t = Flat.iter f t.entries

let check_faults t =
  if t.last_vpage < 0 then
    match t.last_entry with
    | None -> None
    | Some _ ->
      Some
        (Check.fault ~inv:"micro-atc-mirror" ~cite:"PR 1"
           "ATC of proc %d: mirror entry with no mirror vpage" t.atc_proc)
  else
    match t.last_entry, Flat.find t.entries t.last_vpage with
    | Some a, Some b when a == b -> None
    | None, _ ->
      Some
        (Check.fault ~inv:"micro-atc-mirror" ~cite:"PR 1"
           "ATC of proc %d: mirror vpage %d with no mirror entry" t.atc_proc t.last_vpage)
    | Some _, None ->
      Some
        (Check.fault ~inv:"micro-atc-mirror" ~cite:"PR 1"
           "ATC of proc %d: mirror caches vpage %d absent from the entry table" t.atc_proc
           t.last_vpage)
    | Some _, Some _ ->
      Some
        (Check.fault ~inv:"micro-atc-mirror" ~cite:"PR 1"
           "ATC of proc %d: mirror disagrees with the entry table for vpage %d" t.atc_proc
           t.last_vpage)
