(** Dense vpage-indexed tables (the flat storage behind {!Pmap}, {!Atc}
    and {!Cmap}).

    A table maps small non-negative integer keys — virtual page numbers —
    to values through a geometrically-grown dense array, so the steady-state
    lookup is one bounds check and one load.  [find] returns the {e stored}
    option cell, never a fresh [Some], so a hit allocates zero minor-heap
    words.  Keys outside [0, dense_limit) (negative, or a genuinely sparse
    address space) spill to a hash table whose values are pre-wrapped
    options, keeping even spill hits allocation-free. *)

type 'a t

val dense_limit : int
(** Keys in [0, dense_limit) use the dense array; others spill. *)

val create : unit -> 'a t

val find : 'a t -> int -> 'a option
(** The stored option cell — never freshly allocated on a hit. *)

val mem : 'a t -> int -> bool
val set : 'a t -> int -> 'a -> unit
(** Add or replace. *)

val remove : 'a t -> int -> unit
val clear : 'a t -> unit

val length : 'a t -> int
(** Number of bound keys, O(1). *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Dense keys in ascending order, then spill keys in hash order. *)

val dense_capacity : 'a t -> int
(** Current length of the dense prefix (for mirror structures that must
    grow in lockstep, e.g. {!Pmap}'s packed-entry array). *)
