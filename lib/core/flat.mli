(** Chunked vpage-indexed tables (the flat storage behind {!Pmap}, {!Atc}
    and {!Cmap}).

    A table maps non-negative integer keys — virtual page numbers — to
    values through a two-level array: an outer chunk directory grown
    geometrically, and fixed-size chunks ([chunk_size] entries) allocated
    on first touch.  Resident memory is therefore proportional to the
    {e touched} footprint, not the address-space span, which is what lets
    a GB-scale sparse address space cost kilobytes.  The steady-state
    lookup is two bounds checks and two loads; [find] returns the
    {e stored} option cell, never a fresh [Some], so a hit allocates zero
    minor-heap words.  Keys outside [0, dense_limit) (negative, or beyond
    the chunk-addressable span) spill to a hash table whose values are
    pre-wrapped options, keeping even spill hits allocation-free. *)

type 'a t

val dense_limit : int
(** Keys in [0, dense_limit) use the chunked arrays; others spill. *)

val chunk_bits : int
(** log2 of the chunk size: key [k] lives in chunk [k lsr chunk_bits]. *)

val chunk_size : int
(** Entries per chunk (= [1 lsl chunk_bits]); one chunk is the allocation
    granule of the table. *)

val chunk_mask : int
(** [chunk_size - 1]: key [k]'s slot within its chunk is
    [k land chunk_mask]. *)

val create : unit -> 'a t

val find : 'a t -> int -> 'a option
(** The stored option cell — never freshly allocated on a hit. *)

val mem : 'a t -> int -> bool
val set : 'a t -> int -> 'a -> unit
(** Add or replace.  First touch of a chunk allocates it. *)

val remove : 'a t -> int -> unit
(** Unbind a key.  A no-op on keys whose chunk was never touched —
    nothing is allocated. *)

val clear : 'a t -> unit
(** Drop every binding and release all chunks. *)

val length : 'a t -> int
(** Number of bound keys, O(1). *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Chunked keys in ascending order, then spill keys in hash order. *)

val chunk_count : 'a t -> int
(** Current length of the outer chunk directory (for mirror structures
    that must grow in lockstep, e.g. {!Pmap}'s packed-entry chunks). *)

val chunk_touched : 'a t -> int -> bool
(** Whether chunk [c] has been allocated (some key in
    [c * chunk_size, (c+1) * chunk_size) was set since the last
    [clear]). *)

val touched_chunks : 'a t -> int
(** Number of allocated chunks — the table's resident footprint in units
    of [chunk_size] cells. *)
