module Machine = Platinum_machine.Machine
module Config = Platinum_machine.Config
module Xbar = Platinum_machine.Xbar
module Procset = Platinum_machine.Procset
module Frame = Platinum_phys.Frame
module Phys_mem = Platinum_phys.Phys_mem
module Engine = Platinum_sim.Engine

(* Reusable per-caller result slot for the allocation-free word paths:
   [read_word_s] and friends write the latency here and return the bare
   value, so a steady-state hit builds no tuple, option or closure.  Not
   reentrant — one scratch per access stream. *)
type scratch = { mutable s_latency : int }

let make_scratch () = { s_latency = 0 }
let scratch_latency sc = sc.s_latency

type t = {
  machine : Machine.t;
  phys : Phys_mem.t;
  counters : Counters.t;
  policy : Policy.t;
  atcs : Atc.t array;
  active_aspace : int array;  (* per processor; -1 = none *)
  cmaps : (int, Cmap.t) Hashtbl.t;
  cpages : (int, Cpage.t) Hashtbl.t;
  mutable next_aspace : int;
  mutable next_cpage : int;
  mappings : (int, (Cmap.t * int) list ref) Hashtbl.t;  (* cpage id -> bindings *)
  mutable frozen_list : Cpage.t list;
  mutable fault_ctx : Fault.ctx option;
  mutable probe : Probe.t option;
  mutable in_daemon : bool;  (* a thaw_all (defrost) pass is running *)
  mutable freeze_hook : (now:int -> Cpage.t -> unit) option;  (* defrost daemon's *)
  mutable monitor : Check.monitor option;  (* the runtime invariant monitor *)
  scratch : scratch;  (* submit's own result slot for word transactions *)
  txn_scratch : Memtxn.scratch option;  (* pre-wrapped for [?scratch:] passing *)
  (* Fast-path invalidation epoch (DESIGN.md §4g): bumped whenever any
     translation, directory state, frozen bit or the monitor changes, so
     the coalescing layer's cached page probes die.  Coarse by design —
     correctness only needs "no stale eligibility survives", and these
     events are all off the hit path. *)
  mutable fp_epoch : int;
  fp_value : int ref;
      (* result slot for the fp_read/fp_rmw hit cores — a shared cell
         ({!fp_value_cell}) so the coalescer reads it without a call *)
}

let machine t = t.machine
let config t = Machine.config t.machine
let phys t = t.phys
let counters t = t.counters
let policy t = t.policy
let page_words t = Phys_mem.page_words t.phys

(* [Hashtbl.find] + exception match rather than [find_opt]: the cachable
   test on the read hit path lands here, and [find_opt] would allocate a
   [Some] per access. *)
let mappings_of t (page : Cpage.t) =
  match Hashtbl.find t.mappings page.Cpage.id with
  | r -> !r
  | exception Not_found -> []

(* --- the machine-wide invariant sweep (structured) --- *)

let check_faults t =
  let found = ref None in
  let keep f = if !found = None then found := Some f in
  let fail ?cpage ~inv ~cite fmt =
    Printf.ksprintf (fun detail -> keep { Check.inv; cite; detail; cpage }) fmt
  in
  Hashtbl.iter
    (fun _ (page : Cpage.t) ->
      (match Cpage.check_faults page with Ok () -> () | Error f -> keep f);
      (* Directory frames must be owned by this page. *)
      Cpage.iter_copies
        (fun f ->
          if Frame.owner f <> Some page.Cpage.id then
            fail ~cpage:page.Cpage.id ~inv:"directory-ownership" ~cite:"§2.3"
              "directory frame on module %d not owned by this page" (Frame.mem_module f))
        page;
      if page.Cpage.frozen && not (List.memq page t.frozen_list) then
        fail ~cpage:page.Cpage.id ~inv:"frozen-list-agreement" ~cite:"§4.2"
          "frozen but not on the frozen list")
    t.cpages;
  List.iter
    (fun (page : Cpage.t) ->
      if not page.Cpage.frozen then
        fail ~cpage:page.Cpage.id ~inv:"frozen-list-agreement" ~cite:"§4.2"
          "thawed page still on the frozen list")
    t.frozen_list;
  Hashtbl.iter (fun _ cm -> match Cmap.check_faults cm with Some f -> keep f | None -> ())
    t.cmaps;
  (* ATC consistency: the micro-ATC mirror, and the stale-translation
     property — every cached translation must be (physically) the live
     Pmap entry of the active address space. *)
  Array.iteri
    (fun p atc ->
      (match Atc.check_faults atc with Some f -> keep f | None -> ());
      match Atc.active_aspace atc with
      | None -> ()
      | Some aspace -> (
        match Hashtbl.find_opt t.cmaps aspace with
        | None ->
          fail ~inv:"stale-translation" ~cite:"§3.1" "ATC of proc %d caches unknown aspace %d"
            p aspace
        | Some cm ->
          let pmap = Cmap.pmap cm ~proc:p in
          Atc.iter
            (fun vpage e ->
              match Pmap.find pmap ~vpage with
              | Some e' when e' == e -> ()
              | Some _ ->
                fail ~inv:"stale-translation" ~cite:"§3.1"
                  "ATC of proc %d caches a superseded translation for vpage %d" p vpage
              | None ->
                fail ~inv:"stale-translation" ~cite:"§3.1"
                  "ATC of proc %d retains vpage %d with no Pmap entry" p vpage)
            atc))
    t.atcs;
  !found

let check_invariants t =
  match check_faults t with None -> Ok () | Some f -> Error (Check.render f)

(* Sanitizer plumbing.  [emit] funnels every protocol event to the user
   probe and, when the monitor is armed, into its replayable trace;
   [checkpoint] re-verifies the whole machine.  Both are a single [match]
   when the monitor is off, and no call site is on the ATC-hit hot path. *)
let emit t ~now ev =
  (match t.monitor with Some m -> Check.note m ~now (Check.Event ev) | None -> ());
  match t.probe with Some p -> p ~now ev | None -> ()

let checkpoint t ~now =
  match t.monitor with
  | None -> ()
  | Some m -> (
    match check_faults t with None -> () | Some f -> Check.raise_violation m ~now f)

(* Invalidate every cached fast-path eligibility probe (DESIGN.md §4g).
   Called from each protocol transition that can change a page's
   translation, rights, directory state or frozen bit — including the
   shootdown-bearing paths (unbind, thaw, collapse) and every fault
   resolution — plus monitor arming, which must force all traffic back
   onto the monitored full path. *)
let fp_bump t = t.fp_epoch <- t.fp_epoch + 1

let fp_epoch t = t.fp_epoch

(* A frozen page must have exactly one backing copy (§4.2: "there can only
   be one physical page backing a frozen Cpage").  A replica can slip in
   between an invalidation and the next miss when fault-handling latency
   crosses the t1 boundary mid-operation; in that case the page is being
   read-shared successfully and freezing is declined — the caller's remote
   mapping is still installed and harmless. *)
let freeze_page t ~now (page : Cpage.t) =
  if (not page.Cpage.frozen) && Cpage.ncopies page = 1 then begin
    fp_bump t;
    page.Cpage.frozen <- true;
    page.Cpage.stats.Cpage.freezes <- page.Cpage.stats.Cpage.freezes + 1;
    page.Cpage.stats.Cpage.was_frozen <- true;
    t.counters.Counters.freezes <- t.counters.Counters.freezes + 1;
    t.frozen_list <- page :: t.frozen_list;
    page.Cpage.frozen_at <- now;
    emit t ~now (Probe.Frozen { cpage = page.Cpage.id });
    (match t.freeze_hook with
    | None -> ()
    | Some f -> f ~now page);
    checkpoint t ~now
  end

let thaw_page t ~now (page : Cpage.t) =
  if page.Cpage.frozen then begin
    fp_bump t;
    page.Cpage.frozen <- false;
    page.Cpage.stats.Cpage.thaws <- page.Cpage.stats.Cpage.thaws + 1;
    t.counters.Counters.thaws <- t.counters.Counters.thaws + 1;
    t.frozen_list <- List.filter (fun p -> p != page) t.frozen_list;
    (* Invalidate every translation so the next access faults and may
       replicate or migrate the page.  The daemon's own work is charged to
       the page's home processor.  This is not a *protocol* invalidation:
       it does not update [last_protocol_inval]. *)
    let daemon_proc = page.Cpage.home in
    let r =
      Shootdown.run ?monitor:t.monitor ~machine:t.machine ~counters:t.counters ~atcs:t.atcs
        ~now ~initiator:daemon_proc ~mappings:(mappings_of t page)
        ~directive:Cmap.Invalidate ~spare:None ()
    in
    (* The daemon also drops its initiator-side bookkeeping onto its own
       processor. *)
    Machine.add_penalty t.machine ~proc:daemon_proc r.Shootdown.latency;
    (* Clear any surviving refmask bits (the initiator slot). *)
    List.iter
      (fun (cmap, vpage) ->
        match Cmap.find cmap ~vpage with
        | None -> ()
        | Some ce ->
          Procset.iter
            (fun p ->
              Pmap.remove (Cmap.pmap cmap ~proc:p) ~vpage;
              Atc.invalidate t.atcs.(p) ~aspace:(Cmap.aspace cmap) ~vpage)
            ce.Cmap.refmask;
          ce.Cmap.refmask <- Procset.empty)
      (mappings_of t page);
    page.Cpage.write_mapped <- false;
    Cpage.sync_state page;
    page.Cpage.last_thaw_at <- now;
    emit t ~now (Probe.Thawed { cpage = page.Cpage.id; by_daemon = t.in_daemon });
    checkpoint t ~now
  end

let thaw_all t ~now =
  t.in_daemon <- true;
  List.iter (fun page -> thaw_page t ~now page) t.frozen_list;
  t.in_daemon <- false

let fault_ctx t =
  match t.fault_ctx with
  | Some c -> c
  | None ->
    let hooks = { Policy.freeze = (fun ~now p -> freeze_page t ~now p);
                  thaw = (fun ~now p -> thaw_page t ~now p) }
    in
    let c =
      {
        Fault.machine = t.machine;
        phys = t.phys;
        counters = t.counters;
        atcs = t.atcs;
        policy = t.policy;
        hooks;
        mappings_of = (fun page -> mappings_of t page);
        (* When the monitor is armed, every probe event the fault handler
           emits is also recorded into the replayable trace. *)
        probe =
          (fun () ->
            match t.monitor with
            | None -> t.probe
            | Some m ->
              Some
                (fun ~now ev ->
                  Check.note m ~now (Check.Event ev);
                  match t.probe with None -> () | Some p -> p ~now ev));
        monitor = (fun () -> t.monitor);
      }
    in
    t.fault_ctx <- Some c;
    c

let create machine ~engine:_ ~policy ?(frames_per_module = 1024) () =
  let config = Machine.config machine in
  let nprocs = config.Config.nprocs in
  {
    machine;
    phys =
      Phys_mem.create ~modules:nprocs ~frames_per_module
        ~page_words:config.Config.page_words;
    counters = Counters.create ();
    policy;
    atcs = Array.init nprocs (fun proc -> Atc.create ~proc);
    active_aspace = Array.make nprocs (-1);
    cmaps = Hashtbl.create 8;
    cpages = Hashtbl.create 1024;
    next_aspace = 0;
    next_cpage = 0;
    mappings = Hashtbl.create 1024;
    frozen_list = [];
    fault_ctx = None;
    probe = None;
    in_daemon = false;
    freeze_hook = None;
    (* PLATINUM_CHECK=1 arms the coherence sanitizer at construction. *)
    monitor = (if Check.env_enabled () then Some (Check.create_monitor ()) else None);
    scratch = make_scratch ();
    txn_scratch = Some (Memtxn.make_scratch ());
    fp_epoch = 0;
    fp_value = ref 0;
  }

let new_aspace t =
  let id = t.next_aspace in
  t.next_aspace <- id + 1;
  let cm = Cmap.create ~aspace:id ~nprocs:(Machine.nprocs t.machine) in
  Hashtbl.replace t.cmaps id cm;
  cm

let cmap t ~aspace =
  match Hashtbl.find_opt t.cmaps aspace with
  | Some cm -> cm
  | None -> invalid_arg (Printf.sprintf "Coherent.cmap: unknown address space %d" aspace)

let new_cpage t ?home ?label () =
  let id = t.next_cpage in
  t.next_cpage <- id + 1;
  (* Kernel metadata is decentralized: home modules are spread round-robin. *)
  let home = match home with Some h -> h | None -> id mod Machine.nprocs t.machine in
  let page = Cpage.create ~id ~home ?label () in
  Hashtbl.replace t.cpages id page;
  page

let bind t cm ~vpage page rights =
  fp_bump t;
  ignore (Cmap.bind cm ~vpage page rights);
  let r =
    match Hashtbl.find_opt t.mappings page.Cpage.id with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.mappings page.Cpage.id r;
      r
  in
  r := (cm, vpage) :: !r;
  checkpoint t ~now:0

let unbind t ~now cm ~vpage =
  match Cmap.find cm ~vpage with
  | None -> 0
  | Some ce ->
    fp_bump t;
    let page = ce.Cmap.cpage in
    let r =
      Shootdown.run ?monitor:t.monitor ~machine:t.machine ~counters:t.counters ~atcs:t.atcs
        ~now ~initiator:0 ~mappings:[ (cm, vpage) ] ~directive:Cmap.Invalidate ~spare:None ()
    in
    Procset.iter
      (fun p ->
        Pmap.remove (Cmap.pmap cm ~proc:p) ~vpage;
        Atc.invalidate t.atcs.(p) ~aspace:(Cmap.aspace cm) ~vpage)
      ce.Cmap.refmask;
    ce.Cmap.refmask <- Procset.empty;
    Cmap.unbind cm ~vpage;
    (match Hashtbl.find_opt t.mappings page.Cpage.id with
    | None -> ()
    | Some lst -> lst := List.filter (fun (c, v) -> not (c == cm && v = vpage)) !lst);
    (* If nothing maps the page it keeps its copies (the memory object
       still owns the data); translations are simply gone. *)
    page.Cpage.write_mapped <- false;
    Cpage.sync_state page;
    checkpoint t ~now;
    r.Shootdown.latency

let activate t ~now:_ ~proc ~aspace =
  if t.active_aspace.(proc) = aspace then 0
  else begin
    fp_bump t;
    let prev = t.active_aspace.(proc) in
    if prev >= 0 then begin
      match Hashtbl.find_opt t.cmaps prev with
      | Some old -> Cmap.set_active old ~proc false
      | None -> ()
    end;
    t.active_aspace.(proc) <- aspace;
    let cm = cmap t ~aspace in
    Cmap.set_active cm ~proc true;
    ignore (Atc.activate t.atcs.(proc) ~aspace);
    (* The §7 caches are virtually indexed: flush on space switch. *)
    (match Machine.cache t.machine ~proc with
    | Some c -> Platinum_machine.Cache.flush c
    | None -> ());
    (config t).Config.aspace_activate_ns
  end

let translate t ~now ~proc ~cmap:cm ~vpage ~write =
  let aspace = Cmap.aspace cm in
  let act = activate t ~now ~proc ~aspace in
  let atc = t.atcs.(proc) in
  match Atc.find atc ~aspace ~vpage with
  | Some e when (not write) || e.Pmap.write_ok -> (e, act)
  | _ -> (
    match Pmap.find (Cmap.pmap cm ~proc) ~vpage with
    | Some e when (not write) || e.Pmap.write_ok ->
      Atc.load atc ~vpage e;
      t.counters.Counters.atc_reloads <- t.counters.Counters.atc_reloads + 1;
      (e, act + (config t).Config.atc_reload_ns)
    | _ ->
      (match t.monitor with
      | None -> ()
      | Some m -> Check.note m ~now (Check.Request { proc; aspace; vpage; write }));
      (* Any fault resolution may replicate, migrate, shoot down or
         freeze: cached fast-path probes are stale. *)
      fp_bump t;
      let entry, lat = Fault.handle (fault_ctx t) ~now:(now + act) ~proc ~cmap:cm ~vpage ~write in
      checkpoint t ~now:(now + act + lat);
      (entry, act + lat))

(* §7: "Almost all data is cachable.  Only modified Cpages that are mapped
   by remote processors cannot be cached."  The mapping walk is a plain
   top-level recursion: a [List.for_all] closure would be allocated on
   every cached read. *)
let rec only_holder_maps holder = function
  | [] -> true
  | (cm, vpage) :: rest -> (
    match Cmap.find cm ~vpage with
    | None -> only_holder_maps holder rest
    | Some ce ->
      Procset.subset ce.Cmap.refmask (Procset.singleton holder)
      && only_holder_maps holder rest)

let cachable t (page : Cpage.t) =
  match page.Cpage.state with
  | Cpage.Empty | Cpage.Present1 | Cpage.Present_plus -> true
  | Cpage.Modified ->
    let holder = Platinum_phys.Frame.mem_module (Cpage.any_copy page) in
    only_holder_maps holder (mappings_of t page)

(* --- the allocation-free word paths ---

   [finish_*] complete an access after translation.  The semantics (cache
   consultation, write-through invalidation, latency accounting) are
   byte-for-byte those of the seed's [chunk_cost], restructured so a
   steady-state hit — active aspace, ATC hit, sufficient rights — runs
   from [read_word_s]/[write_word_s] to the returned value without
   allocating a single minor-heap word: no options ([Atc.find]/[Cmap.find]
   return stored cells), no tuples (latency goes through the scratch), no
   closures (top-level functions, plain loops), no polymorphic-variant
   dispatch (the old [`Miss c] cache probe is inlined). *)

let page_of cm ~vpage =
  match Cmap.find cm ~vpage with
  | Some ce -> ce.Cmap.cpage
  | None -> assert false (* only called after a successful translation *)

let finish_read t (sc : scratch) ~now ~proc ~cm ~vpage ~vaddr ~l1 (e : Pmap.entry) =
  let cfg = config t in
  let frame = e.Pmap.frame in
  let lat =
    if
      Machine.caches_enabled t.machine
      && cachable t (page_of cm ~vpage)
    then begin
      let c = Machine.cache_exn t.machine ~proc in
      if Platinum_machine.Cache.lookup c ~addr:vaddr then cfg.Config.t_cache_hit
      else begin
        let l2 =
          Xbar.word_access ?inject:(Machine.inject t.machine) cfg (Machine.modules t.machine)
            ~now:(now + l1) ~proc ~mem_module:(Frame.mem_module frame) Xbar.Read
        in
        Platinum_machine.Cache.fill c ~addr:vaddr;
        l2
      end
    end
    else
      Xbar.word_access ?inject:(Machine.inject t.machine) cfg (Machine.modules t.machine)
        ~now:(now + l1) ~proc ~mem_module:(Frame.mem_module frame) Xbar.Read
  in
  sc.s_latency <- l1 + lat;
  Frame.get frame (vaddr mod page_words t)

(* Writes are write-through; other processors' cached copies of the word
   are invalidated in software (there is no snooping hardware, §7). *)
let after_write_inline t ~proc ~cm ~vpage ~vaddr =
  if Machine.caches_enabled t.machine then begin
    Machine.invalidate_cached_range_all t.machine ~addr:vaddr ~words:1;
    if cachable t (page_of cm ~vpage) then
      Platinum_machine.Cache.fill (Machine.cache_exn t.machine ~proc) ~addr:vaddr
  end

let finish_write t (sc : scratch) ~now ~proc ~cm ~vpage ~vaddr ~l1 (e : Pmap.entry) v =
  let cfg = config t in
  let frame = e.Pmap.frame in
  let l2 =
    Xbar.word_access ?inject:(Machine.inject t.machine) cfg (Machine.modules t.machine)
      ~now:(now + l1) ~proc ~mem_module:(Frame.mem_module frame) Xbar.Write
  in
  Frame.set frame (vaddr mod page_words t) v;
  after_write_inline t ~proc ~cm ~vpage ~vaddr;
  sc.s_latency <- l1 + l2

let finish_rmw t (sc : scratch) ~now ~proc ~cm ~vpage ~vaddr ~l1 (e : Pmap.entry) f =
  let cfg = config t in
  let frame = e.Pmap.frame in
  let off = vaddr mod page_words t in
  let l2 =
    Xbar.word_access ?inject:(Machine.inject t.machine) cfg (Machine.modules t.machine)
      ~now:(now + l1) ~proc ~mem_module:(Frame.mem_module frame) Xbar.Rmw
  in
  let old = Frame.get frame off in
  Frame.set frame off (f old);
  after_write_inline t ~proc ~cm ~vpage ~vaddr;
  sc.s_latency <- l1 + l2;
  old

let read_word_s t sc ~now ~proc ~cmap:cm ~vaddr =
  let vpage = vaddr / page_words t in
  let aspace = Cmap.aspace cm in
  if t.active_aspace.(proc) = aspace then
    match Atc.find t.atcs.(proc) ~aspace ~vpage with
    | Some e -> finish_read t sc ~now ~proc ~cm ~vpage ~vaddr ~l1:0 e
    | None ->
      let e, l1 = translate t ~now ~proc ~cmap:cm ~vpage ~write:false in
      finish_read t sc ~now ~proc ~cm ~vpage ~vaddr ~l1 e
  else
    let e, l1 = translate t ~now ~proc ~cmap:cm ~vpage ~write:false in
    finish_read t sc ~now ~proc ~cm ~vpage ~vaddr ~l1 e

let write_word_s t sc ~now ~proc ~cmap:cm ~vaddr v =
  let vpage = vaddr / page_words t in
  let aspace = Cmap.aspace cm in
  if t.active_aspace.(proc) = aspace then
    match Atc.find t.atcs.(proc) ~aspace ~vpage with
    | Some e when e.Pmap.write_ok -> finish_write t sc ~now ~proc ~cm ~vpage ~vaddr ~l1:0 e v
    | _ ->
      let e, l1 = translate t ~now ~proc ~cmap:cm ~vpage ~write:true in
      finish_write t sc ~now ~proc ~cm ~vpage ~vaddr ~l1 e v
  else
    let e, l1 = translate t ~now ~proc ~cmap:cm ~vpage ~write:true in
    finish_write t sc ~now ~proc ~cm ~vpage ~vaddr ~l1 e v

let rmw_word_s t sc ~now ~proc ~cmap:cm ~vaddr f =
  let vpage = vaddr / page_words t in
  let aspace = Cmap.aspace cm in
  if t.active_aspace.(proc) = aspace then
    match Atc.find t.atcs.(proc) ~aspace ~vpage with
    | Some e when e.Pmap.write_ok -> finish_rmw t sc ~now ~proc ~cm ~vpage ~vaddr ~l1:0 e f
    | _ ->
      let e, l1 = translate t ~now ~proc ~cmap:cm ~vpage ~write:true in
      finish_rmw t sc ~now ~proc ~cm ~vpage ~vaddr ~l1 e f
  else
    let e, l1 = translate t ~now ~proc ~cmap:cm ~vpage ~write:true in
    finish_rmw t sc ~now ~proc ~cm ~vpage ~vaddr ~l1 e f

(* --- the coalescing fast-path cores (DESIGN.md §4g) ---

   Hit-only variants of the [_s] word paths for the effect-boundary
   coalescer: they complete a word access if and only if it is a clean
   steady-state hit (active aspace, ATC entry, sufficient rights),
   returning its latency, and return [-1] otherwise — they never
   translate, never fault, never touch policy state.  A successful call
   charges exactly what the [_s] path's hit arm charges (the same
   [finish_*] core at the same [now]), with the value in [fp_value].

   Page-level eligibility (frozen bit, monitor, aspace residency) is
   checked once per page by [fp_page_ok] and cached by the caller against
   {!fp_epoch}; the per-word cores still re-verify the ATC hit so a stale
   cache can only decline, never mis-accept. *)

let fp_page_ok t ~proc ~cmap:cm ~vpage ~write =
  (match t.monitor with None -> true | Some _ -> false)
  && t.active_aspace.(proc) = Cmap.aspace cm
  && (match Atc.find t.atcs.(proc) ~aspace:(Cmap.aspace cm) ~vpage with
     | Some e -> (
       ((not write) || e.Pmap.write_ok)
       && match Cmap.find cm ~vpage with
          | Some ce -> not ce.Cmap.cpage.Cpage.frozen
          | None -> false)
     | None -> false)

let fp_read t ~now ~proc ~cmap:cm ~vpage ~vaddr =
  let aspace = Cmap.aspace cm in
  if t.active_aspace.(proc) = aspace then
    match Atc.find t.atcs.(proc) ~aspace ~vpage with
    | Some e ->
      t.fp_value := finish_read t t.scratch ~now ~proc ~cm ~vpage ~vaddr ~l1:0 e;
      t.scratch.s_latency
    | None -> -1
  else -1

let fp_write t ~now ~proc ~cmap:cm ~vpage ~vaddr v =
  let aspace = Cmap.aspace cm in
  if t.active_aspace.(proc) = aspace then
    match Atc.find t.atcs.(proc) ~aspace ~vpage with
    | Some e when e.Pmap.write_ok ->
      finish_write t t.scratch ~now ~proc ~cm ~vpage ~vaddr ~l1:0 e v;
      t.scratch.s_latency
    | _ -> -1
  else -1

let fp_rmw t ~now ~proc ~cmap:cm ~vpage ~vaddr f =
  let aspace = Cmap.aspace cm in
  if t.active_aspace.(proc) = aspace then
    match Atc.find t.atcs.(proc) ~aspace ~vpage with
    | Some e when e.Pmap.write_ok ->
      t.fp_value := finish_rmw t t.scratch ~now ~proc ~cm ~vpage ~vaddr ~l1:0 e f;
      t.scratch.s_latency
    | _ -> -1
  else -1

let fp_value_cell t = t.fp_value

(* The multi-word access path.  Memtxn.run drives the per-page chunk loop
   and the latency accumulation; this chunk_cost supplies the PLATINUM
   semantics: block and strided transfers bypass the word caches entirely
   (they are hardware block transfers, §7) but still make cached copies of
   the touched range stale.  Each chunk translates through {!translate} at
   the time it begins, so a fault raised mid-transaction is charged exactly
   as the unbatched per-word stream would charge it; the data plane of a
   chunk is one [Array.blit] against the frame. *)
let submit_block t ~now ~proc ~cmap:cm txn =
  let cfg = config t in
  let modules = Machine.modules t.machine in
  let pw = page_words t in
  let inj = Machine.inject t.machine in
  (* Latency of an n-word hardware transfer chunk under fault injection: an
     aborted transfer charges the partial run it burned, then is retried;
     the adversary is bounded — after [max_copy_retries] aborts the final
     attempt always completes, so a transaction never fails, it only takes
     longer.  Without a plane this is exactly one Xbar access. *)
  let block_xfer ~now ~mem_module kind ~words =
    match inj with
    | None -> Xbar.access cfg modules ~now ~proc ~mem_module kind ~words
    | Some i ->
      let extra = ref 0 in
      let rec go attempt =
        let aborted =
          if attempt >= Platinum_sim.Inject.max_copy_retries i then None
          else Platinum_sim.Inject.block_abort i ~words
        in
        match aborted with
        | None ->
          let l =
            Xbar.access ~inject:i cfg modules ~now:(now + !extra) ~proc ~mem_module kind
              ~words
          in
          if !extra > 0 then Platinum_sim.Inject.note_recovery i !extra;
          !extra + l
        | Some w ->
          extra :=
            !extra
            + Xbar.access ~inject:i cfg modules ~now:(now + !extra) ~proc ~mem_module kind
                ~words:w;
          Platinum_sim.Inject.note_copy_retry i;
          go (attempt + 1)
      in
      go 0
  in
  let chunk_cost ~now ~data (c : Memtxn.chunk) =
    let vaddr = c.Memtxn.c_vaddr in
    let vpage = vaddr / pw and off = vaddr mod pw in
    match txn with
    | Memtxn.Read _ | Memtxn.Write _ | Memtxn.Rmw _ ->
      assert false (* word transactions take the scratch path in [submit] *)
    | Memtxn.Block_read _ | Memtxn.Stride_read _ ->
      let entry, l1 = translate t ~now ~proc ~cmap:cm ~vpage ~write:false in
      let frame = entry.Pmap.frame in
      let l2 =
        block_xfer ~now:(now + l1) ~mem_module:(Frame.mem_module frame) Xbar.Read
          ~words:c.Memtxn.c_words
      in
      Frame.read_words frame ~off ~dst:data ~dst_off:c.Memtxn.c_index ~words:c.Memtxn.c_words;
      l1 + l2
    | Memtxn.Block_write _ | Memtxn.Stride_write _ ->
      let entry, l1 = translate t ~now ~proc ~cmap:cm ~vpage ~write:true in
      let frame = entry.Pmap.frame in
      let l2 =
        block_xfer ~now:(now + l1) ~mem_module:(Frame.mem_module frame) Xbar.Write
          ~words:c.Memtxn.c_words
      in
      Frame.write_words frame ~off ~src:data ~src_off:c.Memtxn.c_index ~words:c.Memtxn.c_words;
      (* Block writes bypass the caches but still make cached copies of
         the run stale. *)
      if Machine.caches_enabled t.machine then
        Machine.invalidate_cached_range_all t.machine ~addr:vaddr ~words:c.Memtxn.c_words;
      l1 + l2
  in
  Memtxn.run ~page_words:pw ~now ?scratch:t.txn_scratch txn ~chunk_cost

(* The one access path: word transactions go through the scratch fast
   cores (same semantics, no per-word allocation), multi-word transactions
   through the shared Memtxn chunk loop. *)
let submit t ~now ~proc ~cmap:cm txn =
  match txn with
  | Memtxn.Read { vaddr } ->
    let v = read_word_s t t.scratch ~now ~proc ~cmap:cm ~vaddr in
    (Memtxn.Word v, t.scratch.s_latency)
  | Memtxn.Write { vaddr; value } ->
    write_word_s t t.scratch ~now ~proc ~cmap:cm ~vaddr value;
    (Memtxn.Unit, t.scratch.s_latency)
  | Memtxn.Rmw { vaddr; f } ->
    let old = rmw_word_s t t.scratch ~now ~proc ~cmap:cm ~vaddr f in
    (Memtxn.Word old, t.scratch.s_latency)
  | Memtxn.Block_read _ | Memtxn.Block_write _ | Memtxn.Stride_read _ | Memtxn.Stride_write _
    -> submit_block t ~now ~proc ~cmap:cm txn

(* Single-op conveniences, kept for tests and callers that move one word. *)

let read_word t ~now ~proc ~cmap ~vaddr =
  let v = read_word_s t t.scratch ~now ~proc ~cmap ~vaddr in
  (v, t.scratch.s_latency)

let write_word t ~now ~proc ~cmap ~vaddr v =
  write_word_s t t.scratch ~now ~proc ~cmap ~vaddr v;
  t.scratch.s_latency

let rmw_word t ~now ~proc ~cmap ~vaddr f =
  let old = rmw_word_s t t.scratch ~now ~proc ~cmap ~vaddr f in
  (old, t.scratch.s_latency)

let block_read t ~now ~proc ~cmap ~vaddr ~len =
  match submit t ~now ~proc ~cmap (Memtxn.Block_read { vaddr; len }) with
  | Memtxn.Words out, lat -> (out, lat)
  | _ -> assert false

let block_write t ~now ~proc ~cmap ~vaddr data =
  snd (submit t ~now ~proc ~cmap (Memtxn.Block_write { vaddr; data }))

let set_probe t probe = t.probe <- probe
let set_freeze_hook t hook = t.freeze_hook <- hook

let daemon_thaw t ~now page =
  t.in_daemon <- true;
  thaw_page t ~now page;
  t.in_daemon <- false
type advice =
  | Advise_freeze
  | Advise_thaw
  | Advise_home of int

(* Collapse a page's directory to one copy, preferring module [keep_on]
   (allocating there if needed); shoots down every translation. *)
let collapse_to t ~now ~proc ~keep_on (page : Cpage.t) =
  fp_bump t;
  let lat = ref 0 in
  let cfg = config t in
  let chosen =
    match Cpage.local_copy page keep_on with
    | Some f -> Some f
    | None -> (
      match Phys_mem.alloc_local t.phys ~mem_module:keep_on ~cpage:page.Cpage.id with
      | None -> (if Cpage.ncopies page = 0 then None else Some (Cpage.any_copy page))
      | Some fresh ->
        lat := !lat + cfg.Config.alloc_map_remote_ns;
        let inj = Machine.inject t.machine in
        if Cpage.ncopies page = 0 then begin
          lat :=
            !lat
            + Xbar.zero_fill ?inject:inj cfg (Machine.modules t.machine) ~now:(now + !lat)
                ~dst:keep_on ~words:(page_words t);
          Frame.fill_zero fresh
        end
        else begin
          let src = Cpage.any_copy page in
          lat :=
            !lat
            + Xbar.block_copy ?inject:inj cfg (Machine.modules t.machine) ~now:(now + !lat)
                ~src:(Frame.mem_module src) ~dst:keep_on ~words:(page_words t);
          Frame.blit_from ~src ~dst:fresh
        end;
        Cpage.add_copy page fresh;
        Some fresh)
  in
  match chosen with
  | None -> !lat (* truly out of memory and no copies: nothing to do *)
  | Some keep ->
    let r =
      Shootdown.run ?monitor:t.monitor ~machine:t.machine ~counters:t.counters ~atcs:t.atcs
        ~now:(now + !lat) ~initiator:proc ~mappings:(mappings_of t page)
        ~directive:Cmap.Invalidate ~spare:None ()
    in
    lat := !lat + r.Shootdown.latency;
    List.iter
      (fun f ->
        if f != keep then begin
          Cpage.remove_copy page f;
          Phys_mem.free t.phys f;
          lat := !lat + cfg.Config.page_free_ns;
          t.counters.Counters.pages_freed <- t.counters.Counters.pages_freed + 1
        end)
      (Cpage.copies page);
    page.Cpage.write_mapped <- false;
    Cpage.sync_state page;
    !lat

let advise t ~now ~proc ~cmap:cm ~vpage advice =
  let sweep lat =
    checkpoint t ~now:(now + lat);
    lat
  in
  let centry =
    match Cmap.find cm ~vpage with
    | Some e -> e
    | None -> raise (Fault.Unmapped { aspace = Cmap.aspace cm; vpage })
  in
  let page = centry.Cmap.cpage in
  let cfg = config t in
  match advice with
  | Advise_thaw ->
    thaw_page t ~now page;
    sweep cfg.Config.map_existing_ns
  | Advise_freeze ->
    if page.Cpage.frozen then 0
    else begin
      let lat = collapse_to t ~now ~proc ~keep_on:page.Cpage.home page in
      freeze_page t ~now page;
      sweep (lat + cfg.Config.map_existing_ns)
    end
  | Advise_home m ->
    if m < 0 || m >= Machine.nprocs t.machine then invalid_arg "Coherent.advise: no such module";
    if Cpage.ncopies page = 1 && Cpage.has_copy_on page m then 0
    else sweep (collapse_to t ~now ~proc ~keep_on:m page)

let frozen_pages t = t.frozen_list
let iter_cpages f t = Hashtbl.iter (fun _ p -> f p) t.cpages
let n_cpages t = Hashtbl.length t.cpages

(* --- sanitizer access --- *)

let set_monitor t m =
  fp_bump t;
  t.monitor <- m
let monitor t = t.monitor
let atc t ~proc = t.atcs.(proc)
