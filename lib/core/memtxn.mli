(** Batched memory transactions: the one descriptor every access path of
    the simulator flows through.

    Application threads used to trap into the kernel once per word; every
    backend (the PLATINUM coherent memory, the bus-based UMA machine)
    duplicated the loop that walks an access, threads simulated time
    through it, and accumulates latency.  A {!t} describes a whole access
    — one word, a read-modify-write, a contiguous block, or a strided
    scatter/gather — and {!run} is the single cost-accounting routine both
    backends share.

    {b The batching invariant}: a transaction's simulated cost is the sum
    of its per-chunk costs, each charged at [now +] the latency accumulated
    so far — exactly what issuing the runs back-to-back unbatched would
    charge.  Grouping words into one transaction changes how much host
    work the simulator does per simulated word, never the simulated time. *)

type t =
  | Read of { vaddr : int }  (** one 32-bit word *)
  | Write of { vaddr : int; value : int }
  | Rmw of { vaddr : int; f : int -> int }
      (** atomic read-modify-write; the result carries the old value *)
  | Block_read of { vaddr : int; len : int }
      (** [len] consecutive words (a hardware block transfer: bypasses the
          per-processor word caches) *)
  | Block_write of { vaddr : int; data : int array }
  | Stride_read of { vaddr : int; count : int; elem_words : int; stride : int }
      (** [count] elements of [elem_words] consecutive words each, the
          k-th starting at [vaddr + k*stride]; charged like a block
          transfer over each contiguous run *)
  | Stride_write of { vaddr : int; data : int array; count : int; elem_words : int; stride : int }
      (** element [k] is [data.(k*elem_words .. (k+1)*elem_words - 1)] *)

type result =
  | Unit
  | Word of int  (** [Read]: the value; [Rmw]: the old value *)
  | Words of int array  (** [Block_read] / [Stride_read] *)

type kind =
  | Load
  | Store
  | Update

val kind : t -> kind
val is_write : t -> bool
(** Whether the transaction needs a write translation ([Store] or [Update]). *)

val data_words : t -> int
(** Words of application data the transaction moves. *)

val validate : t -> unit
(** Raises [Invalid_argument] on malformed shapes: negative lengths,
    [elem_words < 1], overlapping stride elements ([stride < elem_words]),
    or a strided write whose [data] length is not [count * elem_words]. *)

(** A maximal run of consecutive words that stays inside one page — the
    unit a backend translates and charges as a whole.  Generalizes the old
    [Coherent.block_loop] chunking to strided transactions.

    One chunk record is refilled per iteration (allocation-lean chunking);
    callbacks must read the fields immediately and never retain the
    record. *)
type chunk = {
  mutable c_vaddr : int;  (** first word address of the run *)
  mutable c_index : int;  (** position of the run in the transaction's data array *)
  mutable c_words : int;  (** length of the run *)
}

(** Reusable per-caller buffers: the chunk record the iteration refills and
    a one-word data buffer for word transactions.  With a scratch supplied,
    {!run} on a word transaction allocates only its result; without one it
    also allocates the chunk and the buffer.  Not reentrant — one scratch
    per concurrently running transaction stream. *)
type scratch

val make_scratch : unit -> scratch

val iter_chunks : ?scratch:scratch -> page_words:int -> t -> (chunk -> unit) -> unit
(** Chunks are visited in ascending address order (ascending element order
    for strided transactions); single-word transactions yield one chunk. *)

val iter_pages : page_words:int -> t -> (int -> unit) -> unit
(** The virtual pages the transaction touches, in chunk order, consecutive
    duplicates elided — what a VM layer must ensure is bound before the
    coherent layer runs. *)

val run :
  page_words:int ->
  now:int ->
  ?scratch:scratch ->
  t ->
  chunk_cost:(now:int -> data:int array -> chunk -> int) ->
  result * int
(** The shared cost-accounting loop.  Validates the transaction, allocates
    the result buffer, and calls [chunk_cost] once per chunk with the time
    at which that chunk begins ([now] plus the latency of every earlier
    chunk); [chunk_cost] performs the data movement against [data] (reads
    fill [data.(c_index ..)], writes consume it, an [Rmw] leaves the old
    value in [data.(0)]) and returns the chunk's latency.  Returns the
    assembled result and the total latency. *)

val pp : Format.formatter -> t -> unit
