module Procset = Platinum_machine.Procset

type centry = {
  cpage : Cpage.t;
  mutable vrights : Rights.t;
  mutable refmask : Procset.t;
}

type directive =
  | Restrict_to_read
  | Invalidate

type message = {
  msg_vpage : int;
  msg_directive : directive;
  mutable msg_targets : Procset.t;
}

type t = {
  aspace_id : int;
  entries : (int, centry) Hashtbl.t;
  mutable queue : message list;  (* newest first; order is irrelevant to targets *)
  mutable active_set : Procset.t;
  pmaps : Pmap.t array;
  mutable posted : int;
}

let create ~aspace ~nprocs =
  {
    aspace_id = aspace;
    entries = Hashtbl.create 256;
    queue = [];
    active_set = Procset.empty;
    pmaps = Array.init nprocs (fun proc -> Pmap.create ~proc);
    posted = 0;
  }

let aspace t = t.aspace_id
let pmap t ~proc = t.pmaps.(proc)
let active t = t.active_set

let set_active t ~proc flag =
  t.active_set <-
    (if flag then Procset.add proc t.active_set else Procset.remove proc t.active_set)

let find t ~vpage = Hashtbl.find_opt t.entries vpage

let bind t ~vpage cpage vrights =
  if Hashtbl.mem t.entries vpage then
    invalid_arg (Printf.sprintf "Cmap.bind: vpage %d already bound in aspace %d" vpage t.aspace_id);
  let e = { cpage; vrights; refmask = Procset.empty } in
  Hashtbl.replace t.entries vpage e;
  e

let unbind t ~vpage = Hashtbl.remove t.entries vpage
let iter f t = Hashtbl.iter f t.entries
let nbindings t = Hashtbl.length t.entries

let post t msg =
  t.queue <- msg :: t.queue;
  t.posted <- t.posted + 1

let complete t msg ~proc =
  msg.msg_targets <- Procset.remove proc msg.msg_targets;
  if Procset.is_empty msg.msg_targets then t.queue <- List.filter (fun m -> m != msg) t.queue

let pending_messages t = t.queue
let messages_posted t = t.posted

(* Aspace-level invariants: the reference masks and the per-processor
   Pmaps must tell the same story, and every installed translation must
   point into its page's directory with rights the page state permits.
   The reverse direction (a Pmap entry whose processor is missing from the
   refmask, or whose vpage is not bound at all) is exactly what a botched
   shootdown leaves behind — the NUMA analogue of a stale TLB entry. *)
let check_faults t =
  let fault = ref None in
  let fail ?cpage ~inv ~cite fmt =
    Printf.ksprintf
      (fun detail ->
        if !fault = None then fault := Some { Check.inv; cite; detail; cpage })
      fmt
  in
  Hashtbl.iter
    (fun vpage ce ->
      let page = ce.cpage in
      Procset.iter
        (fun p ->
          match Pmap.find t.pmaps.(p) ~vpage with
          | None ->
            fail ~cpage:page.Cpage.id ~inv:"refmask-pmap-agreement" ~cite:"§3.1"
              "aspace %d vpage %d: proc %d in refmask without a Pmap entry" t.aspace_id vpage p
          | Some e ->
            if not (List.memq e.Pmap.frame page.Cpage.copies) then
              fail ~cpage:page.Cpage.id ~inv:"translation-in-directory" ~cite:"§3.1/§3.2"
                "aspace %d vpage %d: proc %d maps a frame outside the directory" t.aspace_id
                vpage p
            else if e.Pmap.write_ok && not page.Cpage.write_mapped then
              fail ~cpage:page.Cpage.id ~inv:"write-flag-agreement" ~cite:"§3.2"
                "aspace %d vpage %d: proc %d holds a write translation on a non-write-mapped \
                 page"
                t.aspace_id vpage p
            else if e.Pmap.write_ok && Cpage.ncopies page > 1 then
              fail ~cpage:page.Cpage.id ~inv:"replicas-read-only" ~cite:"§3.2"
                "aspace %d vpage %d: write translation with %d copies" t.aspace_id vpage
                (Cpage.ncopies page))
        ce.refmask)
    t.entries;
  Array.iteri
    (fun p pmap ->
      Pmap.iter
        (fun vpage _e ->
          match Hashtbl.find_opt t.entries vpage with
          | None ->
            fail ~inv:"stale-translation" ~cite:"§3.1"
              "aspace %d: proc %d holds a translation for unbound vpage %d" t.aspace_id p vpage
          | Some ce ->
            if not (Procset.mem p ce.refmask) then
              fail ~cpage:ce.cpage.Cpage.id ~inv:"refmask-pmap-agreement" ~cite:"§3.1"
                "aspace %d vpage %d: proc %d holds a Pmap entry but is absent from the refmask"
                t.aspace_id vpage p)
        pmap)
    t.pmaps;
  !fault
