module Procset = Platinum_machine.Procset

type centry = {
  cpage : Cpage.t;
  mutable vrights : Rights.t;
  mutable refmask : Procset.t;
}

type directive =
  | Restrict_to_read
  | Invalidate

type message = {
  msg_vpage : int;
  msg_directive : directive;
  mutable msg_targets : Procset.t;
  mutable msg_done : bool;
}

(* Retraction used to rebuild the queue with [List.filter] every time a
   message's target mask emptied — O(queue length) per retract.  A retired
   message is now just flagged [msg_done] (O(1)) and physically dropped by
   a lazy compaction that runs only when retired messages are at least half
   the queue, so each message pays for its own removal: amortized O(1). *)
type t = {
  aspace_id : int;
  entries : centry Flat.t;
  mutable queue : message list;  (* newest first; may contain flagged-done messages *)
  mutable queue_len : int;  (* including flagged-done *)
  mutable queue_dead : int;  (* flagged-done still physically present *)
  mutable active_set : Procset.t;
  pmaps : Pmap.t array;
  mutable posted : int;
}

let create ~aspace ~nprocs =
  {
    aspace_id = aspace;
    entries = Flat.create ();
    queue = [];
    queue_len = 0;
    queue_dead = 0;
    active_set = Procset.empty;
    pmaps = Array.init nprocs (fun proc -> Pmap.create ~proc);
    posted = 0;
  }

let aspace t = t.aspace_id
let pmap t ~proc = t.pmaps.(proc)
let active t = t.active_set

let set_active t ~proc flag =
  t.active_set <-
    (if flag then Procset.add proc t.active_set else Procset.remove proc t.active_set)

let find t ~vpage = Flat.find t.entries vpage

let bind t ~vpage cpage vrights =
  if Flat.mem t.entries vpage then
    invalid_arg (Printf.sprintf "Cmap.bind: vpage %d already bound in aspace %d" vpage t.aspace_id);
  let e = { cpage; vrights; refmask = Procset.empty } in
  Flat.set t.entries vpage e;
  e

let unbind t ~vpage = Flat.remove t.entries vpage
let iter f t = Flat.iter f t.entries
let nbindings t = Flat.length t.entries

let post t msg =
  if msg.msg_done then invalid_arg "Cmap.post: message already retired";
  t.queue <- msg :: t.queue;
  t.queue_len <- t.queue_len + 1;
  t.posted <- t.posted + 1

let compact t =
  t.queue <- List.filter (fun m -> not m.msg_done) t.queue;
  t.queue_len <- t.queue_len - t.queue_dead;
  t.queue_dead <- 0

let complete t msg ~proc =
  msg.msg_targets <- Procset.remove proc msg.msg_targets;
  if Procset.is_empty msg.msg_targets && not msg.msg_done then begin
    msg.msg_done <- true;
    t.queue_dead <- t.queue_dead + 1;
    if 2 * t.queue_dead >= t.queue_len then compact t
  end

let pending_messages t =
  if t.queue_dead = 0 then t.queue else List.filter (fun m -> not m.msg_done) t.queue

let messages_posted t = t.posted

(* Aspace-level invariants: the reference masks and the per-processor
   Pmaps must tell the same story, and every installed translation must
   point into its page's directory with rights the page state permits.
   The reverse direction (a Pmap entry whose processor is missing from the
   refmask, or whose vpage is not bound at all) is exactly what a botched
   shootdown leaves behind — the NUMA analogue of a stale TLB entry. *)
let check_faults t =
  let fault = ref None in
  let fail ?cpage ~inv ~cite fmt =
    Printf.ksprintf
      (fun detail ->
        if !fault = None then fault := Some { Check.inv; cite; detail; cpage })
      fmt
  in
  Flat.iter
    (fun vpage ce ->
      let page = ce.cpage in
      Procset.iter
        (fun p ->
          match Pmap.find t.pmaps.(p) ~vpage with
          | None ->
            fail ~cpage:page.Cpage.id ~inv:"refmask-pmap-agreement" ~cite:"§3.1"
              "aspace %d vpage %d: proc %d in refmask without a Pmap entry" t.aspace_id vpage p
          | Some e ->
            if not (Cpage.mem_frame page e.Pmap.frame) then
              fail ~cpage:page.Cpage.id ~inv:"translation-in-directory" ~cite:"§3.1/§3.2"
                "aspace %d vpage %d: proc %d maps a frame outside the directory" t.aspace_id
                vpage p
            else if e.Pmap.write_ok && not page.Cpage.write_mapped then
              fail ~cpage:page.Cpage.id ~inv:"write-flag-agreement" ~cite:"§3.2"
                "aspace %d vpage %d: proc %d holds a write translation on a non-write-mapped \
                 page"
                t.aspace_id vpage p
            else if e.Pmap.write_ok && Cpage.ncopies page > 1 then
              fail ~cpage:page.Cpage.id ~inv:"replicas-read-only" ~cite:"§3.2"
                "aspace %d vpage %d: write translation with %d copies" t.aspace_id vpage
                (Cpage.ncopies page))
        ce.refmask)
    t.entries;
  Array.iteri
    (fun p pmap ->
      Pmap.iter
        (fun vpage _e ->
          match Flat.find t.entries vpage with
          | None ->
            fail ~inv:"stale-translation" ~cite:"§3.1"
              "aspace %d: proc %d holds a translation for unbound vpage %d" t.aspace_id p vpage
          | Some ce ->
            if not (Procset.mem p ce.refmask) then
              fail ~cpage:ce.cpage.Cpage.id ~inv:"refmask-pmap-agreement" ~cite:"§3.1"
                "aspace %d vpage %d: proc %d holds a Pmap entry but is absent from the refmask"
                t.aspace_id vpage p)
        pmap;
      (* The flat representation's own invariant: the packed mirror must
         track the entry table. *)
      match Pmap.check_faults pmap with
      | Some f -> if !fault = None then fault := Some f
      | None -> ())
    t.pmaps;
  (* Queue bookkeeping must agree with the queue itself. *)
  (if !fault = None then
     let dead = List.length (List.filter (fun m -> m.msg_done) t.queue) in
     if List.length t.queue <> t.queue_len || dead <> t.queue_dead then
       fail ~inv:"retired-message-accounting" ~cite:"PR 5"
         "aspace %d: queue holds %d messages (%d retired), counters say %d (%d)" t.aspace_id
         (List.length t.queue) dead t.queue_len t.queue_dead);
  !fault
