(** Coherent maps (Cmap): per-address-space coherency bookkeeping.

    A Cmap caches the composition of the VM system's virtual→object and
    object→coherent-page mappings.  It holds (§2.3):

    - a table of virtual-to-coherent page mappings (Cmap entries), each
      with the access rights and a {e reference mask} of the processors
      holding a virtual-to-physical translation in their Pmap;
    - a queue of Cmap messages describing recent restrictive changes;
    - a bit mask of processors with this address space active;
    - a private {!Pmap} per processor. *)

type centry = {
  cpage : Cpage.t;
  mutable vrights : Rights.t;  (** rights granted by the VM system *)
  mutable refmask : Platinum_machine.Procset.t;
      (** processors with a v→p translation for this page *)
}

type directive =
  | Restrict_to_read
  | Invalidate

type message = {
  msg_vpage : int;
  msg_directive : directive;
  mutable msg_targets : Platinum_machine.Procset.t;
      (** processors that still have to apply the change *)
  mutable msg_done : bool;
      (** retired (target mask emptied); the queue drops it lazily *)
}

type t

val create : aspace:int -> nprocs:int -> t

val aspace : t -> int
val pmap : t -> proc:int -> Pmap.t

val active : t -> Platinum_machine.Procset.t
val set_active : t -> proc:int -> bool -> unit

val find : t -> vpage:int -> centry option
val bind : t -> vpage:int -> Cpage.t -> Rights.t -> centry
(** Install a virtual-to-coherent mapping.  Raises if already bound. *)

val unbind : t -> vpage:int -> unit
val iter : (int -> centry -> unit) -> t -> unit
val nbindings : t -> int

(* --- message queue --- *)

val post : t -> message -> unit
(** Append a shootdown message.  The simulator applies changes eagerly (see
    {!Shootdown}), so the queue records protocol traffic: drained messages
    accumulate in [messages_posted]. *)

val complete : t -> message -> proc:int -> unit
(** Mark one target as having applied the message; the message retires
    (is flagged [msg_done]) when its target mask empties.  Retired
    messages are physically dropped by a lazy compaction that runs when
    they reach half the queue — amortized O(1) per retraction, where the
    seed rebuilt the whole queue each time. *)

val pending_messages : t -> message list
(** Live (non-retired) messages, newest first. *)

val messages_posted : t -> int

(* --- sanitizer hook --- *)

val check_faults : t -> Check.fault option
(** Aspace-level invariants, first violation wins: every refmask bit has a
    live Pmap entry and vice versa (refmask-pmap-agreement, §3.1), every
    translation points into its page's directory (translation-in-directory),
    a write translation implies the page is write-mapped with a single copy
    (write-flag-agreement / replicas-read-only, §3.2), no Pmap entry
    survives for an unbound vpage (stale-translation), each Pmap's packed
    mirror tracks its entry table (packed-mirror), and the message queue's
    length/retired counters agree with the queue
    (retired-message-accounting). *)
