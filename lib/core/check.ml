module Procset = Platinum_machine.Procset
module Frame = Platinum_phys.Frame
module Ring = Platinum_sim.Ring

(* --- page-level state and views --- *)

type page_state =
  | Empty
  | Present1
  | Present_plus
  | Modified

let state_to_string = function
  | Empty -> "empty"
  | Present1 -> "present1"
  | Present_plus -> "present+"
  | Modified -> "modified"

type page_view = {
  pv_id : int;
  pv_state : page_state;
  pv_copies : Frame.t list;
  pv_copy_mask : Procset.t;
  pv_write_mapped : bool;
  pv_frozen : bool;
}

let derived_state v =
  match v.pv_copies, v.pv_write_mapped with
  | [], _ -> Empty
  | [ _ ], true -> Modified
  | [ _ ], false -> Present1
  | _ :: _ :: _, _ -> Present_plus

(* --- structured violations --- *)

type fault = {
  inv : string;
  cite : string;
  detail : string;
  cpage : int option;
}

let fault ?cpage ~inv ~cite fmt =
  Printf.ksprintf (fun detail -> { inv; cite; detail; cpage }) fmt

let render f =
  Printf.sprintf "%s%s (%s): %s"
    (match f.cpage with Some id -> Printf.sprintf "cpage %d: " id | None -> "")
    f.inv f.cite f.detail

(* --- the page-level invariant catalogue --- *)

type page_invariant = {
  pi_name : string;
  pi_cite : string;
  pi_doc : string;
  pi_check : page_view -> string option;  (* [Some detail] = violated *)
}

let mask_of_copies copies =
  List.fold_left (fun acc f -> Procset.add (Frame.mem_module f) acc) Procset.empty copies

let page_invariants =
  [
    {
      pi_name = "mask-list-agreement";
      pi_cite = "§2.3";
      pi_doc = "the directory's bit mask names exactly the modules of its page list";
      pi_check =
        (fun v ->
          if Procset.equal (mask_of_copies v.pv_copies) v.pv_copy_mask then None
          else Some "copy mask disagrees with copy list");
    };
    {
      pi_name = "one-copy-per-module";
      pi_cite = "§2.3";
      pi_doc = "at most one backing page per memory module";
      pi_check =
        (fun v ->
          if List.length v.pv_copies = Procset.cardinal (mask_of_copies v.pv_copies) then None
          else Some "two copies share a memory module");
    };
    {
      pi_name = "state-agreement";
      pi_cite = "§3.2";
      pi_doc = "the stored state equals the state derived from directory and write flag";
      pi_check =
        (fun v ->
          let d = derived_state v in
          if v.pv_state = d then None
          else
            Some
              (Printf.sprintf "state %s but directory implies %s" (state_to_string v.pv_state)
                 (state_to_string d)));
    };
    {
      pi_name = "single-writer";
      pi_cite = "§3.2";
      pi_doc = "a write mapping implies exactly one physical copy (modified state)";
      pi_check =
        (fun v ->
          if v.pv_write_mapped && List.length v.pv_copies > 1 then
            Some
              (Printf.sprintf "write mapping coexists with %d copies" (List.length v.pv_copies))
          else None);
    };
    {
      pi_name = "frozen-single-copy";
      pi_cite = "§4.2";
      pi_doc = "a frozen page never replicates until defrosted";
      pi_check =
        (fun v ->
          if v.pv_frozen && List.length v.pv_copies > 1 then
            Some (Printf.sprintf "frozen page has %d copies" (List.length v.pv_copies))
          else None);
    };
    {
      pi_name = "replica-coherence";
      pi_cite = "§2.3/§3.2";
      pi_doc = "all read-only replicas are word-for-word identical";
      pi_check =
        (fun v ->
          match v.pv_copies with
          | [] | [ _ ] -> None
          | first :: rest ->
            if List.for_all (fun f -> Frame.equal_data first f) rest then None
            else Some "replica data differs between modules");
    };
  ]

let check_page v =
  let rec go = function
    | [] -> Ok ()
    | pi :: rest -> (
      match pi.pi_check v with
      | None -> go rest
      | Some detail ->
        Error { inv = pi.pi_name; cite = pi.pi_cite; detail; cpage = Some v.pv_id })
  in
  go page_invariants

(* --- the runtime monitor --- *)

type trace_entry =
  | Request of { proc : int; aspace : int; vpage : int; write : bool }
  | Event of Probe.event

let pp_trace_entry fmt = function
  | Request { proc; aspace; vpage; write } ->
    Format.fprintf fmt "request: proc %d aspace %d vpage %d %s" proc aspace vpage
      (if write then "write" else "read")
  | Event ev -> Probe.pp_event fmt ev

type monitor = { trace : (Platinum_sim.Time_ns.t * trace_entry) Ring.t }

type violation = {
  v_fault : fault;
  v_at : Platinum_sim.Time_ns.t;
  v_trace : (Platinum_sim.Time_ns.t * trace_entry) list;  (* oldest first *)
}

exception Violation of violation

let create_monitor ?(capacity = 128) () = { trace = Ring.create ~capacity }
let note m ~now entry = Ring.push m.trace (now, entry)
let trace m = Ring.to_list m.trace

let raise_violation m ~now f =
  raise (Violation { v_fault = f; v_at = now; v_trace = trace m })

let pp_violation fmt v =
  Format.fprintf fmt "@[<v>coherence invariant violated at t=%d: %s@,event prefix (%d entries):@,%a@]"
    v.v_at (render v.v_fault)
    (List.length v.v_trace)
    (Format.pp_print_list (fun fmt (t, e) -> Format.fprintf fmt "  [%d] %a" t pp_trace_entry e))
    v.v_trace

let violation_message v = Format.asprintf "%a" pp_violation v

let env_enabled () =
  match Sys.getenv_opt "PLATINUM_CHECK" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true
