(** Per-processor physical maps.

    In contrast with Mach's single shared Pmap per address space, PLATINUM
    gives *each processor* a private Pmap per address space (§3.1): a cache
    of the valid virtual-to-physical translations that processor is using —
    a working set, not the whole space.  Private Pmaps avoid the
    Mach shootdown races and let the initiator skip processors that never
    referenced a page. *)

type entry = {
  frame : Platinum_phys.Frame.t;
  mutable write_ok : bool;
}

type t

val create : proc:int -> t
val proc : t -> int

val find : t -> vpage:int -> entry option

val install : t -> vpage:int -> frame:Platinum_phys.Frame.t -> write_ok:bool -> entry
(** Add or replace the translation for [vpage]. *)

val remove : t -> vpage:int -> unit
val restrict : t -> vpage:int -> unit
(** Drop write permission, keeping the translation (the [Restrict_to_read]
    shootdown directive). *)

val clear : t -> unit
val size : t -> int
val iter : (int -> entry -> unit) -> t -> unit

(* --- packed fast probes --- *)

(* Entries live in a dense vpage-indexed table ({!Flat}); alongside it the
   Pmap keeps a packed mirror folding presence, the write bit and the frame
   coordinates into one immediate int per dense vpage.  [find] returns the
   stored entry cell (zero allocation on a hit); the probes below answer
   from the packed int without touching the boxed record at all. *)

val mem : t -> vpage:int -> bool
(** Is a translation installed?  One int load on the dense path. *)

val write_ok : t -> vpage:int -> bool
(** Does the installed translation permit writes?  [false] when absent. *)

(* --- sanitizer hook --- *)

val check_faults : t -> Check.fault option
(** The packed mirror must agree with the entry table, bit for bit, over
    the whole dense prefix (invariant [packed-mirror]). *)
