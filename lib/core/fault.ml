module Machine = Platinum_machine.Machine
module Config = Platinum_machine.Config
module Xbar = Platinum_machine.Xbar
module Procset = Platinum_machine.Procset
module Frame = Platinum_phys.Frame
module Phys_mem = Platinum_phys.Phys_mem

exception Unmapped of { aspace : int; vpage : int }
exception Protection_violation of { aspace : int; vpage : int; write : bool }
exception Out_of_physical_memory

type ctx = {
  machine : Machine.t;
  phys : Phys_mem.t;
  counters : Counters.t;
  atcs : Atc.t array;
  policy : Policy.t;
  hooks : Policy.hooks;
  mappings_of : Cpage.t -> (Cmap.t * int) list;
  probe : unit -> Probe.t option;
  monitor : unit -> Check.monitor option;
}

(* Allocation/mapping overhead depends on whether the Cpage metadata lives
   in the faulting processor's module — the paper's 0.23 ms vs 0.27 ms. *)
let alloc_map_cost (config : Config.t) (page : Cpage.t) ~proc =
  if page.Cpage.home = proc then config.alloc_map_local_ns else config.alloc_map_remote_ns

let free_copies ctx (page : Cpage.t) ~except =
  let config = Machine.config ctx.machine in
  let freed = ref 0 in
  (* [Cpage.copies] snapshots the directory (newest first, as the old cons
     list was ordered) — required, since the loop edits the slots. *)
  List.iter
    (fun f ->
      if f != except then begin
        Cpage.remove_copy page f;
        Phys_mem.free ctx.phys f;
        incr freed;
        ctx.counters.Counters.pages_freed <- ctx.counters.Counters.pages_freed + 1
      end)
    (Cpage.copies page);
  !freed * config.Config.page_free_ns

(* Prefer the copy on the page's home module for remote mappings, so frozen
   pages have a stable placement. *)
let choose_copy (page : Cpage.t) =
  match Cpage.local_copy page page.Cpage.home with
  | Some f -> f
  | None -> Cpage.any_copy page

let handle ctx ~now ~proc ~cmap ~vpage ~write =
  let config = Machine.config ctx.machine in
  let centry =
    match Cmap.find cmap ~vpage with
    | Some e -> e
    | None -> raise (Unmapped { aspace = Cmap.aspace cmap; vpage })
  in
  let allowed =
    if write then Rights.allows_write centry.Cmap.vrights
    else Rights.allows_read centry.Cmap.vrights
  in
  if not allowed then raise (Protection_violation { aspace = Cmap.aspace cmap; vpage; write });
  let page = centry.Cmap.cpage in
  let st = page.Cpage.stats in
  let emit ev = match ctx.probe () with None -> () | Some p -> p ~now ev in
  emit
    (if write then Probe.Write_fault { cpage = page.Cpage.id; proc }
     else Probe.Read_fault { cpage = page.Cpage.id; proc });
  if write then begin
    st.Cpage.write_faults <- st.Cpage.write_faults + 1;
    ctx.counters.Counters.write_faults <- ctx.counters.Counters.write_faults + 1;
    st.Cpage.ever_written <- true
  end
  else begin
    st.Cpage.read_faults <- st.Cpage.read_faults + 1;
    ctx.counters.Counters.read_faults <- ctx.counters.Counters.read_faults + 1
  end;
  let lat = ref config.Config.fault_entry_ns in
  let install frame ~write_ok =
    let pmap = Cmap.pmap cmap ~proc in
    let entry = Pmap.install pmap ~vpage ~frame ~write_ok in
    centry.Cmap.refmask <- Procset.add proc centry.Cmap.refmask;
    let atc = ctx.atcs.(proc) in
    if Atc.active_aspace atc = Some (Cmap.aspace cmap) then Atc.load atc ~vpage entry;
    if write_ok then page.Cpage.write_mapped <- true;
    Cpage.sync_state page;
    entry
  in
  let alloc_frame ?(first_touch = false) () =
    (* First-touch placement is local unless the policy scatters data
       round-robin across modules (the Uniform System baseline). *)
    let prefer =
      if first_touch && ctx.policy.Policy.scatter_placement then
        page.Cpage.id mod config.Config.nprocs
      else proc
    in
    match Phys_mem.alloc_preferring ctx.phys ~prefer ~cpage:page.Cpage.id with
    | Some f ->
      lat := !lat + alloc_map_cost config page ~proc;
      Some f
    | None -> None
  in
  let inj = Machine.inject ctx.machine in
  (* Copy the page into [dst]; [false] means the block transfer aborted
     repeatedly (fault injection) and the caller must degrade.  Each abort
     still charges the partial occupancy it burned before failing.  Without
     an attached plane this is exactly the single fault-free transfer. *)
  let block_copy_into ~dst =
    let src = Cpage.any_copy page in
    let words = Phys_mem.page_words ctx.phys in
    let uncontended = words * config.Config.t_block_word in
    let charge w =
      let clat =
        Xbar.block_copy ?inject:inj config (Machine.modules ctx.machine) ~now:(now + !lat)
          ~src:(Frame.mem_module src) ~dst:(Frame.mem_module dst) ~words:w
      in
      lat := !lat + clat;
      ctx.counters.Counters.copy_ns <- ctx.counters.Counters.copy_ns + clat;
      clat
    in
    let complete () =
      let clat = charge words in
      Frame.blit_from ~src ~dst;
      (* Queueing beyond the raw transfer is the paper's per-page "contention
         in the Cpage fault handler" measure. *)
      st.Cpage.fault_wait_ns <- st.Cpage.fault_wait_ns + (clat - uncontended)
    in
    match inj with
    | None ->
      complete ();
      true
    | Some inj ->
      let extra = ref 0 in
      let rec go attempt =
        match Platinum_sim.Inject.block_abort inj ~words with
        | None ->
          complete ();
          if !extra > 0 then Platinum_sim.Inject.note_recovery inj !extra;
          true
        | Some w ->
          extra := !extra + charge w;
          if attempt >= Platinum_sim.Inject.max_copy_retries inj then begin
            Platinum_sim.Inject.note_recovery inj !extra;
            false
          end
          else begin
            Platinum_sim.Inject.note_copy_retry inj;
            go (attempt + 1)
          end
      in
      go 0
  in
  (* Degradation after repeated aborts: abandon the destination frame and
     pin the page where it already lives by freezing it in place — the
     paper's own escape hatch for pages not worth moving (§4.2).  Freezing
     declines unless the directory is down to one copy, in which case the
     page simply stays remote-mapped. *)
  let abandon_frame frame =
    Phys_mem.free ctx.phys frame;
    ctx.counters.Counters.pages_freed <- ctx.counters.Counters.pages_freed + 1;
    lat := !lat + config.Config.page_free_ns
  in
  let shootdown directive ~spare =
    let r =
      Shootdown.run ?monitor:(ctx.monitor ()) ~machine:ctx.machine ~counters:ctx.counters
        ~atcs:ctx.atcs ~now:(now + !lat) ~initiator:proc ~mappings:(ctx.mappings_of page)
        ~directive ~spare ()
    in
    lat := !lat + r.Shootdown.latency;
    r.Shootdown.interrupted
  in
  let pw = Phys_mem.page_words ctx.phys in
  let kill_cached_lines () =
    Machine.invalidate_cached_range_all ctx.machine ~addr:(vpage * pw) ~words:pw
  in
  let protocol_invalidate ~spare =
    let interrupted = shootdown Cmap.Invalidate ~spare in
    page.Cpage.last_protocol_inval <- now;
    st.Cpage.invalidations <- st.Cpage.invalidations + 1;
    (* The data is about to change or move: no cached line of this page
       may survive anywhere (§7 software-maintained coherency). *)
    kill_cached_lines ();
    emit (Probe.Invalidated { cpage = page.Cpage.id; interrupted })
  in
  let remote_map () =
    let frame = choose_copy page in
    lat := !lat + config.Config.map_existing_ns;
    st.Cpage.remote_maps <- st.Cpage.remote_maps + 1;
    ctx.counters.Counters.remote_maps <- ctx.counters.Counters.remote_maps + 1;
    emit (Probe.Remote_mapped { cpage = page.Cpage.id; proc; frozen = page.Cpage.frozen });
    (* A frozen page is mapped with the full rights the VM system permits,
       so it will fault no further (§3.3). *)
    let full_rights =
      page.Cpage.frozen && Rights.allows_write centry.Cmap.vrights && Cpage.ncopies page = 1
    in
    if write && Cpage.ncopies page > 1 then begin
      (* A write through a remote mapping still requires a single copy. *)
      protocol_invalidate ~spare:None;
      let kept = choose_copy page in
      lat := !lat + free_copies ctx page ~except:kept;
      install kept ~write_ok:true
    end
    else begin
      (* Granting a write mapping (or any remote mapping of a modified
         page) ends the page's cachable era. *)
      if write || full_rights || page.Cpage.state = Cpage.Modified then kill_cached_lines ();
      install frame ~write_ok:(write || full_rights)
    end
  in
  let result =
    match page.Cpage.state with
    | Cpage.Empty ->
      (* First touch: allocate locally and zero-fill. *)
      let frame =
        match alloc_frame ~first_touch:true () with
        | Some f -> f
        | None -> raise Out_of_physical_memory
      in
      let words = Phys_mem.page_words ctx.phys in
      lat :=
        !lat
        + Xbar.zero_fill ?inject:inj config (Machine.modules ctx.machine) ~now:(now + !lat)
            ~dst:(Frame.mem_module frame) ~words;
      Frame.fill_zero frame;
      kill_cached_lines ();
      ctx.counters.Counters.zero_fills <- ctx.counters.Counters.zero_fills + 1;
      Cpage.add_copy page frame;
      install frame ~write_ok:write
    | Cpage.Present1 | Cpage.Present_plus | Cpage.Modified -> (
      match Cpage.local_copy page proc with
      | Some frame when not write ->
        (* Read fault with a local copy (perhaps faulted in by another
           address space): find it through the inverted table and map it. *)
        lat := !lat + config.Config.map_existing_ns;
        install frame ~write_ok:false
      | Some frame ->
        if Cpage.ncopies page = 1 then begin
          (* present1 → modified: no invalidation, no reclamation (§3.2).
             Other processors may retain read mappings to this single
             copy; their cached lines must not survive the first write. *)
          kill_cached_lines ();
          lat := !lat + config.Config.map_existing_ns;
          install frame ~write_ok:true
        end
        else begin
          (* present+ → modified keeping the local copy: invalidate every
             other translation and reclaim the other physical pages. *)
          protocol_invalidate ~spare:(Some (cmap, vpage));
          lat := !lat + free_copies ctx page ~except:frame;
          lat := !lat + config.Config.map_existing_ns;
          install frame ~write_ok:true
        end
      | None -> (
        let kind = if write then Policy.Write_fault else Policy.Read_fault in
        let decision =
          if Cpage.ncopies page = 0 then Policy.Replicate
          else ctx.policy.Policy.decide ctx.hooks ~now kind page
        in
        match decision with
        | Policy.Remote_map -> remote_map ()
        | Policy.Replicate -> (
          match alloc_frame () with
          | None -> remote_map () (* physical memory exhausted: fall back *)
          | Some frame ->
            if not write then begin
              (* Replication.  A modified source first has its write
                 mappings restricted to read-only. *)
              if page.Cpage.state = Cpage.Modified then begin
                let interrupted = shootdown Cmap.Restrict_to_read ~spare:None in
                st.Cpage.restrictions <- st.Cpage.restrictions + 1;
                page.Cpage.write_mapped <- false;
                emit (Probe.Restricted { cpage = page.Cpage.id; interrupted })
              end;
              if block_copy_into ~dst:frame then begin
                Cpage.add_copy page frame;
                st.Cpage.replications <- st.Cpage.replications + 1;
                ctx.counters.Counters.replications <- ctx.counters.Counters.replications + 1;
                emit
                  (Probe.Replicated
                     {
                       cpage = page.Cpage.id;
                       to_module = Frame.mem_module frame;
                       copies = Cpage.ncopies page;
                     });
                install frame ~write_ok:false
              end
              else begin
                (* Repeated aborts: give up on the replica, freeze the page
                   where it lives and fall back to a remote mapping.  The
                   restriction above dropped the write flag without the
                   [install] that normally recomputes the directory state,
                   so resync before the freeze (the monitor checks there). *)
                abandon_frame frame;
                Cpage.sync_state page;
                ctx.hooks.freeze ~now:(now + !lat) page;
                (match inj with
                | Some i when page.Cpage.frozen -> Platinum_sim.Inject.note_degraded_freeze i
                | Some _ | None -> ());
                remote_map ()
              end
            end
            else begin
              (* Migration: invalidate all other translations, copy, free
                 the old copies. *)
              protocol_invalidate ~spare:None;
              if block_copy_into ~dst:frame then begin
                lat := !lat + free_copies ctx page ~except:frame;
                Cpage.add_copy page frame;
                st.Cpage.migrations <- st.Cpage.migrations + 1;
                ctx.counters.Counters.migrations <- ctx.counters.Counters.migrations + 1;
                emit (Probe.Migrated { cpage = page.Cpage.id; to_module = Frame.mem_module frame });
                install frame ~write_ok:true
              end
              else begin
                (* Repeated aborts: abandon the move, collapse to the copy
                   the page already has, freeze it in place and map that.
                   The invalidation above removed every mapping, so the
                   write flag and directory state must be resynced before
                   the freeze (the monitor checks there). *)
                abandon_frame frame;
                let kept = choose_copy page in
                lat := !lat + free_copies ctx page ~except:kept;
                page.Cpage.write_mapped <- false;
                Cpage.sync_state page;
                ctx.hooks.freeze ~now:(now + !lat) page;
                (match inj with
                | Some i when page.Cpage.frozen -> Platinum_sim.Inject.note_degraded_freeze i
                | Some _ | None -> ());
                remote_map ()
              end
            end)))
  in
  ctx.counters.Counters.fault_ns <- ctx.counters.Counters.fault_ns + !lat;
  (result, !lat)
