(** The coherence sanitizer's invariant catalogue and runtime monitor.

    This is the single source of truth for the safety invariants of the
    PLATINUM directory protocol.  It sits {e below} {!Cpage} on purpose:
    page-level invariants are expressed over an immutable {!page_view}
    snapshot, so [Cpage.check_invariants] (and the model checker, and the
    machine-wide sweep in {!Coherent}) all delegate to the one catalogue
    here instead of re-implementing it.

    Three consumers:
    - {!Cpage.check_invariants} / {!Coherent.check_invariants} — on-demand
      full checks (the tier-1 tests call these).
    - the runtime monitor — a {!monitor} installed on a {!Coherent}
      instance (automatically when [PLATINUM_CHECK=1]) re-verifies every
      invariant after each protocol transition and raises {!Violation}
      carrying the page, the failed invariant, and a bounded replayable
      prefix of recent requests and protocol events.
    - [Platinum_check.Mc] — the bounded model checker, which asserts the
      same invariants in every reachable state of small configurations.

    Monitor state is per-{!Coherent}-instance (no global mutable state), so
    domain-parallel sweeps can run checked simulations concurrently. *)

(* --- page-level state and views --- *)

(** The four protocol states (§3.2).  {!Cpage.state} re-exports this type,
    so [Cpage.Empty] and [Check.Empty] are the same constructor. *)
type page_state =
  | Empty
  | Present1
  | Present_plus
  | Modified

val state_to_string : page_state -> string

(** A read-only snapshot of the protocol-relevant fields of a coherent
    page.  Built by [Cpage.to_view]; building one is allocation-cheap (the
    copy list is shared, not copied). *)
type page_view = {
  pv_id : int;
  pv_state : page_state;  (** the {e stored} state *)
  pv_copies : Platinum_phys.Frame.t list;
  pv_copy_mask : Platinum_machine.Procset.t;
  pv_write_mapped : bool;
  pv_frozen : bool;
}

val derived_state : page_view -> page_state
(** The state implied by the directory and the write flag (§3.2). *)

(* --- structured violations --- *)

type fault = {
  inv : string;  (** invariant name, e.g. ["single-writer"] *)
  cite : string;  (** paper section the invariant comes from *)
  detail : string;
  cpage : int option;
}

val fault :
  ?cpage:int ->
  inv:string ->
  cite:string ->
  ('a, unit, string, fault) format4 ->
  'a
(** Printf-style [fault] constructor. *)

val render : fault -> string
(** ["cpage 3: single-writer (§3.2): write mapping coexists with 2 copies"] *)

(* --- the page-level invariant catalogue --- *)

type page_invariant = {
  pi_name : string;
  pi_cite : string;  (** paper section *)
  pi_doc : string;  (** one-line statement of the invariant *)
  pi_check : page_view -> string option;  (** [Some detail] when violated *)
}

val page_invariants : page_invariant list
(** The catalogue, checked in order: mask-list-agreement (§2.3),
    one-copy-per-module (§2.3), state-agreement (§3.2), single-writer
    (§3.2), frozen-single-copy (§4.2), replica-coherence (§2.3/§3.2). *)

val check_page : page_view -> (unit, fault) result
(** Run the catalogue; first violated invariant wins. *)

(* --- the runtime monitor --- *)

(** What the monitor records: the requests entering the fault path and the
    protocol events they caused — together, a replayable prefix for
    diagnosing a violation. *)
type trace_entry =
  | Request of { proc : int; aspace : int; vpage : int; write : bool }
  | Event of Probe.event

val pp_trace_entry : Format.formatter -> trace_entry -> unit

type monitor
(** Per-{!Coherent}-instance monitor state: a bounded ring of recent trace
    entries.  Deliberately not global — see the domain-safety lint. *)

type violation = {
  v_fault : fault;
  v_at : Platinum_sim.Time_ns.t;
  v_trace : (Platinum_sim.Time_ns.t * trace_entry) list;  (** oldest first *)
}

exception Violation of violation

val create_monitor : ?capacity:int -> unit -> monitor
(** [capacity] (default 128) bounds the retained trace prefix. *)

val note : monitor -> now:Platinum_sim.Time_ns.t -> trace_entry -> unit
val trace : monitor -> (Platinum_sim.Time_ns.t * trace_entry) list

val raise_violation : monitor -> now:Platinum_sim.Time_ns.t -> fault -> 'a
(** Raise {!Violation} carrying the monitor's current trace. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_message : violation -> string

val env_enabled : unit -> bool
(** [PLATINUM_CHECK] set to anything but [""]/["0"]: {!Coherent.create}
    installs a monitor automatically. *)
