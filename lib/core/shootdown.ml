module Machine = Platinum_machine.Machine
module Procset = Platinum_machine.Procset

type outcome = {
  latency : int;
  interrupted : int;
  deferred : int;
}

(* Test-only fault-injection knob, set and cleared by single-domain
   tests/the model checker's mutation mode.  Never read on the
   sharded-engine path either: Shard handlers reach Shootdown only through
   per-cell Machine instances the grid pool keeps domain-private, and no
   test flips this while a pool is live.
   lint: allow toplevel-state *)
let test_skip_refmask_clear = ref false

let run ?monitor ~machine ~counters ~atcs ~now ~initiator ~mappings ~directive ~spare () =
  let config = Machine.config machine in
  let t = ref now in
  let to_interrupt = ref Procset.empty in
  let deferred = ref 0 in
  (* (cmap, vpage, targets) actually processed — kept only when the
     sanitizer will verify completion below. *)
  let processed = ref [] in
  let apply_one (cmap : Cmap.t) vpage proc =
    let pmap = Cmap.pmap cmap ~proc in
    (match directive with
    | Cmap.Restrict_to_read -> Pmap.restrict pmap ~vpage
    | Cmap.Invalidate ->
      Pmap.remove pmap ~vpage;
      Atc.invalidate atcs.(proc) ~aspace:(Cmap.aspace cmap) ~vpage;
      (* §7 local caches are kept coherent in software: losing the
         translation also drops any cached lines of the page. *)
      let pw = config.Platinum_machine.Config.page_words in
      Machine.invalidate_cached_range machine ~proc ~addr:(vpage * pw) ~words:pw);
    (* The initiator applies its own update directly; remote holders are
       either interrupted now or will drain the queue on activation. *)
    if proc <> initiator then
      if Procset.mem proc (Cmap.active cmap) then to_interrupt := Procset.add proc !to_interrupt
      else incr deferred
  in
  List.iter
    (fun ((cmap : Cmap.t), vpage) ->
      match Cmap.find cmap ~vpage with
      | None -> ()
      | Some centry ->
        let is_spared p =
          match spare with
          | Some (sc, sv) -> sc == cmap && sv = vpage && p = initiator
          | None -> false
        in
        let targets = Procset.fold (fun p acc -> if is_spared p then acc else Procset.add p acc)
            centry.Cmap.refmask Procset.empty
        in
        if not (Procset.is_empty targets) then begin
          t := !t + config.Platinum_machine.Config.shootdown_post_ns;
          counters.Counters.messages <- counters.Counters.messages + 1;
          let msg =
            { Cmap.msg_vpage = vpage; msg_directive = directive; msg_targets = targets;
              msg_done = false }
          in
          Cmap.post cmap msg;
          Procset.iter
            (fun p ->
              apply_one cmap vpage p;
              Cmap.complete cmap msg ~proc:p)
            targets;
          (match directive with
          | Cmap.Invalidate ->
            if not !test_skip_refmask_clear then
              centry.Cmap.refmask <- Procset.diff centry.Cmap.refmask targets
          | Cmap.Restrict_to_read -> ());
          if monitor <> None then processed := (cmap, vpage, targets) :: !processed
        end)
    mappings;
  (* Interrupt each target once, serially; wait for all acknowledgements.
     Under fault injection an IPI may be dropped or delayed: the initiator
     arms an ack timeout (exponential backoff) and re-sends, bounded by the
     plane's retry cap — the adversary forces delivery on the final attempt,
     so the shootdown always completes and the refmask/ATC updates above
     are never left partially applied.  Retries extend only that target's
     ack timeline; with no plane attached the path is byte-identical to the
     fault-free model. *)
  let to_interrupt = Procset.remove initiator !to_interrupt in
  let inj = Machine.inject machine in
  let last_ack = ref !t in
  Procset.iter
    (fun p ->
      (* An IPI crossing the fabric pays the extra hop; on a flat machine
         the extra is zero and this is the paper's per-target cost. *)
      let ipi_ns =
        config.Platinum_machine.Config.ipi_send_ns
        + (match Platinum_machine.Config.hop config ~src:initiator ~dst:p with
          | Platinum_machine.Config.Cross -> config.Platinum_machine.Config.ipi_cross_extra
          | Platinum_machine.Config.Local | Platinum_machine.Config.Intra -> 0)
      in
      t := !t + ipi_ns;
      Machine.count_ipi machine;
      let busy = Machine.proc_busy_until machine ~proc:p in
      let ack =
        match inj with
        | None -> max !t busy + config.Platinum_machine.Config.sync_handler_ns
        | Some inj ->
          let base_ack = max !t busy + config.Platinum_machine.Config.sync_handler_ns in
          let rec attempt k send_done =
            match Platinum_sim.Inject.ipi_fault inj ~attempt:k with
            | `Drop ->
              (* Lost: wait out the ack timeout, then re-send. *)
              Platinum_sim.Inject.note_shootdown_retry inj;
              Machine.count_ipi machine;
              attempt (k + 1)
                (send_done + Platinum_sim.Inject.ack_timeout inj ~attempt:k + ipi_ns)
            | `Deliver -> max send_done busy + config.Platinum_machine.Config.sync_handler_ns
            | `Delay d ->
              max (send_done + d) busy + config.Platinum_machine.Config.sync_handler_ns
          in
          let ack = attempt 0 !t in
          if ack > base_ack then Platinum_sim.Inject.note_recovery inj (ack - base_ack);
          ack
      in
      Machine.add_penalty machine ~proc:p config.Platinum_machine.Config.sync_handler_ns;
      if ack > !last_ack then last_ack := ack)
    to_interrupt;
  let finish = max !t !last_ack in
  (* The sanitizer's stale-translation check (the NUMA analogue of a TLB
     consistency check): once the shootdown has completed, no targeted
     processor may retain a usable translation — an Invalidate leaves
     neither a Pmap entry nor an ATC entry behind, a Restrict leaves no
     write permission behind. *)
  (match monitor with
  | None -> ()
  | Some m ->
    List.iter
      (fun (cmap, vpage, targets) ->
        let aspace = Cmap.aspace cmap in
        Procset.iter
          (fun p ->
            match directive with
            | Cmap.Invalidate -> (
              (* [Pmap.mem] answers from the packed mirror — one int load. *)
              if Pmap.mem (Cmap.pmap cmap ~proc:p) ~vpage then
                Check.raise_violation m ~now:finish
                  (Check.fault ~inv:"stale-translation" ~cite:"§3.1"
                     "proc %d retains a Pmap entry for aspace %d vpage %d after an \
                      invalidating shootdown"
                     p aspace vpage);
              match Atc.peek atcs.(p) ~aspace ~vpage with
              | Some _ ->
                Check.raise_violation m ~now:finish
                  (Check.fault ~inv:"stale-translation" ~cite:"§3.1"
                     "ATC of proc %d retains aspace %d vpage %d after an invalidating \
                      shootdown"
                     p aspace vpage)
              | None -> ())
            | Cmap.Restrict_to_read ->
              if Pmap.write_ok (Cmap.pmap cmap ~proc:p) ~vpage then
                Check.raise_violation m ~now:finish
                  (Check.fault ~inv:"stale-translation" ~cite:"§3.1"
                     "proc %d retains write permission on aspace %d vpage %d after a \
                      restricting shootdown"
                     p aspace vpage))
          targets)
      !processed);
  let n_int = Procset.cardinal to_interrupt in
  counters.Counters.shootdowns <- counters.Counters.shootdowns + 1;
  counters.Counters.interrupts <- counters.Counters.interrupts + n_int;
  counters.Counters.deferred_updates <- counters.Counters.deferred_updates + !deferred;
  { latency = finish - now; interrupted = n_int; deferred = !deferred }
