module Frame = Platinum_phys.Frame
module Procset = Platinum_machine.Procset

type state = Check.page_state =
  | Empty
  | Present1
  | Present_plus
  | Modified

type stats = {
  mutable read_faults : int;
  mutable write_faults : int;
  mutable replications : int;
  mutable migrations : int;
  mutable invalidations : int;
  mutable restrictions : int;
  mutable freezes : int;
  mutable thaws : int;
  mutable remote_maps : int;
  mutable fault_wait_ns : int;
  mutable ever_written : bool;
  mutable was_frozen : bool;
}

type t = {
  id : int;
  home : int;
  mutable state : state;
  mutable copies : Frame.t list;
  mutable copy_mask : Procset.t;
  mutable write_mapped : bool;
  mutable last_protocol_inval : Platinum_sim.Time_ns.t;
  mutable frozen : bool;
  mutable frozen_at : Platinum_sim.Time_ns.t;
  mutable last_thaw_at : Platinum_sim.Time_ns.t;
  mutable adaptive_t2 : Platinum_sim.Time_ns.t;
  stats : stats;
  mutable label : string;
}

let never_invalidated = min_int / 4

let fresh_stats () =
  {
    read_faults = 0;
    write_faults = 0;
    replications = 0;
    migrations = 0;
    invalidations = 0;
    restrictions = 0;
    freezes = 0;
    thaws = 0;
    remote_maps = 0;
    fault_wait_ns = 0;
    ever_written = false;
    was_frozen = false;
  }

let create ~id ~home ?(label = "") () =
  {
    id;
    home;
    state = Empty;
    copies = [];
    copy_mask = Procset.empty;
    write_mapped = false;
    last_protocol_inval = never_invalidated;
    frozen = false;
    frozen_at = 0;
    last_thaw_at = never_invalidated;
    adaptive_t2 = 0;
    stats = fresh_stats ();
    label;
  }

let ncopies t = List.length t.copies
let has_copy_on t m = Procset.mem m t.copy_mask

let local_copy t m =
  if not (has_copy_on t m) then None
  else List.find_opt (fun f -> Frame.mem_module f = m) t.copies

let any_copy t =
  match t.copies with
  | [] -> invalid_arg "Cpage.any_copy: empty page"
  | f :: _ -> f

let add_copy t frame =
  let m = Frame.mem_module frame in
  if has_copy_on t m then
    invalid_arg (Printf.sprintf "Cpage.add_copy: module %d already backs cpage %d" m t.id);
  t.copies <- frame :: t.copies;
  t.copy_mask <- Procset.add m t.copy_mask

let remove_copy t frame =
  let m = Frame.mem_module frame in
  if not (List.memq frame t.copies) then
    invalid_arg (Printf.sprintf "Cpage.remove_copy: frame not in directory of cpage %d" t.id);
  t.copies <- List.filter (fun f -> f != frame) t.copies;
  t.copy_mask <- Procset.remove m t.copy_mask

(* The invariant catalogue lives in {!Check}; this module only snapshots
   itself into a view and delegates, so the runtime monitor, the model
   checker, and these on-demand checks can never drift apart. *)
let to_view t =
  {
    Check.pv_id = t.id;
    pv_state = t.state;
    pv_copies = t.copies;
    pv_copy_mask = t.copy_mask;
    pv_write_mapped = t.write_mapped;
    pv_frozen = t.frozen;
  }

let derived_state t = Check.derived_state (to_view t)

let sync_state t = t.state <- derived_state t

let state_to_string = Check.state_to_string

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

let check_faults t = Check.check_page (to_view t)
let check_invariants t = Result.map_error Check.render (check_faults t)

let pp fmt t =
  Format.fprintf fmt "cpage %d%s: %a, copies=%a%s%s" t.id
    (if t.label = "" then "" else Printf.sprintf " (%s)" t.label)
    pp_state t.state Procset.pp t.copy_mask
    (if t.write_mapped then ", write-mapped" else "")
    (if t.frozen then ", FROZEN" else "")
