module Frame = Platinum_phys.Frame
module Procset = Platinum_machine.Procset

type state = Check.page_state =
  | Empty
  | Present1
  | Present_plus
  | Modified

type stats = {
  mutable read_faults : int;
  mutable write_faults : int;
  mutable replications : int;
  mutable migrations : int;
  mutable invalidations : int;
  mutable restrictions : int;
  mutable freezes : int;
  mutable thaws : int;
  mutable remote_maps : int;
  mutable fault_wait_ns : int;
  mutable ever_written : bool;
  mutable was_frozen : bool;
}

(* The directory.  At most one backing frame per memory module (the
   protocol invariant the old list silently relied on), so the copy set is
   a frame slot per module indexed by the module number — the same index
   space as the [Procset.t] bit mask.  Add, remove and membership are one
   array access instead of the old list scans (cpage.ml:97-99 of the seed).

   [slot_seq] stamps each insertion: the protocol's replication source
   choice ([any_copy]) was "most recently added copy" when the directory
   was a cons list, and golden-trace determinism depends on preserving
   exactly that choice. *)
type t = {
  id : int;
  home : int;
  mutable state : state;
  mutable slots : Frame.t option array;  (* directory frame per module *)
  mutable slot_seq : int array;  (* insertion stamp per module; -1 = empty *)
  mutable next_seq : int;
  mutable ncopies : int;
  mutable copy_mask : Procset.t;
  mutable write_mapped : bool;
  mutable last_protocol_inval : Platinum_sim.Time_ns.t;
  mutable frozen : bool;
  mutable frozen_at : Platinum_sim.Time_ns.t;
  mutable last_thaw_at : Platinum_sim.Time_ns.t;
  mutable adaptive_t2 : Platinum_sim.Time_ns.t;
  stats : stats;
  mutable label : string;
}

let never_invalidated = min_int / 4

let fresh_stats () =
  {
    read_faults = 0;
    write_faults = 0;
    replications = 0;
    migrations = 0;
    invalidations = 0;
    restrictions = 0;
    freezes = 0;
    thaws = 0;
    remote_maps = 0;
    fault_wait_ns = 0;
    ever_written = false;
    was_frozen = false;
  }

let create ~id ~home ?(label = "") () =
  {
    id;
    home;
    state = Empty;
    slots = [||];
    slot_seq = [||];
    next_seq = 0;
    ncopies = 0;
    copy_mask = Procset.empty;
    write_mapped = false;
    last_protocol_inval = never_invalidated;
    frozen = false;
    frozen_at = 0;
    last_thaw_at = never_invalidated;
    adaptive_t2 = 0;
    stats = fresh_stats ();
    label;
  }

let ncopies t = t.ncopies
let has_copy_on t m = Procset.mem m t.copy_mask

let local_copy t m =
  if m >= 0 && m < Array.length t.slots then Array.unsafe_get t.slots m else None

(* The most recently added copy: what the head of the old cons list was.
   A top-level tail recursion over the slot index (no closure, no ref
   cells, no allocation) — this sits on the cachability test of the read
   hit path and the zero-alloc lint holds it there. *)
let rec best_slot seq m best best_seq =
  if m >= Array.length seq then best
  else if Array.unsafe_get seq m > best_seq then
    best_slot seq (m + 1) m (Array.unsafe_get seq m)
  else best_slot seq (m + 1) best best_seq

let any_copy t =
  if t.ncopies = 0 then invalid_arg "Cpage.any_copy: empty page";
  match t.slots.(best_slot t.slot_seq 0 (-1) (-1)) with
  | Some f -> f
  | None -> assert false

let mem_frame t frame =
  let m = Frame.mem_module frame in
  m >= 0 && m < Array.length t.slots
  && (match Array.unsafe_get t.slots m with Some f -> f == frame | None -> false)

let ensure_slots t m =
  let n = Array.length t.slots in
  if m >= n then begin
    let n' = max (m + 1) (max 4 (2 * n)) in
    let slots = Array.make n' None in
    let seq = Array.make n' (-1) in
    Array.blit t.slots 0 slots 0 n;
    Array.blit t.slot_seq 0 seq 0 n;
    t.slots <- slots;
    t.slot_seq <- seq
  end

let add_copy t frame =
  let m = Frame.mem_module frame in
  if has_copy_on t m then
    invalid_arg (Printf.sprintf "Cpage.add_copy: module %d already backs cpage %d" m t.id);
  ensure_slots t m;
  t.slots.(m) <- Some frame;
  t.slot_seq.(m) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.copy_mask <- Procset.add m t.copy_mask;
  t.ncopies <- t.ncopies + 1

let remove_copy t frame =
  let m = Frame.mem_module frame in
  if not (mem_frame t frame) then
    invalid_arg (Printf.sprintf "Cpage.remove_copy: frame not in directory of cpage %d" t.id);
  t.slots.(m) <- None;
  t.slot_seq.(m) <- -1;
  t.copy_mask <- Procset.remove m t.copy_mask;
  t.ncopies <- t.ncopies - 1

(* Newest-first, matching the old cons-list order (tests and the model
   checker fingerprint observable state through this). *)
let copies t =
  let acc = ref [] in
  for m = 0 to Array.length t.slots - 1 do
    match t.slots.(m) with
    | Some f -> acc := (t.slot_seq.(m), f) :: !acc
    | None -> ()
  done;
  List.map snd (List.sort (fun (a, _) (b, _) -> compare b a) !acc)

let iter_copies f t =
  for m = 0 to Array.length t.slots - 1 do
    match Array.unsafe_get t.slots m with
    | Some frame -> f frame
    | None -> ()
  done

(* The invariant catalogue lives in {!Check}; this module only snapshots
   itself into a view and delegates, so the runtime monitor, the model
   checker, and these on-demand checks can never drift apart. *)
let to_view t =
  {
    Check.pv_id = t.id;
    pv_state = t.state;
    pv_copies = copies t;
    pv_copy_mask = t.copy_mask;
    pv_write_mapped = t.write_mapped;
    pv_frozen = t.frozen;
  }

let derived_state t = Check.derived_state (to_view t)

let sync_state t = t.state <- derived_state t

let state_to_string = Check.state_to_string

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

(* The slot representation adds one invariant of its own: the copy counter
   must agree with the occupied slots (mask/list agreement is already in
   the catalogue, via the view). *)
let check_faults t =
  let view = to_view t in
  let occupied = List.length view.Check.pv_copies in
  if occupied <> t.ncopies then
    Error
      (Check.fault ~cpage:t.id ~inv:"directory-slot-agreement" ~cite:"PR 5"
         "cpage %d: copy counter %d disagrees with %d occupied directory slots" t.id
         t.ncopies occupied)
  else Check.check_page view

let check_invariants t = Result.map_error Check.render (check_faults t)

let pp fmt t =
  Format.fprintf fmt "cpage %d%s: %a, copies=%a%s%s" t.id
    (if t.label = "" then "" else Printf.sprintf " (%s)" t.label)
    pp_state t.state Procset.pp t.copy_mask
    (if t.write_mapped then ", write-mapped" else "")
    (if t.frozen then ", FROZEN" else "")
