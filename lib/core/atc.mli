(** Address-translation caches (the MC68851's ATC).

    One per processor; caches Pmap entries of the *currently active*
    address space.  Flushed on address-space switch, and entries are
    invalidated or restricted by the shootdown mechanism (§3.1).  The ATC
    shares [Pmap.entry] records with the Pmap, so a restriction applied to
    the Pmap entry is visible through the ATC too — what matters for the
    protocol is that stale *presence* is impossible, which invalidation
    handles. *)

type t

val create : proc:int -> t
val proc : t -> int

val active_aspace : t -> int option

val activate : t -> aspace:int -> bool
(** Make [aspace] current.  Returns [true] (and flushes) when this changed
    the active space. *)

val deactivate : t -> unit

val find : t -> aspace:int -> vpage:int -> Pmap.entry option
(** Hit only if [aspace] is the active one and the translation is cached. *)

val load : t -> vpage:int -> Pmap.entry -> unit
(** Cache a translation for the active address space. *)

val invalidate : t -> aspace:int -> vpage:int -> unit
(** Drop the cached translation if this ATC currently caches that space. *)

val flush : t -> unit
val size : t -> int

(* --- sanitizer hooks --- *)

val peek : t -> aspace:int -> vpage:int -> Pmap.entry option
(** {!find} without the micro-ATC mirror update: a read-only probe for the
    coherence sanitizer (checking must not perturb the checked state). *)

val iter : (int -> Pmap.entry -> unit) -> t -> unit
(** Iterate over cached (vpage, entry) translations of the active space. *)

val check_faults : t -> Check.fault option
(** The micro-ATC mirror (the PR 1 fast path) must mirror an [entries]
    slot exactly — same vpage, physically the same entry record. *)
