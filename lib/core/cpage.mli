(** Coherent pages: the unit of the PLATINUM data-coherency protocol.

    Each coherent page is backed by a *set* of physical pages in distinct
    memory modules, tracked by a directory (a module bit mask plus one
    frame slot per module, §2.3).  A Cpage is in one of four states (§3.2):

    - [Empty]: no physical pages, no translations.
    - [Present1]: exactly one physical page; every virtual-to-physical
      translation is restricted to read access.
    - [Present_plus]: two or more physical pages in different modules; all
      translations read-only.
    - [Modified]: one physical page; at least one translation allows
      writes.

    The state is stored explicitly (as in the kernel) but is fully
    determined by the directory and the write-mapping flag;
    [check_invariants] verifies agreement, along with replica data
    equality. *)

type state = Check.page_state =
  | Empty
  | Present1
  | Present_plus
  | Modified

(** Per-page instrumentation, mirroring the kernel's post-mortem report
    (§4.2): faults, a contention measure for the fault handler, and whether
    the replication policy froze the page. *)
type stats = {
  mutable read_faults : int;
  mutable write_faults : int;
  mutable replications : int;
  mutable migrations : int;
  mutable invalidations : int;  (** protocol invalidation events *)
  mutable restrictions : int;
  mutable freezes : int;
  mutable thaws : int;
  mutable remote_maps : int;
  mutable fault_wait_ns : int;  (** queueing observed inside the fault handler *)
  mutable ever_written : bool;
  mutable was_frozen : bool;  (** frozen at least once during the run *)
}

type t = {
  id : int;
  home : int;  (** memory module holding this entry's metadata *)
  mutable state : state;
  mutable slots : Platinum_phys.Frame.t option array;
      (** the directory: at most one backing frame per memory module,
          indexed by module number — O(1) add/remove/membership.  Use
          {!add_copy} / {!remove_copy} / {!copies}; never write directly. *)
  mutable slot_seq : int array;
      (** insertion stamp per slot (-1 = empty): {!any_copy} must keep
          choosing the most recently added copy, as the old cons list did *)
  mutable next_seq : int;
  mutable ncopies : int;  (** occupied slots, maintained by the editors *)
  mutable copy_mask : Platinum_machine.Procset.t;
      (** modules holding a backing page (the directory's bit mask) *)
  mutable write_mapped : bool;
      (** some translation grants write access *)
  mutable last_protocol_inval : Platinum_sim.Time_ns.t;
      (** most recent invalidation *by the coherency protocol*; defrost
          invalidations deliberately do not update this *)
  mutable frozen : bool;
  mutable frozen_at : Platinum_sim.Time_ns.t;  (** when the current freeze began *)
  mutable last_thaw_at : Platinum_sim.Time_ns.t;
  mutable adaptive_t2 : Platinum_sim.Time_ns.t;
      (** per-page thaw delay maintained by the adaptive defrost daemon;
          0 until first frozen *)
  stats : stats;
  mutable label : string;  (** what the application stored here, for reports *)
}

val never_invalidated : Platinum_sim.Time_ns.t
(** Initial [last_protocol_inval]: far enough in the past that a fresh page
    is always eligible for replication. *)

val create : id:int -> home:int -> ?label:string -> unit -> t

val fresh_stats : unit -> stats

val ncopies : t -> int
(** Occupied directory slots, O(1). *)

val has_copy_on : t -> int -> bool
(** [has_copy_on t m] — does module [m] back this page?  One bit test. *)

val local_copy : t -> int -> Platinum_phys.Frame.t option
(** Backing frame on the given module, if any.  One slot load, returning
    the stored cell — no allocation (the kernel uses the module's inverted
    page table for this, see {!Platinum_phys.Inverted_table}). *)

val any_copy : t -> Platinum_phys.Frame.t
(** The most recently added backing frame (the replication source choice
    the protocol has always made).  Raises [Invalid_argument] on an
    [Empty] page. *)

val mem_frame : t -> Platinum_phys.Frame.t -> bool
(** Is this very frame (physical identity) in the directory?  O(1). *)

val add_copy : t -> Platinum_phys.Frame.t -> unit
val remove_copy : t -> Platinum_phys.Frame.t -> unit

val copies : t -> Platinum_phys.Frame.t list
(** The directory as a list, most recently added first — the order the old
    cons-list representation exposed.  Allocates; for checks, reports and
    tests, not the access path. *)

val iter_copies : (Platinum_phys.Frame.t -> unit) -> t -> unit
(** Iterate the occupied slots in ascending module order, allocation-free.
    The callback must not edit the directory; snapshot with {!copies} when
    it does. *)

val derived_state : t -> state
(** The state implied by the directory and write flag. *)

val sync_state : t -> unit
(** Recompute [state] from the directory (call after directory edits). *)

val to_view : t -> Check.page_view
(** Snapshot the protocol-relevant fields for the {!Check} catalogue. *)

val check_faults : t -> (unit, Check.fault) result
(** Run the {!Check.page_invariants} catalogue on this page, plus the slot
    representation's own invariant: the copy counter must agree with the
    occupied slots ([directory-slot-agreement]). *)

val check_invariants : t -> (unit, string) result
(** {!check_faults} rendered to a message.  Verifies state/directory
    agreement, copy-mask/copy-list agreement, single-copy-per-module,
    frozen-single-copy, and data equality of replicas — delegating to the
    one catalogue in {!Check}. *)

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
