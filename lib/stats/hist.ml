(* HDR-style log-bucketed histogram.  Values are split as
   [bucket = significant_bits v - p] (0 when v fits in p bits) and
   [sub = v lsr bucket]; the flat bin index is [bucket * 2^p + sub].
   Bucket 0 is exact; every later bucket has 2^(p-1) live sub-buckets of
   width 2^bucket, so the relative bin width never exceeds 2^(1-p).  One
   [int array] covers the whole non-negative int range, which keeps
   [record] a pure index computation (no allocation, no branching on
   capacity) and makes [merge] a bucket-wise sum. *)

type t = {
  precision : int;  (* p: sub-bucket bits *)
  sub : int;  (* 2^p *)
  counts : int array;
  mutable count : int;
  mutable total : int;
  mutable min_v : int;  (* exact; max_int when empty *)
  mutable max_v : int;  (* exact; 0 when empty *)
}

let create ?(precision_bits = 7) () =
  if precision_bits < 1 || precision_bits > 14 then
    invalid_arg (Printf.sprintf "Hist.create: precision_bits %d not in [1, 14]" precision_bits);
  let sub = 1 lsl precision_bits in
  {
    precision = precision_bits;
    sub;
    (* buckets 0 .. 63 - p cover every non-negative OCaml int *)
    counts = Array.make ((64 - precision_bits) * sub) 0;
    count = 0;
    total = 0;
    min_v = max_int;
    max_v = 0;
  }

let precision_bits t = t.precision

(* Significant bits of a non-negative int; tail-recursive so the hot
   [record] path allocates nothing (no boxed loop counter). *)
let rec bits_above n acc = if n = 0 then acc else bits_above (n lsr 1) (acc + 1)

let index_of t v =
  if v < t.sub then v
  else begin
    let bucket = bits_above v 0 - t.precision in
    (bucket * t.sub) + (v lsr bucket)
  end

(* Inclusive upper bound of the values binned at [index]. *)
let bin_upper t index =
  let bucket = index / t.sub and sub = index mod t.sub in
  if bucket = 0 then sub else (((sub + 1) lsl bucket) - 1)

let record_n t v n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = index_of t v in
    t.counts.(i) <- t.counts.(i) + n;
    t.count <- t.count + n;
    t.total <- t.total + (n * v);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v 1
let count t = t.count
let min_value t = t.min_v
let max_value t = t.max_v
let total t = t.total
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let percentile t q =
  if t.count = 0 then 0
  else if q >= 1.0 then t.max_v
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
    let n = Array.length t.counts in
    let rec walk i cum =
      if i >= n then t.max_v
      else begin
        let cum = cum + t.counts.(i) in
        if cum >= rank then min (bin_upper t i) t.max_v else walk (i + 1) cum
      end
    in
    walk 0 0
  end

let p50 t = percentile t 0.50
let p95 t = percentile t 0.95
let p99 t = percentile t 0.99
let p999 t = percentile t 0.999

let equivalent_range t v =
  let v = if v < 0 then 0 else v in
  if v < t.sub then 1 else 1 lsl (bits_above v 0 - t.precision)

let merge ~into src =
  if into.precision <> src.precision then
    invalid_arg
      (Printf.sprintf "Hist.merge: precision mismatch (%d vs %d)" into.precision src.precision);
  Array.iteri (fun i c -> if c <> 0 then into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.count <- into.count + src.count;
  into.total <- into.total + src.total;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let copy t =
  {
    precision = t.precision;
    sub = t.sub;
    counts = Array.copy t.counts;
    count = t.count;
    total = t.total;
    min_v = t.min_v;
    max_v = t.max_v;
  }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.total <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let fnv_prime = 0x100000001b3L

let fingerprint t =
  let h = ref 0xcbf29ce484222325L in
  let mixin v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) fnv_prime in
  mixin t.precision;
  mixin t.count;
  mixin t.total;
  mixin t.min_v;
  mixin t.max_v;
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        mixin i;
        mixin c
      end)
    t.counts;
  Printf.sprintf "%016Lx" !h

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.0f p50=%d p95=%d p99=%d p99.9=%d max=%d" t.count (mean t)
    (p50 t) (p95 t) (p99 t) (p999 t) (max_value t)
