(** A protocol-event trace recorder built on {!Platinum_core.Probe}.

    Attach one to a coherent memory instance before a run; afterwards you
    get a timestamped timeline of replications, migrations, freezes and
    thaws — the "performance monitoring, analysis, and visualization"
    feedback loop of §9, in miniature. *)

type entry = {
  at : Platinum_sim.Time_ns.t;
  event : Platinum_core.Probe.event;
}

type t

val create : ?capacity:int -> unit -> t
(** A bounded recorder (default 100_000 entries); when full, the oldest
    entries are dropped and [dropped] counts them. *)

val attach : t -> Platinum_core.Coherent.t -> unit
(** Install this recorder as the instance's probe. *)

val entries : t -> entry list
(** Recorded entries, oldest first. *)

val length : t -> int
val dropped : t -> int
val clear : t -> unit

val fold : t -> ('a -> entry -> 'a) -> 'a -> 'a
(** [fold t f init] folds [f] over the entries oldest-first, without
    materializing a list; {!filter} and {!count} are built on it. *)

val filter : t -> (Platinum_core.Probe.event -> bool) -> entry list

val count : t -> (Platinum_core.Probe.event -> bool) -> int
(** Streaming: allocates no intermediate list. *)

val pp_timeline : ?limit:int -> Format.formatter -> t -> unit
(** Human-readable timeline (default at most 50 lines). *)
