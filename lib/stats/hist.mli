(** Log-bucketed latency histograms (HDR-style) for the serving workloads.

    A histogram covers the full non-negative [int] range with fixed
    relative precision: values are binned into power-of-two buckets, each
    split into [2^precision_bits] sub-buckets, so any recorded value [v]
    lands in a bin no wider than [v * 2^(1 - precision_bits)].  That makes
    the percentile extraction exact up to the bin width
    ({!equivalent_range}) while {!record} stays allocation-free — a pure
    index computation and an [int array] increment — and {!merge} is a
    bucket-wise sum, so per-shard (or per-tenant) histograms can be
    recorded independently and combined afterwards without losing
    anything.

    The serving experiment records one sample per completed request and
    reads p50/p95/p99/p99.9 off the merged result; the byte-identical
    {!fingerprint} is what the determinism tests compare across shard and
    domain widths. *)

type t

val create : ?precision_bits:int -> unit -> t
(** A fresh, empty histogram.  [precision_bits] (default 7, giving 128
    sub-buckets per power of two, i.e. better than 1.6% relative error)
    must be in [1, 14]. *)

val precision_bits : t -> int

val record : t -> int -> unit
(** Record one sample.  Negative samples clamp to 0.  Allocates nothing in
    steady state (asserted by the test suite via [Gc.minor_words]). *)

val record_n : t -> int -> int -> unit
(** [record_n t v n] records [n] occurrences of [v] in one increment. *)

val count : t -> int
(** Samples recorded so far. *)

val min_value : t -> int
(** Smallest sample recorded, exactly ([max_int] when empty). *)

val max_value : t -> int
(** Largest sample recorded, exactly (0 when empty). *)

val total : t -> int
(** Sum of all samples (for means; wraps only past [max_int] ns). *)

val mean : t -> float

val percentile : t -> float -> int
(** [percentile t q] for [q] in [0, 1]: an upper bound for the q-th
    sample in sorted order, exact to the containing bin's width.  0 when
    empty; [q >= 1] returns the exact recorded maximum. *)

val p50 : t -> int
val p95 : t -> int
val p99 : t -> int
val p999 : t -> int

val equivalent_range : t -> int -> int
(** The width of the bin the given value falls in — the resolution bound
    on {!percentile} around that value. *)

val merge : into:t -> t -> unit
(** Add every sample of the second histogram into [into].  Equivalent to
    having recorded the concatenation of both sample streams (the QCheck
    property in [test_serve.ml]).  Precisions must match
    ([Invalid_argument]). *)

val copy : t -> t
val clear : t -> unit

val fingerprint : t -> string
(** FNV-1a fold over the non-empty bins (index and count, in index order)
    plus the exact count/min/max/total — byte-identical across merge
    orders and shard/domain widths. *)

val pp : Format.formatter -> t -> unit
(** One line: count, mean, p50/p95/p99/p99.9, max. *)
