module Probe = Platinum_core.Probe
module Coherent = Platinum_core.Coherent
module Time_ns = Platinum_sim.Time_ns

type entry = {
  at : Time_ns.t;
  event : Probe.event;
}

type t = {
  capacity : int;
  buf : entry Queue.t;
  mutable ndropped : int;
}

let create ?(capacity = 100_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buf = Queue.create (); ndropped = 0 }

let record t ~now event =
  if Queue.length t.buf >= t.capacity then begin
    ignore (Queue.pop t.buf);
    t.ndropped <- t.ndropped + 1
  end;
  Queue.add { at = now; event } t.buf

let attach t coh = Coherent.set_probe coh (Some (fun ~now ev -> record t ~now ev))
let entries t = List.of_seq (Queue.to_seq t.buf)
let length t = Queue.length t.buf
let dropped t = t.ndropped

let clear t =
  Queue.clear t.buf;
  t.ndropped <- 0

(* The query paths stream over the ring buffer — a trace at capacity holds
   10^5 entries, and materializing an intermediate list per query was the
   stats layer's own hot-path tax. *)

let fold t f init = Queue.fold (fun acc e -> f acc e) init t.buf

let filter t pred =
  List.rev (fold t (fun acc e -> if pred e.event then e :: acc else acc) [])

let count t pred = fold t (fun n e -> if pred e.event then n + 1 else n) 0

let pp_timeline ?(limit = 50) fmt t =
  let n = Queue.length t.buf in
  Format.fprintf fmt "@[<v>protocol timeline (%d events%s):@," n
    (if t.ndropped > 0 then Printf.sprintf ", %d dropped" t.ndropped else "");
  Seq.iteri
    (fun i e ->
      if i < limit then
        Format.fprintf fmt "  %10s  %a@," (Time_ns.to_string e.at) Probe.pp_event e.event)
    (Queue.to_seq t.buf);
  if n > limit then Format.fprintf fmt "  ... %d more@," (n - limit);
  Format.fprintf fmt "@]"
