(** Request rings in coherent pages — the shared-memory transport.

    A ring is a fixed number of fixed-size slots laid out in coherent
    memory and operated on exclusively through {!Platinum_kernel.Api}
    word accesses ([read]/[write]/[rmw]), so the coherent memory system
    underneath is free to replicate, migrate or freeze the pages — and
    the kernel's coalescing fast path (DESIGN.md §4g) engages on the
    payload word runs exactly as it would for any application data.

    Producers claim slots with an atomic fetch-and-add on the ticket
    word (the Butterfly's atomic network operation, the same primitive
    the paper builds locks on); a full ring blocks the producer in a
    bounded-backoff poll loop — backpressure, never loss.  The single
    consumer pops tickets in strictly increasing order, so the ring is
    FIFO per ring even with many producers racing.  Call these only from
    inside simulated threads. *)

type t

val create : ?zone:Platinum_kernel.Eff.zone_id -> ?poll_ns:int -> slots:int -> slot_words:int -> unit -> t
(** Allocate and initialise a ring of [slots] slots of [slot_words]
    payload words each, in whole coherent pages of [zone].  [poll_ns]
    (default 2000) is the backoff between polls when a producer finds the
    ring full or the consumer finds it empty.  [slots] and [slot_words]
    must be positive. *)

val base : t -> int
(** Base virtual word address of the ring's pages (e.g. to freeze them
    mid-stream with {!Platinum_kernel.Api.advise}). *)

val words : t -> int
(** Total words occupied, header included (always a whole number of
    pages). *)

val slots : t -> int
val slot_words : t -> int

val push : t -> int array -> unit
(** Publish one request (exactly [slot_words] words;
    [Invalid_argument] otherwise).  Multi-producer safe: the slot is
    claimed by fetch-and-add.  Blocks (polling) while the ring is full —
    no request is ever dropped. *)

val push_spsc : t -> int array -> unit
(** Single-producer variant: the ticket is kept producer-side, skipping
    the claim [rmw].  Never mix with {!push} on the same ring. *)

val pop : t -> int array
(** Consume the oldest request (single consumer).  Blocks (polling) while
    the ring is empty.  Requests come out in exactly the ticket order
    they were claimed in. *)

val pending : t -> int
(** Tickets claimed but not yet consumed (reads the shared counters). *)
