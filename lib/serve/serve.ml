(* The serving workload: open-loop multi-tenant request traffic over the
   three §4.1 transports, measured with per-tenant latency histograms.

   Determinism: every random draw — arrival gaps and request arguments —
   comes from per-client generators split off one master Rng in fixed
   (tenant, client) order, and everything else is simulated time, so a run
   is a pure function of (params, config, seed, inject).  The fingerprint
   folds per-tenant counters, per-tenant histograms, the protocol counters
   and the fault plane's own fingerprint; test_serve.ml pins it across
   reruns, -j widths and (for the sharded mesh variant in Platinum_scale)
   shard/domain widths. *)

module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Inject = Platinum_sim.Inject
module Rng = Platinum_sim.Rng
module Arrivals = Platinum_sim.Arrivals
module Hist = Platinum_stats.Hist
module Runner = Platinum_runner.Runner
module Coherent = Platinum_core.Coherent
module Counters = Platinum_core.Counters
module Check = Platinum_core.Check
module Api = Platinum_kernel.Api
module Memsys = Platinum_kernel.Memsys

type transport = Ring | Rpc | Frozen

let transport_name = function Ring -> "ring" | Rpc -> "rpc" | Frozen -> "frozen"
let all_transports = [ Ring; Rpc; Frozen ]

type params = {
  tenants : int;
  clients_per_tenant : int;
  requests_per_client : int;
  process : Arrivals.process;
  work_words : int;
  service_ns : int;
  ring_slots : int;
  poll_ns : int;
}

let params ?(tenants = 4) ?(clients_per_tenant = 2) ?(requests_per_client = 25)
    ?(process = Arrivals.Poisson { rate_rps = 4_000.0 }) ?(work_words = 8)
    ?(service_ns = 2_000) ?(ring_slots = 8) ?(poll_ns = 2_000) () =
  if tenants <= 0 || clients_per_tenant <= 0 || requests_per_client < 0 then
    invalid_arg "Serve.params: tenants/clients/requests out of range";
  if work_words <= 0 then invalid_arg "Serve.params: work_words must be positive";
  {
    tenants;
    clients_per_tenant;
    requests_per_client;
    process;
    work_words;
    service_ns;
    ring_slots;
    poll_ns;
  }

type tenant_row = {
  tenant : int;
  home : int;
  submitted : int;
  completed : int;
  checksum : int;
  hist_fp : string;
}

type result = {
  transport : string;
  nodes : int;
  clusters : int;
  tenants : int;
  clients : int;
  offered_rps : float;
  submitted : int;
  completed : int;
  elapsed_ns : int;
  achieved_rps : float;
  mean_ns : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
  hist : Hist.t;
  faults : int;
  retries : int;
  per_tenant : tenant_row array;
  fingerprint : string;
}

(* Host-side per-tenant accumulator; mutated only from inside the (single
   host domain) simulation. *)
type tenant = {
  idx : int;
  t_home : int;
  state : int;  (* base vaddr of the tenant's state page *)
  t_ring : Ring.t option;
  t_hist : Hist.t;
  mutable t_submitted : int;
  mutable t_completed : int;
  mutable t_check : int;
}

(* One request's work against the tenant state: a word run (read + write
   per word — the shape the coalescing fast path drains inline when the
   page is a clean local hit), one atomic rmw on the request-counter
   word, and some pure compute. *)
let do_work ~state ~work_words ~service_ns arg =
  let acc = ref 0 in
  for i = 1 to work_words - 1 do
    let v = Api.read (state + i) in
    Api.write (state + i) (v + arg);
    acc := !acc + v
  done;
  let seq = Api.rmw state (fun v -> v + 1) in
  Api.compute service_ns;
  !acc + seq + arg

(* Request arguments are deterministic in (tenant, client, k): the
   checksum a transport reports is comparable across transports only in
   being reproducible, not in value (execution interleaving differs). *)
let request_arg ~tenant ~client ~k = 1 + (((tenant * 131) + (client * 17) + k) land 0xff)

(* The open-loop generator: arrival times are absolute, accumulated from
   the seeded gap stream, so a submission that blocked (ring backpressure,
   RPC retransmission sleep) delays later submissions but never stretches
   the schedule itself — a backlog forms and drains, as real open-loop
   load would. *)
let client_loop gen ~requests ~submit =
  let next_at = ref (Api.now ()) in
  for k = 1 to requests do
    next_at := !next_at + Arrivals.next_gap_ns gen;
    let now = Api.now () in
    if !next_at > now then Api.sleep (!next_at - now);
    (* The stamp is the scheduled arrival, not the submit instant: if a
       blocked submission backlogged this client, the wait counts as
       latency — the request "arrived" on schedule and queued. *)
    submit ~stamp:!next_at k
  done

let env_check () =
  match Sys.getenv_opt "PLATINUM_CHECK" with Some "1" -> true | _ -> false

let fnv_prime = 0x100000001b3L

let run ?config ?inject ?check ?(coalesce = true) ?(seed = 42L) (p : params) transport =
  let config = match config with Some c -> c | None -> Config.butterfly_plus () in
  let check = match check with Some c -> c | None -> env_check () in
  let nprocs = config.Config.nprocs in
  if nprocs < 2 then invalid_arg "Serve.run: need at least 2 processors";
  let setup = Runner.make ~config ?inject ~coalesce () in
  if check then Coherent.set_monitor setup.Runner.coherent (Some (Check.create_monitor ()));
  (* Stride tenant homes across the whole machine and scatter each
     tenant's clients around its home — on a hierarchical topology roughly
     half the client traffic then crosses clusters, so the fabric actually
     shows up in the tails (bunching everything into node 0's cluster
     would make every topology measure the same machine). *)
  let stride = max 1 (nprocs / p.tenants) in
  let home t = t * stride mod nprocs in
  let client_proc t c =
    let pr = (home t + 1 + (c * max 1 (stride / 2))) mod nprocs in
    if pr = home t then (pr + 1) mod nprocs else pr
  in
  (* Per-client arrival generators, split off in fixed order. *)
  let master = Rng.create seed in
  let gens =
    Array.init (p.tenants * p.clients_per_tenant) (fun _ ->
        Arrivals.create ~rng:(Rng.split master) p.process)
  in
  let gen ~tenant ~client = gens.((tenant * p.clients_per_tenant) + client) in
  let tenants = ref [||] in
  let main () =
    let ts =
      Array.init p.tenants (fun i ->
          let state = Api.alloc_pages 1 in
          let ring =
            match transport with
            | Ring ->
              Some (Ring.create ~poll_ns:p.poll_ns ~slots:p.ring_slots ~slot_words:2 ())
            | Rpc | Frozen -> None
          in
          {
            idx = i;
            t_home = home i;
            state;
            t_ring = ring;
            t_hist = Hist.create ();
            t_submitted = 0;
            t_completed = 0;
            t_check = 0;
          })
    in
    tenants := ts;
    let expected = p.clients_per_tenant * p.requests_per_client in
    let complete (t : tenant) ~stamp r =
      Hist.record t.t_hist (Api.now () - stamp);
      t.t_completed <- t.t_completed + 1;
      t.t_check <- t.t_check + (r land 0xffffff)
    in
    (* Per-transport servers and client submit functions. *)
    let server_tids = ref [] in
    let rpc_servers = ref [] in
    let submit_of (t : tenant) c =
      match transport with
      | Ring ->
        let ring = match t.t_ring with Some r -> r | None -> assert false in
        let push = if p.clients_per_tenant = 1 then Ring.push_spsc else Ring.push in
        fun ~stamp k ->
          t.t_submitted <- t.t_submitted + 1;
          push ring [| stamp; request_arg ~tenant:t.idx ~client:c ~k |]
      | Rpc ->
        let server =
          match List.assq_opt t.idx !rpc_servers with
          | Some s -> s
          | None -> assert false
        in
        fun ~stamp k ->
          t.t_submitted <- t.t_submitted + 1;
          (* Fire and forget: the handler records completion server-side,
             so nobody needs to await the reply thunk. *)
          let (_reply : unit -> int array) =
            Platinum_kernel.Rpc.call_async server
              [| stamp; request_arg ~tenant:t.idx ~client:c ~k |]
          in
          ()
      | Frozen ->
        fun ~stamp k ->
          t.t_submitted <- t.t_submitted + 1;
          let arg = request_arg ~tenant:t.idx ~client:c ~k in
          (* Ship the computation nowhere: a worker on the client's own
             processor operates on the frozen page remotely. *)
          ignore
            (Api.spawn ~proc:(client_proc t.idx c) (fun () ->
                 let r =
                   do_work ~state:t.state ~work_words:p.work_words
                     ~service_ns:p.service_ns arg
                 in
                 complete t ~stamp r))
    in
    (* Transport-specific setup. *)
    Array.iter
      (fun (t : tenant) ->
        match transport with
        | Ring ->
          let ring = match t.t_ring with Some r -> r | None -> assert false in
          let tid =
            Api.spawn ~proc:t.t_home (fun () ->
                for _ = 1 to expected do
                  let msg = Ring.pop ring in
                  let r =
                    do_work ~state:t.state ~work_words:p.work_words
                      ~service_ns:p.service_ns msg.(1)
                  in
                  complete t ~stamp:msg.(0) r
                done)
          in
          server_tids := tid :: !server_tids
        | Rpc ->
          let server =
            Platinum_kernel.Rpc.serve ~proc:t.t_home (fun args ->
                let r =
                  do_work ~state:t.state ~work_words:p.work_words
                    ~service_ns:p.service_ns args.(1)
                in
                complete t ~stamp:args.(0) r;
                [| r |])
          in
          rpc_servers := (t.idx, server) :: !rpc_servers
        | Frozen ->
          (* Create the state page, collapse it to the tenant's home and
             freeze it there: every client access is a remote word op. *)
          for i = 0 to p.work_words - 1 do
            Api.write (t.state + i) 0
          done;
          Api.advise t.state p.work_words (Memsys.Home t.t_home);
          Api.advise t.state p.work_words Memsys.Freeze)
      ts;
    (* Clients: one thread per (tenant, client), placed off the home. *)
    let client_bodies =
      List.concat_map
        (fun (t : tenant) ->
          List.init p.clients_per_tenant (fun c ->
              let submit = submit_of t c in
              fun (_ : int) ->
                client_loop
                  (gen ~tenant:t.idx ~client:c)
                  ~requests:p.requests_per_client ~submit))
        (Array.to_list ts)
    in
    let procs =
      List.concat_map
        (fun (t : tenant) -> List.init p.clients_per_tenant (client_proc t.idx))
        (Array.to_list ts)
    in
    (* The frozen transport's workers are spawned per request and joined
       implicitly: run returns when every thread finishes.  Ring servers
       exit after [expected] pops; RPC servers get an orderly shutdown
       once every client has submitted everything. *)
    Api.spawn_join_all ~procs client_bodies;
    List.iter (fun (_, s) -> Platinum_kernel.Rpc.shutdown s) !rpc_servers;
    List.iter Api.join !server_tids
  in
  let r = Runner.run setup ~main in
  let ts = !tenants in
  let merged = Hist.create () in
  Array.iter (fun t -> Hist.merge ~into:merged t.t_hist) ts;
  let per_tenant =
    Array.map
      (fun t ->
        {
          tenant = t.idx;
          home = t.t_home;
          submitted = t.t_submitted;
          completed = t.t_completed;
          checksum = t.t_check;
          hist_fp = Hist.fingerprint t.t_hist;
        })
      ts
  in
  let c = Coherent.counters setup.Runner.coherent in
  let inj = Machine.inject setup.Runner.machine in
  let h = ref 0xcbf29ce484222325L in
  let mixin v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) fnv_prime in
  let mixs s = String.iter (fun ch -> mixin (Char.code ch)) s in
  Array.iter
    (fun (row : tenant_row) ->
      mixin row.tenant;
      mixin row.home;
      mixin row.submitted;
      mixin row.completed;
      mixin row.checksum;
      mixs row.hist_fp)
    per_tenant;
  mixin r.Runner.elapsed;
  mixin c.Counters.read_faults;
  mixin c.Counters.write_faults;
  mixin c.Counters.vm_faults;
  mixin c.Counters.replications;
  mixin c.Counters.migrations;
  mixin c.Counters.remote_maps;
  mixin c.Counters.freezes;
  mixin c.Counters.thaws;
  mixin c.Counters.shootdowns;
  mixin c.Counters.atc_reloads;
  (* No plane mixes the canonical idle-plane fingerprint, so a rate-0
     plane that injected nothing fingerprints identically to running with
     no plane attached at all. *)
  (match inj with
  | Some i -> mixs (Inject.fingerprint i)
  | None -> mixs (Inject.fingerprint (Inject.create (Inject.config ~rate:0.0 ()))));
  let submitted = Array.fold_left (fun a (t : tenant_row) -> a + t.submitted) 0 per_tenant in
  let completed = Array.fold_left (fun a (t : tenant_row) -> a + t.completed) 0 per_tenant in
  let elapsed = r.Runner.elapsed in
  {
    transport = transport_name transport;
    nodes = nprocs;
    clusters = Config.clusters config;
    tenants = p.tenants;
    clients = p.tenants * p.clients_per_tenant;
    offered_rps =
      float_of_int (p.tenants * p.clients_per_tenant) *. Arrivals.mean_rps p.process;
    submitted;
    completed;
    elapsed_ns = elapsed;
    achieved_rps =
      (if elapsed = 0 then 0.0 else float_of_int completed *. 1e9 /. float_of_int elapsed);
    mean_ns = Hist.mean merged;
    p50_ns = Hist.p50 merged;
    p95_ns = Hist.p95 merged;
    p99_ns = Hist.p99 merged;
    p999_ns = Hist.p999 merged;
    hist = merged;
    faults = (match inj with None -> 0 | Some i -> Inject.faults_injected i);
    retries = (match inj with None -> 0 | Some i -> Inject.retries i);
    per_tenant;
    fingerprint = Printf.sprintf "%016Lx" !h;
  }
