(** Multi-tenant request serving on PLATINUM — §4.1's three co-location
    options as interchangeable transports under open-loop load.

    When computation must reach shared data, the paper names three ways to
    bring them together: operate on the data remotely, migrate the page,
    or ship the computation to the data's home.  The serving workload
    instantiates all three as request transports against per-tenant state
    pages:

    - {e ring}: clients publish requests into a shared-memory ring
      ({!Ring}) living in coherent pages; a server thread on the tenant's
      home node pops and executes them against its local state (the page
      migrates to — and stays at — the home).  The ring pages themselves
      are fine-grain shared, so the replication policy freezes them and
      traffic degenerates to remote word operations: shared-memory RPC in
      exactly the "Telepathic Datacenters" sense.
    - {e rpc}: the existing port-based {!Platinum_kernel.Rpc} path — move
      the computation, with client-side retransmission under a lossy
      switch.
    - {e frozen}: no server at all; the tenant state is collapsed to its
      home node and frozen ({!Platinum_kernel.Api.advise}), and clients
      operate on it remotely word by word — the paper's escape hatch as a
      transport.

    Arrivals are open-loop ({!Platinum_sim.Arrivals}): each client draws
    its arrival schedule from a seeded stream and submits on schedule
    whether or not earlier requests completed, so offered load is a pure
    function of [(seed, process)] and overload queues instead of
    self-throttling.  Every completed request records its latency
    (completion minus scheduled submission) in a per-tenant
    {!Platinum_stats.Hist}; the merged histogram yields the
    p50/p95/p99/p99.9 tail curves of the [serve] experiment, and
    {!result.fingerprint} is the determinism witness the tests pin. *)

type transport =
  | Ring  (** shared-memory ring in coherent pages *)
  | Rpc  (** port-based RPC to a server on the data's home *)
  | Frozen  (** serverless remote operation on frozen pages *)

val transport_name : transport -> string
val all_transports : transport list

type params = {
  tenants : int;
  clients_per_tenant : int;
  requests_per_client : int;
  process : Platinum_sim.Arrivals.process;  (** per-client arrival process *)
  work_words : int;  (** tenant-state words read+written per request *)
  service_ns : int;  (** pure compute per request *)
  ring_slots : int;  (** ring capacity (ring transport) *)
  poll_ns : int;  (** ring poll backoff *)
}

val params :
  ?tenants:int ->
  ?clients_per_tenant:int ->
  ?requests_per_client:int ->
  ?process:Platinum_sim.Arrivals.process ->
  ?work_words:int ->
  ?service_ns:int ->
  ?ring_slots:int ->
  ?poll_ns:int ->
  unit ->
  params
(** Defaults: 4 tenants x 2 clients x 25 requests, Poisson at 4000 rps
    per client, 8 work words, 2 us of compute, 8-slot rings, 2 us poll. *)

type tenant_row = {
  tenant : int;
  home : int;  (** the tenant's home processor/module *)
  submitted : int;
  completed : int;
  checksum : int;  (** fold of every response value (self-verification) *)
  hist_fp : string;  (** the tenant histogram's fingerprint *)
}

type result = {
  transport : string;
  nodes : int;
  clusters : int;
  tenants : int;
  clients : int;
  offered_rps : float;  (** aggregate open-loop offered load *)
  submitted : int;
  completed : int;
  elapsed_ns : int;
  achieved_rps : float;  (** completed / elapsed *)
  mean_ns : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
  hist : Platinum_stats.Hist.t;  (** all tenants merged *)
  faults : int;  (** faults the plane injected (0 without a plane) *)
  retries : int;  (** recovery retries exercised *)
  per_tenant : tenant_row array;
  fingerprint : string;
      (** FNV-1a over every tenant row (counters and histogram) in tenant
          order, the protocol counters, the elapsed time and the fault
          plane's own fingerprint — byte-identical across reruns at equal
          [(params, config, seed, inject)], and with an idle (rate-0)
          plane attached vs no plane at all. *)
}

val run :
  ?config:Platinum_machine.Config.t ->
  ?inject:Platinum_sim.Inject.config ->
  ?check:bool ->
  ?coalesce:bool ->
  ?seed:int64 ->
  params ->
  transport ->
  result
(** Run one serving cell to completion on its own full PLATINUM instance
    (default machine: the 16-node Butterfly Plus).  [inject] attaches a
    fault plane; [check] (default: the [PLATINUM_CHECK=1] environment
    variable) arms the coherence invariant monitor, and any violation
    raises.  Requires [config.nprocs >= 2]. *)
