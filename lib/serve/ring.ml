module Api = Platinum_kernel.Api

(* Layout, in words from [base]:
     0  ticket   total slots ever claimed (producers fetch-and-add)
     1  head     total slots ever consumed (consumer-only writes)
     2  capacity (informational)
     3  slot_words (informational)
     4  .. slots, each [1 + slot_words] words: word 0 is the publish flag
        (0 = empty, ticket + 1 = published), then the payload.

   The flag carries the ticket, so the consumer can insist on consuming
   ticket h only when slot [h mod capacity] holds exactly ticket h — FIFO
   in claim order even when a later producer publishes first, and immune
   to lapping (a stale flag from a previous lap never matches). *)

type t = {
  base : int;
  words : int;
  capacity : int;
  slot_words : int;
  stride : int;
  poll_ns : int;
  mutable sp_ticket : int;  (* producer-side ticket for the SPSC variant *)
}

let header_words = 4

let create ?(zone = 0) ?(poll_ns = 2_000) ~slots ~slot_words () =
  if slots <= 0 then invalid_arg "Ring.create: slots must be positive";
  if slot_words <= 0 then invalid_arg "Ring.create: slot_words must be positive";
  if poll_ns <= 0 then invalid_arg "Ring.create: poll_ns must be positive";
  let need = header_words + (slots * (1 + slot_words)) in
  let pw = Api.page_words () in
  let pages = (need + pw - 1) / pw in
  let base = Api.alloc_pages ~zone pages in
  (* Zero-fill the header and every flag word so the first lap starts
     from a known-empty ring (fresh pages zero-fill on first touch anyway;
     writing them also faults the pages in before traffic starts). *)
  Api.write base 0;
  Api.write (base + 1) 0;
  Api.write (base + 2) slots;
  Api.write (base + 3) slot_words;
  for s = 0 to slots - 1 do
    Api.write (base + header_words + (s * (1 + slot_words))) 0
  done;
  {
    base;
    words = pages * pw;
    capacity = slots;
    slot_words;
    stride = 1 + slot_words;
    poll_ns;
    sp_ticket = 0;
  }

let base t = t.base
let words t = t.words
let slots t = t.capacity
let slot_words t = t.slot_words

let slot_addr t ticket = t.base + header_words + (ticket mod t.capacity * t.stride)

(* Fill and publish the slot claimed by [ticket]: wait (bounded-backoff
   poll — backpressure, not loss) until the consumer has freed it, write
   the payload words, then set the flag last so the consumer never sees a
   half-written request. *)
let publish t ticket payload =
  if Array.length payload <> t.slot_words then
    invalid_arg
      (Printf.sprintf "Ring.push: payload %d words, ring slots carry %d"
         (Array.length payload) t.slot_words);
  while ticket - Api.read (t.base + 1) >= t.capacity do
    Api.sleep t.poll_ns
  done;
  let slot = slot_addr t ticket in
  for i = 0 to t.slot_words - 1 do
    Api.write (slot + 1 + i) payload.(i)
  done;
  Api.write slot (ticket + 1)

let push t payload =
  let ticket = Api.rmw t.base (fun x -> x + 1) in
  publish t ticket payload

let push_spsc t payload =
  let ticket = t.sp_ticket in
  t.sp_ticket <- ticket + 1;
  (* Keep the shared ticket word in step (plain write — no claim race
     with a single producer) so [pending] stays meaningful. *)
  Api.write t.base (ticket + 1);
  publish t ticket payload

let pop t =
  let h = Api.read (t.base + 1) in
  let slot = slot_addr t h in
  while Api.read slot <> h + 1 do
    Api.sleep t.poll_ns
  done;
  let payload = Array.init t.slot_words (fun i -> Api.read (slot + 1 + i)) in
  Api.write slot 0;
  Api.write (t.base + 1) (h + 1);
  payload

let pending t = Api.read t.base - Api.read (t.base + 1)
