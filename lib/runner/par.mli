(** Domain-parallel fan-out for sweep grids.

    Every figure and ablation in the evaluation is a grid of fully
    independent simulations — each cell builds its own {!Runner.setup}
    (engine, machine, coherent memory, kernel), so nothing is shared
    between cells and each can run in its own OCaml domain.  [map] is the
    one primitive: run a function over every cell on a pool of domains and
    return the results in input order, so output formatting downstream is
    byte-identical whatever the parallelism.

    Contract for the cell function: it must not print (buffer and emit
    after collection — interleaved writes would otherwise scramble the
    report) and must not touch mutable state outside its own cell.  The
    simulator itself satisfies the second half: all simulation state hangs
    off the per-cell instances, and the only cross-instance global (the
    memory-object id counter) is atomic. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val set_jobs : int -> unit
(** Set the pool width used when [map] is called without [~jobs].
    [set_jobs 0] restores the default ([default_jobs ()]); negative values
    raise [Invalid_argument].  Set once at startup (the bench harness's
    [-j]); [1] reproduces strictly sequential behavior. *)

val get_jobs : unit -> int
(** The effective pool width: the last [set_jobs] value, or
    [default_jobs ()] when unset/reset. *)

(** {2 Intra-simulation sharding}

    A second, independent parallelism axis: [jobs] fans {e independent}
    simulations over a grid, while [shards] splits {e one} simulation's
    event queue across domains ({!Platinum_sim.Shard}).  Speedup from the
    two must never be conflated — the bench harness labels them ["grid"]
    (BENCH_sweep.json) and ["shard"] (BENCH_scale.json) respectively.
    The setting is plumbing for the harness's [--shards] flag; simulation
    results are identical at any shard count. *)

val set_shards : int -> unit
(** Set the shard count used by shard-aware experiments.  [set_shards 0]
    restores the default (1 — the sequential engine, bit for bit);
    negative values raise [Invalid_argument]. *)

val get_shards : unit -> int
(** The effective shard count: the last [set_shards] value, or 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f cells] applies [f] to every cell on [min jobs (length cells)]
    domains (the calling domain included) and returns results in input
    order.  [~jobs] defaults to {!get_jobs}; [jobs = 1] (or a single cell)
    runs sequentially in the calling domain with no domain spawned —
    exactly [List.map].  If cells raise, the exception of the earliest
    failing cell (in input order) is re-raised after every running cell
    has finished. *)
