(** Assemble and run complete PLATINUM instances.

    One call builds the whole stack — event engine, Butterfly machine
    model, physical memory, coherent memory with a policy, one user
    address space, kernel — runs a program on it, and returns the elapsed
    virtual time plus the post-mortem report. *)

type setup = {
  engine : Platinum_sim.Engine.t;
  machine : Platinum_machine.Machine.t;
  coherent : Platinum_core.Coherent.t;
  aspace : Platinum_vm.Addr_space.t;
  platsys : Platinum_kernel.Platsys.t;
  kernel : Platinum_kernel.Kernel.t;
}

val make :
  ?config:Platinum_machine.Config.t ->
  ?policy:Platinum_core.Policy.t ->
  ?defrost:Platinum_core.Defrost.mode ->
  ?frames_per_module:int ->
  ?default_zone_pages:int ->
  ?inject:Platinum_sim.Inject.config ->
  ?coalesce:bool ->
  unit ->
  setup
(** Defaults: 16-processor Butterfly Plus, the PLATINUM policy (with the
    config's t1), periodic defrost, 1024 frames per module, 4096-page
    default zone.  The defrost daemon is installed when the policy uses
    it.  [inject] attaches a fault-injection plane to the machine
    ({!Platinum_sim.Inject}); omitted, the hardware is fault-free as in
    the paper.  [coalesce] (default [true]) arms the kernel's
    effect-boundary fast path (DESIGN.md §4g); [false] is the per-effect
    differential baseline. *)

type result = {
  elapsed : Platinum_sim.Time_ns.t;
  report : Platinum_stats.Report.t;
  setup : setup;
}

val run : setup -> main:(unit -> unit) -> result
(** Run [main] as the initial thread on processor 0 until every thread
    finishes.  Checks coherence invariants machine-wide before returning
    (raises [Failure] on violation). *)

val time :
  ?config:Platinum_machine.Config.t ->
  ?policy:Platinum_core.Policy.t ->
  ?defrost:Platinum_core.Defrost.mode ->
  ?frames_per_module:int ->
  ?default_zone_pages:int ->
  ?inject:Platinum_sim.Inject.config ->
  ?coalesce:bool ->
  (unit -> unit) ->
  result
(** [make] + [run] in one step. *)

val speedup :
  ?jobs:int ->
  ?nprocs_list:int list ->
  ?base_config:Platinum_machine.Config.t ->
  ?policy_of:(Platinum_machine.Config.t -> Platinum_core.Policy.t) ->
  ?frames_per_module:int ->
  ?default_zone_pages:int ->
  (nprocs:int -> unit -> unit) ->
  (int * float * result) list
(** Run the same program for each processor count (default 1, 2, 4, 8, 12,
    16) and return [(p, T1/Tp, result)] per point.  The points are
    independent simulations and run on the {!Par} domain pool ([?jobs]
    defaults to [Par.get_jobs ()]; [~jobs:1] is strictly sequential);
    results always come back in [nprocs_list] order.

    The T1/Tp here is {e simulated} speedup of the modelled application;
    the [?jobs] pool is {e grid-level host} parallelism (independent
    cells side by side) and never changes any returned number.  Neither is
    intra-simulation sharding — one simulation's event queue split across
    domains ({!Platinum_sim.Shard}, [Par.set_shards]) — whose host
    wall-clock lives in BENCH_scale.json under ["parallelism": "shard"],
    distinct from the grid pool's BENCH_sweep.json ["grid"] numbers. *)

(* --- the UMA comparison machine (Figure 5) --- *)

type uma_result = {
  uma_elapsed : Platinum_sim.Time_ns.t;
  uma : Platinum_cache.Uma_sys.t;
}

val time_uma :
  ?nprocs:int ->
  ?params:Platinum_cache.Uma_sys.params ->
  ?page_words:int ->
  (unit -> unit) ->
  uma_result
(** Run a program on the bus-based UMA machine with write-through caches
    (Sequent Symmetry model) instead of PLATINUM.  Same kernel, same
    programming model, different memory system. *)
