let default_jobs () = Domain.recommended_domain_count ()

(* 0 = unset: resolve to the recommended count at use time. *)
let jobs_setting = Atomic.make 0

let set_jobs n =
  if n < 0 then invalid_arg "Par.set_jobs: negative job count";
  Atomic.set jobs_setting n

let get_jobs () =
  let j = Atomic.get jobs_setting in
  if j > 0 then j else default_jobs ()

(* Intra-simulation sharding (Sim.Shard) is a different parallelism axis
   from the grid pool above: jobs = independent simulations side by side,
   shards = one simulation's event queue split across domains.  The bench
   harness records them separately ("grid" vs "shard" in the BENCH JSON)
   so the two kinds of speedup are never conflated.  0 = unset = 1 shard
   (today's sequential engine, bit for bit). *)
let shards_setting = Atomic.make 0

let set_shards n =
  if n < 0 then invalid_arg "Par.set_shards: negative shard count";
  Atomic.set shards_setting n

let get_shards () =
  let s = Atomic.get shards_setting in
  if s > 0 then s else 1

let map ?jobs f cells =
  let jobs = match jobs with Some j -> j | None -> get_jobs () in
  if jobs < 1 then invalid_arg "Par.map: jobs must be >= 1";
  match cells with
  | [] -> []
  | [ cell ] -> [ f cell ]
  | cells when jobs = 1 -> List.map f cells
  | cells ->
    let items = Array.of_list cells in
    let n = Array.length items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Work-queue: each domain repeatedly claims the next unclaimed index.
       Results land at their input index, so order is deterministic however
       the cells are scheduled. *)
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (try Ok (f items.(i)) with e -> Error e);
        worker ()
      end
    in
    let helpers = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
