module Engine = Platinum_sim.Engine
module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent
module Defrost = Platinum_core.Defrost
module Addr_space = Platinum_vm.Addr_space
module Platsys = Platinum_kernel.Platsys
module Kernel = Platinum_kernel.Kernel
module Report = Platinum_stats.Report

type setup = {
  engine : Engine.t;
  machine : Machine.t;
  coherent : Coherent.t;
  aspace : Addr_space.t;
  platsys : Platsys.t;
  kernel : Kernel.t;
}

let make ?config ?policy ?defrost ?(frames_per_module = 1024) ?default_zone_pages ?inject
    ?coalesce () =
  let config = match config with Some c -> c | None -> Config.butterfly_plus () in
  let policy =
    match policy with
    | Some p -> p
    | None ->
      Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let engine = Engine.create () in
  let machine = Machine.create config in
  (match inject with
  | None -> ()
  | Some cfg -> Machine.set_inject machine (Some (Platinum_sim.Inject.create cfg)));
  let coherent = Coherent.create machine ~engine ~policy ~frames_per_module () in
  let aspace = Addr_space.create coherent in
  let platsys = Platsys.create coherent aspace ?default_zone_pages () in
  let kernel =
    Kernel.create ?coalesce ~engine ~machine ~memsys:(Platsys.memsys platsys) ()
  in
  Defrost.install ?mode:defrost coherent engine;
  { engine; machine; coherent; aspace; platsys; kernel }

type result = {
  elapsed : Platinum_sim.Time_ns.t;
  report : Report.t;
  setup : setup;
}

let run setup ~main =
  let elapsed = Kernel.run setup.kernel ~main in
  (match Coherent.check_invariants setup.coherent with
  | Ok () -> ()
  | Error e -> failwith ("coherence invariant violated after run: " ^ e));
  { elapsed; report = Report.of_run setup.coherent ~elapsed; setup }

let time ?config ?policy ?defrost ?frames_per_module ?default_zone_pages ?inject ?coalesce
    main =
  let setup =
    make ?config ?policy ?defrost ?frames_per_module ?default_zone_pages ?inject ?coalesce ()
  in
  run setup ~main

let speedup ?jobs ?(nprocs_list = [ 1; 2; 4; 8; 12; 16 ]) ?base_config ?policy_of
    ?frames_per_module ?default_zone_pages main =
  let base = match base_config with Some c -> c | None -> Config.butterfly_plus () in
  (* Each processor count is an independent simulation: fan the curve out
     over the domain pool and collect the points in input order. *)
  let results =
    Par.map ?jobs
      (fun nprocs ->
        let config = { base with Config.nprocs } in
        let policy = Option.map (fun f -> f config) policy_of in
        let r =
          time ~config ?policy ?frames_per_module ?default_zone_pages (main ~nprocs)
        in
        (nprocs, r))
      nprocs_list
  in
  match results with
  | [] -> []
  | (p1, r1) :: _ ->
    let t1 = float_of_int r1.elapsed *. float_of_int p1 in
    (* If the smallest configuration is not one processor, scale as if
       linear up to it — callers normally include 1. *)
    List.map
      (fun (p, r) -> (p, t1 /. float_of_int r.elapsed, r))
      results

module Uma_sys = Platinum_cache.Uma_sys

type uma_result = {
  uma_elapsed : Platinum_sim.Time_ns.t;
  uma : Uma_sys.t;
}

let time_uma ?(nprocs = 16) ?(params = Uma_sys.sequent) ?(page_words = 1024) main =
  let config = Config.butterfly_plus ~nprocs ~page_words () in
  let engine = Engine.create () in
  let machine = Machine.create config in
  let uma = Uma_sys.create ~machine ~params ~page_words in
  let kernel = Kernel.create ~engine ~machine ~memsys:(Uma_sys.memsys uma) () in
  let uma_elapsed = Kernel.run kernel ~main in
  { uma_elapsed; uma }
