(** Deterministic open-loop arrival processes for the serving workloads.

    An arrival process turns a seeded {!Rng} stream into a sequence of
    inter-arrival gaps (ns).  Open-loop means the gaps never depend on
    service times: the generator is consulted at each arrival and the next
    request is scheduled [gap] ns later whether or not the previous one
    has completed, so offered load is a pure function of [(seed, rate)]
    and overload really queues instead of self-throttling.

    Two shapes:
    - [Poisson]: exponential gaps at a fixed rate — the classic
      memoryless open-loop client population.
    - [Mmpp] (Markov-modulated Poisson): a two-state burst model that
      alternates exponentially-distributed dwell periods of low-rate and
      high-rate Poisson traffic — the bursty shape that separates tail
      latency from mean latency. *)

type process =
  | Poisson of { rate_rps : float }  (** requests per simulated second *)
  | Mmpp of {
      low_rps : float;
      high_rps : float;
      dwell_ns : int;  (** mean dwell time in each state *)
    }

type t

val create : rng:Rng.t -> process -> t
(** The generator consumes [rng] (and nothing else), so equal seeds give
    equal arrival schedules.  Rates must be positive, [dwell_ns > 0]. *)

val next_gap_ns : t -> int
(** The gap to the next arrival, always [>= 1] ns. *)

val mean_rps : process -> float
(** The long-run offered rate of the process (the MMPP spends half its
    time in each state). *)

val scaled : process -> float -> process
(** [scaled p f] multiplies every rate in [p] by [f] (the offered-load
    axis of the serve experiment). *)
