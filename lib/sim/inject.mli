(** Deterministic fault injection — the adversary the recovery paths are
    tested against.

    The paper assumes the Butterfly switch, the shootdown interrupts and
    the hardware block transfers never fail (§3.2–3.3); a real switch
    drops and delays messages.  An {!t} attached to a machine
    ({!Platinum_machine.Machine.set_inject}) makes the simulated hardware
    adversarial in four ways:

    - transient memory-module stalls and hard module outages, charged at
      the {!Platinum_machine.Xbar} serialization point;
    - lost and delayed inter-processor interrupts, recovered by the
      shootdown initiator's ack timeout + bounded exponential-backoff
      retry;
    - lost RPC request messages, recovered by client-side retransmission;
    - aborted kernel block transfers, retried by the fault handler and,
      past the retry bound, degraded by freezing the page in place (the
      paper's own escape hatch, §4.2).

    Every decision is drawn from one seeded splitmix64 stream in
    simulation order, so a run is replayable from [(seed, rate)] alone:
    two runs with equal parameters are bit-identical, and [rate = 0.0]
    never perturbs timing at all (every query answers "no fault" with no
    stream consumption).  The plane is per-machine — no global state — so
    domain-parallel sweeps can run injected cells concurrently.

    The adversary is bounded by construction: drops force delivery on the
    final retry and aborted transfers are capped per call site, so
    liveness is never at stake — only latency and the recovery paths. *)

type config = {
  seed : int64;
  rate : float;  (** per-opportunity fault probability; 0.0 disables *)
  hard_ratio : float;  (** share of module faults that are hard outages *)
  stall_ns : int * int;  (** transient module stall, inclusive range *)
  outage_ns : int * int;  (** hard module outage, inclusive range *)
  ipi_drop_ratio : float;  (** share of IPI faults that are drops (rest delay) *)
  ipi_delay_ns : int * int;
  ack_timeout_ns : int;  (** initial shootdown ack timeout; doubles per retry *)
  max_ipi_retries : int;  (** delivery is forced on the final attempt *)
  rpc_retrans_ns : int;  (** initial RPC retransmission timeout; doubles *)
  max_rpc_retries : int;
  max_copy_retries : int;  (** block-transfer retries before freeze-in-place *)
}

val config : ?seed:int64 -> ?rate:float -> unit -> config
(** The default fault model: [seed = 1L], [rate = 0.0], 20–200 µs stalls,
    0.5–2 ms outages (10% of module faults), 60% of IPI faults are drops
    (the rest 10–100 µs delays), 100 µs ack timeout with 4 retries,
    200 µs RPC retransmission with 4 retries, 3 block-transfer retries. *)

type t

val create : config -> t
(** A fresh plane; equal configs produce identical fault schedules. *)

val rate : t -> float
val seed : t -> int64

(* --- fault draws (consume the stream; deterministic in call order) --- *)

val module_fault : t -> [ `None | `Stall of int | `Outage of int ]
(** Asked once per {!Platinum_machine.Xbar} module acquisition.  [`Stall n]
    adds [n] ns of service; [`Outage n] takes the module down for [n] ns
    (everything queued behind it waits). *)

val peek_module_fault : t -> bool
(** Whether the next {!module_fault} will inject — replayed on a copy of
    the stream, consuming nothing and touching no stats.  The kernel's
    coalescing fast path asks this before completing a word inline: a
    pending fault forces the full-suspend path so the injected event (and
    its recovery) lands exactly where the seed schedule put it. *)

val ipi_fault : t -> attempt:int -> [ `Deliver | `Delay of int | `Drop ]
(** Asked once per shootdown IPI send attempt.  Never answers [`Drop] when
    [attempt] is the last one ([max_ipi_retries]): the adversary is
    bounded, so shootdowns always complete. *)

val rpc_drop : t -> attempt:int -> bool
(** Asked once per RPC request send; [true] = the message is lost.  Forced
    [false] on the final attempt. *)

val block_abort : t -> words:int -> int option
(** Asked once per kernel block transfer; [Some w] aborts the transfer
    after [w] of [words] words (the partial occupancy is still charged). *)

(* --- retry/backoff schedules --- *)

val ack_timeout : t -> attempt:int -> int
(** Exponential backoff: [ack_timeout_ns * 2^attempt]. *)

val rpc_retrans : t -> attempt:int -> int
val max_ipi_retries : t -> int
val max_rpc_retries : t -> int
val max_copy_retries : t -> int

(* --- recovery bookkeeping (recorded by the kernel paths) --- *)

val note_shootdown_retry : t -> unit
val note_rpc_retry : t -> unit
val note_copy_retry : t -> unit
val note_degraded_freeze : t -> unit
val note_recovery : t -> int -> unit
(** Record one recovery episode's extra latency (ns beyond the fault-free
    path) into the distribution reported by {!recovery_samples}. *)

type stats = {
  mutable stalls : int;
  mutable outages : int;
  mutable ipi_drops : int;
  mutable ipi_delays : int;
  mutable rpc_drops : int;
  mutable copy_aborts : int;
  mutable shootdown_retries : int;
  mutable rpc_retries : int;
  mutable copy_retries : int;
  mutable degraded_freezes : int;
}

val stats : t -> stats
val faults_injected : t -> int
(** Total faults the plane has injected (stalls + outages + drops + delays
    + aborts). *)

val retries : t -> int
(** Total recovery retries exercised (shootdown + rpc + block copy). *)

val recovery_samples : t -> int array
(** Extra-latency samples recorded via {!note_recovery}, in order. *)

val fingerprint : t -> string
(** One line over every counter — what the differential tests compare. *)

val pp_stats : Format.formatter -> t -> unit
