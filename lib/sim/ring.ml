type 'a t = {
  slots : 'a option array;
  mutable pushed : int;  (* total pushes ever; head = pushed mod capacity *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; pushed = 0 }

let capacity t = Array.length t.slots
let pushed t = t.pushed
let length t = min t.pushed (Array.length t.slots)

let push t x =
  t.slots.(t.pushed mod Array.length t.slots) <- Some x;
  t.pushed <- t.pushed + 1

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.pushed <- 0

let to_list t =
  let cap = Array.length t.slots in
  let n = length t in
  let first = t.pushed - n in
  List.init n (fun i ->
      match t.slots.((first + i) mod cap) with
      | Some x -> x
      | None -> assert false)
