(* The sharded peer of Engine: one simulation's event queue split into
   per-node-cluster shards, advanced in parallel by OCaml 5 domains under
   conservative time-window synchronization.

   Determinism contract — byte-identical output at ANY shard count and ANY
   domain count:

   - Every event carries the key (time, src_node, src_seq), where src_seq
     is drawn from a per-node counter at scheduling time.  A node's
     counter is only ever advanced while one of that node's own events
     runs (or during single-domain setup), so the keys an execution
     produces are a pure function of the workload, not of the sharding.
   - Each shard executes its events in strict key order.  Two events for
     the same node therefore always run in the same relative order, and a
     node's entire event history is identical whatever shard it lives on
     and whoever drives that shard.
   - Cross-shard events travel through per-(src,dst)-shard mailboxes and
     are folded into the destination heap at window boundaries; since the
     key rides along, arrival order through the mailbox is irrelevant.

   The conservative window: no event may affect another node sooner than
   [lookahead] ns (the machine's minimum cross-node latency — T_r, T_b and
   the IPI cost all bound it from above, Config.lookahead_ns).  Each round
   every shard may therefore run all events in [m, m + lookahead), where m
   is the global minimum pending timestamp: any cross-node event posted
   during the round lands at or after m + lookahead.  Rounds are separated
   by a barrier; mailboxes are written only in run phases and drained only
   in drain phases, so each buffer has one owner at a time and the barrier
   publishes it.

   A single shard driven by one domain degenerates to a plain event loop
   in (time, node, seq) order — no mailboxes, no windows cut short, no
   barriers taken.

   Packed keys: the heap's seq word carries (src_node lsl 36) lor src_seq.
   With more than one node that exceeds Eheap's packed-seq range, so big
   sharded runs execute in Eheap's two-array fallback mode — the
   previously-untested headroom path, now load-bearing (and covered by
   regression tests). *)

let node_seq_bits = 36
let max_node_seq = (1 lsl node_seq_bits) - 1

type event = Time_ns.t -> unit

let dummy_event (_ : Time_ns.t) = ()

(* Mailbox for one (src shard, dst shard) pair.  Written by the source
   shard during run phases, drained and cleared by the destination shard
   during drain phases; the inter-phase barrier transfers ownership, so no
   lock is ever taken. *)
type box = {
  mutable b_at : int array;
  mutable b_key : int array;
  mutable b_fn : event array;
  mutable b_len : int;
}

let box_create () =
  { b_at = Array.make 8 0; b_key = Array.make 8 0; b_fn = Array.make 8 dummy_event; b_len = 0 }

let box_push b ~at ~key fn =
  let n = b.b_len in
  if n = Array.length b.b_at then begin
    let cap = 2 * n in
    let grow a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    b.b_at <- grow b.b_at 0;
    b.b_key <- grow b.b_key 0;
    b.b_fn <- grow b.b_fn dummy_event
  end;
  b.b_at.(n) <- at;
  b.b_key.(n) <- key;
  b.b_fn.(n) <- fn;
  b.b_len <- n + 1

type shard = {
  sid : int;
  heap : event Eheap.t;
  mutable clock : Time_ns.t;  (* timestamp of the event being run *)
  mutable processed : int;
  mutable min_pending : Time_ns.t;  (* published at each barrier; max_int = empty *)
}

type t = {
  nodes : int;
  nshards : int;
  lookahead : Time_ns.t;
  check : bool;
  shards_ : shard array;
  node_shard : int array;  (* node -> shard *)
  node_seq : int array;  (* node -> next seq (single-writer: owning shard) *)
  boxes : box array;  (* (src shard * nshards) + dst shard *)
  mutable windows : int;
  mutable running : bool;
  mutable window_end : Time_ns.t;  (* exclusive bound of the current run phase *)
}

let create ?check ~nodes ~shards ~lookahead () =
  if nodes < 1 then invalid_arg "Shard.create: nodes must be >= 1";
  if nodes > 1 lsl 25 then invalid_arg "Shard.create: too many nodes";
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  if lookahead < 1 then invalid_arg "Shard.create: lookahead must be >= 1";
  let check =
    match check with
    | Some b -> b
    | None -> ( match Sys.getenv_opt "PLATINUM_CHECK" with Some "1" -> true | _ -> false)
  in
  let nshards = min shards nodes in
  {
    nodes;
    nshards;
    lookahead;
    check;
    shards_ =
      Array.init nshards (fun sid ->
          {
            sid;
            heap = Eheap.create ~capacity:64 ~dummy:dummy_event ();
            clock = 0;
            processed = 0;
            min_pending = max_int;
          });
    (* Contiguous blocks: node n lives on shard n*S/N, which keeps
       cluster neighbours together for any S <= clusters. *)
    node_shard = Array.init nodes (fun n -> n * nshards / nodes);
    node_seq = Array.make nodes 0;
    boxes = Array.init (nshards * nshards) (fun _ -> box_create ());
    windows = 0;
    running = false;
    window_end = max_int;
  }

let nodes t = t.nodes
let shards t = t.nshards
let lookahead t = t.lookahead
let shard_of_node t node = t.node_shard.(node)
let windows t = t.windows

let events_processed t =
  Array.fold_left (fun acc s -> acc + s.processed) 0 t.shards_

let clock t = Array.fold_left (fun acc s -> max acc s.clock) 0 t.shards_

let now t ~node = t.shards_.(t.node_shard.(node)).clock

let check_node t node what =
  if node < 0 || node >= t.nodes then
    invalid_arg (Printf.sprintf "Shard.%s: no node %d" what node)

(* Draw the next key for an event originating at [node].  The per-node
   counter makes the key independent of sharding; see the header. *)
let key_of t ~node =
  let seq = t.node_seq.(node) in
  if seq > max_node_seq then invalid_arg "Shard: per-node sequence overflow";
  t.node_seq.(node) <- seq + 1;
  (node lsl node_seq_bits) lor seq

let schedule t ~node ~delay fn =
  check_node t node "schedule";
  if delay < 0 then invalid_arg "Shard.schedule: negative delay";
  let s = t.shards_.(t.node_shard.(node)) in
  let at = s.clock + delay in
  Eheap.add s.heap ~time:at ~seq:(key_of t ~node) fn

let post t ~src ~dst ~delay fn =
  check_node t src "post";
  check_node t dst "post";
  if src = dst then schedule t ~node:src ~delay fn
  else begin
    (* The conservative contract: cross-node effects are at least one
       lookahead away.  Enforced for every src <> dst pair — including
       same-shard pairs — so whether the rule fires can never depend on
       the shard count. *)
    if delay < t.lookahead then
      invalid_arg
        (Printf.sprintf "Shard.post: cross-node delay %d below lookahead %d" delay
           t.lookahead);
    let ss = t.shards_.(t.node_shard.(src)) in
    let ds = t.node_shard.(dst) in
    let at = ss.clock + delay in
    let key = key_of t ~node:src in
    if ds = ss.sid || not t.running then
      (* Same shard (or pre-run setup): straight into the heap; the key
         carries the merge order either way. *)
      Eheap.add t.shards_.(ds).heap ~time:at ~seq:key fn
    else box_push t.boxes.((ss.sid * t.nshards) + ds) ~at ~key fn
  end

(* --- per-shard phases (each touches only [s]'s own state plus, in the
   drain phase, the mailboxes it exclusively owns this phase) --- *)

let drain_phase t (s : shard) =
  let n = t.nshards in
  for src = 0 to n - 1 do
    let b = t.boxes.((src * n) + s.sid) in
    for i = 0 to b.b_len - 1 do
      if t.check && b.b_at.(i) < s.clock then
        failwith
          (Printf.sprintf
             "Shard check: mailbox delivery at %d before shard %d clock %d (window \
              violation)"
             b.b_at.(i) s.sid s.clock);
      Eheap.add s.heap ~time:b.b_at.(i) ~seq:b.b_key.(i) b.b_fn.(i);
      b.b_fn.(i) <- dummy_event
    done;
    b.b_len <- 0
  done;
  s.min_pending <- (if Eheap.is_empty s.heap then max_int else Eheap.min_time s.heap)

let run_phase t (s : shard) ~window_end =
  let continue = ref true in
  while !continue do
    if Eheap.is_empty s.heap then continue := false
    else begin
      let at = Eheap.min_time s.heap in
      if at >= window_end then continue := false
      else begin
        let fn = Eheap.pop s.heap in
        if t.check && at < s.clock then
          failwith
            (Printf.sprintf "Shard check: shard %d time ran backwards (%d after %d)" s.sid
               at s.clock);
        s.clock <- at;
        s.processed <- s.processed + 1;
        fn at
      end
    end
  done;
  (* Catch up idle shards so late-seeded events can't be scheduled into
     another shard's past. *)
  if window_end > s.clock && window_end < max_int then s.clock <- window_end

(* --- the domain pool ---

   A tiny phase barrier: the leader publishes a job (an index -> unit
   closure over shards) by bumping [round] after resetting the round's
   ticket counter; every participant — leader included — claims shard
   tickets until they run out, then the leader waits for all shards to be
   marked done.  Tickets are per-round-parity, so a straggler from the
   previous round can never steal a ticket that was already reset.
   Atomic operations provide the publication fences for the mailbox and
   heap state crossing domains. *)

type pool = {
  round : int Atomic.t;
  tickets : int Atomic.t array;  (* one per round parity *)
  done_shards : int Atomic.t;
  job : (int -> unit) ref;
  stop : bool Atomic.t;
}

let pool_create () =
  {
    round = Atomic.make 0;
    tickets = [| Atomic.make 0; Atomic.make 0 |];
    done_shards = Atomic.make 0;
    job = ref (fun _ -> ());
    stop = Atomic.make false;
  }

let claim_all pool ~nshards ~parity =
  let tickets = pool.tickets.(parity) in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add tickets 1 in
    if i >= nshards then continue := false
    else begin
      !(pool.job) i;
      Atomic.incr pool.done_shards
    end
  done

let worker pool ~nshards =
  let last = ref 0 in
  while not (Atomic.get pool.stop) do
    let r = Atomic.get pool.round in
    if r = !last then Domain.cpu_relax ()
    else begin
      last := r;
      claim_all pool ~nshards ~parity:(r land 1)
    end
  done

let leader_phase pool ~nshards f =
  let r = Atomic.get pool.round + 1 in
  pool.job := f;
  Atomic.set pool.done_shards 0;
  Atomic.set pool.tickets.(r land 1) 0;
  Atomic.set pool.round r;  (* publishes job + resets *)
  claim_all pool ~nshards ~parity:(r land 1);
  while Atomic.get pool.done_shards < nshards do Domain.cpu_relax () done

(* --- the window loop --- *)

let global_min t =
  Array.fold_left (fun acc s -> min acc s.min_pending) max_int t.shards_

let run_rounds t ~phase =
  let continue = ref true in
  (* Round 0 folds in anything posted during setup and publishes mins. *)
  phase (fun i -> drain_phase t t.shards_.(i));
  while !continue do
    let m = global_min t in
    if m = max_int then continue := false
    else begin
      let window_end = m + t.lookahead in
      t.window_end <- window_end;
      t.windows <- t.windows + 1;
      phase (fun i -> run_phase t t.shards_.(i) ~window_end);
      phase (fun i -> drain_phase t t.shards_.(i))
    end
  done

(* Drive [rounds] with [nshards]-wide phases on [domains] domains: one
   domain claims shards in order with no pool and no barriers; more spawn
   a worker pool.  Shared by {!run} (message-level shards) and
   {!run_hosted} (per-node engines) — the results are identical either
   way, by the key contract. *)
let drive ~domains ~nshards rounds =
  if domains < 1 then invalid_arg "Shard: domains must be >= 1";
  let ndomains = min domains nshards in
  if ndomains = 1 then
    rounds ~phase:(fun f ->
        for i = 0 to nshards - 1 do
          f i
        done)
  else begin
    let pool = pool_create () in
    let workers =
      Array.init (ndomains - 1) (fun _ -> Domain.spawn (fun () -> worker pool ~nshards))
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set pool.stop true;
        Array.iter Domain.join workers)
      (fun () -> rounds ~phase:(leader_phase pool ~nshards))
  end

let run ?(domains = 1) t =
  if t.running then invalid_arg "Shard.run: already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () -> drive ~domains ~nshards:t.nshards (fun ~phase -> run_rounds t ~phase))

(* ------------------------------------------------------------------ *)
(* Hosted engines: full kernel simulations under the window protocol.   *)
(* ------------------------------------------------------------------ *)

(* The hosted mode runs one complete {!Engine.t} — typically carrying a
   whole per-node kernel — per node, advanced under the same conservative
   windows and domain pool as the message-level shards above.  The group
   installs an {!Engine.router} on every hosted engine, so every
   [Engine.post] with [dst <> self] — kernel wakeups, protocol messages,
   block-transfer completions — crosses through a per-(shard,shard)
   mailbox.

   One deliberate difference from [Shard.post]: cross-node events take the
   mailbox path even when src and dst share a shard (and even at shard
   count 1).  A destination engine assigns its internal sequence numbers
   as events arrive, so arrival order must be a pure function of the
   workload: mailboxes are drained in global (time, key) order at window
   boundaries, which is shard-count-independent, whereas a same-shard
   shortcut would interleave arrivals with the destination's own
   scheduling and make sequence assignment depend on the shard map.
   Hosted runs are therefore byte-identical across every (shards,
   domains) — including (1, 1) — but follow a different (equally valid)
   schedule than the same kernels on one engine with no router; the
   no-router sequential world remains the golden oracle and is untouched
   by hosting. *)

type hbox = {
  mutable hb_at : int array;
  mutable hb_key : int array;
  mutable hb_dst : int array;
  mutable hb_flags : int array;  (* bit 0 daemon, bit 1 deferred *)
  mutable hb_fn : (unit -> unit) array;
  mutable hb_len : int;
}

let hnothing () = ()

let hbox_create () =
  {
    hb_at = Array.make 8 0;
    hb_key = Array.make 8 0;
    hb_dst = Array.make 8 0;
    hb_flags = Array.make 8 0;
    hb_fn = Array.make 8 hnothing;
    hb_len = 0;
  }

let hbox_push b ~at ~key ~dst ~flags fn =
  let n = b.hb_len in
  if n = Array.length b.hb_at then begin
    let cap = 2 * n in
    let grow a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    b.hb_at <- grow b.hb_at 0;
    b.hb_key <- grow b.hb_key 0;
    b.hb_dst <- grow b.hb_dst 0;
    b.hb_flags <- grow b.hb_flags 0;
    b.hb_fn <- grow b.hb_fn hnothing
  end;
  b.hb_at.(n) <- at;
  b.hb_key.(n) <- key;
  b.hb_dst.(n) <- dst;
  b.hb_flags.(n) <- flags;
  b.hb_fn.(n) <- fn;
  b.hb_len <- n + 1

type hosted = {
  h_engines : Engine.t array;
  h_nshards : int;
  h_lookahead : Time_ns.t;
  h_check : bool;
  h_node_shard : int array;
  h_node_seq : int array;  (* single-writer: the node's own events *)
  h_shard_nodes : int array array;  (* shard -> its nodes, ascending *)
  h_boxes : hbox array;  (* (src shard * nshards) + dst shard *)
  mutable h_windows : int;
  mutable h_ran : bool;
}

(* The router for hosted engine [node]: self-posts keep their engine-local
   schedule; anything else draws a key from the node's counter and rides a
   mailbox.  Only [node]'s own events (or pre-run setup, which is
   single-domain) may reach this — the same single-writer rule as
   {!schedule}. *)
let hosted_route h ~node ~dst ~daemon ~deferred ~delay fn =
  let e = h.h_engines.(node) in
  if dst = node then Engine.schedule_after e ~daemon ~deferred ~delay fn
  else begin
    if dst < 0 || dst >= Array.length h.h_engines then
      invalid_arg (Printf.sprintf "Shard.host: post to unknown node %d" dst);
    if delay < h.h_lookahead then
      invalid_arg
        (Printf.sprintf "Shard.host: cross-node delay %d below lookahead %d" delay
           h.h_lookahead);
    let seq = h.h_node_seq.(node) in
    if seq > max_node_seq then invalid_arg "Shard.host: per-node sequence overflow";
    h.h_node_seq.(node) <- seq + 1;
    let key = (node lsl node_seq_bits) lor seq in
    let at = Engine.now e + delay in
    let flags = (if daemon then 1 else 0) lor if deferred then 2 else 0 in
    hbox_push
      h.h_boxes.((h.h_node_shard.(node) * h.h_nshards) + h.h_node_shard.(dst))
      ~at ~key ~dst ~flags fn
  end

let host ?check ~shards ~lookahead engines =
  let nodes = Array.length engines in
  if nodes < 1 then invalid_arg "Shard.host: need at least one engine";
  if shards < 1 then invalid_arg "Shard.host: shards must be >= 1";
  if lookahead < 1 then invalid_arg "Shard.host: lookahead must be >= 1";
  Array.iter
    (fun e ->
      if Engine.router e <> None then
        invalid_arg "Shard.host: an engine already has a router")
    engines;
  let check =
    match check with
    | Some b -> b
    | None -> ( match Sys.getenv_opt "PLATINUM_CHECK" with Some "1" -> true | _ -> false)
  in
  let nshards = min shards nodes in
  let node_shard = Array.init nodes (fun n -> n * nshards / nodes) in
  let shard_nodes =
    Array.init nshards (fun sid ->
        let sel = ref [] in
        for n = nodes - 1 downto 0 do
          if node_shard.(n) = sid then sel := n :: !sel
        done;
        Array.of_list !sel)
  in
  let h =
    {
      h_engines = Array.copy engines;
      h_nshards = nshards;
      h_lookahead = lookahead;
      h_check = check;
      h_node_shard = node_shard;
      h_node_seq = Array.make nodes 0;
      h_shard_nodes = shard_nodes;
      h_boxes = Array.init (nshards * nshards) (fun _ -> hbox_create ());
      h_windows = 0;
      h_ran = false;
    }
  in
  Array.iteri
    (fun node e ->
      Engine.set_router e
        (Some
           {
             Engine.route =
               (fun ~src:_ ~dst ~daemon ~deferred ~delay fn ->
                 hosted_route h ~node ~dst ~daemon ~deferred ~delay fn);
           }))
    engines;
  h

let hosted_nodes h = Array.length h.h_engines
let hosted_shards h = h.h_nshards
let hosted_windows h = h.h_windows
let hosted_shard_of_node h node = h.h_node_shard.(node)

let hosted_events h =
  Array.fold_left (fun acc e -> acc + Engine.events_processed e) 0 h.h_engines

let hosted_clock h = Array.fold_left (fun acc e -> max acc (Engine.now e)) 0 h.h_engines

(* Deliver shard [sid]'s incoming mail.  Entries are merged across all
   source shards and sorted by (time, key) before insertion, so each
   destination engine assigns its internal sequence numbers in an order
   that is a pure function of the workload — the crux of hosted
   determinism (see the header above). *)
let hosted_drain h sid =
  let n = h.h_nshards in
  let total = ref 0 in
  for src = 0 to n - 1 do
    total := !total + h.h_boxes.((src * n) + sid).hb_len
  done;
  if !total > 0 then begin
    let batch = Array.make !total (0, 0, 0, 0, hnothing) in
    let w = ref 0 in
    for src = 0 to n - 1 do
      let b = h.h_boxes.((src * n) + sid) in
      for i = 0 to b.hb_len - 1 do
        batch.(!w) <- (b.hb_at.(i), b.hb_key.(i), b.hb_dst.(i), b.hb_flags.(i), b.hb_fn.(i));
        incr w;
        b.hb_fn.(i) <- hnothing
      done;
      b.hb_len <- 0
    done;
    Array.sort
      (fun (at1, k1, _, _, _) (at2, k2, _, _, _) ->
        if at1 <> at2 then compare at1 at2 else compare k1 k2)
      batch;
    Array.iter
      (fun (at, _, dst, flags, fn) ->
        let e = h.h_engines.(dst) in
        if h.h_check && at < Engine.now e then
          failwith
            (Printf.sprintf
               "Shard.host check: mailbox delivery at %d before node %d clock %d (window \
                violation)"
               at dst (Engine.now e));
        Engine.schedule_at e ~daemon:(flags land 1 <> 0) ~deferred:(flags land 2 <> 0)
          ~at fn)
      batch
  end

let hosted_min h =
  Array.fold_left (fun acc e -> min acc (Engine.next_at e)) max_int h.h_engines

let hosted_alive h = Array.exists (fun e -> not (Engine.is_empty e)) h.h_engines

let hosted_rounds h ~phase =
  (* Round 0 folds in anything posted during setup. *)
  phase (fun sid -> hosted_drain h sid);
  let continue = ref (hosted_alive h) in
  while !continue do
    let m = hosted_min h in
    if m = max_int then continue := false
    else begin
      let window_end = m + h.h_lookahead in
      h.h_windows <- h.h_windows + 1;
      phase (fun sid ->
          let mine = h.h_shard_nodes.(sid) in
          for i = 0 to Array.length mine - 1 do
            (* run_until is inclusive; windows are [m, window_end). *)
            Engine.run_until h.h_engines.(mine.(i)) (window_end - 1)
          done);
      phase (fun sid -> hosted_drain h sid);
      continue := hosted_alive h
    end
  done

let run_hosted ?(domains = 1) h =
  if h.h_ran then invalid_arg "Shard.run_hosted: already ran";
  h.h_ran <- true;
  drive ~domains ~nshards:h.h_nshards (fun ~phase -> hosted_rounds h ~phase)
