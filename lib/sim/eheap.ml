(* Array-backed binary min-heap on (time, seq) keys.

   Packed mode: key = (time lsl seq_bits) lor seq, one immediate int per
   entry, so sift comparisons are single unboxed compares.  Fallback mode
   (entered on the first key outside the packed ranges): parallel times[]
   and seqs[] arrays with lexicographic compares.  Both modes implement the
   identical total order, so the migration is invisible to callers. *)

let seq_bits = 26
let max_packed_seq = (1 lsl seq_bits) - 1
let max_packed_time = max_int lsr seq_bits

type 'a t = {
  mutable keys : int array;   (* packed mode; [||] once migrated *)
  mutable times : int array;  (* fallback mode; [||] while packed *)
  mutable seqs : int array;
  mutable data : 'a array;
  mutable size : int;
  mutable packed : bool;
  dummy : 'a;
}

let create ?(capacity = 1024) ~dummy () =
  let capacity = max capacity 1 in
  {
    keys = Array.make capacity 0;
    times = [||];
    seqs = [||];
    data = Array.make capacity dummy;
    size = 0;
    packed = true;
    dummy;
  }

let size t = t.size
let is_empty t = t.size = 0
let is_packed t = t.packed

let capacity t = Array.length t.data

let grow t =
  let cap = capacity t in
  let cap' = cap * 2 in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.size;
    a'
  in
  t.data <- extend t.data t.dummy;
  if t.packed then t.keys <- extend t.keys 0
  else begin
    t.times <- extend t.times 0;
    t.seqs <- extend t.seqs 0
  end

(* Migrate every packed key into the two-array representation. *)
let spill t =
  let cap = capacity t in
  let times = Array.make cap 0 and seqs = Array.make cap 0 in
  for i = 0 to t.size - 1 do
    let k = t.keys.(i) in
    times.(i) <- k lsr seq_bits;
    seqs.(i) <- k land max_packed_seq
  done;
  t.times <- times;
  t.seqs <- seqs;
  t.keys <- [||];
  t.packed <- false

(* --- packed-mode sifts: one int compare per step ---

   The loops are top-level tail recursions over the hole index, with the
   sifted key and payload threaded as arguments: a [let i = ref i]
   accumulator would box on every [add]/[pop] (no flambda), and the
   zero-alloc lint holds these to the same standard as the word paths
   they serve. *)

let rec sift_up_packed_loop keys data i k v =
  let p = (i - 1) / 2 in
  if i > 0 && keys.(p) > k then begin
    keys.(i) <- keys.(p);
    data.(i) <- data.(p);
    sift_up_packed_loop keys data p k v
  end
  else begin
    keys.(i) <- k;
    data.(i) <- v
  end

let sift_up_packed t i = sift_up_packed_loop t.keys t.data i t.keys.(i) t.data.(i)

let rec sift_down_packed_loop keys data n i k v =
  let l = (2 * i) + 1 in
  if l >= n then begin
    keys.(i) <- k;
    data.(i) <- v
  end
  else begin
    let c = if l + 1 < n && keys.(l + 1) < keys.(l) then l + 1 else l in
    if keys.(c) < k then begin
      keys.(i) <- keys.(c);
      data.(i) <- data.(c);
      sift_down_packed_loop keys data n c k v
    end
    else begin
      keys.(i) <- k;
      data.(i) <- v
    end
  end

let sift_down_packed t i =
  sift_down_packed_loop t.keys t.data t.size i t.keys.(i) t.data.(i)

(* --- fallback-mode sifts: lexicographic (time, seq) --- *)

let rec sift_up_fb_loop times seqs data i tm sq v =
  let p = (i - 1) / 2 in
  if i > 0 && (times.(p) > tm || (times.(p) = tm && seqs.(p) > sq)) then begin
    times.(i) <- times.(p);
    seqs.(i) <- seqs.(p);
    data.(i) <- data.(p);
    sift_up_fb_loop times seqs data p tm sq v
  end
  else begin
    times.(i) <- tm;
    seqs.(i) <- sq;
    data.(i) <- v
  end

let sift_up_fb t i =
  sift_up_fb_loop t.times t.seqs t.data i t.times.(i) t.seqs.(i) t.data.(i)

let rec sift_down_fb_loop times seqs data n i tm sq v =
  let l = (2 * i) + 1 in
  if l >= n then begin
    times.(i) <- tm;
    seqs.(i) <- sq;
    data.(i) <- v
  end
  else begin
    let c =
      if
        l + 1 < n
        && (times.(l + 1) < times.(l)
           || (times.(l + 1) = times.(l) && seqs.(l + 1) < seqs.(l)))
      then l + 1
      else l
    in
    if times.(c) < tm || (times.(c) = tm && seqs.(c) < sq) then begin
      times.(i) <- times.(c);
      seqs.(i) <- seqs.(c);
      data.(i) <- data.(c);
      sift_down_fb_loop times seqs data n c tm sq v
    end
    else begin
      times.(i) <- tm;
      seqs.(i) <- sq;
      data.(i) <- v
    end
  end

let sift_down_fb t i =
  sift_down_fb_loop t.times t.seqs t.data t.size i t.times.(i) t.seqs.(i) t.data.(i)

let add t ~time ~seq v =
  if time < 0 || seq < 0 then invalid_arg "Eheap.add: negative key component";
  if t.size = capacity t then grow t;
  if t.packed && (time > max_packed_time || seq > max_packed_seq) then spill t;
  let i = t.size in
  t.size <- i + 1;
  t.data.(i) <- v;
  if t.packed then begin
    t.keys.(i) <- (time lsl seq_bits) lor seq;
    sift_up_packed t i
  end
  else begin
    t.times.(i) <- time;
    t.seqs.(i) <- seq;
    sift_up_fb t i
  end

let check_nonempty t op = if t.size = 0 then invalid_arg ("Eheap." ^ op ^ ": empty heap")

let min_time t =
  check_nonempty t "min_time";
  if t.packed then t.keys.(0) lsr seq_bits else t.times.(0)

let min_seq t =
  check_nonempty t "min_seq";
  if t.packed then t.keys.(0) land max_packed_seq else t.seqs.(0)

let pop t =
  check_nonempty t "pop";
  let v = t.data.(0) in
  let last = t.size - 1 in
  t.size <- last;
  t.data.(0) <- t.data.(last);
  t.data.(last) <- t.dummy;
  if t.packed then begin
    t.keys.(0) <- t.keys.(last);
    if last > 0 then sift_down_packed t 0
  end
  else begin
    t.times.(0) <- t.times.(last);
    t.seqs.(0) <- t.seqs.(last);
    if last > 0 then sift_down_fb t 0
  end;
  v
