(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of events.  Events
    scheduled for the same instant run in scheduling order (a monotonically
    increasing sequence number breaks ties), so runs are reproducible. *)

type t

val create : unit -> t

val now : t -> Time_ns.t
(** Current virtual time. *)

val schedule_at : t -> ?daemon:bool -> at:Time_ns.t -> (unit -> unit) -> unit
(** Run the thunk when the clock reaches [at].  Scheduling in the past
    raises [Invalid_argument].  [daemon] events (default false) do not keep
    {!run} alive: the run stops once only daemon events remain — this is
    how recurring kernel daemons avoid keeping a finished simulation
    spinning. *)

val schedule_after : t -> ?daemon:bool -> delay:Time_ns.t -> (unit -> unit) -> unit
(** [schedule_after t ~delay f] is [schedule_at t ~at:(now t + delay) f].
    Negative delays raise [Invalid_argument]. *)

val every : t -> ?daemon:bool -> period:Time_ns.t -> ?start:Time_ns.t -> (unit -> bool) -> unit
(** Run a recurring event each [period]; the first firing is at [start]
    (default [now t + period]).  The event recurs while the callback returns
    [true]. *)

val step : t -> bool
(** Run the earliest event.  [false] when the queue was empty. *)

val run : ?limit:int -> t -> unit
(** Run events until no non-daemon events remain, or until [limit]
    {e non-daemon} events have been processed (default unlimited).  Daemon
    events that interleave do not consume the budget: a limit bounds
    application work, independent of how often periodic daemons tick. *)

val run_until : t -> Time_ns.t -> unit
(** Run every event with timestamp [<=] the given horizon, advancing the
    clock to the horizon. *)

val events_processed : t -> int
(** Total number of events executed so far (for instrumentation). *)

val pending_events : t -> int
(** Events (daemon or not) currently queued.  O(1). *)

val is_empty : t -> bool
(** No non-daemon events pending. *)
