(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of events.  Events
    scheduled for the same instant run in scheduling order (a monotonically
    increasing sequence number breaks ties), so runs are reproducible. *)

type t

val create : unit -> t

val now : t -> Time_ns.t
(** Current virtual time. *)

val schedule_at :
  t -> ?daemon:bool -> ?deferred:bool -> at:Time_ns.t -> (unit -> unit) -> unit
(** Run the thunk when the clock reaches [at].  Scheduling in the past
    raises [Invalid_argument].

    Events come in three classes:
    - {e normal} (the default): application work.  Keeps {!run} alive and
      consumes the [?limit] budget.
    - [daemon] events do not keep {!run} alive: the run stops once only
      daemon events remain — this is how recurring kernel daemons avoid
      keeping a finished simulation spinning.  They do not consume the
      [?limit] budget either.
    - [deferred] events are fault-plane plumbing (a delayed interrupt
      redelivery, an RPC retransmission timer).  They must fire — the run
      stays alive for them — but they are not application work, so they do
      not consume the [?limit] budget.  Without this class, an injected
      delay re-enqueued past a limit boundary would miscount against the
      caller's non-daemon event budget.

    [daemon] and [deferred] are mutually exclusive ([Invalid_argument]). *)

val schedule_after :
  t -> ?daemon:bool -> ?deferred:bool -> delay:Time_ns.t -> (unit -> unit) -> unit
(** [schedule_after t ~delay f] is [schedule_at t ~at:(now t + delay) f].
    Negative delays raise [Invalid_argument]. *)

val every : t -> ?daemon:bool -> period:Time_ns.t -> ?start:Time_ns.t -> (unit -> bool) -> unit
(** Run a recurring event each [period]; the first firing is at [start]
    (default [now t + period]).  The event recurs while the callback returns
    [true]. *)

val step : t -> bool
(** Run the earliest event.  [false] when the queue was empty. *)

val run : ?limit:int -> t -> unit
(** Run events until no non-daemon events remain, or until [limit]
    {e normal} events have been processed (default unlimited).  Daemon and
    deferred events that interleave do not consume the budget: a limit
    bounds application work, independent of how often periodic daemons tick
    or how many times the fault plane delayed an interrupt. *)

val run_until : t -> Time_ns.t -> unit
(** Run every event with timestamp [<=] the given horizon, advancing the
    clock to the horizon. *)

val events_processed : t -> int
(** Total number of events executed so far (for instrumentation). *)

val pending_events : t -> int
(** Events (daemon or not) currently queued.  O(1). *)

val is_empty : t -> bool
(** No non-daemon events pending. *)
