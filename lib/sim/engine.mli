(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of events.  Events
    scheduled for the same instant run in scheduling order (a monotonically
    increasing sequence number breaks ties), so runs are reproducible. *)

type t

val create : unit -> t

val now : t -> Time_ns.t
(** Current virtual time. *)

val schedule_at :
  t -> ?daemon:bool -> ?deferred:bool -> at:Time_ns.t -> (unit -> unit) -> unit
(** Run the thunk when the clock reaches [at].  Scheduling in the past
    raises [Invalid_argument].

    Events come in three classes:
    - {e normal} (the default): application work.  Keeps {!run} alive and
      consumes the [?limit] budget.
    - [daemon] events do not keep {!run} alive: the run stops once only
      daemon events remain — this is how recurring kernel daemons avoid
      keeping a finished simulation spinning.  They do not consume the
      [?limit] budget either.
    - [deferred] events are fault-plane plumbing (a delayed interrupt
      redelivery, an RPC retransmission timer).  They must fire — the run
      stays alive for them — but they are not application work, so they do
      not consume the [?limit] budget.  Without this class, an injected
      delay re-enqueued past a limit boundary would miscount against the
      caller's non-daemon event budget.

    [daemon] and [deferred] are mutually exclusive ([Invalid_argument]). *)

val schedule_after :
  t -> ?daemon:bool -> ?deferred:bool -> delay:Time_ns.t -> (unit -> unit) -> unit
(** [schedule_after t ~delay f] is [schedule_at t ~at:(now t + delay) f].
    Negative delays raise [Invalid_argument]. *)

(** {2 Sharded façade}

    Cross-node work — an IPI, an RPC message, a block-transfer completion,
    a kernel wakeup or thread migration landing on another node's
    processor, a coherence protocol step for a page homed elsewhere — goes
    through {!post}, which names the source and destination nodes.  By
    default [post] is {!schedule_after} on this engine's own queue — the
    strictly sequential world, unchanged.

    Router-install lifecycle: exactly two drivers ever install a
    {!router}, and both own the engine(s) for the whole run.
    {!Shard.run} (the message-level mesh) keys events by source node and
    carries them through per-pair mailboxes; {!Shard.host} does the same
    for a group of per-node engines carrying full kernel simulations — it
    installs a router on {e every} hosted engine at {!Shard.host} time so
    that even setup-time posts take the deterministic mailbox path.  The
    classic sequential entry points ({!run}, [Runner], a lone kernel on
    one engine) install no router, and a router must be absent there: the
    no-router schedule is the golden oracle that sharded runs are
    measured against. *)

type router = {
  route :
    src:int ->
    dst:int ->
    daemon:bool ->
    deferred:bool ->
    delay:Time_ns.t ->
    (unit -> unit) ->
    unit;
}

val set_router : t -> router option -> unit
val router : t -> router option

val post :
  t ->
  ?daemon:bool ->
  ?deferred:bool ->
  src:int ->
  dst:int ->
  delay:Time_ns.t ->
  (unit -> unit) ->
  unit
(** Enqueue cross-node work from node [src] due at node [dst] after
    [delay].  Identical to {!schedule_after} unless a router is
    installed.  This is the seam every cross-node effect must cross —
    kernel scheduling traffic (wakeups, migrations) and coherence
    protocol messages included — so that a sharded driver can reroute it
    without the caller changing. *)

val every : t -> ?daemon:bool -> period:Time_ns.t -> ?start:Time_ns.t -> (unit -> bool) -> unit
(** Run a recurring event each [period]; the first firing is at [start]
    (default [now t + period]).  The event recurs while the callback returns
    [true]. *)

val step : t -> bool
(** Run the earliest event.  [false] when the queue was empty. *)

val run : ?limit:int -> t -> unit
(** Run events until no non-daemon events remain, or until [limit]
    {e normal} events have been processed (default unlimited).  Daemon and
    deferred events that interleave do not consume the budget: a limit
    bounds application work, independent of how often periodic daemons tick
    or how many times the fault plane delayed an interrupt. *)

val run_until : t -> Time_ns.t -> unit
(** Run every event with timestamp [<=] the given horizon, advancing the
    clock to the horizon. *)

val events_processed : t -> int
(** Total number of events executed so far (for instrumentation). *)

val pending_events : t -> int
(** Events (daemon or not) currently queued.  O(1). *)

val is_empty : t -> bool
(** No non-daemon events pending. *)

val next_at : t -> Time_ns.t
(** Timestamp of the earliest pending event of any class, or [max_int]
    when the queue is empty — the conservative floor a hosting driver
    ({!Shard.host}) uses to cut time windows. *)
