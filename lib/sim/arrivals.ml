type process =
  | Poisson of { rate_rps : float }
  | Mmpp of { low_rps : float; high_rps : float; dwell_ns : int }

type t = {
  rng : Rng.t;
  process : process;
  mutable high : bool;  (* MMPP burst state *)
  mutable dwell_left_ns : int;  (* simulated ns left in the current state *)
}

let validate = function
  | Poisson { rate_rps } ->
    if rate_rps <= 0.0 then invalid_arg "Arrivals.create: rate_rps must be positive"
  | Mmpp { low_rps; high_rps; dwell_ns } ->
    if low_rps <= 0.0 || high_rps <= 0.0 then
      invalid_arg "Arrivals.create: MMPP rates must be positive";
    if dwell_ns <= 0 then invalid_arg "Arrivals.create: dwell_ns must be positive"

let create ~rng process =
  validate process;
  { rng; process; high = false; dwell_left_ns = 0 }

(* One exponential draw with the given mean, floored at 1 ns.  1 - U keeps
   the argument of [log] in (0, 1]. *)
let exp_draw rng ~mean_ns =
  let u = Rng.float rng 1.0 in
  let g = -.log (1.0 -. u) *. mean_ns in
  if g < 1.0 then 1 else int_of_float g

let next_gap_ns t =
  match t.process with
  | Poisson { rate_rps } -> exp_draw t.rng ~mean_ns:(1e9 /. rate_rps)
  | Mmpp { low_rps; high_rps; dwell_ns } ->
    if t.dwell_left_ns <= 0 then begin
      (* Entering a fresh dwell period; the state flips each time, so the
         process spends half its time (in expectation) in each regime. *)
      t.high <- not t.high;
      t.dwell_left_ns <- exp_draw t.rng ~mean_ns:(float_of_int dwell_ns)
    end;
    let rate = if t.high then high_rps else low_rps in
    let gap = exp_draw t.rng ~mean_ns:(1e9 /. rate) in
    t.dwell_left_ns <- t.dwell_left_ns - gap;
    gap

let mean_rps = function
  | Poisson { rate_rps } -> rate_rps
  | Mmpp { low_rps; high_rps; _ } -> 0.5 *. (low_rps +. high_rps)

let scaled p f =
  match p with
  | Poisson { rate_rps } -> Poisson { rate_rps = rate_rps *. f }
  | Mmpp { low_rps; high_rps; dwell_ns } ->
    Mmpp { low_rps = low_rps *. f; high_rps = high_rps *. f; dwell_ns }
