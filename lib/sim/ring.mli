(** A fixed-capacity ring buffer keeping the most recent pushes.

    Used by the coherence sanitizer to retain a bounded, replayable prefix
    of recent protocol events: pushes past the capacity silently overwrite
    the oldest entries, so holding one costs O(capacity) regardless of run
    length. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] unless [capacity > 0]. *)

val push : 'a t -> 'a -> unit

val length : 'a t -> int
(** Entries currently retained (at most [capacity]). *)

val pushed : 'a t -> int
(** Total pushes ever, including overwritten ones. *)

val capacity : 'a t -> int
val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Retained entries, oldest first. *)
