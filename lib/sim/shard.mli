(** Sharded discrete-event engine: one simulation's queue split into
    per-node-cluster shards advanced in parallel by OCaml 5 domains under
    conservative time-window synchronization.

    Two modes share the window protocol and the domain pool.  The
    {e message-level} mode ({!create}/{!run}) keeps one event heap per
    shard — the transport for the [Scale] mesh workloads.  The {e hosted}
    mode ({!host}/{!run_hosted}) advances one full {!Engine.t} per node —
    each carrying a complete kernel simulation with its own run-queue
    slice, coherence partition and fault sub-plane — and routes every
    cross-node [Engine.post] (kernel wakeups and migrations, invalidation
    IPIs, copy-block transfers, RPC, remote reads) through the per-pair
    mailboxes.  Kernel traffic is first-class here, not just scale
    workloads.

    Every event carries the key [(time, src_node, src_seq)]; each shard
    executes its events in strict key order; cross-shard events travel
    through per-pair mailboxes and merge by key at window boundaries.  The
    window width is the machine's minimum cross-node latency (the
    lookahead; see {!Platinum_machine.Config.lookahead_ns}): inside one
    window no shard can affect another, so output is byte-identical at any
    shard count and any domain count, and a single shard on one domain
    degenerates to today's sequential event loop.

    Handler contract: an event handler may [schedule] further work for its
    own node at any delay, and [post] work to other nodes at a delay of at
    least the lookahead.  Handlers must touch only their own node's state
    — that is what makes a node's history independent of where it is
    sharded, and what makes running shards on parallel domains safe. *)

type t

type event = Time_ns.t -> unit
(** A handler, applied to its delivery time. *)

val create : ?check:bool -> nodes:int -> shards:int -> lookahead:Time_ns.t -> unit -> t
(** A group of [shards] shards over [nodes] logical nodes (shards are
    clamped to the node count; nodes map to shards in contiguous blocks).
    [lookahead] is the conservative window width — no [post] may use a
    smaller delay.  [check] arms the window-invariant self-checks (default:
    the [PLATINUM_CHECK=1] environment variable, like the coherence
    monitor); they verify time never runs backwards and no mailbox
    delivery lands in a shard's past, and raise [Failure] on violation. *)

val nodes : t -> int
val shards : t -> int
val lookahead : t -> Time_ns.t

val shard_of_node : t -> int -> int
(** Which shard owns a node. *)

val now : t -> node:int -> Time_ns.t
(** The owning shard's clock (the timestamp of its current event). *)

val schedule : t -> node:int -> delay:Time_ns.t -> event -> unit
(** Schedule node-local work [delay] ns after the node's current time.
    Only the node's own handlers (or pre-run setup code) may call this —
    the per-node sequence counter is single-writer. *)

val post : t -> src:int -> dst:int -> delay:Time_ns.t -> event -> unit
(** Send cross-node work from [src], due at [dst] after [delay].  For
    [src <> dst] the delay must be at least the lookahead
    ([Invalid_argument] otherwise — enforced for same-shard pairs too, so
    behaviour can never depend on the shard count).  [post t ~src ~dst]
    with [src = dst] is {!schedule}. *)

val run : ?domains:int -> t -> unit
(** Advance windows until every shard is quiescent (no pending events, no
    undelivered mail).  [domains = 1] (the default) drives every shard on
    the calling domain; larger counts spawn a pool of [domains - 1]
    workers that claim shards each phase.  The result is identical either
    way. *)

val events_processed : t -> int
(** Events executed so far, across all shards. *)

val windows : t -> int
(** Synchronization windows taken so far. *)

val clock : t -> Time_ns.t
(** The latest shard clock (after {!run}: the common final time). *)

(** {2 Hosted engines: kernel simulations under the window protocol}

    [host ~shards ~lookahead engines] groups [Array.length engines]
    per-node engines (node [i] is [engines.(i)]) into [shards] shards and
    installs an {!Engine.router} on every one of them — this is the one
    place in the system that installs routers, and it owns the engines
    until {!run_hosted} returns.  From that moment every
    [Engine.post ~dst] with [dst] different from the posting node draws a
    key from the node's single-writer counter and crosses through a
    mailbox; self-posts stay engine-local.  Posts must respect the
    lookahead, exactly as {!post} does.

    Unlike {!post}, cross-node events take the mailbox path {e even on
    the same shard} (and even at shard count 1): destination engines
    assign internal sequence numbers on arrival, so arrival order must be
    a pure function of the workload — mailboxes drain in global
    (time, key) order at window boundaries, which no shard map can
    perturb.  A hosted run is therefore byte-identical at any
    (shards, domains), but follows a different (equally valid) schedule
    than the same kernels on an engine with no router; the no-router
    sequential run remains the golden oracle, and nothing in hosting
    touches it. *)

type hosted

val host : ?check:bool -> shards:int -> lookahead:Time_ns.t -> Engine.t array -> hosted
(** Group the engines and install their routers.  [check] arms the
    window-invariant self-checks (default: the [PLATINUM_CHECK=1]
    environment variable); because every hosted node's state is touched
    only by its own engine's events, monitor sweeps are shard-local by
    construction — that is the pinned monitor strategy (DESIGN.md §4j).
    Raises [Invalid_argument] if any engine already has a router. *)

val run_hosted : ?domains:int -> hosted -> unit
(** Advance windows until no hosted engine has a non-daemon event pending
    and every mailbox is empty.  [domains = 1] (the default) drives every
    shard on the calling domain; larger counts spawn a worker pool.  The
    result is identical either way.  A hosted group can run once. *)

val hosted_nodes : hosted -> int
val hosted_shards : hosted -> int
val hosted_shard_of_node : hosted -> int -> int
val hosted_windows : hosted -> int
(** Synchronization windows taken. *)

val hosted_events : hosted -> int
(** Events executed across all hosted engines. *)

val hosted_clock : hosted -> Time_ns.t
(** The latest hosted-engine clock (after {!run_hosted}: the common final
    time). *)
