(** Sharded discrete-event engine: one simulation's queue split into
    per-node-cluster shards advanced in parallel by OCaml 5 domains under
    conservative time-window synchronization.

    Every event carries the key [(time, src_node, src_seq)]; each shard
    executes its events in strict key order; cross-shard events travel
    through per-pair mailboxes and merge by key at window boundaries.  The
    window width is the machine's minimum cross-node latency (the
    lookahead; see {!Platinum_machine.Config.lookahead_ns}): inside one
    window no shard can affect another, so output is byte-identical at any
    shard count and any domain count, and a single shard on one domain
    degenerates to today's sequential event loop.

    Handler contract: an event handler may [schedule] further work for its
    own node at any delay, and [post] work to other nodes at a delay of at
    least the lookahead.  Handlers must touch only their own node's state
    — that is what makes a node's history independent of where it is
    sharded, and what makes running shards on parallel domains safe. *)

type t

type event = Time_ns.t -> unit
(** A handler, applied to its delivery time. *)

val create : ?check:bool -> nodes:int -> shards:int -> lookahead:Time_ns.t -> unit -> t
(** A group of [shards] shards over [nodes] logical nodes (shards are
    clamped to the node count; nodes map to shards in contiguous blocks).
    [lookahead] is the conservative window width — no [post] may use a
    smaller delay.  [check] arms the window-invariant self-checks (default:
    the [PLATINUM_CHECK=1] environment variable, like the coherence
    monitor); they verify time never runs backwards and no mailbox
    delivery lands in a shard's past, and raise [Failure] on violation. *)

val nodes : t -> int
val shards : t -> int
val lookahead : t -> Time_ns.t

val shard_of_node : t -> int -> int
(** Which shard owns a node. *)

val now : t -> node:int -> Time_ns.t
(** The owning shard's clock (the timestamp of its current event). *)

val schedule : t -> node:int -> delay:Time_ns.t -> event -> unit
(** Schedule node-local work [delay] ns after the node's current time.
    Only the node's own handlers (or pre-run setup code) may call this —
    the per-node sequence counter is single-writer. *)

val post : t -> src:int -> dst:int -> delay:Time_ns.t -> event -> unit
(** Send cross-node work from [src], due at [dst] after [delay].  For
    [src <> dst] the delay must be at least the lookahead
    ([Invalid_argument] otherwise — enforced for same-shard pairs too, so
    behaviour can never depend on the shard count).  [post t ~src ~dst]
    with [src = dst] is {!schedule}. *)

val run : ?domains:int -> t -> unit
(** Advance windows until every shard is quiescent (no pending events, no
    undelivered mail).  [domains = 1] (the default) drives every shard on
    the calling domain; larger counts spawn a pool of [domains - 1]
    workers that claim shards each phase.  The result is identical either
    way. *)

val events_processed : t -> int
(** Events executed so far, across all shards. *)

val windows : t -> int
(** Synchronization windows taken so far. *)

val clock : t -> Time_ns.t
(** The latest shard clock (after {!run}: the common final time). *)
