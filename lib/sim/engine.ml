(* The event queue is an array-backed binary min-heap (Eheap) keyed by
   (time, tagged seq).  The sequence number makes simultaneous events run
   in scheduling order, which keeps runs deterministic; its two low bits
   carry the event class — bit 0 the daemon flag, bit 1 the deferred flag
   (seq is unique per event, so tagging the low bits never reorders
   anything).  One closure per event is the only allocation.

   Three classes:
   - normal: application work; keeps {!run} alive and consumes the ?limit
     budget;
   - daemon: periodic kernel chores; neither keeps the run alive nor
     consumes budget;
   - deferred: fault-plane plumbing (a delayed interrupt redelivery, a
     retransmission timer).  It must fire — the run stays alive for it —
     but it is not application work, so it must not consume the ?limit
     budget either.  Before this class existed, injected delays had to be
     scheduled as normal events and a delayed interrupt re-enqueued past
     the limit boundary miscounted against the caller's budget. *)

let nothing () = ()

type router = {
  route :
    src:int ->
    dst:int ->
    daemon:bool ->
    deferred:bool ->
    delay:Time_ns.t ->
    (unit -> unit) ->
    unit;
}

type t = {
  mutable clock : Time_ns.t;
  mutable seq : int;
  queue : (unit -> unit) Eheap.t;
  mutable processed : int;
  mutable normal_pending : int;  (* non-daemon (normal + deferred) events queued *)
  mutable router : router option;  (* the sharded façade's cross-node hook *)
}

let create () =
  {
    clock = 0;
    seq = 0;
    queue = Eheap.create ~capacity:256 ~dummy:nothing ();
    processed = 0;
    normal_pending = 0;
    router = None;
  }

let now t = t.clock

let schedule_at t ?(daemon = false) ?(deferred = false) ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now=%d)" at t.clock);
  if daemon && deferred then invalid_arg "Engine.schedule_at: daemon and deferred are exclusive";
  let tagged =
    (t.seq lsl 2) lor (if deferred then 2 else 0) lor if daemon then 1 else 0
  in
  Eheap.add t.queue ~time:at ~seq:tagged f;
  if not daemon then t.normal_pending <- t.normal_pending + 1;
  t.seq <- t.seq + 1

let schedule_after t ?daemon ?deferred ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ?daemon ?deferred ~at:(t.clock + delay) f

(* The sharded façade: cross-node work is enqueued through [post], which a
   sharded driver can reroute into per-pair mailboxes (Shard).  With no
   router installed — the whole sequential world, and any sharded run at
   shard count 1 — [post] is exactly [schedule_after]: same queue, same
   sequence numbers, byte-identical schedules. *)
let set_router t r = t.router <- r
let router t = t.router

let post t ?(daemon = false) ?(deferred = false) ~src ~dst ~delay f =
  match t.router with
  | None ->
    ignore src;
    ignore dst;
    schedule_after t ~daemon ~deferred ~delay f
  | Some r -> r.route ~src ~dst ~daemon ~deferred ~delay f

let every t ?daemon ~period ?start f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let first = match start with Some s -> s | None -> t.clock + period in
  let rec fire () = if f () then schedule_after t ?daemon ~delay:period fire in
  schedule_at t ?daemon ~at:first fire

(* Run the earliest event; the result says which class ran. *)
let step_kind t =
  if Eheap.is_empty t.queue then `Empty
  else begin
    let at = Eheap.min_time t.queue in
    let tag = Eheap.min_seq t.queue land 3 in
    let fn = Eheap.pop t.queue in
    t.clock <- at;
    t.processed <- t.processed + 1;
    if tag land 1 = 0 then t.normal_pending <- t.normal_pending - 1;
    fn ();
    match tag with 1 -> `Daemon | 2 -> `Deferred | _ -> `Normal
  end

let step t = step_kind t <> `Empty

let run ?limit t =
  match limit with
  | None -> while t.normal_pending > 0 && step t do () done
  | Some n ->
    (* The budget counts normal events only: daemons (periodic kernel
       chores) and deferred events (injected delays, retransmission
       timers) ride along free, so a limit measures application work, not
       how often the defrost daemon ticked or how many times the fault
       plane delayed an interrupt. *)
    let budget = ref n in
    while !budget > 0 && t.normal_pending > 0 do
      match step_kind t with
      | `Normal -> decr budget
      | `Daemon | `Deferred -> ()
      | `Empty -> budget := 0
    done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    if (not (Eheap.is_empty t.queue)) && Eheap.min_time t.queue <= horizon then
      ignore (step t)
    else continue := false
  done;
  if horizon > t.clock then t.clock <- horizon

let events_processed t = t.processed
let pending_events t = Eheap.size t.queue
let is_empty t = t.normal_pending = 0
let next_at t = if Eheap.is_empty t.queue then max_int else Eheap.min_time t.queue
