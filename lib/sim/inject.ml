(* All randomness flows through one seeded stream consumed in simulation
   order; since the simulation itself is deterministic, the whole fault
   schedule is a pure function of (seed, rate).  A zero rate answers every
   query without touching the stream, so an attached-but-idle plane cannot
   perturb anything. *)

type config = {
  seed : int64;
  rate : float;
  hard_ratio : float;
  stall_ns : int * int;
  outage_ns : int * int;
  ipi_drop_ratio : float;
  ipi_delay_ns : int * int;
  ack_timeout_ns : int;
  max_ipi_retries : int;
  rpc_retrans_ns : int;
  max_rpc_retries : int;
  max_copy_retries : int;
}

let config ?(seed = 1L) ?(rate = 0.0) () =
  {
    seed;
    rate;
    hard_ratio = 0.1;
    stall_ns = (20_000, 200_000);
    outage_ns = (500_000, 2_000_000);
    ipi_drop_ratio = 0.6;
    ipi_delay_ns = (10_000, 100_000);
    ack_timeout_ns = 100_000;
    max_ipi_retries = 4;
    rpc_retrans_ns = 200_000;
    max_rpc_retries = 4;
    max_copy_retries = 3;
  }

type stats = {
  mutable stalls : int;
  mutable outages : int;
  mutable ipi_drops : int;
  mutable ipi_delays : int;
  mutable rpc_drops : int;
  mutable copy_aborts : int;
  mutable shootdown_retries : int;
  mutable rpc_retries : int;
  mutable copy_retries : int;
  mutable degraded_freezes : int;
}

type t = {
  cfg : config;
  rng : Rng.t;
  st : stats;
  mutable samples : int array;
  mutable nsamples : int;
}

let create cfg =
  if cfg.rate < 0.0 || cfg.rate > 1.0 then invalid_arg "Inject.create: rate must be in [0, 1]";
  {
    cfg;
    rng = Rng.create cfg.seed;
    st =
      {
        stalls = 0;
        outages = 0;
        ipi_drops = 0;
        ipi_delays = 0;
        rpc_drops = 0;
        copy_aborts = 0;
        shootdown_retries = 0;
        rpc_retries = 0;
        copy_retries = 0;
        degraded_freezes = 0;
      };
    samples = Array.make 64 0;
    nsamples = 0;
  }

let rate t = t.cfg.rate
let seed t = t.cfg.seed
let stats t = t.st

let hit t = t.cfg.rate > 0.0 && Rng.float t.rng 1.0 < t.cfg.rate
let draw t (lo, hi) = Rng.int_in t.rng lo hi

(* Replays the next rate draw on a copy of the stream: tells whether the
   next [module_fault] will inject, without consuming anything or touching
   stats.  Rate 0 short-circuits (no allocation, no copy). *)
let peek_module_fault t =
  t.cfg.rate > 0.0 && Rng.float (Rng.copy t.rng) 1.0 < t.cfg.rate

let module_fault t =
  if not (hit t) then `None
  else if Rng.float t.rng 1.0 < t.cfg.hard_ratio then begin
    t.st.outages <- t.st.outages + 1;
    `Outage (draw t t.cfg.outage_ns)
  end
  else begin
    t.st.stalls <- t.st.stalls + 1;
    `Stall (draw t t.cfg.stall_ns)
  end

let ipi_fault t ~attempt =
  if not (hit t) then `Deliver
  else if Rng.float t.rng 1.0 < t.cfg.ipi_drop_ratio then
    if attempt >= t.cfg.max_ipi_retries then `Deliver  (* bounded adversary *)
    else begin
      t.st.ipi_drops <- t.st.ipi_drops + 1;
      `Drop
    end
  else begin
    t.st.ipi_delays <- t.st.ipi_delays + 1;
    `Delay (draw t t.cfg.ipi_delay_ns)
  end

let rpc_drop t ~attempt =
  if attempt >= t.cfg.max_rpc_retries then false
  else if hit t then begin
    t.st.rpc_drops <- t.st.rpc_drops + 1;
    true
  end
  else false

let block_abort t ~words =
  if words <= 1 || not (hit t) then None
  else begin
    t.st.copy_aborts <- t.st.copy_aborts + 1;
    Some (Rng.int_in t.rng 1 (words - 1))
  end

(* Backoff doubles per retry; shifts are safe for the attempt counts the
   retry bounds allow. *)
let ack_timeout t ~attempt = t.cfg.ack_timeout_ns lsl min attempt 20
let rpc_retrans t ~attempt = t.cfg.rpc_retrans_ns lsl min attempt 20
let max_ipi_retries t = t.cfg.max_ipi_retries
let max_rpc_retries t = t.cfg.max_rpc_retries
let max_copy_retries t = t.cfg.max_copy_retries

let note_shootdown_retry t = t.st.shootdown_retries <- t.st.shootdown_retries + 1
let note_rpc_retry t = t.st.rpc_retries <- t.st.rpc_retries + 1
let note_copy_retry t = t.st.copy_retries <- t.st.copy_retries + 1
let note_degraded_freeze t = t.st.degraded_freezes <- t.st.degraded_freezes + 1

let note_recovery t ns =
  if t.nsamples = Array.length t.samples then begin
    let bigger = Array.make (2 * t.nsamples) 0 in
    Array.blit t.samples 0 bigger 0 t.nsamples;
    t.samples <- bigger
  end;
  t.samples.(t.nsamples) <- ns;
  t.nsamples <- t.nsamples + 1

let recovery_samples t = Array.sub t.samples 0 t.nsamples

let faults_injected t =
  t.st.stalls + t.st.outages + t.st.ipi_drops + t.st.ipi_delays + t.st.rpc_drops
  + t.st.copy_aborts

let retries t = t.st.shootdown_retries + t.st.rpc_retries + t.st.copy_retries

let fingerprint t =
  Printf.sprintf
    "stall=%d outage=%d ipi_drop=%d ipi_delay=%d rpc_drop=%d abort=%d sd_retry=%d \
     rpc_retry=%d copy_retry=%d freeze_degrade=%d recov=%d"
    t.st.stalls t.st.outages t.st.ipi_drops t.st.ipi_delays t.st.rpc_drops t.st.copy_aborts
    t.st.shootdown_retries t.st.rpc_retries t.st.copy_retries t.st.degraded_freezes t.nsamples

let pp_stats fmt t =
  Format.fprintf fmt
    "@[<v>injected: %d module stalls, %d outages, %d IPI drops, %d IPI delays, %d RPC drops, \
     %d aborted transfers@,\
     recovered: %d shootdown retries, %d RPC retransmissions, %d copy retries, %d pages \
     frozen in place@]"
    t.st.stalls t.st.outages t.st.ipi_drops t.st.ipi_delays t.st.rpc_drops t.st.copy_aborts
    t.st.shootdown_retries t.st.rpc_retries t.st.copy_retries t.st.degraded_freezes
