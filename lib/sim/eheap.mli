(** Array-backed binary min-heap specialized to [(time, seq)] integer keys.

    This is the engine's event queue.  The pairing {!Heap} allocates a node
    per insert and chases pointers on every delete-min; this heap keeps keys
    and payloads in flat arrays, so steady-state insert/pop allocates
    nothing and the hot comparison is a single immediate-[int] compare.

    Keys are pairs [(time, seq)] ordered lexicographically; [seq] must be
    unique per live entry (the engine's monotone sequence number), which
    makes the order total and pops deterministic.  While both components
    fit their packed ranges the key lives as one tagged [int]
    ([time lsl seq_bits lor seq]); the first out-of-range insert migrates
    the whole heap to a two-array [(time, seq)] fallback with identical
    ordering, so correctness never depends on the ranges. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] pre-sizes the arrays for [capacity] entries (default
    1024; grows by doubling).  [dummy] fills vacated payload slots so the
    heap never retains popped values. *)

val size : 'a t -> int
(** O(1). *)

val is_empty : 'a t -> bool

val add : 'a t -> time:int -> seq:int -> 'a -> unit
(** Insert a payload keyed [(time, seq)].  Both components must be
    non-negative. *)

val min_time : 'a t -> int
(** Time component of the smallest key.  Raises [Invalid_argument] when
    empty. *)

val min_seq : 'a t -> int
(** Sequence component of the smallest key.  Raises [Invalid_argument]
    when empty. *)

val pop : 'a t -> 'a
(** Remove and return the payload with the smallest key.  Raises
    [Invalid_argument] when empty. *)

val is_packed : 'a t -> bool
(** Whether keys currently live in the single-[int] packed representation
    (exposed for tests). *)

val max_packed_time : int
(** Largest [time] representable in packed mode (exposed for tests). *)

val max_packed_seq : int
(** Largest [seq] representable in packed mode (exposed for tests). *)
