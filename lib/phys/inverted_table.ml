type t = {
  table_module : int;
  page_words : int;
  frames : Frame.t option array;  (* materialized on first allocation *)
  by_cpage : (int, int) Hashtbl.t;  (* cpage id -> frame index *)
  mutable free_list : int list;
  mutable nfree : int;
}

(* Frames are materialized lazily: simulated machines configure thousands
   of frames per module but most workloads touch a handful of pages, and
   eagerly building every page-sized data array dominated simulator
   construction time.  A frame's backing array appears the first time the
   frame is handed out; once materialized it is reused across free/alloc
   cycles, preserving physical identity (a re-allocated frame is the same
   [Frame.t], with whatever stale data it last held — exactly the eager
   behaviour). *)
let frame_at t i =
  match t.frames.(i) with
  | Some f -> f
  | None ->
    let f = Frame.create ~mem_module:t.table_module ~index:i ~words:t.page_words in
    t.frames.(i) <- Some f;
    f

let create ~mem_module ~frames ~page_words =
  if frames <= 0 then invalid_arg "Inverted_table.create: frames must be positive";
  if page_words <= 0 then invalid_arg "Inverted_table.create: page_words must be positive";
  let free_list = List.init frames (fun i -> i) in
  {
    table_module = mem_module;
    page_words;
    frames = Array.make frames None;
    by_cpage = Hashtbl.create (frames * 2);
    free_list;
    nfree = frames;
  }

let mem_module t = t.table_module
let capacity t = Array.length t.frames
let free_count t = t.nfree
let used_count t = capacity t - t.nfree

let alloc t ~cpage =
  if Hashtbl.mem t.by_cpage cpage then
    invalid_arg
      (Printf.sprintf "Inverted_table.alloc: module %d already backs cpage %d"
         t.table_module cpage);
  match t.free_list with
  | [] -> None
  | i :: rest ->
    t.free_list <- rest;
    t.nfree <- t.nfree - 1;
    let f = frame_at t i in
    Frame.set_owner f (Some cpage);
    Hashtbl.replace t.by_cpage cpage i;
    Some f

let lookup t ~cpage =
  match Hashtbl.find_opt t.by_cpage cpage with
  | None -> None
  | Some i -> Some (frame_at t i)

let free t frame =
  if Frame.mem_module frame <> t.table_module then
    invalid_arg "Inverted_table.free: frame belongs to another module";
  begin
    match Frame.owner frame with
    | None -> invalid_arg "Inverted_table.free: frame is already free"
    | Some cpage -> Hashtbl.remove t.by_cpage cpage
  end;
  Frame.set_owner frame None;
  t.free_list <- Frame.index frame :: t.free_list;
  t.nfree <- t.nfree + 1

let frame t i = frame_at t i

let iter_used f t =
  Array.iter
    (function
      | Some fr when Frame.owner fr <> None -> f fr
      | _ -> ())
    t.frames
