(** A physical page frame.

    Frames carry real data words: replication block-copies them, and the
    application reads and writes through them, so protocol bugs corrupt
    application results and are caught by the output-checking tests. *)

type t

val create : mem_module:int -> index:int -> words:int -> t

val mem_module : t -> int
(** The memory module holding this frame. *)

val index : t -> int
(** Frame number within its module. *)

val words : t -> int

val owner : t -> int option
(** Id of the coherent page backed by this frame, if allocated. *)

val set_owner : t -> int option -> unit

val get : t -> int -> int
(** [get f off] reads word [off]. *)

val set : t -> int -> int -> unit

val read_words : t -> off:int -> dst:int array -> dst_off:int -> words:int -> unit
(** Copy [words] data words starting at [off] into [dst] at [dst_off] — the
    data plane of a block-transfer chunk, one [Array.blit] instead of a
    per-word loop. *)

val write_words : t -> off:int -> src:int array -> src_off:int -> words:int -> unit

val blit_from : src:t -> dst:t -> unit
(** Copy all data words of [src] into [dst] (the data plane of a block
    transfer).  Both frames must have the same size. *)

val fill_zero : t -> unit

val equal_data : t -> t -> bool
(** Word-for-word data equality (used by coherence invariant checks). *)

val pp : Format.formatter -> t -> unit
