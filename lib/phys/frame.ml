type t = {
  frame_module : int;
  frame_index : int;
  data : int array;
  mutable owner : int;  (* owning cpage id, or -1 when free *)
}

let create ~mem_module ~index ~words =
  if words <= 0 then invalid_arg "Frame.create: words must be positive";
  { frame_module = mem_module; frame_index = index; data = Array.make words 0; owner = -1 }

let mem_module t = t.frame_module
let index t = t.frame_index
let words t = Array.length t.data
let owner t = if t.owner < 0 then None else Some t.owner

let set_owner t = function
  | None -> t.owner <- -1
  | Some id ->
    if id < 0 then invalid_arg "Frame.set_owner: negative cpage id";
    t.owner <- id

let get t off = t.data.(off)
let set t off v = t.data.(off) <- v

let read_words t ~off ~dst ~dst_off ~words = Array.blit t.data off dst dst_off words
let write_words t ~off ~src ~src_off ~words = Array.blit src src_off t.data off words

let blit_from ~src ~dst =
  if Array.length src.data <> Array.length dst.data then
    invalid_arg "Frame.blit_from: size mismatch";
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let fill_zero t = Array.fill t.data 0 (Array.length t.data) 0

let equal_data a b =
  Array.length a.data = Array.length b.data
  &&
  let rec loop i =
    i >= Array.length a.data || (a.data.(i) = b.data.(i) && loop (i + 1))
  in
  loop 0

let pp fmt t =
  Format.fprintf fmt "frame(m%d.%d%s)" t.frame_module t.frame_index
    (if t.owner < 0 then ", free" else Printf.sprintf ", cpage %d" t.owner)
