(** Domain-safety lint: toplevel mutable state in library code.

    The sweep harness ({!Platinum_runner.Par}) runs simulations on
    parallel domains; a [ref] or [Hashtbl.t] created at module toplevel is
    shared, unsynchronized, across all of them.  This pass blanks comments
    and strings, then flags every column-0 [let] value binding whose
    right-hand side constructs a mutable container — unless it is
    [Atomic.make], or carries an explicit [lint: allow toplevel-state]
    comment on or just above the binding.

    Run it with [dune exec bin/lint.exe] (defaults to scanning [lib/]). *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  name : string;  (** the bound identifier *)
  construct : string;  (** what it creates, e.g. ["ref"], ["Hashtbl.create"] *)
  allowed : string option;
      (** [None]: a violation.  [Some reason]: permitted — ["Atomic"] or
          ["marker"] (an explicit allow comment). *)
}

val allow_marker : string
(** The comment text that waives a finding: ["lint: allow toplevel-state"]. *)

val constructs : string list
(** The flagged constructors. *)

val strip : string -> string
(** Blank comment and string-literal contents, preserving line structure
    (exposed for tests). *)

val scan_source : file:string -> string -> finding list
(** Lint one compilation unit's source text.  Returns all findings,
    allowed ones included (callers decide the exit code on the
    [allowed = None] subset). *)

val read_file : string -> string
(** Whole-file read (shared with the typed-AST pass in {!Ast_lint}). *)

val files_under : string -> string list
(** All [.ml] files under a path, recursively; skips [_build] and
    dot-directories. *)

val scan_files : string list -> finding list
val pp_finding : Format.formatter -> finding -> unit
