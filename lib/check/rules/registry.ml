(* The rule registry and the seeded-mutation must-catch gate.

   Lives beside the rules (not in {!Ast_lint}) because rules depend on
   the framework module; the registry depends on the rules. *)

open Ast_lint

let rules : rule list =
  [ Rule_epoch.rule; Rule_settle.rule; Rule_alloc.rule; Rule_domain.rule ]

let run_rules ?(rules = rules) units =
  List.concat_map (fun (r : rule) -> r.run units) rules |> List.sort compare_findings

let violations findings = List.filter (fun f -> f.allowed = None) findings

(* --- the must-catch gate ---

   A linter that reports nothing is indistinguishable from a linter that
   checks nothing, so each non-trivial rule is validated against a seeded
   mutation of the real tree (the same discipline the mc experiment
   applies to the runtime monitor): delete the [fp_bump] from
   [Coherent.freeze_page], and unwrap the [settle] around the kernel's
   [Compute] arm, in *in-memory* copies of the sources; the rule must
   report exactly that site as an unexempted violation.  The surgery
   anchors on exact source substrings and fails loudly when they are
   missing, so a refactor that moves either site breaks the gate rather
   than silently testing nothing. *)

type gate = { g_name : string; g_result : (unit, string) result }

let expect_violation ~rule_ ~name findings =
  let hits =
    List.filter
      (fun f -> f.rule = rule_ && f.allowed = None && f.name = name)
      findings
  in
  match hits with
  | _ :: _ -> Ok ()
  | [] ->
    Error
      (Printf.sprintf "rule %s did not report the seeded violation in %s" rule_ name)

let gate_epoch units =
  match
    mutate_unit units ~base:"coherent.ml"
      ~f:(excise ~anchor:"let freeze_page" ~needle:"fp_bump t;")
  with
  | Error e -> Error ("mutation failed: " ^ e)
  | Ok mutated ->
    expect_violation ~rule_:"epoch-soundness" ~name:"Coherent.freeze_page"
      (Rule_epoch.rule.run mutated)

let gate_settle units =
  let wrapped = "settle t th (fun () -> complete t th k () (max ns 0))" in
  let bare = "complete t th k () (max ns 0)" in
  match
    mutate_unit units ~base:"kernel.ml"
      ~f:(replace ~anchor:"Eff.Compute" ~needle:wrapped ~repl:bare)
  with
  | Error e -> Error ("mutation failed: " ^ e)
  | Ok mutated ->
    expect_violation ~rule_:"settle-coverage" ~name:"Compute"
      (Rule_settle.rule.run mutated)

let mutation_gate units =
  [
    { g_name = "epoch-soundness catches a deleted fp_bump"; g_result = gate_epoch units };
    { g_name = "settle-coverage catches an unwrapped arm"; g_result = gate_settle units };
  ]
