(* toplevel-state: the textual domain-safety rule ({!Lint}) re-hosted on
   the typed AST.

   Same invariant — library code runs on parallel domains (grid sweeps
   and the sharded engine), so a mutable container created at module
   toplevel is shared, unsynchronized, across domains — but checked on
   the [Parsetree] instead of stripped text: no column-0 assumption, no
   formatting sensitivity, and nested [module] structures are scanned
   too (the textual pass only sees column-0 bindings).  The construct
   catalogue is shared with {!Lint.constructs} so the two passes cannot
   drift; the textual pass stays as a fallback oracle with a superset
   test tying them together.

   As in the textual rule, bindings whose right-hand side is a function
   are skipped (they allocate per call), [Atomic.make] is reported as
   allowed, and a [lint: allow toplevel-state] marker waives a finding.
   Functor bodies are skipped for the same reason function bodies of
   value bindings are not: their allocations happen per application. *)

open Ast_lint

let rule_id = "toplevel-state"

(* Dotted constructors from the shared catalogue; [ref] and [lazy] have
   their own AST shapes. *)
let dotted = List.filter (fun c -> c <> "ref" && c <> "lazy") Lint.constructs

let scan_binding u ~name (rhs : Parsetree.expression) acc =
  let out = ref acc in
  let add ?allowed (e : Parsetree.expression) construct =
    out :=
      finding ?allowed u ~rule:rule_id ~line:e.pexp_loc.loc_start.pos_lnum ~name ~construct
        ~detail:(Printf.sprintf "toplevel mutable state: [%s] binds %s" name construct)
      :: !out
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_lazy _ -> add e "lazy"
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
            let f = flatten txt in
            if f = "Atomic.make" then add ~allowed:"Atomic" e "Atomic.make"
            else if f = "ref" then add e "ref"
            else if List.mem f dotted then add e f
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it rhs;
  !out

let rec scan_structure u (str : Parsetree.structure) acc =
  List.fold_left
    (fun acc (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.fold_left
          (fun acc (vb : Parsetree.value_binding) ->
            if is_function vb.pvb_expr then acc
            else
              let name =
                match binding_name vb.pvb_pat with Some n -> n | None -> "<pattern>"
              in
              scan_binding u ~name vb.pvb_expr acc)
          acc vbs
      | Pstr_module mb -> scan_module_expr u mb.pmb_expr acc
      | Pstr_recmodule mbs ->
        List.fold_left (fun acc (mb : Parsetree.module_binding) -> scan_module_expr u mb.pmb_expr acc) acc mbs
      | Pstr_include incl -> scan_module_expr u incl.pincl_mod acc
      | _ -> acc)
    acc str

and scan_module_expr u (me : Parsetree.module_expr) acc =
  match me.pmod_desc with
  | Pmod_structure str -> scan_structure u str acc
  | Pmod_constraint (me, _) -> scan_module_expr u me acc
  | Pmod_functor _ -> acc (* per-application, like a function body *)
  | _ -> acc

let run units = List.concat_map (fun u -> List.rev (scan_structure u u.u_ast [])) units

let rule =
  {
    rule_id;
    rule_doc =
      "toplevel mutable state in library code must be Atomic or carry an \
       explicit allow marker (domains share it unsynchronized)";
    run;
  }
