(* settle-coverage: every kernel handler arm that resumes a fiber goes
   through [settle], and every [Eff.t] constructor is handled.

   [settle] is the single point where the kernel closes a coalesced run
   (DESIGN.md §4g): it drains the armed fast-path context and charges the
   accumulated latency before the fiber's continuation does anything
   else.  An effect arm that resumes directly — [complete]/[continue]
   without the [settle] wrapper — silently drops the in-flight charge and
   leaves the context armed across a suspension, corrupting the next
   fiber's accounting.  The rule finds the [match_with] handler record in
   [kernel.ml] and checks its three fields: [retc] and [exnc] must
   mention [settle] in their bodies, and every [Some (fun k -> ...)]
   returned by an [effc] arm must too.  Arms returning [None] (the
   forwarding fallback) are fine — the effect is handled, and settled, by
   an outer handler.

   The second half is exhaustiveness: [Eff.t] is an open type
   ([type _ Effect.t +=]), so the compiler cannot warn when a new effect
   misses its arm — it just forwards to no outer handler and kills the
   fiber at runtime.  The rule collects every extension constructor
   declared in [eff.ml] and requires a same-named pattern in the [effc]
   match. *)

open Ast_lint

let rule_id = "settle-coverage"

(* --- constructor inventory from eff.ml --- *)

let eff_constructors units =
  match List.find_opt (fun u -> u.u_base = "eff.ml") units with
  | None -> []
  | Some u ->
    List.concat_map
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_typext te when last te.ptyext_path.txt = "t" ->
          List.filter_map
            (fun (ec : Parsetree.extension_constructor) ->
              match ec.pext_kind with
              | Pext_decl (_, _, _) -> Some ec.pext_name.txt
              | Pext_rebind _ -> None)
            te.ptyext_constructors
        | _ -> [])
      u.u_ast

(* --- handler-record discovery --- *)

(* Constructor names a case pattern matches (through aliases, constraints
   and or-patterns); [] for wildcards and variables. *)
let rec pattern_constructors (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> [ last txt ]
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) -> pattern_constructors p
  | Ppat_or (a, b) -> pattern_constructors a @ pattern_constructors b
  | _ -> []

(* Is this expression [Some e] — an arm that takes the effect?  Returns
   the payload, the resuming body that must settle. *)
let some_payload (e : Parsetree.expression) =
  match (peel_params e).pexp_desc with
  | Pexp_construct ({ txt; _ }, Some payload) when last txt = "Some" -> Some payload
  | _ -> None

let is_none (e : Parsetree.expression) =
  match (peel_params e).pexp_desc with
  | Pexp_construct ({ txt; _ }, None) when last txt = "None" -> true
  | _ -> false

type handler = {
  h_retc : (int * Parsetree.expression) option;
  h_exnc : (int * Parsetree.expression) option;
  h_effc : (int * Parsetree.expression) option;
}

(* The first record carrying retc/exnc/effc fields — the deep-handler
   argument of [match_with] in [start_fiber]. *)
let find_handler (u : unit_) =
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_record (fields, None) when !found = None ->
            let get name =
              List.find_map
                (fun (({ txt; _ } : Longident.t Asttypes.loc), (v : Parsetree.expression)) ->
                  if last txt = name then Some (v.pexp_loc.loc_start.pos_lnum, v) else None)
                fields
            in
            let h = { h_retc = get "retc"; h_exnc = get "exnc"; h_effc = get "effc" } in
            if h.h_retc <> None && h.h_effc <> None then found := Some h
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  List.iter (it.structure_item it) u.u_ast;
  !found

(* --- the rule --- *)

let check_field u name slot acc =
  match slot with
  | None ->
    finding u ~rule:rule_id ~line:1 ~name ~construct:"missing field"
      ~detail:(Printf.sprintf "handler record has no %s field" name)
    :: acc
  | Some (line, e) ->
    if mentions_ident "settle" (peel_params e) then acc
    else
      finding u ~rule:rule_id ~line ~name ~construct:"unsettled resume"
        ~detail:(name ^ " resumes without going through settle")
      :: acc

let check_effc u slot acc =
  match slot with
  | None -> (acc, [])
  | Some (_line, e) -> (
    match (peel_params e).pexp_desc with
    | Pexp_match (_, cases) ->
      List.fold_left
        (fun (acc, handled) (case : Parsetree.case) ->
          let ctors = pattern_constructors case.pc_lhs in
          let handled = ctors @ handled in
          let line = case.pc_lhs.ppat_loc.loc_start.pos_lnum in
          let name = match ctors with [] -> "_" | c :: _ -> c in
          match some_payload case.pc_rhs with
          | Some payload ->
            if mentions_ident "settle" payload then (acc, handled)
            else
              ( finding u ~rule:rule_id ~line ~name ~construct:"unsettled resume"
                  ~detail:
                    (Printf.sprintf
                       "effc arm %s resumes without going through settle" name)
                :: acc,
                handled )
          | None ->
            if is_none case.pc_rhs || ctors = [] then (acc, handled)
            else
              ( finding u ~rule:rule_id ~line ~name ~construct:"opaque arm"
                  ~detail:
                    (Printf.sprintf
                       "effc arm %s is neither Some (fun k -> ... settle ...) nor None"
                       name)
                :: acc,
                handled ))
        (acc, []) cases
    | _ ->
      ( finding u ~rule:rule_id ~line:_line ~name:"effc" ~construct:"opaque effc"
          ~detail:"effc body is not a direct match on the effect"
        :: acc,
        [] ))

let run units =
  match List.find_opt (fun u -> u.u_base = "kernel.ml") units with
  | None -> []
  | Some u -> (
    match find_handler u with
    | None ->
      [
        finding u ~rule:rule_id ~line:1 ~name:"kernel.ml" ~construct:"no handler"
          ~detail:"no match_with handler record (retc/exnc/effc) found";
      ]
    | Some h ->
      let acc = [] in
      let acc = check_field u "retc" h.h_retc acc in
      let acc = check_field u "exnc" h.h_exnc acc in
      let acc, handled = check_effc u h.h_effc acc in
      let eff_line, missing =
        match h.h_effc with
        | Some (line, _) ->
          (line, List.filter (fun c -> not (List.mem c handled)) (eff_constructors units))
        | None -> (1, [])
      in
      let acc =
        if h.h_effc = None then
          finding u ~rule:rule_id ~line:1 ~name:"effc" ~construct:"missing field"
            ~detail:"handler record has no effc field"
          :: acc
        else acc
      in
      List.fold_left
        (fun acc c ->
          finding u ~rule:rule_id ~line:eff_line ~name:c ~construct:"unhandled constructor"
            ~detail:(Printf.sprintf "Eff.t constructor %s has no effc arm" c)
          :: acc)
        acc missing)

let rule =
  {
    rule_id;
    rule_doc =
      "every kernel handler arm that resumes a fiber goes through settle, and \
       every Eff.t constructor has an arm";
    run;
  }
