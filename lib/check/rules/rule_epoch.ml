(* epoch-soundness: every coherence-visible mutation is bracketed by an
   [fp_epoch] bump (DESIGN.md §4g/§4h).

   The coalescing fast path caches page-eligibility probes against
   [Coherent.fp_epoch]; a mutation of directory, translation or freeze
   state that does not bump the epoch leaves armed fibers draining words
   against a stale probe — the exact bug class the runtime monitor can
   only catch on schedules that exercise it.  This rule proves the
   bracketing statically: it builds the top-level call graph across all
   of [lib/], marks every function in the five state modules whose body
   mutates coherence-visible state (field [<-], [Array.set]/[fill]/[blit]
   on a state-field array, [Flat.set]/[remove]/[clear]), and requires
   each such mutator to either bump directly ([t.fp_epoch <- ...] or a
   call reaching [fp_bump]) or be covered by its callers.

   Coverage is the least fixpoint of

     covered(f) = bumps(f) \/ marked(f)
                  \/ (callers(f) <> {} /\ forall c in callers(f). covered(c))

   — every entry path into [f] passes through a bump, so the mutation is
   bracketed no matter how [f] is reached.  The direction matters: the
   weaker "f can reach a bump" accepts a [freeze_page] whose own bump was
   deleted (it still reaches bumps through the daemon it triggers), so it
   could never catch the seeded mutation the must-catch gate deletes.
   Functions with no in-library callers (public API, called by kernels
   and tests we do not scan) get no caller coverage: they must bump
   themselves or carry a [lint: allow epoch-soundness] marker.  Markers
   participate in propagation — marking a teardown entry point covers the
   helpers only it calls — but a mutator's own marker never makes it
   *structurally* covered: it is reported with [allowed = Some "marker"]
   so the exemption stays visible in [--ast] output. *)

open Ast_lint

let rule_id = "epoch-soundness"

(* The modules whose mutable state the fast-path probes read. *)
let state_bases = [ "coherent.ml"; "cpage.ml"; "cmap.ml"; "pmap.ml"; "atc.ml" ]

(* Mutable fields in the state modules that are *not* coherence-visible:
   stats and counters, memo/scratch cells, message-queue bookkeeping, the
   packed mirror (rebuilt from [entries]), and the ATC's one-entry lookup
   cache (keyed so a stale hit is impossible, DESIGN.md §4e). *)
let excluded_fields =
  [
    (* coherent.ml: counters, timestamps, scratch, hooks, id wells *)
    "freezes"; "was_frozen"; "thaws"; "frozen_at"; "last_thaw_at";
    "atc_reloads"; "pages_freed"; "s_latency"; "in_daemon"; "fault_ctx";
    "next_aspace"; "next_cpage"; "probe"; "freeze_hook";
    (* cmap.ml: the shootdown message queue *)
    "queue"; "queue_len"; "queue_dead"; "posted"; "msg_targets"; "msg_done";
    (* pmap.ml: packed mirror of [entries] *)
    "packed";
    (* atc.ml: last-lookup cache *)
    "last_vpage"; "last_entry";
  ]

type node = {
  n_id : string;  (* "Module.func" *)
  n_unit : unit_;
  n_line : int;  (* binding start, for marker scope and findings *)
  mutable n_mutations : (int * string) list;  (* line, construct *)
  mutable n_bumps : bool;
  mutable n_callees : string list;
}

let is_state u = List.mem u.u_base state_bases

(* Pass 1: one node per top-level [let] binding, across every unit. *)
let collect_nodes units =
  let tbl = Hashtbl.create 512 in
  List.iter
    (fun u ->
      List.iter
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match binding_name vb.pvb_pat with
                | Some name when name <> "_" ->
                  let id = u.u_module ^ "." ^ name in
                  Hashtbl.replace tbl id
                    {
                      n_id = id;
                      n_unit = u;
                      n_line = vb.pvb_loc.loc_start.pos_lnum;
                      n_mutations = [];
                      n_bumps = false;
                      n_callees = [];
                    }
                | _ -> ())
              vbs
          | _ -> ())
        u.u_ast)
    units;
  tbl

let resolve u tbl (lid : Longident.t) =
  match lid with
  | Lident n ->
    let id = u.u_module ^ "." ^ n in
    if Hashtbl.mem tbl id then Some id else None
  | Ldot _ -> (
    match last_module lid with
    | None -> None
    | Some m ->
      let id = m ^ "." ^ last lid in
      if Hashtbl.mem tbl id then Some id else None)
  | Lapply _ -> None

(* Mutating [Array] primitives and the index of the operand they write. *)
let array_mut_arg = function
  | "set" | "unsafe_set" | "fill" -> Some 0
  | "blit" -> Some 2
  | _ -> None

let field_arg args k =
  match List.nth_opt args k with
  | Some ((_ : Asttypes.arg_label), (a : Parsetree.expression)) -> (
    match a.pexp_desc with
    | Pexp_field (_, { txt = flid; _ }) -> Some (last flid)
    | _ -> None)
  | None -> None

(* Pass 2: walk each node's body for callees, mutations and bumps. *)
let analyze_node tbl (n : node) (body : Parsetree.expression) =
  let u = n.n_unit in
  let state = is_state u in
  let mut line c = n.n_mutations <- (line, c) :: n.n_mutations in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          let line = e.pexp_loc.loc_start.pos_lnum in
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            match resolve u tbl txt with
            | Some id ->
              if id <> n.n_id then n.n_callees <- id :: n.n_callees;
              if last txt = "fp_bump" && last_module txt <> Some "Fastpath" then
                n.n_bumps <- true
            | None -> ())
          | Pexp_setfield (_, { txt = flid; _ }, _) ->
            let f = last flid in
            if f = "fp_epoch" then n.n_bumps <- true
            else if state && not (List.mem f excluded_fields) then
              mut line ("field " ^ f ^ " <-")
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when state -> (
            match (last_module txt, last txt) with
            | Some "Flat", (("set" | "remove" | "clear") as op) ->
              mut line ("Flat." ^ op)
            | Some "Array", op -> (
              match array_mut_arg op with
              | Some k -> (
                match field_arg args k with
                | Some f when not (List.mem f excluded_fields) ->
                  mut line (Printf.sprintf "Array.%s on field %s" op f)
                | _ -> ())
              | None -> ())
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body

let build units =
  let tbl = collect_nodes units in
  List.iter
    (fun u ->
      List.iter
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match binding_name vb.pvb_pat with
                | Some name when name <> "_" -> (
                  match Hashtbl.find_opt tbl (u.u_module ^ "." ^ name) with
                  | Some n when n.n_unit == u && n.n_line = vb.pvb_loc.loc_start.pos_lnum ->
                    analyze_node tbl n vb.pvb_expr
                  | _ -> ())
                | _ -> ())
              vbs
          | _ -> ())
        u.u_ast)
    units;
  tbl

let marked (n : node) = marker_allows n.n_unit ~rule:rule_id ~line:n.n_line

let run units =
  let tbl = build units in
  (* reverse edges, self-edges dropped (a self-call's entry is dominated
     by the external entries) *)
  let callers = Hashtbl.create 512 in
  Hashtbl.iter
    (fun _ n ->
      List.iter
        (fun callee ->
          let prev = try Hashtbl.find callers callee with Not_found -> [] in
          if not (List.memq n prev) then Hashtbl.replace callers callee (n :: prev))
        n.n_callees)
    tbl;
  let callers_of id = try Hashtbl.find callers id with Not_found -> [] in
  let covered = Hashtbl.create 512 in
  Hashtbl.iter (fun id n -> if n.n_bumps || marked n then Hashtbl.replace covered id ()) tbl;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun id _ ->
        if not (Hashtbl.mem covered id) then begin
          match callers_of id with
          | [] -> ()
          | cs when List.for_all (fun c -> Hashtbl.mem covered c.n_id) cs ->
            Hashtbl.replace covered id ();
            changed := true
          | _ -> ()
        end)
      tbl
  done;
  let findings = ref [] in
  Hashtbl.iter
    (fun id n ->
      if n.n_mutations <> [] then begin
        (* structural coverage deliberately ignores the node's own marker *)
        let structurally =
          n.n_bumps
          ||
          match callers_of id with
          | [] -> false
          | cs -> List.for_all (fun c -> Hashtbl.mem covered c.n_id) cs
        in
        if not structurally then begin
          let muts = List.sort compare n.n_mutations in
          let line, construct = List.hd muts in
          let extra = List.length muts - 1 in
          findings :=
            finding n.n_unit ~rule:rule_id ~line ~name:id ~construct
              ~detail:
                (Printf.sprintf
                   "mutates coherence-visible state (%s%s) on a path no fp_epoch bump brackets"
                   construct
                   (if extra > 0 then Printf.sprintf " and %d more site(s)" extra else ""))
            :: !findings
        end
      end)
    tbl;
  !findings

let rule =
  {
    rule_id;
    rule_doc =
      "every coherence-state mutation in core is bracketed by an fp_epoch bump \
       (static complement of the runtime monitor)";
    run;
  }
