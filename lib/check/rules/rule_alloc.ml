(* zero-alloc: hot-path functions contain no allocating constructs.

   The PR 5/7 fast paths promise an allocation-free steady state — the
   runtime Gc gate measures it, but only on the schedules a test drives.
   This rule is the static complement: for a catalogue of hot-path
   functions it walks the function body and flags every construct the
   compiler lowers to a minor-heap allocation — closures ([fun] below the
   parameter chain), tuples, records, non-empty arrays and lists,
   constructor and polymorphic-variant applications ([Some v] boxes),
   [ref], [lazy], first-class modules, boxed float literals, and partial
   applications of same-file functions (closure capture by another name;
   cross-module arities are unknown to a parser, so only same-file
   applications are checked).

   The check is direct-body-only — callees are not followed; each layer's
   hot functions are catalogued in their own file, and the seams between
   them (e.g. [Atc.find] returning a *stored* option cell rather than a
   fresh [Some]) are exactly the designs the callee's own entry enforces.
   Subtrees under [assert] and the raise family are exempt: a cold
   failure path may build its message.  A [lint: allow zero-alloc] marker
   waives a function that allocates by design on a cold sub-path the
   analysis cannot separate (e.g. [Fastpath.arm]'s once-per-backend
   [Some ops] refresh). *)

open Ast_lint

let rule_id = "zero-alloc"

(* file basename -> hot functions that must not allocate *)
let catalogue =
  [
    ( "coherent.ml",
      [
        "fp_bump"; "fp_epoch"; "fp_page_ok"; "fp_read"; "fp_write"; "fp_rmw";
        "read_word_s"; "write_word_s"; "rmw_word_s"; "finish_read"; "finish_write";
        "finish_rmw"; "after_write_inline"; "page_of"; "only_holder_maps";
      ] );
    ("flat.ml", [ "find"; "mem"; "remove"; "chunk_touched" ]);
    ("atc.ml", [ "find"; "peek" ]);
    ("cmap.ml", [ "find" ]);
    ("pmap.ml", [ "find" ]);
    ("cpage.ml", [ "any_copy"; "best_slot" ]);
    ( "eheap.ml",
      [
        "add"; "pop"; "min_time"; "min_seq"; "check_nonempty"; "sift_up_packed";
        "sift_down_packed"; "sift_up_fb"; "sift_down_fb"; "sift_up_packed_loop";
        "sift_down_packed_loop"; "sift_up_fb_loop"; "sift_down_fb_loop";
      ] );
    ( "fastpath.ml",
      [
        "arm"; "close"; "armed"; "value"; "slot_ok"; "decline"; "vpage_of";
        "try_read"; "try_write"; "try_rmw";
      ] );
    ("hist.ml", [ "record"; "record_n"; "index_of"; "bits_above" ]);
  ]

let raising = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* Syntactic arities of a unit's top-level bindings, for the
   partial-application check. *)
let arities (u : unit_) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match binding_name vb.pvb_pat with
            | Some name ->
              let a = arity_of vb.pvb_expr in
              if a > 0 then Hashtbl.replace tbl name a
            | None -> ())
          vbs
      | _ -> ())
    u.u_ast;
  tbl

let span (e : Parsetree.expression) = (e.pexp_loc.loc_start.pos_cnum, e.pexp_loc.loc_end.pos_cnum)

let inside (lo, hi) spans = List.exists (fun (l, h) -> l <= lo && hi <= h) spans

(* A trailing [function] is the binding's last parameter, not a closure
   allocated per call; its case bodies are what must stay clean. *)
let function_bodies (body : Parsetree.expression) =
  match body.pexp_desc with
  | Pexp_function cases ->
    List.concat_map
      (fun (c : Parsetree.case) ->
        c.pc_rhs :: (match c.pc_guard with Some g -> [ g ] | None -> []))
      cases
  | _ -> [ body ]

let check_function u arities ~name (body : Parsetree.expression) acc =
  let out = ref acc in
  let suppressed = ref [] in
  (* apply heads are re-visited as bare idents by the default iterator;
     remember them so [ref] is not flagged twice *)
  let heads = ref [] in
  let flag (e : Parsetree.expression) construct =
    if not (inside (span e) !suppressed) then
      out :=
        finding u ~rule:rule_id ~line:e.pexp_loc.loc_start.pos_lnum ~name ~construct
          ~detail:(Printf.sprintf "%s allocates (%s) on the hot path" name construct)
        :: !out
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_assert _ -> suppressed := span e :: !suppressed
          | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as head), args) -> (
            heads := fst (span head) :: !heads;
            let fname = flatten txt in
            if List.mem fname raising then suppressed := span e :: !suppressed
            else if fname = "ref" then flag e "ref"
            else
              match txt with
              | Lident n -> (
                match Hashtbl.find_opt arities n with
                | Some a when List.length args < a ->
                  flag e (Printf.sprintf "partial application of %s" n)
                | _ -> ())
              | _ -> ())
          | Pexp_ident { txt = Lident "ref"; _ } when not (List.mem (fst (span e)) !heads)
            ->
            flag e "ref"
          | Pexp_fun _ | Pexp_function _ -> flag e "closure"
          | Pexp_tuple _ -> flag e "tuple"
          | Pexp_record _ -> flag e "record"
          | Pexp_array (_ :: _) -> flag e "array literal"
          | Pexp_construct (_, Some _) -> flag e "constructor application"
          | Pexp_variant (_, Some _) -> flag e "polymorphic variant"
          | Pexp_lazy _ -> flag e "lazy"
          | Pexp_pack _ -> flag e "first-class module"
          | Pexp_constant (Pconst_float _) -> flag e "boxed float"
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  List.iter (it.expr it) (function_bodies body);
  !out

let run units =
  List.fold_left
    (fun acc u ->
      match List.assoc_opt u.u_base catalogue with
      | None -> acc
      | Some hot ->
        let ar = arities u in
        List.fold_left
          (fun acc (item : Parsetree.structure_item) ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
              List.fold_left
                (fun acc (vb : Parsetree.value_binding) ->
                  match binding_name vb.pvb_pat with
                  | Some name when List.mem name hot ->
                    check_function u ar ~name:(u.u_module ^ "." ^ name)
                      (peel_params vb.pvb_expr) acc
                  | _ -> acc)
                acc vbs
            | _ -> acc)
          acc u.u_ast)
    [] units

let rule =
  {
    rule_id;
    rule_doc =
      "catalogued hot-path functions contain no allocating constructs (static \
       complement of the runtime Gc gate)";
    run;
  }
