(** Typed-AST static analysis framework (DESIGN.md §4h).

    Parses library sources with the compiler's own parser
    ([Parse.implementation]) and runs pluggable rules over the
    [Parsetree], with precise locations and a [lint: allow <rule-id>]
    exemption-marker mechanism.  Rules live under [rules/] and are
    registered in {!Registry}; run the whole battery with
    [dune exec bin/lint.exe -- --ast]. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  rule : string;  (** rule id, e.g. ["epoch-soundness"] *)
  name : string;  (** offending function / binding / handler arm *)
  construct : string;  (** what triggered it, e.g. ["field frozen <-"] *)
  detail : string;  (** one human sentence *)
  allowed : string option;
      (** [None]: a violation.  [Some reason]: permitted — ["marker"] or a
          rule-specific reason such as ["Atomic"]. *)
}

(** One parsed compilation unit plus everything rules need: raw source,
    exemption markers, top-level item spans. *)
type unit_ = {
  u_file : string;
  u_base : string;  (** basename — rules key their catalogues on this *)
  u_module : string;  (** capitalized module name derived from the base *)
  u_source : string;
  u_ast : Parsetree.structure;
  u_markers : (int * string) list;  (** line, rule-id *)
  u_spans : (int * int) list;  (** top-level structure item line spans *)
}

type rule = {
  rule_id : string;
  rule_doc : string;
  run : unit_ list -> finding list;
}

exception Parse_error of string

val parse_source : file:string -> string -> Parsetree.structure
(** Raises {!Parse_error} with a located message on a syntax error. *)

val unit_of_source : file:string -> string -> unit_
val load_files : string list -> unit_ list
val load_dirs : string list -> unit_ list

val marker_allows : unit_ -> rule:string -> line:int -> bool
(** Is [line] waived for [rule]?  A marker covers its enclosing top-level
    structure item, reaching five lines above it for comment blocks that
    introduce a binding. *)

val finding :
  ?allowed:string ->
  unit_ ->
  rule:string ->
  line:int ->
  name:string ->
  construct:string ->
  detail:string ->
  finding
(** Build a finding; unless [?allowed] forces a reason, the marker scan
    decides [allowed]. *)

val compare_findings : finding -> finding -> int
val pp_finding : Format.formatter -> finding -> unit

(** {2 Longident and expression helpers for rules} *)

val flatten : Longident.t -> string
(** Dotted name, e.g. ["Domain.DLS.new_key"]; [""] for functor paths. *)

val last : Longident.t -> string

val last_module : Longident.t -> string option
(** Last module on a dotted path: both [Coherent.fp_bump] and
    [Platinum_core.Coherent.fp_bump] give [Some "Coherent"]. *)

val peel_params : Parsetree.expression -> Parsetree.expression
val arity_of : Parsetree.expression -> int
val is_function : Parsetree.expression -> bool
val binding_name : Parsetree.pattern -> string option
val mentions_ident : string -> Parsetree.expression -> bool

(** {2 In-memory mutation surgery (the must-catch gate)} *)

val excise : anchor:string -> needle:string -> string -> (string, string) result
(** Delete the first [needle] after the first [anchor]; [Error] when
    either is missing, so a refactor that moves the seeded mutation site
    breaks the gate loudly instead of silently testing nothing. *)

val replace :
  anchor:string -> needle:string -> repl:string -> string -> (string, string) result

val mutate_unit :
  unit_ list ->
  base:string ->
  f:(string -> (string, string) result) ->
  (unit_ list, string) result
(** Re-parse a transformed copy of the unit named [base] and splice it
    into the list in place of the original. *)
