(* Domain-safety lint: flag toplevel mutable state in library code.

   Library code runs on parallel domains two ways: the sweep harness fans
   independent simulations over a pool (grid parallelism), and the sharded
   engine (Sim.Shard) splits ONE simulation's shards across domains — so a
   [ref], a [Hashtbl.t] or any other mutable container created at module
   toplevel is shared, unsynchronized, across domains — a data race
   waiting for a schedule.  Per-instance state is fine in both regimes:
   grid cells own their instances, and shard handlers own their node's.
   The rule: toplevel mutable state must be [Atomic], or carry an explicit
   [lint: allow toplevel-state] comment documenting why it is safe (e.g. a
   test-only knob never touched under parallelism).

   This is a textual pass, not a typed one: it blanks comments and string
   literals, then inspects every column-0 [let] binding whose
   right-hand side is a value (not a [fun]/[function] or a binding with
   parameters — those allocate per call, which is fine).  Heuristic by
   design, precise enough for this codebase's ocamlformat style. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  name : string;  (** the bound identifier *)
  construct : string;  (** what it creates, e.g. ["ref"], ["Hashtbl.create"] *)
  allowed : string option;
      (** [None]: a violation.  [Some reason]: permitted — ["Atomic"] or
          ["marker"] (an explicit [lint: allow toplevel-state] comment). *)
}

let allow_marker = "lint: allow toplevel-state"

(* Mutable-container constructors worth flagging.  [Atomic.make] is
   handled separately (allowed); [lazy] forces exactly once but the
   forcing itself races, so it counts. *)
let constructs =
  [
    "ref";
    "Hashtbl.create";
    "Array.make";
    "Array.init";
    "Array.create_float";
    "Buffer.create";
    "Bytes.create";
    "Bytes.make";
    "Queue.create";
    "Stack.create";
    "Weak.create";
    "Dynarray.create";
    "Domain.DLS.new_key";
    "Float.Array.create";
    "lazy";
    (* copies/conversions allocate fresh mutable containers too *)
    "Array.copy";
    "Array.of_list";
    "Array.append";
    "Bytes.copy";
    "Bytes.of_string";
    "Hashtbl.copy";
    "Hashtbl.of_seq";
    "Hashtbl.of_list";
    "Queue.copy";
  ]

(* --- blanking comments and strings (structure-preserving) --- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let in_comment = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !in_comment > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        incr in_comment;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        decr in_comment;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '"' then begin
        (* strings nest inside comments and may contain comment closers *)
        blank !i;
        incr i;
        while !i < n && src.[!i] <> '"' do
          if src.[!i] = '\\' && !i + 1 < n then begin
            blank !i;
            blank (!i + 1);
            i := !i + 2
          end
          else begin
            blank !i;
            incr i
          end
        done;
        if !i < n then begin
          blank !i;
          incr i
        end
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      in_comment := 1;
      blank !i;
      blank (!i + 1);
      i := !i + 2
    end
    else if c = '"' then begin
      (* keep the quotes, blank the contents *)
      incr i;
      while !i < n && src.[!i] <> '"' do
        if src.[!i] = '\\' && !i + 1 < n then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          blank !i;
          incr i
        end
      done;
      if !i < n then incr i
    end
    else if c = '{' && !i + 1 < n && src.[!i + 1] = '|' then begin
      (* {|...|} quoted strings (the simple delimiter form) *)
      i := !i + 2;
      let fin = ref false in
      while (not !fin) && !i < n do
        if src.[!i] = '|' && !i + 1 < n && src.[!i + 1] = '}' then begin
          i := !i + 2;
          fin := true
        end
        else begin
          blank !i;
          incr i
        end
      done
    end
    else if c = '\'' && !i + 2 < n && (src.[!i + 1] <> '\\' && src.[!i + 2] = '\'') then
      (* simple char literal, e.g. '"' — don't let it open a string *)
      i := !i + 3
    else if c = '\'' && !i + 1 < n && src.[!i + 1] = '\\' then begin
      (* escaped char literal: skip to the closing quote *)
      i := !i + 2;
      while !i < n && src.[!i] <> '\'' do incr i done;
      if !i < n then incr i
    end
    else incr i
  done;
  Bytes.to_string out

(* --- binding structure --- *)

let split_lines s = String.split_on_char '\n' s

let starts_at_col0 line = String.length line > 0 && line.[0] <> ' ' && line.[0] <> '\t'

let has_prefix_word line word =
  let lw = String.length word in
  String.length line >= lw
  && String.sub line 0 lw = word
  && (String.length line = lw || not (is_ident_char line.[lw]))

(* Find [word] in [text] at a word boundary (neither side an identifier
   character, and not preceded by '.': [Foo.ref] is not [ref]).  Returns
   the character offset, or -1. *)
let find_word text word =
  let n = String.length text and lw = String.length word in
  let ok_at i =
    (i = 0 || (not (is_ident_char text.[i - 1])) && text.[i - 1] <> '.')
    && (i + lw >= n || not (is_ident_char text.[i + lw]))
  in
  let rec go i =
    if i + lw > n then -1
    else if String.sub text i lw = word && ok_at i then i
    else go (i + 1)
  in
  go 0

let contains_word text word = find_word text word >= 0

(* One toplevel binding: stripped lines [first, last] (0-based). *)
let classify ~file ~raw_lines ~stripped_lines first last =
  let text = String.concat "\n" (Array.to_list (Array.sub stripped_lines first (last - first + 1))) in
  match String.index_opt text '=' with
  | None -> None
  | Some eq ->
    let header = String.sub text 0 eq in
    let rhs = String.sub text (eq + 1) (String.length text - eq - 1) in
    (* Drop any type annotation from the header. *)
    let header =
      match String.index_opt header ':' with
      | Some c -> String.sub header 0 c
      | None -> header
    in
    let tokens =
      String.split_on_char ' ' (String.map (fun c -> if c = '\n' || c = '\t' then ' ' else c) header)
      |> List.filter (fun t -> t <> "" && t <> "let" && t <> "rec")
    in
    (match tokens with
    | [ name ] ->
      (* A value binding.  Functions are fine; so is anything immutable. *)
      let rhs_trim = String.trim rhs in
      if has_prefix_word rhs_trim "fun" || has_prefix_word rhs_trim "function" then None
      else begin
        let construct =
          if contains_word rhs "Atomic.make" then Some ("Atomic.make", Some "Atomic")
          else
            match List.find_opt (fun c -> contains_word rhs c) constructs with
            | Some c -> Some (c, None)
            | None -> None
        in
        match construct with
        | None -> None
        | Some (construct, allowed) ->
          let allowed =
            if allowed <> None then allowed
            else begin
              (* an explicit marker on the binding or just above it *)
              let lo = max 0 (first - 3) in
              let has_marker = ref false in
              for l = lo to min last (Array.length raw_lines - 1) do
                let line = raw_lines.(l) in
                let rec search i =
                  if i + String.length allow_marker > String.length line then ()
                  else if String.sub line i (String.length allow_marker) = allow_marker then
                    has_marker := true
                  else search (i + 1)
                in
                search 0
              done;
              if !has_marker then Some "marker" else None
            end
          in
          Some { file; line = first + 1; name; construct; allowed }
      end
    | _ -> None (* parameters: a function, allocates per call *))

let scan_source ~file src =
  let stripped = strip src in
  let raw_lines = Array.of_list (split_lines src) in
  let stripped_lines = Array.of_list (split_lines stripped) in
  let n = Array.length stripped_lines in
  let findings = ref [] in
  let i = ref 0 in
  while !i < n do
    let line = stripped_lines.(!i) in
    if starts_at_col0 line && has_prefix_word line "let" then begin
      (* the binding runs to the next column-0 line *)
      let j = ref (!i + 1) in
      while !j < n && not (starts_at_col0 stripped_lines.(!j)) do incr j done;
      (match classify ~file ~raw_lines ~stripped_lines !i (!j - 1) with
      | Some f -> findings := f :: !findings
      | None -> ());
      i := !j
    end
    else incr i
  done;
  List.rev !findings

(* --- the filesystem driver --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.filter (fun name -> name <> "_build" && not (String.length name > 0 && name.[0] = '.'))
    |> List.concat_map (fun name -> files_under (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let scan_files files =
  List.concat_map (fun file -> scan_source ~file (read_file file)) files

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: toplevel mutable state: [%s] binds %s%s" f.file f.line f.name
    f.construct
    (match f.allowed with
    | None -> ""
    | Some "Atomic" -> "  (ok: Atomic)"
    | Some "marker" -> "  (ok: explicit allow marker)"
    | Some r -> "  (ok: " ^ r ^ ")")
