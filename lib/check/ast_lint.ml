(* Typed-AST static analysis framework (DESIGN.md §4h).

   The textual lint ({!Lint}) guards one invariant with one heuristic; the
   invariants PRs 6-7 added — every coherence-state mutation bumps
   [fp_epoch], every kernel handler arm settles, hot-path functions stay
   allocation-free — need scopes, call graphs and precise locations, which
   only the compiler's own parser provides.  This module is the shared
   plumbing: it parses a compilation unit with [Parse.implementation]
   (compiler-libs), records where every top-level structure item lives,
   scans the raw source for [lint: allow <rule-id>] exemption markers, and
   builds findings in the same shape as {!Lint.finding} (file / line /
   name / construct / allowed), extended with the rule id and a detail
   sentence.  Rules themselves live under [rules/] and are registered in
   {!Registry}.

   A marker waives findings of its rule within the enclosing top-level
   structure item (or up to five lines below the marker, for markers that
   sit in a comment block above the binding).  Markers are scanned from
   the raw text because they live inside comments — the one job the typed
   AST cannot do. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  rule : string;  (** rule id, e.g. ["epoch-soundness"] *)
  name : string;  (** offending function / binding / handler arm *)
  construct : string;  (** what triggered it, e.g. ["field frozen <-"] *)
  detail : string;  (** one human sentence *)
  allowed : string option;
      (** [None]: a violation.  [Some reason]: permitted — ["marker"] (an
          explicit [lint: allow <rule-id>] comment) or a rule-specific
          reason such as ["Atomic"]. *)
}

type unit_ = {
  u_file : string;  (** path as given (what findings report) *)
  u_base : string;  (** [Filename.basename u_file] — rules key on this *)
  u_module : string;  (** capitalized module name derived from the base *)
  u_source : string;
  u_ast : Parsetree.structure;
  u_markers : (int * string) list;  (** line, rule-id *)
  u_spans : (int * int) list;  (** top-level structure item line spans *)
}

type rule = {
  rule_id : string;
  rule_doc : string;  (** one line: the invariant the rule protects *)
  run : unit_ list -> finding list;
      (** whole-program by design: the epoch rule needs the cross-module
          call graph, the settle rule needs [eff.ml] next to [kernel.ml] *)
}

exception Parse_error of string

(* --- parsing --- *)

let parse_source ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  try Parse.implementation lexbuf
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
      | _ -> Printexc.to_string exn
    in
    raise (Parse_error (Printf.sprintf "%s: syntax error: %s" file msg))

(* --- exemption markers --- *)

let marker_prefix = "lint: allow "

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

let markers_of_source src =
  let out = ref [] in
  List.iteri
    (fun i line ->
      let ll = String.length line and lp = String.length marker_prefix in
      let rec scan j =
        if j + lp > ll then ()
        else if String.sub line j lp = marker_prefix then begin
          let s = j + lp in
          let e = ref s in
          while !e < ll && is_rule_char line.[!e] do incr e done;
          if !e > s then out := (i + 1, String.sub line s (!e - s)) :: !out;
          scan !e
        end
        else scan (j + 1)
      in
      scan 0)
    (String.split_on_char '\n' src);
  List.rev !out

let module_of_base base =
  let stem = Filename.remove_extension base in
  String.capitalize_ascii stem

let unit_of_source ~file src =
  let ast = parse_source ~file src in
  let spans =
    List.map
      (fun (item : Parsetree.structure_item) ->
        let loc = item.pstr_loc in
        (loc.loc_start.pos_lnum, loc.loc_end.pos_lnum))
      ast
  in
  let base = Filename.basename file in
  {
    u_file = file;
    u_base = base;
    u_module = module_of_base base;
    u_source = src;
    u_ast = ast;
    u_markers = markers_of_source src;
    u_spans = spans;
  }

let load_files files = List.map (fun f -> unit_of_source ~file:f (Lint.read_file f)) files
let load_dirs dirs = load_files (List.concat_map Lint.files_under dirs)

(* --- findings --- *)

(* Is line [line] of [u] waived for [rule]?  The marker must sit within
   the enclosing top-level item, or in the five lines above it (comment
   blocks that introduce a binding). *)
let marker_allows u ~rule ~line =
  let lo, hi =
    match List.find_opt (fun (lo, hi) -> lo <= line && line <= hi) u.u_spans with
    | Some span -> span
    | None -> (line, line)
  in
  List.exists (fun (ml, r) -> r = rule && ml >= lo - 5 && ml <= hi) u.u_markers

let finding ?allowed u ~rule ~line ~name ~construct ~detail =
  let allowed =
    match allowed with
    | Some _ as a -> a
    | None -> if marker_allows u ~rule ~line then Some "marker" else None
  in
  { file = u.u_file; line; rule; name; construct; detail; allowed }

let compare_findings a b =
  match compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> compare a.rule b.rule | c -> c)
  | c -> c

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s: %s%s" f.file f.line f.rule f.name f.detail
    (match f.allowed with
    | None -> ""
    | Some "marker" -> "  (ok: explicit allow marker)"
    | Some r -> "  (ok: " ^ r ^ ")")

(* --- Longident helpers --- *)

let flatten lid = try String.concat "." (Longident.flatten lid) with _ -> ""
let last lid = Longident.last lid

(* The last module on a dotted path: [Platinum_core.Coherent.fp_bump] and
   [Coherent.fp_bump] both resolve to module ["Coherent"] — library
   wrapping and the repo's alias convention (aliases keep the target's
   name) collapse to the same answer. *)
let last_module lid =
  match (lid : Longident.t) with
  | Lident _ | Lapply _ -> None
  | Ldot (path, _) -> ( try Some (Longident.last path) with _ -> None)

(* --- shared expression predicates --- *)

(* Peel the parameter chain of a [let f a b ~c = ...] binding down to the
   body, through newtypes and constraints. *)
let rec peel_params (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> peel_params body
  | Pexp_newtype (_, body) -> peel_params body
  | Pexp_constraint (body, _) -> peel_params body
  | _ -> e

(* Syntactic arity of a binding: how many parameters the fun-chain binds
   (newtypes excluded — they take no argument at application sites). *)
let arity_of (e : Parsetree.expression) =
  let rec go n (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) -> go (n + 1) body
    | Pexp_newtype (_, body) -> go n body
    | Pexp_constraint (body, _) -> go n body
    | _ -> n
  in
  go 0 e

let rec is_function (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> is_function e
  | _ -> false

(* The name a simple value binding binds, through constraints. *)
let rec binding_name (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var n -> Some n.txt
  | Ppat_any -> Some "_"
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

(* Does [e] contain a reference to unqualified ident [name]?  (Used by the
   settle rule: every resuming arm must reach [settle].) *)
let mentions_ident name (e : Parsetree.expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } when n = name -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

(* --- in-memory mutation surgery (the must-catch gate) --- *)

(* Find [needle] in [hay] at or after [from]; [-1] if absent. *)
let index_from hay from needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then -1 else if String.sub hay i nn = needle then i else go (i + 1)
  in
  go (max 0 from)

(* Delete the first occurrence of [needle] at or after the first
   occurrence of [anchor].  [Error] when either string is missing — the
   gate must fail loudly if a refactor moves the mutation site, rather
   than silently testing nothing. *)
let excise ~anchor ~needle src =
  let a = index_from src 0 anchor in
  if a < 0 then Error (Printf.sprintf "anchor %S not found" anchor)
  else
    let i = index_from src a needle in
    if i < 0 then Error (Printf.sprintf "%S not found after anchor %S" needle anchor)
    else
      let j = i + String.length needle in
      Ok (String.sub src 0 i ^ String.sub src j (String.length src - j))

(* Replace the first occurrence of [needle] after [anchor] with [repl]. *)
let replace ~anchor ~needle ~repl src =
  match excise ~anchor ~needle src with
  | Error _ as e -> e
  | Ok _ ->
    let a = index_from src 0 anchor in
    let i = index_from src a needle in
    let j = i + String.length needle in
    Ok (String.sub src 0 i ^ repl ^ String.sub src j (String.length src - j))

(* Swap a mutated copy of [base]'s source into the unit list. *)
let mutate_unit units ~base ~f =
  match List.find_opt (fun u -> u.u_base = base) units with
  | None -> Error (Printf.sprintf "no %s among the scanned units" base)
  | Some u -> (
    match f u.u_source with
    | Error _ as e -> e
    | Ok src ->
      let u' = unit_of_source ~file:u.u_file src in
      Ok (List.map (fun v -> if v == u then u' else v) units))
