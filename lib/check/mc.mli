(** Bounded model checker for the coherence protocol.

    Exhaustively enumerates the protocol state space of a small
    configuration (2–3 processors, 1–2 pages) by breadth-first search over
    operation interleavings up to a depth bound, driving the {e real}
    {!Platinum_core.Coherent} system with the invariant monitor armed.

    In every reachable state, all of the {!Platinum_core.Check} invariants
    hold (the monitor re-verifies them after each transition) and reads
    are sequentially consistent: each read must return the value of the
    last preceding write to that page in the operation sequence.

    States are deduplicated by a canonical fingerprint of every
    behavior-affecting component: page state, frozen flag, write flag,
    the freeze-window bucket of [last_protocol_inval], directory copies
    (module + data), copy/reference masks, per-processor Pmap and ATC
    translations, active address spaces, and the read oracle.  Replay is
    deterministic, so a counterexample's operation prefix reproduces the
    violation exactly. *)

type op =
  | Read of { proc : int; page : int }
  | Write of { proc : int; page : int }
      (** writes the distinguishing value [proc + 1] to word 0 *)
  | Freeze of { page : int }  (** [Advise_freeze]: collapse + freeze *)
  | Thaw of { page : int }  (** [Advise_thaw] *)
  | Daemon_thaw  (** what the defrost daemon does: thaw every frozen page *)

val pp_op : Format.formatter -> op -> unit
val pp_ops : Format.formatter -> op list -> unit
val ops_to_string : op list -> string

val catalogue : nprocs:int -> npages:int -> op list
(** The transition alphabet of a configuration. *)

val replay : nprocs:int -> npages:int -> op list -> (string, string) result
(** Run one operation sequence from scratch on a fresh monitored system.
    [Ok fingerprint] on success; [Error message] carries the first
    invariant violation or sequential-consistency failure.  Also the
    entry point for randomized (QCheck) exploration. *)

type counterexample = {
  cx_ops : op list;  (** the replayable operation prefix, oldest first *)
  cx_message : string;
}

type report = {
  nprocs : int;
  npages : int;
  depth : int;
  states : int;  (** distinct reachable states (including the initial one) *)
  transitions : int;  (** transitions attempted (replays) *)
  states_at_depth : int array;  (** new states first reached at depth d *)
  violations : counterexample list;  (** capped at {!max_counterexamples} *)
  total_violations : int;
  truncated : bool;  (** hit [max_states] before exhausting the space *)
}

val max_counterexamples : int

val explore :
  ?mutate:bool -> ?max_states:int -> nprocs:int -> npages:int -> depth:int -> unit -> report
(** Breadth-first exploration to [depth].  With [mutate], every replay
    runs with {!Platinum_core.Shootdown.test_skip_refmask_clear} set — the
    deliberately broken write-invalidate transition — and the exploration
    is expected to report violations (the mutation check: a silent checker
    is a broken checker). *)

val pp_report : Format.formatter -> report -> unit
