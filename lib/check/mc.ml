(* Bounded model checker for the PLATINUM coherence protocol.

   Drives the *real* [Coherent] system (not an abstract model): every
   transition of the exploration replays a concrete operation sequence
   from scratch on a fresh machine, with the invariant monitor armed, and
   dedups reached states by a canonical fingerprint of all
   behavior-affecting state.

   Soundness of the fingerprint: with every operation issued at [now = 0],
   the only time-dependent protocol input is whether a page's
   [last_protocol_inval] is [never_invalidated] or [0] (the policy's t1
   freeze window), which the fingerprint captures as a two-valued bucket.
   Timing, penalties and statistics counters never feed back into protocol
   decisions; frames within a module are interchangeable (data is always
   zero-filled or blitted), so only the memory module of each copy
   matters.  Values written are drawn from the bounded set [proc + 1], so
   the data component of the state space is finite too. *)

module Config = Platinum_machine.Config
module Machine = Platinum_machine.Machine
module Procset = Platinum_machine.Procset
module Frame = Platinum_phys.Frame
module Engine = Platinum_sim.Engine
module Check = Platinum_core.Check
module Cpage = Platinum_core.Cpage
module Cmap = Platinum_core.Cmap
module Pmap = Platinum_core.Pmap
module Atc = Platinum_core.Atc
module Rights = Platinum_core.Rights
module Policy = Platinum_core.Policy
module Coherent = Platinum_core.Coherent
module Shootdown = Platinum_core.Shootdown

type op =
  | Read of { proc : int; page : int }
  | Write of { proc : int; page : int }
      (** writes the distinguishing value [proc + 1] to word 0 *)
  | Freeze of { page : int }  (** [Advise_freeze]: collapse + freeze *)
  | Thaw of { page : int }  (** [Advise_thaw] *)
  | Daemon_thaw  (** what the defrost daemon does: thaw every frozen page *)

let pp_op ppf = function
  | Read { proc; page } -> Format.fprintf ppf "R%d(p%d)" proc page
  | Write { proc; page } -> Format.fprintf ppf "W%d(p%d)" proc page
  | Freeze { page } -> Format.fprintf ppf "freeze(p%d)" page
  | Thaw { page } -> Format.fprintf ppf "thaw(p%d)" page
  | Daemon_thaw -> Format.fprintf ppf "daemon"

let pp_ops ppf ops =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_op ppf ops

let ops_to_string ops = Format.asprintf "%a" pp_ops ops

(* The full alphabet for a configuration: every read and write by every
   processor of every page, plus explicit freeze/thaw advice and the
   defrost daemon's sweep.  Migration and replication are not separate
   letters — the policy takes them on read/write misses. *)
let catalogue ~nprocs ~npages =
  let ops = ref [ Daemon_thaw ] in
  for page = npages - 1 downto 0 do
    ops := Thaw { page } :: !ops;
    ops := Freeze { page } :: !ops;
    for proc = nprocs - 1 downto 0 do
      ops := Write { proc; page } :: !ops;
      ops := Read { proc; page } :: !ops
    done
  done;
  !ops

(* --- one concrete machine under the monitor --- *)

type sys = {
  coh : Coherent.t;
  cm : Cmap.t;
  nprocs : int;
  npages : int;
  page_words : int;
  expected : int array;  (* the sequential-consistency oracle, per page *)
}

let page_words = 4
let frames_per_module = 8

let make_sys ~nprocs ~npages =
  let config = Config.butterfly_plus ~nprocs ~page_words () in
  let policy =
    Policy.make ~t1:config.Config.t1_freeze_window (Policy.Platinum { thaw_on_fault = false })
  in
  let machine = Machine.create config in
  let engine = Engine.create () in
  let coh = Coherent.create machine ~engine ~policy ~frames_per_module () in
  (* The monitor is always armed under the model checker, independent of
     PLATINUM_CHECK: checking is the point. *)
  Coherent.set_monitor coh (Some (Check.create_monitor ()));
  let cm = Coherent.new_aspace coh in
  for vpage = 0 to npages - 1 do
    let page = Coherent.new_cpage coh ~label:(Printf.sprintf "mc%d" vpage) () in
    Coherent.bind coh cm ~vpage page Rights.Read_write
  done;
  { coh; cm; nprocs; npages; page_words; expected = Array.make npages 0 }

exception Sc_violation of { op : op; got : int; want : int }

let apply sys op =
  let vaddr page = page * sys.page_words in
  match op with
  | Read { proc; page } ->
    let v, _lat = Coherent.read_word sys.coh ~now:0 ~proc ~cmap:sys.cm ~vaddr:(vaddr page) in
    if v <> sys.expected.(page) then
      raise (Sc_violation { op; got = v; want = sys.expected.(page) })
  | Write { proc; page } ->
    let _lat = Coherent.write_word sys.coh ~now:0 ~proc ~cmap:sys.cm ~vaddr:(vaddr page) (proc + 1) in
    sys.expected.(page) <- proc + 1
  | Freeze { page } ->
    ignore (Coherent.advise sys.coh ~now:0 ~proc:0 ~cmap:sys.cm ~vpage:page Coherent.Advise_freeze)
  | Thaw { page } ->
    ignore (Coherent.advise sys.coh ~now:0 ~proc:0 ~cmap:sys.cm ~vpage:page Coherent.Advise_thaw)
  | Daemon_thaw -> Coherent.thaw_all sys.coh ~now:0

(* --- canonical state fingerprint --- *)

let procset_bits ps = Procset.fold (fun p acc -> acc lor (1 lsl p)) ps 0

let fingerprint sys =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for vpage = 0 to sys.npages - 1 do
    match Cmap.find sys.cm ~vpage with
    | None -> add "p%d:unbound;" vpage
    | Some ce ->
      let page = ce.Cmap.cpage in
      add "p%d:%s,f%b,w%b,lpi%d,rm%x,cm%x[" vpage
        (Cpage.state_to_string page.Cpage.state)
        page.Cpage.frozen page.Cpage.write_mapped
        (if page.Cpage.last_protocol_inval = Cpage.never_invalidated then 0 else 1)
        (procset_bits ce.Cmap.refmask)
        (procset_bits page.Cpage.copy_mask);
      (* Copies sorted by module; only the module and the data matter. *)
      let copies =
        Cpage.copies page
        |> List.map (fun f ->
               let words = ref [] in
               for i = sys.page_words - 1 downto 0 do
                 words := Frame.get f i :: !words
               done;
               (Frame.mem_module f, !words))
        |> List.sort compare
      in
      List.iter
        (fun (m, words) ->
          add "m%d:" m;
          List.iter (fun w -> add "%d," w) words)
        copies;
      add "]";
      (* Per-processor translations. *)
      for proc = 0 to sys.nprocs - 1 do
        (match Pmap.find (Cmap.pmap sys.cm ~proc) ~vpage with
        | None -> ()
        | Some e -> add "t%d:m%dw%b" proc (Frame.mem_module e.Pmap.frame) e.Pmap.write_ok);
        match Atc.peek (Coherent.atc sys.coh ~proc) ~aspace:(Cmap.aspace sys.cm) ~vpage with
        | None -> ()
        | Some e -> add "a%dw%b" proc e.Pmap.write_ok
      done;
      add ";"
  done;
  for proc = 0 to sys.nprocs - 1 do
    add "A%d:%d;" proc
      (match Atc.active_aspace (Coherent.atc sys.coh ~proc) with None -> -1 | Some a -> a)
  done;
  Array.iter (fun v -> add "e%d;" v) sys.expected;
  Buffer.contents b

(* --- exploration --- *)

type counterexample = {
  cx_ops : op list;  (** the replayable operation prefix, oldest first *)
  cx_message : string;
}

type report = {
  nprocs : int;
  npages : int;
  depth : int;
  states : int;  (** distinct reachable states (including the initial one) *)
  transitions : int;  (** transitions attempted (replays) *)
  states_at_depth : int array;  (** new states first reached at depth d *)
  violations : counterexample list;  (** capped at [max_counterexamples] *)
  total_violations : int;
  truncated : bool;  (** hit [max_states] before exhausting the space *)
}

let max_counterexamples = 5

(* Replay [ops] on a fresh system.  [Ok fp] gives the resulting
   fingerprint; [Error message] reports the first monitor violation or
   sequential-consistency failure. *)
let replay ~nprocs ~npages ops =
  let sys = make_sys ~nprocs ~npages in
  try
    List.iter (apply sys) ops;
    Ok (fingerprint sys)
  with
  | Check.Violation v -> Error (Check.violation_message v)
  | Sc_violation { op; got; want } ->
    Error
      (Format.asprintf
         "sequential consistency: %a returned %d, last write was %d" pp_op op got want)

let explore ?(mutate = false) ?(max_states = 200_000) ~nprocs ~npages ~depth () =
  let run () =
    let alphabet = catalogue ~nprocs ~npages in
    let visited = Hashtbl.create 4096 in
    let transitions = ref 0 in
    let violations = ref [] in
    let total_violations = ref 0 in
    let truncated = ref false in
    let states_at_depth = Array.make (depth + 1) 0 in
    let root =
      match replay ~nprocs ~npages [] with
      | Ok fp -> fp
      | Error m -> failwith ("model checker: initial state violates invariants: " ^ m)
    in
    Hashtbl.replace visited root ();
    states_at_depth.(0) <- 1;
    (* BFS frontier: (reversed op prefix) per state first reached there. *)
    let frontier = ref [ [] ] in
    (try
       for d = 1 to depth do
         let next = ref [] in
         List.iter
           (fun rev_prefix ->
             List.iter
               (fun op ->
                 if Hashtbl.length visited >= max_states then begin
                   truncated := true;
                   raise Exit
                 end;
                 incr transitions;
                 let rev_ops = op :: rev_prefix in
                 match replay ~nprocs ~npages (List.rev rev_ops) with
                 | Ok fp ->
                   if not (Hashtbl.mem visited fp) then begin
                     Hashtbl.replace visited fp ();
                     states_at_depth.(d) <- states_at_depth.(d) + 1;
                     next := rev_ops :: !next
                   end
                 | Error cx_message ->
                   incr total_violations;
                   if List.length !violations < max_counterexamples then
                     violations := { cx_ops = List.rev rev_ops; cx_message } :: !violations)
               alphabet)
           !frontier;
         frontier := !next
       done
     with Exit -> ());
    {
      nprocs;
      npages;
      depth;
      states = Hashtbl.length visited;
      transitions = !transitions;
      states_at_depth;
      violations = List.rev !violations;
      total_violations = !total_violations;
      truncated = !truncated;
    }
  in
  if mutate then
    (* Fault injection: every replay runs with the broken write-invalidate
       transition (refmask not cleared).  The checker must catch it. *)
    Fun.protect
      ~finally:(fun () -> Shootdown.test_skip_refmask_clear := false)
      (fun () ->
        Shootdown.test_skip_refmask_clear := true;
        run ())
  else run ()

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>model check: %d procs, %d pages, depth %d%s@,\
     reachable states: %d  (transitions tried: %d)@,\
     new states by depth: %a@,\
     violations: %d@]"
    r.nprocs r.npages r.depth
    (if r.truncated then " (TRUNCATED at state cap)" else "")
    r.states r.transitions
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       Format.pp_print_int)
    (Array.to_list r.states_at_depth)
    r.total_violations;
  List.iter
    (fun cx ->
      Format.fprintf ppf "@,  after [%a]:@,    %s" pp_ops cx.cx_ops cx.cx_message)
    r.violations
