(** The coalescing effect-boundary fast path (DESIGN.md §4g).

    While a fiber is {e armed} (between the kernel event that resumed it
    and its next effect), [Api.read]/[write]/[rmw] drain word accesses
    inline through the backend's {!ops} — no effect, no suspend — as long
    as each would hit the micro-ATC under seed semantics.  The
    accumulated latency is charged as one batched operation at the next
    effect boundary (the kernel's settle); any miss, rights fault, frozen
    page, armed monitor, pending injected fault or quantum exhaustion
    declines and takes the unchanged full-suspend path.

    Eligibility and invalidation are documented on {!ops}; slots cached
    in the per-thread {!buf} die whenever the coherent layer bumps its
    epoch (remap, freeze, thaw, shootdown, retraction, monitor change). *)

(** Backend operations; see the implementation for per-field contracts.
    The word ops return the access latency on a clean hit, [-1] on
    anything else. *)
type ops = {
  fp_epoch : unit -> int;
  fp_page_words : int;
  fp_page_shift : int;
  fp_probe :
    proc:int -> aspace:int -> vpage:int -> write:bool -> Platinum_core.Cmap.t option;
  fp_inject_live : unit -> bool;
  fp_ok_now : unit -> bool;
  fp_read : now:int -> proc:int -> cmap:Platinum_core.Cmap.t -> vpage:int -> vaddr:int -> int;
  fp_write :
    now:int -> proc:int -> cmap:Platinum_core.Cmap.t -> vpage:int -> vaddr:int ->
    value:int -> int;
  fp_rmw :
    now:int -> proc:int -> cmap:Platinum_core.Cmap.t -> vpage:int -> vaddr:int ->
    f:(int -> int) -> int;
  fp_value : int ref;
}

type buf
(** Per-thread run-buffer: cached page-eligibility slots.  Lives in the
    kernel thread record and survives suspensions. *)

val make_buf : unit -> buf

type ctx
(** The per-domain coalescing context. *)

val ctx : unit -> ctx
(** This domain's context ([Domain.DLS]). *)

val run_cap : int
(** Maximum words drained within one engine event (engine-liveness bound). *)

(* --- kernel side --- *)

val arm :
  ctx -> ops -> buf:buf -> base:int -> proc:int -> aspace:int -> quantum_left:int -> unit
(** Arm the context for the fiber about to run: [base] is the engine time
    of this event, [quantum_left] the quantum budget a run may consume
    ([max_int] when the thread cannot be preempted). *)

val close : ctx -> int
(** Disarm and return the accumulated latency to charge (0 = nothing was
    coalesced; the settle must then be free of any engine event). *)

val armed : ctx -> bool

(* --- user side --- *)

val try_read : ctx -> int -> bool
(** [true]: the word was drained inline; read it with {!value}. *)

val try_write : ctx -> int -> int -> bool
val try_rmw : ctx -> int -> (int -> int) -> bool
val value : ctx -> int

(* --- introspection --- *)

type stats = {
  mutable runs : int;
  mutable coalesced : int;
  mutable fallbacks : int;
}

val stats : ctx -> stats
val reset_stats : ctx -> unit
