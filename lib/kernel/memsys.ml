type advice =
  | Freeze
  | Thaw
  | Home of int

(* Asynchronous completion for distributed backends (DESIGN.md §4j): a
   backend whose remote operations travel as protocol messages between
   per-node engines cannot return a latency synchronously — the cost *is*
   when the reply arrives.  [try_remote] either adopts the transaction
   (returns [true]; [complete] will be invoked exactly once, from a later
   engine event on the submitting node, with the result) or declines
   (returns [false]; the kernel falls back to the synchronous [submit]).
   [try_remote] must not call [complete] synchronously and must not
   raise after adopting; validation errors are declined so [submit] can
   raise them on the kernel's normal error path. *)
type remote = {
  try_remote :
    now:int ->
    proc:int ->
    aspace:int ->
    Platinum_core.Memtxn.t ->
    complete:(Platinum_core.Memtxn.result -> unit) ->
    bool;
}

type t = {
  page_words : int;
  submit : now:int -> proc:int -> aspace:int -> Platinum_core.Memtxn.t ->
    Platinum_core.Memtxn.result * int;
  new_aspace : unit -> int;
  new_zone : aspace:int -> name:string -> pages:int -> int;
  alloc : zone:int -> words:int -> page_aligned:bool -> int;
  alloc_pages : zone:int -> pages:int -> int;
  new_segment : name:string -> pages:int -> int;
  map_segment : aspace:int -> segment:int -> int;
  advise : now:int -> proc:int -> aspace:int -> vaddr:int -> len:int -> advice -> int;
  migrate_cost : now:int -> from_proc:int -> to_proc:int -> int;
  describe : unit -> string;
  fastpath : Fastpath.ops option;
      (* coalescing fast-path operations (DESIGN.md §4g); [None] = the
         backend only supports the full-suspend path *)
  remote : remote option;
      (* asynchronous remote completion; [None] = every transaction is
         served synchronously by [submit] *)
}

(* Single-op conveniences over [submit], for tests and simple callers. *)

let read t ~now ~proc ~aspace ~vaddr =
  match t.submit ~now ~proc ~aspace (Platinum_core.Memtxn.Read { vaddr }) with
  | Platinum_core.Memtxn.Word v, lat -> (v, lat)
  | _ -> assert false

let write t ~now ~proc ~aspace ~vaddr value =
  snd (t.submit ~now ~proc ~aspace (Platinum_core.Memtxn.Write { vaddr; value }))

let rmw t ~now ~proc ~aspace ~vaddr f =
  match t.submit ~now ~proc ~aspace (Platinum_core.Memtxn.Rmw { vaddr; f }) with
  | Platinum_core.Memtxn.Word old, lat -> (old, lat)
  | _ -> assert false

let block_read t ~now ~proc ~aspace ~vaddr ~len =
  match t.submit ~now ~proc ~aspace (Platinum_core.Memtxn.Block_read { vaddr; len }) with
  | Platinum_core.Memtxn.Words out, lat -> (out, lat)
  | _ -> assert false

let block_write t ~now ~proc ~aspace ~vaddr data =
  snd (t.submit ~now ~proc ~aspace (Platinum_core.Memtxn.Block_write { vaddr; data }))
