module Memtxn = Platinum_core.Memtxn

let access txn = Effect.perform (Eff.Access_txn txn)

let word txn =
  match access txn with
  | Memtxn.Word v -> v
  | _ -> assert false

let words txn =
  match access txn with
  | Memtxn.Words a -> a
  | _ -> assert false

let read vaddr = word (Memtxn.Read { vaddr })
let write vaddr value = ignore (access (Memtxn.Write { vaddr; value }))
let rmw vaddr f = word (Memtxn.Rmw { vaddr; f })
let block_read vaddr len = words (Memtxn.Block_read { vaddr; len })
let block_write vaddr data = ignore (access (Memtxn.Block_write { vaddr; data }))
let read_array = block_read
let write_array = block_write

let read_stride ?(elem_words = 1) vaddr ~count ~stride =
  words (Memtxn.Stride_read { vaddr; count; elem_words; stride })

let write_stride ?(elem_words = 1) vaddr ~stride data =
  let count = Array.length data / max elem_words 1 in
  ignore (access (Memtxn.Stride_write { vaddr; data; count; elem_words; stride }))
let compute ns = if ns > 0 then Effect.perform (Eff.Compute ns)
let now () = Effect.perform Eff.Now
let sleep ns = if ns > 0 then Effect.perform (Eff.Sleep ns)
let inject_handle () = Effect.perform Eff.Inject_handle
let spawn ?proc ?aspace body = Effect.perform (Eff.Spawn (body, proc, aspace))
let join tid = Effect.perform (Eff.Join tid)

let spawn_join_all ?procs bodies =
  let place i =
    match procs with
    | None -> None
    | Some [] -> None
    | Some ps -> Some (List.nth ps (i mod List.length ps))
  in
  let tids = List.mapi (fun i body -> spawn ?proc:(place i) (fun () -> body i)) bodies in
  List.iter join tids

let yield () = Effect.perform Eff.Yield
let migrate proc = Effect.perform (Eff.Migrate proc)
let self () = Effect.perform Eff.Self
let my_proc () = Effect.perform Eff.My_proc
let new_port () = Effect.perform Eff.New_port
let send port msg = Effect.perform (Eff.Port_send (port, msg))
let recv port = Effect.perform (Eff.Port_recv port)
let new_zone name ~pages = Effect.perform (Eff.New_zone (name, pages))
let alloc ?(zone = 0) ?(page_aligned = false) words =
  Effect.perform (Eff.Alloc (zone, words, page_aligned))

let alloc_pages ?(zone = 0) pages = Effect.perform (Eff.Alloc_pages (zone, pages))
let page_words () = Effect.perform Eff.Page_words
let advise vaddr len advice = Effect.perform (Eff.Advise (vaddr, len, advice))
let my_aspace () = Effect.perform Eff.My_aspace
let new_aspace () = Effect.perform Eff.New_aspace
let new_segment name ~pages = Effect.perform (Eff.New_segment (name, pages))
let map_segment segment = Effect.perform (Eff.Map_segment segment)
