module Memtxn = Platinum_core.Memtxn

let access txn = Effect.perform (Eff.Access_txn txn)

let word txn =
  match access txn with
  | Memtxn.Word v -> v
  | _ -> assert false

let words txn =
  match access txn with
  | Memtxn.Words a -> a
  | _ -> assert false

(* The word operations probe the coalescing fast path first (DESIGN.md
   §4g): while the kernel has armed the current fiber and the access is a
   clean micro-ATC hit, it completes inline — no effect, no suspend — and
   its cost joins the run's batched charge.  Anything else performs the
   effect exactly as before.  Run detection is automatic: consecutive
   [read]/[write]/[rmw] calls form runs with no [?bulk] variants. *)
let read vaddr =
  let c = Fastpath.ctx () in
  if Fastpath.try_read c vaddr then Fastpath.value c else word (Memtxn.Read { vaddr })

let write vaddr value =
  let c = Fastpath.ctx () in
  if Fastpath.try_write c vaddr value then ()
  else ignore (access (Memtxn.Write { vaddr; value }))

let rmw vaddr f =
  let c = Fastpath.ctx () in
  if Fastpath.try_rmw c vaddr f then Fastpath.value c else word (Memtxn.Rmw { vaddr; f })
let block_read vaddr len = words (Memtxn.Block_read { vaddr; len })
let block_write vaddr data = ignore (access (Memtxn.Block_write { vaddr; data }))
let read_array = block_read
let write_array = block_write

let read_stride ?(elem_words = 1) vaddr ~count ~stride =
  if elem_words <= 0 then
    invalid_arg (Printf.sprintf "read_stride: elem_words %d must be positive" elem_words);
  if count < 0 then invalid_arg (Printf.sprintf "read_stride: negative count %d" count);
  words (Memtxn.Stride_read { vaddr; count; elem_words; stride })

let write_stride ?(elem_words = 1) vaddr ~stride data =
  if elem_words <= 0 then
    invalid_arg (Printf.sprintf "write_stride: elem_words %d must be positive" elem_words);
  (* A ragged tail would silently truncate: the old code floored the
     element count, dropping up to [elem_words - 1] trailing words. *)
  if Array.length data mod elem_words <> 0 then
    invalid_arg
      (Printf.sprintf "write_stride: data length %d is not a multiple of elem_words %d"
         (Array.length data) elem_words);
  let count = Array.length data / elem_words in
  ignore (access (Memtxn.Stride_write { vaddr; data; count; elem_words; stride }))
let compute ns = if ns > 0 then Effect.perform (Eff.Compute ns)
let now () = Effect.perform Eff.Now
let sleep ns = if ns > 0 then Effect.perform (Eff.Sleep ns)
let inject_handle () = Effect.perform Eff.Inject_handle
let spawn ?proc ?aspace body = Effect.perform (Eff.Spawn (body, proc, aspace))
let join tid = Effect.perform (Eff.Join tid)

let spawn_join_all ?procs bodies =
  let place i =
    match procs with
    | None -> None
    | Some [] -> None
    | Some ps -> Some (List.nth ps (i mod List.length ps))
  in
  let tids = List.mapi (fun i body -> spawn ?proc:(place i) (fun () -> body i)) bodies in
  List.iter join tids

let yield () = Effect.perform Eff.Yield
let migrate proc = Effect.perform (Eff.Migrate proc)
let self () = Effect.perform Eff.Self
let my_proc () = Effect.perform Eff.My_proc
let new_port () = Effect.perform Eff.New_port
let send port msg = Effect.perform (Eff.Port_send (port, msg))
let recv port = Effect.perform (Eff.Port_recv port)
let new_zone name ~pages = Effect.perform (Eff.New_zone (name, pages))
let alloc ?(zone = 0) ?(page_aligned = false) words =
  Effect.perform (Eff.Alloc (zone, words, page_aligned))

let alloc_pages ?(zone = 0) pages = Effect.perform (Eff.Alloc_pages (zone, pages))
let page_words () = Effect.perform Eff.Page_words
let advise vaddr len advice = Effect.perform (Eff.Advise (vaddr, len, advice))
let my_aspace () = Effect.perform Eff.My_aspace
let new_aspace () = Effect.perform Eff.New_aspace
let new_segment name ~pages = Effect.perform (Eff.New_segment (name, pages))
let map_segment segment = Effect.perform (Eff.Map_segment segment)
