(** The PLATINUM kernel runtime: threads, per-processor scheduling, ports.

    Threads are OCaml-5 effect-handler fibers.  When a thread performs a
    memory (or other kernel) effect, the handler asks the {!Memsys} backend
    for the operation's latency, marks the thread's processor busy for that
    long on the discrete-event engine, and resumes the continuation when
    the virtual clock gets there.  Pending interrupt-handler penalties
    (shootdowns received) are charged at the next operation boundary.

    A thread is bound to one processor at a time (§1.1); [Migrate] moves it
    explicitly, paying for the kernel-stack block copy.  Scheduling is
    per-processor run queues with quantum-based preemption at operation
    boundaries. *)

exception Deadlock of string
(** Raised by {!run} when live threads remain but no event can wake them. *)

exception Thread_failure of exn
(** A simulated thread raised; re-thrown at the end of {!run}. *)

type t

val create :
  ?coalesce:bool ->
  ?slice:int * int ->
  engine:Platinum_sim.Engine.t ->
  machine:Platinum_machine.Machine.t ->
  memsys:Memsys.t ->
  unit ->
  t
(** [coalesce] (default [true]) arms the effect-boundary fast path
    ({!Fastpath}, DESIGN.md §4g) whenever the backend provides
    {!Memsys.t.fastpath} ops: consecutive per-word accesses that hit the
    micro-ATC drain inline and are charged as one batched operation at the
    next suspension.  [false] forces every access through the per-effect
    path (the differential-testing baseline).

    [slice] is [(base, count)]: the contiguous processor range this kernel
    schedules.  The default is the whole machine.  A per-node kernel under
    {!Platinum_sim.Shard.host} passes its own node's processors, so [n]
    kernels over an [n]-node machine cost O(n) run queues in total, not
    O(n²).  Placement, wakeups and migrations are confined to the slice
    ([Invalid_argument] on a processor outside it). *)

val engine : t -> Platinum_sim.Engine.t
val machine : t -> Platinum_machine.Machine.t
val memsys : t -> Memsys.t

val spawn : t -> ?proc:int -> ?aspace:int -> (unit -> unit) -> Eff.thread_id
(** Create a thread from outside the simulation (the initial thread).
    Unplaced threads go round-robin over processors; [aspace] defaults to
    address space 0. *)

val live_threads : t -> int
val all_done : t -> bool
(** True once every spawned thread has finished (the defrost daemon's stop
    condition). *)

val run : t -> main:(unit -> unit) -> Platinum_sim.Time_ns.t
(** Spawn [main] on processor 0, run the simulation to completion, and
    return the time at which the last thread finished.  Raises
    {!Thread_failure} if any thread raised, {!Deadlock} if threads remain
    blocked forever. *)

val run_spawned : t -> Platinum_sim.Time_ns.t
(** Like {!run} for threads already created with {!spawn}. *)

val post_run_checks : t -> Platinum_sim.Time_ns.t
(** The end-of-run diagnostics of {!run}, without driving the engine:
    raises {!Thread_failure} if any thread raised, {!Deadlock} if
    unfinished threads remain, and otherwise returns the time the last
    thread finished.  For drivers that advance the engine externally —
    per-node kernels hosted under {!Platinum_sim.Shard.run_hosted}. *)

val threads_created : t -> int
val context_switches : t -> int
