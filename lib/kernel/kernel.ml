module Engine = Platinum_sim.Engine
module Machine = Platinum_machine.Machine
module Config = Platinum_machine.Config

exception Deadlock of string
exception Thread_failure of exn

type thread_state =
  | Runnable
  | Running
  | Blocked
  | Finished

type thread = {
  tid : int;
  body : unit -> unit;
  aspace : int;  (* a thread executes within a single address space *)
  mutable proc : int;
  mutable state : thread_state;
  mutable resume : (unit -> unit) option;  (* pending continuation *)
  mutable joiners : int list;
  mutable quantum_used : int;
  runbuf : Fastpath.buf;  (* per-thread coalescing slots (DESIGN.md §4g) *)
}

type port = {
  messages : int array Queue.t;
  waiters : int Queue.t;  (* tids blocked in recv *)
}

type t = {
  engine : Engine.t;
  machine : Machine.t;
  memsys : Memsys.t;
  coalesce : bool;  (* arm the effect-boundary fast path between suspends *)
  proc_base : int;  (* first processor this kernel schedules *)
  proc_count : int;  (* width of the slice; run queues are indexed by offset *)
  threads : (int, thread) Hashtbl.t;
  runqs : int Queue.t array;
  proc_active : bool array;  (* an event for this processor is in flight *)
  ports : (int, port) Hashtbl.t;
  mutable next_tid : int;
  mutable next_pid : int;
  mutable live : int;
  mutable created : int;
  mutable switches : int;
  mutable finished_at : int;
  mutable failure : exn option;
  mutable place_rr : int;
}

(* A kernel normally schedules every processor of the machine.  Under the
   hosted sharded driver (Shard.host, DESIGN.md §4j) one kernel instance
   runs per node, and [slice] restricts it to that node's processors —
   run queues and active flags are sized to the slice, not the machine,
   so N per-node kernels cost O(N) queues in total rather than O(N^2). *)
let create ?(coalesce = true) ?slice ~engine ~machine ~memsys () =
  let nmachine = Machine.nprocs machine in
  let base, count =
    match slice with
    | None -> (0, nmachine)
    | Some (base, count) ->
      if base < 0 || count < 1 || base + count > nmachine then
        invalid_arg
          (Printf.sprintf "Kernel.create: slice [%d, %d) outside machine of %d procs" base
             (base + count) nmachine);
      (base, count)
  in
  {
    engine;
    machine;
    memsys;
    coalesce = coalesce && memsys.Memsys.fastpath <> None;
    proc_base = base;
    proc_count = count;
    threads = Hashtbl.create 64;
    runqs = Array.init count (fun _ -> Queue.create ());
    proc_active = Array.make count false;
    ports = Hashtbl.create 16;
    next_tid = 0;
    next_pid = 0;
    live = 0;
    created = 0;
    switches = 0;
    finished_at = 0;
    failure = None;
    place_rr = 0;
  }

let engine t = t.engine
let machine t = t.machine
let memsys t = t.memsys
let config t = Machine.config t.machine
let live_threads t = t.live
let all_done t = t.live = 0 && t.created > 0
let threads_created t = t.created
let context_switches t = t.switches

let runq t proc = t.runqs.(proc - t.proc_base)
let proc_busy t proc = t.proc_active.(proc - t.proc_base)
let set_proc_busy t proc v = t.proc_active.(proc - t.proc_base) <- v
let in_slice t p = p >= t.proc_base && p < t.proc_base + t.proc_count

let thread t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some th -> th
  | None -> invalid_arg (Printf.sprintf "Kernel: unknown thread %d" tid)

let place t = function
  | Some p ->
    if not (in_slice t p) then
      invalid_arg (Printf.sprintf "Kernel: no processor %d" p);
    p
  | None ->
    let p = t.proc_base + t.place_rr in
    t.place_rr <- (t.place_rr + 1) mod t.proc_count;
    p

let make_thread t ~proc ~aspace body =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let th =
    {
      tid;
      body;
      aspace;
      proc;
      state = Runnable;
      resume = None;
      joiners = [];
      quantum_used = 0;
      runbuf = Fastpath.make_buf ();
    }
  in
  Hashtbl.replace t.threads tid th;
  t.live <- t.live + 1;
  t.created <- t.created + 1;
  th

(* ------------------------------------------------------------------ *)
(* Scheduling core.                                                    *)
(* ------------------------------------------------------------------ *)

(* Arm the coalescing fast path for [th] just before control transfers
   into its user code (DESIGN.md §4g).  While armed, [Api.read]/[write]/
   [rmw] complete clean micro-ATC hits inline — no effect, no suspend —
   accumulating their cost into one batched charge that [settle] applies
   at the next real suspension.  Eligibility is re-checked per word; any
   pending interrupt penalty keeps the whole window on the full path so
   deferred shootdown-handler charges land exactly where the seed
   schedule put them. *)
let arm t th =
  match t.memsys.Memsys.fastpath with
  | Some ops when t.coalesce && Machine.pending_penalty t.machine ~proc:th.proc = 0 ->
    (* An empty runq means preemption is impossible until some other
       event makes it non-empty — and no event can fire mid-run, so the
       run is unbounded by the quantum.  Otherwise the remaining quantum
       caps the run just as the per-word path's boundary check would. *)
    let quantum_left =
      if Queue.is_empty (runq t th.proc) then max_int
      else (config t).Config.quantum_ns - th.quantum_used
    in
    Fastpath.arm (Fastpath.ctx ()) ops ~buf:th.runbuf ~base:(Engine.now t.engine)
      ~proc:th.proc ~aspace:th.aspace ~quantum_left
  | _ -> ()

let rec dispatch t proc =
  match Queue.take_opt (runq t proc) with
  | None -> set_proc_busy t proc false
  | Some tid ->
    set_proc_busy t proc true;
    t.switches <- t.switches + 1;
    let th = thread t tid in
    th.state <- Running;
    th.quantum_used <- 0;
    (match th.resume with
    | Some f ->
      th.resume <- None;
      f ()
    | None -> start_fiber t th)

(* A processor that was idle gets a dispatch event; one that is mid-event
   will reach its own dispatch when the current thread blocks/finishes.
   The wakeup is cross-node work when the waker runs elsewhere (a port
   send, a join completion), so it goes through the engine's [post]
   façade: sequentially that is a plain [schedule_after]; under a sharded
   driver it is a mailbox crossing.  [src] defaults to the woken thread's
   own processor (a local timer expiry). *)
and wake ?src t th =
  th.state <- Runnable;
  Queue.add th.tid (runq t th.proc);
  if not (proc_busy t th.proc) then begin
    set_proc_busy t th.proc true;
    let delay = (config t).Config.context_switch_ns in
    let src = match src with Some s -> s | None -> th.proc in
    Engine.post t.engine ~src ~dst:th.proc ~delay (fun () -> dispatch t th.proc)
  end

and finish_thread t th =
  th.state <- Finished;
  t.live <- t.live - 1;
  if t.live = 0 then t.finished_at <- Engine.now t.engine;
  List.iter (fun tid -> wake ~src:th.proc t (thread t tid)) th.joiners;
  th.joiners <- [];
  dispatch t th.proc

(* Complete an operation of [lat] ns for the current thread: charge any
   pending interrupt penalty, extend the processor busy horizon, and
   resume — immediately for zero-cost operations, via the event queue
   otherwise.  Preemption happens only at operation boundaries. *)
and finish_op : t -> thread -> lat:int -> (unit -> unit) -> unit =
 fun t th ~lat resume ->
  let now = Engine.now t.engine in
  let penalty = Machine.take_penalty t.machine ~proc:th.proc in
  let total = lat + penalty in
  Machine.set_proc_busy_until t.machine ~proc:th.proc (now + total);
  th.quantum_used <- th.quantum_used + total;
  if
    th.quantum_used >= (config t).Config.quantum_ns
    && not (Queue.is_empty (runq t th.proc))
  then begin
    th.state <- Runnable;
    th.resume <- Some resume;
    Engine.schedule_after t.engine ~delay:total (fun () ->
        Queue.add th.tid (runq t th.proc);
        dispatch t th.proc)
  end
  else if total = 0 then resume ()
  else Engine.schedule_after t.engine ~delay:total resume

and complete : type a. t -> thread -> (a, unit) Effect.Deep.continuation -> a -> int -> unit =
 fun t th k v lat ->
  finish_op t th ~lat (fun () ->
      arm t th;
      Effect.Deep.continue k v)

(* Close the coalescing window before handling a real suspension: if the
   thread drained a run of inline hits since it was last armed, charge
   the accumulated cost as one batched operation — exactly what a Block
   descriptor covering the same words would pay — and only then perform
   the pending kernel work, at engine time [base + acc].  An empty run
   costs one branch and falls straight through. *)
and settle : t -> thread -> (unit -> unit) -> unit =
 fun t th pending ->
  let acc = Fastpath.close (Fastpath.ctx ()) in
  if acc = 0 then pending () else finish_op t th ~lat:acc pending

(* Run an operation that may raise (a protection or address-space error,
   an unknown port, ...): the exception is delivered back into the
   faulting thread at its perform point via [discontinue], where the
   fiber's own handler turns it into a thread failure — one broken thread
   must not take down the whole simulated machine. *)
and run_op : type a. t -> thread -> (a, unit) Effect.Deep.continuation -> (unit -> a * int) -> unit =
 fun t th k f ->
  match f () with
  | v, lat -> complete t th k v lat
  | exception e -> Effect.Deep.discontinue k e

(* Block the current thread on [k]; its processor moves on. *)
and block : type a. t -> thread -> (a, unit) Effect.Deep.continuation -> a Lazy.t -> unit =
 fun t th k v ->
  th.state <- Blocked;
  th.resume <-
    Some
      (fun () ->
        (* Force first: a failing waker must not leave a stale window. *)
        let v = Lazy.force v in
        arm t th;
        Effect.Deep.continue k v);
  dispatch t th.proc

and start_fiber t th =
  let open Effect.Deep in
  arm t th;
  match_with th.body ()
    {
      retc = (fun () -> settle t th (fun () -> finish_thread t th));
      exnc =
        (fun e ->
          settle t th (fun () ->
              if t.failure = None then t.failure <- Some e;
              finish_thread t th));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Eff.Access_txn txn ->
            (* The whole memory hot path: one trap, one backend submit —
               reached only when the coalescer declined the access, so
               [settle] first charges any drained run, then the submit
               runs at the batched-charge horizon.

               A distributed backend (Memsys.remote, DESIGN.md §4j) may
               adopt the transaction instead: the thread blocks, protocol
               messages do their round trips on the engine, and the
               completion callback wakes it with the result — the latency
               is implicit in when that wake fires, so nothing further is
               charged here. *)
            Some
              (fun (k : (a, _) continuation) ->
                settle t th (fun () ->
                    let sync () =
                      run_op t th k (fun () ->
                          t.memsys.Memsys.submit ~now:(Engine.now t.engine) ~proc:th.proc
                            ~aspace:th.aspace txn)
                    in
                    match t.memsys.Memsys.remote with
                    | None -> sync ()
                    | Some r ->
                      let slot = ref Platinum_core.Memtxn.Unit in
                      let adopted =
                        r.Memsys.try_remote ~now:(Engine.now t.engine) ~proc:th.proc
                          ~aspace:th.aspace txn
                          ~complete:(fun res ->
                            slot := res;
                            wake t th)
                      in
                      if adopted then block t th k (lazy !slot) else sync ()))
          | Eff.Compute ns ->
            Some (fun k -> settle t th (fun () -> complete t th k () (max ns 0)))
          | Eff.Yield ->
            Some
              (fun k ->
                settle t th (fun () ->
                    th.state <- Runnable;
                    th.resume <-
                      Some
                        (fun () ->
                          arm t th;
                          continue k ());
                    Queue.add th.tid (runq t th.proc);
                    dispatch t th.proc))
          | Eff.Spawn (body, hint, aspace_hint) ->
            Some
              (fun k ->
                settle t th (fun () ->
                    run_op t th k (fun () ->
                        let proc = place t hint in
                        let aspace = Option.value aspace_hint ~default:th.aspace in
                        let child = make_thread t ~proc ~aspace body in
                        wake_fresh ~src:th.proc t child;
                        (child.tid, (config t).Config.thread_spawn_ns))))
          | Eff.Join tid ->
            Some
              (fun k ->
                settle t th (fun () ->
                    match thread t tid with
                    | exception e -> Effect.Deep.discontinue k e
                    | target ->
                      if target.state = Finished then complete t th k () 0
                      else begin
                        target.joiners <- th.tid :: target.joiners;
                        block t th k (lazy ())
                      end))
          | Eff.Migrate proc ->
            Some
              (fun k ->
                settle t th (fun () ->
                    if not (in_slice t proc) then
                      Effect.Deep.discontinue k
                        (Invalid_argument (Printf.sprintf "migrate: no processor %d" proc))
                    else begin
                      let from_proc = th.proc in
                      let lat =
                        if proc = from_proc then 0
                        else
                          (config t).Config.thread_migrate_ns
                          + t.memsys.Memsys.migrate_cost ~now:(Engine.now t.engine) ~from_proc
                              ~to_proc:proc
                      in
                      (* The thread leaves this processor; resume it on the new
                         one and let this one schedule other work. *)
                      th.state <- Runnable;
                      th.resume <-
                        Some
                          (fun () ->
                            arm t th;
                            continue k ());
                      let old = from_proc in
                      th.proc <- proc;
                      (* The migration itself is cross-node traffic: the thread
                         (kernel stack and all) lands on [proc]'s queue. *)
                      Engine.post t.engine ~src:old ~dst:proc ~delay:lat (fun () ->
                          Queue.add th.tid (runq t proc);
                          if not (proc_busy t proc) then begin
                            set_proc_busy t proc true;
                            dispatch t proc
                          end);
                      dispatch t old
                    end))
          | Eff.Self -> Some (fun k -> settle t th (fun () -> complete t th k th.tid 0))
          | Eff.My_proc -> Some (fun k -> settle t th (fun () -> complete t th k th.proc 0))
          | Eff.Now ->
            Some (fun k -> settle t th (fun () -> complete t th k (Engine.now t.engine) 0))
          | Eff.New_port ->
            Some
              (fun k ->
                settle t th (fun () ->
                    let pid = t.next_pid in
                    t.next_pid <- pid + 1;
                    Hashtbl.replace t.ports pid
                      { messages = Queue.create (); waiters = Queue.create () };
                    complete t th k pid 0))
          | Eff.Port_send (pid, msg) ->
            Some
              (fun k ->
                settle t th (fun () ->
                    match Hashtbl.find_opt t.ports pid with
                    | None ->
                      Effect.Deep.discontinue k
                        (Invalid_argument (Printf.sprintf "send: unknown port %d" pid))
                    | Some port ->
                      let cfg = config t in
                      let lat =
                        cfg.Config.port_op_ns + (Array.length msg * cfg.Config.t_block_word)
                      in
                      Queue.add (Array.copy msg) port.messages;
                      (match Queue.take_opt port.waiters with
                      | Some tid -> wake ~src:th.proc t (thread t tid)
                      | None -> ());
                      complete t th k () lat))
          | Eff.Port_recv pid ->
            Some
              (fun k ->
                settle t th (fun () ->
                    match Hashtbl.find_opt t.ports pid with
                    | None ->
                      Effect.Deep.discontinue k
                        (Invalid_argument (Printf.sprintf "recv: unknown port %d" pid))
                    | Some port ->
                      let cfg = config t in
                      let take () =
                        match Queue.take_opt port.messages with
                        | Some m -> m
                        | None -> failwith "Kernel: woken receiver found empty port"
                      in
                      if not (Queue.is_empty port.messages) then begin
                        let m = take () in
                        let lat =
                          cfg.Config.port_op_ns + (Array.length m * cfg.Config.t_block_word)
                        in
                        complete t th k m lat
                      end
                      else begin
                        Queue.add th.tid port.waiters;
                        block t th k (lazy (take ()))
                      end))
          | Eff.New_zone (name, pages) ->
            Some
              (fun k ->
                settle t th (fun () ->
                    run_op t th k (fun () ->
                        (t.memsys.Memsys.new_zone ~aspace:th.aspace ~name ~pages, 0))))
          | Eff.Alloc (zone, words, page_aligned) ->
            Some
              (fun k ->
                settle t th (fun () ->
                    run_op t th k (fun () ->
                        (t.memsys.Memsys.alloc ~zone ~words ~page_aligned, 0))))
          | Eff.Alloc_pages (zone, pages) ->
            Some
              (fun k ->
                settle t th (fun () ->
                    run_op t th k (fun () -> (t.memsys.Memsys.alloc_pages ~zone ~pages, 0))))
          | Eff.Page_words ->
            Some (fun k -> settle t th (fun () -> complete t th k t.memsys.Memsys.page_words 0))
          | Eff.Advise (vaddr, len, advice) ->
            Some
              (fun k ->
                settle t th (fun () ->
                    run_op t th k (fun () ->
                        ( (),
                          t.memsys.Memsys.advise ~now:(Engine.now t.engine) ~proc:th.proc
                            ~aspace:th.aspace ~vaddr ~len advice ))))
          | Eff.My_aspace -> Some (fun k -> settle t th (fun () -> complete t th k th.aspace 0))
          | Eff.New_aspace ->
            Some
              (fun k ->
                settle t th (fun () ->
                    run_op t th k (fun () -> (t.memsys.Memsys.new_aspace (), 0))))
          | Eff.New_segment (name, pages) ->
            Some
              (fun k ->
                settle t th (fun () ->
                    run_op t th k (fun () -> (t.memsys.Memsys.new_segment ~name ~pages, 0))))
          | Eff.Map_segment segment ->
            Some
              (fun k ->
                settle t th (fun () ->
                    run_op t th k (fun () ->
                        ( t.memsys.Memsys.map_segment ~aspace:th.aspace ~segment,
                          (config t).Config.vm_fault_ns ))))
          | Eff.Sleep ns ->
            Some
              (fun k ->
                settle t th (fun () ->
                    (* A timed wait: the thread blocks, the processor moves on,
                       and a deferred engine event re-wakes it — timer plumbing
                       rather than application work, so it never consumes a
                       run [?limit] budget. *)
                    th.state <- Blocked;
                    th.resume <-
                      Some
                        (fun () ->
                          arm t th;
                          continue k ());
                    Engine.schedule_after t.engine ~deferred:true ~delay:(max ns 0) (fun () ->
                        wake t th);
                    dispatch t th.proc))
          | Eff.Inject_handle ->
            Some (fun k -> settle t th (fun () -> complete t th k (Machine.inject t.machine) 0))
          | _ -> None)
    }

and wake_fresh ?src t th =
  Queue.add th.tid (runq t th.proc);
  if not (proc_busy t th.proc) then begin
    set_proc_busy t th.proc true;
    let delay = (config t).Config.context_switch_ns in
    let src = match src with Some s -> s | None -> th.proc in
    Engine.post t.engine ~src ~dst:th.proc ~delay (fun () -> dispatch t th.proc)
  end

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)
(* ------------------------------------------------------------------ *)

let spawn t ?proc ?(aspace = 0) body =
  let proc = place t proc in
  let th = make_thread t ~proc ~aspace body in
  wake_fresh t th;
  th.tid

(* The failure/deadlock report, split out of [run_spawned] so a driver
   that advances the engine some other way — hosted under [Shard], where
   many per-node kernels share the window loop — can still get the same
   end-of-run diagnostics. *)
let post_run_checks t =
  (match t.failure with
  | Some e -> raise (Thread_failure e)
  | None -> ());
  if t.live > 0 then begin
    let stuck =
      Hashtbl.fold
        (fun tid th acc -> if th.state = Finished then acc else (tid, th.state) :: acc)
        t.threads []
    in
    let describe (tid, st) =
      Printf.sprintf "thread %d %s" tid
        (match st with
        | Blocked -> "blocked"
        | Runnable -> "runnable"
        | Running -> "running"
        | Finished -> "finished")
    in
    raise (Deadlock (String.concat ", " (List.map describe stuck)))
  end;
  t.finished_at

let run_spawned t =
  Engine.run t.engine;
  post_run_checks t

let run t ~main =
  ignore (spawn t ~proc:0 main);
  run_spawned t
