(* The coalescing effect-boundary fast path (DESIGN.md §4g).

   A per-word [Api.read]/[write]/[rmw] stream pays one [Effect.perform]
   and one full kernel dispatch per word, even though PR 5 made the
   memory-system hit itself allocation-free — the 17.9× gap between the
   per-word and batched streams is pure trap overhead.  This module lets
   the kernel *arm* the current fiber before transferring control into
   user code: while armed, [Api.read] and friends drain consecutive word
   accesses inline — no effect, no suspend — provided each one would hit
   the micro-ATC under the seed semantics (translation present, rights
   sufficient, page not frozen, monitor disarmed, no injected fault
   pending).  The accumulated latency is charged as a single batched
   operation when the fiber next performs any effect (the kernel's
   [settle]), exactly what a block descriptor covering the same words
   would pay; anything else — a miss, a rights fault, a frozen page, an
   armed monitor, a pending fault draw, quantum exhaustion — declines and
   falls back to the unchanged full-suspend path.

   Soundness rests on a property of the engine: the fiber runs inline
   within the engine event that resumed it, so no other simulation event
   can fire between the arm point and the settle point.  Coalesced words
   execute physically at the event time [base] but are charged at
   [base + acc]; per-thread charge timelines are identical to the seed,
   and a one-word run is byte-identical to it (the seed's submit is also
   synchronous at the same engine time).

   The context is per-domain ([Domain.DLS]) because fibers execute on the
   domain that resumed them and grid-parallel sweeps run one simulation
   per domain; the run-buffer slots are per-thread (they live in the
   kernel thread record) so cached page probes survive suspensions
   without leaking between threads.  Slots are validated against a global
   epoch the coherent layer bumps on every remap, freeze, thaw, shootdown
   or monitor change — the invalidation hooks that flush in-flight state
   when the directory moves underneath it. *)

module Cmap = Platinum_core.Cmap

(* The operations the memory backend exposes to the coalescer.  All
   closures are built once at backend construction; calling them
   allocates nothing.  [fp_read]/[fp_write]/[fp_rmw] re-verify the hit
   (active aspace, ATC entry, rights) and return its latency, or [-1] —
   never fault — on anything but a clean hit; the value of a successful
   read/rmw sits in the shared [fp_value] cell. *)
type ops = {
  fp_epoch : unit -> int;
      (* the coherent layer's invalidation epoch; any change kills every
         cached slot.  Sampled once per arm: nothing can bump it inside an
         armed window (no engine event fires mid-run, and inline hits
         never change mappings). *)
  fp_page_words : int;
  fp_page_shift : int;
      (* log2 of fp_page_words when it is a power of two (the per-word
         page split becomes a shift), [-1] otherwise (divide) *)
  fp_probe : proc:int -> aspace:int -> vpage:int -> write:bool -> Cmap.t option;
      (* page-level eligibility: monitor disarmed, aspace active on the
         processor, translation present with sufficient rights, page not
         frozen.  [Some cmap] = eligible. *)
  fp_inject_live : unit -> bool;
      (* whether a fault plane with a non-zero rate is attached; sampled
         once per arm to decide if [fp_ok_now] must run per word *)
  fp_ok_now : unit -> bool;
      (* injection gate: [false] when the fault plane's next module draw
         would inject — the word must take the full-suspend path so the
         fault is handled (and recovered) there.  Per-word because inline
         hits consume draws at the interconnect, advancing the stream. *)
  fp_read : now:int -> proc:int -> cmap:Cmap.t -> vpage:int -> vaddr:int -> int;
      (* the word's latency on a clean hit, [-1] on anything else *)
  fp_write : now:int -> proc:int -> cmap:Cmap.t -> vpage:int -> vaddr:int -> value:int -> int;
  fp_rmw : now:int -> proc:int -> cmap:Cmap.t -> vpage:int -> vaddr:int -> f:(int -> int) -> int;
  fp_value : int ref;  (* cell holding the last successful fp_read/fp_rmw result *)
}

(* One cached page-eligibility probe: valid while the epoch matches.
   [sl_cm] is refreshed only when the underlying Cmap changes, so a
   steady-state slot hit allocates nothing. *)
type slot = {
  mutable sl_epoch : int;
  mutable sl_vpage : int;
  mutable sl_ok : bool;
  mutable sl_cm : Cmap.t option;
}

let make_slot () = { sl_epoch = -1; sl_vpage = -1; sl_ok = false; sl_cm = None }

(* The per-thread run buffer: two read slots (direct-mapped by vpage
   parity — a stencil alternating between two pages keeps both warm) and
   one write slot shared by writes and rmws. *)
type buf = {
  rd0 : slot;
  rd1 : slot;
  wr : slot;
}

let make_buf () = { rd0 = make_slot (); rd1 = make_slot (); wr = make_slot () }

type stats = {
  mutable runs : int;  (* settles that closed a non-empty run *)
  mutable coalesced : int;  (* words drained inline *)
  mutable fallbacks : int;  (* eligible-armed accesses that declined *)
}

(* Bound on words drained within one engine event: a [while true do
   Api.read done] loop must not starve the engine forever. *)
let run_cap = 4096

type ctx = {
  mutable armed : bool;
  mutable ops : ops option;
  mutable buf : buf;
  mutable base : int;  (* engine time of the arming event *)
  mutable acc : int;  (* latency accumulated by the in-flight run *)
  mutable run_words : int;
  mutable proc : int;
  mutable aspace : int;
  mutable quantum_left : int;  (* ns of quantum the run may consume *)
  mutable epoch : int;  (* the invalidation epoch, sampled at arm *)
  mutable check_inject : bool;  (* a live fault plane requires fp_ok_now per word *)
  mutable out_value : int;  (* result slot for try_read/try_rmw *)
  st : stats;
}

let make_ctx () =
  {
    armed = false;
    ops = None;
    buf = make_buf ();
    base = 0;
    acc = 0;
    run_words = 0;
    proc = 0;
    aspace = 0;
    quantum_left = 0;
    epoch = -1;
    check_inject = false;
    out_value = 0;
    st = { runs = 0; coalesced = 0; fallbacks = 0 };
  }

(* One context per domain: fibers run on the domain that resumed them and
   each domain drives at most one simulation event at a time, so the
   context is never shared.  The run-buffer slots it points at are
   per-thread state handed over at each arm.
   lint: allow toplevel-state — Domain.DLS is the sanctioned per-domain
   container; the key itself is immutable and the init closure builds a
   fresh context (and placeholder buffer) per domain. *)
let key = Domain.DLS.new_key (fun () -> make_ctx ())

let ctx () = Domain.DLS.get key

(* --- kernel side --- *)

(* lint: allow zero-alloc — the [Some ops] refresh fires once per backend
   handoff (a different simulation reusing the domain); in steady state
   the [==] guard keeps the cell physically unchanged and the arm is
   allocation-free. *)
let arm c ops ~buf ~base ~proc ~aspace ~quantum_left =
  c.armed <- true;
  (match c.ops with Some o when o == ops -> () | _ -> c.ops <- Some ops);
  c.buf <- buf;
  c.base <- base;
  c.acc <- 0;
  c.run_words <- 0;
  c.proc <- proc;
  c.aspace <- aspace;
  c.quantum_left <- quantum_left;
  c.epoch <- ops.fp_epoch ();
  c.check_inject <- ops.fp_inject_live ()

(* Close the in-flight run: disarm and return the accumulated latency the
   kernel must charge (0 = nothing coalesced, the settle is free). *)
let close c =
  if not c.armed then 0
  else begin
    c.armed <- false;
    let acc = c.acc in
    if c.run_words > 0 then c.st.runs <- c.st.runs + 1;
    acc
  end

let armed c = c.armed

(* --- user side (called from Api) --- *)

let value c = c.out_value

(* Validate (or refresh) a slot's page-eligibility probe against the
   arm-time epoch.  The [==] guard keeps [sl_cm] physically stable so a
   steady-state refresh of the same page allocates nothing beyond the
   probe itself.
   lint: allow zero-alloc — the [Some cm] store runs only when the slot's
   Cmap actually changed (first touch of a page, or a remap), never on
   the steady-state revalidation path the [==] guard serves. *)
let slot_ok c ops (sl : slot) ~vpage ~write =
  if sl.sl_epoch = c.epoch && sl.sl_vpage = vpage then sl.sl_ok
  else begin
    let r = ops.fp_probe ~proc:c.proc ~aspace:c.aspace ~vpage ~write in
    sl.sl_epoch <- c.epoch;
    sl.sl_vpage <- vpage;
    (match r with
    | Some cm ->
      sl.sl_ok <- true;
      (match sl.sl_cm with
      | Some old when old == cm -> ()
      | _ -> sl.sl_cm <- Some cm)
    | None -> sl.sl_ok <- false);
    sl.sl_ok
  end

let decline c =
  c.st.fallbacks <- c.st.fallbacks + 1;
  false

let[@inline] vpage_of ops vaddr =
  if ops.fp_page_shift >= 0 then vaddr lsr ops.fp_page_shift else vaddr / ops.fp_page_words

let try_read c vaddr =
  if not c.armed then false
  else
    match c.ops with
    | None -> false
    | Some ops ->
      if vaddr < 0 || c.acc >= c.quantum_left || c.run_words >= run_cap then decline c
      else begin
        let vpage = vpage_of ops vaddr in
        let sl = if vpage land 1 = 0 then c.buf.rd0 else c.buf.rd1 in
        if not (slot_ok c ops sl ~vpage ~write:false) then decline c
        else if c.check_inject && not (ops.fp_ok_now ()) then decline c
        else
          match sl.sl_cm with
          | Some cm ->
            let lat = ops.fp_read ~now:(c.base + c.acc) ~proc:c.proc ~cmap:cm ~vpage ~vaddr in
            if lat < 0 then decline c
            else begin
              c.out_value <- !(ops.fp_value);
              c.acc <- c.acc + lat;
              c.run_words <- c.run_words + 1;
              c.st.coalesced <- c.st.coalesced + 1;
              true
            end
          | None -> decline c
      end

let try_write c vaddr value =
  if not c.armed then false
  else
    match c.ops with
    | None -> false
    | Some ops ->
      if vaddr < 0 || c.acc >= c.quantum_left || c.run_words >= run_cap then decline c
      else begin
        let vpage = vpage_of ops vaddr in
        let sl = c.buf.wr in
        if not (slot_ok c ops sl ~vpage ~write:true) then decline c
        else if c.check_inject && not (ops.fp_ok_now ()) then decline c
        else
          match sl.sl_cm with
          | Some cm ->
            let lat =
              ops.fp_write ~now:(c.base + c.acc) ~proc:c.proc ~cmap:cm ~vpage ~vaddr ~value
            in
            if lat < 0 then decline c
            else begin
              c.acc <- c.acc + lat;
              c.run_words <- c.run_words + 1;
              c.st.coalesced <- c.st.coalesced + 1;
              true
            end
          | None -> decline c
      end

let try_rmw c vaddr f =
  if not c.armed then false
  else
    match c.ops with
    | None -> false
    | Some ops ->
      if vaddr < 0 || c.acc >= c.quantum_left || c.run_words >= run_cap then decline c
      else begin
        let vpage = vpage_of ops vaddr in
        let sl = c.buf.wr in
        if not (slot_ok c ops sl ~vpage ~write:true) then decline c
        else if c.check_inject && not (ops.fp_ok_now ()) then decline c
        else
          match sl.sl_cm with
          | Some cm ->
            let lat = ops.fp_rmw ~now:(c.base + c.acc) ~proc:c.proc ~cmap:cm ~vpage ~vaddr ~f in
            if lat < 0 then decline c
            else begin
              c.out_value <- !(ops.fp_value);
              c.acc <- c.acc + lat;
              c.run_words <- c.run_words + 1;
              c.st.coalesced <- c.st.coalesced + 1;
              true
            end
          | None -> decline c
      end

(* --- introspection (tests, the bench gates) --- *)

let stats c = c.st

let reset_stats c =
  c.st.runs <- 0;
  c.st.coalesced <- 0;
  c.st.fallbacks <- 0
