(** The memory-system interface the kernel schedules against.

    Application threads issue abstract memory transactions; a backend turns
    each into (data, latency).  Two backends exist: the PLATINUM coherent
    memory ({!Platsys}) and the bus-based UMA machine with per-processor
    caches used for the Figure 5 comparison ({!Platinum_cache.Uma_sys}).
    Both implement the one entry point [submit], which accepts any
    {!Platinum_core.Memtxn.t} — a word read or write, an atomic
    read-modify-write, a contiguous block, or a strided scatter/gather —
    and share {!Platinum_core.Memtxn.run} for cost accounting.

    Addresses are virtual *word* addresses (the Butterfly's unit of access
    is the 32-bit word). *)

type advice =
  | Freeze  (** known fine-grain write-shared data: pin it remote now *)
  | Thaw  (** known phase change: let the next access replicate *)
  | Home of int  (** collapse to one copy on the given node *)

type remote = {
  try_remote :
    now:int ->
    proc:int ->
    aspace:int ->
    Platinum_core.Memtxn.t ->
    complete:(Platinum_core.Memtxn.result -> unit) ->
    bool;
}
(** Asynchronous completion for distributed backends (DESIGN.md §4j).
    [try_remote] either adopts the transaction — returns [true], and
    [complete] fires exactly once from a later engine event on the
    submitting node's engine, carrying the result (the latency is
    implicit in when that event fires) — or declines with [false], in
    which case the kernel serves the transaction through the synchronous
    [submit].  Adopting implies the calling thread blocks; [complete]
    must never be invoked synchronously from inside [try_remote], and an
    adopted transaction must not raise (backends decline anything whose
    validation should fail, so [submit] raises it instead). *)

type t = {
  page_words : int;  (** machine page size in 32-bit words *)
  submit : now:int -> proc:int -> aspace:int -> Platinum_core.Memtxn.t ->
    Platinum_core.Memtxn.result * int;
      (** run one memory transaction; returns (result, latency ns).
          Batching never changes simulated cost: a transaction is charged
          exactly what its words issued back-to-back would be. *)
  new_aspace : unit -> int;
      (** create an empty address space (with its own default heap zone);
          returns its id.  Id 0 is the initial space. *)
  new_zone : aspace:int -> name:string -> pages:int -> int;  (** returns a zone handle *)
  alloc : zone:int -> words:int -> page_aligned:bool -> int;
      (** bump allocation inside a zone; returns the virtual word address *)
  alloc_pages : zone:int -> pages:int -> int;
  new_segment : name:string -> pages:int -> int;
      (** a globally named memory object, shareable across address spaces *)
  map_segment : aspace:int -> segment:int -> int;
      (** bind a segment into an address space; returns its base vaddr
          there (address ranges need not match across spaces, §1.1) *)
  advise : now:int -> proc:int -> aspace:int -> vaddr:int -> len:int -> advice -> int;
      (** apply placement advice to the pages covering [vaddr, vaddr+len);
          returns latency; a no-op on machines without coherent memory *)
  migrate_cost : now:int -> from_proc:int -> to_proc:int -> int;
      (** cost of moving a thread's kernel stack (§2.2) *)
  describe : unit -> string;
  fastpath : Fastpath.ops option;
      (** coalescing fast-path operations (DESIGN.md §4g); [None] = the
          backend only supports the full-suspend path *)
  remote : remote option;
      (** asynchronous remote completion ({!remote}); [None] = every
          transaction is served synchronously by [submit] *)
}

(** Single-operation conveniences over [submit]. *)

val read : t -> now:int -> proc:int -> aspace:int -> vaddr:int -> int * int
(** (value, latency ns) *)

val write : t -> now:int -> proc:int -> aspace:int -> vaddr:int -> int -> int
(** latency *)

val rmw : t -> now:int -> proc:int -> aspace:int -> vaddr:int -> (int -> int) -> int * int
(** atomic read-modify-write; returns (old value, latency) *)

val block_read : t -> now:int -> proc:int -> aspace:int -> vaddr:int -> len:int -> int array * int
val block_write : t -> now:int -> proc:int -> aspace:int -> vaddr:int -> int array -> int
