type server = {
  request_port : Eff.port_id;
  server_tid : Eff.thread_id;
}

(* Wire format: requests are [| kind; reply_port; args... |] with kind 0 =
   call, 1 = shutdown; replies are the handler's result verbatim. *)
let kind_call = 0
let kind_shutdown = 1

let serve ?proc handler =
  let request_port = Api.new_port () in
  let rec loop () =
    let msg = Api.recv request_port in
    if msg.(0) = kind_shutdown then ()
    else begin
      let reply_port = msg.(1) in
      let args = Array.sub msg 2 (Array.length msg - 2) in
      Api.send reply_port (handler args);
      loop ()
    end
  in
  let server_tid = Api.spawn ?proc loop in
  { request_port; server_tid }

let port_of t = t.request_port

(* Ship one request, surviving a lossy switch: under fault injection the
   message may vanish in flight, in which case the client waits out a
   retransmission timeout (exponential backoff) and re-sends.  The
   adversary never drops the final attempt, so a call always completes;
   with no plane attached this is exactly one [Api.send]. *)
let send_request port msg =
  match Api.inject_handle () with
  | None -> Api.send port msg
  | Some inj ->
    let waited = ref 0 in
    let rec go attempt =
      if Platinum_sim.Inject.rpc_drop inj ~attempt then begin
        let timeout = Platinum_sim.Inject.rpc_retrans inj ~attempt in
        Api.sleep timeout;
        waited := !waited + timeout;
        Platinum_sim.Inject.note_rpc_retry inj;
        go (attempt + 1)
      end
      else Api.send port msg
    in
    go 0;
    if !waited > 0 then Platinum_sim.Inject.note_recovery inj !waited

let call_async t args =
  let reply_port = Api.new_port () in
  let msg = Array.make (Array.length args + 2) 0 in
  msg.(0) <- kind_call;
  msg.(1) <- reply_port;
  Array.blit args 0 msg 2 (Array.length args);
  send_request t.request_port msg;
  fun () -> Api.recv reply_port

let call t args = call_async t args ()

let shutdown t =
  Api.send t.request_port [| kind_shutdown; 0 |];
  Api.join t.server_tid
